// Fig. 14: performance (IPC) normalized to the baselines,
// quad-channel-equivalent systems.  Values > 1 mean the parity scheme is
// faster.  Paper: slight improvement (<5%) over most baselines thanks to
// higher rank-level parallelism; up to ~20% slower than the 128B-line
// chipkill36/RAIM on high-spatial-locality workloads (e.g. streamcluster).
#include "fig_perf_common.hpp"

int main(int argc, char** argv) {
  eccsim::bench::init(argc, argv);
  eccsim::bench::ratio_figure(
      "fig14_perf_quad",
      "Fig. 14 -- Performance normalized to baselines (quad-equivalent, >1 = faster)",
      eccsim::ecc::SystemScale::kQuadEquivalent,
      [](const eccsim::sim::RunResult& r) { return r.ipc; });
  return 0;
}
