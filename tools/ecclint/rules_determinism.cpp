// Determinism rules (EL001-EL004): the static side of the repo's
// bit-identical-at-any-thread-count contract.  These are token-level
// heuristics, deliberately tuned to fire only on patterns this codebase
// treats as hazards; docs/STATIC_ANALYSIS.md documents each rule's
// blind spots.
#include <cctype>
#include <set>
#include <string>
#include <vector>

#include "analyzer.hpp"

namespace eccsim::ecclint {

namespace {

const std::set<std::string> kUnorderedTypes = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset"};

const std::set<std::string> kFloatTypes = {"double", "float"};

const std::set<std::string> kKeywordsBeforeParen = {
    "if", "for", "while", "switch", "return", "sizeof", "catch",
    "alignof", "decltype", "static_assert", "throw", "new", "delete"};

/// Function names whose bodies count as result/merge/emit paths for
/// EL001: anything that merges per-worker state or serializes results,
/// where iteration order becomes output order.
const char* const kEmitPathStems[] = {
    "merge",    "emit",   "to_json", "write",     "finalize", "snapshot",
    "report",   "collect", "result",  "serialize", "dump",
};

bool is_emit_path(const std::string& name) {
  std::string lower;
  for (char c : name) {
    lower.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  for (const char* stem : kEmitPathStems) {
    if (lower.find(stem) != std::string::npos) return true;
  }
  return false;
}

bool has_prefix(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool is(const Token& t, Tok kind, const char* text) {
  return t.kind == kind && t.text == text;
}

/// Index of the matching closer for the opener at `open`, or tokens.size().
/// `>>` closes two template levels when matching angle brackets.
std::size_t match_forward(const std::vector<Token>& toks, std::size_t open,
                          const char* opener, const char* closer) {
  int depth = 0;
  const bool angle = opener[0] == '<';
  for (std::size_t i = open; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != Tok::kPunct) continue;
    if (t.text == opener) {
      ++depth;
    } else if (t.text == closer) {
      if (--depth == 0) return i;
    } else if (angle && t.text == ">>") {
      depth -= 2;
      if (depth <= 0) return i;
    } else if (angle && (t.text == ";" || t.text == "{")) {
      return toks.size();  // not a template argument list after all
    }
  }
  return toks.size();
}

/// Collects names declared with a given set of type keywords anywhere in
/// the file: `TYPE<...> [&*const] NAME` or `TYPE [&*const] NAME`.  Coarse
/// (file-wide, no scoping) but members, locals, and parameters all match.
std::set<std::string> declared_names(const std::vector<Token>& toks,
                                     const std::set<std::string>& types,
                                     bool templated) {
  std::set<std::string> names;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != Tok::kIdent || types.count(toks[i].text) == 0) {
      continue;
    }
    std::size_t j = i + 1;
    if (templated) {
      if (j >= toks.size() || !is(toks[j], Tok::kPunct, "<")) continue;
      j = match_forward(toks, j, "<", ">");
      if (j >= toks.size()) continue;
      ++j;
    }
    while (j < toks.size() &&
           (is(toks[j], Tok::kPunct, "&") || is(toks[j], Tok::kPunct, "*") ||
            (toks[j].kind == Tok::kIdent && toks[j].text == "const"))) {
      ++j;
    }
    if (j < toks.size() && toks[j].kind == Tok::kIdent) {
      names.insert(toks[j].text);
    }
  }
  return names;
}

/// One lexical region (token index range) plus what opened it.
struct Region {
  std::size_t end;        ///< index of the closing token
  bool unordered_range;   ///< a range-for over an unordered container
};

}  // namespace

void check_determinism(const LexedFile& file, const Config& cfg,
                       std::vector<Finding>& out) {
  const std::vector<Token>& toks = file.tokens;
  const std::set<std::string> unordered_vars =
      declared_names(toks, kUnorderedTypes, /*templated=*/true);
  const std::set<std::string> float_vars =
      declared_names(toks, kFloatTypes, /*templated=*/false);

  bool clock_allowed = false;
  for (const std::string& prefix : cfg.clock_allow_prefixes) {
    if (has_prefix(file.path, prefix)) clock_allowed = true;
  }

  // Function-context stack: (name, brace depth at entry).
  std::vector<std::pair<std::string, int>> functions;
  std::vector<Region> regions;  // open range-for bodies
  int brace_depth = 0;

  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    while (!regions.empty() && i > regions.back().end) regions.pop_back();

    if (t.kind == Tok::kPunct) {
      if (t.text == "{") {
        ++brace_depth;
      } else if (t.text == "}") {
        --brace_depth;
        while (!functions.empty() && brace_depth < functions.back().second) {
          functions.pop_back();
        }
      }
      continue;
    }
    if (t.kind != Tok::kIdent) continue;

    // --- function definition header: IDENT ( ... ) [stuff] { ----------
    if (i + 1 < toks.size() && is(toks[i + 1], Tok::kPunct, "(") &&
        kKeywordsBeforeParen.count(t.text) == 0) {
      const std::size_t close = match_forward(toks, i + 1, "(", ")");
      if (close < toks.size()) {
        std::size_t j = close + 1;
        // Skip trailing specifiers, a trailing return type, and one
        // constructor initializer list.
        bool plausible = true;
        int guard = 0;
        while (j < toks.size() && !is(toks[j], Tok::kPunct, "{")) {
          const Token& u = toks[j];
          if (u.kind == Tok::kIdent || u.kind == Tok::kNumber ||
              is(u, Tok::kPunct, "::") || is(u, Tok::kPunct, "->") ||
              is(u, Tok::kPunct, "&") || is(u, Tok::kPunct, "&&") ||
              is(u, Tok::kPunct, "*") || is(u, Tok::kPunct, ",") ||
              is(u, Tok::kPunct, ":")) {
            ++j;
          } else if (is(u, Tok::kPunct, "(")) {
            j = match_forward(toks, j, "(", ")") + 1;
          } else if (is(u, Tok::kPunct, "<")) {
            const std::size_t e = match_forward(toks, j, "<", ">");
            if (e >= toks.size()) {
              plausible = false;
              break;
            }
            j = e + 1;
          } else {
            plausible = false;
            break;
          }
          if (++guard > 64) {
            plausible = false;
            break;
          }
        }
        if (plausible && j < toks.size() && is(toks[j], Tok::kPunct, "{")) {
          functions.emplace_back(t.text, brace_depth + 1);
        }
      }
    }

    // --- range-for over an unordered container (EL001 / EL003 scope) --
    if (t.text == "for" && i + 1 < toks.size() &&
        is(toks[i + 1], Tok::kPunct, "(")) {
      const std::size_t close = match_forward(toks, i + 1, "(", ")");
      std::size_t colon = toks.size();
      int depth = 0;
      for (std::size_t j = i + 1; j < close; ++j) {
        if (toks[j].kind != Tok::kPunct) continue;
        if (toks[j].text == "(") ++depth;
        if (toks[j].text == ")") --depth;
        if (depth == 1 && toks[j].text == ":") {
          colon = j;
          break;
        }
        if (depth == 1 && toks[j].text == ";") break;  // classic for
      }
      if (colon < close) {
        bool unordered = false;
        for (std::size_t j = colon + 1; j < close; ++j) {
          if (toks[j].kind == Tok::kIdent &&
              unordered_vars.count(toks[j].text) != 0) {
            unordered = true;
          }
        }
        if (unordered) {
          if (!functions.empty() && is_emit_path(functions.back().first)) {
            out.push_back(Finding{
                file.path, t.line, "EL001",
                "unordered-container iteration in '" +
                    functions.back().first +
                    "': iteration order is nondeterministic in a "
                    "result/merge/emit path (sort keys first or use an "
                    "ordered container)"});
          }
          std::size_t body_end = toks.size();
          if (close + 1 < toks.size()) {
            if (is(toks[close + 1], Tok::kPunct, "{")) {
              body_end = match_forward(toks, close + 1, "{", "}");
            } else {
              for (std::size_t j = close + 1; j < toks.size(); ++j) {
                if (is(toks[j], Tok::kPunct, ";")) {
                  body_end = j;
                  break;
                }
              }
            }
          }
          regions.push_back(Region{body_end, true});
        }
      }
    }

    // --- EL003: float accumulation inside an unordered range-for ------
    if (float_vars.count(t.text) != 0 && i + 1 < toks.size() &&
        toks[i + 1].kind == Tok::kPunct &&
        (toks[i + 1].text == "+=" || toks[i + 1].text == "-=" ||
         toks[i + 1].text == "*=" || toks[i + 1].text == "/=")) {
      bool in_unordered_loop = false;
      for (const Region& r : regions) {
        if (r.unordered_range) in_unordered_loop = true;
      }
      if (in_unordered_loop) {
        out.push_back(Finding{
            file.path, t.line, "EL003",
            "floating-point accumulation into '" + t.text +
                "' inside unordered-container iteration: the sum depends "
                "on hash order (accumulate over sorted keys instead)"});
      }
    }

    // --- EL002: ambient wall clock / entropy --------------------------
    if (!clock_allowed) {
      const bool member_call =
          i > 0 && (is(toks[i - 1], Tok::kPunct, ".") ||
                    is(toks[i - 1], Tok::kPunct, "->"));
      const bool calls = i + 1 < toks.size() &&
                         is(toks[i + 1], Tok::kPunct, "(");
      if ((t.text == "rand" || t.text == "srand" || t.text == "time") &&
          calls && !member_call) {
        out.push_back(Finding{
            file.path, t.line, "EL002",
            "'" + t.text +
                "()' injects ambient state; derive randomness from "
                "runner::substream_seed and timestamps from src/obs"});
      } else if (t.text == "random_device" || t.text == "system_clock") {
        out.push_back(Finding{
            file.path, t.line, "EL002",
            "'std::" + t.text +
                "' is nondeterministic ambient state; simulation code "
                "must be a pure function of its seed (see src/common/rng)"});
      }
    }

    // --- EL004: raw std::mt19937 construction -------------------------
    // Fires only on *constructions* -- `std::mt19937 name(seed)`,
    // `std::mt19937 name;`, `std::mt19937 name = ...`, or a
    // `std::mt19937{seed}` temporary -- never on reference/pointer
    // parameters or bare type mentions, and not when the seed expression
    // goes through one of the blessed derivation functions.
    if (t.text == "mt19937" || t.text == "mt19937_64") {
      std::size_t begin = toks.size();  // first token of the seed expr
      std::size_t end = toks.size();    // one past its last token
      bool constructs = false;
      if (i + 1 < toks.size()) {
        const Token& n = toks[i + 1];
        if (is(n, Tok::kPunct, "(") || is(n, Tok::kPunct, "{")) {
          constructs = true;  // temporary
          const char* cl = n.text == "(" ? ")" : "}";
          begin = i + 2;
          end = match_forward(toks, i + 1, n.text.c_str(), cl);
        } else if (n.kind == Tok::kIdent && i + 2 < toks.size()) {
          const Token& after = toks[i + 2];
          if (is(after, Tok::kPunct, "(") || is(after, Tok::kPunct, "{")) {
            constructs = true;
            const char* cl = after.text == "(" ? ")" : "}";
            begin = i + 3;
            end = match_forward(toks, i + 2, after.text.c_str(), cl);
          } else if (is(after, Tok::kPunct, ";")) {
            constructs = true;  // default-seeded
          } else if (is(after, Tok::kPunct, "=")) {
            constructs = true;
            begin = i + 3;
            for (std::size_t j = begin; j < toks.size(); ++j) {
              if (is(toks[j], Tok::kPunct, ";")) {
                end = j;
                break;
              }
            }
          }
        }
      }
      bool blessed = false;
      for (std::size_t j = begin; j < end && j < toks.size(); ++j) {
        if (toks[j].kind == Tok::kIdent &&
            (toks[j].text == "substream_seed" ||
             toks[j].text == "paper_sweep_seed")) {
          blessed = true;
        }
      }
      if (constructs && !blessed) {
        out.push_back(Finding{
            file.path, t.line, "EL004",
            "raw std::" + t.text +
                " construction: seed it from runner::substream_seed or "
                "trace::paper_sweep_seed so the stream is a deterministic "
                "substream of the experiment seed"});
      }
    }
  }
}

}  // namespace eccsim::ecclint
