#include "analyzer.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

namespace eccsim::ecclint {

std::string Finding::str() const {
  std::ostringstream os;
  os << file << ":" << line << ": [" << rule << "] " << message;
  return os.str();
}

std::string Finding::key() const {
  return file + " [" + rule + "] " + message;
}

const std::vector<RuleInfo>& rule_catalog() {
  static const std::vector<RuleInfo> kRules = {
      {"EL000", "ecclint:allow suppression without a reason string"},
      {"EL001",
       "iteration over an unordered container in a result/merge/emit path"},
      {"EL002",
       "wall clock or ambient entropy (rand/random_device/time()/"
       "system_clock) outside the observability allowlist"},
      {"EL003",
       "floating-point accumulation inside unordered-container iteration "
       "(merge-order hazard)"},
      {"EL004",
       "raw std::mt19937 construction not seeded via "
       "runner::substream_seed / trace::paper_sweep_seed"},
      {"EL101",
       "#include edge not declared in the module DAG "
       "(tools/ecclint/layers.txt)"},
      {"EL102", "cycle in the declared module DAG"},
      {"EL201",
       "schema id literal not matching eccsim.<name>/<version>"},
      {"EL202", "schema id used in code but absent from "
                "docs/OBSERVABILITY.md"},
      {"EL203", "one schema name bound to two different versions"},
      {"EL204",
       "stats dotted path registered under two different stat kinds"},
      {"EL205", "flag string literal missing from the binary's --help text"},
  };
  return kRules;
}

namespace {

/// Drops findings covered by a suppression: same rule, on the
/// suppression's line (trailing comment) or the line below (comment on
/// its own line).  Reasonless suppressions silence nothing and are
/// themselves reported as EL000.
std::vector<Finding> apply_suppressions(const LexedFile& file,
                                        std::vector<Finding> findings) {
  std::vector<Finding> kept;
  for (Finding& f : findings) {
    bool suppressed = false;
    for (const Suppression& s : file.suppressions) {
      if (s.rule == f.rule && !s.reason.empty() &&
          (f.line == s.line || f.line == s.line + 1)) {
        suppressed = true;
        break;
      }
    }
    if (!suppressed) kept.push_back(std::move(f));
  }
  for (const Suppression& s : file.suppressions) {
    if (s.reason.empty()) {
      kept.push_back(Finding{file.path, s.line, "EL000",
                             "ecclint:allow(" + s.rule +
                                 ") must carry a reason string"});
    }
  }
  return kept;
}

}  // namespace

std::vector<Finding> analyze(const std::vector<SourceFile>& files,
                             const Config& cfg) {
  std::vector<LexedFile> lexed;
  lexed.reserve(files.size());
  for (const SourceFile& f : files) lexed.push_back(lex(f.path, f.content));
  std::sort(lexed.begin(), lexed.end(),
            [](const LexedFile& a, const LexedFile& b) {
              return a.path < b.path;
            });

  std::vector<Finding> out;
  for (const LexedFile& file : lexed) {
    std::vector<Finding> per_file;
    check_determinism(file, cfg, per_file);
    for (Finding& f : apply_suppressions(file, std::move(per_file))) {
      out.push_back(std::move(f));
    }
  }

  // Cross-file passes.  Suppressions still apply to findings anchored in
  // a source file; findings anchored in layers.txt itself cannot be
  // suppressed (fix the DAG instead).
  std::map<std::string, const LexedFile*> by_path;
  for (const LexedFile& file : lexed) by_path.emplace(file.path, &file);
  std::vector<Finding> cross;
  check_layering(lexed, cfg, cross);
  check_schema(lexed, cfg, cross);
  for (Finding& f : cross) {
    const auto it = by_path.find(f.file);
    bool suppressed = false;
    if (it != by_path.end()) {
      for (const Suppression& s : it->second->suppressions) {
        if (s.rule == f.rule && !s.reason.empty() &&
            (f.line == s.line || f.line == s.line + 1)) {
          suppressed = true;
          break;
        }
      }
    }
    if (!suppressed) out.push_back(std::move(f));
  }

  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    if (a.rule != b.rule) return a.rule < b.rule;
    return a.message < b.message;
  });
  out.erase(std::unique(out.begin(), out.end(),
                        [](const Finding& a, const Finding& b) {
                          return a.file == b.file && a.line == b.line &&
                                 a.rule == b.rule && a.message == b.message;
                        }),
            out.end());
  return out;
}

BaselineOutcome apply_baseline(const std::vector<Finding>& findings,
                               const std::string& baseline_text) {
  std::set<std::string> baseline;
  std::istringstream is(baseline_text);
  std::string line;
  while (std::getline(is, line)) {
    while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) {
      line.pop_back();
    }
    std::size_t b = 0;
    while (b < line.size() && line[b] == ' ') ++b;
    line = line.substr(b);
    if (line.empty() || line[0] == '#') continue;
    baseline.insert(line);
  }

  BaselineOutcome outcome;
  std::set<std::string> matched;
  for (const Finding& f : findings) {
    if (baseline.count(f.key()) != 0) {
      matched.insert(f.key());
    } else {
      outcome.fresh.push_back(f);
    }
  }
  for (const std::string& entry : baseline) {
    if (matched.count(entry) == 0) outcome.stale.push_back(entry);
  }
  return outcome;
}

std::string render_baseline(const std::vector<Finding>& findings) {
  std::ostringstream os;
  os << "# ecclint baseline: grandfathered findings "
        "(docs/STATIC_ANALYSIS.md).\n"
     << "# Every entry must carry a '#' justification line above it.  CI\n"
     << "# fails on findings missing from this file AND on entries that\n"
     << "# no longer fire, so the baseline can only shrink.\n";
  std::set<std::string> seen;
  for (const Finding& f : findings) {
    if (seen.insert(f.key()).second) {
      os << "# TODO: justify or fix.\n" << f.key() << "\n";
    }
  }
  return os.str();
}

}  // namespace eccsim::ecclint
