file(REMOVE_RECURSE
  "CMakeFiles/ecc_faults.dir/fault_model.cpp.o"
  "CMakeFiles/ecc_faults.dir/fault_model.cpp.o.d"
  "CMakeFiles/ecc_faults.dir/injector.cpp.o"
  "CMakeFiles/ecc_faults.dir/injector.cpp.o.d"
  "CMakeFiles/ecc_faults.dir/montecarlo.cpp.o"
  "CMakeFiles/ecc_faults.dir/montecarlo.cpp.o.d"
  "libecc_faults.a"
  "libecc_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecc_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
