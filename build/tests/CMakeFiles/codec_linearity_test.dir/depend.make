# Empty dependencies file for codec_linearity_test.
# This may be replaced when dependencies are built.
