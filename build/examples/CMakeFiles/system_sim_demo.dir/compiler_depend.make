# Empty compiler generated dependencies file for system_sim_demo.
# This may be replaced when dependencies are built.
