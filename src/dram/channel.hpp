// One DRAM channel: transaction queue, Most-Pending scheduler, bank/rank
// timing state, close-page row policy, rank power-down, refresh, and energy
// accounting.
//
// Modeling approach: forward scheduling.  When the scheduler selects a
// transaction it computes the earliest cycle every device constraint allows
// (bank tRC/tRP recovery, rank tRRD_S/tRRD_L and tFAW, bank-group
// tCCD_S/tCCD_L command spacing, power-down exit tXP, refresh blackout,
// shared data bus with read/write turnaround) and books the command's
// effects (bank recovery point, bus occupancy, activate energy, rank active
// window) into the future.  Completions are delivered from a min-heap when
// simulated time reaches them.  This reproduces DDR service times and
// utilization without per-cycle FSM stepping, which keeps the full
// 16-workload x 8-scheme sweep tractable on one host core.
//
// Every timing/energy number comes from the ChannelConfig's DramSpec (see
// dram/spec.hpp): generations without bank groups (DDR3) set the _S and _L
// constraints equal, which makes the group gates degenerate to the classic
// single-rank constraints; same-bank refresh (DDR5 REFsb) rotates REF
// commands through bank sets and only blacks out the targeted set.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "dram/spec.hpp"
#include "dram/observer.hpp"
#include "dram/request.hpp"
#include "stats/stats.hpp"
#include "stats/trace.hpp"

namespace eccsim::dram {

/// Energy tally in picojoules, split the way Figs. 12/13 report it:
/// dynamic (activate + read/write bursts) vs background (standby,
/// power-down, refresh).
struct EnergyBreakdown {
  double activate_pj = 0;
  double read_pj = 0;
  double write_pj = 0;
  double refresh_pj = 0;
  double background_pj = 0;

  double dynamic_pj() const { return activate_pj + read_pj + write_pj; }
  double total_pj() const { return dynamic_pj() + refresh_pj + background_pj; }

  void add(const EnergyBreakdown& o) {
    activate_pj += o.activate_pj;
    read_pj += o.read_pj;
    write_pj += o.write_pj;
    refresh_pj += o.refresh_pj;
    background_pj += o.background_pj;
  }
};

/// Traffic and latency counters for one channel.
struct ChannelStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t ecc_reads = 0;   ///< reads with LineClass != kData
  std::uint64_t ecc_writes = 0;  ///< writes with LineClass != kData
  std::uint64_t read_latency_sum = 0;  ///< enqueue -> data (cycles)
  std::uint64_t busy_data_cycles = 0;  ///< data-bus occupancy
  EnergyBreakdown energy;
};

/// Row-buffer management policy.
enum class RowPolicy : std::uint8_t {
  /// Auto-precharge after every access (the paper's choice, Sec. IV-B):
  /// banks return to precharged immediately, letting idle ranks sleep.
  kClosePage,
  /// Keep the row open until a conflict or an idle timeout: cheaper row
  /// hits, but ranks stay in active standby longer.
  kOpenPage,
};

/// Transaction selection policy.
enum class SchedulerPolicy : std::uint8_t {
  kMostPending,  ///< DRAMsim's Most-Pending (ready-first, row-match tiebreak)
  kFcfs,         ///< strict arrival order
};

/// Configuration of one channel (shared by all channels of a system).
/// A "channel" here is one independently-scheduled command/data bus: for
/// DDR5 each physical channel contributes device.sub_channels of these,
/// each owning chips_per_rank / sub_channels chips (hence the double).
struct ChannelConfig {
  DramSpec device;
  std::uint32_t ranks = 1;
  std::uint32_t banks = 8;
  double chips_per_rank = 18;  ///< all chips incl. ECC: they all activate
                               ///< and burst together; fractional when a
                               ///< physical rank splits across sub-channels
  std::uint32_t queue_depth = 64;
  std::uint32_t scheduler_window = 16;  ///< candidates examined per decision
  std::uint32_t idle_pd_timeout = 100;  ///< cycles idle before power-down
  bool powerdown_enabled = true;        ///< close-page sleep (Sec. IV-B)
  RowPolicy row_policy = RowPolicy::kClosePage;
  SchedulerPolicy scheduler = SchedulerPolicy::kMostPending;
  std::uint32_t open_row_timeout = 200;  ///< idle-close under open-page
};

/// A single memory channel.
class Channel {
 public:
  explicit Channel(const ChannelConfig& cfg);

  /// True if the transaction queue has room.
  bool can_accept() const { return queue_.size() < cfg_.queue_depth; }

  /// Enqueues a transaction; returns false if the queue is full.
  bool enqueue(const MemRequest& req);

  /// Advances to `now`, scheduling as many transactions as constraints
  /// allow and appending finished requests to `out`.
  void tick(std::uint64_t now, std::vector<MemCompletion>& out);

  /// Number of queued-but-unscheduled transactions.
  std::size_t pending() const { return queue_.size(); }
  /// Number of scheduled transactions whose completion has not been
  /// delivered yet.
  std::size_t in_flight() const { return completions_.size(); }

  /// Finalizes background-energy integration up to `end_cycle`.  Call once
  /// when the simulation stops; tick() must not be called afterwards.
  void finalize(std::uint64_t end_cycle);

  const ChannelStats& stats() const { return stats_; }
  const ChannelConfig& config() const { return cfg_; }

  /// Row-buffer hit statistics (meaningful under open-page).
  std::uint64_t row_hits() const { return row_hits_; }

  /// Statistics as they would look if the channel finalized at `now`:
  /// stats() plus background-standby/power-down energy and residual
  /// refresh energy integrated up to `now`.  Pure observation -- never
  /// mutates, so peeking mid-run cannot perturb the simulation, and a
  /// peek immediately before finalize(now) matches it exactly.
  ChannelStats peek_stats(std::uint64_t now) const;

  /// Registers this channel's observability stats in `reg` under
  /// `prefix` (e.g. "dram.ch0"): polled gauges over the counters the
  /// channel already keeps, push counters for ACTs (total and per bank),
  /// refreshes, a read-latency histogram, and a queue-depth
  /// distribution.  When `tracer` is non-null every issued command is
  /// mirrored as a Chrome trace event on track `tracer_tid`.  Call once,
  /// before traffic; `reg` and `tracer` must outlive the channel's use.
  void attach_stats(stats::Registry& reg, const std::string& prefix,
                    stats::Tracer* tracer = nullptr,
                    std::uint32_t tracer_tid = 0);

  /// Attaches a passive command observer (see dram/observer.hpp): every
  /// booked ACT / RD / WR / PRE / REF is mirrored to it with the exact
  /// cycle the scheduler assigned.  Pass nullptr to detach.  The observer
  /// must outlive the channel's use (including finalize(), which emits the
  /// residual refresh commands).  Observation only: results are
  /// bit-identical with or without an observer.
  void set_observer(CommandObserver* observer) { observer_ = observer; }

 private:
  struct BankState {
    std::uint64_t next_act = 0;  ///< earliest cycle an ACT may issue
    // Open-page state: the currently-open row, if any, and the timing
    // anchors needed to precharge or CAS it.
    bool row_open = false;
    std::uint64_t open_row = 0;
    std::uint64_t act_time = 0;      ///< when the open row was activated
    std::uint64_t earliest_pre = 0;  ///< tRAS / tRTP / tWR recovery point
    std::uint64_t next_cas = 0;      ///< tRCD / tCCD_L gate for the open row
    std::uint64_t last_use = 0;      ///< for the idle-close timeout
  };

  struct RankState {
    std::vector<BankState> banks;
    std::uint64_t next_act_rrd_s = 0;  ///< tRRD_S gate (any bank group)
    std::vector<std::uint64_t> next_act_rrd_l;  ///< tRRD_L gate, per group
    std::vector<std::uint64_t> next_cas_group;  ///< tCCD_L gate, per group
    std::deque<std::uint64_t> act_times;  ///< last ACTs for tFAW
    std::uint64_t active_until = 0;     ///< last cycle any bank is active
    std::uint64_t next_refresh = 0;
    std::uint64_t refs_issued = 0;  ///< REFs so far (drives REFsb rotation)
    // Background integration state: everything before bg_accounted_until
    // has been charged.
    std::uint64_t bg_accounted_until = 0;
  };

  /// Computes the earliest ACT cycle for a transaction, given all
  /// constraints, without mutating state.
  std::uint64_t earliest_act(const MemRequest& req, std::uint64_t now) const;

  /// Books a transaction: advances bank/rank/bus state, charges energy,
  /// schedules the completion.  Returns the data-finish cycle.
  std::uint64_t issue(const MemRequest& req, std::uint64_t now);

  /// Background energy (pJ) one rank accrues over [from, until), given
  /// its current active/standby/power-down phase boundaries.  Const: the
  /// single source of truth shared by account_background (which also
  /// advances the rank's accounting marker) and peek_stats (which must
  /// not).  The active-standby and idle (precharge-standby + power-down)
  /// contributions stay separate so both callers can accumulate them in
  /// the exact order the original single-caller code did -- summing them
  /// first would perturb the last ULP of the committed energy numbers.
  struct BackgroundParts {
    double active_pj = 0;
    double idle_pj = 0;
  };
  BackgroundParts background_pj_between(const RankState& rank,
                                        std::uint64_t from,
                                        std::uint64_t until) const;

  /// Charges background energy for one rank up to `until`.
  void account_background(RankState& rank, std::uint64_t until);

  /// Applies any refresh blackout overlapping [t, ...) and charges refresh
  /// energy; returns the possibly-delayed ACT time.  Under kAllBank a
  /// blackout delays every bank of the rank; under kSameBank only ACTs to
  /// the refreshed bank set wait, identified via `bank_idx`.
  std::uint64_t apply_refresh(RankState& rank, std::uint32_t rank_idx,
                              std::uint32_t bank_idx, std::uint64_t t_act);

  /// Charges one REF's energy, mirrors it to the observer, and advances the
  /// rank's refresh schedule (next_refresh, refs_issued).
  void charge_refresh(RankState& rank, std::uint32_t rank_idx);

  /// Mirrors one REF command to the observer (observer_ must be non-null).
  /// `bank_set` is the refreshed bank set (always 0 under kAllBank).
  void emit_refresh(std::uint32_t rank_idx, std::uint64_t cycle,
                    std::uint32_t bank_set);

  ChannelConfig cfg_;
  std::vector<RankState> ranks_;
  std::deque<MemRequest> queue_;

  // Shared data bus: next free cycle, and whether the last burst was a
  // write (for turnaround penalties).
  std::uint64_t bus_free_ = 0;
  bool last_was_write_ = false;
  // Channel-wide CAS spacing gate: earliest cycle the next CAS command may
  // issue (last CAS + tCCD_S).  Never binds for DDR3, where tCCD_S equals
  // the burst length and the bus booking already spaces CAS commands.
  std::uint64_t next_cas_any_ = 0;

  struct PendingCompletion {
    std::uint64_t finish;
    MemCompletion completion;
    bool operator>(const PendingCompletion& o) const {
      return finish > o.finish;
    }
  };
  std::priority_queue<PendingCompletion, std::vector<PendingCompletion>,
                      std::greater<>>
      completions_;

  ChannelStats stats_;
  std::uint64_t row_hits_ = 0;

  // Observability hooks (attach_stats): resolved once, null when stats
  // are off so the hot path pays a single predictable branch.
  struct StatHooks {
    stats::Counter* acts = nullptr;
    stats::Counter* refreshes = nullptr;
    std::vector<stats::Counter*> bank_acts;  ///< rank-major, banks minor
    stats::Histogram* read_latency = nullptr;
    stats::Distribution* queue_depth = nullptr;
  };
  std::unique_ptr<StatHooks> hooks_;
  stats::Tracer* tracer_ = nullptr;
  std::uint32_t tracer_tid_ = 0;
  CommandObserver* observer_ = nullptr;
};

}  // namespace eccsim::dram
