// Text-table and CSV rendering for the benchmark harness.  Every figure /
// table reproducer prints an aligned ASCII table (the paper's "rows and
// series") and can optionally emit CSV for external plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace eccsim {

/// Builds an aligned, fixed-width text table.
///
/// Usage:
///   Table t({"scheme", "EPI (nJ)", "reduction"});
///   t.add_row({"chipkill36", "12.4", "--"});
///   std::cout << t.str();
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Adds one row; pads/truncates to the header width.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 2);
  /// Formats a fraction as a percentage string, e.g. 0.125 -> "12.5%".
  static std::string pct(double fraction, int precision = 1);

  std::size_t rows() const { return rows_.size(); }

  /// Raw cells, for structured (JSON) export alongside str()/csv().
  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::vector<std::string>>& row_data() const {
    return rows_;
  }

  /// Renders with column alignment and a separator under the header.
  std::string str() const;
  /// Renders as CSV (RFC-4180 quoting for cells containing commas/quotes).
  std::string csv() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Writes `content` to `path`, creating parent directories if needed.
/// Returns false (and leaves the filesystem untouched) on failure.
bool write_file(const std::string& path, const std::string& content);

}  // namespace eccsim
