// Table I: processor microarchitecture used by every simulation in the
// evaluation.  This binary echoes the configuration actually wired into
// sim::CpuConfig / cache::CacheConfig so the harness and the paper's table
// cannot drift apart silently.
#include <cstdio>

#include "bench_common.hpp"
#include "cache/cache.hpp"

using namespace eccsim;

int main(int argc, char** argv) {
  eccsim::bench::init(argc, argv);
  const sim::CpuConfig cpu;
  const cache::CacheConfig llc;
  Table t({"parameter", "value", "paper (Table I)"});
  t.add_row({"cores", std::to_string(cpu.cores), "8"});
  t.add_row({"core clock", "2 GHz (2 cycles / memory cycle)", "2 GHz"});
  t.add_row({"issue width", std::to_string(cpu.width), "2"});
  t.add_row({"outstanding read misses/core (MLP)",
             std::to_string(cpu.mlp), "LSQ 32/32, ROB 64"});
  t.add_row({"L2 (LLC) size",
             std::to_string(llc.size_bytes / (1024 * 1024)) + " MB", "8 MB"});
  t.add_row({"L2 associativity", std::to_string(llc.ways) + " ways",
             "16 ways"});
  t.add_row({"line size", std::to_string(llc.line_bytes) + " B", "64 B"});
  std::printf("Table I -- Processor microarchitecture\n\n");
  bench::emit("table1_processor_config", t);
  std::printf(
      "Note: the trace-driven front-end models ROB/LSQ pressure as a\n"
      "per-core outstanding-miss limit (see DESIGN.md, substitutions).\n");
  return 0;
}
