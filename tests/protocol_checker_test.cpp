// Tests for the independent DRAM protocol checker: every seeded illegal
// command stream is caught and classified under the right rule, clean
// synthetic streams and the real Channel under random traffic report zero
// violations, and a checked SystemSim run completes.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "check/protocol_checker.hpp"
#include "common/rng.hpp"
#include "dram/channel.hpp"
#include "sim/system.hpp"

namespace eccsim::check {
namespace {

using dram::CmdKind;
using dram::DramCommand;

dram::ChannelConfig test_config(
    dram::RowPolicy policy = dram::RowPolicy::kOpenPage) {
  dram::ChannelConfig cc;
  cc.device = dram::micron_2gb(dram::DeviceWidth::kX8);
  cc.ranks = 2;
  cc.chips_per_rank = 9;
  cc.row_policy = policy;
  return cc;
}

DramCommand act(std::uint64_t cycle, std::uint32_t rank, std::uint32_t bank,
                std::uint64_t row) {
  DramCommand c;
  c.kind = CmdKind::kActivate;
  c.cycle = cycle;
  c.rank = rank;
  c.bank = bank;
  c.row = row;
  return c;
}

DramCommand cas(const dram::ChannelConfig& cc, bool is_write,
                std::uint64_t cycle, std::uint32_t rank, std::uint32_t bank,
                std::uint64_t row, bool auto_precharge = false) {
  const auto& t = cc.device.timing;
  DramCommand c;
  c.kind = is_write ? CmdKind::kWrite : CmdKind::kRead;
  c.cycle = cycle;
  c.rank = rank;
  c.bank = bank;
  c.row = row;
  c.data_start = cycle + (is_write ? t.tCWL : t.tCL);
  c.data_end = c.data_start + t.tBurst;
  c.auto_precharge = auto_precharge;
  return c;
}

DramCommand pre(std::uint64_t cycle, std::uint32_t rank, std::uint32_t bank) {
  DramCommand c;
  c.kind = CmdKind::kPrecharge;
  c.cycle = cycle;
  c.rank = rank;
  c.bank = bank;
  return c;
}

DramCommand ref(std::uint64_t cycle, std::uint32_t rank) {
  DramCommand c;
  c.kind = CmdKind::kRefresh;
  c.cycle = cycle;
  c.rank = rank;
  return c;
}

/// Feeds a stream to a counting checker and returns it for inspection.
Ddr3ProtocolChecker audit(const dram::ChannelConfig& cc,
                          const std::vector<DramCommand>& stream) {
  Ddr3ProtocolChecker checker(cc, "test", Ddr3ProtocolChecker::Mode::kCount);
  for (const DramCommand& cmd : stream) checker.on_command(cmd);
  return checker;
}

/// The stream must produce at least one violation, the first classified
/// under `rule`.
void expect_violation(const dram::ChannelConfig& cc,
                      const std::vector<DramCommand>& stream,
                      const std::string& rule) {
  const Ddr3ProtocolChecker checker = audit(cc, stream);
  ASSERT_GE(checker.violation_count(), 1u) << "expected a " << rule
                                           << " violation";
  EXPECT_EQ(checker.violations()[0].rule, rule) << checker.report();
}

TEST(ProtocolChecker, CleanOpenPageSequencePasses) {
  const auto cc = test_config();
  const auto& t = cc.device.timing;
  const std::uint64_t a1 = 1000;
  const std::uint64_t r1 = a1 + t.tRCD;
  const std::uint64_t w1 = r1 + t.tCCD_L + t.tBurst + t.tRTW;  // bus-safe
  const std::uint64_t p1 = w1 + t.tCWL + t.tBurst + t.tWR;
  const std::uint64_t a2 = p1 + t.tRP;
  const Ddr3ProtocolChecker checker =
      audit(cc, {act(a1, 0, 0, 7), cas(cc, false, r1, 0, 0, 7),
                 cas(cc, true, w1, 0, 0, 7), pre(p1, 0, 0),
                 act(a2, 0, 0, 9), cas(cc, false, a2 + t.tRCD, 0, 0, 9)});
  EXPECT_EQ(checker.violation_count(), 0u) << checker.report();
  EXPECT_EQ(checker.commands_checked(), 6u);
}

TEST(ProtocolChecker, ActToOpenBank) {
  const auto cc = test_config();
  expect_violation(cc, {act(1000, 0, 0, 1), act(2000, 0, 0, 2)},
                   "bank-state");
}

TEST(ProtocolChecker, CasToClosedBank) {
  const auto cc = test_config();
  expect_violation(cc, {cas(cc, false, 1000, 0, 0, 1)}, "bank-state");
}

TEST(ProtocolChecker, CasToWrongRow) {
  const auto cc = test_config();
  const auto& t = cc.device.timing;
  expect_violation(
      cc, {act(1000, 0, 0, 5), cas(cc, false, 1000 + t.tRCD, 0, 0, 6)},
      "bank-state");
}

TEST(ProtocolChecker, PreToClosedBank) {
  const auto cc = test_config();
  expect_violation(cc, {pre(1000, 0, 0)}, "bank-state");
}

TEST(ProtocolChecker, TooEarlyCasViolatesTrcd) {
  const auto cc = test_config();
  const auto& t = cc.device.timing;
  expect_violation(
      cc, {act(1000, 0, 0, 5), cas(cc, false, 1000 + t.tRCD - 1, 0, 0, 5)},
      "tRCD");
}

TEST(ProtocolChecker, TooEarlyActViolatesTrp) {
  const auto cc = test_config();
  const auto& t = cc.device.timing;
  const std::uint64_t p = 1000 + t.tRAS;
  // The re-activation also lands inside tRC; tRP is checked first.
  expect_violation(cc,
                   {act(1000, 0, 0, 1), pre(p, 0, 0),
                    act(p + t.tRP - 1, 0, 0, 2)},
                   "tRP");
}

TEST(ProtocolChecker, TooEarlyActViolatesTrc) {
  // The Micron table has tRC == tRAS + tRP exactly, so a tRP-legal ACT can
  // never violate tRC alone; widen tRC to separate the two rules and prove
  // the checker enforces tRC independently.
  auto cc = test_config();
  auto& t = cc.device.timing;
  t.tRC = t.tRAS + t.tRP + 6;
  const std::uint64_t p = 1000 + t.tRAS;
  expect_violation(cc,
                   {act(1000, 0, 0, 1), pre(p, 0, 0),
                    act(p + t.tRP, 0, 0, 2)},  // tRP-legal, inside tRC
                   "tRC");
}

TEST(ProtocolChecker, TooEarlySameRankActViolatesTrrd) {
  const auto cc = test_config();
  const auto& t = cc.device.timing;
  expect_violation(
      cc, {act(1000, 0, 0, 1), act(1000 + t.tRRD_S - 1, 0, 1, 1)}, "tRRD_S");
}

TEST(ProtocolChecker, FifthActInWindowViolatesTfaw) {
  const auto cc = test_config();
  const auto& t = cc.device.timing;
  ASSERT_GT(t.tFAW, 4u * t.tRRD_S);  // the window binds beyond tRRD
  std::vector<DramCommand> stream;
  for (std::uint32_t i = 0; i < 4; ++i) {
    stream.push_back(act(1000 + i * t.tRRD_S, 0, i, 1));
  }
  // Legal per tRRD, one cycle inside the four-activate window.
  stream.push_back(act(1000 + t.tFAW - 1, 0, 4, 1));
  expect_violation(cc, stream, "tFAW");
}

TEST(ProtocolChecker, FifthActAtTfawBoundaryIsLegal) {
  const auto cc = test_config();
  const auto& t = cc.device.timing;
  std::vector<DramCommand> stream;
  for (std::uint32_t i = 0; i < 4; ++i) {
    stream.push_back(act(1000 + i * t.tRRD_S, 0, i, 1));
  }
  stream.push_back(act(1000 + t.tFAW, 0, 4, 1));
  EXPECT_EQ(audit(cc, stream).violation_count(), 0u);
}

TEST(ProtocolChecker, OtherRankEscapesTrrdAndTfaw) {
  const auto cc = test_config();
  const auto& t = cc.device.timing;
  std::vector<DramCommand> stream;
  for (std::uint32_t i = 0; i < 4; ++i) {
    stream.push_back(act(1000 + i * t.tRRD_S, 0, i, 1));
  }
  stream.push_back(act(1000 + 3 * t.tRRD_S + 1, 1, 0, 1));
  EXPECT_EQ(audit(cc, stream).violation_count(), 0u);
}

TEST(ProtocolChecker, BackToBackCasViolatesTccd) {
  const auto cc = test_config();
  const auto& t = cc.device.timing;
  const std::uint64_t c1 = 1000 + t.tRCD;
  expect_violation(cc,
                   {act(1000, 0, 0, 5), cas(cc, false, c1, 0, 0, 5),
                    cas(cc, false, c1 + t.tCCD_L - 1, 0, 0, 5)},
                   "tCCD_L");
}

TEST(ProtocolChecker, InconsistentDataWindowViolatesCasLatency) {
  const auto cc = test_config();
  const auto& t = cc.device.timing;
  DramCommand bad = cas(cc, false, 1000 + t.tRCD, 0, 0, 5);
  bad.data_start += 1;
  bad.data_end += 1;
  expect_violation(cc, {act(1000, 0, 0, 5), bad}, "tCL");
}

TEST(ProtocolChecker, ShortBurstViolatesTburst) {
  const auto cc = test_config();
  const auto& t = cc.device.timing;
  DramCommand bad = cas(cc, true, 1000 + t.tRCD, 0, 0, 5);
  bad.data_end -= 1;
  expect_violation(cc, {act(1000, 0, 0, 5), bad}, "tBurst");
}

TEST(ProtocolChecker, OverlappingBurstsViolateBusOccupancy) {
  const auto cc = test_config();
  const auto& t = cc.device.timing;
  // Delay the first CAS so the second one satisfies tRCD on its own bank
  // (tCCD is per bank) yet its burst still overlaps on the shared bus.
  const std::uint64_t c1 = 1000 + t.tRCD + 10;
  const std::uint64_t c2 = c1 + t.tBurst - 1;
  ASSERT_GE(c2, 1000 + t.tRRD_S + t.tRCD);
  expect_violation(cc,
                   {act(1000, 0, 0, 5), act(1000 + t.tRRD_S, 0, 1, 5),
                    cas(cc, false, c1, 0, 0, 5),
                    cas(cc, false, c2, 0, 1, 5)},
                   "bus-overlap");
}

TEST(ProtocolChecker, WriteToReadTurnaroundViolatesTwtr) {
  const auto cc = test_config();
  const auto& t = cc.device.timing;
  const std::uint64_t w = 1000 + t.tRCD;
  const std::uint64_t w_end = w + t.tCWL + t.tBurst;
  // Read data would start one cycle inside the write->read turnaround.
  const std::uint64_t r = w_end + t.tWTR - 1 - t.tCL;
  expect_violation(cc,
                   {act(1000, 0, 0, 5), act(1000 + t.tRRD_S, 0, 1, 5),
                    cas(cc, true, w, 0, 0, 5),
                    cas(cc, false, r, 0, 1, 5)},
                   "tWTR");
}

TEST(ProtocolChecker, ReadToWriteTurnaroundViolatesTrtw) {
  const auto cc = test_config();
  const auto& t = cc.device.timing;
  const std::uint64_t r = 1000 + t.tRCD;
  const std::uint64_t r_end = r + t.tCL + t.tBurst;
  const std::uint64_t w = r_end + t.tRTW - 1 - t.tCWL;
  expect_violation(cc,
                   {act(1000, 0, 0, 5), act(1000 + t.tRRD_S, 0, 1, 5),
                    cas(cc, false, r, 0, 0, 5),
                    cas(cc, true, w, 0, 1, 5)},
                   "tRTW");
}

TEST(ProtocolChecker, TooEarlyPreViolatesTras) {
  const auto cc = test_config();
  const auto& t = cc.device.timing;
  expect_violation(cc, {act(1000, 0, 0, 5), pre(1000 + t.tRAS - 1, 0, 0)},
                   "tRAS");
}

TEST(ProtocolChecker, PreAfterLateReadViolatesTrtp) {
  const auto cc = test_config();
  const auto& t = cc.device.timing;
  const std::uint64_t r = 1000 + t.tRAS - 2;  // late read, tRCD satisfied
  ASSERT_GE(r, 1000 + t.tRCD);
  expect_violation(cc,
                   {act(1000, 0, 0, 5), cas(cc, false, r, 0, 0, 5),
                    pre(r + t.tRTP - 1, 0, 0)},
                   "tRTP");
}

TEST(ProtocolChecker, PreAfterWriteViolatesTwr) {
  const auto cc = test_config();
  const auto& t = cc.device.timing;
  const std::uint64_t w = 1000 + t.tRCD;
  const std::uint64_t w_end = w + t.tCWL + t.tBurst;
  ASSERT_GE(w_end + t.tWR, 1000 + t.tRAS + 1u);  // tRAS holds, tWR binds
  expect_violation(cc,
                   {act(1000, 0, 0, 5), cas(cc, true, w, 0, 0, 5),
                    pre(w_end + t.tWR - 1, 0, 0)},
                   "tWR");
}

TEST(ProtocolChecker, DriftingRefreshViolatesTrefi) {
  const auto cc = test_config();
  const auto& t = cc.device.timing;
  expect_violation(cc, {ref(t.tREFI + 1, 0)}, "tREFI");
  expect_violation(cc, {ref(t.tREFI, 0), ref(2 * t.tREFI - 1, 0)}, "tREFI");
  EXPECT_EQ(audit(cc, {ref(t.tREFI, 0), ref(2 * t.tREFI, 1)})
                .violation_count(),
            1u);  // rank 1's first refresh is late by a whole period
}

TEST(ProtocolChecker, ActInsideRefreshBlackoutViolatesTrfc) {
  const auto cc = test_config();
  const auto& t = cc.device.timing;
  expect_violation(
      cc, {ref(t.tREFI, 0), act(t.tREFI + t.tRFC - 1, 0, 0, 1)}, "tRFC");
  EXPECT_EQ(
      audit(cc, {ref(t.tREFI, 0), act(t.tREFI + t.tRFC, 0, 0, 1)})
          .violation_count(),
      0u);
  // The blackout is per rank: the other rank may activate immediately.
  EXPECT_EQ(audit(cc, {ref(t.tREFI, 0), act(t.tREFI + 1, 1, 0, 1)})
                .violation_count(),
            0u);
}

TEST(ProtocolChecker, ClosePageRequiresAutoPrecharge) {
  const auto cc = test_config(dram::RowPolicy::kClosePage);
  const auto& t = cc.device.timing;
  expect_violation(
      cc, {act(1000, 0, 0, 5), cas(cc, false, 1000 + t.tRCD, 0, 0, 5)},
      "close-page");
}

TEST(ProtocolChecker, ClosePageForbidsSecondCasPerActivation) {
  const auto cc = test_config(dram::RowPolicy::kClosePage);
  const auto& t = cc.device.timing;
  const std::uint64_t c1 = 1000 + t.tRCD;
  expect_violation(cc,
                   {act(1000, 0, 0, 5), cas(cc, false, c1, 0, 0, 5, true),
                    cas(cc, false, c1 + t.tBurst, 0, 0, 5, true)},
                   "close-page");
}

TEST(ProtocolChecker, OutOfRangeRankRejected) {
  const auto cc = test_config();
  expect_violation(cc, {act(1000, cc.ranks, 0, 1)}, "address-range");
  expect_violation(cc, {act(1000, 0, cc.banks, 1)}, "address-range");
}

TEST(ProtocolChecker, CountModeStoresBoundedDetail) {
  const auto cc = test_config();
  Ddr3ProtocolChecker checker(cc, "cap",
                              Ddr3ProtocolChecker::Mode::kCount);
  for (unsigned i = 0; i < 40; ++i) {
    checker.on_command(cas(cc, false, 1000 + 100 * i, 0, 0, 1));
  }
  EXPECT_GE(checker.violation_count(), 40u);
  EXPECT_LE(checker.violations().size(), Ddr3ProtocolChecker::kMaxStored);
  EXPECT_FALSE(checker.report().empty());
}

// ---------------------------------------------------------------------------
// Negative property: the real Channel, audited under random traffic, is
// protocol-clean in every configuration the simulator uses.

void run_channel_clean(dram::RowPolicy policy, bool powerdown,
                       std::uint64_t seed) {
  dram::ChannelConfig cc = test_config(policy);
  cc.powerdown_enabled = powerdown;
  dram::Channel ch(cc);
  Ddr3ProtocolChecker checker(cc, "channel",
                              Ddr3ProtocolChecker::Mode::kCount);
  ch.set_observer(&checker);

  Rng rng(seed);
  std::vector<dram::MemCompletion> out;
  std::uint64_t now = 0;
  unsigned sent = 0;
  while ((sent < 600 || ch.pending() || ch.in_flight()) &&
         now < 10'000'000) {
    ++now;
    // Bursty arrivals leave idle gaps that exercise power-down and refresh.
    if (sent < 600 && rng.bernoulli(now % 4096 < 1024 ? 0.4 : 0.01)) {
      dram::MemRequest r;
      r.id = sent;
      r.addr.rank = static_cast<std::uint32_t>(rng.next_below(cc.ranks));
      r.addr.bank = static_cast<std::uint32_t>(rng.next_below(cc.banks));
      r.addr.row = rng.next_below(32);
      r.addr.col = static_cast<std::uint32_t>(rng.next_below(64));
      r.is_write = rng.bernoulli(0.3);
      if (ch.enqueue(r)) ++sent;
    }
    ch.tick(now, out);
  }
  ASSERT_EQ(sent, 600u);
  ch.finalize(now);
  EXPECT_GT(checker.commands_checked(), 1200u);
  EXPECT_EQ(checker.violation_count(), 0u) << checker.report();
}

TEST(ProtocolCheckerProperty, RealChannelIsCleanClosePage) {
  run_channel_clean(dram::RowPolicy::kClosePage, true, 21);
  run_channel_clean(dram::RowPolicy::kClosePage, false, 22);
}

TEST(ProtocolCheckerProperty, RealChannelIsCleanOpenPage) {
  run_channel_clean(dram::RowPolicy::kOpenPage, true, 23);
  run_channel_clean(dram::RowPolicy::kOpenPage, false, 24);
}

TEST(ProtocolCheckerProperty, CheckedSystemSimRunCompletes) {
  sim::SimOptions opts;
  opts.target_instructions = 60'000;
  opts.seed = 5;
  opts.protocol_check = true;  // run() throws on any violation
  const sim::RunResult r =
      sim::run_experiment(ecc::SchemeId::kLotEcc5Parity,
                          ecc::SystemScale::kQuadEquivalent, "lbm", opts);
  EXPECT_GE(r.instructions, 60'000u);
}

TEST(ProtocolCheckerProperty, CheckedRunMatchesUncheckedRun) {
  sim::SimOptions opts;
  opts.target_instructions = 40'000;
  opts.seed = 7;
  const sim::RunResult plain =
      sim::run_experiment(ecc::SchemeId::kChipkill18,
                          ecc::SystemScale::kQuadEquivalent, "milc", opts);
  opts.protocol_check = true;
  const sim::RunResult checked =
      sim::run_experiment(ecc::SchemeId::kChipkill18,
                          ecc::SystemScale::kQuadEquivalent, "milc", opts);
  // Observation must be free of side effects: bit-identical results.
  EXPECT_EQ(plain.mem_cycles, checked.mem_cycles);
  EXPECT_EQ(plain.instructions, checked.instructions);
  EXPECT_EQ(plain.mem.reads, checked.mem.reads);
  EXPECT_EQ(plain.mem.writes, checked.mem.writes);
  EXPECT_DOUBLE_EQ(plain.epi_pj, checked.epi_pj);
  EXPECT_DOUBLE_EQ(plain.ipc, checked.ipc);
}

}  // namespace
}  // namespace eccsim::check
