file(REMOVE_RECURSE
  "CMakeFiles/sec6a_mixed_ranks.dir/sec6a_mixed_ranks.cpp.o"
  "CMakeFiles/sec6a_mixed_ranks.dir/sec6a_mixed_ranks.cpp.o.d"
  "sec6a_mixed_ranks"
  "sec6a_mixed_ranks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec6a_mixed_ranks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
