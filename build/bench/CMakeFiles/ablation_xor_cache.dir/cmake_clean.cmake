file(REMOVE_RECURSE
  "CMakeFiles/ablation_xor_cache.dir/ablation_xor_cache.cpp.o"
  "CMakeFiles/ablation_xor_cache.dir/ablation_xor_cache.cpp.o.d"
  "ablation_xor_cache"
  "ablation_xor_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_xor_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
