#include "common/table.hpp"

#include <filesystem>
#include <fstream>
#include <iomanip>
#include <sstream>

namespace eccsim {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::pct(double fraction, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << fraction * 100.0 << '%';
  return os.str();
}

std::string Table::str() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    width[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(width[c]) + 2) << row[c];
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (auto w : width) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

namespace {
std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char ch : s) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

std::string Table::csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << csv_escape(row[c]);
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

bool write_file(const std::string& path, const std::string& content) {
  std::error_code ec;
  const auto parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) {
    std::filesystem::create_directories(parent, ec);
    if (ec) return false;
  }
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << content;
  return static_cast<bool>(out);
}

}  // namespace eccsim
