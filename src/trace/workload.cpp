#include "trace/workload.hpp"

#include <cmath>
#include <stdexcept>

namespace eccsim::trace {

namespace {

WorkloadDesc make(const std::string& name, int bin, bool mt, double apki,
                  double wr, double fp_mb, double stream, double hot_frac,
                  double hot_prob) {
  WorkloadDesc d;
  d.name = name;
  d.bin = bin;
  d.multithreaded = mt;
  d.apki = apki;
  d.write_fraction = wr;
  d.footprint_bytes = static_cast<std::uint64_t>(fp_mb * 1024 * 1024);
  d.stream_fraction = stream;
  d.hot_fraction = hot_frac;
  d.hot_access_prob = hot_prob;
  return d;
}

}  // namespace

const std::vector<WorkloadDesc>& paper_workloads() {
  // Bin assignment follows Fig. 9's split: eight high-bandwidth (Bin2) and
  // eight low-bandwidth (Bin1) workloads.  Parameters are calibrated
  // caricatures of the published memory behavior of each benchmark:
  // streaming solvers (lbm, libquantum, leslie3d, GemsFDTD, milc) are
  // sequential and write-heavy; mcf and canneal are pointer-chasing with
  // large footprints; sjeng/gcc/bzip2/hmmer are cache-resident.
  static const std::vector<WorkloadDesc> kWorkloads = {
      // --- Bin2: high memory access rate --------------------------------
      make("mcf",           2, false, 45.0, 0.28, 420, 0.10, 0.05, 0.35),
      make("lbm",           2, false, 32.0, 0.45, 380, 0.95, 0.02, 0.10),
      make("libquantum",    2, false, 28.0, 0.25, 256, 0.98, 0.01, 0.05),
      make("milc",          2, false, 26.0, 0.38, 340, 0.85, 0.05, 0.15),
      make("leslie3d",      2, false, 24.0, 0.40, 300, 0.90, 0.04, 0.12),
      make("GemsFDTD",      2, false, 27.0, 0.42, 360, 0.88, 0.04, 0.12),
      make("canneal",       2, true,  30.0, 0.15, 512, 0.05, 0.08, 0.30),
      make("streamcluster", 2, true,  25.0, 0.12, 200, 0.92, 0.03, 0.20),
      // --- Bin1: low memory access rate ---------------------------------
      // Bin1 codes are cache-friendly: most of their L2 traffic hits a
      // small hot set that fits in the 8MB LLC, so the memory system sees
      // only the cold tail (Fig. 9 shows them far below the Bin2 group).
      make("omnetpp",       1, false, 12.0, 0.35, 160, 0.08, 0.003, 0.88),
      make("sjeng",         1, false,  4.0, 0.30,  90, 0.04, 0.006, 0.92),
      make("gcc",           1, false,  6.0, 0.33, 110, 0.08, 0.004, 0.88),
      make("bzip2",         1, false,  7.0, 0.32, 120, 0.12, 0.004, 0.85),
      make("hmmer",         1, false,  3.5, 0.28,  48, 0.08, 0.010, 0.93),
      make("soplex",        1, false, 10.0, 0.24, 180, 0.15, 0.0025, 0.82),
      make("facesim",       1, true,   8.0, 0.34, 140, 0.20, 0.020, 0.85),
      make("ferret",        1, true,   6.5, 0.26, 100, 0.12, 0.015, 0.86),
  };
  return kWorkloads;
}

const WorkloadDesc& workload_by_name(const std::string& name) {
  return paper_workloads()[workload_index(name)];
}

std::size_t workload_index(const std::string& name) {
  const auto& all = paper_workloads();
  for (std::size_t i = 0; i < all.size(); ++i) {
    if (all[i].name == name) return i;
  }
  throw std::out_of_range("unknown workload: " + name);
}

std::uint64_t paper_sweep_seed(std::size_t index) {
  // Mirrors runner::substream_seed(1, index); duplicated here so the
  // trace layer does not depend on the runner (tests pin the equality).
  constexpr std::uint64_t kPaperRootSeed = 1;
  SplitMix64 sm(kPaperRootSeed ^ (0x9e3779b97f4a7c15ULL * (index + 1)));
  return sm.next();
}

std::uint64_t paper_sweep_seed(const std::string& name) {
  return paper_sweep_seed(workload_index(name));
}

CoreGenerator::CoreGenerator(const WorkloadDesc& desc, unsigned core,
                             unsigned cores, std::uint64_t seed)
    : desc_(desc) {
  SplitMix64 sm(seed ^ (0xc2b2ae3d27d4eb4fULL * (core + 1)));
  rng_ = Rng(sm.next());
  const std::uint64_t total_lines = desc.footprint_bytes / 64;
  if (desc.multithreaded) {
    // PARSEC-style: all threads share the footprint.
    region_base_ = 0;
    region_lines_ = total_lines;
    // Stagger thread starting points through the shared region.
    stream_pos_ = total_lines * core / std::max(1u, cores);
  } else {
    // Multiprogrammed: eight instances of the same benchmark, each with a
    // private copy of the footprint (Sec. IV-B).
    region_lines_ = total_lines;
    region_base_ = static_cast<std::uint64_t>(core) * total_lines;
  }
  if (region_lines_ == 0) region_lines_ = 1;
  gap_mean_ = 1000.0 / desc.apki;
}

std::uint64_t CoreGenerator::random_line() {
  // Hot-set reuse: a fraction of the footprint receives most of the random
  // traffic, which is what gives the LLC something to hold on to.
  const std::uint64_t hot_lines = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             static_cast<double>(region_lines_) * desc_.hot_fraction));
  if (rng_.next_double() < desc_.hot_access_prob) {
    return region_base_ + rng_.next_below(hot_lines);
  }
  return region_base_ + rng_.next_below(region_lines_);
}

MemOp CoreGenerator::next() {
  MemOp op;
  // Geometric gap with the workload's mean: memoryless instruction counts
  // between accesses.
  const double u = rng_.next_double();
  op.gap = static_cast<std::uint32_t>(-gap_mean_ * std::log(1.0 - u));
  if (pending_sibling_ >= 0) {
    op.line = static_cast<std::uint64_t>(pending_sibling_);
    pending_sibling_ = -1;
  } else if (rng_.next_double() < desc_.stream_fraction) {
    op.line = region_base_ + stream_pos_;
    stream_pos_ = (stream_pos_ + 1) % region_lines_;
  } else {
    op.line = random_line();
    if (rng_.next_double() < desc_.sibling_locality) {
      pending_sibling_ = static_cast<std::int64_t>(op.line ^ 1);
    }
  }
  op.is_write = rng_.next_double() < desc_.write_fraction;
  return op;
}

}  // namespace eccsim::trace
