// Functional tests for the per-scheme line codecs: encode, detect, correct
// against injected chip failures, and the detection/correction bit split
// that ECC Parity builds on.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>
#include <vector>

#include "common/rng.hpp"
#include "ecc/codec.hpp"
#include "ecc/multiecc.hpp"

namespace eccsim::ecc {
namespace {

std::vector<std::uint8_t> random_line(Rng& rng, unsigned bytes) {
  std::vector<std::uint8_t> line(bytes);
  for (auto& b : line) b = static_cast<std::uint8_t>(rng.next_below(256));
  return line;
}

/// Corrupts every byte of `chip`'s share of the data line.
void kill_chip(const LineCodec& codec, std::vector<std::uint8_t>& data,
               unsigned chip, Rng& rng) {
  for (unsigned off : codec.chip_data_offsets(chip)) {
    data[off] ^= static_cast<std::uint8_t>(1 + rng.next_below(255));
  }
}

// ---------------------------------------------------------------------------
// Parameterized across every per-line codec scheme.

class CodecParamTest : public ::testing::TestWithParam<SchemeId> {};

TEST_P(CodecParamTest, CleanLinePassesDetection) {
  const auto codec = make_codec(GetParam());
  Rng rng(11);
  for (int i = 0; i < 20; ++i) {
    const auto data = random_line(rng, codec->data_bytes());
    const auto det = codec->detection_bits(data);
    EXPECT_EQ(det.size(), codec->detection_bytes());
    EXPECT_FALSE(codec->detect(data, det));
  }
}

TEST_P(CodecParamTest, SingleChipFailureIsDetected) {
  const auto codec = make_codec(GetParam());
  Rng rng(12);
  for (unsigned chip = 0; chip < codec->chips(); ++chip) {
    if (codec->chip_data_offsets(chip).empty()) continue;  // ECC-only chip
    auto data = random_line(rng, codec->data_bytes());
    const auto det = codec->detection_bits(data);
    kill_chip(*codec, data, chip, rng);
    EXPECT_TRUE(codec->detect(data, det)) << "chip " << chip;
  }
}

TEST_P(CodecParamTest, SingleChipFailureIsCorrected) {
  const auto codec = make_codec(GetParam());
  Rng rng(13);
  for (unsigned chip = 0; chip < codec->chips(); ++chip) {
    if (codec->chip_data_offsets(chip).empty()) continue;
    auto data = random_line(rng, codec->data_bytes());
    const auto orig = data;
    const auto det = codec->detection_bits(data);
    const auto corr = codec->correction_bits(data);
    kill_chip(*codec, data, chip, rng);
    const CodecResult r = codec->correct(data, det, corr);
    ASSERT_TRUE(r.ok) << "chip " << chip;
    EXPECT_TRUE(r.detected);
    EXPECT_EQ(data, orig);
  }
}

TEST_P(CodecParamTest, CorrectOnCleanLineIsNoop) {
  const auto codec = make_codec(GetParam());
  Rng rng(14);
  auto data = random_line(rng, codec->data_bytes());
  const auto orig = data;
  const auto det = codec->detection_bits(data);
  const auto corr = codec->correction_bits(data);
  const CodecResult r = codec->correct(data, det, corr);
  EXPECT_TRUE(r.ok);
  EXPECT_FALSE(r.detected);
  EXPECT_EQ(data, orig);
}

TEST_P(CodecParamTest, ErasureHintCorrects) {
  const auto codec = make_codec(GetParam());
  Rng rng(15);
  unsigned chip = 0;
  while (codec->chip_data_offsets(chip).empty()) ++chip;
  auto data = random_line(rng, codec->data_bytes());
  const auto orig = data;
  const auto det = codec->detection_bits(data);
  const auto corr = codec->correction_bits(data);
  kill_chip(*codec, data, chip, rng);
  const unsigned bad[] = {chip};
  const CodecResult r = codec->correct(data, det, corr, bad);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(data, orig);
}

TEST_P(CodecParamTest, CorrectionBitSizesMatchScheme) {
  const SchemeId id = GetParam();
  const auto codec = make_codec(id);
  const auto desc = make_scheme(id, SystemScale::kQuadEquivalent);
  // correction_ratio * data_bytes must equal the codec's correction bytes.
  // Classic RAIM's ratio (9/32 chips) additionally counts the parity
  // DIMM's own detection chip: 36B stored = 32B XOR payload + 4B checks.
  double expected = desc.correction_ratio * codec->data_bytes();
  if (id == SchemeId::kRaim) expected /= 1.125;
  EXPECT_NEAR(expected, static_cast<double>(codec->correction_bytes()), 1e-9)
      << to_string(id);
}

INSTANTIATE_TEST_SUITE_P(
    AllPerLineCodecs, CodecParamTest,
    ::testing::Values(SchemeId::kChipkill36, SchemeId::kChipkill18,
                      SchemeId::kLotEcc5, SchemeId::kLotEcc9,
                      SchemeId::kRaim, SchemeId::kRaimParity),
    [](const ::testing::TestParamInfo<SchemeId>& info) {
      std::string n = to_string(info.param);
      for (auto& c : n) {
        if (c == '+') c = '_';
      }
      return n;
    });

// ---------------------------------------------------------------------------
// Scheme-specific behavior.

TEST(Chipkill36, DetectsDoubleChipFailure) {
  const auto codec = make_codec(SchemeId::kChipkill36);
  Rng rng(16);
  auto data = random_line(rng, 128);
  const auto det = codec->detection_bits(data);
  kill_chip(*codec, data, 3, rng);
  kill_chip(*codec, data, 17, rng);
  EXPECT_TRUE(codec->detect(data, det));
}

TEST(Chipkill36, CorrectsTwoChipErasures) {
  // With both failed chips known (erasures), the RS(36,34) word per the
  // correction code has 2 checks: 2 erasures are correctable.
  const auto codec = make_codec(SchemeId::kChipkill36);
  Rng rng(17);
  auto data = random_line(rng, 128);
  const auto orig = data;
  const auto det = codec->detection_bits(data);
  const auto corr = codec->correction_bits(data);
  kill_chip(*codec, data, 3, rng);
  kill_chip(*codec, data, 17, rng);
  const unsigned bad[] = {3u, 17u};
  const CodecResult r = codec->correct(data, det, corr, bad);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(data, orig);
}

TEST(Chipkill18, HasNoSeparableCorrectionBits) {
  const auto codec = make_codec(SchemeId::kChipkill18);
  EXPECT_EQ(codec->correction_bytes(), 0u);
  // ECC Parity therefore cannot apply (Sec. IV-A): R == 0.
  const auto desc = make_scheme(SchemeId::kChipkill18,
                                SystemScale::kQuadEquivalent);
  EXPECT_DOUBLE_EQ(desc.correction_ratio, 0.0);
}

TEST(LotEcc5, TwoChipFailureIsDetectedButNotCorrected) {
  const auto codec = make_codec(SchemeId::kLotEcc5);
  Rng rng(18);
  auto data = random_line(rng, 64);
  const auto det = codec->detection_bits(data);
  const auto corr = codec->correction_bits(data);
  kill_chip(*codec, data, 0, rng);
  kill_chip(*codec, data, 2, rng);
  EXPECT_TRUE(codec->detect(data, det));
  const CodecResult r = codec->correct(data, det, corr);
  EXPECT_FALSE(r.ok);  // tier 2 XOR is single-erasure only
}

TEST(LotEcc5, CorrectionBitsAreXorOfShares) {
  const auto codec = make_codec(SchemeId::kLotEcc5);
  Rng rng(19);
  const auto data = random_line(rng, 64);
  const auto corr = codec->correction_bits(data);
  ASSERT_EQ(corr.size(), 16u);
  for (unsigned b = 0; b < 16; ++b) {
    const std::uint8_t expect = static_cast<std::uint8_t>(
        data[b] ^ data[16 + b] ^ data[32 + b] ^ data[48 + b]);
    EXPECT_EQ(corr[b], expect);
  }
}

TEST(Raim, SurvivesFullDimmLoss) {
  const auto codec = make_codec(SchemeId::kRaim);
  Rng rng(20);
  for (unsigned dimm = 0; dimm < 4; ++dimm) {
    auto data = random_line(rng, 128);
    const auto orig = data;
    const auto det = codec->detection_bits(data);
    const auto corr = codec->correction_bits(data);
    kill_chip(*codec, data, dimm, rng);  // chip == DIMM granularity here
    const CodecResult r = codec->correct(data, det, corr);
    ASSERT_TRUE(r.ok) << "dimm " << dimm;
    EXPECT_EQ(data, orig);
  }
}

TEST(Raim, TwoDimmLossUncorrectable) {
  const auto codec = make_codec(SchemeId::kRaim);
  Rng rng(21);
  auto data = random_line(rng, 128);
  const auto det = codec->detection_bits(data);
  const auto corr = codec->correction_bits(data);
  kill_chip(*codec, data, 0, rng);
  kill_chip(*codec, data, 2, rng);
  EXPECT_FALSE(codec->correct(data, det, corr).ok);
}

TEST(MakeCodec, MultiEccThrows) {
  EXPECT_THROW(make_codec(SchemeId::kMultiEcc), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Multi-ECC group codec.

TEST(MultiEcc, GroupRoundTrip) {
  MultiEccGroupCodec codec(8, 8);
  Rng rng(22);
  std::vector<std::vector<std::uint8_t>> group;
  std::vector<std::vector<std::uint8_t>> dets;
  for (unsigned i = 0; i < 8; ++i) {
    group.push_back(random_line(rng, 64));
    dets.push_back(codec.detection_bits(group.back()));
  }
  auto corr = codec.correction_line(group);
  const auto orig = group[3];
  // Kill chip 5 of member 3.
  for (unsigned b = 0; b < 8; ++b) {
    group[3][5 * 8 + b] ^= static_cast<std::uint8_t>(1 + rng.next_below(255));
  }
  const auto located = codec.locate(group[3], dets[3]);
  ASSERT_EQ(located.size(), 1u);
  EXPECT_EQ(located[0], 5u);
  ASSERT_TRUE(codec.correct_member(group, dets, corr, 3, 5));
  EXPECT_EQ(group[3], orig);
}

TEST(MultiEcc, IncrementalUpdateMatchesRebuild) {
  MultiEccGroupCodec codec(4, 8);
  Rng rng(23);
  std::vector<std::vector<std::uint8_t>> group;
  for (unsigned i = 0; i < 4; ++i) group.push_back(random_line(rng, 64));
  auto corr = codec.correction_line(group);
  const auto old_line = group[2];
  group[2] = random_line(rng, 64);
  codec.update_correction_line(corr, old_line, group[2]);
  EXPECT_EQ(corr, codec.correction_line(group));
}

TEST(MultiEcc, RefusesWhenSecondMemberCorrupt) {
  MultiEccGroupCodec codec(4, 8);
  Rng rng(24);
  std::vector<std::vector<std::uint8_t>> group;
  std::vector<std::vector<std::uint8_t>> dets;
  for (unsigned i = 0; i < 4; ++i) {
    group.push_back(random_line(rng, 64));
    dets.push_back(codec.detection_bits(group.back()));
  }
  const auto corr = codec.correction_line(group);
  group[0][0] ^= 0xFF;
  group[1][0] ^= 0xFF;
  EXPECT_FALSE(codec.correct_member(group, dets, corr, 0, 0));
}

TEST(MultiEcc, DetectionBytesMatchOverheadStory) {
  // One checksum byte per chip per 64B line = 12.5% detection overhead.
  MultiEccGroupCodec codec;
  EXPECT_EQ(codec.detection_bytes_per_line(), 8u);
  EXPECT_EQ(codec.group_lines(), 256u);  // ~0.4% correction overhead
}

}  // namespace
}  // namespace eccsim::ecc
