file(REMOVE_RECURSE
  "CMakeFiles/eccparity_manager_test.dir/eccparity_manager_test.cpp.o"
  "CMakeFiles/eccparity_manager_test.dir/eccparity_manager_test.cpp.o.d"
  "eccparity_manager_test"
  "eccparity_manager_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eccparity_manager_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
