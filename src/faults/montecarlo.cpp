#include "faults/montecarlo.hpp"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <thread>
#include <unordered_set>

#include "common/units.hpp"

namespace eccsim::faults {

namespace {

/// Deterministic per-system generator: cheap to derive for any index
/// (unlike repeated jump()), still statistically independent streams.
Rng system_rng(std::uint64_t seed, unsigned index) {
  SplitMix64 sm(seed ^ (0x9e3779b97f4a7c15ULL * (index + 1)));
  return Rng(sm.next());
}

}  // namespace

void parallel_systems(unsigned systems, std::uint64_t seed,
                      const std::function<void(unsigned, Rng&)>& fn) {
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const unsigned workers = std::min(hw, systems == 0 ? 1u : systems);
  if (workers <= 1) {
    for (unsigned i = 0; i < systems; ++i) {
      Rng rng = system_rng(seed, i);
      fn(i, rng);
    }
    return;
  }
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) {
    pool.emplace_back([&, w] {
      for (unsigned i = w; i < systems; i += workers) {
        Rng rng = system_rng(seed, i);
        fn(i, rng);
      }
    });
  }
  for (auto& t : pool) t.join();
}

std::vector<FaultEvent> sample_lifetime(const SystemShape& shape,
                                        const FitRates& rates,
                                        double lifetime_hours, Rng& rng) {
  std::vector<FaultEvent> events;
  const unsigned total_chips = shape.total_chips();
  for (std::size_t ti = 0; ti < kFaultTypeCount; ++ti) {
    const auto type = static_cast<FaultType>(ti);
    const double rate_per_hour =
        units::fit_to_per_hour(rates[type]) * total_chips;
    if (rate_per_hour <= 0) continue;
    // Poisson process over the whole chip population for this type.
    double t = rng.exponential(rate_per_hour);
    while (t < lifetime_hours) {
      FaultEvent e;
      e.time_hours = t;
      e.type = type;
      const std::uint64_t chip = rng.next_below(total_chips);
      e.channel = static_cast<unsigned>(chip / shape.chips_per_channel());
      const std::uint64_t within =
          chip % shape.chips_per_channel();
      e.rank = static_cast<unsigned>(within / shape.chips_per_rank);
      e.chip = static_cast<unsigned>(within % shape.chips_per_rank);
      events.push_back(e);
      t += rng.exponential(rate_per_hour);
    }
  }
  std::sort(events.begin(), events.end());
  return events;
}

double analytic_mtbf_hours(const SystemShape& shape, double total_fit) {
  return units::mtbf_hours(total_fit, shape.total_chips());
}

MtbfResult mtbf_between_channels(const SystemShape& shape,
                                 const FitRates& rates, unsigned systems,
                                 double lifetime_hours, std::uint64_t seed) {
  MtbfResult out;
  out.analytic_hours = analytic_mtbf_hours(shape, rates.total());
  std::mutex mu;
  double gap_sum = 0;
  std::uint64_t gaps = 0;
  parallel_systems(systems, seed, [&](unsigned, Rng& rng) {
    const auto events = sample_lifetime(shape, rates, lifetime_hours, rng);
    double local_sum = 0;
    std::uint64_t local_gaps = 0;
    for (std::size_t i = 1; i < events.size(); ++i) {
      if (events[i].channel != events[i - 1].channel) {
        local_sum += events[i].time_hours - events[i - 1].time_hours;
        ++local_gaps;
      }
    }
    const std::scoped_lock lock(mu);
    gap_sum += local_sum;
    gaps += local_gaps;
  });
  out.gaps_observed = gaps;
  out.simulated_hours = gaps ? gap_sum / static_cast<double>(gaps) : 0.0;
  return out;
}

EolResult eol_materialized_fraction(const SystemShape& shape,
                                    const FitRates& rates, unsigned systems,
                                    double lifetime_hours,
                                    std::uint64_t seed) {
  std::mutex mu;
  SampleSet fractions;
  fractions.reserve(systems);
  unsigned with_any = 0;
  parallel_systems(systems, seed, [&](unsigned, Rng& rng) {
    const auto events = sample_lifetime(shape, rates, lifetime_hours, rng);
    // Pairs marked faulty: key = channel * banks_per_channel/2 + pair.
    std::unordered_set<std::uint64_t> faulty_pairs;
    for (const FaultEvent& e : events) {
      if (!saturates_error_counter(e.type)) continue;
      const unsigned affected =
          banks_affected(e.type, shape.banks_per_rank,
                         shape.ranks_per_channel);
      if (e.type == FaultType::kMultiRank) {
        // Every bank of every rank in the channel.
        for (unsigned r = 0; r < shape.ranks_per_channel; ++r) {
          for (unsigned b = 0; b < shape.banks_per_rank; b += 2) {
            faulty_pairs.insert(
                (static_cast<std::uint64_t>(e.channel) << 32) |
                (r << 8) | (b / 2));
          }
        }
      } else {
        // Banks within the faulted chip's rank, starting at a random bank.
        const unsigned first =
            static_cast<unsigned>(rng.next_below(shape.banks_per_rank));
        for (unsigned k = 0; k < affected; ++k) {
          const unsigned b = (first + k) % shape.banks_per_rank;
          faulty_pairs.insert(
              (static_cast<std::uint64_t>(e.channel) << 32) |
              (e.rank << 8) | (b / 2));
        }
      }
    }
    const double fraction =
        2.0 * static_cast<double>(faulty_pairs.size()) /
        static_cast<double>(shape.total_banks());
    const std::scoped_lock lock(mu);
    fractions.add(fraction);
    if (!faulty_pairs.empty()) ++with_any;
  });
  EolResult out;
  out.mean_fraction = fractions.mean();
  out.p999_fraction = fractions.percentile(99.9);
  out.systems_with_any =
      systems ? static_cast<double>(with_any) / systems : 0.0;
  return out;
}

double analytic_multichannel_window_probability(const SystemShape& shape,
                                                double total_fit,
                                                double window_hours,
                                                double lifetime_hours) {
  // Per window: each channel faults with p = 1 - exp(-lambda_ch * w);
  // P(>= 2 channels fault) = 1 - (1-p)^N - N p (1-p)^{N-1}.
  const double lambda_ch = units::fit_to_per_hour(total_fit) *
                           shape.chips_per_channel();
  const double p = 1.0 - std::exp(-lambda_ch * window_hours);
  const unsigned n = shape.channels;
  const double none = std::pow(1.0 - p, n);
  const double one = n * p * std::pow(1.0 - p, n - 1);
  const double q = 1.0 - none - one;
  const double windows = lifetime_hours / window_hours;
  // P(at least one bad window over the lifetime).
  return 1.0 - std::pow(1.0 - q, windows);
}

ScrubWindowResult multichannel_window_probability(
    const SystemShape& shape, const FitRates& rates, double window_hours,
    double lifetime_hours, unsigned systems, std::uint64_t seed) {
  ScrubWindowResult out;
  out.analytic_probability = analytic_multichannel_window_probability(
      shape, rates.total(), window_hours, lifetime_hours);
  std::mutex mu;
  unsigned bad_systems = 0;
  parallel_systems(systems, seed, [&](unsigned, Rng& rng) {
    const auto events = sample_lifetime(shape, rates, lifetime_hours, rng);
    // Walk the sorted events; flag any window containing two channels.
    bool bad = false;
    std::size_t i = 0;
    while (i < events.size() && !bad) {
      const auto window_index =
          static_cast<std::uint64_t>(events[i].time_hours / window_hours);
      const unsigned first_channel = events[i].channel;
      std::size_t j = i + 1;
      while (j < events.size() &&
             static_cast<std::uint64_t>(events[j].time_hours /
                                        window_hours) == window_index) {
        if (events[j].channel != first_channel) {
          bad = true;
          break;
        }
        ++j;
      }
      i = j;
    }
    if (bad) {
      const std::scoped_lock lock(mu);
      ++bad_systems;
    }
  });
  out.simulated_probability =
      systems ? static_cast<double>(bad_systems) / systems : 0.0;
  return out;
}

double hpc_stall_fraction(const HpcStallParams& params,
                          const FitRates& rates) {
  const double nodes = params.total_memory_bytes / params.node_memory_bytes;
  const double chips_per_node =
      params.node_memory_bytes / params.chip_capacity_bytes;
  // Migration happens on every column-or-larger fault (Sec. VI-B).
  double sat_fit = 0;
  for (std::size_t t = 0; t < kFaultTypeCount; ++t) {
    const auto type = static_cast<FaultType>(t);
    if (saturates_error_counter(type)) sat_fit += rates[type];
  }
  const double events_per_hour =
      units::fit_to_per_hour(sat_fit) * chips_per_node * nodes;
  // Stall per event: migrate the node's memory over its NIC, plus
  // reconstructing the ECC correction bits, which requires streaming the
  // faulty node's memory once at memory bandwidth (~50 GB/s; a few
  // seconds, Sec. III-B).
  const double migrate_s =
      params.node_memory_bytes / params.nic_bandwidth_bytes_per_s;
  const double reconstruct_s =
      params.node_memory_bytes / (50.0 * 1024 * 1024 * 1024);
  const double stall_hours = (migrate_s + reconstruct_s) / 3600.0;
  return events_per_hour * stall_hours;
}

}  // namespace eccsim::faults
