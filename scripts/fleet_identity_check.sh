#!/bin/sh
# Byte-identity and cache round-trip gate for the fleet subsystem.
#
# Usage: ./scripts/fleet_identity_check.sh <fleetd-binary>
#   e.g. ./scripts/fleet_identity_check.sh build/tools/fleetd/fleetd
#
# Part 1 -- sharding identity (the src/fleet coordinator contract, see
# docs/CHECKPOINTS.md): the heterogeneous demo spec, smoke-scaled, is
# evaluated at shards 1, 2, and 8 in-process and at shards 4 as spawned
# `fleetd --worker` processes.  All four result JSONs must be
# byte-identical (they carry no timestamps or execution-mode fields by
# design).
#
# Part 2 -- daemon cache round-trip (docs/OBSERVABILITY.md): a served
# `fleetd serve` daemon gets the same spec submitted twice over its
# Unix-domain socket.  The first submit simulates and populates
# <results>/cache/<config_hash>.json, which must be byte-identical to the
# direct runs; the second must be answered from the cache (response
# cache_hit:true and a req-2 manifest recording the hit).
set -e

bin=$1
if [ -z "$bin" ] || [ ! -x "$bin" ]; then
  echo "usage: $0 <fleetd-binary>" >&2
  exit 2
fi
cd "$(dirname "$0")/.."

work=$(mktemp -d)
daemon_pid=""
cleanup() {
  [ -n "$daemon_pid" ] && kill "$daemon_pid" 2>/dev/null
  rm -rf "$work"
}
trap cleanup EXIT

spec=examples/fleet_demo.json
scale=50

echo "[fleet-identity] shards 1 (in-process, 1 thread)" >&2
"$bin" run --spec "$spec" --scale $scale --shards 1 --threads 1 \
  --out "$work/s1.json" >/dev/null
echo "[fleet-identity] shards 2 (in-process)" >&2
"$bin" run --spec "$spec" --scale $scale --shards 2 \
  --out "$work/s2.json" >/dev/null
echo "[fleet-identity] shards 8 (in-process)" >&2
"$bin" run --spec "$spec" --scale $scale --shards 8 \
  --out "$work/s8.json" >/dev/null
echo "[fleet-identity] shards 4 (worker processes)" >&2
"$bin" run --spec "$spec" --scale $scale --shards 4 --mode worker \
  --work-dir "$work/units" --out "$work/w4.json" >/dev/null

for f in s2 s8 w4; do
  if ! cmp -s "$work/s1.json" "$work/$f.json"; then
    echo "[fleet-identity] FAIL: $f.json differs from s1.json" >&2
    diff "$work/s1.json" "$work/$f.json" >&2 || true
    exit 1
  fi
done
echo "[fleet-identity] merged results byte-identical across shard plans" >&2

# The daemon submits a spec *file*, so materialize the scaled fleet the
# shard runs evaluated (divide every pool's node count by the factor,
# floor 1 -- the scale_nodes rule).
python3 - "$spec" "$work/spec.json" $scale <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
for pool in doc["pools"]:
    pool["nodes"] = max(1, pool["nodes"] // int(sys.argv[3]))
json.dump(doc, open(sys.argv[2], "w"))
EOF
hash=$("$bin" hash --spec "$work/spec.json")

echo "[fleet-identity] starting fleetd daemon" >&2
"$bin" serve --socket "$work/d.sock" --results "$work/fleet" &
daemon_pid=$!
for _ in $(seq 1 100); do
  if "$bin" ping --socket "$work/d.sock" >/dev/null 2>&1; then break; fi
  sleep 0.1
done

echo "[fleet-identity] submit #1 (must simulate)" >&2
"$bin" submit --socket "$work/d.sock" --spec "$work/spec.json" --wait \
  >"$work/sub1.out"
grep -q '"cache_hit": false' "$work/sub1.out"

if ! cmp -s "$work/s1.json" "$work/fleet/cache/$hash.json"; then
  echo "[fleet-identity] FAIL: daemon cache differs from direct runs" >&2
  diff "$work/s1.json" "$work/fleet/cache/$hash.json" >&2 || true
  exit 1
fi

echo "[fleet-identity] submit #2 (must hit the cache)" >&2
"$bin" submit --socket "$work/d.sock" --spec "$work/spec.json" \
  >"$work/sub2.out"
grep -q '"cache_hit": true' "$work/sub2.out"
grep -q '"state": "cached"' "$work/sub2.out"
grep -q '"cache_hit": "false"' "$work/fleet/manifests/req-1.json"
grep -q '"cache_hit": "true"' "$work/fleet/manifests/req-2.json"

"$bin" results --socket "$work/d.sock" --hash "$hash" >/dev/null
"$bin" shutdown --socket "$work/d.sock" >/dev/null
wait "$daemon_pid"
daemon_pid=""
echo "[fleet-identity] daemon round-trip OK (hash $hash): PASS" >&2
