# Empty dependencies file for ecc_codec_test.
# This may be replaced when dependencies are built.
