// google-benchmark microbenchmarks: throughput of the hot computational
// kernels -- Reed-Solomon encode/decode, the per-scheme line codecs, the
// ECC Parity manager's read/write paths, and the DRAM channel scheduler.
// These are engineering benchmarks for the library itself (regression
// tracking), not paper figures.
#include <benchmark/benchmark.h>

#include <vector>

#include "common/rng.hpp"
#include "dram/channel.hpp"
#include "ecc/codec.hpp"
#include "eccparity/manager.hpp"
#include "gf/kernels.hpp"
#include "gf/rs.hpp"

using namespace eccsim;

namespace {

/// Pins one GF kernel for the duration of a measurement loop and restores
/// the previous dispatch on destruction, so the per-kernel benchmarks
/// below compare implementations instead of whatever ECCSIM_KERNEL chose.
class ScopedKernel {
 public:
  explicit ScopedKernel(gf::Kernel k) : prev_(gf::set_kernel_override(k)) {}
  ~ScopedKernel() { gf::set_kernel_override(prev_); }
  ScopedKernel(const ScopedKernel&) = delete;
  ScopedKernel& operator=(const ScopedKernel&) = delete;

 private:
  gf::Kernel prev_;
};

bool skip_unless_available(benchmark::State& state, gf::Kernel k) {
  if (gf::kernel_available(k)) return false;
  state.SkipWithError("kernel unavailable on this CPU");
  return true;
}

// RS(36,32) encode with the kernel pinned per run: the headline number
// behind the slice8/simd speedup claims in docs/KERNELS.md, and the series
// benchtool's perf history tracks per kernel.
void BM_Rs8EncodeKernel(benchmark::State& state) {
  const auto kern = static_cast<gf::Kernel>(state.range(0));
  if (skip_unless_available(state, kern)) return;
  ScopedKernel pin(kern);
  gf::Rs8 rs(36, 32);
  Rng rng(1);
  std::vector<std::uint8_t> data(32);
  for (auto& d : data) d = static_cast<std::uint8_t>(rng.next_below(256));
  for (auto _ : state) {
    benchmark::DoNotOptimize(rs.encode(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 32);
  state.SetLabel(gf::kernel_name(kern));
}
BENCHMARK(BM_Rs8EncodeKernel)
    ->Arg(static_cast<int>(gf::Kernel::kScalar))
    ->Arg(static_cast<int>(gf::Kernel::kSlice8))
    ->Arg(static_cast<int>(gf::Kernel::kSimd));

// Syndrome computation (the decode hot path for clean reads) per kernel.
void BM_Rs8CheckKernel(benchmark::State& state) {
  const auto kern = static_cast<gf::Kernel>(state.range(0));
  if (skip_unless_available(state, kern)) return;
  ScopedKernel pin(kern);
  gf::Rs8 rs(36, 32);
  Rng rng(6);
  std::vector<std::uint8_t> data(32);
  for (auto& d : data) d = static_cast<std::uint8_t>(rng.next_below(256));
  const auto cw = rs.encode(data);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rs.check(cw));
  }
  state.SetLabel(gf::kernel_name(kern));
}
BENCHMARK(BM_Rs8CheckKernel)
    ->Arg(static_cast<int>(gf::Kernel::kScalar))
    ->Arg(static_cast<int>(gf::Kernel::kSlice8))
    ->Arg(static_cast<int>(gf::Kernel::kSimd));

// The raw region primitive at DRAM-line size, isolating kernel throughput
// from RS bookkeeping.
void BM_GfMulRegionAccKernel(benchmark::State& state) {
  const auto kern = static_cast<gf::Kernel>(state.range(0));
  if (skip_unless_available(state, kern)) return;
  ScopedKernel pin(kern);
  Rng rng(7);
  std::vector<std::uint8_t> src(4096), dst(4096, 0);
  for (auto& b : src) b = static_cast<std::uint8_t>(rng.next_below(256));
  std::uint8_t c = 2;
  for (auto _ : state) {
    gf::gf_mul_region_acc(c, src.data(), dst.data(), src.size());
    benchmark::DoNotOptimize(dst.data());
    c = static_cast<std::uint8_t>(c + 1);
    if (c == 0) c = 2;
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(src.size()));
  state.SetLabel(gf::kernel_name(kern));
}
BENCHMARK(BM_GfMulRegionAccKernel)
    ->Arg(static_cast<int>(gf::Kernel::kScalar))
    ->Arg(static_cast<int>(gf::Kernel::kSlice8))
    ->Arg(static_cast<int>(gf::Kernel::kSimd));

void BM_Rs8Encode(benchmark::State& state) {
  gf::Rs8 rs(36, 32);
  Rng rng(1);
  std::vector<std::uint8_t> data(32);
  for (auto& d : data) d = static_cast<std::uint8_t>(rng.next_below(256));
  for (auto _ : state) {
    benchmark::DoNotOptimize(rs.encode(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 32);
}
BENCHMARK(BM_Rs8Encode);

void BM_Rs8DecodeOneError(benchmark::State& state) {
  gf::Rs8 rs(36, 32);
  Rng rng(2);
  std::vector<std::uint8_t> data(32);
  for (auto& d : data) d = static_cast<std::uint8_t>(rng.next_below(256));
  const auto clean = rs.encode(data);
  for (auto _ : state) {
    auto cw = clean;
    cw[7] ^= 0x5A;
    const auto res = rs.decode(cw);
    benchmark::DoNotOptimize(res.ok);
  }
}
BENCHMARK(BM_Rs8DecodeOneError);

void BM_CodecEncodeLine(benchmark::State& state) {
  const auto id = static_cast<ecc::SchemeId>(state.range(0));
  const auto codec = ecc::make_codec(id);
  Rng rng(3);
  std::vector<std::uint8_t> line(codec->data_bytes());
  for (auto& b : line) b = static_cast<std::uint8_t>(rng.next_below(256));
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec->detection_bits(line));
    benchmark::DoNotOptimize(codec->correction_bits(line));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          codec->data_bytes());
  state.SetLabel(ecc::to_string(id));
}
BENCHMARK(BM_CodecEncodeLine)
    ->Arg(static_cast<int>(ecc::SchemeId::kChipkill36))
    ->Arg(static_cast<int>(ecc::SchemeId::kChipkill18))
    ->Arg(static_cast<int>(ecc::SchemeId::kLotEcc5))
    ->Arg(static_cast<int>(ecc::SchemeId::kRaim));

void BM_ParityManagerWrite(benchmark::State& state) {
  dram::MemGeometry geom;
  geom.channels = 8;
  geom.ranks_per_channel = 2;
  geom.rows_per_bank = 256;
  geom.line_bytes = 64;
  eccparity::EccParityManager mgr(geom,
                                  ecc::make_codec(ecc::SchemeId::kLotEcc5));
  Rng rng(4);
  std::vector<std::uint8_t> line(64);
  std::uint64_t addr = 0;
  for (auto _ : state) {
    for (auto& b : line) b = static_cast<std::uint8_t>(rng.next());
    mgr.write_line(addr % 100000, line);
    ++addr;
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_ParityManagerWrite);

void BM_ParityReconstruction(benchmark::State& state) {
  dram::MemGeometry geom;
  geom.channels = 8;
  geom.ranks_per_channel = 2;
  geom.rows_per_bank = 256;
  geom.line_bytes = 64;
  eccparity::EccParityManager mgr(
      geom, ecc::make_codec(ecc::SchemeId::kLotEcc5), 1u << 30);
  Rng rng(5);
  std::vector<std::uint8_t> line(64);
  for (std::uint64_t l = 0; l < 64; ++l) {
    for (auto& b : line) b = static_cast<std::uint8_t>(rng.next());
    mgr.write_line(l, line);
  }
  std::uint64_t i = 0;
  for (auto _ : state) {
    const std::uint64_t victim = i++ % 64;
    mgr.corrupt_chip_share(victim, 0);
    auto r = mgr.read_line(victim);  // reconstruct + correct + write back
    benchmark::DoNotOptimize(r.corrected);
  }
}
BENCHMARK(BM_ParityReconstruction);

void BM_DramChannelThroughput(benchmark::State& state) {
  dram::ChannelConfig cfg;
  cfg.device = dram::micron_2gb(dram::DeviceWidth::kX8);
  cfg.ranks = 2;
  cfg.chips_per_rank = 9;
  std::uint64_t issued = 0;
  for (auto _ : state) {
    state.PauseTiming();
    dram::Channel ch(cfg);
    state.ResumeTiming();
    std::vector<dram::MemCompletion> out;
    std::uint64_t now = 0;
    for (unsigned i = 0; i < 256; ++i) {
      dram::MemRequest req;
      req.id = i;
      req.addr = dram::DramAddress{0, i % 2, (i / 2) % 8, i, 0};
      ch.enqueue(req);
    }
    while (ch.pending() + ch.in_flight() > 0) ch.tick(++now, out);
    issued += out.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(issued));
}
BENCHMARK(BM_DramChannelThroughput);

}  // namespace

BENCHMARK_MAIN();
