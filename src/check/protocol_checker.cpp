#include "check/protocol_checker.hpp"

#include <cstdio>
#include <cstdlib>
#include <map>
#include <sstream>

namespace eccsim::check {

namespace {

/// One-line rendering of a command for history dumps and violation detail.
std::string format_cmd(const dram::DramCommand& cmd) {
  std::ostringstream os;
  os << "cycle " << cmd.cycle << " " << dram::to_string(cmd.kind) << " r"
     << cmd.rank << " b" << cmd.bank;
  switch (cmd.kind) {
    case dram::CmdKind::kActivate:
      os << " row " << cmd.row;
      break;
    case dram::CmdKind::kRead:
    case dram::CmdKind::kWrite:
      os << " row " << cmd.row << " col " << cmd.col << " data ["
         << cmd.data_start << ", " << cmd.data_end << ")"
         << (cmd.auto_precharge ? " AP" : "");
      break;
    case dram::CmdKind::kPrecharge:
      os << " row " << cmd.row << (cmd.auto_precharge ? " (auto)" : "");
      break;
    case dram::CmdKind::kRefresh:
      break;
  }
  return os.str();
}

}  // namespace

ProtocolChecker::Mode ProtocolChecker::default_mode() {
#ifndef NDEBUG
  return Mode::kFatal;
#else
  return Mode::kCount;
#endif
}

ProtocolChecker::ProtocolChecker(const dram::ChannelConfig& cfg,
                                 std::string name, Mode mode)
    : cfg_(cfg), name_(std::move(name)), mode_(mode) {
  ranks_.resize(cfg_.ranks);
  const std::uint32_t groups =
      cfg_.device.bank_groups ? cfg_.device.bank_groups : 1;
  const std::uint32_t sets = cfg_.device.refresh_sets();
  for (RankState& r : ranks_) {
    r.group_last_act.resize(groups, 0);
    r.group_has_act.resize(groups, false);
    r.group_last_cas.resize(groups, 0);
    r.group_has_cas.resize(groups, false);
    r.set_last_ref.resize(sets, 0);
    r.set_has_ref.resize(sets, false);
  }
  banks_.resize(static_cast<std::size_t>(cfg_.ranks) * cfg_.banks);
}

void ProtocolChecker::on_command(const dram::DramCommand& cmd) {
  ++commands_;
  if (cmd.rank >= cfg_.ranks ||
      (cmd.kind != dram::CmdKind::kRefresh && cmd.bank >= cfg_.banks)) {
    fail("address-range", cmd, "rank/bank outside the channel's geometry");
    return;  // state arrays cannot be indexed with this command
  }
  switch (cmd.kind) {
    case dram::CmdKind::kActivate:
      check_activate(cmd);
      break;
    case dram::CmdKind::kRead:
    case dram::CmdKind::kWrite:
      check_cas(cmd);
      break;
    case dram::CmdKind::kPrecharge:
      check_precharge(cmd);
      break;
    case dram::CmdKind::kRefresh:
      check_refresh(cmd);
      break;
  }
  history_.push_back(cmd);
  if (history_.size() > kHistory) history_.pop_front();
}

void ProtocolChecker::require_window(const char* rule,
                                         const dram::DramCommand& cmd,
                                         std::uint64_t actual,
                                         std::uint64_t floor,
                                         const char* since) {
  if (actual < floor) {
    std::ostringstream os;
    os << "needs cycle >= " << floor << " (" << since << "), got " << actual;
    fail(rule, cmd, os.str());
  }
}

void ProtocolChecker::check_activate(const dram::DramCommand& cmd) {
  const auto& t = cfg_.device.timing;
  RankState& rank = ranks_[cmd.rank];
  BankState& bank = banks_[cmd.rank * cfg_.banks + cmd.bank];

  if (bank.open) {
    fail("bank-state", cmd, "ACT to a bank with an open row");
  }
  if (bank.has_pre) {
    require_window("tRP", cmd, cmd.cycle, bank.pre_cycle + t.tRP,
                   "last PRE + tRP");
  }
  if (bank.has_act) {
    require_window("tRC", cmd, cmd.cycle, bank.act_cycle + t.tRC,
                   "last ACT + tRC");
  }
  const std::uint32_t group = cfg_.device.bank_group_of(cmd.bank);
  if (!rank.act_window.empty()) {
    require_window("tRRD_S", cmd, cmd.cycle, rank.act_window.back() + t.tRRD_S,
                   "last same-rank ACT + tRRD_S");
  }
  if (cfg_.device.bank_groups > 1 && rank.group_has_act[group]) {
    require_window("tRRD_L", cmd, cmd.cycle,
                   rank.group_last_act[group] + t.tRRD_L,
                   "last same-group ACT + tRRD_L");
  }
  if (rank.act_window.size() >= 4) {
    require_window("tFAW", cmd, cmd.cycle,
                   rank.act_window[rank.act_window.size() - 4] + t.tFAW,
                   "4th-previous same-rank ACT + tFAW");
  }
  // Refresh blackout: rank-wide under kAllBank (one set), or only the
  // refreshed bank set under kSameBank (DDR5 REFsb).
  const std::uint32_t set = cfg_.device.refresh_set_of_bank(cmd.bank);
  if (rank.set_has_ref[set] && cmd.cycle >= rank.set_last_ref[set] &&
      cmd.cycle < rank.set_last_ref[set] + t.tRFC) {
    std::ostringstream os;
    os << "ACT inside refresh blackout [" << rank.set_last_ref[set] << ", "
       << rank.set_last_ref[set] + t.tRFC << ")";
    fail("tRFC", cmd, os.str());
  }

  bank.open = true;
  bank.row = cmd.row;
  bank.act_cycle = cmd.cycle;
  bank.has_act = true;
  bank.rd_since_act = false;
  bank.wr_since_act = false;
  bank.cas_since_act = false;
  rank.act_window.push_back(cmd.cycle);
  if (rank.act_window.size() > 4) rank.act_window.pop_front();
  rank.group_last_act[group] = cmd.cycle;
  rank.group_has_act[group] = true;
}

void ProtocolChecker::check_cas(const dram::DramCommand& cmd) {
  const auto& t = cfg_.device.timing;
  RankState& rank = ranks_[cmd.rank];
  BankState& bank = banks_[cmd.rank * cfg_.banks + cmd.bank];
  const std::uint32_t group = cfg_.device.bank_group_of(cmd.bank);
  const bool is_write = cmd.kind == dram::CmdKind::kWrite;

  if (!bank.open) {
    fail("bank-state", cmd, "RD/WR to a bank with no open row");
  } else if (bank.row != cmd.row) {
    std::ostringstream os;
    os << "RD/WR to row " << cmd.row << " but row " << bank.row
       << " is open";
    fail("bank-state", cmd, os.str());
  }
  if (bank.has_act) {
    require_window("tRCD", cmd, cmd.cycle, bank.act_cycle + t.tRCD,
                   "ACT + tRCD");
  }
  if (bank.has_cas) {
    require_window("tCCD_L", cmd, cmd.cycle, bank.last_cas + t.tCCD_L,
                   "last same-bank CAS + tCCD_L");
  }

  // CAS latency and burst-length consistency with the booked data window.
  const unsigned cas_lat = is_write ? t.tCWL : t.tCL;
  if (cmd.data_start != cmd.cycle + cas_lat) {
    std::ostringstream os;
    os << "data must start at CAS + " << (is_write ? "tCWL" : "tCL") << " = "
       << cmd.cycle + cas_lat << ", got " << cmd.data_start;
    fail(is_write ? "tCWL" : "tCL", cmd, os.str());
  }
  if (cmd.data_end != cmd.data_start + t.tBurst) {
    std::ostringstream os;
    os << "burst must occupy tBurst = " << t.tBurst << " cycles, got ["
       << cmd.data_start << ", " << cmd.data_end << ")";
    fail("tBurst", cmd, os.str());
  }

  // Shared data bus: no overlapping bursts; direction changes pay the
  // model's end-to-start turnaround (tWTR write->read, tRTW read->write).
  if (bus_used_) {
    std::uint64_t floor = bus_data_end_;
    const char* rule = "bus-overlap";
    const char* since = "previous burst end";
    if (bus_last_write_ && !is_write) {
      floor += t.tWTR;
      rule = "tWTR";
      since = "write data end + tWTR";
    } else if (!bus_last_write_ && is_write) {
      floor += t.tRTW;
      rule = "tRTW";
      since = "read data end + tRTW";
    }
    require_window(rule, cmd, cmd.data_start, floor, since);
  }

  // CAS-to-CAS spacing beyond the same bank: any two CAS on the channel
  // must be tCCD_S apart, and two CAS within one bank group tCCD_L apart.
  // (The channel books these gates monotonically at issue time, so the
  // emission-order stream is monotone per scope and last-seen state
  // suffices.)  Same-bank violations already fired above via the per-bank
  // tCCD_L window, and for a flat device (bank_groups == 1) the group rule
  // equals the channel rule, so each check is gated to avoid double
  // counting one underlying violation.
  if (cas_seen_) {
    require_window("tCCD_S", cmd, cmd.cycle, last_cas_any_ + t.tCCD_S,
                   "last same-channel CAS + tCCD_S");
  }
  if (cfg_.device.bank_groups > 1 && rank.group_has_cas[group] &&
      (!bank.has_cas || rank.group_last_cas[group] != bank.last_cas)) {
    require_window("tCCD_L", cmd, cmd.cycle,
                   rank.group_last_cas[group] + t.tCCD_L,
                   "last same-group CAS + tCCD_L");
  }

  // Close-page policy conformance (Sec. IV-B): every access auto-precharges
  // and an activation serves exactly one CAS.
  if (cfg_.row_policy == dram::RowPolicy::kClosePage) {
    if (!cmd.auto_precharge) {
      fail("close-page", cmd, "CAS without auto-precharge under close-page");
    }
    if (bank.cas_since_act) {
      fail("close-page", cmd, "second CAS to the same activation");
    }
  }

  bank.last_cas = cmd.cycle;
  bank.has_cas = true;
  bank.cas_since_act = true;
  if (is_write) {
    bank.wr_since_act = true;
    bank.last_wr_data_end = cmd.data_end;
  } else {
    bank.rd_since_act = true;
    bank.last_rd_cas = cmd.cycle;
  }
  bus_data_end_ = cmd.data_end;
  bus_last_write_ = is_write;
  bus_used_ = true;
  last_cas_any_ = cmd.cycle;
  cas_seen_ = true;
  rank.group_last_cas[group] = cmd.cycle;
  rank.group_has_cas[group] = true;
}

void ProtocolChecker::check_precharge(const dram::DramCommand& cmd) {
  const auto& t = cfg_.device.timing;
  BankState& bank = banks_[cmd.rank * cfg_.banks + cmd.bank];

  if (!bank.open) {
    fail("bank-state", cmd, "PRE to a bank with no open row");
  }
  if (bank.has_act) {
    require_window("tRAS", cmd, cmd.cycle, bank.act_cycle + t.tRAS,
                   "ACT + tRAS");
  }
  if (bank.rd_since_act) {
    require_window("tRTP", cmd, cmd.cycle, bank.last_rd_cas + t.tRTP,
                   "read CAS + tRTP");
  }
  if (bank.wr_since_act) {
    require_window("tWR", cmd, cmd.cycle, bank.last_wr_data_end + t.tWR,
                   "write data end + tWR");
  }

  bank.open = false;
  bank.pre_cycle = cmd.cycle;
  bank.has_pre = true;
}

void ProtocolChecker::check_refresh(const dram::DramCommand& cmd) {
  const auto& t = cfg_.device.timing;
  RankState& rank = ranks_[cmd.rank];
  // The model refreshes on a fixed schedule: REF k of a rank starts its
  // blackout at exactly k * tREFI (k = 1, 2, ...), with none skipped.
  const std::uint64_t expected = (rank.refs_seen + 1) * t.tREFI;
  if (cmd.cycle != expected) {
    std::ostringstream os;
    os << "REF " << rank.refs_seen + 1 << " of rank " << cmd.rank
       << " must start at " << expected << " (tREFI = " << t.tREFI
       << "), got " << cmd.cycle;
    fail("tREFI", cmd, os.str());
  }
  // Under same-bank refresh (DDR5 REFsb) the command's `bank` field carries
  // the refreshed bank set, which must rotate round-robin through the sets.
  std::uint32_t set = 0;
  if (cfg_.device.refresh == dram::RefreshPolicy::kSameBank) {
    const std::uint32_t sets = cfg_.device.refresh_sets();
    if (cmd.bank >= sets) {
      std::ostringstream os;
      os << "REFsb bank set " << cmd.bank << " out of range (device has "
         << sets << " sets)";
      fail("address-range", cmd, os.str());
      ++rank.refs_seen;
      return;
    }
    const std::uint32_t expected_set =
        cfg_.device.refresh_set_of_ref(rank.refs_seen);
    if (cmd.bank != expected_set) {
      std::ostringstream os;
      os << "REFsb must rotate round-robin: REF " << rank.refs_seen + 1
         << " targets set " << cmd.bank << ", expected " << expected_set;
      fail("REFsb-rotation", cmd, os.str());
    }
    set = cmd.bank;
  }
  rank.set_last_ref[set] = cmd.cycle;
  rank.set_has_ref[set] = true;
  ++rank.refs_seen;
}

void ProtocolChecker::fail(const char* rule,
                               const dram::DramCommand& cmd,
                               std::string detail) {
  ++violation_count_;
  if (mode_ == Mode::kFatal) {
    std::fprintf(stderr,
                 "[%s] DRAM protocol violation (%s): %s\n  command: %s\n"
                 "%s",
                 name_.c_str(), rule, detail.c_str(),
                 format_cmd(cmd).c_str(), format_history().c_str());
    std::abort();
  }
  if (violations_.size() < kMaxStored) {
    violations_.push_back(Violation{rule, std::move(detail), cmd});
  }
}

std::string ProtocolChecker::format_history() const {
  std::ostringstream os;
  os << "  last " << history_.size() << " commands:\n";
  for (const auto& cmd : history_) {
    os << "    " << format_cmd(cmd) << "\n";
  }
  return os.str();
}

std::string ProtocolChecker::report() const {
  std::ostringstream os;
  os << name_ << ": " << violation_count_ << " violation(s) in " << commands_
     << " commands\n";
  std::map<std::string, unsigned> by_rule;
  for (const auto& v : violations_) ++by_rule[v.rule];
  for (const auto& [rule, count] : by_rule) {
    os << "  " << rule << ": " << count
       << (violation_count_ > violations_.size() ? "+" : "") << "\n";
  }
  for (const auto& v : violations_) {
    os << "  [" << v.rule << "] " << v.detail << "\n    command: "
       << format_cmd(v.cmd) << "\n";
  }
  if (violation_count_ > 0) os << format_history();
  return os.str();
}

}  // namespace eccsim::check
