# Empty dependencies file for ablation_ecc_cache.
# This may be replaced when dependencies are built.
