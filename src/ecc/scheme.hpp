// Memory error-resilience scheme descriptors.
//
// A SchemeDesc captures everything the system simulator and the capacity
// model need to know about one of the paper's evaluated ECC implementations
// (Table II):
//
//   - rank organization (chip count, widths, line size),
//   - system sizing for the "dual-channel-equivalent" and "quad-channel-
//     equivalent" comparisons (equal physical capacity and I/O pin count),
//   - capacity-overhead decomposition into detection and correction bits
//     (Fig. 1), and the correction ratio R used by ECC Parity's overhead
//     formula (Sec. III-E),
//   - the ECC-maintenance traffic model: whether writes require updates to
//     separate ECC lines, how many data lines one cached ECC/XOR line
//     covers, and what an eviction costs (Sec. IV-C).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dram/memory_system.hpp"
#include "dram/spec.hpp"

namespace eccsim::ecc {

/// The eight evaluated schemes (Table II).
enum class SchemeId {
  kChipkill36,     ///< 36-device commercial chipkill correct
  kChipkill18,     ///< 18-device commercial chipkill correct
  kLotEcc5,        ///< LOT-ECC, 5 chips per rank (4 x16 + 1 x8)
  kLotEcc9,        ///< LOT-ECC, 9 chips per rank (9 x8)
  kMultiEcc,       ///< Multi-ECC
  kRaim,           ///< IBM RAIM DIMM-kill correct
  kLotEcc5Parity,  ///< LOT-ECC5 + ECC Parity (the paper's proposal)
  kRaimParity,     ///< RAIM + ECC Parity
};

std::string to_string(SchemeId id);

/// System scale for the equal-pins / equal-capacity comparisons.
enum class SystemScale {
  kDualEquivalent,  ///< 288 pins (360 for the RAIM family)
  kQuadEquivalent,  ///< 576 pins (720 for the RAIM family)
};

/// How a scheme maintains its ECC bits on application writes (Sec. IV-C).
enum class MaintTraffic {
  kNone,              ///< ECC is inline with the data burst (chipkill36/18)
  kWriteOnEvict,      ///< cached ECC line; dirty eviction costs one write
                      ///< (LOT-ECC tier-2 lines)
  kReadWriteOnEvict,  ///< cached XOR line; eviction is a read-modify-write
                      ///< of the parity/ECC line (Multi-ECC, ECC Parity)
};

/// Full description of one scheme at one system scale.
struct SchemeDesc {
  SchemeId id = SchemeId::kChipkill36;
  std::string name;

  // --- rank organization -------------------------------------------------
  std::uint32_t chips_per_rank = 36;
  std::uint32_t data_chips_per_rank = 32;
  dram::DeviceWidth width = dram::DeviceWidth::kX4;
  std::uint32_t line_bytes = 128;
  /// True for LOT-ECC5's mixed rank (4 x16 data + 1 half-capacity x8 ECC).
  bool mixed_rank = false;

  // --- system sizing ------------------------------------------------------
  std::uint32_t channels = 4;
  std::uint32_t ranks_per_channel = 1;

  // --- capacity overheads (fractions of data bits) ------------------------
  /// ECC detection bits stored per channel (always in memory, Sec. III).
  double detection_overhead = 0.125;
  /// Correction bits proper, before protecting them with their own ECC.
  /// This is the R in the parity-overhead formula (1+12.5%)*R/(N-1).
  double correction_ratio = 0.0625;
  /// Overhead of protecting the stored correction bits themselves; the
  /// paper uses the underlying code's 12.5% for the tiered schemes.
  double correction_protection = 0.125;

  /// True if this scheme stores ECC parities instead of correction bits.
  bool uses_ecc_parity = false;

  /// DRAM speed-bin multiplier (Sec. V-D: a ~16% faster bin absorbs the
  /// parity-update bandwidth overhead for ~5% more energy).  1.0 = the
  /// standard DDR3-2000 part.
  double speed_factor = 1.0;

  // --- maintenance traffic model -------------------------------------------
  MaintTraffic maint = MaintTraffic::kNone;
  /// Data lines covered by one cached ECC/XOR line.  For ECC Parity this is
  /// 4 * (channels - 1): the same group of four adjacent lines in N-1
  /// adjacent physical pages (Sec. IV-C).
  std::uint32_t ecc_line_coverage = 0;

  // --- derived quantities --------------------------------------------------
  /// Static capacity overhead stored in memory.  For parity schemes:
  /// detection + (1 + detection) * R / (N-1).  For baselines:
  /// detection + R * (1 + correction_protection)  [tiered schemes]
  /// or detection + R                              [inline symbol codes].
  double capacity_overhead() const;
  /// Capacity overhead after `faulty_fraction` of memory has had its
  /// correction bits materialized at 2x the parity allocation (Sec. III-B).
  double capacity_overhead_eol(double faulty_fraction) const;

  /// Memory-system configuration for the DRAM simulator.  The paper's
  /// evaluation is DDR3; passing kDdr4/kDdr5 builds the same rank/channel
  /// organization on that generation's device (same chip count and width,
  /// the generation's own capacity, timing, and power), including LOT-ECC5's
  /// blended mixed-rank current model and the speed-bin scaling.
  dram::MemSystemConfig mem_config(
      dram::Generation gen = dram::Generation::kDdr3) const;

  /// Total physical memory I/O pins (Table II's last column).
  std::uint32_t io_pins() const {
    // The LOT-ECC5 mixed rank is 4*16 + 8 = 72 bits wide.
    const std::uint32_t rank_bits =
        mixed_rank ? 72
                   : chips_per_rank * static_cast<std::uint32_t>(width);
    return channels * rank_bits;
  }
};

/// Builds the descriptor for a scheme at a given scale (Table II rows).
SchemeDesc make_scheme(SchemeId id, SystemScale scale);

/// All schemes in Table II order.
std::vector<SchemeId> all_schemes();

/// The baselines each proposal is compared against in Figs. 10-17.
/// LOT-ECC5+Parity is compared to the chipkill family; RAIM+Parity to RAIM.
std::vector<SchemeId> chipkill_family();

}  // namespace eccsim::ecc
