// Replay and recording TraceSources: the bridge between the .ecctrace
// container and the simulator's stimulus interface (trace/source.hpp).
//
//   ReplaySource     feeds a recorded pre-LLC trace back into SystemSim.
//                    It demultiplexes the file's interleaved record order
//                    into per-core FIFO queues, so replay depends only on
//                    the per-core streams -- a trace recorded under one
//                    scheme's consumption order (or tracetool's
//                    round-robin) replays identically under any other.
//   RecordingSource  a tee: passes an inner source through unchanged
//                    while appending every op to a TraceWriter.
//                    Observation-only by construction, so a recorded run
//                    is bit-identical to an unrecorded one.
//   record_workload_trace
//                    generator-direct capture (no simulation): what
//                    `tracetool record` and the tests use to produce
//                    replayable traces cheaply.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "tracefile/reader.hpp"
#include "tracefile/writer.hpp"
#include "trace/source.hpp"

namespace eccsim::tracefile {

class ReplaySource final : public trace::TraceSource {
 public:
  /// Opens a pre-LLC trace.  Throws TraceError on any structural problem
  /// or if the trace's capture point is post-LLC (not replayable).  The
  /// workload named in the header must exist (std::out_of_range
  /// otherwise) -- its calibrated descriptor parameterizes the simulator.
  explicit ReplaySource(const std::string& path);

  /// Next recorded op for `core`.  Throws TraceError when the trace is
  /// exhausted: a short trace fails loudly rather than silently looping
  /// or diverging from live generation.
  trace::MemOp next(unsigned core) override;

  const trace::WorkloadDesc& workload() const override { return desc_; }
  unsigned cores() const override { return reader_.meta().cores; }
  std::string describe() const override;

  const TraceMeta& meta() const { return reader_.meta(); }
  std::uint64_t ops_replayed() const { return replayed_; }
  const ReaderCounters& reader_counters() const {
    return reader_.counters();
  }

 private:
  TraceReader reader_;
  trace::WorkloadDesc desc_;
  std::vector<std::deque<trace::MemOp>> queues_;
  std::uint64_t replayed_ = 0;
};

class RecordingSource final : public trace::TraceSource {
 public:
  /// Wraps `inner`, recording every op it hands out to a fresh pre-LLC
  /// trace at `path` (header metadata from the inner source + `seed`).
  RecordingSource(std::unique_ptr<trace::TraceSource> inner,
                  const std::string& path, std::uint64_t seed,
                  std::size_t ops_per_chunk = kDefaultOpsPerChunk);

  trace::MemOp next(unsigned core) override {
    const trace::MemOp op = inner_->next(core);
    writer_.append(op, core);
    return op;
  }

  const trace::WorkloadDesc& workload() const override {
    return inner_->workload();
  }
  unsigned cores() const override { return inner_->cores(); }
  std::string describe() const override;

  TraceWriter& writer() { return writer_; }

 private:
  std::unique_ptr<trace::TraceSource> inner_;
  TraceWriter writer_;
};

/// Records `ops_per_core` synthetic ops per core for `desc` into `path`,
/// round-robin across cores (core 0 first each round).  Returns the total
/// number of ops written.  With `seed = trace::paper_sweep_seed(name)`
/// the result replays bit-identically into the paper sweeps.
std::uint64_t record_workload_trace(const trace::WorkloadDesc& desc,
                                    unsigned cores,
                                    std::uint64_t ops_per_core,
                                    std::uint64_t seed,
                                    const std::string& path);

}  // namespace eccsim::tracefile
