// The multi-channel memory system: N independent channels behind one
// address map.  This is the substrate ECC Parity exploits -- channels share
// no circuitry, fail independently, and serve requests concurrently.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dram/address_map.hpp"
#include "dram/channel.hpp"
#include "dram/request.hpp"
#include "dram/spec.hpp"

namespace eccsim::dram {

/// Full configuration of a memory system instance.  `channels` counts
/// physical channels; when the device has sub-channels (DDR5) each one is
/// modeled as device.sub_channels independently-scheduled Channel objects
/// splitting the physical rank's chips between them.
struct MemSystemConfig {
  std::string name = "mem";
  std::uint32_t channels = 4;              ///< physical (failure-domain)
  std::uint32_t ranks_per_channel = 1;
  std::uint32_t chips_per_rank = 18;       ///< all chips (data + ECC)
  std::uint32_t data_chips_per_rank = 16;  ///< chips holding application data
  std::uint32_t line_bytes = 64;
  DramSpec device = micron_2gb(DeviceWidth::kX4);
  std::uint32_t queue_depth = 64;
  bool powerdown_enabled = true;
  RowPolicy row_policy = RowPolicy::kClosePage;
  SchedulerPolicy scheduler = SchedulerPolicy::kMostPending;

  /// Logical geometry implied by this configuration: each bank holds
  /// data_chips * (chip_capacity / chip_banks) bytes, organized as 4KB
  /// logical rows (Fig. 4).  The geometry's `channels` is the effective
  /// count (physical * sub_channels).
  MemGeometry geometry() const;

  /// Independently-scheduled channels (physical * device.sub_channels).
  std::uint32_t total_channels() const {
    return channels * device.sub_channels;
  }

  /// Total number of DRAM devices in the system.
  std::uint64_t total_chips() const {
    return static_cast<std::uint64_t>(channels) * ranks_per_channel *
           chips_per_rank;
  }
  /// Data capacity in bytes (excluding ECC chips).
  std::uint64_t data_capacity_bytes() const {
    return geometry().total_data_bytes();
  }
  /// Memory I/O pin count: chips * device width per channel, summed.
  std::uint64_t total_io_pins() const {
    return static_cast<std::uint64_t>(channels) * chips_per_rank *
           static_cast<std::uint32_t>(device.width);
  }
};

/// Aggregated statistics across channels.
struct MemSystemStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t ecc_reads = 0;
  std::uint64_t ecc_writes = 0;
  double avg_read_latency = 0;
  EnergyBreakdown energy;

  /// The paper's access metric (Fig. 16): each 64B moved counts as one
  /// access, so one request on a 128B-line system counts twice.
  std::uint64_t accesses_64b(std::uint32_t line_bytes) const {
    return (reads + writes) * (line_bytes / 64);
  }
};

/// N-channel DRAM memory system (generation set by cfg.device).
class MemorySystem {
 public:
  explicit MemorySystem(const MemSystemConfig& cfg);

  const MemSystemConfig& config() const { return cfg_; }
  const AddressMap& map() const { return map_; }

  /// Number of independently-scheduled channels actually built
  /// (config().total_channels()).
  std::uint32_t num_channels() const {
    return static_cast<std::uint32_t>(channels_.size());
  }

  /// Enqueues a request for a linear data-line index.
  /// Returns false if the target channel's queue is full.
  bool enqueue_line(std::uint64_t line_index, bool is_write,
                    LineClass line_class, std::uint64_t id);

  /// Enqueues a request at an explicit DRAM address (used by the ECC layers
  /// to target reserved parity/correction rows in specific banks).
  bool enqueue_addr(const DramAddress& addr, bool is_write,
                    LineClass line_class, std::uint64_t id);

  /// True if the channel that would serve this line can accept a request.
  bool can_accept_line(std::uint64_t line_index) const;
  bool can_accept_channel(std::uint32_t channel) const;

  /// Advances simulated time by one memory-clock cycle.
  void tick();

  std::uint64_t cycle() const { return cycle_; }

  /// Completions finished by now; caller must consume and clear.
  std::vector<MemCompletion>& completions() { return completions_; }

  /// Total queued + in-flight transactions (drain check).
  std::size_t outstanding() const;

  /// Stops background-energy integration and aggregates statistics.
  MemSystemStats finalize();

  /// Aggregate as finalize() would report at the current cycle, without
  /// finalizing: includes background and refresh energy integrated up to
  /// now.  Never mutates; peek_stats() immediately before finalize()
  /// returns identical numbers.
  MemSystemStats peek_stats() const;

  /// Registers per-channel observability stats under "dram.ch<N>..." and,
  /// when `tracer` is non-null, mirrors every DRAM command as a Chrome
  /// trace event (track N = channel N).  Call once before traffic.
  void attach_stats(stats::Registry& reg, stats::Tracer* tracer = nullptr);

  /// Attaches a passive per-channel command observer (dram/observer.hpp);
  /// the protocol checker in src/check audits channels through this hook.
  /// The observer must outlive the system (including finalize()).
  void set_command_observer(std::uint32_t channel, CommandObserver* observer);

  /// The per-channel configuration every channel was built with (observers
  /// such as the protocol checker validate against the same parameters).
  ChannelConfig channel_config() const;

 private:
  MemSystemConfig cfg_;
  AddressMap map_;
  std::vector<Channel> channels_;
  std::vector<MemCompletion> completions_;
  std::uint64_t cycle_ = 0;
  bool finalized_ = false;
};

}  // namespace eccsim::dram
