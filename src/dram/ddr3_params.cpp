#include "dram/ddr3_params.hpp"

#include "common/units.hpp"

namespace eccsim::dram {

std::string to_string(DeviceWidth w) {
  switch (w) {
    case DeviceWidth::kX4: return "x4";
    case DeviceWidth::kX8: return "x8";
    case DeviceWidth::kX16: return "x16";
  }
  return "x?";
}

namespace {

Ddr3Energy derive_energy(const Ddr3Timing& t, const Ddr3Currents& c) {
  using units::picojoules;
  Ddr3Energy e;
  // Micron TN-41-01 activate power: IDD0 minus the standby floor it was
  // measured against (IDD3N during tRAS, IDD2N during tRC - tRAS), spread
  // over one tRC.  Energy = that net current * VDD * tRC.
  const double act_net_ma =
      c.idd0 - (c.idd3n * t.tRAS + c.idd2n * (t.tRC - t.tRAS)) /
                   static_cast<double>(t.tRC);
  e.act_pj = picojoules(act_net_ma, c.vdd, static_cast<double>(t.tRC));
  // Burst energy: current above active standby for the burst duration.
  e.rd_burst_pj =
      picojoules(c.idd4r - c.idd3n, c.vdd, static_cast<double>(t.tBurst));
  e.wr_burst_pj =
      picojoules(c.idd4w - c.idd3n, c.vdd, static_cast<double>(t.tBurst));
  e.refresh_pj =
      picojoules(c.idd5b - c.idd2n, c.vdd, static_cast<double>(t.tRFC));
  e.bg_pd_pj_cyc = picojoules(c.idd2p, c.vdd, 1.0);
  e.bg_pre_pj_cyc = picojoules(c.idd2n, c.vdd, 1.0);
  e.bg_act_pj_cyc = picojoules(c.idd3n, c.vdd, 1.0);
  return e;
}

}  // namespace

Ddr3Device micron_2gb(DeviceWidth width, double speed_factor) {
  Ddr3Device d;
  d.width = width;
  d.capacity_mbit = 2048;
  d.banks = 8;
  switch (width) {
    case DeviceWidth::kX4:
      d.columns = 2048;
      d.page_bytes = 1024;  // 2K columns * 4 bits = 1KB row
      d.currents.idd4r = 140;
      d.currents.idd4w = 145;
      break;
    case DeviceWidth::kX8:
      d.columns = 1024;
      d.page_bytes = 1024;  // 1K columns * 8 bits = 1KB row
      d.currents.idd4r = 160;
      d.currents.idd4w = 165;
      break;
    case DeviceWidth::kX16:
      d.columns = 1024;
      d.page_bytes = 2048;  // 1K columns * 16 bits = 2KB row
      d.currents.idd0 = 115;
      d.currents.idd4r = 230;
      d.currents.idd4w = 240;
      d.currents.idd5b = 255;
      d.timing.tFAW = 40;  // wider page -> longer four-activate window
      d.timing.tRRD = 8;
      break;
  }
  // Rows follow from capacity = banks * rows * columns * width:
  // x4 -> 32K rows, x8 -> 32K rows, x16 -> 16K rows for the 2Gb part.
  d.rows = d.capacity_mbit * 1024 * 1024 /
           (static_cast<std::uint64_t>(d.banks) * d.columns *
            static_cast<unsigned>(width));

  d.speed_factor = speed_factor;
  if (speed_factor != 1.0) {
    // A faster speed bin shortens cycle-denominated latencies but raises
    // currents slightly (Sec. V-D estimates a 16% faster bin costs ~5% EPI).
    auto scale = [&](unsigned v) {
      return static_cast<unsigned>(static_cast<double>(v) / speed_factor);
    };
    d.timing.tRCD = scale(d.timing.tRCD);
    d.timing.tCL = scale(d.timing.tCL);
    d.timing.tRP = scale(d.timing.tRP);
    const double current_scale = 1.0 + 0.3 * (speed_factor - 1.0);
    d.currents.idd0 *= current_scale;
    d.currents.idd2n *= current_scale;
    d.currents.idd3n *= current_scale;
    d.currents.idd4r *= current_scale;
    d.currents.idd4w *= current_scale;
  }
  d.energy = derive_energy(d.timing, d.currents);
  return d;
}

void rederive_energy(Ddr3Device& device) {
  device.energy = derive_energy(device.timing, device.currents);
}

}  // namespace eccsim::dram
