// ecclint: the repo's own static-analysis gate (docs/STATIC_ANALYSIS.md).
//
// Scans src/, bench/, and tools/ for determinism hazards (EL0xx),
// undeclared module-DAG edges (EL1xx), and telemetry-schema drift
// (EL2xx), then applies the baseline ratchet: exit 1 on any finding not
// grandfathered in the baseline AND on any baseline entry that no longer
// fires.  Dependency-free by design, like everything else in this tree.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analyzer.hpp"

namespace fs = std::filesystem;
using namespace eccsim::ecclint;

namespace {

int usage(std::FILE* out, int code) {
  std::fprintf(
      out,
      "usage: ecclint [options] [file...]\n"
      "\n"
      "Project-specific static analysis: determinism, layering, and\n"
      "telemetry-schema rules (docs/STATIC_ANALYSIS.md).  With no file\n"
      "arguments, scans every .cpp/.hpp under ROOT/{src,bench,tools}.\n"
      "\n"
      "options:\n"
      "  --root DIR          repository root (default: current directory;\n"
      "                      must contain src/)\n"
      "  --baseline FILE     grandfathered-finding baseline; exit 1 on\n"
      "                      findings missing from it or entries that no\n"
      "                      longer fire (default:\n"
      "                      ROOT/tools/ecclint/baseline.txt if present)\n"
      "  --update-baseline   rewrite the baseline file from the current\n"
      "                      findings and exit 0\n"
      "  --layers FILE       module DAG (default:\n"
      "                      ROOT/tools/ecclint/layers.txt)\n"
      "  --docs FILE         schema-id documentation file (default:\n"
      "                      ROOT/docs/OBSERVABILITY.md)\n"
      "  --list-rules        print the rule catalog and exit\n"
      "  --help, -h          this text\n"
      "\n"
      "exit status: 0 clean, 1 new findings or stale baseline entries,\n"
      "2 usage or I/O error.\n");
  return code;
}

bool read_file(const fs::path& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

/// Path relative to root with '/' separators (the form rules and the
/// baseline use), or the path unchanged when it is not under root.
std::string rel_path(const fs::path& root, const fs::path& p) {
  std::error_code ec;
  const fs::path rel = fs::relative(p, root, ec);
  const fs::path use = (ec || rel.empty() ||
                        rel.native().rfind("..", 0) == 0)
                           ? p
                           : rel;
  return use.generic_string();
}

bool source_extension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp";
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string baseline_path, layers_path, docs_path;
  bool update_baseline = false;
  std::vector<std::string> explicit_files;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const char* flag) -> const char* {
      if (arg != flag) return nullptr;
      if (i + 1 >= argc) {
        std::fprintf(stderr, "ecclint: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    const char* v = nullptr;
    if ((v = value("--root")) != nullptr) {
      root = v;
    } else if ((v = value("--baseline")) != nullptr) {
      baseline_path = v;
    } else if ((v = value("--layers")) != nullptr) {
      layers_path = v;
    } else if ((v = value("--docs")) != nullptr) {
      docs_path = v;
    } else if (arg == "--update-baseline") {
      update_baseline = true;
    } else if (arg == "--list-rules") {
      for (const RuleInfo& r : rule_catalog()) {
        std::printf("%s  %s\n", r.id, r.summary);
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      return usage(stdout, 0);
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "ecclint: unknown flag '%s' (try --help)\n",
                   arg.c_str());
      return 2;
    } else {
      explicit_files.push_back(arg);
    }
  }

  const fs::path root_path(root);
  if (!fs::is_directory(root_path / "src")) {
    std::fprintf(stderr, "ecclint: '%s' has no src/ directory (use --root)\n",
                 root.c_str());
    return 2;
  }
  if (layers_path.empty()) {
    layers_path = (root_path / "tools/ecclint/layers.txt").string();
  }
  if (docs_path.empty()) {
    docs_path = (root_path / "docs/OBSERVABILITY.md").string();
  }
  if (baseline_path.empty()) {
    const fs::path candidate = root_path / "tools/ecclint/baseline.txt";
    if (fs::exists(candidate)) baseline_path = candidate.string();
  }

  // --- collect sources -----------------------------------------------------
  std::vector<fs::path> paths;
  if (!explicit_files.empty()) {
    for (const std::string& f : explicit_files) paths.emplace_back(f);
  } else {
    for (const char* dir : {"src", "bench", "tools"}) {
      const fs::path base = root_path / dir;
      if (!fs::is_directory(base)) continue;
      for (const auto& entry : fs::recursive_directory_iterator(base)) {
        if (entry.is_regular_file() && source_extension(entry.path())) {
          paths.push_back(entry.path());
        }
      }
    }
  }
  std::sort(paths.begin(), paths.end());

  std::vector<SourceFile> files;
  for (const fs::path& p : paths) {
    SourceFile f;
    f.path = rel_path(root_path, p);
    if (!read_file(p, &f.content)) {
      std::fprintf(stderr, "ecclint: cannot read %s\n", p.string().c_str());
      return 2;
    }
    files.push_back(std::move(f));
  }

  Config cfg;
  if (!read_file(layers_path, &cfg.layers_text)) {
    std::fprintf(stderr, "ecclint: cannot read layers file %s\n",
                 layers_path.c_str());
    return 2;
  }
  cfg.layers_path = rel_path(root_path, layers_path);
  read_file(docs_path, &cfg.schema_doc);  // empty doc only disables EL202
  cfg.schema_doc_path = rel_path(root_path, docs_path);

  const std::vector<Finding> findings = analyze(files, cfg);

  if (update_baseline) {
    if (baseline_path.empty()) {
      baseline_path = (root_path / "tools/ecclint/baseline.txt").string();
    }
    std::ofstream out(baseline_path, std::ios::binary);
    out << render_baseline(findings);
    if (!out) {
      std::fprintf(stderr, "ecclint: cannot write %s\n",
                   baseline_path.c_str());
      return 2;
    }
    std::fprintf(stderr, "ecclint: wrote %zu baseline entr%s to %s\n",
                 findings.size(), findings.size() == 1 ? "y" : "ies",
                 baseline_path.c_str());
    return 0;
  }

  std::string baseline_text;
  if (!baseline_path.empty() && !read_file(baseline_path, &baseline_text)) {
    std::fprintf(stderr, "ecclint: cannot read baseline %s\n",
                 baseline_path.c_str());
    return 2;
  }
  const BaselineOutcome outcome = apply_baseline(findings, baseline_text);

  for (const Finding& f : outcome.fresh) {
    std::printf("%s\n", f.str().c_str());
  }
  for (const std::string& entry : outcome.stale) {
    std::printf("%s: [stale-baseline] entry no longer fires, delete it: "
                "%s\n",
                rel_path(root_path, baseline_path).c_str(), entry.c_str());
  }
  const std::size_t grandfathered =
      findings.size() - outcome.fresh.size();
  std::fprintf(stderr,
               "ecclint: %zu file%s, %zu finding%s (%zu grandfathered), "
               "%zu stale baseline entr%s\n",
               files.size(), files.size() == 1 ? "" : "s",
               outcome.fresh.size(), outcome.fresh.size() == 1 ? "" : "s",
               grandfathered, outcome.stale.size(),
               outcome.stale.size() == 1 ? "y" : "ies");
  return outcome.fresh.empty() && outcome.stale.empty() ? 0 : 1;
}
