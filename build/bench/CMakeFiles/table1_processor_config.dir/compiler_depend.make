# Empty compiler generated dependencies file for table1_processor_config.
# This may be replaced when dependencies are built.
