// Streaming statistics used throughout the simulator and the benchmark
// harness: single-pass mean/variance (Welford), percentile estimation over
// retained samples, histograms, and the geometric mean used by the paper's
// cross-workload averages.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace eccsim {

/// Single-pass mean / variance / min / max accumulator (Welford's method,
/// numerically stable).
class RunningStat {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

  /// Merges another accumulator into this one (parallel reduction).
  void merge(const RunningStat& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Retains all samples; supports exact percentiles.  Used for the Monte
/// Carlo experiments that report 99.9th-percentile outcomes (Fig. 8).
class SampleSet {
 public:
  void add(double x) { samples_.push_back(x); }
  void reserve(std::size_t n) { samples_.reserve(n); }
  std::size_t count() const { return samples_.size(); }

  double mean() const;
  /// Exact percentile by nearest-rank; p in [0, 100].
  double percentile(double p) const;
  double min() const;
  double max() const;

  const std::vector<double>& samples() const { return samples_; }
  void merge(const SampleSet& other);

 private:
  std::vector<double> samples_;
  mutable std::vector<double> sorted_;  // lazily (re)built by percentile()
  mutable bool sorted_valid_ = false;
};

/// Fixed-width linear histogram over [lo, hi); out-of-range samples clamp
/// into the edge bins so mass is never silently dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  std::size_t bins() const { return counts_.size(); }
  std::size_t total() const { return total_; }
  double bin_low(std::size_t i) const;
  double bin_high(std::size_t i) const;

  /// Renders a compact ASCII bar chart (for example programs).
  std::string ascii(std::size_t width = 50) const;

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Geometric mean of a set of (positive) values.  The paper's "average
/// reduction across workloads" figures are cross-workload means of ratios;
/// we use the geometric mean for ratio aggregation.
double geomean(const std::vector<double>& values);

/// Arithmetic mean convenience.
double mean(const std::vector<double>& values);

}  // namespace eccsim
