#!/bin/sh
# Builds, tests, and regenerates every paper table/figure plus ablations.
#
# Usage: ./scripts/run_all.sh [--quick | --smoke] [--no-build]
#   --quick     lower-fidelity sweep (200k instructions per cell); outputs
#               overwrite bench_results/ and results/ like a full run
#   --smoke     CI-sized run (50k instructions per cell); outputs are
#               quarantined under bench_results/smoke/ and results/smoke/
#   --no-build  skip configure/build/ctest (binaries must already exist)
#
# Sweeps fan out over all cores by default; set RUNNER_THREADS=N to cap
# (results are bit-identical at any thread count).  The fault Monte Carlo
# benches (fig02/fig08/fig18/sec6b) additionally honor ECCSIM_MC_SYSTEMS,
# ECCSIM_MC_CHUNK, ECCSIM_MC_TARGET_REL_CI, and ECCSIM_MC_CHECKPOINT --
# exported here, they pass straight through to every binary (results are
# bit-identical at any thread count and chunk size; see
# docs/REPRODUCING.md).  Every binary prints its table to stdout and
# writes CSV + JSON result files; this driver adds [n/total] progress and
# per-binary wall-clock to stderr.
set -e

build=1
for arg in "$@"; do
  case "$arg" in
    --quick) export ECCSIM_QUICK=1 ;;
    --smoke) export ECCSIM_SMOKE=1 ;;
    --no-build) build=0 ;;
    *) echo "unknown option: $arg" >&2; exit 2 ;;
  esac
done

cd "$(dirname "$0")/.."

if [ "$build" = 1 ]; then
  if command -v ninja >/dev/null 2>&1; then gen="-G Ninja"; else gen=""; fi
  # shellcheck disable=SC2086
  cmake -B build -S . $gen
  cmake --build build -j "$(nproc)"
  ctest --test-dir build --output-on-failure -j "$(nproc)"
fi

# Smoke runs double as the cheap determinism gate: the committed golden
# traces must re-record byte-identically (seed/generator/format drift
# check, ~a second).  The full record->replay sweep identity check is a
# separate CI job (scripts/trace_replay_check.sh).
if [ "${ECCSIM_SMOKE:-0}" != 0 ] && [ -x build/tools/tracetool ]; then
  ./scripts/golden_trace_check.sh build/tools/tracetool
fi

# Smoke preflight #2: the static-analysis gate.  Runs before the bench
# sweep so a layering or determinism violation fails in seconds, not
# after minutes of simulation.
if [ "${ECCSIM_SMOKE:-0}" != 0 ]; then
  ./scripts/ecclint_check.sh build/tools/ecclint/ecclint
fi

total=0
for b in build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] && total=$((total + 1))
done
n=0
start=$(date +%s)
errlog=$(mktemp)
profiles=$(mktemp)
trap 'rm -f "$errlog" "$profiles"' EXIT
for b in build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  n=$((n + 1))
  name=$(basename "$b")
  echo "[$n/$total] $name" >&2
  t0=$(date +%s)
  # Stderr is teed through a file so the bench's [eccsim-profile] line
  # (wall-clock + peak RSS, emitted by bench::init's atexit report) can be
  # collected for the end-of-run summary table.
  case "$name" in
    microbench*) "$b" --benchmark_min_time=0.05 2>"$errlog" ;;
    *) "$b" 2>"$errlog" ;;
  esac || { cat "$errlog" >&2; exit 1; }
  cat "$errlog" >&2
  grep '^\[eccsim-profile\] bench=' "$errlog" >>"$profiles" || true
  echo "[$n/$total] $name done in $(($(date +%s) - t0))s" >&2
done
echo "all $n bench binaries done in $(($(date +%s) - start))s" >&2

# Fleet demo (src/fleet, docs/ARCHITECTURE.md): the heterogeneous
# ddr3/ddr4/ddr5 spec mixing isolated and cross-parity ECC schemes,
# evaluated through the sharded coordinator.  Smoke runs shrink every
# pool 20x and quarantine the result under results/fleet/smoke/; full
# runs evaluate all 48k nodes into results/fleet/demo.json.
if [ -x build/tools/fleetd/fleetd ]; then
  if [ "${ECCSIM_SMOKE:-0}" != 0 ]; then
    ./build/tools/fleetd/fleetd run --spec examples/fleet_demo.json \
      --scale 20 --shards 4 --out results/fleet/smoke/demo.json
  else
    ./build/tools/fleetd/fleetd run --spec examples/fleet_demo.json \
      --shards 4 --out results/fleet/demo.json
  fi
fi

if [ -s "$profiles" ]; then
  {
    echo ""
    echo "--- per-binary profile (from [eccsim-profile]) ---"
    printf '%-32s %12s %12s\n' "binary" "wall (s)" "peak RSS (MB)"
    # Parse key=value fields by name rather than by position so a missing
    # or garbled field (e.g. peak RSS unavailable on this platform)
    # degrades to "n/a" instead of shifting columns or breaking the table.
    awk '{
      bench = "n/a"; wall = "n/a"; rss = "n/a"
      for (i = 1; i <= NF; i++) {
        eq = index($i, "=")
        if (eq < 2 || eq == length($i)) continue
        key = substr($i, 1, eq - 1)
        val = substr($i, eq + 1)
        if (key == "bench") bench = val
        else if (key == "wall_seconds" && val ~ /^[0-9]+([.][0-9]+)?$/) wall = val
        else if (key == "peak_rss_mb" && val ~ /^[0-9]+([.][0-9]+)?$/) rss = val
      }
      printf "%-32s %12s %12s\n", bench, wall, rss
    }' "$profiles"
  } >&2
fi
