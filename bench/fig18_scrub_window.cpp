// Fig. 18: probability of faults occurring in more than one channel within
// any single detection window (scrub interval) during the seven-year
// lifespan of an eight-channel system; plus the Sec. VI-C headline
// translation into added uncorrectable-error rate.
#include <cstdio>

#include "bench_common.hpp"
#include "common/units.hpp"
#include "faults/montecarlo.hpp"

using namespace eccsim;

int main(int argc, char** argv) {
  eccsim::bench::init(argc, argv);
  const auto opts = bench::mc_options();
  faults::SystemShape shape;  // 8 channels, 4 ranks, 9 chips (Sec. VI-C)
  const double life = 7 * units::kHoursPerYear;

  Table t({"scrub window", "25 FIT", "44 FIT", "100 FIT"});
  const double windows_h[] = {0.5, 1, 2, 4, 8, 24, 72, 168};
  for (double w : windows_h) {
    std::vector<std::string> row;
    row.push_back(w < 1.5 ? Table::num(w, 1) + " h"
                          : Table::num(w, 0) + " h");
    for (double fit : {25.0, 44.0, 100.0}) {
      const double p = faults::analytic_multichannel_window_probability(
          shape, fit, w, life);
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.2e", p);
      row.push_back(buf);
    }
    t.add_row(row);
  }
  std::printf(
      "Fig. 18 -- P(faults in >1 channel within any single window over a\n"
      "7-year lifespan), 8-channel system\n\n");
  bench::emit("fig18_scrub_window", t);

  // Monte Carlo spot-check at an estimable operating point.
  const auto mc = faults::multichannel_window_probability(
      shape, faults::ddr3_vendor_average().scaled_to(100.0), 24.0 * 30,
      life, bench::mc_systems(30'000), 7, opts);
  std::printf(
      "Monte Carlo cross-check (100 FIT, 720h window): analytic %.3e vs\n"
      "simulated %.3e (%llu of %llu systems flagged)\n\n",
      mc.analytic_probability, mc.simulated_probability,
      static_cast<unsigned long long>(mc.bad_systems),
      static_cast<unsigned long long>(mc.mc.systems_merged));

  // Sec. VI-C headline: 8-hour scrub at a pessimistic 100 FIT/chip.
  const double p8 = faults::analytic_multichannel_window_probability(
      shape, 100.0, 8.0, life);
  std::printf(
      "Sec. VI-C: 8-hour scrub window at 100 FIT/chip -> p = %.2e per\n"
      "lifetime (paper: 0.00020), i.e. one additional uncorrectable error\n"
      "every %.0f years (paper: ~35,000), against a 1-per-10-years target.\n",
      p8, 7.0 / p8);
  return 0;
}
