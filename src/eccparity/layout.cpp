#include "eccparity/layout.hpp"

#include <stdexcept>

namespace eccsim::eccparity {

ParityLayout::ParityLayout(const dram::MemGeometry& geom, unsigned corr_bytes)
    : geom_(geom), map_(geom), corr_bytes_(corr_bytes) {
  if (geom_.fd_channels() < 2) {
    throw std::invalid_argument("ParityLayout: needs >= 2 physical channels");
  }
  if (corr_bytes_ == 0 || corr_bytes_ > geom_.line_bytes) {
    throw std::invalid_argument("ParityLayout: bad correction size");
  }
  stripes_ = geom_.total_pages() / geom_.channels;
  const double r =
      static_cast<double>(corr_bytes_) / static_cast<double>(geom_.line_bytes);
  const double frac =
      1.125 * r / static_cast<double>(geom_.fd_channels() - 1);
  reserved_rows_ = static_cast<std::uint64_t>(
      static_cast<double>(geom_.rows_per_bank) * frac) + 1;
}

ParityLayout::Loc ParityLayout::locate(std::uint64_t line_index) const {
  const std::uint32_t lpr = geom_.lines_per_row();
  Loc loc;
  loc.slot = static_cast<std::uint32_t>(line_index % lpr);
  const std::uint64_t page = line_index / lpr;
  const auto eff = static_cast<std::uint32_t>(page % geom_.channels);
  loc.channel = eff % geom_.fd_channels();
  loc.plane = eff / geom_.fd_channels();
  loc.stripe = page / geom_.channels;
  return loc;
}

std::uint64_t ParityLayout::line_of(std::uint32_t channel, std::uint32_t plane,
                                    std::uint64_t stripe,
                                    std::uint32_t slot) const {
  const std::uint32_t eff = plane * geom_.fd_channels() + channel;
  const std::uint64_t page = stripe * geom_.channels + eff;
  return page * geom_.lines_per_row() + slot;
}

GroupId ParityLayout::group_of(std::uint64_t line_index) const {
  const Loc loc = locate(line_index);
  const std::uint32_t n = geom_.fd_channels();
  GroupId id;
  id.slot = loc.slot;
  id.plane = loc.plane;
  if (loc.channel != loc.stripe % n) {
    id.leftover = false;
    id.index = loc.stripe;
  } else {
    id.leftover = true;
    id.index = loc.stripe / (n - 1);
  }
  return id;
}

std::vector<Member> ParityLayout::members(const GroupId& id) const {
  const std::uint32_t n = geom_.fd_channels();
  std::vector<Member> out;
  if (!id.leftover) {
    const std::uint64_t p = id.index;
    const std::uint32_t c_par = static_cast<std::uint32_t>(p % n);
    for (std::uint32_t c = 0; c < n; ++c) {
      if (c == c_par) continue;
      out.push_back(Member{c, line_of(c, id.plane, p, id.slot)});
    }
  } else {
    const std::uint64_t first = id.index * (n - 1);
    for (std::uint64_t p = first;
         p < first + (n - 1) && p < stripes_; ++p) {
      const auto c = static_cast<std::uint32_t>(p % n);
      out.push_back(Member{c, line_of(c, id.plane, p, id.slot)});
    }
  }
  return out;
}

std::uint32_t ParityLayout::parity_channel(const GroupId& id) const {
  const std::uint32_t n = geom_.fd_channels();
  if (!id.leftover) {
    return static_cast<std::uint32_t>(id.index % n);
  }
  // The leftover block covers stripes [g(N-1), (g+1)(N-1)), whose channels
  // are the N-1 consecutive residues starting at g(N-1) mod N; the missing
  // residue is (g(N-1) + N - 1) mod N.
  return static_cast<std::uint32_t>((id.index * (n - 1) + n - 1) % n);
}

dram::DramAddress ParityLayout::parity_line_address(const GroupId& id) const {
  // Place the parity in the reserved (top) rows of the same bank number the
  // covered data occupies (Fig. 4), in the parity channel.  Within the
  // reserved region, spread parities of different data rows round-robin.
  const std::uint64_t p =
      id.leftover ? id.index * (geom_.fd_channels() - 1) : id.index;
  dram::DramAddress a;
  // DramAddress.channel is the effective channel: the parity stays in the
  // same sub-channel plane as the data it covers.
  a.channel = id.plane * geom_.fd_channels() + parity_channel(id);
  a.bank = static_cast<std::uint32_t>(p % geom_.banks_per_rank);
  const std::uint64_t rb = p / geom_.banks_per_rank;
  a.rank = static_cast<std::uint32_t>(rb % geom_.ranks_per_channel);
  const std::uint64_t data_row = rb / geom_.ranks_per_channel;
  a.row = geom_.rows_per_bank - reserved_rows_ +
          (data_row % reserved_rows_);
  a.col = id.slot % geom_.lines_per_row();
  return a;
}

std::uint64_t ParityLayout::xor_cacheline_key(
    std::uint64_t line_index) const {
  const Loc loc = locate(line_index);
  // One XOR cacheline per (plane, stripe, slot/4); tag the namespace in the
  // top bits so keys never collide with data or ECC line identifiers.  With
  // one plane this is the classic stripe * buckets + bucket enumeration.
  const std::uint64_t buckets = geom_.lines_per_row() / 4;
  return (1ULL << 62) |
         ((loc.stripe * geom_.sub_channels + loc.plane) * buckets +
          loc.slot / 4);
}

GroupId ParityLayout::group_for_xor_key(std::uint64_t key) const {
  const std::uint64_t v = key & ~(1ULL << 62);
  const std::uint64_t buckets = geom_.lines_per_row() / 4;
  GroupId g;
  g.leftover = false;
  g.slot = static_cast<std::uint32_t>(v % buckets) * 4;
  const std::uint64_t q = v / buckets;
  g.plane = static_cast<std::uint32_t>(q % geom_.sub_channels);
  g.index = q / geom_.sub_channels;
  return g;
}

std::vector<std::uint64_t> ParityLayout::co_retired_pages(
    std::uint64_t line_index) const {
  const Loc loc = locate(line_index);
  const std::uint32_t n = geom_.fd_channels();
  const std::uint32_t base = loc.plane * n;  // first effective channel
  std::vector<std::uint64_t> pages;
  // Pages sharing primary groups with this page: the other pages of the
  // stripe (same plane only -- planes never share groups).
  for (std::uint32_t c = 0; c < n; ++c) {
    pages.push_back(loc.stripe * geom_.channels + base + c);
  }
  // Pages sharing its leftover group (if this page is a leftover for any
  // slot -- the leftover role is per-line but constant across the page).
  if (loc.channel == loc.stripe % n) {
    const std::uint64_t g = loc.stripe / (n - 1);
    const std::uint64_t first = g * (n - 1);
    for (std::uint64_t p = first; p < first + (n - 1) && p < stripes_; ++p) {
      if (p == loc.stripe) continue;
      pages.push_back(p * geom_.channels + base + p % n);
    }
  }
  return pages;
}

}  // namespace eccsim::eccparity
