// Ablation: row-buffer policy (Sec. IV-B).  The paper adopts LOT-ECC's
// close-page policy because it lets idle ranks drop into sleep mode;
// open-page would win row hits on spatially-local streams but keeps ranks
// in active standby.  This bench runs both policies on a streaming and a
// low-rate workload and shows the trade the paper resolved in favor of
// close-page for energy.
#include <cstdio>

#include "bench_common.hpp"

using namespace eccsim;

int main(int argc, char** argv) {
  eccsim::bench::init(argc, argv);
  std::printf("Ablation -- close-page vs open-page row policy (Sec. IV-B)\n\n");
  const auto desc = ecc::make_scheme(ecc::SchemeId::kLotEcc5Parity,
                                     ecc::SystemScale::kQuadEquivalent);
  Table t({"workload", "policy", "EPI (pJ/instr)", "background EPI",
           "dynamic EPI", "IPC"});
  for (const char* wl : {"lbm", "sjeng"}) {
    for (auto policy : {dram::RowPolicy::kClosePage,
                        dram::RowPolicy::kOpenPage}) {
      sim::SimOptions opts;
      opts.target_instructions = bench::target_instructions();
      opts.row_policy = policy;
      sim::SystemSim s(desc, trace::workload_by_name(wl), sim::CpuConfig{},
                       opts);
      const auto r = s.run();
      t.add_row({wl,
                 policy == dram::RowPolicy::kClosePage ? "close-page"
                                                       : "open-page",
                 Table::num(r.epi_pj, 1),
                 Table::num(r.background_epi_pj, 1),
                 Table::num(r.dynamic_epi_pj, 1), Table::num(r.ipc, 2)});
    }
  }
  bench::emit("ablation_rowpolicy", t);
  std::printf(
      "Open-page trades activate energy (fewer ACTs on row hits) for\n"
      "background energy (rows pin ranks in active standby, blocking the\n"
      "sleep mode ECC Parity's small ranks exploit).  Close-page wins\n"
      "total EPI, which is why the paper configures it (Sec. IV-B).\n");
  return 0;
}
