// Process/run identity helpers shared by the run manifest, the
// perf-history records, and the runner's JSON metadata: git HEAD
// discovery, host identity, and timestamps.
//
// Lives at the bottom of the observability stack (std + POSIX only) so
// layers below the runner -- the Monte Carlo engine, the tools -- can
// stamp provenance without linking the simulator.
#pragma once

#include <string>

namespace eccsim::obs {

/// HEAD commit of the enclosing git repository, found by walking up from
/// the working directory (never shells out); "unknown" outside a repo.
std::string git_head_sha();

/// Network hostname of this machine ("unknown" when unavailable).
std::string hostname();

/// Logical CPU count visible to this process (>= 1).
unsigned cpu_count();

/// Current wall-clock time as ISO-8601 UTC ("2026-08-09T12:34:56Z").
std::string utc_timestamp();

/// Monotonic clock in seconds, for elapsed/throughput computations.
double monotonic_seconds();

}  // namespace eccsim::obs
