// Property tests for the Reed-Solomon codec, parameterized over (n, k).
//
// The most load-bearing property for this repository is LINEARITY: the
// parity of a sum is the sum of parities.  ECC Parity's entire mechanism
// -- XORing correction bits across channels, the Eq. 1 incremental parity
// update, reconstruction by cancellation -- is sound only because every
// codec's correction bits are linear over GF(2).
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <tuple>
#include <vector>

#include "common/rng.hpp"
#include "gf/rs.hpp"

namespace eccsim::gf {
namespace {

using Params = std::tuple<unsigned, unsigned>;  // (n, k)

class RsPropertyTest : public ::testing::TestWithParam<Params> {
 protected:
  unsigned n() const { return std::get<0>(GetParam()); }
  unsigned k() const { return std::get<1>(GetParam()); }
  unsigned two_t() const { return n() - k(); }

  std::vector<std::uint8_t> random_data(Rng& rng) const {
    std::vector<std::uint8_t> d(k());
    for (auto& b : d) b = static_cast<std::uint8_t>(rng.next_below(256));
    return d;
  }
};

TEST_P(RsPropertyTest, EncodeCheckRoundTrip) {
  Rs8 rs(n(), k());
  Rng rng(100 + n());
  for (int i = 0; i < 50; ++i) {
    const auto cw = rs.encode(random_data(rng));
    EXPECT_TRUE(rs.check(cw));
  }
}

TEST_P(RsPropertyTest, ParityIsLinear) {
  // parity(a ^ b) == parity(a) ^ parity(b): the property Eq. 1 and the
  // cross-channel XOR rely on.
  Rs8 rs(n(), k());
  Rng rng(200 + n());
  for (int i = 0; i < 100; ++i) {
    const auto a = random_data(rng);
    const auto b = random_data(rng);
    std::vector<std::uint8_t> ab(k());
    for (unsigned j = 0; j < k(); ++j) {
      ab[j] = static_cast<std::uint8_t>(a[j] ^ b[j]);
    }
    const auto pa = rs.parity(a);
    const auto pb = rs.parity(b);
    const auto pab = rs.parity(ab);
    for (unsigned j = 0; j < two_t(); ++j) {
      EXPECT_EQ(pab[j], pa[j] ^ pb[j]) << "n=" << n() << " k=" << k();
    }
  }
}

TEST_P(RsPropertyTest, CorrectsUpToTErrors) {
  Rs8 rs(n(), k());
  Rng rng(300 + n());
  const unsigned t_max = two_t() / 2;
  for (unsigned errs = 1; errs <= t_max; ++errs) {
    for (int trial = 0; trial < 40; ++trial) {
      auto cw = rs.encode(random_data(rng));
      const auto orig = cw;
      std::vector<unsigned> pos(n());
      std::iota(pos.begin(), pos.end(), 0);
      std::shuffle(pos.begin(), pos.end(), rng);
      for (unsigned e = 0; e < errs; ++e) {
        cw[pos[e]] ^= static_cast<std::uint8_t>(1 + rng.next_below(255));
      }
      const auto res = rs.decode(cw);
      ASSERT_TRUE(res.ok) << "errs=" << errs;
      EXPECT_EQ(cw, orig);
    }
  }
}

TEST_P(RsPropertyTest, CorrectsMixedErrorsAndErasuresAtCapability) {
  // Every (nu, e) with 2*nu + e == 2t must decode.
  Rs8 rs(n(), k());
  Rng rng(400 + n());
  for (unsigned nu = 0; 2 * nu <= two_t(); ++nu) {
    const unsigned e = two_t() - 2 * nu;
    if (nu + e > n()) continue;
    for (int trial = 0; trial < 25; ++trial) {
      auto cw = rs.encode(random_data(rng));
      const auto orig = cw;
      std::vector<unsigned> pos(n());
      std::iota(pos.begin(), pos.end(), 0);
      std::shuffle(pos.begin(), pos.end(), rng);
      std::vector<unsigned> erasures(pos.begin(), pos.begin() + e);
      for (unsigned i = 0; i < e + nu; ++i) {
        cw[pos[i]] ^= static_cast<std::uint8_t>(1 + rng.next_below(255));
      }
      const auto res = rs.decode(cw, erasures);
      ASSERT_TRUE(res.ok) << "nu=" << nu << " e=" << e;
      EXPECT_EQ(cw, orig);
    }
  }
}

TEST_P(RsPropertyTest, DetectsUpTo2TErasureWorthOfKnownDamage) {
  // Any corruption confined to <= 2t known positions is always repaired;
  // syndromes of a corrupted word are never all-zero when damage stays
  // within the code's minimum distance (2t+1 positions).
  Rs8 rs(n(), k());
  Rng rng(500 + n());
  for (int trial = 0; trial < 60; ++trial) {
    auto cw = rs.encode(random_data(rng));
    const unsigned damage = 1 + static_cast<unsigned>(
        rng.next_below(two_t()));
    std::vector<unsigned> pos(n());
    std::iota(pos.begin(), pos.end(), 0);
    std::shuffle(pos.begin(), pos.end(), rng);
    for (unsigned i = 0; i < damage; ++i) {
      cw[pos[i]] ^= static_cast<std::uint8_t>(1 + rng.next_below(255));
    }
    EXPECT_FALSE(rs.check(cw)) << "damage=" << damage;
  }
}

TEST_P(RsPropertyTest, CleanCodewordDecodesDespiteOverdeclaredErasures) {
  // Regression: decode used to apply the capability bound before looking
  // at the syndromes, so a clean codeword arriving with more than 2t
  // declared erasures was reported uncorrectable.  A zero syndrome means
  // nothing needs fixing no matter what the caller suspected.
  Rs8 rs(n(), k());
  Rng rng(600 + n());
  for (int trial = 0; trial < 25; ++trial) {
    auto cw = rs.encode(random_data(rng));
    const auto orig = cw;
    std::vector<unsigned> erasures(std::min(n(), two_t() + 1));
    std::iota(erasures.begin(), erasures.end(), 0);
    const auto res = rs.decode(cw, erasures);
    EXPECT_TRUE(res.ok) << "declared=" << erasures.size()
                        << " capability=" << two_t();
    EXPECT_FALSE(res.detected_error);
    EXPECT_EQ(cw, orig);
  }
}

TEST_P(RsPropertyTest, DuplicateErasurePositionsCountOnce) {
  // Regression: duplicated positions used to square the corresponding
  // Gamma factor, inflating the locator degree.  A duplicated list must
  // decode exactly like its deduplicated form -- including at full
  // erasure capability, where one phantom extra erasure would push the
  // decoder past its bound.
  Rs8 rs(n(), k());
  Rng rng(700 + n());
  const unsigned e = std::min(two_t(), n() - 1);
  if (e == 0) return;
  for (int trial = 0; trial < 25; ++trial) {
    auto cw = rs.encode(random_data(rng));
    const auto orig = cw;
    std::vector<unsigned> pos(n());
    std::iota(pos.begin(), pos.end(), 0);
    std::shuffle(pos.begin(), pos.end(), rng);
    std::vector<unsigned> erasures(pos.begin(), pos.begin() + e);
    for (unsigned i = 0; i < e; ++i) {
      cw[pos[i]] ^= static_cast<std::uint8_t>(1 + rng.next_below(255));
    }
    // Duplicate every erasure (and repeat the first one twice more).
    std::vector<unsigned> duplicated = erasures;
    duplicated.insert(duplicated.end(), erasures.begin(), erasures.end());
    duplicated.push_back(erasures[0]);
    const auto res = rs.decode(cw, duplicated);
    ASSERT_TRUE(res.ok) << "e=" << e;
    EXPECT_EQ(res.corrected_erasures + res.corrected_errors, e);
    EXPECT_EQ(cw, orig);
  }
}

TEST_P(RsPropertyTest, FailedDecodeRestoresInput) {
  // Regression: a failed decode used to leave whatever partial correction
  // the Chien/Forney pass had applied.  Overwhelm the code (2t+1 unknown
  // errors, which at minimum distance 2t+1 can also miscorrect -- both
  // outcomes are exercised across trials) and require that every !ok
  // return hands back the exact input bytes.
  Rs8 rs(n(), k());
  Rng rng(800 + n());
  const unsigned damage = two_t() + 1;
  if (damage > n()) return;
  unsigned failures = 0;
  for (int trial = 0; trial < 200; ++trial) {
    auto cw = rs.encode(random_data(rng));
    std::vector<unsigned> pos(n());
    std::iota(pos.begin(), pos.end(), 0);
    std::shuffle(pos.begin(), pos.end(), rng);
    for (unsigned i = 0; i < damage; ++i) {
      cw[pos[i]] ^= static_cast<std::uint8_t>(1 + rng.next_below(255));
    }
    const auto before = cw;
    const auto res = rs.decode(cw);
    if (res.ok) continue;  // miscorrection to a nearby codeword: legal
    ++failures;
    EXPECT_TRUE(res.detected_error);
    EXPECT_EQ(cw, before) << "failed decode must restore its input";
  }
  // With 2t+1 random errors most trials must fail outright; if this ever
  // trips, the damage model above stopped exercising the failure path.
  EXPECT_GT(failures, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    CodeShapes, RsPropertyTest,
    ::testing::Values(Params{36, 32},   // chipkill36's correction geometry
                      Params{34, 32},   // chipkill36's detection geometry
                      Params{18, 16},   // chipkill18
                      Params{10, 8},    // Sec. VI-D (byte-symbol analogue)
                      Params{255, 223}, // classic RS-255
                      Params{15, 11},   // small odd shape
                      Params{8, 4},     // high-redundancy
                      Params{5, 1}),    // degenerate repetition-like
    [](const ::testing::TestParamInfo<Params>& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "k" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace eccsim::gf
