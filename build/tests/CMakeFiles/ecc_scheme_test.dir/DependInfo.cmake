
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ecc_scheme_test.cpp" "tests/CMakeFiles/ecc_scheme_test.dir/ecc_scheme_test.cpp.o" "gcc" "tests/CMakeFiles/ecc_scheme_test.dir/ecc_scheme_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ecc/CMakeFiles/ecc_schemes.dir/DependInfo.cmake"
  "/root/repo/build/src/gf/CMakeFiles/ecc_gf.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/ecc_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ecc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
