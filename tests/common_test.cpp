// Tests for the common utilities: RNG determinism and distributions,
// streaming statistics, histograms, and table rendering.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <stdexcept>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/units.hpp"

namespace eccsim {
namespace {

// ---------------------------------------------------------------------------
// RNG

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42), c(43);
  bool differs = false;
  for (int i = 0; i < 1000; ++i) {
    const auto va = a.next();
    EXPECT_EQ(va, b.next());
    if (va != c.next()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(Rng, NextBelowInRangeAndUnbiasedish) {
  Rng rng(7);
  std::vector<unsigned> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const auto v = rng.next_below(10);
    ASSERT_LT(v, 10u);
    ++counts[v];
  }
  for (auto c : counts) {
    EXPECT_NEAR(static_cast<double>(c), n / 10.0, n / 10.0 * 0.1);
  }
}

TEST(Rng, NextBelowEdgeCases) {
  Rng rng(8);
  EXPECT_EQ(rng.next_below(0), 0u);
  EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 100000; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 100000, 0.5, 0.01);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(10);
  const double rate = 0.25;
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(rate);
  EXPECT_NEAR(sum / n, 1.0 / rate, 1.0 / rate * 0.02);
}

TEST(Rng, JumpedStreamsDiffer) {
  Rng base(11);
  Rng s0 = base.substream(0);
  Rng s1 = base.substream(1);
  bool differs = false;
  for (int i = 0; i < 100; ++i) {
    if (s0.next() != s1.next()) differs = true;
  }
  EXPECT_TRUE(differs);
}

// ---------------------------------------------------------------------------
// Statistics

TEST(RunningStat, MeanVarMinMax) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.001);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStat, MergeEqualsCombined) {
  RunningStat a, b, all;
  Rng rng(12);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_double() * 10;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(SampleSet, ExactPercentiles) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(s.percentile(99), 99.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
}

TEST(SampleSet, PercentileAfterMoreSamples) {
  SampleSet s;
  s.add(5);
  EXPECT_DOUBLE_EQ(s.percentile(99.9), 5.0);
  s.add(50);
  s.add(500);
  EXPECT_DOUBLE_EQ(s.percentile(99.9), 500.0);  // sorted cache invalidated
}

TEST(SampleSet, SingleSampleIsEveryPercentile) {
  SampleSet s;
  s.add(7.5);
  EXPECT_DOUBLE_EQ(s.percentile(0), 7.5);
  EXPECT_DOUBLE_EQ(s.percentile(50), 7.5);
  EXPECT_DOUBLE_EQ(s.percentile(100), 7.5);
}

TEST(SampleSet, CacheInvalidatesOnEveryInterleavedAdd) {
  // The add-only contract: percentile() may cache the sorted view, but
  // any add() must invalidate it -- even when the new sample lands below
  // the current minimum.
  SampleSet s;
  s.add(10);
  s.add(20);
  EXPECT_DOUBLE_EQ(s.percentile(0), 10.0);
  s.add(1);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 20.0);
  s.add(30);
  EXPECT_DOUBLE_EQ(s.percentile(100), 30.0);
}

TEST(QuantileReservoir, ExactWhileUnderCapacity) {
  QuantileReservoir r(100);
  for (int i = 1; i <= 50; ++i) r.add(i, static_cast<std::uint64_t>(i * 7));
  EXPECT_TRUE(r.exact());
  EXPECT_EQ(r.retained(), 50u);
  EXPECT_DOUBLE_EQ(r.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(r.percentile(50), 25.0);
  EXPECT_DOUBLE_EQ(r.percentile(100), 50.0);
}

TEST(QuantileReservoir, BoundsMemoryAndIsOrderIndependent) {
  // Retention is bottom-k by key, so any insertion order keeps the same
  // sample set -- the property the Monte Carlo engine relies on for
  // chunk/thread-order independence.
  QuantileReservoir fwd(16), rev(16);
  for (int i = 0; i < 1000; ++i) {
    fwd.add(i, SplitMix64(static_cast<std::uint64_t>(i)).next());
  }
  for (int i = 999; i >= 0; --i) {
    rev.add(i, SplitMix64(static_cast<std::uint64_t>(i)).next());
  }
  EXPECT_FALSE(fwd.exact());
  EXPECT_EQ(fwd.retained(), 16u);
  EXPECT_EQ(fwd.offered(), 1000u);
  for (double p : {0.0, 25.0, 50.0, 75.0, 100.0}) {
    EXPECT_DOUBLE_EQ(fwd.percentile(p), rev.percentile(p));
  }
}

TEST(QuantileReservoir, RejectsZeroCapacity) {
  EXPECT_THROW(QuantileReservoir(0), std::invalid_argument);
}

TEST(RelativeCi95, ShrinksWithSamplesAndGuardsDegenerateInputs) {
  RunningStat one;
  one.add(5.0);
  EXPECT_TRUE(std::isinf(relative_ci95(one)));  // n < 2: no CI yet
  RunningStat zero_mean;
  zero_mean.add(-1.0);
  zero_mean.add(1.0);
  EXPECT_TRUE(std::isinf(relative_ci95(zero_mean)));
  Rng rng(11);
  RunningStat small, large;
  for (int i = 0; i < 100; ++i) small.add(1.0 + rng.next_double());
  large = small;
  for (int i = 0; i < 9900; ++i) large.add(1.0 + rng.next_double());
  EXPECT_LT(relative_ci95(large), relative_ci95(small));
  EXPECT_GT(relative_ci95(large), 0.0);
}

TEST(Histogram, BinningAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);   // bin 0
  h.add(9.99);  // bin 9
  h.add(-3);    // clamps to bin 0
  h.add(42);    // clamps to bin 9
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(9), 2u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.bin_low(3), 3.0);
  EXPECT_DOUBLE_EQ(h.bin_high(3), 4.0);
  EXPECT_FALSE(h.ascii().empty());
}

TEST(Histogram, RejectsBadConfig) {
  EXPECT_THROW(Histogram(0, 1, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(1, 1, 4), std::invalid_argument);
}

TEST(Stats, GeomeanAndMean) {
  EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
  EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_THROW(geomean({1.0, -2.0}), std::invalid_argument);
  EXPECT_EQ(geomean({}), 0.0);
}

// ---------------------------------------------------------------------------
// Table

TEST(Table, RendersAlignedColumns) {
  Table t({"a", "long_header", "c"});
  t.add_row({"1", "2", "3"});
  t.add_row({"wide_cell", "x"});  // short row padded
  const std::string s = t.str();
  EXPECT_NE(s.find("long_header"), std::string::npos);
  EXPECT_NE(s.find("wide_cell"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, CsvEscapesSpecials) {
  Table t({"name", "value"});
  t.add_row({"with,comma", "with\"quote"});
  const std::string csv = t.csv();
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"with\"\"quote\""), std::string::npos);
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::pct(0.125), "12.5%");
  EXPECT_EQ(Table::pct(0.40625, 1), "40.6%");
}

// ---------------------------------------------------------------------------
// Units

TEST(Units, FitConversions) {
  EXPECT_DOUBLE_EQ(units::fit_to_per_hour(44.0), 44e-9);
  // 288 chips at 44 FIT: ~78,914 hours MTBF.
  EXPECT_NEAR(units::mtbf_hours(44.0, 288), 78914, 1.0);
}

TEST(Units, MtbfOfNonFailingSystemIsInfiniteNotDivideByZero) {
  // A zero rate or an empty device population never fails: +inf, not a
  // division by zero (which would be NaN-adjacent UB under -ffast-math
  // style reasoning and serialize as garbage).
  EXPECT_TRUE(std::isinf(units::mtbf_hours(0.0, 288)));
  EXPECT_TRUE(std::isinf(units::mtbf_hours(44.0, 0.0)));
  EXPECT_GT(units::mtbf_hours(0.0, 0.0), 0.0);  // +inf, positive
}

TEST(Units, PicojouleIdentity) {
  // 100 mA * 1.5 V * 10 ns = 1500 pJ.
  EXPECT_DOUBLE_EQ(units::picojoules(100, 1.5, 10), 1500.0);
}

}  // namespace
}  // namespace eccsim
