file(REMOVE_RECURSE
  "libecc_gf.a"
)
