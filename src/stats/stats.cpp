#include "stats/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <stdexcept>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "stats/trace.hpp"

namespace eccsim::stats {

// --- Distribution ----------------------------------------------------------

void Distribution::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
}

void Distribution::merge(const Distribution& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

// --- Histogram -------------------------------------------------------------

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (!(lo < hi) || bins == 0) {
    throw std::invalid_argument("Histogram: require lo < hi and bins > 0");
  }
}

void Histogram::add(double x) {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto idx = static_cast<std::int64_t>(std::floor((x - lo_) / width));
  idx = std::clamp<std::int64_t>(idx, 0,
                                 static_cast<std::int64_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

void Histogram::merge(const Histogram& other) {
  if (other.counts_.size() != counts_.size() || other.lo_ != lo_ ||
      other.hi_ != hi_) {
    throw std::invalid_argument("Histogram::merge: shape mismatch");
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  total_ += other.total_;
}

double Histogram::percentile(double p) const {
  if (total_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const double target = p / 100.0 * static_cast<double>(total_);
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  double cum = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cum + static_cast<double>(counts_[i]);
    if (next >= target && counts_[i] > 0) {
      // Linear interpolation within the bin.
      const double frac = (target - cum) / static_cast<double>(counts_[i]);
      return lo_ + (static_cast<double>(i) + frac) * width;
    }
    cum = next;
  }
  return hi_;
}

// --- Registry --------------------------------------------------------------

Registry::Entry& Registry::add_entry(const std::string& path, Kind kind,
                                     std::size_t slot) {
  Entry e;
  e.path = path;
  e.kind = kind;
  e.slot = slot;
  if (sampled(kind)) {
    // A stat registered after sampling started contributes zero to the
    // epochs it did not witness, keeping all series equally long.
    e.epoch_deltas.assign(marks_.size(), 0.0);
  }
  index_.emplace(path, entries_.size());
  entries_.push_back(std::move(e));
  return entries_.back();
}

const Registry::Entry* Registry::find(const std::string& path) const {
  const auto it = index_.find(path);
  return it == index_.end() ? nullptr : &entries_[it->second];
}

Counter* Registry::counter(const std::string& path) {
  if (const Entry* e = find(path)) {
    if (e->kind != Kind::kCounter) {
      throw std::invalid_argument("Registry: path '" + path +
                                  "' already registered with another kind");
    }
    return &counters_[e->slot];
  }
  counters_.emplace_back();
  add_entry(path, Kind::kCounter, counters_.size() - 1);
  return &counters_.back();
}

Accum* Registry::accum(const std::string& path) {
  if (const Entry* e = find(path)) {
    if (e->kind != Kind::kAccum) {
      throw std::invalid_argument("Registry: path '" + path +
                                  "' already registered with another kind");
    }
    return &accums_[e->slot];
  }
  accums_.emplace_back();
  add_entry(path, Kind::kAccum, accums_.size() - 1);
  return &accums_.back();
}

Distribution* Registry::distribution(const std::string& path) {
  if (const Entry* e = find(path)) {
    if (e->kind != Kind::kDistribution) {
      throw std::invalid_argument("Registry: path '" + path +
                                  "' already registered with another kind");
    }
    return &distributions_[e->slot];
  }
  distributions_.emplace_back();
  add_entry(path, Kind::kDistribution, distributions_.size() - 1);
  return &distributions_.back();
}

Histogram* Registry::histogram(const std::string& path, double lo, double hi,
                               std::size_t bins) {
  if (const Entry* e = find(path)) {
    if (e->kind != Kind::kHistogram) {
      throw std::invalid_argument("Registry: path '" + path +
                                  "' already registered with another kind");
    }
    return &histograms_[e->slot];
  }
  histograms_.emplace_back(lo, hi, bins);
  add_entry(path, Kind::kHistogram, histograms_.size() - 1);
  return &histograms_.back();
}

void Registry::gauge(const std::string& path, GaugeFn poll) {
  if (const Entry* e = find(path)) {
    if (e->kind != Kind::kGauge) {
      throw std::invalid_argument("Registry: path '" + path +
                                  "' already registered with another kind");
    }
    gauges_[e->slot] = std::move(poll);
    return;
  }
  gauges_.push_back(std::move(poll));
  add_entry(path, Kind::kGauge, gauges_.size() - 1);
}

double Registry::current(const Entry& e, std::uint64_t cycle) const {
  switch (e.kind) {
    case Kind::kCounter:
      return static_cast<double>(counters_[e.slot].value());
    case Kind::kAccum:
      return accums_[e.slot].value();
    case Kind::kGauge:
      // After finalize() the poll function is gone (it may reference a
      // destroyed component); the stored final value stands in.
      return finalized_ || !gauges_[e.slot] ? e.final_value
                                            : gauges_[e.slot](cycle);
    default:
      throw std::invalid_argument("Registry: '" + e.path +
                                  "' is not a sampled stat");
  }
}

double Registry::value(const std::string& path, std::uint64_t cycle) const {
  const Entry* e = find(path);
  if (e == nullptr) {
    throw std::out_of_range("Registry: unknown path '" + path + "'");
  }
  return current(*e, cycle);
}

void Registry::sample_epoch(std::uint64_t cycle) {
  if (finalized_) return;
  marks_.push_back(cycle);
  for (auto& e : entries_) {
    if (!sampled(e.kind)) continue;
    const double cur = current(e, cycle);
    e.epoch_deltas.push_back(cur - e.last_sample);
    e.last_sample = cur;
  }
}

const std::vector<double>* Registry::epoch_series(
    const std::string& path) const {
  const Entry* e = find(path);
  if (e == nullptr || !sampled(e->kind)) return nullptr;
  return &e->epoch_deltas;
}

void Registry::add_series(const std::string& path,
                          std::vector<double> values) {
  for (auto& [name, existing] : series_) {
    if (name == path) {
      existing = std::move(values);
      return;
    }
  }
  series_.emplace_back(path, std::move(values));
}

void Registry::finalize(std::uint64_t cycle) {
  if (finalized_) return;
  if (!marks_.empty() && marks_.back() < cycle) {
    sample_epoch(cycle);  // final, partial epoch
  } else if (marks_.empty() && epoch_cycles_ != 0 && cycle != 0) {
    sample_epoch(cycle);  // the run was shorter than one epoch
  }
  for (auto& e : entries_) {
    if (sampled(e.kind)) e.final_value = current(e, cycle);
  }
  finalized_ = true;
  // Release gauge closures: they may reference components that die before
  // this registry is serialized.
  for (auto& g : gauges_) g = nullptr;
}

void Registry::merge(const Registry& other) {
  for (const auto& oe : other.entries_) {
    switch (oe.kind) {
      case Kind::kCounter:
        counter(oe.path)->inc(other.counters_[oe.slot].value());
        break;
      case Kind::kAccum:
        accum(oe.path)->add(other.accums_[oe.slot].value());
        break;
      case Kind::kDistribution:
        distribution(oe.path)->merge(other.distributions_[oe.slot]);
        break;
      case Kind::kHistogram: {
        const Histogram& oh = other.histograms_[oe.slot];
        histogram(oe.path, oh.lo(), oh.hi(), oh.bins().size())->merge(oh);
        break;
      }
      case Kind::kGauge:
        break;  // per-run poll; not mergeable
    }
  }
}

std::vector<Registry::EntryView> Registry::view() const {
  std::vector<EntryView> out;
  out.reserve(entries_.size());
  for (const auto& e : entries_) {
    EntryView v{};
    v.path = &e.path;
    v.kind = e.kind;
    v.epochs = sampled(e.kind) ? &e.epoch_deltas : nullptr;
    v.dist = e.kind == Kind::kDistribution ? &distributions_[e.slot] : nullptr;
    v.hist = e.kind == Kind::kHistogram ? &histograms_[e.slot] : nullptr;
    if (sampled(e.kind)) {
      v.value = e.kind == Kind::kGauge && !finalized_ ? 0.0
                                                      : current(e, 0);
    }
    out.push_back(v);
  }
  return out;
}

// --- Config ----------------------------------------------------------------

namespace {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(v, &end, 10);
  return (end != nullptr && *end == '\0') ? parsed : fallback;
}

}  // namespace

Config Config::from_env(std::uint64_t default_epoch) {
  Config cfg;
  const char* on = std::getenv("ECCSIM_STATS");
  cfg.enabled = on != nullptr && std::string(on) != "0";
  cfg.epoch_cycles = env_u64("STATS_EPOCH", default_epoch);
  if (const char* dir = std::getenv("STATS_TRACE"); dir != nullptr && *dir) {
    cfg.trace_dir = dir;
    cfg.enabled = true;  // tracing implies stats collection
  }
  cfg.trace_limit = env_u64("STATS_TRACE_LIMIT", cfg.trace_limit);
  return cfg;
}

// --- Collector -------------------------------------------------------------

Collector::Collector(const Config& cfg) : cfg_(cfg) {
  registry_.set_epoch_cycles(cfg.epoch_cycles);
}

Collector::~Collector() = default;

void Collector::open_trace(const std::string& path) {
  if (tracer_ == nullptr) {
    tracer_ = std::make_unique<Tracer>(path, cfg_.trace_limit);
  }
}

// --- process metrics -------------------------------------------------------

std::uint64_t process_peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::uint64_t>(ru.ru_maxrss);  // bytes on macOS
#else
  return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;  // KiB on Linux
#endif
#else
  return 0;
#endif
}

}  // namespace eccsim::stats
