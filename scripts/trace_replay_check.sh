#!/bin/sh
# Record -> replay bit-identity check for the trace subsystem.
#
# Usage: ./scripts/trace_replay_check.sh [build-dir]
#   default build dir: build (needs tools/tracetool and bench/fig10_epi_quad)
#
# Records every paper workload with tracetool (60000 ops/core covers the
# 49152-op warmup plus the measured smoke phase), then runs the Fig. 10
# quad-channel sweep twice in separate scratch working directories:
# once live from the synthetic generators and once replaying the
# recorded traces via --trace-in.  The full 16x8 sweep CSV -- every
# workload x scheme cell, all columns -- must be byte-identical, which
# pins down the whole chain: seed derivation, trace encode/decode, and
# the TraceSource plumbing through sim::SystemSim.
set -e

builddir=${1:-build}
cd "$(dirname "$0")/.."
tool="$builddir/tools/tracetool"
bench="$builddir/bench/fig10_epi_quad"
if [ ! -x "$tool" ] || [ ! -x "$bench" ]; then
  echo "usage: $0 [build-dir]  (need $tool and $bench)" >&2
  exit 2
fi
tool=$(cd "$(dirname "$tool")" && pwd)/$(basename "$tool")
bench=$(cd "$(dirname "$bench")" && pwd)/$(basename "$bench")

work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT
export ECCSIM_SMOKE=1

echo "[trace-replay] recording all paper workloads (60000 ops/core)" >&2
"$tool" record --all --out "$work/traces" --ops-per-core 60000 >/dev/null

echo "[trace-replay] live sweep (synthetic generators)" >&2
mkdir "$work/live" "$work/replay"
(cd "$work/live" && "$bench" >stdout.txt 2>/dev/null)

echo "[trace-replay] replay sweep (--trace-in)" >&2
(cd "$work/replay" && "$bench" --trace-in "$work/traces" \
  >stdout.txt 2>/dev/null)

csv=bench_results/sweep_quad_smoke.csv
if ! cmp -s "$work/live/$csv" "$work/replay/$csv"; then
  echo "[trace-replay] FAIL: replay sweep CSV differs from live" >&2
  diff "$work/live/$csv" "$work/replay/$csv" >&2 || true
  exit 1
fi
if ! cmp -s "$work/live/stdout.txt" "$work/replay/stdout.txt"; then
  echo "[trace-replay] FAIL: replay stdout differs from live" >&2
  diff "$work/live/stdout.txt" "$work/replay/stdout.txt" >&2 || true
  exit 1
fi
cells=$(wc -l <"$work/live/$csv")  # one row per workload x scheme cell
echo "[trace-replay] OK ($cells sweep cells bit-identical live vs replay)" >&2
