# Empty compiler generated dependencies file for ablation_xor_cache.
# This may be replaced when dependencies are built.
