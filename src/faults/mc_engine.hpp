// Chunked Monte Carlo execution engine for the fault-lifetime studies.
//
// Every reliability figure of the paper (Fig. 2 MTBF, Fig. 8 EOL
// correction fraction, Fig. 18 scrub windows, Sec. VI-B HPC stall) is a
// mean over many independently simulated systems.  This engine owns the
// fan-out mechanics so the per-figure code in montecarlo.cpp is pure
// modeling:
//
//   - Systems execute in fixed-size chunks over the shared work-stealing
//     runner::ThreadPool (honoring RUNNER_THREADS).  A Monte Carlo
//     launched from inside a pool worker -- e.g. from a sweep cell --
//     detects the nesting and runs inline instead of oversubscribing.
//   - Each system draws from its own RNG substream derived from
//     (seed, system index), and per-system results are merged on the
//     calling thread in strict index order, so the final statistics are
//     bit-identical at any thread count and any chunk size.
//   - Optional confidence-interval early termination: when a relative-CI
//     callback is supplied and `target_rel_ci` is set, the run stops at
//     the first chunk boundary where the estimate has converged.  The
//     stopping point depends (only) on the chunk size.
//   - Optional chunk-granular checkpointing: completed chunks append to a
//     text file as they merge; a rerun pointed at the same file skips the
//     recorded chunks and reproduces the uninterrupted output exactly.
//   - Optional mc.* observability: systems/chunk counters, chunk timings,
//     and a per-chunk relative-CI series in a stats::Registry.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <limits>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"

namespace eccsim::stats {
class Registry;
}

namespace eccsim::faults {

/// Default systems per chunk: coarse enough that pool dispatch is noise,
/// fine enough that early stop and checkpoints have useful granularity.
inline constexpr unsigned kMcDefaultChunkSize = 256;

/// Knobs for one Monte Carlo run.  The zero-initialized default runs the
/// full budget on the shared pool with no checkpointing.
struct McOptions {
  /// Worker threads; 0 = runner::ThreadPool::default_thread_count()
  /// (the RUNNER_THREADS environment variable, else all cores).
  unsigned threads = 0;
  /// Systems per chunk; 0 = kMcDefaultChunkSize.  Results are identical
  /// for any value; only early-stop granularity and checkpoint size vary.
  unsigned chunk_size = 0;
  /// Stop once the estimate's relative 95% CI half-width falls to this
  /// value (checked at chunk boundaries, in chunk order).  0 = run the
  /// whole budget.  Requires the run to supply a rel-CI callback.
  double target_rel_ci = 0.0;
  /// Systems that must merge before early stop may trigger, so a lucky
  /// first chunk cannot truncate the run.
  unsigned min_systems = 1000;
  /// Chunk-granular checkpoint file ("" = no checkpointing).  Several
  /// runs -- even from different binaries -- may share one file; chunks
  /// are matched by a hash of the run tag and sampling parameters.
  std::string checkpoint_path;
  /// Destination for mc.* counters/series (nullptr = no stats).
  stats::Registry* stats = nullptr;
};

/// What one engine run actually executed.
struct McRunInfo {
  std::uint64_t systems_requested = 0;
  std::uint64_t systems_merged = 0;    ///< contributed to the estimate
  std::uint64_t chunks_total = 0;
  std::uint64_t chunks_merged = 0;
  std::uint64_t chunks_loaded = 0;     ///< restored from the checkpoint
  bool early_stopped = false;
  /// Relative CI at the last check; NaN when no rel-CI callback ran.
  double final_rel_ci = std::numeric_limits<double>::quiet_NaN();
};

// --- checkpoint format (public so other engines can reuse the envelope) ---
//
// A checkpoint file is a line-oriented text log of completed chunks.  Each
// chunk is one line:
//
//   mcchunk1 <run_id:hex16> <chunk_index> <count> <field:hex16>...
//
// where the fields are the bit patterns of the chunk's count*nfields
// doubles (std::bit_cast, so the round-trip is exact).  Lines starting
// with '#' are comments; malformed or partial lines (a killed writer) are
// skipped on load.  Chunks are matched to a run by `run_id`, a hash of the
// run's tag and every sampling parameter -- see mc_run_identity() and
// docs/CHECKPOINTS.md for the full matching rule.  The fleet coordinator
// (src/fleet) reuses this format as its work-unit envelope.

/// Identity of a run for checkpoint-chunk matching: FNV-1a of the tag,
/// mixed (SplitMix64) with the seed, system budget, chunk size, and field
/// count.  A chunk recorded under any differing parameter never matches.
std::uint64_t mc_run_identity(const std::string& tag, std::uint64_t seed,
                              unsigned systems, unsigned chunk_size,
                              std::size_t nfields);

/// Appends one completed chunk (`count` systems' fields, flattened) to a
/// checkpoint stream as a single flushed line in the format above.
void mc_checkpoint_append(std::ostream& out, std::uint64_t run_id,
                          std::uint64_t index, unsigned count,
                          const std::vector<double>& fields);

/// Parses every complete chunk recorded for `run_id` from `in`, keyed by
/// chunk index.  `chunk_systems(ci)` must return the expected system count
/// of chunk `ci`; lines with a mismatched count, an out-of-range index, or
/// a truncated field list are skipped (resuming from a damaged file
/// degrades to re-simulating the missing chunks, never to failing).
std::unordered_map<std::uint64_t, std::vector<double>> mc_checkpoint_load(
    std::istream& in, std::uint64_t run_id, std::uint64_t nchunks,
    const std::function<unsigned(std::uint64_t)>& chunk_systems,
    std::size_t nfields);

/// Deterministic per-system generator: cheap to derive for any index
/// (unlike repeated jump()), still statistically independent streams.
Rng mc_system_rng(std::uint64_t seed, unsigned index);

/// Deterministic retention key for system `index`, for
/// QuantileReservoir bottom-k sketches.  Uses a different mixing path
/// than mc_system_rng so retention is uncorrelated with the sample
/// stream.
std::uint64_t mc_sample_key(std::uint64_t seed, unsigned index);

/// Evaluates one system: fills `fields[0..nfields)` from draws on `rng`.
/// Runs on a pool worker; must not touch shared state.
using McSystemFn =
    std::function<void(unsigned index, Rng& rng, double* fields)>;
/// Consumes one system's fields.  Always called on the engine's calling
/// thread, in strict index order -- accumulate freely without locks.
using McMergeFn = std::function<void(unsigned index, const double* fields)>;
/// Current relative 95% CI half-width of the run's primary estimate;
/// polled after each merged chunk.
using McRelCiFn = std::function<double()>;

/// Runs `fn` for systems [0, systems) and feeds every system's fields to
/// `merge` in index order.  `tag` names the run for checkpoint matching
/// and stat series (keep it short, unique per parameter point, and free
/// of whitespace).  `rel_ci` may be null when neither early stop nor the
/// CI series is wanted.
McRunInfo mc_run(unsigned systems, std::uint64_t seed, std::size_t nfields,
                 const std::string& tag, const McOptions& opts,
                 const McSystemFn& fn, const McMergeFn& merge,
                 const McRelCiFn& rel_ci = nullptr);

/// Deterministic parallel map over system indices: runs
/// fn(system_index, rng) for each index in [0, systems) across the shared
/// pool, each index seeded from mc_system_rng(seed, index).  The index
/// visit *set* is thread-count independent; the visit *order* is not, so
/// `fn` must either be independent per index or do its own (order
/// insensitive) aggregation.  Prefer mc_run for anything that reduces to
/// statistics.
void parallel_systems(unsigned systems, std::uint64_t seed,
                      const std::function<void(unsigned, Rng&)>& fn);

}  // namespace eccsim::faults
