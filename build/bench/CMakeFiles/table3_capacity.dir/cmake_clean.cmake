file(REMOVE_RECURSE
  "CMakeFiles/table3_capacity.dir/table3_capacity.cpp.o"
  "CMakeFiles/table3_capacity.dir/table3_capacity.cpp.o.d"
  "table3_capacity"
  "table3_capacity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
