file(REMOVE_RECURSE
  "CMakeFiles/ecc_cache.dir/cache.cpp.o"
  "CMakeFiles/ecc_cache.dir/cache.cpp.o.d"
  "libecc_cache.a"
  "libecc_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecc_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
