file(REMOVE_RECURSE
  "CMakeFiles/fig08_eol_correction_fraction.dir/fig08_eol_correction_fraction.cpp.o"
  "CMakeFiles/fig08_eol_correction_fraction.dir/fig08_eol_correction_fraction.cpp.o.d"
  "fig08_eol_correction_fraction"
  "fig08_eol_correction_fraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_eol_correction_fraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
