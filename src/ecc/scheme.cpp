#include "ecc/scheme.hpp"

#include <stdexcept>

namespace eccsim::ecc {

std::string to_string(SchemeId id) {
  switch (id) {
    case SchemeId::kChipkill36: return "chipkill36";
    case SchemeId::kChipkill18: return "chipkill18";
    case SchemeId::kLotEcc5: return "lotecc5";
    case SchemeId::kLotEcc9: return "lotecc9";
    case SchemeId::kMultiEcc: return "multiecc";
    case SchemeId::kRaim: return "raim";
    case SchemeId::kLotEcc5Parity: return "lotecc5+parity";
    case SchemeId::kRaimParity: return "raim+parity";
  }
  return "unknown";
}

double SchemeDesc::capacity_overhead() const {
  if (uses_ecc_parity) {
    // Sec. III-E: detection bits per channel plus parity lines shared by
    // N-1 channels; the (1 + 12.5%) factor protects the parity lines with
    // detection bits of their own.
    return detection_overhead +
           (1.0 + detection_overhead) * correction_ratio /
               static_cast<double>(channels - 1);
  }
  if (maint == MaintTraffic::kNone && id != SchemeId::kRaim) {
    // Inline symbol codes (commercial chipkill): check symbols ride in the
    // dedicated ECC chips; no separate protection is needed.
    return detection_overhead + correction_ratio;
  }
  // Tiered schemes (LOT-ECC, Multi-ECC) and RAIM: stored correction bits
  // carry their own protection.
  return detection_overhead +
         correction_ratio * (1.0 + correction_protection);
}

double SchemeDesc::capacity_overhead_eol(double faulty_fraction) const {
  if (!uses_ecc_parity) return capacity_overhead();
  // Faulty bank pairs store actual correction bits at twice the bits of
  // their parity share (Sec. III-B): the marginal cost per faulty byte is
  // 2R(1+d) instead of R(1+d)/(N-1).
  const double parity_share = (1.0 + detection_overhead) * correction_ratio /
                              static_cast<double>(channels - 1);
  const double materialized = 2.0 * (1.0 + detection_overhead) *
                              correction_ratio;
  return detection_overhead + (1.0 - faulty_fraction) * parity_share +
         faulty_fraction * materialized;
}

dram::MemSystemConfig SchemeDesc::mem_config(dram::Generation gen) const {
  dram::MemSystemConfig cfg;
  cfg.name = name;
  cfg.channels = channels;
  cfg.ranks_per_channel = ranks_per_channel;
  cfg.chips_per_rank = chips_per_rank;
  cfg.data_chips_per_rank = data_chips_per_rank;
  cfg.line_bytes = line_bytes;
  if (mixed_rank) {
    // LOT-ECC5 rank: 4 x16 2Gb chips plus one x8 with half the capacity and
    // I/O width (Sec. IV-A).  The channel model charges per-chip energy
    // uniformly, so we blend: the x8 chip costs roughly half an x16 in
    // burst energy and somewhat less in background; we model the rank as
    // 4 x16 chips plus 0.55 x16-equivalents, rounded into the per-chip
    // weight by scaling the device's currents.
    cfg.device = dram::spec_for(gen, dram::DeviceWidth::kX16);
    cfg.chips_per_rank = 5;
    const double equivalent_chips = 4.0 + 0.55;
    const double scale = equivalent_chips / 5.0;
    cfg.device.currents.idd0 *= scale;
    cfg.device.currents.idd2p *= scale;
    cfg.device.currents.idd2n *= scale;
    cfg.device.currents.idd3n *= scale;
    cfg.device.currents.idd4r *= scale;
    cfg.device.currents.idd4w *= scale;
    cfg.device.currents.idd5b *= scale;
    dram::rederive_energy(cfg.device);
  } else {
    cfg.device = dram::spec_for(gen, width, speed_factor);
  }
  if (mixed_rank && speed_factor != 1.0) {
    // Mixed ranks keep the blended-current model; apply the speed bin's
    // latency/current scaling on top of it.
    auto scale = [&](unsigned v) {
      return static_cast<unsigned>(static_cast<double>(v) / speed_factor);
    };
    cfg.device.timing.tRCD = scale(cfg.device.timing.tRCD);
    cfg.device.timing.tCL = scale(cfg.device.timing.tCL);
    cfg.device.timing.tRP = scale(cfg.device.timing.tRP);
    const double cur = 1.0 + 0.3 * (speed_factor - 1.0);
    cfg.device.currents.idd0 *= cur;
    cfg.device.currents.idd2n *= cur;
    cfg.device.currents.idd3n *= cur;
    cfg.device.currents.idd4r *= cur;
    cfg.device.currents.idd4w *= cur;
    dram::rederive_energy(cfg.device);
  }
  return cfg;
}

namespace {

SchemeDesc base_desc(SchemeId id) {
  SchemeDesc d;
  d.id = id;
  d.name = to_string(id);
  switch (id) {
    case SchemeId::kChipkill36:
      // 36 x4 chips, 128B lines; 4 check symbols per word: 2 detect +
      // 2 correct (Sec. II), i.e. 6.25% + 6.25% = 12.5% total.
      d.chips_per_rank = 36;
      d.data_chips_per_rank = 32;
      d.width = dram::DeviceWidth::kX4;
      d.line_bytes = 128;
      d.detection_overhead = 0.0625;
      d.correction_ratio = 0.0625;
      d.maint = MaintTraffic::kNone;
      break;
    case SchemeId::kChipkill18:
      // 18 x4 chips, 64B lines; 2 check symbols per word do double duty
      // (slightly weaker detection, Sec. IV-A).  All 12.5% is detection-
      // class storage; there are no separable correction bits.
      d.chips_per_rank = 18;
      d.data_chips_per_rank = 16;
      d.width = dram::DeviceWidth::kX4;
      d.line_bytes = 64;
      d.detection_overhead = 0.125;
      d.correction_ratio = 0.0;
      d.maint = MaintTraffic::kNone;
      break;
    case SchemeId::kLotEcc5:
    case SchemeId::kLotEcc5Parity:
      // 4 x16 + 1 x8 per rank; tier-1 checksums in the x8 chip (12.5%
      // detection); tier-2: one 72B line protects four 72B data lines
      // (Sec. II footnote), i.e. correction bits 64B/4 lines = 25% with
      // 12.5% self-protection -> 40.6% total.
      d.chips_per_rank = 5;
      d.data_chips_per_rank = 4;
      d.width = dram::DeviceWidth::kX16;
      d.mixed_rank = true;
      d.line_bytes = 64;
      d.detection_overhead = 0.125;
      d.correction_ratio = 0.25;
      d.maint = id == SchemeId::kLotEcc5 ? MaintTraffic::kWriteOnEvict
                                         : MaintTraffic::kReadWriteOnEvict;
      d.ecc_line_coverage = 4;  // parity variant overrides after sizing
      d.uses_ecc_parity = id == SchemeId::kLotEcc5Parity;
      break;
    case SchemeId::kLotEcc9:
      // 9 x8 chips; tier-2: one 72B line per eight data lines -> 12.5%
      // correction ratio, 26.5% total.
      d.chips_per_rank = 9;
      d.data_chips_per_rank = 8;
      d.width = dram::DeviceWidth::kX8;
      d.line_bytes = 64;
      d.detection_overhead = 0.125;
      d.correction_ratio = 0.125;
      d.maint = MaintTraffic::kWriteOnEvict;
      d.ecc_line_coverage = 8;
      break;
    case SchemeId::kMultiEcc:
      // 9 x8 chips; per-line checksums detect (12.5%); one shared
      // correction line per 256 data lines (~0.4%) -> 12.9% total.
      d.chips_per_rank = 9;
      d.data_chips_per_rank = 8;
      d.width = dram::DeviceWidth::kX8;
      d.line_bytes = 64;
      d.detection_overhead = 0.125;
      d.correction_ratio = 1.0 / 256.0;
      d.maint = MaintTraffic::kReadWriteOnEvict;
      // Multi-line correction: one check line covers 256 data lines; the
      // XOR-compacted cacheline usefully captures a row's worth (64 lines)
      // of spatially-local writes [13].
      d.ecc_line_coverage = 64;
      break;
    case SchemeId::kRaim:
      // 45 x4 chips across five DIMMs; 13/32 = 40.6% overhead: the parity
      // DIMM (9 chips, 28.125%) corrects, 4 chips (12.5%) detect.
      d.chips_per_rank = 45;
      d.data_chips_per_rank = 32;
      d.width = dram::DeviceWidth::kX4;
      d.line_bytes = 128;
      d.detection_overhead = 0.125;
      d.correction_ratio = 0.28125;
      d.correction_protection = 0.0;  // 13/32 already accounts for all chips
      d.maint = MaintTraffic::kNone;
      break;
    case SchemeId::kRaimParity:
      // 18 x4 chips (two 9-chip DIMMs) per rank, 64B lines.  Losing one
      // DIMM loses half the line, so the correction information is half a
      // line: R = 0.5 (this reproduces Table III's 18.8% / 26.6%).
      d.chips_per_rank = 18;
      d.data_chips_per_rank = 16;
      d.width = dram::DeviceWidth::kX4;
      d.line_bytes = 64;
      d.detection_overhead = 0.125;
      d.correction_ratio = 0.5;
      d.maint = MaintTraffic::kReadWriteOnEvict;
      d.uses_ecc_parity = true;
      break;
  }
  return d;
}

}  // namespace

SchemeDesc make_scheme(SchemeId id, SystemScale scale) {
  SchemeDesc d = base_desc(id);
  const bool quad = scale == SystemScale::kQuadEquivalent;
  switch (id) {
    case SchemeId::kChipkill36:
      d.channels = quad ? 4 : 2;
      d.ranks_per_channel = 1;
      break;
    case SchemeId::kChipkill18:
      d.channels = quad ? 8 : 4;
      d.ranks_per_channel = 1;
      break;
    case SchemeId::kLotEcc5:
    case SchemeId::kLotEcc5Parity:
      d.channels = quad ? 8 : 4;
      d.ranks_per_channel = 4;
      break;
    case SchemeId::kLotEcc9:
    case SchemeId::kMultiEcc:
      d.channels = quad ? 8 : 4;
      d.ranks_per_channel = 2;
      break;
    case SchemeId::kRaim:
      d.channels = quad ? 4 : 2;
      d.ranks_per_channel = 1;
      break;
    case SchemeId::kRaimParity:
      d.channels = quad ? 10 : 5;
      d.ranks_per_channel = 1;
      break;
  }
  if (d.uses_ecc_parity) {
    // One XOR cacheline covers the same four adjacent lines in N-1
    // adjacent physical pages (Sec. IV-C).
    d.ecc_line_coverage = 4 * (d.channels - 1);
  }
  return d;
}

std::vector<SchemeId> all_schemes() {
  return {SchemeId::kChipkill36, SchemeId::kChipkill18, SchemeId::kLotEcc5,
          SchemeId::kLotEcc9,    SchemeId::kMultiEcc,   SchemeId::kRaim,
          SchemeId::kLotEcc5Parity, SchemeId::kRaimParity};
}

std::vector<SchemeId> chipkill_family() {
  return {SchemeId::kChipkill36, SchemeId::kChipkill18, SchemeId::kLotEcc5,
          SchemeId::kLotEcc9, SchemeId::kMultiEcc, SchemeId::kLotEcc5Parity};
}

}  // namespace eccsim::ecc
