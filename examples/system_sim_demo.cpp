// Full-system simulation demo: compare two ECC schemes on one workload
// with the same pipeline the paper's Figs. 9-17 use, and print an energy /
// performance / traffic scorecard.
//
// Usage:
//   ./build/examples/system_sim_demo                     # defaults
//   ./build/examples/system_sim_demo lbm chipkill36 lotecc5+parity
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/table.hpp"
#include "sim/system.hpp"

using namespace eccsim;

namespace {

ecc::SchemeId parse_scheme(const std::string& name) {
  for (const auto id : ecc::all_schemes()) {
    if (ecc::to_string(id) == name) return id;
  }
  std::fprintf(stderr, "unknown scheme '%s'\n", name.c_str());
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string workload = argc > 1 ? argv[1] : "lbm";
  const std::string base_name = argc > 2 ? argv[2] : "chipkill36";
  const std::string ours_name = argc > 3 ? argv[3] : "lotecc5+parity";

  sim::SimOptions opts;
  opts.target_instructions = 1'000'000;

  std::printf("simulating '%s' on %s and %s (quad-equivalent systems)...\n\n",
              workload.c_str(), base_name.c_str(), ours_name.c_str());
  const auto base = sim::run_experiment(parse_scheme(base_name),
                                        ecc::SystemScale::kQuadEquivalent,
                                        workload, opts);
  const auto ours = sim::run_experiment(parse_scheme(ours_name),
                                        ecc::SystemScale::kQuadEquivalent,
                                        workload, opts);

  Table t({"metric", base_name, ours_name, "delta"});
  auto row = [&](const char* label, double b, double o, int prec,
                 bool lower_better) {
    const double delta = (o / b - 1.0) * 100.0;
    char d[32];
    std::snprintf(d, sizeof d, "%+.1f%%%s", delta,
                  (lower_better ? delta < 0 : delta > 0) ? " (better)" : "");
    t.add_row({label, Table::num(b, prec), Table::num(o, prec), d});
  };
  row("memory EPI (pJ/instr)", base.epi_pj, ours.epi_pj, 1, true);
  row("  dynamic EPI", base.dynamic_epi_pj, ours.dynamic_epi_pj, 1, true);
  row("  background EPI", base.background_epi_pj, ours.background_epi_pj, 1,
      true);
  row("IPC (8 cores aggregate)", base.ipc, ours.ipc, 2, false);
  row("memory accesses / instr (64B)", base.mapi, ours.mapi, 4, true);
  row("avg read latency (ns)", base.avg_read_latency, ours.avg_read_latency,
      0, true);
  row("bandwidth utilization", base.bandwidth_utilization,
      ours.bandwidth_utilization, 3, true);
  std::printf("%s\n", t.str().c_str());

  std::printf(
      "ECC maintenance traffic: %s issued %llu extra reads and %llu extra\n"
      "writes for parity/ECC-line upkeep; %s issued %llu/%llu.\n",
      ours_name.c_str(), (unsigned long long)ours.mem.ecc_reads,
      (unsigned long long)ours.mem.ecc_writes, base_name.c_str(),
      (unsigned long long)base.mem.ecc_reads,
      (unsigned long long)base.mem.ecc_writes);
  return 0;
}
