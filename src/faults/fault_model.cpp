#include "faults/fault_model.hpp"

namespace eccsim::faults {

std::string to_string(FaultType t) {
  switch (t) {
    case FaultType::kBit: return "bit";
    case FaultType::kWord: return "word";
    case FaultType::kColumn: return "column";
    case FaultType::kRow: return "row";
    case FaultType::kBank: return "bank";
    case FaultType::kMultiBank: return "multi-bank";
    case FaultType::kMultiRank: return "multi-rank";
    case FaultType::kCount_: break;
  }
  return "?";
}

FitRates FitRates::scaled_to(double target_fit) const {
  FitRates out = *this;
  const double t = total();
  if (t <= 0) return out;
  const double s = target_fit / t;
  for (double& f : out.fit) f *= s;
  return out;
}

FitRates ddr3_vendor_average() {
  FitRates r;
  r[FaultType::kBit] = 33.05;
  r[FaultType::kWord] = 1.45;
  r[FaultType::kColumn] = 3.20;
  r[FaultType::kRow] = 2.60;
  r[FaultType::kBank] = 2.00;
  r[FaultType::kMultiBank] = 0.80;
  r[FaultType::kMultiRank] = 0.90;
  // total: 44.0 FIT/chip, the cross-vendor DDR3 average in [21].
  return r;
}

FitRates on_die_ecc_filter(const FitRates& rates, double bit_fault_coverage) {
  FitRates out = rates;
  if (bit_fault_coverage > 0) {
    out[FaultType::kBit] *= 1.0 - bit_fault_coverage;
  }
  return out;
}

bool saturates_error_counter(FaultType t) {
  switch (t) {
    case FaultType::kBit:
    case FaultType::kWord:
    case FaultType::kRow:
      return false;  // retired page-by-page before the counter saturates
    case FaultType::kColumn:
    case FaultType::kBank:
    case FaultType::kMultiBank:
    case FaultType::kMultiRank:
      return true;
    case FaultType::kCount_:
      break;
  }
  return false;
}

unsigned banks_affected(FaultType t, unsigned banks_per_rank,
                        unsigned ranks_per_channel) {
  switch (t) {
    case FaultType::kBit:
    case FaultType::kWord:
    case FaultType::kColumn:
    case FaultType::kRow:
    case FaultType::kBank:
      return 1;
    case FaultType::kMultiBank:
      // Typically half the device's banks share the failed circuitry.
      return banks_per_rank / 2;
    case FaultType::kMultiRank:
      // Shared external circuitry (e.g. data strobes): the chip position
      // fails across every rank of the channel.
      return banks_per_rank * ranks_per_channel;
    case FaultType::kCount_:
      break;
  }
  return 1;
}

}  // namespace eccsim::faults
