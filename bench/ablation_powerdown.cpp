// Ablation: the close-page + rank power-down policy (Sec. IV-B).  The
// paper follows LOT-ECC in choosing close-page so idle ranks can sleep;
// this is what converts "fewer chips per rank" into *background* energy
// savings (Fig. 13), not just dynamic savings.  Disabling power-down
// shows how much of ECC Parity's advantage depends on that policy.
#include <cstdio>

#include "bench_common.hpp"

using namespace eccsim;

int main(int argc, char** argv) {
  eccsim::bench::init(argc, argv);
  std::printf(
      "Ablation -- rank power-down under the close-page policy "
      "(Sec. IV-B)\n\n");
  sim::SimOptions opts;
  opts.target_instructions = bench::target_instructions();

  Table t({"scheme", "power-down", "EPI (pJ/instr)", "background EPI",
           "bg share"});
  for (const auto id : {ecc::SchemeId::kChipkill36,
                        ecc::SchemeId::kLotEcc5Parity}) {
    for (bool pd : {true, false}) {
      ecc::SchemeDesc d =
          ecc::make_scheme(id, ecc::SystemScale::kQuadEquivalent);
      sim::SimOptions o = opts;
      o.powerdown_enabled = pd;
      sim::SystemSim s(d, trace::workload_by_name("sjeng"),
                       sim::CpuConfig{}, o);
      const auto r = s.run();
      t.add_row({ecc::to_string(id), pd ? "on" : "off",
                 Table::num(r.epi_pj, 1),
                 Table::num(r.background_epi_pj, 1),
                 Table::pct(r.background_epi_pj / r.epi_pj)});
    }
  }
  bench::emit("ablation_powerdown", t);
  std::printf(
      "Without sleep, background energy balloons for every scheme and the\n"
      "small-rank advantage compresses -- the paper's close-page choice is\n"
      "load-bearing for the Fig. 13 background savings.\n");
  return 0;
}
