#include "runner/stats_json.hpp"

namespace eccsim::runner {

namespace {

Json number_array(const std::vector<double>& values) {
  Json arr = Json::array();
  for (double v : values) arr.push_back(v);
  return arr;
}

const char* kind_name(stats::Registry::Kind kind) {
  using Kind = stats::Registry::Kind;
  switch (kind) {
    case Kind::kCounter: return "counter";
    case Kind::kAccum: return "accum";
    case Kind::kGauge: return "gauge";
    case Kind::kDistribution: return "distribution";
    case Kind::kHistogram: return "histogram";
  }
  return "?";
}

}  // namespace

Json to_json(const stats::Registry& reg) {
  Json j = Json::object();
  j.set("epoch_cycles", reg.epoch_cycles());

  Json marks = Json::array();
  for (std::uint64_t m : reg.epoch_marks()) marks.push_back(m);
  j.set("epoch_marks", marks);

  Json stats = Json::object();
  for (const auto& entry : reg.view()) {
    Json s = Json::object();
    s.set("kind", kind_name(entry.kind));
    if (entry.dist != nullptr) {
      s.set("count", entry.dist->count());
      s.set("sum", entry.dist->sum());
      s.set("mean", entry.dist->mean());
      s.set("min", entry.dist->min());
      s.set("max", entry.dist->max());
    } else if (entry.hist != nullptr) {
      s.set("lo", entry.hist->lo());
      s.set("hi", entry.hist->hi());
      s.set("total", entry.hist->total());
      s.set("p50", entry.hist->percentile(50));
      s.set("p95", entry.hist->percentile(95));
      s.set("p99", entry.hist->percentile(99));
      Json bins = Json::array();
      for (std::uint64_t b : entry.hist->bins()) bins.push_back(b);
      s.set("bins", bins);
    } else {
      s.set("value", entry.value);
      if (entry.epochs != nullptr && !entry.epochs->empty()) {
        s.set("epochs", number_array(*entry.epochs));
      }
    }
    stats.set(*entry.path, s);
  }
  j.set("stats", stats);

  Json series = Json::object();
  for (const auto& [path, values] : reg.series()) {
    series.set(path, number_array(values));
  }
  j.set("series", series);
  return j;
}

Json profile_to_json(
    const std::vector<std::pair<std::string, stats::ScopeTotals>>& snapshot) {
  Json j = Json::object();
  for (const auto& [name, totals] : snapshot) {
    Json s = Json::object();
    s.set("calls", totals.calls);
    s.set("seconds", totals.seconds);
    j.set(name, s);
  }
  return j;
}

}  // namespace eccsim::runner
