// Shared table builder for the EPI-reduction figures (Figs. 10-13).
//
// Each figure reports, per workload, the reduction of LOT-ECC5+ECC Parity's
// metric relative to five chipkill-class baselines, and of RAIM+ECC Parity
// relative to RAIM -- plus Bin1/Bin2 averages, which are the numbers the
// paper quotes in the text.
//
// Parallelism and JSON export are inherited from bench_common: sweep()
// fans the grid out over src/runner (bit-identical at any thread count)
// and emit() writes results/<name>.json alongside the CSV.
#pragma once

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/stats.hpp"

namespace eccsim::bench {

struct Comparison {
  std::string ours;
  std::string baseline;
  std::string label;
};

inline std::vector<Comparison> epi_comparisons() {
  return {
      {"lotecc5+parity", "chipkill36", "vs ck36"},
      {"lotecc5+parity", "chipkill18", "vs ck18"},
      {"lotecc5+parity", "lotecc9", "vs lot9"},
      {"lotecc5+parity", "multiecc", "vs multi"},
      {"lotecc5+parity", "lotecc5", "vs lot5"},
      {"raim+parity", "raim", "raim+P vs raim"},
  };
}

/// Builds the per-workload reduction table for `metric` and prints
/// Bin1/Bin2 averages after it.
inline void epi_style_figure(
    const std::string& name, const std::string& title,
    ecc::SystemScale scale,
    const std::function<double(const sim::RunResult&)>& metric) {
  const auto& rows = sweep(scale);
  const auto comparisons = epi_comparisons();

  std::vector<std::string> header = {"workload", "bin"};
  for (const auto& c : comparisons) header.push_back(c.label);
  Table t(header);

  std::vector<std::vector<double>> bin_acc(3 * comparisons.size());
  for (const auto& wl : workload_order()) {
    std::vector<std::string> row = {wl, std::to_string(bin_of(wl))};
    for (std::size_t i = 0; i < comparisons.size(); ++i) {
      const auto& c = comparisons[i];
      const double base = metric(find(rows, c.baseline, wl));
      const double ours = metric(find(rows, c.ours, wl));
      const double red = reduction_pct(base, ours);
      row.push_back(Table::num(red, 1) + "%");
      bin_acc[static_cast<std::size_t>(bin_of(wl)) * comparisons.size() + i]
          .push_back(red);
    }
    t.add_row(row);
  }
  // Bin averages (arithmetic mean of per-workload reductions, as in the
  // paper's text).
  for (int bin : {1, 2}) {
    std::vector<std::string> row = {std::string("Bin") + std::to_string(bin) +
                                        " avg",
                                    std::to_string(bin)};
    for (std::size_t i = 0; i < comparisons.size(); ++i) {
      row.push_back(
          Table::num(
              mean(bin_acc[static_cast<std::size_t>(bin) *
                               comparisons.size() +
                           i]),
              1) +
          "%");
    }
    t.add_row(row);
  }
  std::printf("%s\n\n", title.c_str());
  emit(name, t);
}

}  // namespace eccsim::bench
