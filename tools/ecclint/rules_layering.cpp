// Layering rules (EL101/EL102): every #include edge between declared
// modules must appear in the DAG in tools/ecclint/layers.txt, and the
// declared DAG itself must be acyclic.  This is the machine-checked form
// of the interface/impl discipline the CMake target graph encodes by
// hand -- the PR-7 `ecc_json` split (obs needed JSON without a
// runner <-> obs cycle) is exactly the class of incident this pass makes
// structurally impossible.
#include <algorithm>
#include <cctype>
#include <functional>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analyzer.hpp"

namespace eccsim::ecclint {

namespace {

struct Layers {
  /// Declaration order preserved so findings are stable.
  std::vector<std::pair<std::string, std::string>> modules;  // name, prefix
  std::map<std::string, std::set<std::string>> allow;        // from -> to
  std::map<std::string, int> edge_line;  // "from->to" -> layers.txt line
};

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split_ws(const std::string& s) {
  std::vector<std::string> words;
  std::istringstream is(s);
  std::string w;
  while (is >> w) words.push_back(w);
  return words;
}

/// Parses layers.txt.  Format (comments with '#', one directive per
/// line):
///   module NAME PATH-PREFIX [PATH-PREFIX...]
///   allow  FROM -> TO [TO...]
Layers parse_layers(const std::string& text, const std::string& path,
                    std::vector<Finding>& out) {
  Layers layers;
  std::set<std::string> module_names;
  std::istringstream is(text);
  std::string raw;
  int lineno = 0;
  while (std::getline(is, raw)) {
    ++lineno;
    std::string line = raw;
    if (const std::size_t hash = line.find('#'); hash != std::string::npos) {
      line = line.substr(0, hash);
    }
    line = trim(line);
    if (line.empty()) continue;
    const std::vector<std::string> words = split_ws(line);
    if (words[0] == "module" && words.size() >= 3) {
      if (!module_names.insert(words[1]).second) {
        out.push_back(Finding{path, lineno, "EL102",
                              "module '" + words[1] + "' declared twice"});
        continue;
      }
      for (std::size_t i = 2; i < words.size(); ++i) {
        layers.modules.emplace_back(words[1], words[i]);
      }
    } else if (words[0] == "allow" && words.size() >= 4 &&
               words[2] == "->") {
      for (std::size_t i = 3; i < words.size(); ++i) {
        layers.allow[words[1]].insert(words[i]);
        layers.edge_line.emplace(words[1] + "->" + words[i], lineno);
      }
    } else {
      out.push_back(Finding{path, lineno, "EL102",
                            "unparseable layers.txt line: '" + trim(raw) +
                                "'"});
    }
  }
  // Every module named in an allow edge must be declared.
  for (const auto& [from, tos] : layers.allow) {
    std::set<std::string> names;
    for (const auto& [name, prefix] : layers.modules) names.insert(name);
    if (names.count(from) == 0) {
      out.push_back(Finding{path, layers.edge_line[from + "->" + *tos.begin()],
                            "EL102",
                            "allow edge from undeclared module '" + from +
                                "'"});
    }
    for (const std::string& to : tos) {
      if (names.count(to) == 0) {
        out.push_back(Finding{path, layers.edge_line[from + "->" + to],
                              "EL102",
                              "allow edge to undeclared module '" + to +
                                  "'"});
      }
    }
  }
  return layers;
}

/// Longest-prefix module match; empty string when unmapped.
std::string module_of(const Layers& layers, const std::string& path) {
  std::string best_name;
  std::size_t best_len = 0;
  for (const auto& [name, prefix] : layers.modules) {
    if (prefix.size() > best_len && path.rfind(prefix, 0) == 0) {
      best_name = name;
      best_len = prefix.size();
    }
  }
  return best_name;
}

/// Lexically normalizes "a/b/../c" -> "a/c".
std::string normalize(const std::string& path) {
  std::vector<std::string> parts;
  std::string part;
  std::istringstream is(path);
  while (std::getline(is, part, '/')) {
    if (part.empty() || part == ".") continue;
    if (part == ".." && !parts.empty() && parts.back() != "..") {
      parts.pop_back();
    } else {
      parts.push_back(part);
    }
  }
  std::string joined;
  for (const std::string& p : parts) {
    if (!joined.empty()) joined.push_back('/');
    joined += p;
  }
  return joined;
}

/// Maps an include target to a module.  Project includes are written
/// either relative to src/ ("runner/json.hpp") or to the including file's
/// directory ("bench_common.hpp").  A candidate that names a file in the
/// scanned set wins outright (it is what the compiler would find on this
/// repo's include paths); only then fall back to bare prefix matching.
std::string include_module(const Layers& layers,
                           const std::set<std::string>& known_files,
                           const std::string& includer,
                           const std::string& inc) {
  std::string dir;
  if (const std::size_t slash = includer.rfind('/');
      slash != std::string::npos) {
    dir = includer.substr(0, slash + 1);
  }
  const std::string candidates[] = {normalize("src/" + inc),
                                    normalize(dir + inc), normalize(inc)};
  for (const std::string& candidate : candidates) {
    if (known_files.count(candidate) != 0) {
      return module_of(layers, candidate);
    }
  }
  for (const std::string& candidate : candidates) {
    const std::string mod = module_of(layers, candidate);
    if (!mod.empty()) return mod;
  }
  return {};
}

/// DFS cycle check over the declared allow edges.
void check_cycles(const Layers& layers, const std::string& path,
                  std::vector<Finding>& out) {
  std::map<std::string, int> state;  // 0 new, 1 on stack, 2 done
  std::vector<std::string> stack;
  std::vector<std::vector<std::string>> cycles;

  std::function<void(const std::string&)> dfs = [&](const std::string& n) {
    state[n] = 1;
    stack.push_back(n);
    const auto it = layers.allow.find(n);
    if (it != layers.allow.end()) {
      for (const std::string& to : it->second) {
        if (to == n) continue;  // self-edges are implicit and harmless
        if (state[to] == 1) {
          const auto at = std::find(stack.begin(), stack.end(), to);
          cycles.emplace_back(at, stack.end());
          cycles.back().push_back(to);
        } else if (state[to] == 0) {
          dfs(to);
        }
      }
    }
    stack.pop_back();
    state[n] = 2;
  };

  std::set<std::string> names;
  for (const auto& [name, prefix] : layers.modules) names.insert(name);
  for (const std::string& n : names) {
    if (state[n] == 0) dfs(n);
  }

  for (const std::vector<std::string>& cycle : cycles) {
    std::string desc;
    for (const std::string& n : cycle) {
      if (!desc.empty()) desc += " -> ";
      desc += n;
    }
    const std::string key = cycle[0] + "->" + cycle[1];
    const auto it = layers.edge_line.find(key);
    out.push_back(Finding{path, it != layers.edge_line.end() ? it->second : 1,
                          "EL102",
                          "declared module DAG has a cycle: " + desc});
  }
}

}  // namespace

void check_layering(const std::vector<LexedFile>& files, const Config& cfg,
                    std::vector<Finding>& out) {
  if (cfg.layers_text.empty()) return;
  std::vector<Finding> parse_errors;
  const Layers layers =
      parse_layers(cfg.layers_text, cfg.layers_path, parse_errors);
  for (const Finding& f : parse_errors) out.push_back(f);
  if (!parse_errors.empty()) return;  // don't cascade from a broken DAG

  check_cycles(layers, cfg.layers_path, out);

  std::set<std::string> known_files;
  for (const LexedFile& file : files) known_files.insert(file.path);

  for (const LexedFile& file : files) {
    const std::string from = module_of(layers, file.path);
    if (from.empty()) continue;  // unmapped (e.g. tests/): unconstrained
    for (const Include& inc : file.includes) {
      if (inc.angled) continue;  // system headers carry no layering edge
      const std::string to =
          include_module(layers, known_files, file.path, inc.path);
      if (to.empty() || to == from) continue;
      const auto it = layers.allow.find(from);
      if (it == layers.allow.end() || it->second.count(to) == 0) {
        out.push_back(Finding{
            file.path, inc.line, "EL101",
            "include of \"" + inc.path + "\" crosses undeclared module "
            "edge " + from + " -> " + to + " (declare it in " +
                cfg.layers_path + " with a rationale, or break the "
                "dependency)"});
      }
    }
  }
}

}  // namespace eccsim::ecclint
