// The .ecctrace on-disk format: a versioned, chunked, CRC-protected
// container for memory-request traces (docs/TRACES.md).
//
// Two capture points exist (Sec. IV methodology):
//   - pre-LLC  (kPreLlc):  the per-core MemOp stream the workload
//     generators feed the simulator.  This is the replayable point: a
//     pre-LLC trace recorded with a workload's sweep seed substitutes
//     bit-identically for live synthetic generation.
//   - post-LLC (kPostLlc): the DRAM request stream behind the LLC --
//     demand misses, writebacks, and ECC-maintenance traffic with their
//     physical (channel, rank, bank, row, col) addresses.  An analysis
//     artifact (tracetool info/stats/head), not a simulator input.
//
// Layout (all integers little-endian):
//
//   header   magic "ECCTRACE" (8B) | u32 version | u32 point | u32 cores
//            | u64 seed | u32 name_len | name bytes | u32 header_crc
//   chunk*   u32 kChunkMarker | u32 payload_bytes | u32 op_count
//            | u32 payload_crc | payload
//   footer   u32 kEndMarker | u32 chunk_count | u64 total_ops
//            | u32 footer_crc
//
// Every chunk's payload is independently delta+varint encoded (delta
// state resets at each chunk boundary), so chunks are seekable and a
// flipped bit corrupts -- and is detected in -- exactly one chunk.  A
// file without its footer is truncated; both conditions surface as
// TraceError, never as a crash or silent misparse.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "dram/request.hpp"
#include "trace/workload.hpp"

namespace eccsim::tracefile {

inline constexpr char kMagic[8] = {'E', 'C', 'C', 'T', 'R', 'A', 'C', 'E'};
inline constexpr std::uint32_t kFormatVersion = 1;
inline constexpr std::uint32_t kChunkMarker = 0x4b4e4843u;  // "CHNK"
inline constexpr std::uint32_t kEndMarker = 0x21444e45u;    // "END!"
/// Writer default: ops buffered per chunk before encode+flush.
inline constexpr std::size_t kDefaultOpsPerChunk = 4096;
/// Sanity bound on workload-name length and chunk payload size; anything
/// larger is rejected as corruption rather than allocated.
inline constexpr std::uint32_t kMaxNameBytes = 4096;
inline constexpr std::uint32_t kMaxPayloadBytes = 1u << 26;

/// Where in the pipeline the stream was captured.
enum class CapturePoint : std::uint32_t { kPreLlc = 0, kPostLlc = 1 };

std::string to_string(CapturePoint point);

/// Any structural problem with a trace file: bad magic/version, truncation,
/// CRC mismatch, overlong varint, op-count drift, replay exhaustion.
class TraceError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// File-level metadata carried in the header.  `seed`, `cores`, and
/// `workload` identify the stimulus so replay can refuse a mismatched
/// simulation configuration instead of silently diverging.
struct TraceMeta {
  CapturePoint point = CapturePoint::kPreLlc;
  std::uint32_t cores = 8;
  std::uint64_t seed = 0;
  std::string workload;
};

/// One pre-LLC record: which core issued the op, and the op itself.
struct PreOp {
  std::uint32_t core = 0;
  trace::MemOp op;
};

/// One post-LLC record: a DRAM request at its enqueue cycle.
struct PostOp {
  std::uint64_t cycle = 0;
  dram::DramAddress addr;
  bool is_write = false;
  dram::LineClass line_class = dram::LineClass::kData;
};

}  // namespace eccsim::tracefile
