#include "obs/perf_history.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "obs/heartbeat.hpp"
#include "runner/json.hpp"

namespace eccsim::obs::perf {

namespace {

runner::Json record_to_json(const Record& r) {
  runner::Json doc = runner::Json::object();
  doc.set("git_sha", r.git_sha);
  doc.set("timestamp_utc", r.timestamp_utc);
  doc.set("host", r.host);
  doc.set("threads", static_cast<std::uint64_t>(r.threads));
  doc.set("smoke", r.smoke);
  runner::Json metrics = runner::Json::object();
  for (const auto& [name, seconds] : r.metrics) metrics.set(name, seconds);
  doc.set("metrics", metrics);
  return doc;
}

Record record_from_json(const runner::Json& doc) {
  Record r;
  r.git_sha = doc.at("git_sha").as_string();
  r.timestamp_utc = doc.at("timestamp_utc").as_string();
  r.host = doc.at("host").as_string();
  r.threads = static_cast<unsigned>(doc.at("threads").as_number());
  r.smoke = doc.at("smoke").as_bool();
  for (const auto& [name, value] : doc.at("metrics").members()) {
    r.metrics.emplace_back(name, value.as_number());
  }
  return r;
}

double median(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  const std::size_t n = xs.size();
  return n % 2 == 1 ? xs[n / 2] : (xs[n / 2 - 1] + xs[n / 2]) / 2.0;
}

}  // namespace

runner::Json to_json(const History& h) {
  runner::Json doc = runner::Json::object();
  doc.set("schema", "eccsim.perf_history/1");
  doc.set("bench", h.bench);
  runner::Json records = runner::Json::array();
  for (const Record& r : h.records) records.push_back(record_to_json(r));
  doc.set("records", records);
  return doc;
}

History history_from_json(const runner::Json& doc) {
  if (!doc.is_object()) {
    throw std::runtime_error("perf history: not an object");
  }
  History h;
  h.bench = doc.at("bench").as_string();
  for (const auto& r : doc.at("records").items()) {
    h.records.push_back(record_from_json(r));
  }
  return h;
}

History load_history(const std::string& path, const std::string& bench) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    History h;
    h.bench = bench;
    return h;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return history_from_json(runner::Json::parse(buf.str()));
}

bool append_record(const std::string& path, const std::string& bench,
                   const Record& rec, std::size_t max_records) {
  History h = load_history(path, bench);
  h.records.push_back(rec);
  if (h.records.size() > max_records) {
    h.records.erase(h.records.begin(),
                    h.records.end() -
                        static_cast<std::ptrdiff_t>(max_records));
  }
  return atomic_write_file(path, to_json(h).dump(2) + "\n");
}

CompareResult compare(const History& h, double threshold,
                      std::size_t window, std::size_t min_samples) {
  CompareResult result;
  if (h.records.empty()) return result;
  const Record& current = h.records.back();

  // Comparable baseline: prior records from the same host with the same
  // smoke setting and thread count, newest first, at most `window`.
  std::vector<const Record*> baseline;
  for (std::size_t i = h.records.size() - 1; i-- > 0;) {
    const Record& r = h.records[i];
    if (r.host == current.host && r.smoke == current.smoke &&
        r.threads == current.threads) {
      baseline.push_back(&r);
      if (baseline.size() >= window) break;
    }
  }
  if (baseline.empty()) return result;
  result.comparable = true;

  for (const auto& [name, value] : current.metrics) {
    std::vector<double> prior;
    for (const Record* r : baseline) {
      for (const auto& [pname, pvalue] : r->metrics) {
        if (pname == name) {
          prior.push_back(pvalue);
          break;
        }
      }
    }
    if (prior.empty()) continue;  // new metric: nothing to regress against
    MetricComparison mc;
    mc.name = name;
    mc.current = value;
    mc.samples = prior.size();
    mc.baseline = median(std::move(prior));
    mc.ratio = mc.baseline > 0.0 ? mc.current / mc.baseline : 0.0;
    mc.regressed = mc.baseline > 0.0 && mc.samples >= min_samples &&
                   mc.ratio > 1.0 + threshold;
    if (mc.regressed) result.regressed = true;
    result.metrics.push_back(std::move(mc));
  }
  return result;
}

}  // namespace eccsim::obs::perf
