// Address mapping: linear line index <-> (channel, rank, bank, row, col).
//
// Policy (Sec. IV-B of the paper): adjacent physical pages interleave
// across channels to balance bandwidth; within a channel the DRAMsim
// "High Performance" map places column bits lowest, then bank, then rank,
// then row, maximizing bank- and rank-level parallelism for streams --
// the right choice under the close-page row policy the paper uses.
#pragma once

#include <cstdint>

#include "dram/request.hpp"

namespace eccsim::dram {

/// Logical geometry of one memory system.  "Rows" here are the paper's 4KB
/// logical rows (physical pages, Fig. 4), independent of the per-device row
/// size; capacity accounting uses data chips only.
struct MemGeometry {
  /// Independently-scheduled channels: physical channels times the
  /// device's sub-channels (DDR5 contributes two per physical channel).
  std::uint32_t channels = 4;
  /// Sub-channels folded into `channels`; 1 for DDR3/DDR4.  The decode
  /// convention is plane-major: effective channel e serves physical
  /// channel e % fd_channels() on sub-channel plane e / fd_channels().
  std::uint32_t sub_channels = 1;
  std::uint32_t ranks_per_channel = 1;
  std::uint32_t banks_per_rank = 8;
  std::uint64_t rows_per_bank = 32768;  ///< logical 4KB rows holding data
  std::uint32_t line_bytes = 64;
  std::uint32_t page_bytes = 4096;

  /// Failure-domain (physical) channels: sub-channels of one physical
  /// channel share a DIMM, so cross-channel redundancy groups must spread
  /// over these, not over `channels`.
  std::uint32_t fd_channels() const { return channels / sub_channels; }

  std::uint32_t lines_per_row() const { return page_bytes / line_bytes; }
  std::uint64_t lines_per_bank() const {
    return rows_per_bank * lines_per_row();
  }
  std::uint64_t total_data_lines() const {
    return static_cast<std::uint64_t>(channels) * ranks_per_channel *
           banks_per_rank * lines_per_bank();
  }
  std::uint64_t total_data_bytes() const {
    return total_data_lines() * line_bytes;
  }
  std::uint64_t total_pages() const {
    return total_data_lines() / lines_per_row();
  }
};

/// Bidirectional line-index <-> DramAddress mapping.
class AddressMap {
 public:
  explicit AddressMap(const MemGeometry& geom) : geom_(geom) {}

  const MemGeometry& geometry() const { return geom_; }

  /// Decodes a linear line index (0 .. total_data_lines-1).
  ///
  /// High-Performance close-page mapping: pages interleave across channels
  /// (Sec. IV-B); *within* a channel, consecutive lines interleave across
  /// banks, then ranks, so streams exploit full bank/rank parallelism
  /// instead of hammering one bank through its tRC recovery.
  DramAddress decode(std::uint64_t line_index) const {
    const std::uint32_t lpr = geom_.lines_per_row();
    DramAddress a;
    const std::uint32_t slot = static_cast<std::uint32_t>(line_index % lpr);
    const std::uint64_t page = line_index / lpr;
    a.channel = static_cast<std::uint32_t>(page % geom_.channels);
    const std::uint64_t cpage = page / geom_.channels;
    const std::uint64_t x = cpage * lpr + slot;  // within-channel line id
    a.bank = static_cast<std::uint32_t>(x % geom_.banks_per_rank);
    const std::uint64_t r = x / geom_.banks_per_rank;
    a.rank = static_cast<std::uint32_t>(r % geom_.ranks_per_channel);
    const std::uint64_t in_bank = r / geom_.ranks_per_channel;
    a.row = in_bank / lpr;
    a.col = static_cast<std::uint32_t>(in_bank % lpr);
    return a;
  }

  /// Re-encodes an address back to its linear line index (inverse of
  /// decode for in-range addresses).
  std::uint64_t encode(const DramAddress& a) const {
    const std::uint32_t lpr = geom_.lines_per_row();
    const std::uint64_t in_bank = a.row * lpr + a.col;
    const std::uint64_t r =
        in_bank * geom_.ranks_per_channel + a.rank;
    const std::uint64_t x = r * geom_.banks_per_rank + a.bank;
    const std::uint64_t cpage = x / lpr;
    const std::uint32_t slot = static_cast<std::uint32_t>(x % lpr);
    const std::uint64_t page = cpage * geom_.channels + a.channel;
    return page * lpr + slot;
  }

 private:
  MemGeometry geom_;
};

}  // namespace eccsim::dram
