// Shared last-level cache model.
//
// An 8MB, 16-way, 64B-line write-back LLC (Table I of the paper) with LRU
// replacement.  Three kinds of lines coexist (Sec. III-D / IV-C):
//
//   - data lines (ordinary cached memory),
//   - ECC lines: cached copies of ECC-correction / tier-2 lines (VECC-style
//     caching used by LOT-ECC, Multi-ECC, and faulty-bank ECC lines),
//   - XOR lines: the compacted parity-update lines of Multi-ECC / ECC
//     Parity; an XOR cacheline carries the accumulated XOR of old and new
//     correction bits of all dirty data lines covered by one ECC parity
//     line and takes on that parity line's physical address.
//
// Per the paper's methodology, ECC-related cachelines are treated exactly
// like data lines for insertion and replacement.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "stats/stats.hpp"

namespace eccsim::cache {

/// What a cached line holds; determines the eviction cost charged by the
/// ECC traffic model (data: 1 write; ECC: 1 write; XOR: 1 read + 1 write).
enum class LineKind : std::uint8_t { kData = 0, kEcc, kXor };

/// Result of a cache access.
struct AccessResult {
  bool hit = false;
  /// A valid dirty victim was evicted and must be written back.
  bool writeback = false;
  std::uint64_t victim_addr = 0;
  LineKind victim_kind = LineKind::kData;
};

/// Configuration (defaults = the paper's LLC, Table I).
struct CacheConfig {
  std::uint64_t size_bytes = 8ULL * 1024 * 1024;
  std::uint32_t line_bytes = 64;
  std::uint32_t ways = 16;
};

/// Set-associative write-back, write-allocate cache with true-LRU
/// replacement.  Addresses are line addresses (already divided by the line
/// size); callers namespace data/ECC/XOR addresses so they never collide.
class Cache {
 public:
  explicit Cache(const CacheConfig& cfg);

  /// Looks up `line_addr`; on miss, allocates it (evicting LRU) and reports
  /// any dirty victim.  `is_write` marks the line dirty on hit or fill.
  AccessResult access(std::uint64_t line_addr, bool is_write,
                      LineKind kind = LineKind::kData);

  /// Inserts a line without an explicit demand access (used to model the
  /// second 64B half of a 128B memory line arriving with its sibling).
  /// No-op if already present.
  AccessResult fill(std::uint64_t line_addr, LineKind kind = LineKind::kData);

  /// True if the line is present (no LRU update, no allocation).
  bool contains(std::uint64_t line_addr) const;

  /// Invalidates a line if present; returns true if it was dirty.
  bool invalidate(std::uint64_t line_addr);

  /// Flushes every dirty line, invoking `sink(addr, kind)` per writeback,
  /// and leaves the cache empty.  Used at simulation teardown.
  template <typename Sink>
  void flush(Sink&& sink) {
    for (auto& set : sets_) {
      for (auto& line : set) {
        if (line.valid && line.dirty) sink(line.addr, line.kind);
        line.valid = false;
        line.dirty = false;
      }
    }
  }

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t writebacks = 0;
    double hit_rate() const {
      const auto total = hits + misses;
      return total ? static_cast<double>(hits) / static_cast<double>(total)
                   : 0.0;
    }
  };
  const Stats& stats() const { return stats_; }
  /// Clears hit/miss/writeback counters (end of a warmup phase); cache
  /// contents are untouched.
  void reset_stats() { stats_ = Stats{}; }

  std::uint32_t sets() const { return num_sets_; }
  std::uint32_t ways() const { return cfg_.ways; }

  /// Registers polled gauges over this cache's counters under `prefix`
  /// (e.g. "llc"): hits, misses, writebacks, hit_rate.  Observation only;
  /// the access hot path is untouched.  `reg` must outlive the cache's use.
  void attach_stats(stats::Registry& reg, const std::string& prefix);

 private:
  struct Line {
    std::uint64_t addr = 0;
    std::uint64_t lru = 0;
    LineKind kind = LineKind::kData;
    bool valid = false;
    bool dirty = false;
  };

  std::uint32_t set_index(std::uint64_t line_addr) const;
  Line* find(std::uint64_t line_addr);
  const Line* find(std::uint64_t line_addr) const;

  CacheConfig cfg_;
  std::uint32_t num_sets_;
  std::vector<std::vector<Line>> sets_;
  std::uint64_t tick_ = 0;
  Stats stats_;
};

}  // namespace eccsim::cache
