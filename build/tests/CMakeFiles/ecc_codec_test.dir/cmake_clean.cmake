file(REMOVE_RECURSE
  "CMakeFiles/ecc_codec_test.dir/ecc_codec_test.cpp.o"
  "CMakeFiles/ecc_codec_test.dir/ecc_codec_test.cpp.o.d"
  "ecc_codec_test"
  "ecc_codec_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecc_codec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
