#include "trace/source.hpp"

namespace eccsim::trace {

SyntheticSource::SyntheticSource(const WorkloadDesc& desc, unsigned cores,
                                 std::uint64_t seed)
    : desc_(desc), seed_(seed) {
  gens_.reserve(cores);
  for (unsigned c = 0; c < cores; ++c) {
    gens_.emplace_back(desc, c, cores, seed);
  }
}

std::string SyntheticSource::describe() const {
  return "synthetic " + desc_.name + " seed=" + std::to_string(seed_);
}

}  // namespace eccsim::trace
