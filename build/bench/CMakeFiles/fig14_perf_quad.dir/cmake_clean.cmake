file(REMOVE_RECURSE
  "CMakeFiles/fig14_perf_quad.dir/fig14_perf_quad.cpp.o"
  "CMakeFiles/fig14_perf_quad.dir/fig14_perf_quad.cpp.o.d"
  "fig14_perf_quad"
  "fig14_perf_quad.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_perf_quad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
