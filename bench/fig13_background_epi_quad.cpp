// Fig. 13: reduction in memory *background* EPI (standby, power-down,
// refresh) over the baselines, quad-channel-equivalent systems.  Smaller
// ranks wake fewer chips per request, so chips spend more time in sleep
// mode under the close-page policy.
#include "fig_epi_common.hpp"

int main(int argc, char** argv) {
  eccsim::bench::init(argc, argv);
  eccsim::bench::epi_style_figure(
      "fig13_background_epi_quad",
      "Fig. 13 -- Background EPI reduction, quad-channel-equivalent systems",
      eccsim::ecc::SystemScale::kQuadEquivalent,
      [](const eccsim::sim::RunResult& r) { return r.background_epi_pj; });
  return 0;
}
