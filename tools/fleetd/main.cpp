// fleetd: fleet-scale Monte Carlo front door (run, shard, serve).
//
//   fleetd run --spec FILE [options]       one fleet evaluation, to a file
//   fleetd serve --socket PATH [options]   daemon on a Unix-domain socket
//   fleetd submit --socket PATH --spec FILE [--wait]
//   fleetd status --socket PATH --hash H | --spec FILE
//   fleetd results --socket PATH --hash H | --spec FILE
//   fleetd ping|shutdown --socket PATH
//   fleetd hash --spec FILE                print the config-hash cache key
//   fleetd --worker ...                    internal: one work unit
//
// The run/serve paths share the sharding Coordinator, so `fleetd run
// --shards 8 --mode worker` and a daemon-served submit produce the same
// bytes as a single-shard in-process run -- the property
// scripts/fleet_identity_check.sh gates in CI.
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "fleet/coordinator.hpp"
#include "fleet/model.hpp"
#include "fleet/service.hpp"
#include "fleet/spec.hpp"
#include "obs/heartbeat.hpp"
#include "obs/manifest.hpp"
#include "obs/run_info.hpp"
#include "runner/json.hpp"

namespace {

using namespace eccsim;

int usage(FILE* out, int code) {
  std::fprintf(
      out,
      "usage: fleetd <command> [options]\n"
      "  run --spec FILE       evaluate one fleet spec\n"
      "      --out FILE        result JSON (default results/fleet/<name>."
      "json)\n"
      "      --shards N        work units (default 1)\n"
      "      --mode M          inprocess | worker (default inprocess)\n"
      "      --threads N       in-process pool width (default "
      "RUNNER_THREADS)\n"
      "      --chunk-size N    nodes per chunk (default 256; results are\n"
      "                        identical for any value)\n"
      "      --scale N         divide every pool's node count by N (smoke\n"
      "                        runs)\n"
      "      --work-dir DIR    worker-mode scratch dir (default\n"
      "                        results/fleet/work)\n"
      "  serve --socket PATH   run the daemon until shutdown\n"
      "      --results DIR     cache/manifest root (default results/fleet)\n"
      "      --queue N         bounded submit queue depth (default 8)\n"
      "      plus run's --shards/--mode/--threads/--chunk-size/--work-dir\n"
      "  submit --socket PATH --spec FILE [--wait]\n"
      "                        enqueue a spec; --wait blocks until done\n"
      "  status --socket PATH --hash H | --spec FILE\n"
      "  results --socket PATH --hash H | --spec FILE\n"
      "  ping --socket PATH    liveness probe\n"
      "  shutdown --socket PATH\n"
      "  hash --spec FILE      print the canonical config hash\n"
      "  --worker --spec FILE --chunk-lo A --chunk-hi B --chunk-size C\n"
      "      --out FILE        internal work-unit mode (spawned by the\n"
      "                        coordinator)\n");
  return code;
}

/// `--flag value` / `--flag=value`, advancing i; nullptr if arg != flag.
const char* flag_value(int argc, char** argv, int& i, const char* name) {
  const std::string arg = argv[i];
  const std::string prefix = std::string(name) + "=";
  if (arg.rfind(prefix, 0) == 0) return argv[i] + prefix.size();
  if (arg != name) return nullptr;
  if (i + 1 >= argc) {
    std::fprintf(stderr, "fleetd: %s requires a value\n", name);
    std::exit(2);
  }
  return argv[++i];
}

fleet::FleetSpec load_spec(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("fleetd: cannot read " + path);
  std::ostringstream os;
  os << in.rdbuf();
  fleet::FleetSpec spec = fleet::spec_from_json(runner::Json::parse(os.str()));
  const std::string diag = fleet::validate(spec);
  if (!diag.empty()) throw std::runtime_error(diag);
  return spec;
}

bool parse_mode(const std::string& text, fleet::RunOptions::Mode& mode) {
  if (text == "inprocess") {
    mode = fleet::RunOptions::Mode::kInProcess;
    return true;
  }
  if (text == "worker") {
    mode = fleet::RunOptions::Mode::kWorkerProcess;
    return true;
  }
  return false;
}

/// Shared option block of `run` and `serve`.
struct ExecFlags {
  fleet::RunOptions run;
  std::uint64_t scale = 1;

  /// Tries to consume argv[i]; false when the flag is not ours.
  bool consume(int argc, char** argv, int& i) {
    const char* v = nullptr;
    if ((v = flag_value(argc, argv, i, "--shards")) != nullptr) {
      run.shards = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
    } else if ((v = flag_value(argc, argv, i, "--mode")) != nullptr) {
      if (!parse_mode(v, run.mode)) {
        std::fprintf(stderr, "fleetd: unknown --mode '%s'\n", v);
        std::exit(2);
      }
    } else if ((v = flag_value(argc, argv, i, "--threads")) != nullptr) {
      run.threads = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
    } else if ((v = flag_value(argc, argv, i, "--chunk-size")) != nullptr) {
      run.chunk_size = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
    } else if ((v = flag_value(argc, argv, i, "--scale")) != nullptr) {
      scale = std::strtoull(v, nullptr, 10);
    } else if ((v = flag_value(argc, argv, i, "--work-dir")) != nullptr) {
      run.work_dir = v;
    } else {
      return false;
    }
    return true;
  }
};

void start_manifest(obs::Manifest& man, int argc, char** argv,
                    const std::string& path) {
  man.tool = "fleetd";
  for (int i = 1; i < argc; ++i) man.args.emplace_back(argv[i]);
  man.git_sha = obs::git_head_sha();
  man.seed_regime = "fleet spec seed";
  man.host = obs::hostname();
  man.host_cpus = obs::cpu_count();
  man.started_utc = obs::utc_timestamp();
  obs::write_manifest(path, man);
}

int cmd_worker(int argc, char** argv) {
  std::string spec_path, out_path;
  std::uint64_t chunk_lo = 0, chunk_hi = 0;
  unsigned chunk_size = 0;
  for (int i = 2; i < argc; ++i) {
    const char* v = nullptr;
    if ((v = flag_value(argc, argv, i, "--spec")) != nullptr) {
      spec_path = v;
    } else if ((v = flag_value(argc, argv, i, "--out")) != nullptr) {
      out_path = v;
    } else if ((v = flag_value(argc, argv, i, "--chunk-lo")) != nullptr) {
      chunk_lo = std::strtoull(v, nullptr, 10);
    } else if ((v = flag_value(argc, argv, i, "--chunk-hi")) != nullptr) {
      chunk_hi = std::strtoull(v, nullptr, 10);
    } else if ((v = flag_value(argc, argv, i, "--chunk-size")) != nullptr) {
      chunk_size = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
    } else {
      std::fprintf(stderr, "fleetd --worker: unknown flag '%s'\n", argv[i]);
      return 2;
    }
  }
  if (spec_path.empty() || out_path.empty() || chunk_size == 0 ||
      chunk_hi <= chunk_lo) {
    std::fprintf(stderr,
                 "fleetd --worker: need --spec, --out, --chunk-size, and a "
                 "non-empty chunk range\n");
    return 2;
  }
  const fleet::FleetModel model(load_spec(spec_path));
  std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "fleetd --worker: cannot write %s\n",
                 out_path.c_str());
    return 1;
  }
  fleet::compute_unit(model, chunk_lo, chunk_hi, chunk_size, out);
  out.flush();
  return out ? 0 : 1;
}

int cmd_run(int argc, char** argv) {
  std::string spec_path, out_path;
  ExecFlags exec;
  for (int i = 2; i < argc; ++i) {
    const char* v = nullptr;
    if ((v = flag_value(argc, argv, i, "--spec")) != nullptr) {
      spec_path = v;
    } else if ((v = flag_value(argc, argv, i, "--out")) != nullptr) {
      out_path = v;
    } else if (!exec.consume(argc, argv, i)) {
      std::fprintf(stderr, "fleetd run: unknown flag '%s'\n", argv[i]);
      return 2;
    }
  }
  if (spec_path.empty()) {
    std::fprintf(stderr, "fleetd run: --spec is required\n");
    return 2;
  }
  fleet::FleetSpec spec = load_spec(spec_path);
  spec.scale_nodes(exec.scale);
  if (out_path.empty()) out_path = "results/fleet/" + spec.name + ".json";

  obs::Heartbeat& hb = obs::Heartbeat::global();
  hb.set_tool("fleetd");
  obs::Manifest& man = obs::manifest();
  const std::string manifest_path = "results/fleetd.manifest.json";
  start_manifest(man, argc, argv, manifest_path);
  man.extra.emplace_back("config_hash", fleet::config_hash(spec));
  const double start = obs::monotonic_seconds();
  const auto finish = [&](int rc) {
    obs::note_exit_code(rc);
    man.finished_utc = obs::utc_timestamp();
    man.wall_seconds = obs::monotonic_seconds() - start;
    if (man.status == "running") man.status = "completed";
    obs::write_manifest(manifest_path, man);
    return rc;
  };

  fleet::RunOptions run = exec.run;
  run.heartbeat = &hb;
  if (run.mode == fleet::RunOptions::Mode::kWorkerProcess) {
    run.worker_binary = std::filesystem::canonical("/proc/self/exe").string();
    if (run.work_dir.empty()) run.work_dir = "results/fleet/work";
  }
  const fleet::Coordinator coordinator(spec);
  const fleet::FleetResult result = coordinator.run(run);
  const std::string doc = fleet::result_to_json(result).dump(2) + "\n";
  if (!obs::atomic_write_file(out_path, doc)) {
    std::fprintf(stderr, "fleetd run: cannot write %s\n", out_path.c_str());
    return finish(1);
  }
  std::printf("fleet %-12s %" PRIu64
              " nodes  events %.1f  lost %" PRIu64
              "  availability %.9f  -> %s\n",
              result.name.c_str(), result.nodes, result.uncorrected_events,
              result.nodes_lost, result.availability, out_path.c_str());
  return finish(0);
}

int cmd_serve(int argc, char** argv) {
  fleet::ServiceOptions opts;
  ExecFlags exec;
  for (int i = 2; i < argc; ++i) {
    const char* v = nullptr;
    if ((v = flag_value(argc, argv, i, "--socket")) != nullptr) {
      opts.socket_path = v;
    } else if ((v = flag_value(argc, argv, i, "--results")) != nullptr) {
      opts.results_dir = v;
    } else if ((v = flag_value(argc, argv, i, "--queue")) != nullptr) {
      opts.queue_capacity = std::strtoull(v, nullptr, 10);
    } else if (!exec.consume(argc, argv, i)) {
      std::fprintf(stderr, "fleetd serve: unknown flag '%s'\n", argv[i]);
      return 2;
    }
  }
  if (opts.socket_path.empty()) {
    std::fprintf(stderr, "fleetd serve: --socket is required\n");
    return 2;
  }
  opts.run = exec.run;
  if (opts.run.mode == fleet::RunOptions::Mode::kWorkerProcess) {
    opts.run.worker_binary =
        std::filesystem::canonical("/proc/self/exe").string();
  }

  obs::Heartbeat::global().set_tool("fleetd");
  obs::Manifest& man = obs::manifest();
  const std::string manifest_path = opts.results_dir + "/fleetd.manifest.json";
  start_manifest(man, argc, argv, manifest_path);
  const double start = obs::monotonic_seconds();

  fleet::Service service(opts);
  service.start();
  std::printf("fleetd: serving on %s\n", opts.socket_path.c_str());
  std::fflush(stdout);
  service.wait();
  service.stop();

  man.finished_utc = obs::utc_timestamp();
  man.wall_seconds = obs::monotonic_seconds() - start;
  man.status = "completed";
  man.extra.emplace_back("requests_served",
                         std::to_string(service.requests_served()));
  obs::write_manifest(manifest_path, man);
  return 0;
}

int cmd_client(int argc, char** argv) {
  const std::string op = argv[1];
  std::string socket_path, spec_path, hash;
  bool wait = false;
  for (int i = 2; i < argc; ++i) {
    const char* v = nullptr;
    const std::string arg = argv[i];
    if ((v = flag_value(argc, argv, i, "--socket")) != nullptr) {
      socket_path = v;
    } else if ((v = flag_value(argc, argv, i, "--spec")) != nullptr) {
      spec_path = v;
    } else if ((v = flag_value(argc, argv, i, "--hash")) != nullptr) {
      hash = v;
    } else if (arg == "--wait") {
      wait = true;
    } else {
      std::fprintf(stderr, "fleetd %s: unknown flag '%s'\n", op.c_str(),
                   arg.c_str());
      return 2;
    }
  }
  if (socket_path.empty()) {
    std::fprintf(stderr, "fleetd %s: --socket is required\n", op.c_str());
    return 2;
  }
  runner::Json req = fleet::make_request(op);
  if (op == "submit") {
    if (spec_path.empty()) {
      std::fprintf(stderr, "fleetd submit: --spec is required\n");
      return 2;
    }
    req.set("spec", fleet::to_json(load_spec(spec_path)));
    if (wait) req.set("wait", true);
  } else if (op == "status" || op == "results") {
    if (!hash.empty()) {
      req.set("hash", hash);
    } else if (!spec_path.empty()) {
      req.set("spec", fleet::to_json(load_spec(spec_path)));
    } else {
      std::fprintf(stderr, "fleetd %s: need --hash or --spec\n", op.c_str());
      return 2;
    }
  }
  const runner::Json resp = fleet::fleet_request(socket_path, req);
  std::printf("%s\n", resp.dump(2).c_str());
  const bool ok = resp.contains("ok") && resp.at("ok").as_bool();
  return ok ? 0 : 1;
}

int cmd_hash(int argc, char** argv) {
  std::string spec_path;
  for (int i = 2; i < argc; ++i) {
    const char* v = nullptr;
    if ((v = flag_value(argc, argv, i, "--spec")) != nullptr) {
      spec_path = v;
    } else {
      std::fprintf(stderr, "fleetd hash: unknown flag '%s'\n", argv[i]);
      return 2;
    }
  }
  if (spec_path.empty()) {
    std::fprintf(stderr, "fleetd hash: --spec is required\n");
    return 2;
  }
  std::printf("%s\n", fleet::config_hash(load_spec(spec_path)).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(stderr, 2);
  const std::string cmd = argv[1];
  try {
    if (cmd == "--worker") return cmd_worker(argc, argv);
    if (cmd == "run") return cmd_run(argc, argv);
    if (cmd == "serve") return cmd_serve(argc, argv);
    if (cmd == "submit" || cmd == "status" || cmd == "results" ||
        cmd == "ping" || cmd == "shutdown") {
      return cmd_client(argc, argv);
    }
    if (cmd == "hash") return cmd_hash(argc, argv);
    if (cmd == "--help" || cmd == "-h" || cmd == "help") {
      return usage(stdout, 0);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fleetd: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr, "fleetd: unknown command '%s'\n", cmd.c_str());
  return usage(stderr, 2);
}
