// Fig. 1: breakdown of the capacity overheads of different memory ECCs
// into ECC detection bits and ECC correction bits.
//
// Paper's reading: typically 50% or more of the ECC capacity overhead
// comes from the correction bits -- the part ECC Parity compresses.
#include <cstdio>

#include "bench_common.hpp"

using namespace eccsim;

int main(int argc, char** argv) {
  eccsim::bench::init(argc, argv);
  std::printf(
      "Fig. 1 -- Capacity overhead breakdown (fraction of data bits)\n\n");
  Table t({"ECC", "detection", "correction", "total",
           "correction share"});
  struct Row {
    ecc::SchemeId id;
    const char* label;
  };
  const Row rows[] = {
      {ecc::SchemeId::kChipkill36, "commercial chipkill (36-device)"},
      {ecc::SchemeId::kRaim, "commercial DIMM-kill (RAIM)"},
      {ecc::SchemeId::kLotEcc9, "LOT-ECC I (9 chips/rank)"},
      {ecc::SchemeId::kLotEcc5, "LOT-ECC II (5 chips/rank)"},
  };
  for (const Row& row : rows) {
    const auto d = ecc::make_scheme(row.id, ecc::SystemScale::kQuadEquivalent);
    const double total = d.capacity_overhead();
    const double correction = total - d.detection_overhead;
    t.add_row({row.label, Table::pct(d.detection_overhead),
               Table::pct(correction), Table::pct(total),
               Table::pct(correction / total)});
  }
  bench::emit("fig01_capacity_breakdown", t);
  std::printf(
      "Paper check: correction bits are ~50%% or more of every ECC's\n"
      "capacity overhead except the 36-device code (exactly 50%%).\n");
  return 0;
}
