#include "ecc/codec.hpp"

#include <algorithm>
#include <stdexcept>

#include "gf/kernels.hpp"
#include "gf/rs.hpp"

namespace eccsim::ecc {

namespace {

using gf::Rs8;
using gf::RsDecodeResult;

// ---------------------------------------------------------------------------
// 36-device commercial chipkill correct.
//
// A 128B line is four 32B words.  Word w places byte i on chip i (data
// chips 0..31), detection check bytes on chips 32..33, correction check
// bytes on chips 34..35.  Detection code: RS(34,32); correction code:
// RS(36,34) over (data || detection).
class Chipkill36Codec final : public LineCodec {
 public:
  Chipkill36Codec() : det_code_(34, 32), corr_code_(36, 34) {}

  unsigned data_bytes() const override { return 128; }
  unsigned detection_bytes() const override { return 8; }
  unsigned correction_bytes() const override { return 8; }
  unsigned chips() const override { return 36; }

  std::vector<std::uint8_t> detection_bits(
      std::span<const std::uint8_t> data) const override {
    require_size(data, data_bytes(), "data");
    std::vector<std::uint8_t> det(detection_bytes());
    for (unsigned w = 0; w < 4; ++w) {
      const auto checks = det_code_.parity(data.subspan(w * 32, 32));
      det[w * 2] = checks[0];
      det[w * 2 + 1] = checks[1];
    }
    return det;
  }

  std::vector<std::uint8_t> correction_bits(
      std::span<const std::uint8_t> data) const override {
    require_size(data, data_bytes(), "data");
    const auto det = detection_bits(data);
    std::vector<std::uint8_t> corr(correction_bytes());
    std::vector<std::uint8_t> message(34);
    for (unsigned w = 0; w < 4; ++w) {
      std::copy_n(data.begin() + w * 32, 32, message.begin());
      message[32] = det[w * 2];
      message[33] = det[w * 2 + 1];
      const auto checks = corr_code_.parity(message);
      corr[w * 2] = checks[0];
      corr[w * 2 + 1] = checks[1];
    }
    return corr;
  }

  bool detect(std::span<const std::uint8_t> data,
              std::span<const std::uint8_t> det) const override {
    require_size(data, data_bytes(), "data");
    require_size(det, detection_bytes(), "det");
    for (unsigned w = 0; w < 4; ++w) {
      std::vector<std::uint8_t> cw(34);
      cw[0] = det[w * 2];
      cw[1] = det[w * 2 + 1];
      std::copy_n(data.begin() + w * 32, 32, cw.begin() + 2);
      if (!det_code_.check(cw)) return true;
    }
    return false;
  }

  CodecResult correct(std::span<std::uint8_t> data,
                      std::span<const std::uint8_t> det,
                      std::span<const std::uint8_t> corr,
                      std::span<const unsigned> known_bad_chips)
      const override {
    require_size(data, data_bytes(), "data");
    require_size(det, detection_bytes(), "det");
    require_size(corr, correction_bytes(), "corr");
    CodecResult result;
    result.detected = detect(data, det);
    std::vector<bool> chip_fixed(chips(), false);
    // Earlier words are written back as they decode; the line snapshot
    // makes a mid-line decode failure restore the caller's input.
    const std::vector<std::uint8_t> original(data.begin(), data.end());
    for (unsigned w = 0; w < 4; ++w) {
      // Codeword layout: [corr0 corr1 | data*32 det0 det1].
      std::vector<std::uint8_t> cw(36);
      cw[0] = corr[w * 2];
      cw[1] = corr[w * 2 + 1];
      std::copy_n(data.begin() + w * 32, 32, cw.begin() + 2);
      cw[34] = det[w * 2];
      cw[35] = det[w * 2 + 1];
      std::vector<unsigned> erasures;
      for (unsigned chip : known_bad_chips) {
        erasures.push_back(chip_to_codeword_pos(chip));
      }
      const std::vector<std::uint8_t> before = cw;
      const RsDecodeResult dec = corr_code_.decode(cw, erasures);
      if (!dec.ok) {  // uncorrectable
        std::copy(original.begin(), original.end(), data.begin());
        return result;
      }
      for (unsigned i = 0; i < 36; ++i) {
        if (cw[i] != before[i]) chip_fixed[codeword_pos_to_chip(i)] = true;
      }
      std::copy_n(cw.begin() + 2, 32, data.begin() + w * 32);
    }
    result.ok = true;
    result.corrected_chips = static_cast<unsigned>(
        std::count(chip_fixed.begin(), chip_fixed.end(), true));
    return result;
  }

  std::vector<unsigned> chip_data_offsets(unsigned chip) const override {
    std::vector<unsigned> offsets;
    if (chip < 32) {
      for (unsigned w = 0; w < 4; ++w) offsets.push_back(w * 32 + chip);
    }
    return offsets;  // chips 32..35 hold det/corr, not data
  }

 private:
  static void require_size(std::span<const std::uint8_t> s, unsigned n,
                           const char* what) {
    if (s.size() != n) {
      throw std::invalid_argument(std::string("Chipkill36Codec: bad ") +
                                  what + " size");
    }
  }
  /// Chip index -> position in the RS(36,34) codeword.
  static unsigned chip_to_codeword_pos(unsigned chip) {
    if (chip < 32) return chip + 2;   // data
    if (chip < 34) return chip + 2;   // det chips 32,33 -> positions 34,35
    return chip - 34;                 // corr chips 34,35 -> positions 0,1
  }
  static unsigned codeword_pos_to_chip(unsigned pos) {
    if (pos < 2) return pos + 34;
    return pos - 2 < 32 ? pos - 2 : pos - 2;  // 2..33 -> chips 0..31;
                                              // 34,35 -> chips 32,33
  }

  Rs8 det_code_;
  Rs8 corr_code_;
};

// ---------------------------------------------------------------------------
// 18-device commercial chipkill correct: one RS(18,16) code per 16B word;
// a 64B line is four words; byte i of each word sits on chip i.
class Chipkill18Codec final : public LineCodec {
 public:
  Chipkill18Codec() : code_(18, 16) {}

  unsigned data_bytes() const override { return 64; }
  unsigned detection_bytes() const override { return 8; }
  unsigned correction_bytes() const override { return 0; }
  unsigned chips() const override { return 18; }

  std::vector<std::uint8_t> detection_bits(
      std::span<const std::uint8_t> data) const override {
    require(data.size() == data_bytes(), "data size");
    std::vector<std::uint8_t> det(detection_bytes());
    for (unsigned w = 0; w < 4; ++w) {
      const auto checks = code_.parity(data.subspan(w * 16, 16));
      det[w * 2] = checks[0];
      det[w * 2 + 1] = checks[1];
    }
    return det;
  }

  std::vector<std::uint8_t> correction_bits(
      std::span<const std::uint8_t>) const override {
    return {};  // the two check symbols do double duty
  }

  bool detect(std::span<const std::uint8_t> data,
              std::span<const std::uint8_t> det) const override {
    require(data.size() == data_bytes() && det.size() == detection_bytes(),
            "sizes");
    for (unsigned w = 0; w < 4; ++w) {
      std::vector<std::uint8_t> cw(18);
      cw[0] = det[w * 2];
      cw[1] = det[w * 2 + 1];
      std::copy_n(data.begin() + w * 16, 16, cw.begin() + 2);
      if (!code_.check(cw)) return true;
    }
    return false;
  }

  CodecResult correct(std::span<std::uint8_t> data,
                      std::span<const std::uint8_t> det,
                      std::span<const std::uint8_t> /*corr*/,
                      std::span<const unsigned> known_bad_chips)
      const override {
    CodecResult result;
    result.detected = detect(data, det);
    std::vector<bool> chip_fixed(chips(), false);
    const std::vector<std::uint8_t> original(data.begin(), data.end());
    for (unsigned w = 0; w < 4; ++w) {
      std::vector<std::uint8_t> cw(18);
      cw[0] = det[w * 2];
      cw[1] = det[w * 2 + 1];
      std::copy_n(data.begin() + w * 16, 16, cw.begin() + 2);
      std::vector<unsigned> erasures;
      for (unsigned chip : known_bad_chips) {
        erasures.push_back(chip < 16 ? chip + 2 : chip - 16);
      }
      const std::vector<std::uint8_t> before = cw;
      const RsDecodeResult dec = code_.decode(cw, erasures);
      if (!dec.ok) {
        std::copy(original.begin(), original.end(), data.begin());
        return result;
      }
      for (unsigned i = 0; i < 18; ++i) {
        if (cw[i] != before[i]) {
          chip_fixed[i < 2 ? 16 + i : i - 2] = true;
        }
      }
      std::copy_n(cw.begin() + 2, 16, data.begin() + w * 16);
    }
    result.ok = true;
    result.corrected_chips = static_cast<unsigned>(
        std::count(chip_fixed.begin(), chip_fixed.end(), true));
    return result;
  }

  std::vector<unsigned> chip_data_offsets(unsigned chip) const override {
    std::vector<unsigned> offsets;
    if (chip < 16) {
      for (unsigned w = 0; w < 4; ++w) offsets.push_back(w * 16 + chip);
    }
    return offsets;
  }

 private:
  static void require(bool cond, const char* what) {
    if (!cond) {
      throw std::invalid_argument(std::string("Chipkill18Codec: bad ") + what);
    }
  }
  Rs8 code_;
};

// ---------------------------------------------------------------------------
// LOT-ECC (tiered): `data_chips` equal shares of a 64B line; tier-1
// detection = a per-chip checksum (Fletcher-style, sensitive to reordering
// within the share); tier-2 correction = XOR of the shares.  Correction is
// erasure-only: tier 1 localizes, tier 2 reconstructs (Sec. VI-D notes the
// intra-chip checksum limitation this design inherits).
class LotEccCodec final : public LineCodec {
 public:
  LotEccCodec(unsigned data_chips, unsigned checksum_bytes_per_chip)
      : data_chips_(data_chips),
        cksum_bytes_(checksum_bytes_per_chip),
        share_bytes_(64 / data_chips) {
    if (64 % data_chips != 0) {
      throw std::invalid_argument("LotEccCodec: chips must divide 64");
    }
  }

  unsigned data_bytes() const override { return 64; }
  unsigned detection_bytes() const override {
    return data_chips_ * cksum_bytes_;
  }
  unsigned correction_bytes() const override { return share_bytes_; }
  unsigned chips() const override { return data_chips_ + 1; }  // + ECC chip

  std::vector<std::uint8_t> detection_bits(
      std::span<const std::uint8_t> data) const override {
    require(data.size() == data_bytes());
    std::vector<std::uint8_t> det;
    det.reserve(detection_bytes());
    for (unsigned c = 0; c < data_chips_; ++c) {
      const auto sum = checksum(share(data, c));
      for (unsigned b = 0; b < cksum_bytes_; ++b) {
        det.push_back(static_cast<std::uint8_t>(sum >> (8 * b)));
      }
    }
    return det;
  }

  std::vector<std::uint8_t> correction_bits(
      std::span<const std::uint8_t> data) const override {
    require(data.size() == data_bytes());
    std::vector<std::uint8_t> corr(share_bytes_, 0);
    for (unsigned c = 0; c < data_chips_; ++c) {
      gf::gf_xor_region(share(data, c).data(), corr.data(), share_bytes_);
    }
    return corr;
  }

  bool detect(std::span<const std::uint8_t> data,
              std::span<const std::uint8_t> det) const override {
    return !locate(data, det).empty();
  }

  CodecResult correct(std::span<std::uint8_t> data,
                      std::span<const std::uint8_t> det,
                      std::span<const std::uint8_t> corr,
                      std::span<const unsigned> known_bad_chips)
      const override {
    require(data.size() == data_bytes() && corr.size() == share_bytes_);
    CodecResult result;
    std::vector<unsigned> bad = locate(data, det);
    result.detected = !bad.empty();
    for (unsigned chip : known_bad_chips) {
      if (chip < data_chips_ &&
          std::find(bad.begin(), bad.end(), chip) == bad.end()) {
        bad.push_back(chip);
      }
    }
    if (bad.empty()) {
      result.ok = true;
      return result;
    }
    if (bad.size() > 1) return result;  // tier 2 is single-erasure only
    const unsigned chip = bad[0];
    // Reconstruct the bad share: corr XOR all healthy shares.
    std::vector<std::uint8_t> fixed(corr.begin(), corr.end());
    for (unsigned c = 0; c < data_chips_; ++c) {
      if (c == chip) continue;
      gf::gf_xor_region(share(data, c).data(), fixed.data(), share_bytes_);
    }
    const std::vector<std::uint8_t> original_share(
        data.begin() + chip * share_bytes_,
        data.begin() + (chip + 1) * share_bytes_);
    std::copy(fixed.begin(), fixed.end(),
              data.begin() + chip * share_bytes_);
    // Verify tier 1 now passes for that chip.
    if (checksum(share(data, chip)) != stored_checksum(det, chip)) {
      // The checksum itself was corrupted too: give up, leaving the
      // caller's input intact.
      std::copy(original_share.begin(), original_share.end(),
                data.begin() + chip * share_bytes_);
      return result;
    }
    result.ok = true;
    result.corrected_chips = 1;
    return result;
  }

  std::vector<unsigned> chip_data_offsets(unsigned chip) const override {
    std::vector<unsigned> offsets;
    if (chip < data_chips_) {
      for (unsigned b = 0; b < share_bytes_; ++b) {
        offsets.push_back(chip * share_bytes_ + b);
      }
    }
    return offsets;
  }

 private:
  void require(bool cond) const {
    if (!cond) throw std::invalid_argument("LotEccCodec: bad span size");
  }
  std::span<const std::uint8_t> share(std::span<const std::uint8_t> data,
                                      unsigned chip) const {
    return data.subspan(chip * share_bytes_, share_bytes_);
  }
  std::uint64_t checksum(std::span<const std::uint8_t> s) const {
    // Fletcher-style two-part sum FOLDED (not truncated) to cksum_bytes_.
    // Truncation would keep only the order-insensitive byte-sum part,
    // which a structured corruption (e.g. the same XOR pattern applied to
    // every byte of the share) can collide far too easily; folding mixes
    // the position-sensitive 'b' accumulator into every kept bit.
    std::uint32_t a = 1, b = 0;
    for (std::uint8_t v : s) {
      a = (a + v) % 65521u;
      b = (b + a) % 65521u;
    }
    std::uint64_t full = (static_cast<std::uint64_t>(b) << 16) | a;
    const unsigned bits = 8 * cksum_bytes_;
    if (bits >= 32) return full;
    std::uint64_t folded = 0;
    while (full != 0) {
      folded ^= full & ((1ULL << bits) - 1);
      full >>= bits;
    }
    return folded;
  }
  std::uint64_t stored_checksum(std::span<const std::uint8_t> det,
                                unsigned chip) const {
    std::uint64_t v = 0;
    for (unsigned b = 0; b < cksum_bytes_; ++b) {
      v |= static_cast<std::uint64_t>(det[chip * cksum_bytes_ + b])
           << (8 * b);
    }
    return v;
  }
  std::vector<unsigned> locate(std::span<const std::uint8_t> data,
                               std::span<const std::uint8_t> det) const {
    std::vector<unsigned> bad;
    for (unsigned c = 0; c < data_chips_; ++c) {
      if (checksum(share(data, c)) != stored_checksum(det, c)) {
        bad.push_back(c);
      }
    }
    return bad;
  }

  unsigned data_chips_;
  unsigned cksum_bytes_;
  unsigned share_bytes_;
};

// ---------------------------------------------------------------------------
// RAIM: the line is striped across `data_dimms` DIMMs; each DIMM's share
// carries RS check symbols (detection + DIMM localization), and one parity
// DIMM's worth of XOR is the correction information.
//   - classic RAIM (45 chips): 128B line, 4 data DIMMs of 32B + parity.
//   - RAIM+ECC Parity rank (18 chips): 64B line, 2 data DIMMs of 32B; the
//     32B XOR is stored via ECC parities (R = 0.5).
class RaimCodec final : public LineCodec {
 public:
  RaimCodec(unsigned line_bytes, unsigned data_dimms)
      : line_bytes_(line_bytes),
        data_dimms_(data_dimms),
        share_bytes_(line_bytes / data_dimms),
        det_per_dimm_(4) {
    if (line_bytes % data_dimms != 0 || share_bytes_ % 8 != 0) {
      throw std::invalid_argument("RaimCodec: bad geometry");
    }
  }

  unsigned data_bytes() const override { return line_bytes_; }
  unsigned detection_bytes() const override {
    return data_dimms_ * det_per_dimm_;
  }
  unsigned correction_bytes() const override { return share_bytes_; }
  unsigned chips() const override { return data_dimms_; }  // DIMM granularity

  std::vector<std::uint8_t> detection_bits(
      std::span<const std::uint8_t> data) const override {
    require(data.size() == data_bytes());
    std::vector<std::uint8_t> det;
    det.reserve(detection_bytes());
    for (unsigned d = 0; d < data_dimms_; ++d) {
      // Four interleaved GF(2^8) polynomial-evaluation checks per DIMM
      // share: each check is a Horner evaluation at a fixed field point
      // over every 4th byte, so any corruption of the share flips at least
      // one check except with probability ~2^-32.
      const auto s = share(data, d);
      for (unsigned i = 0; i < det_per_dimm_; ++i) {
        std::uint8_t acc = 0;
        for (unsigned b = i; b < share_bytes_; b += det_per_dimm_) {
          acc = gf::GF256::add(gf::GF256::mul(acc, 29), s[b]);
        }
        det.push_back(acc);
      }
    }
    return det;
  }

  std::vector<std::uint8_t> correction_bits(
      std::span<const std::uint8_t> data) const override {
    require(data.size() == data_bytes());
    std::vector<std::uint8_t> corr(share_bytes_, 0);
    for (unsigned d = 0; d < data_dimms_; ++d) {
      gf::gf_xor_region(share(data, d).data(), corr.data(), share_bytes_);
    }
    return corr;
  }

  bool detect(std::span<const std::uint8_t> data,
              std::span<const std::uint8_t> det) const override {
    return !locate(data, det).empty();
  }

  CodecResult correct(std::span<std::uint8_t> data,
                      std::span<const std::uint8_t> det,
                      std::span<const std::uint8_t> corr,
                      std::span<const unsigned> known_bad_chips)
      const override {
    require(data.size() == data_bytes() && corr.size() == share_bytes_);
    CodecResult result;
    std::vector<unsigned> bad = locate(data, det);
    result.detected = !bad.empty();
    for (unsigned d : known_bad_chips) {
      if (d < data_dimms_ && std::find(bad.begin(), bad.end(), d) == bad.end())
        bad.push_back(d);
    }
    if (bad.empty()) {
      result.ok = true;
      return result;
    }
    if (bad.size() > 1) return result;  // DIMM-kill: one DIMM at a time
    const unsigned dimm = bad[0];
    std::vector<std::uint8_t> fixed(corr.begin(), corr.end());
    for (unsigned d = 0; d < data_dimms_; ++d) {
      if (d == dimm) continue;
      gf::gf_xor_region(share(data, d).data(), fixed.data(), share_bytes_);
    }
    const std::vector<std::uint8_t> original_share(
        data.begin() + dimm * share_bytes_,
        data.begin() + (dimm + 1) * share_bytes_);
    std::copy(fixed.begin(), fixed.end(),
              data.begin() + dimm * share_bytes_);
    // Confirm the repaired share matches its stored detection symbols.
    const auto recheck = locate(data, det);
    if (std::find(recheck.begin(), recheck.end(), dimm) != recheck.end()) {
      std::copy(original_share.begin(), original_share.end(),
                data.begin() + dimm * share_bytes_);
      return result;
    }
    result.ok = true;
    result.corrected_chips = 1;
    return result;
  }

  std::vector<unsigned> chip_data_offsets(unsigned dimm) const override {
    std::vector<unsigned> offsets;
    if (dimm < data_dimms_) {
      for (unsigned b = 0; b < share_bytes_; ++b) {
        offsets.push_back(dimm * share_bytes_ + b);
      }
    }
    return offsets;
  }

 private:
  void require(bool cond) const {
    if (!cond) throw std::invalid_argument("RaimCodec: bad span size");
  }
  std::span<const std::uint8_t> share(std::span<const std::uint8_t> data,
                                      unsigned dimm) const {
    return data.subspan(dimm * share_bytes_, share_bytes_);
  }
  std::vector<unsigned> locate(std::span<const std::uint8_t> data,
                               std::span<const std::uint8_t> det) const {
    std::vector<unsigned> bad;
    for (unsigned d = 0; d < data_dimms_; ++d) {
      const auto s = share(data, d);
      for (unsigned i = 0; i < det_per_dimm_; ++i) {
        std::uint8_t acc = 0;
        for (unsigned b = i; b < share_bytes_; b += det_per_dimm_) {
          acc = gf::GF256::add(gf::GF256::mul(acc, 29), s[b]);
        }
        if (acc != det[d * det_per_dimm_ + i]) {
          bad.push_back(d);
          break;
        }
      }
    }
    return bad;
  }

  unsigned line_bytes_;
  unsigned data_dimms_;
  unsigned share_bytes_;
  unsigned det_per_dimm_;
};

}  // namespace

std::unique_ptr<LineCodec> make_codec(SchemeId id) {
  switch (id) {
    case SchemeId::kChipkill36:
      return std::make_unique<Chipkill36Codec>();
    case SchemeId::kChipkill18:
      return std::make_unique<Chipkill18Codec>();
    case SchemeId::kLotEcc5:
    case SchemeId::kLotEcc5Parity:
      return std::make_unique<LotEccCodec>(4, 2);
    case SchemeId::kLotEcc9:
      return std::make_unique<LotEccCodec>(8, 1);
    case SchemeId::kRaim:
      return std::make_unique<RaimCodec>(128, 4);
    case SchemeId::kRaimParity:
      return std::make_unique<RaimCodec>(64, 2);
    case SchemeId::kMultiEcc:
      throw std::invalid_argument(
          "Multi-ECC corrects at multi-line granularity; use "
          "ecc::MultiEccGroupCodec (multiecc.hpp)");
  }
  throw std::invalid_argument("make_codec: unknown scheme");
}

}  // namespace eccsim::ecc
