// Sec. VI-B: HPC system impact.  A node whose memory develops a
// column-or-larger fault migrates its threads to a spare node
// (checkpoint-restart infrastructure) and reconstructs the faulty region's
// ECC correction bits; the whole HPC system stalls while this happens.
// The paper estimates 0.35% stall time for a 2PB system with 128GB/node
// and a 1GB/s NIC.
#include <cstdio>

#include "bench_common.hpp"
#include "faults/montecarlo.hpp"

using namespace eccsim;

int main(int argc, char** argv) {
  eccsim::bench::init(argc, argv);
  const auto opts = bench::mc_options();
  const auto rates = faults::ddr3_vendor_average();
  const unsigned systems = bench::mc_systems(2'000);

  std::printf("Sec. VI-B -- HPC stall-time estimate (%u machine lifetimes\n"
              "simulated per configuration)\n\n", systems);
  Table t({"total memory", "node memory", "NIC BW", "stall fraction",
           "simulated"});
  struct Cfg {
    double total_pb;
    double node_gb;
    double nic_gbs;
  };
  const Cfg cfgs[] = {
      {2.0, 128, 1},   // the paper's configuration
      {2.0, 128, 10},  // faster interconnect
      {2.0, 64, 1},    // smaller nodes
      {10.0, 128, 1},  // larger machine
  };
  for (const Cfg& c : cfgs) {
    faults::HpcStallParams p;
    p.total_memory_bytes = c.total_pb * 1024 * 1024 * 1024 * 1024 * 1024;
    p.node_memory_bytes = c.node_gb * 1024 * 1024 * 1024;
    p.nic_bandwidth_bytes_per_s = c.nic_gbs * 1024 * 1024 * 1024;
    // Monte Carlo cross-check of the closed form: sample the Poisson
    // stream of migration-triggering faults over whole machine lifetimes.
    const auto res = faults::hpc_stall_fraction_mc(p, rates, systems,
                                                   1977, opts);
    t.add_row({Table::num(c.total_pb, 0) + " PB",
               Table::num(c.node_gb, 0) + " GB",
               Table::num(c.nic_gbs, 0) + " GB/s",
               Table::pct(res.analytic_fraction, 2),
               Table::pct(res.simulated_fraction, 2)});
  }
  bench::emit("sec6b_hpc_stall", t);
  std::printf(
      "Paper check: first row ~0.2-0.35%% (paper: 0.35%%); migration is\n"
      "triggered on every column, bank, multi-bank, or multi-rank fault.\n");
  return 0;
}
