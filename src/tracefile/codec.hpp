// Chunk payload codec: delta+varint encoding of pre-/post-LLC records.
//
// Chunks are self-contained: all delta state (per-core previous line,
// previous cycle, previous packed address) resets at each chunk boundary,
// which is what makes TraceReader::seek_chunk() possible and confines a
// corrupted chunk's blast radius to itself.
//
// Pre-LLC record  -> varint(core<<1 | is_write), varint(gap),
//                    zigzag-varint(line delta vs this core's previous line)
// Post-LLC record -> varint(line_class<<1 | is_write),
//                    zigzag-varint(cycle delta),
//                    zigzag-varint(packed-address delta), where
//                    packed = row<<40 | bank<<32 | rank<<24 | channel<<16
//                             | col  (field widths checked at encode time).
#pragma once

#include <string>
#include <vector>

#include "tracefile/format.hpp"

namespace eccsim::tracefile {

/// Encodes one chunk of pre-LLC records.
std::string encode_pre_chunk(const std::vector<PreOp>& ops);

/// Encodes one chunk of post-LLC records.
std::string encode_post_chunk(const std::vector<PostOp>& ops);

/// Decodes exactly `op_count` pre-LLC records from a chunk payload into
/// `out` (cleared first).  Throws TraceError if the payload is malformed
/// or its length disagrees with `op_count`.
void decode_pre_chunk(const unsigned char* data, std::size_t size,
                      std::uint32_t op_count, std::vector<PreOp>& out);

/// Post-LLC counterpart of decode_pre_chunk.
void decode_post_chunk(const unsigned char* data, std::size_t size,
                       std::uint32_t op_count, std::vector<PostOp>& out);

/// Packs a DramAddress into the codec's 64-bit form; throws TraceError if
/// any field exceeds its width (col 16 bits, channel/rank/bank 8 bits
/// each, row 24 bits -- comfortably above any Table II geometry).
std::uint64_t pack_address(const dram::DramAddress& addr);

/// Inverse of pack_address.
dram::DramAddress unpack_address(std::uint64_t packed);

}  // namespace eccsim::tracefile
