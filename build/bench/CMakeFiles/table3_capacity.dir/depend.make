# Empty dependencies file for table3_capacity.
# This may be replaced when dependencies are built.
