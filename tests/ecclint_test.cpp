// Tests for tools/ecclint: lexer edge cases, one positive and one
// negative fixture per rule family, suppression semantics, and the
// baseline ratchet.  Everything runs through the in-memory analyze()
// API -- no filesystem, no subprocesses.
#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analyzer.hpp"
#include "lexer.hpp"

namespace el = eccsim::ecclint;

namespace {

std::vector<std::string> rules_of(const std::vector<el::Finding>& findings) {
  std::vector<std::string> rules;
  for (const el::Finding& f : findings) rules.push_back(f.rule);
  return rules;
}

bool has_rule(const std::vector<el::Finding>& findings,
              const std::string& rule) {
  return std::any_of(
      findings.begin(), findings.end(),
      [&](const el::Finding& f) { return f.rule == rule; });
}

std::vector<el::Finding> run_one(const std::string& path,
                                 const std::string& content,
                                 el::Config cfg = {}) {
  return el::analyze({el::SourceFile{path, content}}, cfg);
}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

TEST(EcclintLexer, RawStringContentsAreNotTokenized) {
  const el::LexedFile f = el::lex(
      "src/x/a.cpp",
      "auto s = R\"(std::unordered_map<int,int> m; rand();)\";\nint after;\n");
  for (const el::Token& t : f.tokens) {
    if (t.kind == el::Tok::kIdent) {
      EXPECT_NE(t.text, "unordered_map");
      EXPECT_NE(t.text, "rand");
    }
  }
  // The raw literal arrives as a single string token with its contents.
  bool found = false;
  for (const el::Token& t : f.tokens) {
    if (t.kind == el::Tok::kString &&
        t.text.find("unordered_map") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
  // Tokenization resumes after the literal.
  EXPECT_TRUE(std::any_of(f.tokens.begin(), f.tokens.end(),
                          [](const el::Token& t) { return t.text == "after"; }));
}

TEST(EcclintLexer, RawStringCustomDelimiter) {
  // The )" inside the literal must not terminate it; only )ab" does.
  const el::LexedFile f =
      el::lex("src/x/a.cpp", "auto s = R\"ab(x)\" still inside)ab\"; int y;\n");
  ASSERT_FALSE(f.tokens.empty());
  bool found = false;
  for (const el::Token& t : f.tokens) {
    if (t.kind == el::Tok::kString) {
      EXPECT_EQ(t.text, "x)\" still inside");
      found = true;
    }
  }
  EXPECT_TRUE(found);
  EXPECT_TRUE(std::any_of(f.tokens.begin(), f.tokens.end(),
                          [](const el::Token& t) { return t.text == "y"; }));
}

TEST(EcclintLexer, LineSplicedCommentSwallowsNextLine) {
  // The backslash-newline continues the // comment onto line 2, so
  // `int x` is comment text; `int y` on line 3 is real code.
  const el::LexedFile f =
      el::lex("src/x/a.cpp", "// comment \\\nint x = 1;\nint y = 2;\n");
  EXPECT_FALSE(std::any_of(f.tokens.begin(), f.tokens.end(),
                           [](const el::Token& t) { return t.text == "x"; }));
  const auto y = std::find_if(f.tokens.begin(), f.tokens.end(),
                              [](const el::Token& t) { return t.text == "y"; });
  ASSERT_NE(y, f.tokens.end());
  EXPECT_EQ(y->line, 3);
}

TEST(EcclintLexer, IncludeInsideIfZeroIsSkipped) {
  const el::LexedFile f = el::lex("src/x/a.cpp",
                                  "#include \"kept.hpp\"\n"
                                  "#if 0\n"
                                  "#include \"dropped.hpp\"\n"
                                  "#else\n"
                                  "#include \"restored.hpp\"\n"
                                  "#endif\n"
                                  "#include <vector>\n");
  ASSERT_EQ(f.includes.size(), 3u);
  EXPECT_EQ(f.includes[0].path, "kept.hpp");
  EXPECT_FALSE(f.includes[0].angled);
  EXPECT_EQ(f.includes[1].path, "restored.hpp");
  EXPECT_EQ(f.includes[2].path, "vector");
  EXPECT_TRUE(f.includes[2].angled);
}

TEST(EcclintLexer, NestedIfZeroStaysDisabled) {
  const el::LexedFile f = el::lex("src/x/a.cpp",
                                  "#if 0\n"
                                  "#ifdef FOO\n"
                                  "#include \"inner.hpp\"\n"
                                  "#endif\n"
                                  "#include \"still_dead.hpp\"\n"
                                  "#endif\n");
  EXPECT_TRUE(f.includes.empty());
}

TEST(EcclintLexer, SuppressionParsing) {
  const el::LexedFile f =
      el::lex("src/x/a.cpp",
              "int a;  // ecclint:allow(EL002) legacy clock shim\n"
              "int b;  // ecclint:allow(EL004)\n"
              "/* ecclint:allow(EL001) block form */ int c;\n");
  ASSERT_EQ(f.suppressions.size(), 3u);
  EXPECT_EQ(f.suppressions[0].rule, "EL002");
  EXPECT_EQ(f.suppressions[0].reason, "legacy clock shim");
  EXPECT_EQ(f.suppressions[0].line, 1);
  EXPECT_EQ(f.suppressions[1].rule, "EL004");
  EXPECT_TRUE(f.suppressions[1].reason.empty());
  EXPECT_EQ(f.suppressions[2].rule, "EL001");
  EXPECT_EQ(f.suppressions[2].reason, "block form");
}

// ---------------------------------------------------------------------------
// Determinism family
// ---------------------------------------------------------------------------

TEST(EcclintDeterminism, UnorderedIterationInEmitPathFires) {
  const std::string src =
      "#include <unordered_map>\n"
      "struct Acc {\n"
      "  std::unordered_map<int, double> by_key;\n"
      "  double total = 0.0;\n"
      "  void merge_results() {\n"
      "    for (const auto& [k, v] : by_key) {\n"
      "      total += v;\n"
      "    }\n"
      "  }\n"
      "};\n";
  const auto findings = run_one("src/x/a.cpp", src);
  EXPECT_TRUE(has_rule(findings, "EL001"));
  EXPECT_TRUE(has_rule(findings, "EL003"));
}

TEST(EcclintDeterminism, UnorderedIterationOffEmitPathIsSilent) {
  // Same loop, but the enclosing function is not a result/merge/emit
  // path and nothing floating-point accumulates.
  const std::string src =
      "#include <unordered_map>\n"
      "struct Acc {\n"
      "  std::unordered_map<int, int> by_key;\n"
      "  int step() {\n"
      "    int n = 0;\n"
      "    for (const auto& [k, v] : by_key) { n += v; }\n"
      "    return n;\n"
      "  }\n"
      "};\n";
  EXPECT_TRUE(run_one("src/x/a.cpp", src).empty());
}

TEST(EcclintDeterminism, OrderedIterationInEmitPathIsSilent) {
  const std::string src =
      "#include <map>\n"
      "struct Acc {\n"
      "  std::map<int, double> by_key;\n"
      "  double total = 0.0;\n"
      "  void merge_results() {\n"
      "    for (const auto& [k, v] : by_key) { total += v; }\n"
      "  }\n"
      "};\n";
  EXPECT_TRUE(run_one("src/x/a.cpp", src).empty());
}

TEST(EcclintDeterminism, AmbientClockAndEntropyFire) {
  const std::string src =
      "#include <cstdlib>\n"
      "int noise() { return rand(); }\n"
      "long stamp() { return time(nullptr); }\n"
      "void seed() { std::random_device rd; }\n";
  const std::vector<std::string> rules = rules_of(run_one("src/x/a.cpp", src));
  EXPECT_EQ(std::count(rules.begin(), rules.end(), "EL002"), 3);
}

TEST(EcclintDeterminism, MemberTimeCallIsNotTheClock) {
  // `sim.time()` is a member call, not <ctime> time().
  const std::string src = "double now(Sim& sim) { return sim.time(); }\n";
  EXPECT_TRUE(run_one("src/x/a.cpp", src).empty());
}

TEST(EcclintDeterminism, ObsAllowlistPermitsClocks) {
  const std::string src =
      "auto t = std::chrono::system_clock::now();\n";
  EXPECT_TRUE(run_one("src/obs/clock.cpp", src).empty());
  EXPECT_TRUE(has_rule(run_one("src/sim/clock.cpp", src), "EL002"));
}

TEST(EcclintDeterminism, RawMt19937ConstructionFires) {
  EXPECT_TRUE(has_rule(
      run_one("src/x/a.cpp", "std::mt19937 g(12345);\n"), "EL004"));
  EXPECT_TRUE(has_rule(
      run_one("src/x/a.cpp", "std::mt19937_64 g;\n"), "EL004"));
  EXPECT_TRUE(has_rule(
      run_one("src/x/a.cpp", "auto r = std::mt19937{7}();\n"), "EL004"));
}

TEST(EcclintDeterminism, BlessedSeedDerivationIsSilent) {
  EXPECT_TRUE(run_one("src/x/a.cpp",
                      "std::mt19937 g(runner::substream_seed(base, 3));\n")
                  .empty());
  EXPECT_TRUE(run_one("src/x/a.cpp",
                      "std::mt19937_64 g{trace::paper_sweep_seed(cfg)};\n")
                  .empty());
  // A reference parameter is a use, not a construction.
  EXPECT_TRUE(run_one("src/x/a.cpp",
                      "void shuffle(std::mt19937& g, int n);\n")
                  .empty());
}

// ---------------------------------------------------------------------------
// Suppressions
// ---------------------------------------------------------------------------

TEST(EcclintSuppression, ReasonedSuppressionSilencesOwnAndNextLine) {
  const std::string trailing =
      "int noise() { return rand(); }  // ecclint:allow(EL002) fixture\n";
  EXPECT_TRUE(run_one("src/x/a.cpp", trailing).empty());

  const std::string above =
      "// ecclint:allow(EL002) fixture needs ambient entropy\n"
      "int noise() { return rand(); }\n";
  EXPECT_TRUE(run_one("src/x/a.cpp", above).empty());
}

TEST(EcclintSuppression, SuppressionDoesNotReachTwoLinesDown) {
  const std::string src =
      "// ecclint:allow(EL002) too far away\n"
      "int pad;\n"
      "int noise() { return rand(); }\n";
  EXPECT_TRUE(has_rule(run_one("src/x/a.cpp", src), "EL002"));
}

TEST(EcclintSuppression, WrongRuleDoesNotSuppress) {
  const std::string src =
      "int noise() { return rand(); }  // ecclint:allow(EL004) wrong rule\n";
  EXPECT_TRUE(has_rule(run_one("src/x/a.cpp", src), "EL002"));
}

TEST(EcclintSuppression, ReasonlessSuppressionIsEL000AndSilencesNothing) {
  const std::string src =
      "int noise() { return rand(); }  // ecclint:allow(EL002)\n";
  const auto findings = run_one("src/x/a.cpp", src);
  EXPECT_TRUE(has_rule(findings, "EL000"));
  EXPECT_TRUE(has_rule(findings, "EL002"));
}

// ---------------------------------------------------------------------------
// Layering family
// ---------------------------------------------------------------------------

namespace layering {

const char* const kLayers =
    "module json   src/runner/json.\n"
    "module common src/common/\n"
    "module stats  src/stats/\n"
    "module obs    src/obs/\n"
    "module runner src/runner/\n"
    "allow stats -> common\n"
    "allow obs -> common stats json\n"
    "allow runner -> common obs json stats\n";

std::vector<el::SourceFile> fixture_tree() {
  return {
      {"src/runner/json.hpp", "#pragma once\n"},
      {"src/obs/telemetry.cpp",
       "#include \"runner/json.hpp\"\n#include \"stats/stats.hpp\"\n"},
      {"src/stats/stats.hpp", "#pragma once\n#include \"common/units.hpp\"\n"},
      {"src/common/units.hpp", "#pragma once\n"},
  };
}

}  // namespace layering

TEST(EcclintLayering, DeclaredEdgesPass) {
  el::Config cfg;
  cfg.layers_text = layering::kLayers;
  EXPECT_TRUE(el::analyze(layering::fixture_tree(), cfg).empty());
}

TEST(EcclintLayering, RemovingTheObsJsonEdgeFails) {
  // The acceptance liveness check: delete `json` from obs's allow list
  // and the obs -> json include must become an EL101 finding.
  std::string layers = layering::kLayers;
  const std::string before = "allow obs -> common stats json\n";
  const std::string after = "allow obs -> common stats\n";
  const std::size_t at = layers.find(before);
  ASSERT_NE(at, std::string::npos);
  layers.replace(at, before.size(), after);

  el::Config cfg;
  cfg.layers_text = layers;
  const auto findings = el::analyze(layering::fixture_tree(), cfg);
  ASSERT_TRUE(has_rule(findings, "EL101"));
  const auto f = std::find_if(
      findings.begin(), findings.end(),
      [](const el::Finding& x) { return x.rule == "EL101"; });
  EXPECT_EQ(f->file, "src/obs/telemetry.cpp");
  EXPECT_NE(f->message.find("obs -> json"), std::string::npos);
}

TEST(EcclintLayering, CarveOutHeaderBelongsToItsOwnModule) {
  // src/runner/json.cpp including "runner/json.hpp" is a json -> json
  // self-edge, not json -> runner, even though the dir-relative
  // resolution `src/runner/runner/json.hpp` would prefix-match runner.
  el::Config cfg;
  cfg.layers_text = layering::kLayers;
  const std::vector<el::SourceFile> files = {
      {"src/runner/json.hpp", "#pragma once\n"},
      {"src/runner/json.cpp", "#include \"runner/json.hpp\"\n"},
  };
  EXPECT_TRUE(el::analyze(files, cfg).empty());
}

TEST(EcclintLayering, CycleInDeclaredDagIsEL102) {
  el::Config cfg;
  cfg.layers_text =
      "module a src/a/\n"
      "module b src/b/\n"
      "allow a -> b\n"
      "allow b -> a\n";
  const auto findings = el::analyze({}, cfg);
  ASSERT_TRUE(has_rule(findings, "EL102"));
  EXPECT_NE(findings.front().message.find("cycle"), std::string::npos);
}

TEST(EcclintLayering, ParseErrorsAreEL102) {
  el::Config cfg;
  cfg.layers_text = "modul a src/a/\n";
  EXPECT_TRUE(has_rule(el::analyze({}, cfg), "EL102"));

  cfg.layers_text = "module a src/a/\nallow a -> ghost\n";
  EXPECT_TRUE(has_rule(el::analyze({}, cfg), "EL102"));
}

TEST(EcclintLayering, UnmappedFilesAndAngledIncludesAreUnconstrained) {
  el::Config cfg;
  cfg.layers_text = layering::kLayers;
  const std::vector<el::SourceFile> files = {
      {"src/common/units.hpp", "#pragma once\n#include <vector>\n"},
      // tests/ matches no module prefix: free to include anything.
      {"tests/foo_test.cpp", "#include \"runner/json.hpp\"\n"},
      {"src/runner/json.hpp", "#pragma once\n"},
  };
  EXPECT_TRUE(el::analyze(files, cfg).empty());
}

namespace fleetlayers {

// The fleet/fleetd corner of tools/ecclint/layers.txt, reduced to the
// modules those edges touch.
const char* const kLayers =
    "module json       src/runner/json.\n"
    "module threadpool src/runner/thread_pool.\n"
    "module common     src/common/\n"
    "module obs        src/obs/\n"
    "module dram       src/dram/\n"
    "module faults     src/faults/\n"
    "module fleet      src/fleet/\n"
    "module fleetd     tools/fleetd/\n"
    "allow obs -> common\n"
    "allow faults -> common obs threadpool\n"
    "allow fleet -> common faults obs json threadpool\n"
    "allow fleetd -> common obs fleet json\n";

std::vector<el::SourceFile> fixture_tree() {
  return {
      {"src/runner/json.hpp", "#pragma once\n"},
      {"src/runner/thread_pool.hpp", "#pragma once\n"},
      {"src/obs/heartbeat.hpp", "#pragma once\n"},
      {"src/dram/spec.hpp", "#pragma once\n"},
      {"src/faults/mc_engine.hpp", "#pragma once\n"},
      {"src/fleet/coordinator.cpp",
       "#include \"faults/mc_engine.hpp\"\n"
       "#include \"obs/heartbeat.hpp\"\n"
       "#include \"runner/json.hpp\"\n"
       "#include \"runner/thread_pool.hpp\"\n"},
      {"tools/fleetd/main.cpp",
       "#include \"fleet/coordinator.hpp\"\n"
       "#include \"runner/json.hpp\"\n"},
  };
}

}  // namespace fleetlayers

TEST(EcclintLayering, FleetEdgesPass) {
  // The edges the fleet library and the fleetd tool actually use are all
  // declared, so the reduced DAG yields no findings.
  el::Config cfg;
  cfg.layers_text = fleetlayers::kLayers;
  EXPECT_TRUE(el::analyze(fleetlayers::fixture_tree(), cfg).empty());
}

TEST(EcclintLayering, FleetReachingIntoDramIsEL101) {
  // The fleet layer's design rule: DRAM generations are *names*, not a
  // dependency.  A stray include of src/dram must trip the boundary.
  el::Config cfg;
  cfg.layers_text = fleetlayers::kLayers;
  auto files = fleetlayers::fixture_tree();
  files.push_back({"src/fleet/model.cpp", "#include \"dram/spec.hpp\"\n"});
  const auto findings = el::analyze(files, cfg);
  ASSERT_TRUE(has_rule(findings, "EL101"));
  const auto f = std::find_if(
      findings.begin(), findings.end(),
      [](const el::Finding& x) { return x.rule == "EL101"; });
  EXPECT_EQ(f->file, "src/fleet/model.cpp");
  EXPECT_NE(f->message.find("fleet -> dram"), std::string::npos);
}

TEST(EcclintLayering, FleetBackEdgeFromFaultsIsEL101AndCycleIsEL102) {
  // faults including fleet is an undeclared edge (EL101); *declaring* it
  // would close a faults -> fleet -> faults loop, which the DAG check
  // rejects as EL102.
  el::Config cfg;
  cfg.layers_text = fleetlayers::kLayers;
  auto files = fleetlayers::fixture_tree();
  files.push_back(
      {"src/faults/mc_engine.cpp", "#include \"fleet/model.hpp\"\n"});
  EXPECT_TRUE(has_rule(el::analyze(files, cfg), "EL101"));

  cfg.layers_text =
      std::string(fleetlayers::kLayers) + "allow faults -> fleet\n";
  EXPECT_TRUE(has_rule(el::analyze({}, cfg), "EL102"));
}

// ---------------------------------------------------------------------------
// Schema family
// ---------------------------------------------------------------------------

TEST(EcclintSchema, MalformedSchemaIdIsEL201) {
  EXPECT_TRUE(has_rule(
      run_one("src/x/a.cpp", "const char* s = \"eccsim.BadName/1\";\n"),
      "EL201"));
  EXPECT_TRUE(has_rule(
      run_one("src/x/a.cpp", "const char* s = \"eccsim.noversion\";\n"),
      "EL201"));
  EXPECT_TRUE(has_rule(
      run_one("src/x/a.cpp", "const char* s = \"eccsim.foo/one\";\n"),
      "EL201"));
}

TEST(EcclintSchema, UndocumentedSchemaIdIsEL202) {
  el::Config cfg;
  cfg.schema_doc = "The heartbeat schema is `eccsim.heartbeat/1`.\n";
  EXPECT_TRUE(
      run_one("src/x/a.cpp", "doc.set(\"schema\", \"eccsim.heartbeat/1\");\n",
              cfg)
          .empty());
  EXPECT_TRUE(has_rule(
      run_one("src/x/a.cpp", "doc.set(\"schema\", \"eccsim.mystery/1\");\n",
              cfg),
      "EL202"));
}

TEST(EcclintSchema, VersionSplitAcrossFilesIsEL203) {
  const std::vector<el::SourceFile> files = {
      {"src/x/a.cpp", "const char* s = \"eccsim.foo/1\";\n"},
      {"src/x/b.cpp", "const char* s = \"eccsim.foo/2\";\n"},
  };
  const auto findings = el::analyze(files, {});
  ASSERT_TRUE(has_rule(findings, "EL203"));
}

TEST(EcclintSchema, KindConflictOnDottedPathIsEL204) {
  const std::string src =
      "void wire(Registry& reg) {\n"
      "  reg.counter(\"dram.acts\");\n"
      "  reg.accum(\"dram.acts\");\n"
      "}\n";
  EXPECT_TRUE(has_rule(run_one("src/x/a.cpp", src), "EL204"));

  const std::string consistent =
      "void wire(Registry& reg) {\n"
      "  reg.counter(\"dram.acts\");\n"
      "  reg.counter(\"dram.acts\");\n"
      "}\n";
  EXPECT_TRUE(run_one("src/x/a.cpp", consistent).empty());
}

TEST(EcclintSchema, UndocumentedFlagIsEL205) {
  const std::string src =
      "static const char kUsage[] = \"usage: tool [--help] [--count=N]\";\n"
      "void parse(const std::string& a) {\n"
      "  if (a == \"--count=\") {}\n"
      "  if (a == \"--frobnicate\") {}\n"
      "}\n";
  const auto findings = run_one("tools/mytool.cpp", src);
  ASSERT_TRUE(has_rule(findings, "EL205"));
  const auto f = std::find_if(
      findings.begin(), findings.end(),
      [](const el::Finding& x) { return x.rule == "EL205"; });
  // --count is documented; only --frobnicate is flagged; --help itself
  // is exempt.
  EXPECT_NE(f->message.find("--frobnicate"), std::string::npos);
  const std::vector<std::string> rules = rules_of(findings);
  EXPECT_EQ(std::count(rules.begin(), rules.end(), "EL205"), 1);
}

TEST(EcclintSchema, FlagPrefixDoesNotCountAsDocumentation) {
  // Help mentions --trace-in; that must not document the distinct flag
  // --trace.
  const std::string src =
      "static const char kUsage[] = \"usage: tool [--help] [--trace-in=F]\";\n"
      "void parse(const std::string& a) {\n"
      "  if (a == \"--trace-in=\") {}\n"
      "  if (a == \"--trace\") {}\n"
      "}\n";
  const std::vector<std::string> rules =
      rules_of(run_one("tools/mytool.cpp", src));
  ASSERT_EQ(std::count(rules.begin(), rules.end(), "EL205"), 1);
}

TEST(EcclintSchema, FilesWithoutHelpTextAreExemptFromEL205) {
  // A library-ish file under src/ parses flags but has no --help text:
  // EL205 only audits binaries (bench/, tools/) that advertise --help.
  const std::string src =
      "void parse(const std::string& a) { if (a == \"--quiet\") {} }\n";
  EXPECT_TRUE(run_one("src/x/a.cpp", src).empty());
  EXPECT_TRUE(run_one("tools/mytool.cpp", src).empty());
}

// ---------------------------------------------------------------------------
// Baseline ratchet
// ---------------------------------------------------------------------------

TEST(EcclintBaseline, CoveredFindingsAreNotFresh) {
  const el::Finding a{"src/x/a.cpp", 3, "EL002", "msg a"};
  const el::Finding b{"src/x/b.cpp", 9, "EL004", "msg b"};
  const std::string baseline =
      "# justification for b\n"
      "\n"
      "src/x/b.cpp [EL004] msg b\n";
  const el::BaselineOutcome out = el::apply_baseline({a, b}, baseline);
  ASSERT_EQ(out.fresh.size(), 1u);
  EXPECT_EQ(out.fresh[0].key(), a.key());
  EXPECT_TRUE(out.stale.empty());
}

TEST(EcclintBaseline, LineNumbersDoNotChurnTheKey) {
  // The same finding moved by an edit above it still matches its entry.
  const el::Finding moved{"src/x/b.cpp", 57, "EL004", "msg b"};
  const el::BaselineOutcome out =
      el::apply_baseline({moved}, "src/x/b.cpp [EL004] msg b\n");
  EXPECT_TRUE(out.fresh.empty());
  EXPECT_TRUE(out.stale.empty());
}

TEST(EcclintBaseline, FixedFindingsGoStale) {
  const el::BaselineOutcome out =
      el::apply_baseline({}, "src/x/gone.cpp [EL001] fixed long ago\n");
  EXPECT_TRUE(out.fresh.empty());
  ASSERT_EQ(out.stale.size(), 1u);
  EXPECT_EQ(out.stale[0], "src/x/gone.cpp [EL001] fixed long ago");
}

TEST(EcclintBaseline, RenderRoundTrips) {
  const el::Finding a{"src/x/a.cpp", 3, "EL002", "msg a"};
  const std::string rendered = el::render_baseline({a});
  const el::BaselineOutcome out = el::apply_baseline({a}, rendered);
  EXPECT_TRUE(out.fresh.empty());
  EXPECT_TRUE(out.stale.empty());
}

// ---------------------------------------------------------------------------
// Catalog / output format
// ---------------------------------------------------------------------------

TEST(EcclintCatalog, EveryEmittedRuleIsCataloged) {
  std::vector<std::string> ids;
  for (const el::RuleInfo& r : el::rule_catalog()) ids.emplace_back(r.id);
  for (const char* id : {"EL000", "EL001", "EL002", "EL003", "EL004", "EL101",
                         "EL102", "EL201", "EL202", "EL203", "EL204",
                         "EL205"}) {
    EXPECT_NE(std::find(ids.begin(), ids.end(), id), ids.end()) << id;
  }
}

TEST(EcclintCatalog, FindingFormatsAreMachineReadable) {
  const el::Finding f{"src/x/a.cpp", 12, "EL001", "the message"};
  EXPECT_EQ(f.str(), "src/x/a.cpp:12: [EL001] the message");
  EXPECT_EQ(f.key(), "src/x/a.cpp [EL001] the message");
}

}  // namespace
