// Tests for the .ecctrace container: codec round-trips, framing and CRC
// rejection of corrupted files, seekability, replay equivalence, and the
// seed contract that makes recorded traces interchangeable with the
// paper-sweep stimulus.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "runner/runner.hpp"
#include "trace/source.hpp"
#include "trace/workload.hpp"
#include "tracefile/codec.hpp"
#include "tracefile/crc32.hpp"
#include "tracefile/reader.hpp"
#include "tracefile/replay.hpp"
#include "tracefile/writer.hpp"

namespace eccsim::tracefile {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), {});
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::vector<PreOp> random_pre_ops(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<PreOp> ops(n);
  for (auto& rec : ops) {
    rec.core = static_cast<std::uint32_t>(rng() % 8);
    rec.op.line = rng();  // full 64-bit range: the codec must wrap deltas
    rec.op.gap = static_cast<std::uint32_t>(rng() % 10'000);
    rec.op.is_write = (rng() & 1) != 0;
  }
  return ops;
}

std::vector<PostOp> random_post_ops(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<PostOp> ops(n);
  std::uint64_t cycle = 0;
  for (auto& rec : ops) {
    cycle += rng() % 50;
    rec.cycle = cycle;
    rec.addr.channel = static_cast<std::uint32_t>(rng() % 256);
    rec.addr.rank = static_cast<std::uint32_t>(rng() % 256);
    rec.addr.bank = static_cast<std::uint32_t>(rng() % 256);
    rec.addr.row = rng() % (1ULL << 24);
    rec.addr.col = static_cast<std::uint32_t>(rng() % (1ULL << 16));
    rec.is_write = (rng() & 1) != 0;
    rec.line_class = static_cast<dram::LineClass>(rng() % 4);
  }
  return ops;
}

void expect_pre_eq(const PreOp& a, const PreOp& b) {
  EXPECT_EQ(a.core, b.core);
  EXPECT_EQ(a.op.line, b.op.line);
  EXPECT_EQ(a.op.gap, b.op.gap);
  EXPECT_EQ(a.op.is_write, b.op.is_write);
}

TEST(Codec, PreChunkRoundTrip) {
  const auto ops = random_pre_ops(1000, 1);
  const std::string payload = encode_pre_chunk(ops);
  std::vector<PreOp> back;
  decode_pre_chunk(reinterpret_cast<const unsigned char*>(payload.data()),
                   payload.size(), static_cast<std::uint32_t>(ops.size()),
                   back);
  ASSERT_EQ(back.size(), ops.size());
  for (std::size_t i = 0; i < ops.size(); ++i) expect_pre_eq(ops[i], back[i]);
}

TEST(Codec, PostChunkRoundTrip) {
  const auto ops = random_post_ops(1000, 2);
  const std::string payload = encode_post_chunk(ops);
  std::vector<PostOp> back;
  decode_post_chunk(reinterpret_cast<const unsigned char*>(payload.data()),
                    payload.size(), static_cast<std::uint32_t>(ops.size()),
                    back);
  ASSERT_EQ(back.size(), ops.size());
  for (std::size_t i = 0; i < ops.size(); ++i) {
    EXPECT_EQ(ops[i].cycle, back[i].cycle);
    EXPECT_EQ(ops[i].addr, back[i].addr);
    EXPECT_EQ(ops[i].is_write, back[i].is_write);
    EXPECT_EQ(ops[i].line_class, back[i].line_class);
  }
}

TEST(Codec, PackAddressRejectsOutOfRange) {
  dram::DramAddress a;
  a.col = 1u << 16;
  EXPECT_THROW(pack_address(a), TraceError);
  a = {};
  a.row = 1ULL << 24;
  EXPECT_THROW(pack_address(a), TraceError);
  a = {};
  a.channel = 256;
  EXPECT_THROW(pack_address(a), TraceError);
  a = {};
  a.channel = 3;
  a.rank = 1;
  a.bank = 7;
  a.row = (1ULL << 24) - 1;
  a.col = 65535;
  EXPECT_EQ(unpack_address(pack_address(a)), a);
}

TEST(Codec, DecodeRejectsTrailingBytes) {
  const auto ops = random_pre_ops(10, 3);
  std::string payload = encode_pre_chunk(ops);
  payload.push_back('\0');
  std::vector<PreOp> back;
  EXPECT_THROW(
      decode_pre_chunk(reinterpret_cast<const unsigned char*>(payload.data()),
                       payload.size(), 10, back),
      TraceError);
}

// Property: for a spread of chunk sizes (including 1 and exact-boundary
// counts), writing any op sequence and reading it back is the identity.
TEST(WriterReader, RoundTripAcrossChunkSizes) {
  for (const std::size_t ops_per_chunk : {std::size_t{1}, std::size_t{7},
                                          std::size_t{256}}) {
    for (const std::size_t count : {std::size_t{0}, std::size_t{1},
                                    std::size_t{256}, std::size_t{1000}}) {
      const std::string path = temp_path("rt.ecctrace");
      const auto ops = random_pre_ops(count, count * 31 + ops_per_chunk);
      TraceMeta meta;
      meta.point = CapturePoint::kPreLlc;
      meta.cores = 8;
      meta.seed = 42;
      meta.workload = "mcf";
      {
        TraceWriter writer(path, meta, ops_per_chunk);
        for (const auto& rec : ops) writer.append(rec.op, rec.core);
        writer.close();
      }
      TraceReader reader(path);
      EXPECT_EQ(reader.meta().workload, "mcf");
      EXPECT_EQ(reader.meta().cores, 8u);
      EXPECT_EQ(reader.meta().seed, 42u);
      EXPECT_EQ(reader.total_ops(), count);
      PreOp rec;
      std::size_t i = 0;
      while (reader.next(rec)) {
        ASSERT_LT(i, ops.size());
        expect_pre_eq(ops[i], rec);
        ++i;
      }
      EXPECT_EQ(i, count);
      std::remove(path.c_str());
    }
  }
}

TEST(WriterReader, PostRoundTrip) {
  const std::string path = temp_path("post.ecctrace");
  const auto ops = random_post_ops(777, 4);
  TraceMeta meta;
  meta.point = CapturePoint::kPostLlc;
  meta.cores = 8;
  meta.workload = "lbm";
  {
    TraceWriter writer(path, meta, 100);
    for (const auto& rec : ops) writer.append(rec);
    writer.close();
  }
  TraceReader reader(path);
  PostOp rec;
  std::size_t i = 0;
  while (reader.next(rec)) {
    ASSERT_LT(i, ops.size());
    EXPECT_EQ(ops[i].cycle, rec.cycle);
    EXPECT_EQ(ops[i].addr, rec.addr);
    ++i;
  }
  EXPECT_EQ(i, ops.size());
  std::remove(path.c_str());
}

TEST(WriterReader, PointMismatchThrows) {
  const std::string path = temp_path("mismatch.ecctrace");
  TraceMeta meta;
  meta.point = CapturePoint::kPreLlc;
  meta.workload = "mcf";
  TraceWriter writer(path, meta);
  EXPECT_THROW(writer.append(PostOp{}), TraceError);
  writer.close();
  std::remove(path.c_str());
}

TEST(WriterReader, SeekChunkIsExact) {
  const std::string path = temp_path("seek.ecctrace");
  const auto ops = random_pre_ops(1000, 5);
  TraceMeta meta;
  meta.point = CapturePoint::kPreLlc;
  meta.workload = "mcf";
  {
    TraceWriter writer(path, meta, 64);
    for (const auto& rec : ops) writer.append(rec.op, rec.core);
    writer.close();
  }
  TraceReader reader(path);
  ASSERT_EQ(reader.chunk_count(), (1000 + 63) / 64);
  // Jump to an arbitrary chunk: the stream must continue exactly at op
  // index chunk*64 (per-chunk delta reset makes this possible).
  for (const std::size_t chunk : {std::size_t{0}, std::size_t{7},
                                  std::size_t{15}}) {
    reader.seek_chunk(chunk);
    PreOp rec;
    ASSERT_TRUE(reader.next(rec));
    expect_pre_eq(ops[chunk * 64], rec);
  }
  reader.seek_chunk(reader.chunk_count());  // end-of-trace position
  PreOp rec;
  EXPECT_FALSE(reader.next(rec));
  EXPECT_THROW(reader.seek_chunk(reader.chunk_count() + 1), TraceError);
  std::remove(path.c_str());
}

// Any truncation must be rejected -- either at open (broken framing) or at
// the latest by validate_file's deep scan.  Never a crash or a silent
// short read.
TEST(Corruption, TruncationDetectedAtEveryLength) {
  const std::string path = temp_path("trunc_src.ecctrace");
  const auto ops = random_pre_ops(2000, 6);
  TraceMeta meta;
  meta.point = CapturePoint::kPreLlc;
  meta.workload = "mcf";
  {
    TraceWriter writer(path, meta, 128);
    for (const auto& rec : ops) writer.append(rec.op, rec.core);
    writer.close();
  }
  const std::string bytes = read_file(path);
  ASSERT_GT(bytes.size(), 100u);
  const std::string tpath = temp_path("trunc.ecctrace");
  for (std::size_t len = 0; len < bytes.size(); len += 97) {
    write_file(tpath, bytes.substr(0, len));
    const ValidateResult res = validate_file(tpath);
    EXPECT_FALSE(res.ok) << "truncation to " << len << " bytes accepted";
    EXPECT_FALSE(res.error.empty());
  }
  std::remove(path.c_str());
  std::remove(tpath.c_str());
}

// Single-bit-flip fuzz: every header, framing, payload, and footer byte is
// covered by a CRC or a structural check, so any flip must be detected.
TEST(Corruption, BitFlipsDetectedEverywhere) {
  const std::string path = temp_path("flip_src.ecctrace");
  const auto ops = random_pre_ops(500, 7);
  TraceMeta meta;
  meta.point = CapturePoint::kPreLlc;
  meta.workload = "streamcluster";
  {
    TraceWriter writer(path, meta, 64);
    for (const auto& rec : ops) writer.append(rec.op, rec.core);
    writer.close();
  }
  const std::string bytes = read_file(path);
  const std::string fpath = temp_path("flip.ecctrace");
  std::mt19937_64 rng(8);
  for (std::size_t trial = 0; trial < 400; ++trial) {
    const std::size_t pos = rng() % bytes.size();
    const int bit = static_cast<int>(rng() % 8);
    std::string corrupted = bytes;
    corrupted[pos] = static_cast<char>(corrupted[pos] ^ (1 << bit));
    write_file(fpath, corrupted);
    const ValidateResult res = validate_file(fpath);
    EXPECT_FALSE(res.ok) << "flip of bit " << bit << " at byte " << pos
                         << " accepted";
  }
  std::remove(path.c_str());
  std::remove(fpath.c_str());
}

TEST(Corruption, BadMagicRejected) {
  const std::string path = temp_path("magic.ecctrace");
  write_file(path, "NOTTRACExxxxxxxxxxxxxxxxxxxxxxxxxxxx");
  const ValidateResult res = validate_file(path);
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.error.find("magic"), std::string::npos);
  EXPECT_THROW(TraceReader reader(path), TraceError);
  std::remove(path.c_str());
}

TEST(Corruption, UnsupportedVersionRejected) {
  const std::string path = temp_path("version_src.ecctrace");
  TraceMeta meta;
  meta.point = CapturePoint::kPreLlc;
  meta.workload = "mcf";
  {
    TraceWriter writer(path, meta);
    writer.close();
  }
  std::string bytes = read_file(path);
  // Patch version (u32 at offset 8, after the magic) to 99 and re-sign the
  // header so only the version check can reject it.
  bytes[8] = 99;
  const std::size_t name_len = meta.workload.size();
  const std::size_t crc_off = 8 + 4 + 4 + 4 + 8 + 4 + name_len;
  const std::uint32_t crc = crc32(bytes.data(), crc_off);
  for (int i = 0; i < 4; ++i) {
    bytes[crc_off + static_cast<std::size_t>(i)] =
        static_cast<char>((crc >> (8 * i)) & 0xFF);
  }
  const std::string vpath = temp_path("version.ecctrace");
  write_file(vpath, bytes);
  const ValidateResult res = validate_file(vpath);
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.error.find("version"), std::string::npos);
  std::remove(path.c_str());
  std::remove(vpath.c_str());
}

// The replay source must reproduce the generators exactly, independent of
// the order cores are polled in (the per-core demux guarantee).
TEST(Replay, MatchesSyntheticInAnyPullOrder) {
  const std::string path = temp_path("replay.ecctrace");
  const auto& desc = trace::workload_by_name("canneal");
  const std::uint64_t seed = trace::paper_sweep_seed("canneal");
  record_workload_trace(desc, 4, 500, seed, path);

  ReplaySource replay(path);
  trace::SyntheticSource synth(desc, 4, seed);
  EXPECT_EQ(replay.cores(), 4u);
  EXPECT_EQ(replay.workload().name, "canneal");
  // Scrambled, uneven pull order across cores.
  std::mt19937_64 rng(9);
  std::vector<std::uint64_t> pulled(4, 0);
  for (int i = 0; i < 1500; ++i) {
    const unsigned core = static_cast<unsigned>(rng() % 4);
    if (pulled[core] >= 500) continue;
    const trace::MemOp a = replay.next(core);
    const trace::MemOp b = synth.next(core);
    EXPECT_EQ(a.line, b.line);
    EXPECT_EQ(a.gap, b.gap);
    EXPECT_EQ(a.is_write, b.is_write);
    ++pulled[core];
  }
  std::remove(path.c_str());
}

TEST(Replay, ExhaustedTraceThrows) {
  const std::string path = temp_path("short.ecctrace");
  const auto& desc = trace::workload_by_name("mcf");
  record_workload_trace(desc, 2, 10, 1, path);
  ReplaySource replay(path);
  for (int i = 0; i < 10; ++i) (void)replay.next(0);
  EXPECT_THROW(replay.next(0), TraceError);
  EXPECT_EQ(replay.ops_replayed(), 10u);
  std::remove(path.c_str());
}

TEST(Replay, RejectsPostLlcTrace) {
  const std::string path = temp_path("postonly.ecctrace");
  TraceMeta meta;
  meta.point = CapturePoint::kPostLlc;
  meta.workload = "mcf";
  {
    TraceWriter writer(path, meta);
    writer.append(PostOp{});
    writer.close();
  }
  EXPECT_THROW(ReplaySource replay(path), TraceError);
  std::remove(path.c_str());
}

TEST(Replay, RejectsCoreBeyondHeader) {
  const std::string path = temp_path("coverflow.ecctrace");
  record_workload_trace(trace::workload_by_name("mcf"), 2, 5, 1, path);
  ReplaySource replay(path);
  EXPECT_THROW(replay.next(2), TraceError);
  std::remove(path.c_str());
}

TEST(Recording, TeePassesThroughAndProducesReplayableFile) {
  const std::string path = temp_path("tee.ecctrace");
  const auto& desc = trace::workload_by_name("lbm");
  RecordingSource rec(std::make_unique<trace::SyntheticSource>(desc, 2, 11),
                      path, 11);
  trace::SyntheticSource reference(desc, 2, 11);
  std::vector<trace::MemOp> seen;
  for (int i = 0; i < 300; ++i) {
    const unsigned core = static_cast<unsigned>(i % 2);
    const trace::MemOp a = rec.next(core);
    const trace::MemOp b = reference.next(core);
    EXPECT_EQ(a.line, b.line);  // the tee must not perturb the stream
    seen.push_back(a);
  }
  rec.writer().close();
  ReplaySource replay(path);
  for (int i = 0; i < 300; ++i) {
    const trace::MemOp a = replay.next(static_cast<unsigned>(i % 2));
    EXPECT_EQ(a.line, seen[static_cast<std::size_t>(i)].line);
  }
  std::remove(path.c_str());
}

// The contract that makes traces interchangeable with live sweep stimulus:
// trace::paper_sweep_seed must equal the runner substream the bench sweep
// assigns to each workload (root seed 1, substream = workload index).
TEST(Seeds, PaperSweepSeedMatchesRunnerSubstream) {
  const auto& workloads = trace::paper_workloads();
  for (std::size_t wi = 0; wi < workloads.size(); ++wi) {
    EXPECT_EQ(trace::paper_sweep_seed(wi), runner::substream_seed(1, wi))
        << "workload index " << wi;
    EXPECT_EQ(trace::paper_sweep_seed(workloads[wi].name),
              trace::paper_sweep_seed(wi));
  }
}

TEST(Source, SyntheticMatchesRawGenerators) {
  const auto& desc = trace::workload_by_name("milc");
  trace::SyntheticSource source(desc, 8, 77);
  std::vector<trace::CoreGenerator> gens;
  for (unsigned c = 0; c < 8; ++c) gens.emplace_back(desc, c, 8, 77);
  for (int i = 0; i < 500; ++i) {
    for (unsigned c = 0; c < 8; ++c) {
      const trace::MemOp a = source.next(c);
      const trace::MemOp b = gens[c].next();
      EXPECT_EQ(a.line, b.line);
      EXPECT_EQ(a.gap, b.gap);
      EXPECT_EQ(a.is_write, b.is_write);
    }
  }
}

}  // namespace
}  // namespace eccsim::tracefile
