# Empty compiler generated dependencies file for sec6d_undetected.
# This may be replaced when dependencies are built.
