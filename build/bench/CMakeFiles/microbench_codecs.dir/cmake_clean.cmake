file(REMOVE_RECURSE
  "CMakeFiles/microbench_codecs.dir/microbench_codecs.cpp.o"
  "CMakeFiles/microbench_codecs.dir/microbench_codecs.cpp.o.d"
  "microbench_codecs"
  "microbench_codecs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microbench_codecs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
