// JSON encoding of the observability layer (stats::Registry and the
// scoped profiler) into the runner's Json document model.
//
// Lives in the runner -- not in src/stats -- because the stats library
// sits below every simulation component while the Json model sits above
// them (ecc_runner links ecc_sim links ecc_stats); encoding here keeps
// the dependency graph acyclic.  The Tracer writes its own JSON.
#pragma once

#include "runner/json.hpp"
#include "stats/scope.hpp"
#include "stats/stats.hpp"

namespace eccsim::runner {

/// Encodes one registry: epoch marks, every stat (kind, final value,
/// epoch-delta series for sampled kinds, summary/bins for distributions
/// and histograms), and the derived series.  The registry should be
/// finalized first; gauge values read 0.0 otherwise.
Json to_json(const stats::Registry& reg);

/// Encodes a profiler snapshot: per-scope call counts and total seconds,
/// sorted by scope name.
Json profile_to_json(
    const std::vector<std::pair<std::string, stats::ScopeTotals>>& snapshot);

}  // namespace eccsim::runner
