file(REMOVE_RECURSE
  "CMakeFiles/ecc_gf.dir/gf.cpp.o"
  "CMakeFiles/ecc_gf.dir/gf.cpp.o.d"
  "CMakeFiles/ecc_gf.dir/rs.cpp.o"
  "CMakeFiles/ecc_gf.dir/rs.cpp.o.d"
  "libecc_gf.a"
  "libecc_gf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecc_gf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
