// Self-test binary for the verification layer (docs/VERIFICATION.md).
//
// Runs every invariant checker -- address-map bijection, parity-layout
// group/channel-disjointness, Fig. 6 health-table discipline, RS codec
// round-trips under random corruption -- and exits nonzero if any check
// fails.  `--full` raises the sample counts (CI uses the default).
#include <cstdio>
#include <cstring>

#include "check/invariants.hpp"

int main(int argc, char** argv) {
  bool thorough = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) {
      thorough = true;
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      thorough = false;
    } else {
      std::fprintf(stderr, "usage: %s [--quick|--full]\n", argv[0]);
      return 2;
    }
  }

  const eccsim::check::CheckResult res = eccsim::check::check_all(thorough);
  std::printf("%s: %llu checks, %zu failure(s)\n", res.name.c_str(),
              static_cast<unsigned long long>(res.checks),
              res.failures.size());
  for (const auto& f : res.failures) {
    std::printf("  FAIL %s\n", f.c_str());
  }
  return res.ok() ? 0 : 1;
}
