#include "obs/run_info.hpp"

#include <unistd.h>

#include <cstring>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <thread>

namespace eccsim::obs {

namespace {

/// Finds the repository's HEAD commit by walking up from `start` to the
/// first directory containing `.git`, then resolving one level of
/// `ref:` indirection (loose ref file, falling back to packed-refs).
std::string discover_git_sha(const std::filesystem::path& start) {
  namespace fs = std::filesystem;
  std::error_code ec;
  for (fs::path dir = fs::absolute(start, ec); !dir.empty();
       dir = dir.parent_path()) {
    const fs::path git = dir / ".git";
    if (!fs::exists(git, ec)) {
      if (dir == dir.parent_path()) break;
      continue;
    }
    std::ifstream head(git / "HEAD");
    std::string line;
    if (!head || !std::getline(head, line)) return "unknown";
    constexpr const char* kRefPrefix = "ref: ";
    if (line.rfind(kRefPrefix, 0) != 0) return line;  // detached HEAD
    const std::string ref = line.substr(std::strlen(kRefPrefix));
    std::ifstream loose(git / ref);
    std::string sha;
    if (loose && std::getline(loose, sha) && !sha.empty()) return sha;
    // Ref not loose: scan packed-refs for "<sha> <ref>".
    std::ifstream packed(git / "packed-refs");
    while (packed && std::getline(packed, line)) {
      if (line.size() > ref.size() + 41 && line[0] != '#' &&
          line.compare(line.size() - ref.size(), ref.size(), ref) == 0 &&
          line[40] == ' ') {
        return line.substr(0, 40);
      }
    }
    return "unknown";
  }
  return "unknown";
}

}  // namespace

std::string git_head_sha() {
  return discover_git_sha(std::filesystem::current_path());
}

std::string hostname() {
  char buf[256] = {};
  if (gethostname(buf, sizeof buf - 1) != 0 || buf[0] == '\0') {
    return "unknown";
  }
  return buf;
}

unsigned cpu_count() {
  const unsigned n = std::thread::hardware_concurrency();
  return n > 0 ? n : 1;
}

std::string utc_timestamp() {
  const std::time_t now = std::time(nullptr);
  std::tm tm{};
  gmtime_r(&now, &tm);
  char buf[32];
  std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

double monotonic_seconds() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

}  // namespace eccsim::obs
