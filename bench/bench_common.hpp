// Shared infrastructure for the figure/table reproducers.
//
// Figures 9-17 all consume the same sweep: every workload x every scheme at
// one system scale.  The sweep's cells are independent, so they fan out
// over the work-stealing runner (src/runner) -- thread count comes from
// RUNNER_THREADS (default: all cores) and results are bit-identical at any
// thread count because every cell owns its simulator and draws its
// workload stimulus from a per-workload RNG substream of the root seed.
//
// The sweep is lazily computed and cached as CSV under bench_results/, so
// the first figure binary pays the simulation cost and the rest load
// instantly.  Delete bench_results/ (or set ECCSIM_SWEEP_CACHE=0) to force
// re-simulation.  Fidelity knobs:
//   ECCSIM_QUICK=1  fast, lower-fidelity pass (200k instructions/cell)
//   ECCSIM_SMOKE=1  CI-sized pass (50k instructions/cell); outputs are
//                   redirected to bench_results/smoke/ and results/smoke/
//                   so they never clobber the committed full-fidelity CSVs
//
// Besides the stdout table and bench_results/<name>.csv, every emit() also
// writes machine-readable results/<name>.json (table + run metadata), and
// each freshly simulated sweep writes results/sweep_<scale>.json with
// per-cell metrics, timings, and the realized parallel speedup.  Every run
// additionally writes results/<bench>.manifest.json (git SHA, DRAM
// generation, host, timings, exit status; docs/OBSERVABILITY.md) and, with
// --stats, an OpenMetrics results/<bench>.prom export.
#pragma once

#include <string>
#include <vector>

#include "common/table.hpp"
#include "dram/spec.hpp"
#include "ecc/scheme.hpp"
#include "faults/mc_engine.hpp"
#include "runner/runner.hpp"
#include "sim/system.hpp"
#include "trace/workload.hpp"

namespace eccsim::bench {

/// Parses the standard bench flags and installs the end-of-run profile
/// report (wall-clock + peak RSS on stderr; scripts/run_all.sh parses it).
/// Flags:
///   --stats           enable the observability layer (= ECCSIM_STATS=1):
///                     per-cell stat registries, epoch time series, a
///                     results/<bench>.stats.json dump, and a summary table
///   --stats-epoch=N   epoch length in memory cycles (implies --stats)
///   --trace=DIR       Chrome trace-event files, one per sweep cell, in DIR
///                     (loadable in Perfetto / chrome://tracing)
///   --smoke / --quick CI-sized / reduced fidelity (= ECCSIM_SMOKE/QUICK=1)
///   --dram G          DRAM generation: ddr3 (default), ddr4, or ddr5
///                     (= ECCSIM_DRAM).  Non-DDR3 runs write their sweep
///                     cache and outputs under generation-suffixed paths so
///                     the committed DDR3 CSVs are never clobbered.
///   --mc-systems N       Monte Carlo system budget override
///   --mc-chunk N         MC systems per chunk (results identical for any)
///   --mc-target-rel-ci X stop MC runs once the relative 95% CI reaches X
///   --mc-checkpoint F    chunk-granular MC checkpoint/resume file
///   --list-workloads  print the 16 paper workloads and exit
///   --trace-in DIR    replay sweep stimulus from DIR's .ecctrace files
///                     (= ECCSIM_TRACE_IN; bypasses the sweep CSV cache)
///   --trace-out DIR   record each cell's stimulus to
///                     DIR/<workload>_<scheme>.ecctrace (= ECCSIM_TRACE_OUT)
///   --trace-point P   'pre' (replayable per-core stream, default) or
///                     'post' (DRAM request stream) (= ECCSIM_TRACE_POINT)
///   --status FILE     publish live progress snapshots to FILE as atomically
///                     replaced JSON (= ECCSIM_STATUS; see src/obs and
///                     `benchtool watch`)
///   --progress        live stderr progress line with throughput/ETA/rel-CI
///                     (= ECCSIM_PROGRESS=1)
/// Valued flags accept both `--flag value` and `--flag=value` and map to
/// their ECCSIM_* environment equivalents.  Call first in main(); unknown
/// flags exit with code 2 and point at --help, which documents every flag
/// and environment variable.
void init(int argc, char** argv);

/// Monte Carlo engine knobs assembled from the --mc-* flags (or their
/// ECCSIM_MC_* environment equivalents).  With --stats, the returned
/// options carry a registry so the engine's mc.* counters and rel-CI
/// series land in results/<bench>.stats.json.
faults::McOptions mc_options();

/// Monte Carlo system budget: `full` scaled down by --quick / --smoke
/// (1/5 and 1/20, floor 200), or the --mc-systems override verbatim.
unsigned mc_systems(unsigned full);

/// Basename of the running binary ("bench" before init()).
const std::string& bench_name();

/// DRAM generation selected by --dram / ECCSIM_DRAM (DDR3 when unset).
/// Exits with code 2 on an unrecognized ECCSIM_DRAM value so scripts fail
/// loudly instead of silently benchmarking the wrong generation.
dram::Generation dram_generation();

/// Per-run stats collector for benches that build SystemSims directly
/// (the standard sweep() wires its own): nullptr when stats are off, so
/// callers can assign the result to SimOptions::stats unconditionally.
/// Owned by bench_common; everything handed out here is merged into
/// results/<bench>.stats.json (and its trace flushed) when the process
/// exits.  `workload`/`scheme` label the cell and name its trace file.
stats::Collector* new_collector(const std::string& workload,
                                const std::string& scheme);

/// Instructions per run (ECCSIM_QUICK / ECCSIM_SMOKE shrink it).
std::uint64_t target_instructions();

/// All (workload x scheme) results at one scale, cached on disk.
const std::vector<sim::RunResult>& sweep(ecc::SystemScale scale);

/// Finds one run in a sweep; throws if missing.
const sim::RunResult& find(const std::vector<sim::RunResult>& rows,
                           const std::string& scheme,
                           const std::string& workload);

/// Bin (1 or 2) of a workload, per Fig. 9's classification.
int bin_of(const std::string& workload);

/// Percent reduction of `ours` relative to `baseline` ((1 - ours/base)*100).
double reduction_pct(double baseline, double ours);

/// Prints the table, saves CSV under bench_results/<name>.csv, and saves
/// JSON (table cells + run metadata + elapsed wall-clock) under
/// results/<name>.json.  In smoke mode both land in .../smoke/ instead.
void emit(const std::string& name, const Table& table);

/// Workload names in presentation order (Bin1 first, then Bin2).
std::vector<std::string> workload_order();

/// Fans custom cells out over the runner with the standard stderr progress
/// line.  For ablations that sweep knobs other than (workload x scheme);
/// the standard sweep() already uses it internally.
runner::Report run_cells(const std::string& label,
                         const std::vector<runner::Cell>& cells);

}  // namespace eccsim::bench
