file(REMOVE_RECURSE
  "CMakeFiles/codec_linearity_test.dir/codec_linearity_test.cpp.o"
  "CMakeFiles/codec_linearity_test.dir/codec_linearity_test.cpp.o.d"
  "codec_linearity_test"
  "codec_linearity_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codec_linearity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
