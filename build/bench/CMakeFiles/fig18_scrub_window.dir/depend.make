# Empty dependencies file for fig18_scrub_window.
# This may be replaced when dependencies are built.
