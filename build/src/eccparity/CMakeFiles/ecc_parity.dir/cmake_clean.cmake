file(REMOVE_RECURSE
  "CMakeFiles/ecc_parity.dir/layout.cpp.o"
  "CMakeFiles/ecc_parity.dir/layout.cpp.o.d"
  "CMakeFiles/ecc_parity.dir/manager.cpp.o"
  "CMakeFiles/ecc_parity.dir/manager.cpp.o.d"
  "libecc_parity.a"
  "libecc_parity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecc_parity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
