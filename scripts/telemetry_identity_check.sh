#!/bin/sh
# Telemetry identity gate: observation must not perturb simulation.
#
# Usage: ./scripts/telemetry_identity_check.sh [fig10_epi_quad] [tracetool]
#   defaults: build/bench/fig10_epi_quad, build/tools/tracetool
#
# The observability layer (heartbeat snapshots, run manifests, --stats
# counters, OpenMetrics export) is strictly observation-only: enabling
# all of it must leave every simulated result bit-identical.  This script
# proves that two ways:
#   1. Runs the fig10 smoke sweep twice -- telemetry fully off, then with
#      --stats, --status, and --progress all on -- and requires the sweep
#      CSV and the figure CSV to be byte-identical (a sibling of
#      scripts/ddr3_identity_check.sh, which gates the DRAM spec layer
#      the same way).
#   2. Re-records the committed golden traces with the heartbeat enabled
#      and checks them against traces/golden/SHA256SUMS.
# It also sanity-checks the telemetry side-channel itself: the status
# file must parse as a final snapshot and the manifest must say
# "completed".  ~20 s on a CI runner (two smoke sweeps).
set -e

bin=${1:-build/bench/fig10_epi_quad}
tool=${2:-build/tools/tracetool}
cd "$(dirname "$0")/.."
for b in "$bin" "$tool"; do
  if [ ! -x "$b" ]; then
    echo "usage: $0 [fig10_epi_quad] [tracetool]  ($b: not an executable)" >&2
    exit 2
  fi
done

work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT
mkdir -p "$work/off" "$work/on" "$work/traces"

sweep_csv=bench_results/sweep_quad_smoke.csv
fig_csv=bench_results/smoke/fig10_epi_quad.csv

echo "[telemetry-identity] smoke sweep with telemetry off" >&2
rm -f "$sweep_csv" "$fig_csv"
env -u ECCSIM_STATS -u ECCSIM_STATUS -u ECCSIM_PROGRESS -u ECCSIM_QUICK \
  -u ECCSIM_DRAM ECCSIM_SMOKE=1 "$bin" >/dev/null
cp "$sweep_csv" "$work/off/sweep.csv"
cp "$fig_csv" "$work/off/fig.csv"

echo "[telemetry-identity] smoke sweep with all telemetry on" >&2
rm -f "$sweep_csv" "$fig_csv"
env -u ECCSIM_QUICK -u ECCSIM_DRAM ECCSIM_SMOKE=1 ECCSIM_STATS=1 \
  ECCSIM_STATUS_INTERVAL_MS=0 \
  "$bin" --status "$work/status.json" --progress >/dev/null 2>"$work/on.err"
cp "$sweep_csv" "$work/on/sweep.csv"
cp "$fig_csv" "$work/on/fig.csv"

fail=0
for f in sweep.csv fig.csv; do
  if ! cmp -s "$work/off/$f" "$work/on/$f"; then
    echo "[telemetry-identity] FAIL: $f differs between telemetry on/off:" >&2
    diff "$work/off/$f" "$work/on/$f" >&2 || true
    fail=1
  fi
done
if [ "$fail" != 0 ]; then
  echo "[telemetry-identity] (the observability contract is that stats and" >&2
  echo "[telemetry-identity]  heartbeats never feed back into simulation;" >&2
  echo "[telemetry-identity]  see docs/OBSERVABILITY.md)" >&2
  exit 1
fi

# The telemetry itself must have materialized: a final heartbeat snapshot
# and a completed manifest.
grep -q '"schema": "eccsim.heartbeat/1"' "$work/status.json"
grep -q '"final": true' "$work/status.json"
manifest=results/smoke/fig10_epi_quad.manifest.json
grep -q '"status": "completed"' "$manifest"
[ -s results/smoke/fig10_epi_quad.prom ]

echo "[telemetry-identity] re-recording golden traces with heartbeat on" >&2
for f in traces/golden/*.ecctrace; do
  wl=$(basename "$f" .ecctrace)
  env ECCSIM_STATUS="$work/trace_status.json" ECCSIM_STATUS_INTERVAL_MS=0 \
    "$tool" record --workload "$wl" --cores 2 --ops-per-core 512 \
    --out "$work/traces/" >/dev/null
done
cp traces/golden/SHA256SUMS "$work/traces/SHA256SUMS"
if ! (cd "$work/traces" && sha256sum -c SHA256SUMS) >&2; then
  echo "[telemetry-identity] FAIL: golden traces drift with heartbeat on" >&2
  exit 1
fi

echo "[telemetry-identity] OK (telemetry-on results are byte-identical)" >&2
