# Empty dependencies file for fig08_eol_correction_fraction.
# This may be replaced when dependencies are built.
