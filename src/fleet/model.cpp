#include "fleet/model.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "common/units.hpp"
#include "faults/mc_engine.hpp"
#include "faults/montecarlo.hpp"
#include "runner/json.hpp"

namespace eccsim::fleet {

FleetModel::FleetModel(const FleetSpec& spec) : spec_(spec) {
  const std::string diag = validate(spec_);
  if (!diag.empty()) throw std::runtime_error(diag);
  for (const PoolSpec& p : spec_.pools) {
    const GenFaultParams gen = *gen_fault_params(p.dram);
    PoolRuntime rt;
    rt.shape.channels = p.channels;
    rt.shape.ranks_per_channel = p.ranks_per_channel;
    rt.shape.chips_per_rank = p.chips_per_rank;
    rt.shape.banks_per_rank = gen.banks_per_rank;
    // The vendor-average type split, scaled to the pool's speed-binned
    // per-chip rate and filtered by the generation's on-die ECC.
    rt.rates = faults::on_die_ecc_filter(
        faults::ddr3_vendor_average().scaled_to(p.fit_per_chip *
                                                p.speed_factor),
        gen.on_die_bit_coverage);
    rt.cls = *scheme_class(p.ecc);
    runtime_.push_back(rt);
    nodes_ += p.nodes;
    pool_end_.push_back(nodes_);
  }
}

std::size_t FleetModel::pool_of(std::uint64_t index) const {
  const auto it =
      std::upper_bound(pool_end_.begin(), pool_end_.end(), index);
  if (it == pool_end_.end()) {
    throw std::out_of_range("fleet: node index beyond the fleet");
  }
  return static_cast<std::size_t>(it - pool_end_.begin());
}

void FleetModel::node_fields(std::uint64_t index, Rng& rng,
                             double* fields) const {
  const PoolRuntime& rt = runtime_[pool_of(index)];
  const std::vector<faults::FaultEvent> events = faults::sample_lifetime(
      rt.shape, rt.rates, spec_.lifetime_hours, rng);

  double uncorrected = 0;
  double first_time = std::numeric_limits<double>::infinity();
  double downtime = 0;
  double hard = 0;

  // Live counter-saturating faults.  Page retirement absorbs
  // bit/word/row faults (Sec. III-C); column-and-larger faults are
  // permanent device damage.  For an isolated scheme the damage stays
  // exposed until the node's memory is swapped, so a second hard fault
  // in the same rank at *any* later time defeats it (the double-chipkill
  // overlap of the field studies).  A cross-parity scheme re-protects
  // each fault once the scrub pass materializes its correction bits, so
  // only faults inside one detection window of each other coincide
  // (Fig. 18) -- the window prune below applies to that class alone.
  // An uncorrected event crashes the node and its memory is replaced,
  // so the history resets.
  struct Live {
    double time;
    unsigned channel;
    unsigned rank;
  };
  std::vector<Live> live;
  for (const faults::FaultEvent& ev : events) {
    if (!faults::saturates_error_counter(ev.type)) continue;
    hard += 1;
    if (rt.cls == SchemeClass::kCrossParity) {
      std::erase_if(live, [&](const Live& l) {
        return l.time < ev.time_hours - spec_.window_hours;
      });
    }
    const bool coincides = std::any_of(
        live.begin(), live.end(), [&](const Live& l) {
          return rt.cls == SchemeClass::kIsolated
                     ? (l.channel == ev.channel && l.rank == ev.rank)
                     : (l.channel != ev.channel);
        });
    if (coincides) {
      uncorrected += 1;
      first_time = std::min(first_time, ev.time_hours);
      downtime +=
          std::min(spec_.repair.detect_hours + spec_.repair.repair_hours,
                   spec_.lifetime_hours - ev.time_hours);
      live.clear();
    } else {
      live.push_back({ev.time_hours, ev.channel, ev.rank});
    }
  }

  fields[kFieldEvents] = uncorrected;
  fields[kFieldFirstEvent] = first_time;
  fields[kFieldDowntime] = downtime;
  fields[kFieldHardFaults] = hard;
}

FleetAccumulator::FleetAccumulator(const FleetModel& model)
    : model_(&model), events_(kFleetReservoirCap) {
  for (const PoolSpec& p : model.spec().pools) {
    PoolResult r;
    r.name = p.name;
    r.nodes = p.nodes;
    pools_.push_back(std::move(r));
  }
}

void FleetAccumulator::add(std::uint64_t index, const double* fields) {
  const std::size_t pi = model_->pool_of(index);
  PoolResult& pool = pools_[pi];
  pool.uncorrected_events += fields[kFieldEvents];
  pool.hard_faults += fields[kFieldHardFaults];
  events_.add(fields[kFieldEvents],
              faults::mc_sample_key(model_->spec().seed,
                                    static_cast<unsigned>(index)));
  if (fields[kFieldEvents] > 0) {
    pool.nodes_with_events += 1;
    demands_.push_back({fields[kFieldFirstEvent], index});
    demand_pool_.push_back(pi);
    demand_repaired_downtime_.push_back(fields[kFieldDowntime]);
  }
}

FleetResult FleetAccumulator::finalize() const {
  const FleetSpec& spec = model_->spec();
  FleetResult r;
  r.name = spec.name;
  r.config_hash = config_hash(spec);
  r.nodes = model_->nodes();
  r.lifetime_hours = spec.lifetime_hours;
  r.pools = pools_;

  // Spare-pool depletion: failing nodes claim spares in the order their
  // first event occurred (ties break on node index, so the outcome is a
  // pure function of the merged field stream).  A node whose first event
  // finds the pool empty is lost for the remaining lifetime; every later
  // event on a repaired node reuses the same (already swapped-in) node.
  std::vector<std::size_t> order(demands_.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return demands_[a] < demands_[b];
  });
  const bool unlimited = spec.repair.spares < 0;
  const std::uint64_t spares =
      unlimited ? 0 : static_cast<std::uint64_t>(spec.repair.spares);
  std::uint64_t granted = 0;
  for (const std::size_t d : order) {
    PoolResult& pool = r.pools[demand_pool_[d]];
    if (unlimited || granted < spares) {
      ++granted;
      pool.downtime_hours += demand_repaired_downtime_[d];
    } else {
      pool.nodes_lost += 1;
      pool.downtime_hours += spec.lifetime_hours - demands_[d].first_time;
    }
  }

  for (const PoolResult& pool : r.pools) {
    r.uncorrected_events += pool.uncorrected_events;
    r.nodes_with_events += pool.nodes_with_events;
    r.nodes_lost += pool.nodes_lost;
    r.downtime_hours += pool.downtime_hours;
  }

  const double node_hours =
      static_cast<double>(r.nodes) * spec.lifetime_hours;
  r.annual_node_loss = static_cast<double>(r.nodes_lost) /
                       (spec.lifetime_hours / units::kHoursPerYear);
  r.availability =
      node_hours > 0 ? 1.0 - r.downtime_hours / node_hours : 1.0;
  // +inf when no downtime at all; the JSON writer renders that as null.
  r.availability_nines = -std::log10(1.0 - r.availability);

  r.events_p50 = events_.percentile(50);
  r.events_p99 = events_.percentile(99);
  r.events_p999 = events_.percentile(99.9);
  r.quantiles_exact = events_.exact();
  return r;
}

runner::Json result_to_json(const FleetResult& result) {
  runner::Json doc = runner::Json::object();
  doc.set("schema", "eccsim.fleet/1");
  doc.set("name", result.name);
  doc.set("config_hash", result.config_hash);
  doc.set("nodes", result.nodes);
  doc.set("lifetime_hours", result.lifetime_hours);
  doc.set("uncorrected_events", result.uncorrected_events);
  doc.set("nodes_with_events", result.nodes_with_events);
  doc.set("nodes_lost", result.nodes_lost);
  doc.set("downtime_hours", result.downtime_hours);
  doc.set("annual_node_loss", result.annual_node_loss);
  doc.set("availability", result.availability);
  doc.set("availability_nines", result.availability_nines);
  runner::Json quant = runner::Json::object();
  quant.set("p50", result.events_p50);
  quant.set("p99", result.events_p99);
  quant.set("p999", result.events_p999);
  quant.set("exact", result.quantiles_exact);
  doc.set("events_per_node", std::move(quant));
  runner::Json pools = runner::Json::array();
  for (const PoolResult& pool : result.pools) {
    runner::Json p = runner::Json::object();
    p.set("name", pool.name);
    p.set("nodes", pool.nodes);
    p.set("uncorrected_events", pool.uncorrected_events);
    p.set("nodes_with_events", pool.nodes_with_events);
    p.set("nodes_lost", pool.nodes_lost);
    p.set("downtime_hours", pool.downtime_hours);
    p.set("hard_faults", pool.hard_faults);
    pools.push_back(std::move(p));
  }
  doc.set("pools", std::move(pools));
  return doc;
}

}  // namespace eccsim::fleet
