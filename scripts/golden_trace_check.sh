#!/bin/sh
# Golden-trace determinism check for the .ecctrace subsystem.
#
# Usage: ./scripts/golden_trace_check.sh [path-to-tracetool]
#   default tracetool: build/tools/tracetool
#
# The traces under traces/golden/ are committed artifacts recorded with
#   tracetool record --workload <wl> --cores 2 --ops-per-core 512
# (paper sweep seed, see docs/TRACES.md).  This script re-records them
# from scratch and requires the fresh bytes to match the committed
# SHA-256 sums exactly -- any drift in the generators, the seed
# derivation, or the file format shows up as a hash mismatch.  It also
# runs `tracetool validate` over the committed files so a corrupted
# checkout is caught even if regeneration is skipped upstream.
set -e

tool=${1:-build/tools/tracetool}
cd "$(dirname "$0")/.."
if [ ! -x "$tool" ]; then
  echo "usage: $0 [path-to-tracetool]  ($tool: not an executable)" >&2
  exit 2
fi

work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

echo "[golden-trace] validating committed traces" >&2
for f in traces/golden/*.ecctrace; do
  "$tool" validate "$f" >/dev/null
done

echo "[golden-trace] checking committed bytes against SHA256SUMS" >&2
(cd traces/golden && sha256sum -c SHA256SUMS) >&2

echo "[golden-trace] re-recording from the synthetic generators" >&2
for f in traces/golden/*.ecctrace; do
  wl=$(basename "$f" .ecctrace)
  "$tool" record --workload "$wl" --cores 2 --ops-per-core 512 \
    --out "$work/" >/dev/null
done

cp traces/golden/SHA256SUMS "$work/SHA256SUMS"
if ! (cd "$work" && sha256sum -c SHA256SUMS) >&2; then
  echo "[golden-trace] FAIL: regenerated traces differ from traces/golden/" >&2
  echo "[golden-trace] (generator/seed/format drift -- see docs/TRACES.md)" >&2
  exit 1
fi
for f in traces/golden/*.ecctrace; do
  if ! cmp -s "$f" "$work/$(basename "$f")"; then
    echo "[golden-trace] FAIL: $(basename "$f") bytes differ" >&2
    exit 1
  fi
done
echo "[golden-trace] OK (recording is byte-reproducible)" >&2
