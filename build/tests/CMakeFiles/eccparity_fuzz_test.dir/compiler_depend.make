# Empty compiler generated dependencies file for eccparity_fuzz_test.
# This may be replaced when dependencies are built.
