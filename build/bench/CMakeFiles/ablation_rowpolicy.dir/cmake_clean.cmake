file(REMOVE_RECURSE
  "CMakeFiles/ablation_rowpolicy.dir/ablation_rowpolicy.cpp.o"
  "CMakeFiles/ablation_rowpolicy.dir/ablation_rowpolicy.cpp.o.d"
  "ablation_rowpolicy"
  "ablation_rowpolicy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_rowpolicy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
