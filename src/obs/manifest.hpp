// Run manifest: one JSON document per run recording everything needed to
// interpret (and re-run) the artifacts a bench or tool produced -- git
// SHA, DRAM generation, seed regime, thread count, host identity,
// start/end timestamps, and exit status.
//
// The bench front-end (bench::init) writes the manifest twice: once at
// startup with status "running" and once from its atexit hook with
// status "completed"/"failed" plus the final wall-clock and peak RSS.  A
// reader that finds a stale "running" manifest knows the process died
// without reaching its exit hook.  Writes go through atomic_write_file,
// so pollers never see a torn document.
//
// The Monte Carlo engine flags checkpoint restores via note_resumed(), so
// a kill/resume run's final manifest records `"resumed": true`.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace eccsim::runner {
class Json;
}

namespace eccsim::obs {

struct Manifest {
  std::string tool;                ///< binary name
  std::vector<std::string> args;   ///< command-line arguments (no argv[0])
  std::string git_sha;
  std::string dram;                ///< --dram generation ("ddr3", ...)
  std::string seed_regime;         ///< how stimulus seeds were derived
  unsigned threads = 0;            ///< worker thread count
  std::string host;
  unsigned host_cpus = 0;
  std::string started_utc;
  std::string finished_utc;        ///< "" while running
  double wall_seconds = 0.0;
  std::uint64_t peak_rss_bytes = 0;
  std::string status = "running";  ///< running -> completed | failed
  int exit_code = 0;
  bool resumed = false;            ///< restored MC chunks from a checkpoint
  /// Free-form extra fields (fidelity mode, trace dirs, ...).
  std::vector<std::pair<std::string, std::string>> extra;
};

runner::Json to_json(const Manifest& m);

/// Parses a manifest document previously produced by to_json; throws
/// std::runtime_error on malformed input.
Manifest manifest_from_json(const runner::Json& doc);

/// Atomically writes `m` to `path` (creating parent directories).
bool write_manifest(const std::string& path, const Manifest& m);

/// The process-global manifest that bench::init and the tools fill in and
/// write at startup/exit.  Not thread-safe; mutate from the main thread
/// only (worker threads use the note_* helpers below).
Manifest& manifest();

/// Records that this run restored state from a checkpoint (sets
/// manifest().resumed).  Safe to call from worker threads.
void note_resumed();

/// Records a non-zero exit decided mid-run, so the atexit manifest write
/// reports "failed" with this code.  Safe to call from worker threads.
void note_exit_code(int code);

}  // namespace eccsim::obs
