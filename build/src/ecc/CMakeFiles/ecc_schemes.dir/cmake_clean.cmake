file(REMOVE_RECURSE
  "CMakeFiles/ecc_schemes.dir/codec.cpp.o"
  "CMakeFiles/ecc_schemes.dir/codec.cpp.o.d"
  "CMakeFiles/ecc_schemes.dir/lotecc5_rs16.cpp.o"
  "CMakeFiles/ecc_schemes.dir/lotecc5_rs16.cpp.o.d"
  "CMakeFiles/ecc_schemes.dir/multiecc.cpp.o"
  "CMakeFiles/ecc_schemes.dir/multiecc.cpp.o.d"
  "CMakeFiles/ecc_schemes.dir/scheme.cpp.o"
  "CMakeFiles/ecc_schemes.dir/scheme.cpp.o.d"
  "libecc_schemes.a"
  "libecc_schemes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecc_schemes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
