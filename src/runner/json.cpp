#include "runner/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstring>

namespace eccsim::runner {

namespace {

[[noreturn]] void type_error(const char* want) {
  throw std::runtime_error(std::string("Json: value is not ") + want);
}

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          // All remaining control characters (C0 set) must be \u-escaped;
          // go through unsigned char so %x never sees a sign-extended int.
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;  // UTF-8 passes through byte-wise
        }
    }
  }
  out += '"';
}

void append_number(std::string& out, double d) {
  if (!std::isfinite(d)) {
    out += "null";  // JSON has no Inf/NaN; null is the least-bad encoding
    return;
  }
  if (d == std::floor(d) && std::fabs(d) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", d);
    out += buf;
    return;
  }
  // %.17g round-trips every finite double.
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", d);
  out += buf;
}

/// Recursive-descent parser over a raw byte buffer.
class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  Json parse_document() {
    Json v = parse_value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("Json::parse: " + why + " at byte " +
                             std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t n = std::strlen(lit);
    if (s_.compare(pos_, n, lit) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  Json parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't':
        if (consume_literal("true")) return Json(true);
        fail("bad literal");
      case 'f':
        if (consume_literal("false")) return Json(false);
        fail("bad literal");
      case 'n':
        if (consume_literal("null")) return Json(nullptr);
        fail("bad literal");
      default: return parse_number();
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= s_.size()) fail("unterminated string");
      const char c = s_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) fail("unterminated escape");
      const char e = s_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > s_.size()) fail("short \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // Encode the code point as UTF-8 (surrogate pairs are passed
          // through unpaired; the runner never emits them).
          if (cp < 0x80) {
            out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    const std::string tok = s_.substr(start, pos_ - start);
    try {
      std::size_t used = 0;
      const double d = std::stod(tok, &used);
      if (used != tok.size()) throw std::invalid_argument(tok);
      return Json(d);
    } catch (const std::exception&) {
      pos_ = start;
      fail("malformed number '" + tok + "'");
    }
  }

  Json parse_array() {
    expect('[');
    Json arr = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    for (;;) {
      arr.push_back(parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') return arr;
      if (c != ',') fail("expected ',' or ']'");
    }
  }

  Json parse_object() {
    expect('{');
    Json obj = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.set(key, parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') return obj;
      if (c != ',') fail("expected ',' or '}'");
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::array() {
  Json j;
  j.type_ = Type::kArray;
  return j;
}

Json Json::object() {
  Json j;
  j.type_ = Type::kObject;
  return j;
}

bool Json::as_bool() const {
  if (type_ != Type::kBool) type_error("a bool");
  return bool_;
}

double Json::as_number() const {
  if (type_ != Type::kNumber) type_error("a number");
  return num_;
}

const std::string& Json::as_string() const {
  if (type_ != Type::kString) type_error("a string");
  return str_;
}

const std::vector<Json>& Json::items() const {
  if (type_ != Type::kArray) type_error("an array");
  return arr_;
}

const std::vector<std::pair<std::string, Json>>& Json::members() const {
  if (type_ != Type::kObject) type_error("an object");
  return obj_;
}

void Json::push_back(Json v) {
  if (type_ != Type::kArray) type_error("an array");
  arr_.push_back(std::move(v));
}

void Json::set(const std::string& key, Json v) {
  if (type_ != Type::kObject) type_error("an object");
  for (auto& [k, existing] : obj_) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  obj_.emplace_back(key, std::move(v));
}

const Json& Json::at(const std::string& key) const {
  if (type_ != Type::kObject) type_error("an object");
  for (const auto& [k, v] : obj_) {
    if (k == key) return v;
  }
  throw std::out_of_range("Json: no member '" + key + "'");
}

bool Json::contains(const std::string& key) const {
  if (type_ != Type::kObject) return false;
  for (const auto& [k, v] : obj_) {
    if (k == key) return true;
  }
  return false;
}

std::size_t Json::size() const {
  if (type_ == Type::kArray) return arr_.size();
  if (type_ == Type::kObject) return obj_.size();
  return 0;
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  const auto newline = [&](int d) {
    if (indent > 0) {
      out += '\n';
      out.append(static_cast<std::size_t>(indent * d), ' ');
    }
  };
  switch (type_) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += bool_ ? "true" : "false"; break;
    case Type::kNumber: append_number(out, num_); break;
    case Type::kString: append_escaped(out, str_); break;
    case Type::kArray: {
      if (arr_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        if (i) out += ',';
        newline(depth + 1);
        arr_[i].dump_to(out, indent, depth + 1);
      }
      newline(depth);
      out += ']';
      break;
    }
    case Type::kObject: {
      if (obj_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      for (std::size_t i = 0; i < obj_.size(); ++i) {
        if (i) out += ',';
        newline(depth + 1);
        append_escaped(out, obj_[i].first);
        out += indent > 0 ? ": " : ":";
        obj_[i].second.dump_to(out, indent, depth + 1);
      }
      newline(depth);
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

Json Json::parse(const std::string& text) {
  return Parser(text).parse_document();
}

}  // namespace eccsim::runner
