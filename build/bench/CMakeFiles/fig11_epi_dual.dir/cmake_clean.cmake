file(REMOVE_RECURSE
  "CMakeFiles/fig11_epi_dual.dir/fig11_epi_dual.cpp.o"
  "CMakeFiles/fig11_epi_dual.dir/fig11_epi_dual.cpp.o.d"
  "fig11_epi_dual"
  "fig11_epi_dual.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_epi_dual.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
