// Flag handling of the shared bench front-end: unknown flags must be
// rejected with exit code 2 and a pointer at --help, --help and
// --list-workloads must succeed, and --trace-point must validate its
// value.  Death tests: init() terminates the process on these paths.
#include <gtest/gtest.h>

#include "bench_common.hpp"

namespace eccsim::bench {
namespace {

int run_init(std::vector<std::string> args) {
  args.insert(args.begin(), "bench_flags_test");
  std::vector<char*> argv;
  argv.reserve(args.size());
  for (auto& a : args) argv.push_back(a.data());
  init(static_cast<int>(argv.size()), argv.data());
  return 0;
}

using BenchFlagsDeathTest = ::testing::Test;

TEST(BenchFlagsDeathTest, UnknownFlagExitsWithUsageError) {
  EXPECT_EXIT(run_init({"--bogus"}), ::testing::ExitedWithCode(2),
              "unknown flag '--bogus'.*--help");
}

TEST(BenchFlagsDeathTest, UnknownFlagAfterValidFlagStillRejected) {
  EXPECT_EXIT(run_init({"--smoke", "--no-such-thing"}),
              ::testing::ExitedWithCode(2), "unknown flag");
}

TEST(BenchFlagsDeathTest, HelpExitsCleanly) {
  EXPECT_EXIT(run_init({"--help"}), ::testing::ExitedWithCode(0), "");
}

TEST(BenchFlagsDeathTest, ListWorkloadsExitsCleanly) {
  EXPECT_EXIT(run_init({"--list-workloads"}), ::testing::ExitedWithCode(0),
              "");
}

TEST(BenchFlagsDeathTest, MissingFlagValueRejected) {
  EXPECT_EXIT(run_init({"--mc-systems"}), ::testing::ExitedWithCode(2),
              "requires a value");
}

TEST(BenchFlagsDeathTest, BadTracePointRejected) {
  EXPECT_EXIT(run_init({"--trace-point", "sideways"}),
              ::testing::ExitedWithCode(2), "'pre' or 'post'");
}

TEST(BenchFlagsDeathTest, TracePointValuesAccepted) {
  // Valid trace points parse without touching the rejection paths; init()
  // returns normally, so the child must run to completion (exit 0).
  EXPECT_EXIT(
      {
        run_init({"--trace-point", "post"});
        std::exit(0);
      },
      ::testing::ExitedWithCode(0), "");
}

}  // namespace
}  // namespace eccsim::bench
