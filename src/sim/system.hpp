// Full-system performance/energy simulator (Sec. IV methodology).
//
// Pipeline per simulated memory-clock cycle (1 GHz):
//   1. The DRAM simulator advances; completed reads unblock waiting cores
//     and fill the LLC (128B-line schemes fill both 64B halves -- the
//     prefetch effect that lets commercial chipkill win on some
//     spatially-local workloads, Sec. V-C).
//   2. Each of the eight 2 GHz cores runs two CPU cycles: committing up to
//     `width` instructions, issuing its next memory operation when its
//     instruction gap elapses.  Reads that miss the LLC occupy one of the
//     core's MLP slots; a core with all slots full stalls -- this is the
//     latency feedback that turns DRAM contention into IPC loss.
//   3. LLC evictions expand into ECC-maintenance traffic per the scheme's
//     model (Sec. IV-C): dirty data -> memory write (+ an ECC/XOR
//     cacheline touch for tiered/parity schemes); dirty ECC line -> one
//     write; dirty XOR line -> parity read-modify-write (one read + one
//     write).
//
// The result captures exactly what Figs. 9-17 report: memory energy split
// into dynamic/background, performance (IPC), bandwidth utilization, and
// memory accesses (64B units) per instruction.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/cache.hpp"
#include "check/protocol_checker.hpp"
#include "dram/memory_system.hpp"
#include "ecc/scheme.hpp"
#include "eccparity/layout.hpp"
#include "stats/stats.hpp"
#include "stats/trace.hpp"
#include "trace/source.hpp"
#include "trace/workload.hpp"
#include "tracefile/replay.hpp"
#include "tracefile/writer.hpp"

namespace eccsim::sim {

/// Processor parameters (Table I).
struct CpuConfig {
  unsigned cores = 8;
  unsigned width = 2;             ///< commit width per core cycle
  unsigned cpu_cycles_per_mem_cycle = 2;  ///< 2 GHz cores, 1 GHz memory
  unsigned mlp = 4;               ///< outstanding read misses per core
};

/// Run-control knobs.
struct SimOptions {
  std::uint64_t target_instructions = 2'000'000;  ///< total across cores
  std::uint64_t max_mem_cycles = 20'000'000;      ///< safety stop
  std::uint64_t seed = 1;
  /// Banks recorded as faulty, for degraded-mode studies (steps B/D of
  /// Fig. 6).  Keys: (channel << 16) | (rank << 8) | bank.
  std::vector<std::uint32_t> faulty_banks;
  /// Rank power-down when idle (the Sec. IV-B close-page sleep policy);
  /// disable for the power-down ablation.
  bool powerdown_enabled = true;
  /// Row-buffer policy (the paper uses close-page; open-page is available
  /// for the row-policy ablation).
  dram::RowPolicy row_policy = dram::RowPolicy::kClosePage;
  /// DRAM generation to build the scheme's memory system on.  Unset means
  /// "consult the ECCSIM_DRAM environment variable (set by the bench
  /// front-end's --dram flag), else DDR3" -- the paper-faithful default.
  std::optional<dram::Generation> dram_gen;
  /// Demand-scrub injection: when nonzero, one extra scrub read is issued
  /// every this many memory cycles, sweeping addresses round-robin
  /// (Sec. VI-C's scrub-rate cost in performance/energy terms).
  std::uint64_t scrub_read_interval = 0;
  /// When nonzero, ECC/XOR cachelines live in a dedicated cache of this
  /// size instead of the LLC.  Multi-ECC [13] used a dedicated 128 KB ECC
  /// cache; the paper's methodology moves ECC lines into the 8 MB LLC
  /// (Sec. IV-C) -- this knob quantifies that choice.
  std::uint64_t dedicated_ecc_cache_bytes = 0;
  /// Attaches the independent DRAM protocol checker
  /// (check/protocol_checker.hpp) to every channel: each command the DRAM
  /// model issues is re-validated against the raw timing tables, and run()
  /// throws std::runtime_error with a full report if any violation was
  /// counted (in the checker's fatal mode a violation aborts immediately
  /// instead).  Observation only -- results are bit-identical.  Also
  /// enabled by setting the ECCSIM_CHECK environment variable to a value
  /// other than "0", which is how CI audits the benchmark sweeps.
  bool protocol_check = false;
  /// Replay stimulus from a recorded pre-LLC .ecctrace file instead of the
  /// synthetic generators.  The trace's workload name and core count must
  /// match this run's configuration (TraceError otherwise), and the trace
  /// must hold enough ops to cover warmup plus the measured phase -- a
  /// short trace throws rather than diverging.  With a trace recorded at
  /// the workload's canonical seed (trace::paper_sweep_seed), replay is
  /// bit-identical to live generation.
  std::string trace_in;
  /// Record this run's stimulus to an .ecctrace file at `trace_point`.
  /// Observation only: results are bit-identical with or without it.
  /// May be combined with trace_in (re-record a replay).
  std::string trace_out;
  /// Capture point for trace_out: kPreLlc records the per-core MemOp
  /// stream (replayable); kPostLlc records the DRAM request stream after
  /// LLC filtering and ECC expansion (analysis only -- it depends on the
  /// scheme and cannot be fed back in).
  tracefile::CapturePoint trace_point = tracefile::CapturePoint::kPreLlc;
  /// Observability sink for this run (optional).  When set and enabled,
  /// the simulator registers every component's stats in the collector's
  /// registry under stable dotted paths, samples the registry every
  /// Config::epoch_cycles memory cycles, and mirrors DRAM commands and
  /// ECC-parity slow-path events into the collector's tracer.
  /// Observation only: simulated results are bit-identical with or
  /// without it.  Must outlive run(); one collector per SystemSim.
  stats::Collector* stats = nullptr;
};

/// Everything a run produces.  Plain data: serialized to CSV by the bench
/// sweep cache and to JSON by runner::to_json(), so additions here should
/// be mirrored in both encoders.
struct RunResult {
  std::string scheme;             ///< ecc::SchemeDesc::name of the run
  std::string workload;           ///< trace::WorkloadDesc::name of the run
  std::uint64_t instructions = 0; ///< committed across all cores
  std::uint64_t mem_cycles = 0;   ///< measured-phase memory-clock cycles
  double ipc = 0;                ///< instructions per CPU cycle (all cores)
  dram::MemSystemStats mem;      ///< traffic, latency, and energy breakdown
  cache::Cache::Stats llc;       ///< LLC hits/misses/writebacks (post-warm)
  double epi_pj = 0;             ///< memory energy per instruction (pJ)
  double dynamic_epi_pj = 0;
  double background_epi_pj = 0;  ///< incl. refresh
  double mapi = 0;               ///< 64B memory accesses per instruction
  double bandwidth_utilization = 0;  ///< data-bus busy fraction (mean)
  double avg_read_latency = 0;
};

/// One workload on one memory system.
///
/// A SystemSim is fully self-contained -- it owns its DRAM model, caches,
/// cores, and RNG state (seeded from SimOptions::seed), and touches no
/// globals -- so independent instances may run concurrently on different
/// threads (the runner's fan-out relies on this).  A single instance is
/// not thread-safe and not reusable: construct, run() once, read the
/// result.
class SystemSim {
 public:
  /// Builds the system: DRAM channels per `scheme`'s organization, an
  /// 8 MB LLC (plus the optional dedicated ECC cache), the stimulus source
  /// for `workload` (synthetic generators, or .ecctrace replay/recording
  /// per SimOptions), and the ECC Parity layout when the scheme uses it.
  /// Throws std::invalid_argument if the scheme's memory-line size is not
  /// a 64B multiple, tracefile::TraceError on a bad or mismatched
  /// trace_in.
  SystemSim(const ecc::SchemeDesc& scheme, const trace::WorkloadDesc& workload,
            const CpuConfig& cpu = CpuConfig{},
            const SimOptions& opts = SimOptions{});

  /// Runs to completion and returns the metrics: warms the LLC to steady
  /// state (no timing side effects), simulates until
  /// SimOptions::target_instructions commit or max_mem_cycles elapse, then
  /// drains outstanding traffic so energy accounting is complete.
  /// Deterministic: equal configuration and seed give bit-identical
  /// results on every run and thread.
  RunResult run();

 private:
  struct Core {
    std::uint64_t committed = 0;
    std::uint32_t gap_remaining = 0;
    std::optional<trace::MemOp> waiting_op;  ///< op blocked on MLP/queue
    unsigned outstanding_reads = 0;
  };

  // Memory request plumbing -------------------------------------------------
  struct PendingReq {
    dram::DramAddress addr;
    bool is_write;
    dram::LineClass line_class;
    std::uint64_t id;
  };

  /// Converts a global 64B-line index to the scheme's memory-line index.
  std::uint64_t mem_line_of(std::uint64_t line64) const {
    return line64 / lines64_per_memline_;
  }

  void cpu_cycle();
  void core_cycle(unsigned c);
  /// Runs the LLC access for one op; returns false if the core must retry
  /// (MLP exhausted or request queue full).
  bool execute_op(unsigned c, const trace::MemOp& op);
  /// Handles an LLC eviction (and the ECC traffic it triggers).
  void process_eviction(std::uint64_t victim_addr, cache::LineKind kind);
  /// Demand read for a memory line; registers the waiting core (or none).
  bool request_read(std::uint64_t memline, int core);
  void send_or_queue(const PendingReq& req);
  void drain_pending();
  void handle_completions();

  // ECC traffic helpers -----------------------------------------------------
  /// The LLC key of the ECC/XOR cacheline covering a data memory line.
  std::uint64_t ecc_cacheline_key(std::uint64_t memline) const;
  /// The memory address of the ECC/parity line behind an ECC cacheline key.
  dram::DramAddress ecc_line_address(std::uint64_t key) const;
  bool bank_is_faulty(const dram::DramAddress& a) const;

  /// The cache holding ECC/XOR lines: the LLC itself, or the optional
  /// dedicated ECC cache.
  cache::Cache& ecc_cache() {
    return dedicated_ecc_cache_ ? *dedicated_ecc_cache_ : llc_;
  }

  // Observability (SimOptions::stats) ---------------------------------------
  /// Registers components in the collector's registry; no-op when stats
  /// are off, so the members below stay null and the hot paths pay one
  /// predictable branch.
  void attach_stats();
  /// Final epoch sample, gauge capture, and the derived per-channel
  /// bandwidth / EPI epoch series.
  void finalize_stats();

  /// Creates and attaches the per-channel protocol checkers when
  /// SimOptions::protocol_check or ECCSIM_CHECK asks for them.
  void attach_protocol_checkers();

  /// Builds the stimulus source per SimOptions: synthetic generators or
  /// .ecctrace replay, optionally tee'd through a pre-LLC recorder, plus
  /// the post-LLC writer when asked for.  Throws tracefile::TraceError on
  /// a bad/mismatched trace_in.
  void build_source(const trace::WorkloadDesc& workload);
  /// Flushes footers on any open trace writers; throws TraceError on I/O
  /// failure so a truncated recording cannot pass silently.
  void close_trace_outputs();

  ecc::SchemeDesc scheme_;
  CpuConfig cpu_;
  SimOptions opts_;
  /// One checker per channel (empty when checking is off).  Declared
  /// before mem_ so the observers strictly outlive the channels, which
  /// emit residual refresh commands from finalize().
  std::vector<std::unique_ptr<check::ProtocolChecker>> checkers_;
  dram::MemorySystem mem_;
  cache::Cache llc_;
  std::unique_ptr<cache::Cache> dedicated_ecc_cache_;
  std::vector<Core> cores_;
  /// Stimulus: one MemOp stream per core (synthetic, replay, or recording
  /// tee).  Owned here; never null after construction.
  std::unique_ptr<trace::TraceSource> source_;
  /// Non-owning view of source_ when it is a pre-LLC recording tee (for
  /// counters and the end-of-run close).
  tracefile::RecordingSource* recording_ = nullptr;
  /// Non-owning view of source_ when it is a replay (for counters).
  tracefile::ReplaySource* replay_ = nullptr;
  /// Post-LLC capture: every DRAM request send_or_queue accepts after
  /// warmup, in issue order.
  std::unique_ptr<tracefile::TraceWriter> post_writer_;
  std::optional<eccparity::ParityLayout> parity_layout_;

  std::uint32_t lines64_per_memline_;
  bool warmup_ = false;  ///< suppresses memory traffic during LLC warmup
  std::uint64_t next_id_ = 1;
  std::deque<PendingReq> pending_;
  // In-flight demand reads: memline -> cores waiting on it.
  std::unordered_map<std::uint64_t, std::vector<int>> mshr_;
  std::unordered_map<std::uint64_t, std::uint64_t> id_to_memline_;
  std::unordered_map<std::uint64_t, std::uint64_t> ecc_key_to_index_;
  std::vector<std::uint64_t> ecc_index_to_key_;

  // Observability state: all null/zero when SimOptions::stats is unset.
  stats::Registry* streg_ = nullptr;
  stats::Tracer* tracer_ = nullptr;
  stats::Counter* slow_path_hits_ = nullptr;
  std::uint32_t ecc_trace_tid_ = 0;
  std::uint64_t epoch_cycles_ = 0;
  std::uint64_t next_epoch_ = 0;
};

/// Convenience: run one (scheme, scale, workload) experiment -- the unit
/// of work the bench sweep fans out, one call per grid cell.
///
/// \param scheme         which Table II scheme to instantiate
/// \param scale          dual- or quad-channel-equivalent system sizing
/// \param workload_name  one of trace::paper_workloads() (throws
///                       std::out_of_range if unknown)
/// \param opts           run-control knobs; opts.seed selects the
///                       workload-stimulus RNG stream
RunResult run_experiment(ecc::SchemeId scheme, ecc::SystemScale scale,
                         const std::string& workload_name,
                         const SimOptions& opts = SimOptions{});

}  // namespace eccsim::sim
