# Empty compiler generated dependencies file for ecc_trace.
# This may be replaced when dependencies are built.
