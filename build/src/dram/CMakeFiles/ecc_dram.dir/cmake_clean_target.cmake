file(REMOVE_RECURSE
  "libecc_dram.a"
)
