file(REMOVE_RECURSE
  "libecc_cache.a"
)
