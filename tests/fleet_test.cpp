// Tests for src/fleet: spec round-trip and config-hash stability, the
// pinned generation/scheme tables, the per-node failure model under a
// high-FIT stress spec, shard planning, byte-identity of the sharded
// coordinator (in-process and worker-process), and the fleetd service
// (cache hits via the per-request manifest flag, concurrent clients,
// queue backpressure).
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "dram/spec.hpp"
#include "ecc/scheme.hpp"
#include "faults/mc_engine.hpp"
#include "fleet/coordinator.hpp"
#include "fleet/model.hpp"
#include "fleet/service.hpp"
#include "fleet/spec.hpp"
#include "obs/manifest.hpp"
#include "runner/json.hpp"

namespace eccsim::fleet {
namespace {

/// A small heterogeneous fleet with FIT rates cranked high enough that
/// coincident hard faults are common, so every code path (events, spare
/// depletion, both scheme classes) is exercised with a few hundred nodes.
FleetSpec stress_spec() {
  FleetSpec spec;
  spec.name = "stress";
  spec.seed = 99;
  spec.lifetime_hours = 5 * 8766.0;
  spec.window_hours = 72.0;
  spec.repair.spares = 3;
  PoolSpec a;
  a.name = "isolated";
  a.nodes = 300;
  a.dram = "ddr3";
  a.ecc = "chipkill36";
  a.channels = 4;
  a.ranks_per_channel = 2;
  a.chips_per_rank = 36;
  a.fit_per_chip = 20000.0;
  PoolSpec b;
  b.name = "parity";
  b.nodes = 200;
  b.dram = "ddr5";
  b.ecc = "raim+parity";
  b.channels = 8;
  b.ranks_per_channel = 2;
  b.chips_per_rank = 10;
  b.fit_per_chip = 20000.0;
  b.speed_factor = 1.5;
  spec.pools = {a, b};
  return spec;
}

/// stress_spec() shrunk for the service tests, renamed so each test's
/// jobs hash (and cache) independently.
FleetSpec tiny_spec(const std::string& name) {
  FleetSpec spec = stress_spec();
  spec.name = name;
  spec.scale_nodes(10);
  return spec;
}

std::string dump_of(const FleetResult& result) {
  return result_to_json(result).dump(2);
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// Value of `key` among a manifest's extra pairs, or "" when absent.
std::string manifest_extra(const std::string& path, const std::string& key) {
  const obs::Manifest m =
      obs::manifest_from_json(runner::Json::parse(slurp(path)));
  for (const auto& [k, v] : m.extra) {
    if (k == key) return v;
  }
  return "";
}

// ---------------------------------------------------------------------------
// Spec, hash, and the pinned tables
// ---------------------------------------------------------------------------

TEST(FleetSpec, JsonRoundTripPreservesEverything) {
  const FleetSpec spec = stress_spec();
  const FleetSpec back = spec_from_json(to_json(spec));
  EXPECT_EQ(to_json(back).dump(0), to_json(spec).dump(0));
  EXPECT_EQ(config_hash(back), config_hash(spec));
  EXPECT_EQ(back.total_nodes(), 500u);
  EXPECT_EQ(validate(back), "");
}

TEST(FleetSpec, HashIgnoresFieldOrderAndDefaulting) {
  // The same fleet written three ways: canonical, reordered, and with
  // every defaultable field omitted.  All must hash identically, because
  // the service's cache key must not depend on how the client spelled
  // the document.
  const std::string canonical =
      "{\"name\":\"n\",\"seed\":2014,\"pools\":[{\"name\":\"p\","
      "\"nodes\":10,\"dram\":\"ddr3\",\"ecc\":\"lotecc5+parity\","
      "\"channels\":8,\"ranks_per_channel\":4,\"chips_per_rank\":9,"
      "\"fit_per_chip\":44.0,\"speed_factor\":1.0}]}";
  const std::string reordered =
      "{\"pools\":[{\"fit_per_chip\":44.0,\"nodes\":10,\"name\":\"p\","
      "\"dram\":\"ddr3\",\"speed_factor\":1.0,\"chips_per_rank\":9,"
      "\"channels\":8,\"ranks_per_channel\":4,\"ecc\":\"lotecc5+parity\"}],"
      "\"seed\":2014,\"name\":\"n\"}";
  const std::string defaulted =
      "{\"name\":\"n\",\"pools\":[{\"name\":\"p\",\"nodes\":10}]}";
  const std::string h =
      config_hash(spec_from_json(runner::Json::parse(canonical)));
  EXPECT_EQ(config_hash(spec_from_json(runner::Json::parse(reordered))), h);
  EXPECT_EQ(config_hash(spec_from_json(runner::Json::parse(defaulted))), h);
}

TEST(FleetSpec, UnknownMembersThrow) {
  EXPECT_THROW(spec_from_json(runner::Json::parse(
                   "{\"pools\":[],\"sede\":1}")),
               std::runtime_error);
  EXPECT_THROW(spec_from_json(runner::Json::parse(
                   "{\"pools\":[{\"name\":\"p\",\"nodes\":1,"
                   "\"chanels\":8}]}")),
               std::runtime_error);
  EXPECT_THROW(spec_from_json(runner::Json::parse("[1,2]")),
               std::runtime_error);
}

TEST(FleetSpec, ValidateDiagnosesBadFleets) {
  FleetSpec spec = stress_spec();
  spec.pools.clear();
  EXPECT_NE(validate(spec), "");

  spec = stress_spec();
  spec.pools[0].dram = "lpddr4";
  EXPECT_NE(validate(spec).find("unknown dram"), std::string::npos);

  spec = stress_spec();
  spec.pools[0].ecc = "tripleecc";
  EXPECT_NE(validate(spec).find("unknown ecc"), std::string::npos);

  spec = stress_spec();
  spec.pools[1].channels = 1;  // cross-channel parity needs >= 2
  EXPECT_NE(validate(spec).find("channels"), std::string::npos);

  spec = stress_spec();
  spec.pools[0].nodes = 0;
  EXPECT_NE(validate(spec), "");
}

TEST(FleetSpec, GenFaultParamsMatchTheDramLayer) {
  // src/fleet deliberately does not include src/dram (layers.txt); this
  // pin is what keeps its private generation table honest.
  using dram::DeviceWidth;
  using dram::Generation;
  const struct {
    const char* name;
    Generation gen;
  } gens[] = {{"ddr3", Generation::kDdr3},
              {"ddr4", Generation::kDdr4},
              {"ddr5", Generation::kDdr5}};
  for (const auto& g : gens) {
    const auto params = gen_fault_params(g.name);
    ASSERT_TRUE(params.has_value()) << g.name;
    const dram::DramSpec ds = dram::spec_for(g.gen, DeviceWidth::kX8);
    EXPECT_EQ(params->banks_per_rank, ds.banks) << g.name;
    EXPECT_EQ(params->on_die_bit_coverage, ds.on_die_ecc.bit_fault_coverage)
        << g.name;
  }
  EXPECT_FALSE(gen_fault_params("lpddr4").has_value());
}

TEST(FleetSpec, SchemeClassCoversEveryTableIIScheme) {
  for (const ecc::SchemeId id : ecc::all_schemes()) {
    const std::string name = ecc::to_string(id);
    const auto cls = scheme_class(name);
    ASSERT_TRUE(cls.has_value()) << name;
    // The + parity variants are exactly the cross-channel class.
    EXPECT_EQ(cls == SchemeClass::kCrossParity,
              name.find("+parity") != std::string::npos)
        << name;
  }
  EXPECT_FALSE(scheme_class("secded").has_value());
}

// ---------------------------------------------------------------------------
// Model and accumulator
// ---------------------------------------------------------------------------

TEST(FleetModel, PoolLayoutIsContiguous) {
  const FleetModel model(stress_spec());
  EXPECT_EQ(model.nodes(), 500u);
  EXPECT_EQ(model.pool_of(0), 0u);
  EXPECT_EQ(model.pool_of(299), 0u);
  EXPECT_EQ(model.pool_of(300), 1u);
  EXPECT_EQ(model.pool_of(499), 1u);
  EXPECT_THROW(model.pool_of(500), std::out_of_range);
}

TEST(FleetModel, StressFleetProducesConsistentMetrics) {
  const FleetSpec spec = stress_spec();
  Coordinator coordinator(spec);
  RunOptions opts;
  opts.threads = 2;
  opts.chunk_size = 64;
  const FleetResult r = coordinator.run(opts);

  EXPECT_EQ(r.nodes, 500u);
  EXPECT_EQ(r.config_hash, config_hash(spec));
  // At 20k FIT/chip both pools see plenty of hard faults and events.
  EXPECT_GT(r.pools[0].hard_faults, 0.0);
  EXPECT_GT(r.pools[1].hard_faults, 0.0);
  EXPECT_GT(r.nodes_with_events, 0u);
  EXPECT_GT(r.uncorrected_events, 0.0);
  // Each failing node demands exactly one replacement, so depletion is
  // exact: everyone past the 3 spares is lost.
  ASSERT_GT(r.nodes_with_events, 3u);
  EXPECT_EQ(r.nodes_lost, r.nodes_with_events - 3u);
  EXPECT_GT(r.annual_node_loss, 0.0);
  EXPECT_GT(r.availability, 0.0);
  EXPECT_LT(r.availability, 1.0);
  EXPECT_GT(r.availability_nines, 0.0);
  // 500 nodes fit the reservoir exhaustively.
  EXPECT_TRUE(r.quantiles_exact);
  EXPECT_LE(r.events_p50, r.events_p99);
  EXPECT_LE(r.events_p99, r.events_p999);
}

// ---------------------------------------------------------------------------
// Sharded coordinator
// ---------------------------------------------------------------------------

TEST(FleetCoordinator, ShardPlanIsContiguousAndComplete) {
  for (const unsigned shards : {1u, 2u, 3u, 8u, 64u}) {
    const std::vector<WorkUnit> plan = shard_plan(17, shards);
    ASSERT_EQ(plan.size(), shards);
    std::uint64_t next = 0;
    for (const WorkUnit& u : plan) {
      EXPECT_EQ(u.chunk_lo, next);
      EXPECT_LE(u.chunk_lo, u.chunk_hi);
      next = u.chunk_hi;
    }
    EXPECT_EQ(next, 17u);
  }
  EXPECT_TRUE(shard_plan(0, 4)[3].chunk_lo == 0);
}

TEST(FleetCoordinator, MergedResultIsByteIdenticalAcrossShardCounts) {
  Coordinator coordinator(stress_spec());
  RunOptions base;
  base.chunk_size = 64;
  base.shards = 1;
  base.threads = 1;
  const std::string reference = dump_of(coordinator.run(base));
  for (const unsigned shards : {2u, 8u}) {
    RunOptions opts = base;
    opts.shards = shards;
    opts.threads = 4;
    EXPECT_EQ(dump_of(coordinator.run(opts)), reference) << shards;
  }
  // A different chunk size re-buckets the envelope but must not change
  // the merged stream.
  RunOptions rechunk = base;
  rechunk.chunk_size = 17;
  rechunk.shards = 3;
  EXPECT_EQ(dump_of(coordinator.run(rechunk)), reference);
}

TEST(FleetCoordinator, WorkUnitEnvelopeRoundTrips) {
  FleetSpec spec = tiny_spec("envelope");
  const FleetModel model(spec);
  const unsigned chunk_size = 16;
  const std::uint64_t nchunks = fleet_chunk_count(model.nodes(), chunk_size);
  ASSERT_GT(nchunks, 1u);
  std::ostringstream blob;
  compute_unit(model, 0, nchunks, chunk_size, blob);

  std::istringstream in(blob.str());
  const auto chunks = faults::mc_checkpoint_load(
      in, fleet_run_identity(spec, chunk_size), nchunks,
      [&](std::uint64_t ci) {
        return fleet_chunk_nodes(model.nodes(), chunk_size, ci);
      },
      kNodeFields);
  ASSERT_EQ(chunks.size(), nchunks);

  // Replaying the loaded chunks through the accumulator reproduces the
  // coordinator's result exactly -- the worker data path in miniature.
  FleetAccumulator acc(model);
  std::uint64_t node = 0;
  for (std::uint64_t ci = 0; ci < nchunks; ++ci) {
    const std::vector<double>& fields = chunks.at(ci);
    const unsigned count = fleet_chunk_nodes(model.nodes(), chunk_size, ci);
    ASSERT_EQ(fields.size(), count * kNodeFields);
    for (unsigned i = 0; i < count; ++i, ++node) {
      acc.add(node, fields.data() + i * kNodeFields);
    }
  }
  Coordinator coordinator(spec);
  RunOptions opts;
  opts.chunk_size = chunk_size;
  EXPECT_EQ(dump_of(acc.finalize()), dump_of(coordinator.run(opts)));
}

TEST(FleetCoordinator, MismatchedSpecNeverMatchesTheEnvelope) {
  FleetSpec spec = tiny_spec("envelope-a");
  const FleetModel model(spec);
  const unsigned chunk_size = 16;
  const std::uint64_t nchunks = fleet_chunk_count(model.nodes(), chunk_size);
  std::ostringstream blob;
  compute_unit(model, 0, nchunks, chunk_size, blob);

  FleetSpec other = spec;
  other.pools[0].fit_per_chip += 1.0;  // any spec change re-keys the run
  std::istringstream in(blob.str());
  const auto chunks = faults::mc_checkpoint_load(
      in, fleet_run_identity(other, chunk_size), nchunks,
      [&](std::uint64_t ci) {
        return fleet_chunk_nodes(model.nodes(), chunk_size, ci);
      },
      kNodeFields);
  EXPECT_TRUE(chunks.empty());
}

#ifdef ECCSIM_FLEETD_BINARY
TEST(FleetCoordinator, WorkerProcessesMatchInProcess) {
  const FleetSpec spec = tiny_spec("worker-identity");
  Coordinator coordinator(spec);
  RunOptions in_process;
  in_process.chunk_size = 16;
  in_process.shards = 3;
  in_process.threads = 2;
  const std::string reference = dump_of(coordinator.run(in_process));

  RunOptions worker;
  worker.mode = RunOptions::Mode::kWorkerProcess;
  worker.chunk_size = 16;
  worker.shards = 3;
  worker.worker_binary = ECCSIM_FLEETD_BINARY;
  worker.work_dir = testing::TempDir() + "/fleet_worker_units";
  EXPECT_EQ(dump_of(coordinator.run(worker)), reference);
}
#endif

// ---------------------------------------------------------------------------
// Service
// ---------------------------------------------------------------------------

runner::Json submit_request(const FleetSpec& spec, bool wait) {
  runner::Json req = make_request("submit");
  req.set("spec", to_json(spec));
  if (wait) req.set("wait", true);
  return req;
}

TEST(FleetService, RepeatedSubmitIsACacheHitWithoutResimulation) {
  const std::string dir = testing::TempDir() + "/fleet_svc_cache";
  std::filesystem::remove_all(dir);
  ServiceOptions opts;
  opts.socket_path = dir + ".sock";
  opts.results_dir = dir;
  Service service(opts);
  service.start();

  const FleetSpec spec = tiny_spec("cache-test");
  const runner::Json first =
      fleet_request(opts.socket_path, submit_request(spec, /*wait=*/true));
  ASSERT_TRUE(first.at("ok").as_bool()) << first.dump(0);
  EXPECT_FALSE(first.at("cache_hit").as_bool());
  EXPECT_EQ(first.at("state").as_string(), "done");
  EXPECT_EQ(first.at("hash").as_string(), config_hash(spec));

  // Same fleet, different spelling: defaults omitted where possible.
  const FleetSpec respelled = spec_from_json(to_json(spec));
  const runner::Json second =
      fleet_request(opts.socket_path, submit_request(respelled, false));
  ASSERT_TRUE(second.at("ok").as_bool());
  EXPECT_TRUE(second.at("cache_hit").as_bool());
  EXPECT_EQ(second.at("state").as_string(), "cached");

  // The per-request manifests record the miss then the hit -- the
  // "answered from cache without re-simulation" acceptance flag.
  EXPECT_EQ(manifest_extra(dir + "/manifests/req-1.json", "cache_hit"),
            "false");
  EXPECT_EQ(manifest_extra(dir + "/manifests/req-2.json", "cache_hit"),
            "true");
  EXPECT_EQ(manifest_extra(dir + "/manifests/req-2.json", "config_hash"),
            config_hash(spec));

  // The results op inlines the cached document byte for byte.
  runner::Json results = make_request("results");
  results.set("hash", config_hash(spec));
  const runner::Json inlined = fleet_request(opts.socket_path, results);
  ASSERT_TRUE(inlined.at("ok").as_bool());
  EXPECT_EQ(inlined.at("result").dump(2) + "\n",
            slurp(dir + "/cache/" + config_hash(spec) + ".json"));

  runner::Json status = make_request("status");
  status.set("hash", config_hash(spec));
  EXPECT_EQ(fleet_request(opts.socket_path, status).at("state").as_string(),
            "cached");
  service.stop();
}

TEST(FleetService, ServesConcurrentClients) {
  const std::string dir = testing::TempDir() + "/fleet_svc_concurrent";
  std::filesystem::remove_all(dir);
  ServiceOptions opts;
  opts.socket_path = dir + ".sock";
  opts.results_dir = dir;
  Service service(opts);
  service.start();

  // Two clients submit the same fleet concurrently, both blocking on
  // completion; a third probes liveness while the job runs.  Every
  // session must get a well-formed answer.
  const FleetSpec spec = tiny_spec("concurrent-test");
  runner::Json r1, r2, r3;
  std::thread c1([&] {
    r1 = fleet_request(opts.socket_path, submit_request(spec, true));
  });
  std::thread c2([&] {
    r2 = fleet_request(opts.socket_path, submit_request(spec, true));
  });
  std::thread c3([&] {
    r3 = fleet_request(opts.socket_path, make_request("ping"));
  });
  c1.join();
  c2.join();
  c3.join();
  EXPECT_TRUE(r1.at("ok").as_bool()) << r1.dump(0);
  EXPECT_TRUE(r2.at("ok").as_bool()) << r2.dump(0);
  EXPECT_TRUE(r3.at("ok").as_bool()) << r3.dump(0);
  // Both submits resolve to the same finished job whatever interleaving
  // occurred (done from the queue, or cached if the other finished
  // first); the job ran at most... exactly once: one cache file exists.
  for (const runner::Json* r : {&r1, &r2}) {
    const std::string state = r->at("state").as_string();
    EXPECT_TRUE(state == "done" || state == "cached") << r->dump(0);
  }
  EXPECT_TRUE(std::filesystem::exists(dir + "/cache/" + config_hash(spec) +
                                      ".json"));
  EXPECT_EQ(service.requests_served(), 3u);
  service.stop();
}

TEST(FleetService, BoundedQueueRejectsWithRetryable) {
  const std::string dir = testing::TempDir() + "/fleet_svc_queue";
  std::filesystem::remove_all(dir);
  // Stall every job so the one-slot queue can be filled deterministically.
  ::setenv("ECCSIM_FLEET_JOB_DELAY_MS", "500", 1);
  ServiceOptions opts;
  opts.socket_path = dir + ".sock";
  opts.results_dir = dir;
  opts.queue_capacity = 1;
  Service service(opts);
  service.start();

  const runner::Json a =
      fleet_request(opts.socket_path, submit_request(tiny_spec("qa"), false));
  ASSERT_TRUE(a.at("ok").as_bool());
  // Wait until the executor has picked job A up (freeing the queue slot).
  runner::Json status = make_request("status");
  status.set("hash", a.at("hash").as_string());
  for (int i = 0; i < 200; ++i) {
    const runner::Json s = fleet_request(opts.socket_path, status);
    if (s.at("state").as_string() != "queued") break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  const runner::Json b =
      fleet_request(opts.socket_path, submit_request(tiny_spec("qb"), false));
  ASSERT_TRUE(b.at("ok").as_bool());
  EXPECT_EQ(b.at("state").as_string(), "queued");

  // Queue full: B holds the only slot while A stalls in the executor.
  const runner::Json c =
      fleet_request(opts.socket_path, submit_request(tiny_spec("qc"), false));
  EXPECT_FALSE(c.at("ok").as_bool());
  EXPECT_NE(c.at("error").as_string().find("queue full"), std::string::npos);
  EXPECT_TRUE(c.at("retryable").as_bool());
  ::unsetenv("ECCSIM_FLEET_JOB_DELAY_MS");
  service.stop();
}

TEST(FleetService, RejectsMalformedRequests) {
  const std::string dir = testing::TempDir() + "/fleet_svc_reject";
  std::filesystem::remove_all(dir);
  ServiceOptions opts;
  opts.socket_path = dir + ".sock";
  opts.results_dir = dir;
  Service service(opts);
  service.start();

  runner::Json bad = runner::Json::object();
  bad.set("op", "submit");  // no eccsim.fleetreq/1 envelope
  EXPECT_FALSE(fleet_request(opts.socket_path, bad).at("ok").as_bool());

  EXPECT_FALSE(fleet_request(opts.socket_path, make_request("sumbit"))
                   .at("ok")
                   .as_bool());

  runner::Json invalid = make_request("submit");
  invalid.set("spec", runner::Json::parse(
                          "{\"pools\":[{\"name\":\"p\",\"nodes\":1,"
                          "\"channels\":1}]}"));
  const runner::Json resp = fleet_request(opts.socket_path, invalid);
  EXPECT_FALSE(resp.at("ok").as_bool());
  EXPECT_NE(resp.at("error").as_string().find("channels"),
            std::string::npos);
  service.stop();
}

}  // namespace
}  // namespace eccsim::fleet
