file(REMOVE_RECURSE
  "CMakeFiles/fig18_scrub_window.dir/fig18_scrub_window.cpp.o"
  "CMakeFiles/fig18_scrub_window.dir/fig18_scrub_window.cpp.o.d"
  "fig18_scrub_window"
  "fig18_scrub_window.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_scrub_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
