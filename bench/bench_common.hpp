// Shared infrastructure for the figure/table reproducers.
//
// Figures 9-17 all consume the same sweep: every workload x every scheme at
// one system scale.  The sweep is lazily computed and cached as CSV under
// bench_results/, so the first figure binary pays the simulation cost and
// the rest load instantly.  Delete bench_results/ (or set
// ECCSIM_SWEEP_CACHE=0) to force re-simulation; set ECCSIM_QUICK=1 for a
// fast, lower-fidelity pass.
#pragma once

#include <string>
#include <vector>

#include "common/table.hpp"
#include "ecc/scheme.hpp"
#include "sim/system.hpp"
#include "trace/workload.hpp"

namespace eccsim::bench {

/// Instructions per run (ECCSIM_QUICK=1 shrinks it).
std::uint64_t target_instructions();

/// All (workload x scheme) results at one scale, cached on disk.
const std::vector<sim::RunResult>& sweep(ecc::SystemScale scale);

/// Finds one run in a sweep; throws if missing.
const sim::RunResult& find(const std::vector<sim::RunResult>& rows,
                           const std::string& scheme,
                           const std::string& workload);

/// Bin (1 or 2) of a workload, per Fig. 9's classification.
int bin_of(const std::string& workload);

/// Percent reduction of `ours` relative to `baseline` ((1 - ours/base)*100).
double reduction_pct(double baseline, double ours);

/// Prints the table and also saves CSV under bench_results/<name>.csv.
void emit(const std::string& name, const Table& table);

/// Workload names in presentation order (Bin1 first, then Bin2).
std::vector<std::string> workload_order();

}  // namespace eccsim::bench
