// ECC parity construction and layout (Sec. III-A, Figs. 3-4).
//
// Terminology: with page interleaving, the pages at within-channel page
// index p ("stripe" p) of all N channels -- physical pages p*N .. p*N+N-1 --
// occupy the *same relative location* (rank, bank, row) in their respective
// channels.  An ECC parity is the bitwise XOR of the ECC correction bits of
// N-1 lines in N-1 distinct channels, stored in the remaining channel's
// reserved rows, so that any single-channel fault destroys at most one
// covered line (or the parity itself, which is then recomputable from the
// members).
//
// Grouping: for stripe p and line slot s, the *primary group* covers the
// lines at (channel c, stripe p, slot s) for every channel c except the
// parity channel c_par(p) = p mod N.  The line in the parity channel itself
// is the stripe's *leftover*; leftovers of N-1 consecutive stripes lie in
// N-1 distinct channels (consecutive integers mod N are distinct) and form
// a *leftover group*, whose parity lives in the one channel missing from
// the block.  Every data line therefore belongs to exactly one group, all
// group members and their parity sit in pairwise-distinct channels, and
// total parity storage is 1/(N-1) of the correction bits -- the paper's
// R/(N-1) capacity result.  (The paper's Fig. 4 rotates at row granularity;
// the stripe/leftover rotation used here preserves every invariant the
// mechanism relies on and admits an O(1) bidirectional mapping.)
//
// Sub-channels (DDR5): the failure domain is the *physical* channel, and
// both sub-channels of one physical channel share a DIMM, so parity groups
// must spread over N = fd_channels() physical channels -- never pair two
// sub-channels of the same DIMM.  The layout therefore works per
// sub-channel *plane*: effective channel e carries plane e / N of physical
// channel e % N, and each plane independently runs the N-channel rotation
// above.  With one sub-channel (DDR3/DDR4) there is a single plane and the
// construction is unchanged.
#pragma once

#include <cstdint>
#include <vector>

#include "dram/address_map.hpp"
#include "dram/request.hpp"

namespace eccsim::eccparity {

/// Identifies one parity group (one parity unit of correction-bit size).
struct GroupId {
  bool leftover = false;    ///< primary (stripe) or leftover group
  std::uint64_t index = 0;  ///< stripe p (primary) or block g (leftover)
  std::uint32_t slot = 0;   ///< line slot within the 4KB row
  std::uint32_t plane = 0;  ///< sub-channel plane (0 for DDR3/DDR4)

  friend bool operator==(const GroupId&, const GroupId&) = default;

  /// Packs into a single key for hashing / map storage.
  std::uint64_t key() const {
    return (static_cast<std::uint64_t>(leftover) << 63) |
           (static_cast<std::uint64_t>(plane) << 56) | (index << 8) | slot;
  }
};

/// One group member, identified by its linear data-line index.  `channel`
/// is the physical (failure-domain) channel.
struct Member {
  std::uint32_t channel = 0;
  std::uint64_t line_index = 0;
};

/// Parity construction / layout math for one memory system.
class ParityLayout {
 public:
  /// `corr_bytes` is the size of one line's ECC correction bits (R * line).
  ParityLayout(const dram::MemGeometry& geom, unsigned corr_bytes);

  const dram::MemGeometry& geometry() const { return geom_; }
  /// Physical channels: the N of the parity construction (groups never
  /// span two sub-channels of one DIMM).
  unsigned channels() const { return geom_.fd_channels(); }
  unsigned corr_bytes() const { return corr_bytes_; }

  /// The group a data line belongs to.
  GroupId group_of(std::uint64_t line_index) const;

  /// All members of a group (N-1 lines in distinct channels, fewer only in
  /// the final partial leftover block).
  std::vector<Member> members(const GroupId& id) const;

  /// The physical channel holding the group's parity (distinct from every
  /// member's).
  std::uint32_t parity_channel(const GroupId& id) const;

  /// Physical address of the parity line holding this group's parity,
  /// inside the reserved rows of the parity channel (Fig. 4 layout: the
  /// last rows of each bank, same bank number as the covered data).
  dram::DramAddress parity_line_address(const GroupId& id) const;

  /// The XOR-cacheline key for a data line (Sec. IV-C): one XOR line covers
  /// the same four adjacent slots across the stripe's group, i.e.
  /// 4*(N-1) data lines.  Keys are namespaced to never collide with data
  /// line indices.
  std::uint64_t xor_cacheline_key(std::uint64_t line_index) const;

  /// Inverts xor_cacheline_key: the primary group whose parity line backs
  /// the XOR cacheline.  (Leftover lines share the bucket's parity address
  /// in the traffic model; the functional manager keeps them exact.)
  GroupId group_for_xor_key(std::uint64_t key) const;

  /// Number of data lines covered by one XOR cacheline.
  std::uint32_t xor_coverage() const { return 4 * (geom_.fd_channels() - 1); }

  /// Rows per bank reserved for parity lines:
  /// ceil(data_rows * (1+12.5%) * R / (N-1)) (Sec. III-E).
  std::uint64_t reserved_rows_per_bank() const { return reserved_rows_; }

  /// Pages that share parity groups with the page containing `line_index`
  /// (the OS must retire these together with the faulty page, Sec. III-C).
  std::vector<std::uint64_t> co_retired_pages(std::uint64_t line_index) const;

 private:
  struct Loc {
    std::uint32_t channel;  ///< physical channel
    std::uint32_t plane;    ///< sub-channel plane
    std::uint64_t stripe;   ///< within-channel page index (cpage)
    std::uint32_t slot;
  };
  Loc locate(std::uint64_t line_index) const;
  std::uint64_t line_of(std::uint32_t channel, std::uint32_t plane,
                        std::uint64_t stripe, std::uint32_t slot) const;

  dram::MemGeometry geom_;
  dram::AddressMap map_;
  unsigned corr_bytes_;
  std::uint64_t stripes_;        ///< within-channel pages
  std::uint64_t reserved_rows_;
};

}  // namespace eccsim::eccparity
