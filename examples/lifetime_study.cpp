// Lifetime study: seven years in the life of a server fleet.
//
// Uses the Monte Carlo fault engine to sample device-level fault histories
// for a fleet of 8-channel servers, narrates the event log of the most
// eventful machine, and reports the fleet-level statistics that motivate
// ECC Parity: faults per system, how rarely two channels fault close
// together, and how much memory ends up with materialized correction bits.
//
// Usage: ./build/examples/lifetime_study [fleet_size] [seed]
#include <cstdio>
#include <cstdlib>

#include "common/units.hpp"
#include "faults/montecarlo.hpp"

using namespace eccsim;

int main(int argc, char** argv) {
  const unsigned fleet = argc > 1 ? std::atoi(argv[1]) : 10'000;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                                      : 7;
  faults::SystemShape shape;  // 8 ch x 4 ranks x 9 chips = 288 DDR3 chips
  const auto rates = faults::ddr3_vendor_average();
  const double life = 7 * units::kHoursPerYear;

  std::printf("Seven-year lifetime study, fleet of %u servers\n", fleet);
  std::printf("(8 channels x 4 ranks x 9 chips, %.0f FIT/chip total)\n\n",
              rates.total());

  // Fleet statistics.
  std::vector<std::vector<faults::FaultEvent>> histories(fleet);
  faults::parallel_systems(fleet, seed, [&](unsigned i, Rng& rng) {
    histories[i] = faults::sample_lifetime(shape, rates, life, rng);
  });

  std::uint64_t total_faults = 0, saturating = 0;
  unsigned busiest = 0;
  unsigned multi_channel_8h = 0;
  for (unsigned i = 0; i < fleet; ++i) {
    total_faults += histories[i].size();
    if (histories[i].size() > histories[busiest].size()) busiest = i;
    for (const auto& e : histories[i]) {
      if (faults::saturates_error_counter(e.type)) ++saturating;
    }
    // Any two faults in different channels within 8 hours?
    for (std::size_t a = 1; a < histories[i].size(); ++a) {
      const auto& prev = histories[i][a - 1];
      const auto& cur = histories[i][a];
      if (cur.channel != prev.channel &&
          cur.time_hours - prev.time_hours < 8.0) {
        ++multi_channel_8h;
        break;
      }
    }
  }
  std::printf("fleet totals over 7 years:\n");
  std::printf("  faults per server (mean)            : %.2f\n",
              static_cast<double>(total_faults) / fleet);
  std::printf("  device-level (counter-saturating)   : %.3f per server\n",
              static_cast<double>(saturating) / fleet);
  std::printf("  servers with 2-channel faults <8h apart: %u of %u (%.4f%%)\n",
              multi_channel_8h, fleet,
              100.0 * multi_channel_8h / fleet);

  const auto eol = faults::eol_materialized_fraction(shape, rates, fleet,
                                                     life, seed);
  std::printf("  EOL materialized memory (mean)      : %.3f%%\n",
              eol.mean_fraction * 100);
  std::printf("  EOL materialized memory (99.9th pct): %.2f%%\n\n",
              eol.p999_fraction * 100);

  // Narrate the busiest machine.
  std::printf("event log of the most eventful server (#%u):\n", busiest);
  for (const auto& e : histories[busiest]) {
    std::printf(
        "  day %5.0f: %-10s fault, channel %u rank %u chip %u  -> %s\n",
        e.time_hours / 24.0, faults::to_string(e.type).c_str(), e.channel,
        e.rank, e.chip,
        faults::saturates_error_counter(e.type)
            ? "saturates counter: materialize pair's correction bits"
            : "absorbed by page retirement");
  }
  if (histories[busiest].empty()) {
    std::printf("  (no faults -- a quiet seven years)\n");
  }
  return 0;
}
