// Ablation: the bank-pair error-counter threshold (Sec. III-C sets it to
// 4).  A lower threshold materializes correction bits sooner (more
// capacity spent at EOL, fewer retired pages); a higher one retires more
// pages per fault and delays materialization.  This sweep drives the
// functional ECC Parity manager with repeated faults in one bank pair and
// reports when materialization happens and how many pages were retired.
#include <cstdio>

#include "bench_common.hpp"
#include "common/rng.hpp"
#include "ecc/codec.hpp"
#include "eccparity/manager.hpp"

using namespace eccsim;

int main(int argc, char** argv) {
  eccsim::bench::init(argc, argv);
  std::printf("Ablation -- error-counter threshold (paper: 4)\n\n");
  Table t({"threshold", "errors before marking", "pages retired",
           "lines materialized", "max retired (paper bound 4(N-1))"});
  for (unsigned threshold : {1u, 2u, 4u, 8u, 16u}) {
    dram::MemGeometry geom;
    geom.channels = 8;
    geom.ranks_per_channel = 2;
    geom.banks_per_rank = 8;
    geom.rows_per_bank = 64;
    geom.line_bytes = 64;
    eccparity::EccParityManager mgr(
        geom, ecc::make_codec(ecc::SchemeId::kLotEcc5), threshold);
    Rng rng(7);
    // Write a few thousand lines, then keep faulting lines of one bank
    // pair until its counter saturates.
    for (std::uint64_t l = 0; l < 4000; ++l) {
      std::vector<std::uint8_t> v(64);
      for (auto& b : v) b = static_cast<std::uint8_t>(rng.next_below(256));
      mgr.write_line(l, v);
    }
    const auto target =
        eccparity::BankHealthTable::pair_of(mgr.map().decode(0));
    unsigned errors = 0;
    for (std::uint64_t l = 0; l < 4000 && mgr.health().faulty_pairs() == 0;
         ++l) {
      if (eccparity::BankHealthTable::pair_of(mgr.map().decode(l)) != target) {
        continue;
      }
      mgr.corrupt_chip_share(l, 0);
      (void)mgr.read_line(l);
      ++errors;
    }
    t.add_row({std::to_string(threshold), std::to_string(errors),
               std::to_string(mgr.retired_page_count()),
               std::to_string(mgr.stats().lines_materialized),
               std::to_string(threshold * (geom.channels - 1))});
  }
  bench::emit("ablation_threshold", t);
  std::printf(
      "Paper check: the number of pages retired before saturation is\n"
      "bounded by threshold x (N-1) co-retired pages per error -- a\n"
      "negligible slice of a bank pair's ~100,000 pages.\n");
  return 0;
}
