// Flag handling of the shared bench front-end: unknown flags must be
// rejected with exit code 2 and a pointer at --help, --help and
// --list-workloads must succeed, and --trace-point must validate its
// value.  Death tests: init() terminates the process on these paths.
#include <gtest/gtest.h>

#include "bench_common.hpp"

namespace eccsim::bench {
namespace {

int run_init(std::vector<std::string> args) {
  args.insert(args.begin(), "bench_flags_test");
  std::vector<char*> argv;
  argv.reserve(args.size());
  for (auto& a : args) argv.push_back(a.data());
  init(static_cast<int>(argv.size()), argv.data());
  return 0;
}

using BenchFlagsDeathTest = ::testing::Test;

TEST(BenchFlagsDeathTest, UnknownFlagExitsWithUsageError) {
  EXPECT_EXIT(run_init({"--bogus"}), ::testing::ExitedWithCode(2),
              "unknown flag '--bogus'.*--help");
}

TEST(BenchFlagsDeathTest, UnknownFlagAfterValidFlagStillRejected) {
  EXPECT_EXIT(run_init({"--smoke", "--no-such-thing"}),
              ::testing::ExitedWithCode(2), "unknown flag");
}

TEST(BenchFlagsDeathTest, HelpExitsCleanly) {
  EXPECT_EXIT(run_init({"--help"}), ::testing::ExitedWithCode(0), "");
}

TEST(BenchFlagsDeathTest, ListWorkloadsExitsCleanly) {
  EXPECT_EXIT(run_init({"--list-workloads"}), ::testing::ExitedWithCode(0),
              "");
}

TEST(BenchFlagsDeathTest, MissingFlagValueRejected) {
  EXPECT_EXIT(run_init({"--mc-systems"}), ::testing::ExitedWithCode(2),
              "requires a value");
}

TEST(BenchFlagsDeathTest, BadTracePointRejected) {
  EXPECT_EXIT(run_init({"--trace-point", "sideways"}),
              ::testing::ExitedWithCode(2), "'pre' or 'post'");
}

TEST(BenchFlagsDeathTest, UnknownDramGenerationRejected) {
  EXPECT_EXIT(run_init({"--dram", "ddr6"}), ::testing::ExitedWithCode(2),
              "--dram must be ddr3, ddr4, or ddr5, got 'ddr6'");
}

TEST(BenchFlagsDeathTest, DramFlagRequiresValue) {
  EXPECT_EXIT(run_init({"--dram"}), ::testing::ExitedWithCode(2),
              "requires a value");
}

TEST(BenchFlagsDeathTest, DramGenerationsAccepted) {
  // All three canonical names parse; init() returns normally and the env
  // var round-trips through dram_generation().
  EXPECT_EXIT(
      {
        run_init({"--dram=ddr5"});
        std::exit(dram_generation() == dram::Generation::kDdr5 ? 0 : 1);
      },
      ::testing::ExitedWithCode(0), "");
  EXPECT_EXIT(
      {
        run_init({"--dram", "ddr4"});
        std::exit(dram_generation() == dram::Generation::kDdr4 ? 0 : 1);
      },
      ::testing::ExitedWithCode(0), "");
  EXPECT_EXIT(
      {
        run_init({"--dram", "ddr3"});
        std::exit(dram_generation() == dram::Generation::kDdr3 ? 0 : 1);
      },
      ::testing::ExitedWithCode(0), "");
}

TEST(BenchFlagsDeathTest, BadEnvDramGenerationRejected) {
  // ECCSIM_DRAM typos must fail loudly, not fall back to DDR3.
  EXPECT_EXIT(
      {
        setenv("ECCSIM_DRAM", "lpddr4", 1);
        (void)dram_generation();
      },
      ::testing::ExitedWithCode(2), "unknown DRAM generation 'lpddr4'");
}

TEST(BenchFlagsDeathTest, StatusFlagRequiresValue) {
  EXPECT_EXIT(run_init({"--status"}), ::testing::ExitedWithCode(2),
              "requires a value");
}

TEST(BenchFlagsDeathTest, TelemetryFlagsAccepted) {
  // --status FILE and --progress parse and wire up the heartbeat env;
  // init() returns normally.  Run in a forked child so the env mutation
  // and manifest boot don't leak into other tests.
  EXPECT_EXIT(
      {
        run_init({"--status", "/tmp/eccsim_flags_status.json", "--progress"});
        const char* status = getenv("ECCSIM_STATUS");
        const char* progress = getenv("ECCSIM_PROGRESS");
        std::exit(status != nullptr &&
                          std::string(status) ==
                              "/tmp/eccsim_flags_status.json" &&
                          progress != nullptr && std::string(progress) == "1"
                      ? 0
                      : 1);
      },
      ::testing::ExitedWithCode(0), "");
}

TEST(BenchFlagsDeathTest, TracePointValuesAccepted) {
  // Valid trace points parse without touching the rejection paths; init()
  // returns normally, so the child must run to completion (exit 0).
  EXPECT_EXIT(
      {
        run_init({"--trace-point", "post"});
        std::exit(0);
      },
      ::testing::ExitedWithCode(0), "");
}

}  // namespace
}  // namespace eccsim::bench
