#include "check/invariants.hpp"

#include <cstddef>
#include <sstream>
#include <vector>

#include "common/rng.hpp"
#include "eccparity/health.hpp"
#include "eccparity/layout.hpp"
#include "gf/rs.hpp"

namespace eccsim::check {

namespace {

/// Checkers cap stored failure text so a systematic break does not flood
/// the report; CheckResult::checks still counts every check performed.
constexpr std::size_t kMaxFailures = 64;

void add_failure(CheckResult& res, const std::string& what) {
  if (res.failures.size() < kMaxFailures) {
    res.failures.push_back(what);
  } else if (res.failures.size() == kMaxFailures) {
    res.failures.push_back("... further failures suppressed");
  }
}

std::string describe(const dram::MemGeometry& geom) {
  std::ostringstream os;
  os << geom.channels << "ch x " << geom.ranks_per_channel << "rk x "
     << geom.banks_per_rank << "bk x " << geom.rows_per_bank << "rows";
  return os.str();
}

/// Visits every line when the space is small enough to sweep exhaustively,
/// else the boundary lines plus a fixed-seed uniform sample.
template <typename Fn>
void for_each_line(std::uint64_t total, std::uint64_t samples,
                   std::uint64_t max_exhaustive, Fn&& fn) {
  if (total <= max_exhaustive) {
    for (std::uint64_t i = 0; i < total; ++i) fn(i);
    return;
  }
  fn(0);
  fn(total - 1);
  Rng rng(0x1AE5EEDULL);
  for (std::uint64_t s = 0; s < samples; ++s) fn(rng.next_below(total));
}

std::string format_addr(const dram::DramAddress& a) {
  std::ostringstream os;
  os << "(ch " << a.channel << ", rk " << a.rank << ", bk " << a.bank
     << ", row " << a.row << ", col " << a.col << ")";
  return os.str();
}

}  // namespace

void CheckResult::merge(const CheckResult& other) {
  checks += other.checks;
  for (const auto& f : other.failures) {
    add_failure(*this, other.name + ": " + f);
  }
}

CheckResult check_address_map(const dram::MemGeometry& geom,
                              std::uint64_t samples,
                              std::uint64_t max_exhaustive) {
  CheckResult res;
  res.name = "address_map[" + describe(geom) + "]";
  const dram::AddressMap map(geom);
  const std::uint64_t total = geom.total_data_lines();
  const std::uint32_t lpr = geom.lines_per_row();

  // Forward direction: every line decodes to an in-range address that
  // encodes back to the same line (decode is injective and right-inverse
  // of encode).
  for_each_line(total, samples, max_exhaustive, [&](std::uint64_t line) {
    const dram::DramAddress a = map.decode(line);
    ++res.checks;
    if (a.channel >= geom.channels || a.rank >= geom.ranks_per_channel ||
        a.bank >= geom.banks_per_rank || a.row >= geom.rows_per_bank ||
        a.col >= lpr) {
      add_failure(res, "line " + std::to_string(line) +
                           " decodes out of range: " + format_addr(a));
      return;
    }
    const std::uint64_t back = map.encode(a);
    ++res.checks;
    if (back != line) {
      add_failure(res, "encode(decode(" + std::to_string(line) +
                           ")) = " + std::to_string(back));
    }
  });

  // Reverse direction: every in-range address encodes to an in-range line
  // that decodes back to the same address (encode is injective and
  // right-inverse of decode, completing the bijection).
  Rng rng(0xADD2E55ULL);
  const std::uint64_t addr_samples =
      total <= max_exhaustive ? 0 : samples / 4;
  for (std::uint64_t s = 0; s < addr_samples; ++s) {
    dram::DramAddress a;
    a.channel = static_cast<std::uint32_t>(rng.next_below(geom.channels));
    a.rank =
        static_cast<std::uint32_t>(rng.next_below(geom.ranks_per_channel));
    a.bank = static_cast<std::uint32_t>(rng.next_below(geom.banks_per_rank));
    a.row = rng.next_below(geom.rows_per_bank);
    a.col = static_cast<std::uint32_t>(rng.next_below(lpr));
    const std::uint64_t line = map.encode(a);
    ++res.checks;
    if (line >= total) {
      add_failure(res, "address " + format_addr(a) +
                           " encodes out of range: " + std::to_string(line));
      continue;
    }
    ++res.checks;
    if (!(map.decode(line) == a)) {
      add_failure(res, "decode(encode(" + format_addr(a) +
                           ")) = " + format_addr(map.decode(line)));
    }
  }
  return res;
}

CheckResult check_parity_layout(const dram::MemGeometry& geom,
                                unsigned corr_bytes, std::uint64_t samples,
                                std::uint64_t max_exhaustive) {
  CheckResult res;
  res.name = "parity_layout[" + describe(geom) + ", corr " +
             std::to_string(corr_bytes) + "B]";
  const eccparity::ParityLayout layout(geom, corr_bytes);
  const dram::AddressMap map(geom);
  const std::uint64_t total = geom.total_data_lines();
  const std::uint32_t n = geom.channels;
  const std::uint32_t lpr = geom.lines_per_row();
  const std::uint64_t reserved = layout.reserved_rows_per_bank();

  // Sec. III-E capacity bound: the reserved window must fit
  // (1 + 12.5%) * R / (N-1) of the data rows, and still leave data rows.
  const double ratio = static_cast<double>(corr_bytes) /
                       static_cast<double>(geom.line_bytes);
  const double needed = 1.125 * ratio *
                        static_cast<double>(geom.rows_per_bank) /
                        static_cast<double>(n - 1);
  ++res.checks;
  if (static_cast<double>(reserved) < needed) {
    add_failure(res, "reserved rows " + std::to_string(reserved) +
                         " below the Sec. III-E bound");
  }
  ++res.checks;
  if (reserved >= geom.rows_per_bank) {
    add_failure(res, "reserved rows swallow the whole bank");
  }

  for_each_line(total, samples, max_exhaustive, [&](std::uint64_t line) {
    const eccparity::GroupId gid = layout.group_of(line);
    const std::vector<eccparity::Member> mems = layout.members(gid);

    // Membership: the line appears in its own group exactly once, every
    // member maps back to the same group, member channels are pairwise
    // distinct and consistent with the address map.
    unsigned self = 0;
    std::uint64_t channel_mask = 0;
    for (const eccparity::Member& m : mems) {
      if (m.line_index == line) ++self;
      ++res.checks;
      if (!(layout.group_of(m.line_index) == gid)) {
        add_failure(res, "member " + std::to_string(m.line_index) +
                             " of line " + std::to_string(line) +
                             "'s group maps to a different group");
      }
      ++res.checks;
      if (m.channel >= n ||
          map.decode(m.line_index).channel != m.channel) {
        add_failure(res, "member " + std::to_string(m.line_index) +
                             " carries wrong channel " +
                             std::to_string(m.channel));
      } else if (channel_mask & (1ULL << m.channel)) {
        add_failure(res, "group of line " + std::to_string(line) +
                             " repeats channel " + std::to_string(m.channel));
      } else {
        channel_mask |= 1ULL << m.channel;
      }
    }
    ++res.checks;
    if (self != 1) {
      add_failure(res, "line " + std::to_string(line) + " appears " +
                           std::to_string(self) + " times in its own group");
    }
    ++res.checks;
    if (mems.empty() || mems.size() > n - 1) {
      add_failure(res, "group of line " + std::to_string(line) + " has " +
                           std::to_string(mems.size()) + " members");
    }

    // Single-channel-failure guarantee: the parity lives in a channel no
    // member occupies, inside the reserved rows, at a legal address, and
    // never on top of a member's data line.
    const std::uint32_t pc = layout.parity_channel(gid);
    ++res.checks;
    if (pc >= n || (channel_mask & (1ULL << pc))) {
      add_failure(res, "parity channel " + std::to_string(pc) +
                           " collides with a member of line " +
                           std::to_string(line) + "'s group");
    }
    const dram::DramAddress pa = layout.parity_line_address(gid);
    ++res.checks;
    if (pa.channel != pc || pa.rank >= geom.ranks_per_channel ||
        pa.bank >= geom.banks_per_rank || pa.col >= lpr ||
        pa.row < geom.rows_per_bank - reserved ||
        pa.row >= geom.rows_per_bank) {
      add_failure(res, "parity address " + format_addr(pa) +
                           " outside the reserved window");
    }
    for (const eccparity::Member& m : mems) {
      ++res.checks;
      if (map.decode(m.line_index) == pa) {
        add_failure(res, "parity of line " + std::to_string(line) +
                             "'s group overlaps member data at " +
                             format_addr(pa));
      }
    }

    // XOR-cacheline keys (Sec. IV-C): namespaced away from line indices,
    // constant on each slot quad, and shared across a primary group.
    const std::uint64_t key = layout.xor_cacheline_key(line);
    ++res.checks;
    if (!(key >> 62 & 1) || key == line) {
      add_failure(res, "XOR key of line " + std::to_string(line) +
                           " is not namespaced");
    }
    const std::uint32_t slot = static_cast<std::uint32_t>(line % lpr);
    const std::uint64_t quad_base = line - (slot % 4);
    for (std::uint32_t q = 0; q < 4 && (slot - slot % 4) + q < lpr; ++q) {
      ++res.checks;
      if (layout.xor_cacheline_key(quad_base + q) != key) {
        add_failure(res, "XOR key differs within the slot quad of line " +
                             std::to_string(line));
      }
    }
    if (slot + 4 < lpr) {
      ++res.checks;
      if (layout.xor_cacheline_key(line + 4) == key) {
        add_failure(res, "XOR key fails to change across quads at line " +
                             std::to_string(line));
      }
    }
    if (!gid.leftover) {
      for (const eccparity::Member& m : mems) {
        ++res.checks;
        if (layout.xor_cacheline_key(m.line_index) != key) {
          add_failure(res,
                      "XOR key differs across the primary group of line " +
                          std::to_string(line));
        }
      }
    }
  });
  return res;
}

CheckResult check_health_table(unsigned threshold) {
  CheckResult res;
  res.name = "health_table[threshold " + std::to_string(threshold) + "]";
  eccparity::BankHealthTable table(threshold);

  dram::DramAddress even;  // bank 4 -> pair 2
  even.channel = 1;
  even.rank = 0;
  even.bank = 4;
  dram::DramAddress odd = even;  // bank 5 -> the same pair
  odd.bank = 5;
  dram::DramAddress other = even;  // bank 6 -> a different pair
  other.bank = 6;
  const eccparity::BankPairId pair =
      eccparity::BankHealthTable::pair_of(even);

  ++res.checks;
  if (!(eccparity::BankHealthTable::pair_of(odd) == pair)) {
    add_failure(res, "banks 2k and 2k+1 map to different pairs");
  }
  ++res.checks;
  if (eccparity::BankHealthTable::pair_of(other) == pair) {
    add_failure(res, "banks 2k and 2k+2 share a pair");
  }

  // Fig. 6 discipline: the first threshold-1 errors each retire a page and
  // advance the shared pair counter by one (alternating the two banks of
  // the pair to prove they share it); the threshold-th marks the pair
  // faulty; everything after reports it as already faulty.
  for (unsigned i = 1; i < threshold; ++i) {
    const eccparity::ErrorAction act =
        table.record_error(i % 2 ? even : odd);
    ++res.checks;
    if (act != eccparity::ErrorAction::kRetirePage) {
      add_failure(res, "error " + std::to_string(i) +
                           " below threshold did not retire a page");
    }
    ++res.checks;
    if (table.error_count(pair) != i || table.is_faulty(even)) {
      add_failure(res, "pair counter wrong after error " + std::to_string(i));
    }
  }
  const eccparity::ErrorAction at =
      table.record_error(threshold % 2 ? even : odd);
  ++res.checks;
  if (at != eccparity::ErrorAction::kMarkFaulty || !table.is_faulty(even) ||
      !table.is_faulty(odd) || table.faulty_pairs() != 1) {
    add_failure(res, "threshold-th error did not mark the pair faulty");
  }
  for (unsigned i = 0; i < 3; ++i) {
    ++res.checks;
    if (table.record_error(even) != eccparity::ErrorAction::kAlreadyFaulty ||
        !table.is_faulty(even)) {
      add_failure(res, "faulty state is not absorbing");
    }
  }
  ++res.checks;
  if (table.is_faulty(other) || table.error_count(
          eccparity::BankHealthTable::pair_of(other)) != 0) {
    add_failure(res, "errors leaked into an unrelated pair");
  }

  // Direct marking (scrub-identified fault) skips the counter entirely.
  table.mark_faulty(eccparity::BankHealthTable::pair_of(other));
  ++res.checks;
  if (!table.is_faulty(other) ||
      table.record_error(other) != eccparity::ErrorAction::kAlreadyFaulty) {
    add_failure(res, "mark_faulty did not take effect");
  }

  // Sec. III-E headline number: 512 B of SRAM for a 1024-bank system.
  ++res.checks;
  if (eccparity::BankHealthTable::sram_bytes(1024) != 512.0) {
    add_failure(res, "sram_bytes(1024) != 512");
  }
  return res;
}

namespace {

template <unsigned Bits>
void rs_case(CheckResult& res, unsigned n, unsigned k, unsigned trials,
             Rng& rng) {
  const gf::ReedSolomon<Bits> code(n, k);
  using Symbol = typename gf::ReedSolomon<Bits>::Symbol;
  const std::uint64_t q = 1ULL << Bits;
  const unsigned two_t = n - k;
  const std::string tag =
      "RS(" + std::to_string(n) + "," + std::to_string(k) + ")/GF(2^" +
      std::to_string(Bits) + ")";

  std::vector<Symbol> data(k);
  for (unsigned nu = 0; 2 * nu <= two_t; ++nu) {
    for (unsigned e = 0; 2 * nu + e <= two_t; ++e) {
      for (unsigned trial = 0; trial < trials; ++trial) {
        for (auto& s : data) s = static_cast<Symbol>(rng.next_below(q));
        const std::vector<Symbol> codeword = code.encode(data);
        ++res.checks;
        if (!code.check(codeword)) {
          add_failure(res, tag + ": fresh codeword fails check()");
          return;  // the codec is broken; further loads add no signal
        }

        // Corrupt nu + e distinct positions, each by a nonzero delta, and
        // declare the first e of them as erasures.
        std::vector<Symbol> corrupted = codeword;
        std::vector<unsigned> positions;
        while (positions.size() < static_cast<std::size_t>(nu) + e) {
          const unsigned pos =
              static_cast<unsigned>(rng.next_below(n));
          bool dup = false;
          for (unsigned p : positions) dup = dup || p == pos;
          if (!dup) positions.push_back(pos);
        }
        for (unsigned pos : positions) {
          const Symbol delta =
              static_cast<Symbol>(1 + rng.next_below(q - 1));
          corrupted[pos] = static_cast<Symbol>(corrupted[pos] ^ delta);
        }
        const std::vector<unsigned> erasures(positions.begin(),
                                             positions.begin() + e);

        const gf::RsDecodeResult r =
            code.decode(std::span<Symbol>(corrupted),
                        std::span<const unsigned>(erasures));
        const std::string load = tag + " nu=" + std::to_string(nu) +
                                 " e=" + std::to_string(e) + " trial " +
                                 std::to_string(trial);
        ++res.checks;
        if (!r.ok) {
          add_failure(res, load + ": decode reported failure");
          continue;
        }
        ++res.checks;
        if (corrupted != codeword) {
          add_failure(res, load + ": decode did not restore the codeword");
        }
        ++res.checks;
        if ((nu + e > 0) != r.detected_error) {
          add_failure(res, load + ": detected_error inconsistent");
        }
      }
    }
  }
}

}  // namespace

CheckResult check_rs_roundtrip(unsigned trials_per_load, std::uint64_t seed) {
  CheckResult res;
  res.name = "rs_roundtrip";
  Rng rng(seed);
  // The paper's code shapes: 36- and 18-device commercial chipkill over
  // GF(2^8), and a wide-symbol configuration over GF(2^16).
  rs_case<8>(res, 36, 32, trials_per_load, rng);
  rs_case<8>(res, 18, 16, trials_per_load, rng);
  rs_case<16>(res, 10, 8, trials_per_load, rng);
  return res;
}

CheckResult check_all(bool thorough) {
  CheckResult all;
  all.name = "invariants";
  const std::uint64_t line_samples = thorough ? 200'000 : 20'000;
  const std::uint64_t layout_samples = thorough ? 100'000 : 10'000;
  const std::uint64_t exhaustive = thorough ? 1'000'000 : 200'000;

  // Small geometries are swept exhaustively; the paper-scale quad-channel
  // system (32768 rows/bank) is sampled.
  std::vector<dram::MemGeometry> geoms(4);
  geoms[0].channels = 4;
  geoms[0].rows_per_bank = 64;
  geoms[1].channels = 2;
  geoms[1].ranks_per_channel = 2;
  geoms[1].rows_per_bank = 64;
  geoms[2].channels = 3;  // N-1 shares no factor with N: leftover rotation
  geoms[2].rows_per_bank = 48;
  geoms[3].channels = 4;
  geoms[3].rows_per_bank = 32768;

  for (const dram::MemGeometry& geom : geoms) {
    all.merge(check_address_map(geom, line_samples, exhaustive));
    // Correction ratios the paper evaluates: 6.25% (4 B), 12.5% (8 B),
    // 25% (16 B) of a 64 B line.
    for (unsigned corr : {4u, 8u, 16u}) {
      all.merge(check_parity_layout(geom, corr, layout_samples, exhaustive));
    }
  }
  for (unsigned threshold : {2u, 4u, 8u}) {
    all.merge(check_health_table(threshold));
  }
  all.merge(check_rs_roundtrip(thorough ? 24 : 6));
  return all;
}

}  // namespace eccsim::check
