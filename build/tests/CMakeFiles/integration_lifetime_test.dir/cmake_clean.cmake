file(REMOVE_RECURSE
  "CMakeFiles/integration_lifetime_test.dir/integration_lifetime_test.cpp.o"
  "CMakeFiles/integration_lifetime_test.dir/integration_lifetime_test.cpp.o.d"
  "integration_lifetime_test"
  "integration_lifetime_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_lifetime_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
