#include "stats/trace.hpp"

#include <algorithm>
#include <cstdio>

#include "common/table.hpp"  // write_file

namespace eccsim::stats {

namespace {

/// Minimal JSON string escape; names here are controlled ASCII but the
/// writer must never emit malformed JSON whatever it is handed.
void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_number(std::string& out, double d) {
  char buf[32];
  if (d == static_cast<double>(static_cast<long long>(d)) &&
      d < 9e15 && d > -9e15) {
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(d));
  } else {
    std::snprintf(buf, sizeof buf, "%.17g", d);
  }
  out += buf;
}

}  // namespace

Tracer::Tracer(std::string path, std::uint64_t max_events)
    : path_(std::move(path)), max_events_(max_events) {
  events_.reserve(static_cast<std::size_t>(
      std::min<std::uint64_t>(max_events_, 1 << 16)));
}

void Tracer::set_thread_name(std::uint32_t tid, std::string name) {
  thread_names_.emplace_back(tid, std::move(name));
}

bool Tracer::record(const Event& e) {
  if (events_.size() >= max_events_) {
    ++dropped_;
    return false;
  }
  events_.push_back(e);
  return true;
}

void Tracer::duration(const char* cat, const char* name,
                      std::uint64_t begin_cycle, std::uint64_t end_cycle,
                      std::uint32_t tid, std::initializer_list<Arg> args) {
  Event e{cat, name, 'X', begin_cycle,
          end_cycle > begin_cycle ? end_cycle - begin_cycle : 0, tid,
          {}, 0};
  for (const Arg& a : args) {
    if (e.nargs < e.args.size()) e.args[e.nargs++] = a;
  }
  record(e);
}

void Tracer::instant(const char* cat, const char* name, std::uint64_t cycle,
                     std::uint32_t tid, std::initializer_list<Arg> args) {
  Event e{cat, name, 'i', cycle, 0, tid, {}, 0};
  for (const Arg& a : args) {
    if (e.nargs < e.args.size()) e.args[e.nargs++] = a;
  }
  record(e);
}

bool Tracer::write() const {
  // One memory cycle = 1/clock_ghz nanoseconds; trace "ts" is micros.
  const double us_per_cycle = 0.001 / clock_ghz_;
  std::string out;
  out.reserve(events_.size() * 96 + 1024);
  out += "{\n\"traceEvents\": [";
  bool first = true;
  const auto sep = [&] {
    if (!first) out += ',';
    first = false;
    out += "\n";
  };
  for (const auto& [tid, name] : thread_names_) {
    sep();
    out += "{\"ph\": \"M\", \"pid\": 0, \"tid\": ";
    append_number(out, tid);
    out += ", \"name\": \"thread_name\", \"args\": {\"name\": ";
    append_escaped(out, name);
    out += "}}";
  }
  char buf[64];
  for (const auto& e : events_) {
    sep();
    out += "{\"ph\": \"";
    out += e.ph;
    out += "\", \"pid\": 0, \"tid\": ";
    append_number(out, e.tid);
    out += ", \"ts\": ";
    std::snprintf(buf, sizeof buf, "%.3f",
                  static_cast<double>(e.ts_cycle) * us_per_cycle);
    out += buf;
    if (e.ph == 'X') {
      out += ", \"dur\": ";
      std::snprintf(buf, sizeof buf, "%.3f",
                    static_cast<double>(e.dur_cycles) * us_per_cycle);
      out += buf;
    } else if (e.ph == 'i') {
      out += ", \"s\": \"t\"";  // thread-scoped instant
    }
    out += ", \"cat\": ";
    append_escaped(out, e.cat);
    out += ", \"name\": ";
    append_escaped(out, e.name);
    if (e.nargs > 0) {
      out += ", \"args\": {";
      for (unsigned i = 0; i < e.nargs; ++i) {
        if (i) out += ", ";
        append_escaped(out, e.args[i].key);
        out += ": ";
        append_number(out, e.args[i].value);
      }
      out += '}';
    }
    out += '}';
  }
  out += "\n],\n\"displayTimeUnit\": \"ns\",\n\"otherData\": {\"dropped\": ";
  append_number(out, static_cast<double>(dropped_));
  out += "}\n}\n";
  return write_file(path_, out);
}

}  // namespace eccsim::stats
