file(REMOVE_RECURSE
  "CMakeFiles/dram_property_test.dir/dram_property_test.cpp.o"
  "CMakeFiles/dram_property_test.dir/dram_property_test.cpp.o.d"
  "dram_property_test"
  "dram_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dram_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
