// tracetool: record, inspect, and validate .ecctrace stimulus files.
//
//   tracetool record --workload mcf --out traces/   record one workload
//   tracetool record --all --out traces/            record all 16
//   tracetool info FILE                             header + size summary
//   tracetool validate FILE...                      deep-scan every chunk;
//                                                   exit 1 on any failure
//   tracetool stats FILE                            stream statistics
//   tracetool head FILE [-n N]                      first N records
//   tracetool list-workloads                        the recordable names
//   tracetool specs [--dram G]                      DRAM generation tables
//
// Records are generator-direct (no simulation), so recording all 16
// workloads at the default 60000 ops/core takes well under a second.  The
// default seed is the workload's canonical paper-sweep seed, which is what
// makes the file replay bit-identically under `fig10_* --trace-in`; the
// default depth covers SystemSim's LLC warmup (49152 ops/core) plus the
// measured phase at full fidelity with headroom.
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "dram/spec.hpp"
#include "obs/heartbeat.hpp"
#include "obs/manifest.hpp"
#include "obs/run_info.hpp"
#include "runner/json.hpp"
#include "stats/stats.hpp"
#include "trace/workload.hpp"
#include "tracefile/reader.hpp"
#include "tracefile/replay.hpp"

namespace {

using namespace eccsim;

int usage(FILE* out, int code) {
  std::fprintf(out,
               "usage: tracetool <command> [options]\n"
               "  record --workload NAME | --all [options]\n"
               "      --out PATH       output file (or directory with --all\n"
               "                       or a trailing '/'); default traces/\n"
               "      --ops-per-core N ops recorded per core (default 60000,\n"
               "                       enough for warmup + a full-fidelity\n"
               "                       measured phase)\n"
               "      --cores N        cores in the recording (default 8)\n"
               "      --seed S         stimulus seed (default: the\n"
               "                       workload's canonical sweep seed)\n"
               "  info FILE            print header metadata and sizes\n"
               "  validate FILE...     verify framing and every CRC; exit 1\n"
               "                       on the first bad file\n"
               "  stats FILE [--json]  read/write mix, footprint, gaps;\n"
               "                       --json emits stable dotted stat paths\n"
               "                       (trace.ops, trace.write_fraction, ...)\n"
               "  head FILE [-n N]     print the first N records (default "
               "10)\n"
               "  list-workloads       names recordable with --workload\n"
               "  specs [--dram G]     print the device parameter tables of\n"
               "                       every DRAM generation (or just G:\n"
               "                       ddr3, ddr4, or ddr5)\n");
  return code;
}

/// `--flag value` / `--flag=value`, advancing i; nullptr if arg != flag.
const char* flag_value(int argc, char** argv, int& i, const char* name) {
  const std::string arg = argv[i];
  const std::string prefix = std::string(name) + "=";
  if (arg.rfind(prefix, 0) == 0) return argv[i] + prefix.size();
  if (arg != name) return nullptr;
  if (i + 1 >= argc) {
    std::fprintf(stderr, "tracetool: %s requires a value\n", name);
    std::exit(2);
  }
  return argv[++i];
}

void print_workloads() {
  std::printf("%-14s %-4s %-5s %-7s %-9s %s\n", "workload", "bin", "mt",
              "apki", "write%", "footprint");
  for (const auto& w : trace::paper_workloads()) {
    std::printf("%-14s %-4d %-5s %-7.1f %-9.0f %llu MB\n", w.name.c_str(),
                w.bin, w.multithreaded ? "yes" : "no", w.apki,
                w.write_fraction * 100.0,
                static_cast<unsigned long long>(w.footprint_bytes >> 20));
  }
}

int cmd_record(int argc, char** argv) {
  std::string workload;
  bool all = false;
  std::string out = "traces/";
  std::uint64_t ops_per_core = 60'000;
  unsigned cores = 8;
  std::optional<std::uint64_t> seed;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* v = nullptr;
    if ((v = flag_value(argc, argv, i, "--workload")) != nullptr) {
      workload = v;
    } else if (arg == "--all") {
      all = true;
    } else if ((v = flag_value(argc, argv, i, "--out")) != nullptr) {
      out = v;
    } else if ((v = flag_value(argc, argv, i, "--ops-per-core")) != nullptr) {
      ops_per_core = std::strtoull(v, nullptr, 10);
    } else if ((v = flag_value(argc, argv, i, "--cores")) != nullptr) {
      cores = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
    } else if ((v = flag_value(argc, argv, i, "--seed")) != nullptr) {
      seed = std::strtoull(v, nullptr, 10);
    } else {
      std::fprintf(stderr, "tracetool record: unknown flag '%s'\n",
                   arg.c_str());
      return 2;
    }
  }
  if (all == !workload.empty() || cores == 0 || ops_per_core == 0) {
    std::fprintf(stderr, "tracetool record: need exactly one of --workload "
                 "NAME or --all, and nonzero --cores/--ops-per-core\n");
    return 2;
  }

  std::vector<const trace::WorkloadDesc*> targets;
  if (all) {
    for (const auto& w : trace::paper_workloads()) targets.push_back(&w);
  } else {
    targets.push_back(&trace::workload_by_name(workload));
  }

  // Recording produces committed-quality artifacts, so it gets the full
  // observability treatment: a run manifest plus heartbeat ticks.
  obs::Heartbeat& hb = obs::Heartbeat::global();
  hb.set_tool("tracetool");
  obs::Manifest& man = obs::manifest();
  man.tool = "tracetool";
  for (int i = 1; i < argc; ++i) man.args.emplace_back(argv[i]);
  man.git_sha = obs::git_head_sha();
  man.seed_regime = seed ? "explicit" : "paper_sweep_seed(root=1)";
  man.threads = 1;
  man.host = obs::hostname();
  man.host_cpus = obs::cpu_count();
  man.started_utc = obs::utc_timestamp();
  const std::string manifest_path = "results/tracetool.manifest.json";
  obs::write_manifest(manifest_path, man);
  const auto start = obs::monotonic_seconds();
  const auto finish = [&](int rc) {
    obs::note_exit_code(rc);
    man.finished_utc = obs::utc_timestamp();
    man.wall_seconds = obs::monotonic_seconds() - start;
    man.peak_rss_bytes = stats::process_peak_rss_bytes();
    if (man.status == "running") man.status = "completed";
    obs::write_manifest(manifest_path, man);
    return rc;
  };

  const bool out_is_dir = all || out.empty() || out.back() == '/';
  std::uint64_t done = 0;
  for (const trace::WorkloadDesc* w : targets) {
    std::string path = out;
    if (out_is_dir) {
      if (!path.empty() && path.back() != '/') path += '/';
      path += w->name + ".ecctrace";
    }
    const std::uint64_t s =
        seed ? *seed : trace::paper_sweep_seed(w->name);
    const std::uint64_t ops = tracefile::record_workload_trace(
        *w, cores, ops_per_core, s, path);
    const auto res = tracefile::validate_file(path);
    if (!res.ok) {
      std::fprintf(stderr, "tracetool record: %s failed post-write "
                   "validation: %s\n", path.c_str(), res.error.c_str());
      return finish(1);
    }
    ++done;
    if (hb.enabled()) {
      obs::Heartbeat::Tick t;
      t.phase = "record";
      t.done = done;
      t.total = targets.size();
      t.counters = {{"ops_recorded", static_cast<double>(ops)}};
      hb.tick(t);
    }
    std::printf("recorded %-14s -> %s (%" PRIu64 " ops, %" PRIu64
                " bytes, seed %" PRIu64 ")\n",
                w->name.c_str(), path.c_str(), ops, res.file_bytes, s);
  }
  return finish(0);
}

int cmd_info(const std::string& path) {
  tracefile::TraceReader reader(path);
  const tracefile::TraceMeta& m = reader.meta();
  std::printf("file:        %s\n", path.c_str());
  std::printf("version:     %u\n", tracefile::kFormatVersion);
  std::printf("point:       %s\n", tracefile::to_string(m.point).c_str());
  std::printf("workload:    %s\n", m.workload.c_str());
  std::printf("cores:       %u\n", m.cores);
  std::printf("seed:        %" PRIu64 "\n", m.seed);
  std::printf("ops:         %" PRIu64 "\n", reader.total_ops());
  std::printf("chunks:      %zu\n", reader.chunk_count());
  std::printf("file bytes:  %" PRIu64 "\n", reader.file_bytes());
  if (reader.total_ops() > 0) {
    std::printf("bytes/op:    %.2f\n",
                static_cast<double>(reader.file_bytes()) /
                    static_cast<double>(reader.total_ops()));
  }
  return 0;
}

int cmd_validate(int argc, char** argv) {
  if (argc < 3) return usage(stderr, 2);
  obs::Heartbeat& hb = obs::Heartbeat::global();
  hb.set_tool("tracetool");
  int rc = 0;
  for (int i = 2; i < argc; ++i) {
    const auto res = tracefile::validate_file(argv[i]);
    if (hb.enabled()) {
      obs::Heartbeat::Tick t;
      t.phase = "validate";
      t.done = static_cast<std::uint64_t>(i - 1);
      t.total = static_cast<std::uint64_t>(argc - 2);
      hb.tick(t);
    }
    if (res.ok) {
      std::printf("%s: OK (%s, %" PRIu64 " ops, %" PRIu64 " chunks, %"
                  PRIu64 " bytes)\n",
                  argv[i], tracefile::to_string(res.meta.point).c_str(),
                  res.ops, res.chunks, res.file_bytes);
    } else {
      std::fprintf(stderr, "%s: FAILED: %s\n", argv[i], res.error.c_str());
      rc = 1;
    }
  }
  return rc;
}

int cmd_stats(int argc, char** argv) {
  std::string path;
  bool json = false;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (path.empty() && arg.rfind("--", 0) != 0) {
      path = arg;
    } else {
      std::fprintf(stderr, "tracetool stats: unknown flag '%s'\n",
                   arg.c_str());
      return 2;
    }
  }
  if (path.empty()) return usage(stderr, 2);

  tracefile::TraceReader reader(path);
  const tracefile::TraceMeta& m = reader.meta();
  // Stable dotted stat paths (the --json contract; scripts key on these):
  // pre-LLC traces emit trace.ops/.writes/.write_fraction/.unique_lines/
  // .mean_gap plus trace.core<N>.ops; post-LLC traces emit trace.requests,
  // trace.class.*, and the cycle span.
  std::vector<std::pair<std::string, double>> stats;
  if (m.point == tracefile::CapturePoint::kPreLlc) {
    std::uint64_t ops = 0, writes = 0, gap_sum = 0;
    std::unordered_set<std::uint64_t> lines;
    std::vector<std::uint64_t> per_core(m.cores, 0);
    tracefile::PreOp rec;
    while (reader.next(rec)) {
      ++ops;
      if (rec.op.is_write) ++writes;
      gap_sum += rec.op.gap;
      lines.insert(rec.op.line);
      ++per_core[rec.core];
    }
    const double write_frac =
        ops ? static_cast<double>(writes) / static_cast<double>(ops) : 0.0;
    const double mean_gap =
        ops ? static_cast<double>(gap_sum) / static_cast<double>(ops) : 0.0;
    stats.emplace_back("trace.ops", static_cast<double>(ops));
    stats.emplace_back("trace.writes", static_cast<double>(writes));
    stats.emplace_back("trace.write_fraction", write_frac);
    stats.emplace_back("trace.unique_lines",
                       static_cast<double>(lines.size()));
    stats.emplace_back("trace.mean_gap", mean_gap);
    for (unsigned c = 0; c < m.cores; ++c) {
      stats.emplace_back("trace.core" + std::to_string(c) + ".ops",
                         static_cast<double>(per_core[c]));
    }
    if (!json) {
      std::printf("%s: %s, workload %s, %u cores\n", path.c_str(),
                  tracefile::to_string(m.point).c_str(), m.workload.c_str(),
                  m.cores);
      std::printf("ops:            %" PRIu64 "\n", ops);
      std::printf("writes:         %" PRIu64 " (%.1f%%)\n", writes,
                  100.0 * write_frac);
      std::printf("unique lines:   %zu (%.1f MB touched)\n", lines.size(),
                  static_cast<double>(lines.size()) * 64.0 / (1024 * 1024));
      std::printf("mean gap:       %.2f instructions\n", mean_gap);
      for (unsigned c = 0; c < m.cores; ++c) {
        std::printf("core %-2u ops:    %" PRIu64 "\n", c, per_core[c]);
      }
    }
  } else {
    std::uint64_t ops = 0, writes = 0;
    std::uint64_t by_class[4] = {0, 0, 0, 0};
    std::uint64_t first_cycle = 0, last_cycle = 0;
    tracefile::PostOp rec;
    while (reader.next(rec)) {
      if (ops == 0) first_cycle = rec.cycle;
      last_cycle = rec.cycle;
      ++ops;
      if (rec.is_write) ++writes;
      ++by_class[static_cast<unsigned>(rec.line_class) & 3u];
    }
    const double write_frac =
        ops ? static_cast<double>(writes) / static_cast<double>(ops) : 0.0;
    stats.emplace_back("trace.requests", static_cast<double>(ops));
    stats.emplace_back("trace.writes", static_cast<double>(writes));
    stats.emplace_back("trace.write_fraction", write_frac);
    stats.emplace_back("trace.class.data", static_cast<double>(by_class[0]));
    stats.emplace_back("trace.class.ecc_parity",
                       static_cast<double>(by_class[1]));
    stats.emplace_back("trace.class.ecc_correction",
                       static_cast<double>(by_class[2]));
    stats.emplace_back("trace.class.other",
                       static_cast<double>(by_class[3]));
    stats.emplace_back("trace.cycle_first",
                       static_cast<double>(first_cycle));
    stats.emplace_back("trace.cycle_last", static_cast<double>(last_cycle));
    if (!json) {
      std::printf("%s: %s, workload %s, %u cores\n", path.c_str(),
                  tracefile::to_string(m.point).c_str(), m.workload.c_str(),
                  m.cores);
      std::printf("requests:       %" PRIu64 "\n", ops);
      std::printf("writes:         %" PRIu64 " (%.1f%%)\n", writes,
                  100.0 * write_frac);
      std::printf("data:           %" PRIu64 "\n", by_class[0]);
      std::printf("ecc parity:     %" PRIu64 "\n", by_class[1]);
      std::printf("ecc correction: %" PRIu64 "\n", by_class[2]);
      std::printf("ecc other:      %" PRIu64 "\n", by_class[3]);
      std::printf("cycle span:     %" PRIu64 "..%" PRIu64 "\n", first_cycle,
                  last_cycle);
    }
  }
  if (json) {
    runner::Json doc = runner::Json::object();
    doc.set("schema", "eccsim.tracestats/1");
    doc.set("file", path);
    runner::Json meta = runner::Json::object();
    meta.set("point", tracefile::to_string(m.point));
    meta.set("workload", m.workload);
    meta.set("cores", static_cast<std::uint64_t>(m.cores));
    // As a string: 64-bit seeds do not survive the JSON double round-trip.
    meta.set("seed", std::to_string(m.seed));
    doc.set("meta", meta);
    runner::Json flat = runner::Json::object();
    for (const auto& [key, value] : stats) flat.set(key, value);
    doc.set("stats", flat);
    std::printf("%s\n", doc.dump(2).c_str());
  }
  return 0;
}

int cmd_head(int argc, char** argv) {
  if (argc < 3) return usage(stderr, 2);
  const std::string path = argv[2];
  std::uint64_t n = 10;
  for (int i = 3; i < argc; ++i) {
    const char* v = flag_value(argc, argv, i, "-n");
    if (v != nullptr) {
      n = std::strtoull(v, nullptr, 10);
    } else {
      std::fprintf(stderr, "tracetool head: unknown flag '%s'\n", argv[i]);
      return 2;
    }
  }
  tracefile::TraceReader reader(path);
  if (reader.meta().point == tracefile::CapturePoint::kPreLlc) {
    std::printf("%-6s %-6s %-6s %-8s %s\n", "#", "core", "rw", "gap",
                "line");
    tracefile::PreOp rec;
    for (std::uint64_t i = 0; i < n && reader.next(rec); ++i) {
      std::printf("%-6" PRIu64 " %-6u %-6s %-8u %" PRIu64 "\n", i, rec.core,
                  rec.op.is_write ? "W" : "R", rec.op.gap, rec.op.line);
    }
  } else {
    std::printf("%-6s %-10s %-6s %-6s ch/rk/bk %-10s %s\n", "#", "cycle",
                "rw", "class", "row", "col");
    tracefile::PostOp rec;
    for (std::uint64_t i = 0; i < n && reader.next(rec); ++i) {
      std::printf("%-6" PRIu64 " %-10" PRIu64 " %-6s %-6u %u/%u/%u  %-10"
                  PRIu64 " %u\n",
                  i, rec.cycle, rec.is_write ? "W" : "R",
                  static_cast<unsigned>(rec.line_class), rec.addr.channel,
                  rec.addr.rank, rec.addr.bank, rec.addr.row, rec.addr.col);
    }
  }
  return 0;
}

/// One generation's parameter table: geometry summary, then every timing
/// and current value with the x4/x8/x16 variants side by side.  The same
/// numbers the simulator uses (spec_for), so the printout is always in
/// sync with the model; docs/DRAM_SPECS.md carries the provenance.
void print_spec_table(dram::Generation gen) {
  const dram::DeviceWidth widths[] = {dram::DeviceWidth::kX4,
                                      dram::DeviceWidth::kX8,
                                      dram::DeviceWidth::kX16};
  dram::DramSpec specs[3];
  for (int i = 0; i < 3; ++i) specs[i] = dram::spec_for(gen, widths[i]);
  const dram::DramSpec& s = specs[0];

  std::printf("== %s: %" PRIu64 "Mb, %u banks", to_string(gen).c_str(),
              s.capacity_mbit, s.banks);
  if (s.bank_groups > 1) std::printf(" in %u groups", s.bank_groups);
  if (s.sub_channels > 1) std::printf(", %u sub-channels", s.sub_channels);
  std::printf(", %s refresh",
              s.refresh == dram::RefreshPolicy::kSameBank ? "same-bank"
                                                          : "all-bank");
  if (s.on_die_ecc.enabled) {
    std::printf(", on-die SECDED (%u,%u) coverage %.0f%%",
                s.on_die_ecc.data_bits + s.on_die_ecc.check_bits,
                s.on_die_ecc.data_bits, s.on_die_ecc.bit_fault_coverage * 100);
  }
  std::printf(" ==\n");

  std::printf("%-22s %10s %10s %10s\n", "parameter", "x4", "x8", "x16");
  auto row_u64 = [&](const char* name, auto get) {
    std::printf("%-22s %10llu %10llu %10llu\n", name,
                static_cast<unsigned long long>(get(specs[0])),
                static_cast<unsigned long long>(get(specs[1])),
                static_cast<unsigned long long>(get(specs[2])));
  };
  auto row_f = [&](const char* name, auto get) {
    std::printf("%-22s %10.1f %10.1f %10.1f\n", name, get(specs[0]),
                get(specs[1]), get(specs[2]));
  };
  using S = const dram::DramSpec&;
  row_u64("rows", [](S d) { return d.rows; });
  row_u64("columns", [](S d) { return d.columns; });
  row_u64("page bytes", [](S d) { return d.page_bytes; });
  std::printf("timing (cycles @ 1 GHz)\n");
  row_u64("  tRCD", [](S d) { return d.timing.tRCD; });
  row_u64("  tCL", [](S d) { return d.timing.tCL; });
  row_u64("  tCWL", [](S d) { return d.timing.tCWL; });
  row_u64("  tRP", [](S d) { return d.timing.tRP; });
  row_u64("  tRAS", [](S d) { return d.timing.tRAS; });
  row_u64("  tRC", [](S d) { return d.timing.tRC; });
  row_u64("  tRRD_S", [](S d) { return d.timing.tRRD_S; });
  row_u64("  tRRD_L", [](S d) { return d.timing.tRRD_L; });
  row_u64("  tFAW", [](S d) { return d.timing.tFAW; });
  row_u64("  tCCD_S", [](S d) { return d.timing.tCCD_S; });
  row_u64("  tCCD_L", [](S d) { return d.timing.tCCD_L; });
  row_u64("  tBurst", [](S d) { return d.timing.tBurst; });
  row_u64("  tWR", [](S d) { return d.timing.tWR; });
  row_u64("  tWTR", [](S d) { return d.timing.tWTR; });
  row_u64("  tRTP", [](S d) { return d.timing.tRTP; });
  row_u64("  tRTW", [](S d) { return d.timing.tRTW; });
  row_u64("  tRFC", [](S d) { return d.timing.tRFC; });
  row_u64("  tREFI", [](S d) { return d.timing.tREFI; });
  row_u64("  tXP", [](S d) { return d.timing.tXP; });
  row_u64("  tCKE", [](S d) { return d.timing.tCKE; });
  std::printf("currents (mA) / VDD (V)\n");
  row_f("  IDD0", [](S d) { return d.currents.idd0; });
  row_f("  IDD2P", [](S d) { return d.currents.idd2p; });
  row_f("  IDD2N", [](S d) { return d.currents.idd2n; });
  row_f("  IDD3P", [](S d) { return d.currents.idd3p; });
  row_f("  IDD3N", [](S d) { return d.currents.idd3n; });
  row_f("  IDD4R", [](S d) { return d.currents.idd4r; });
  row_f("  IDD4W", [](S d) { return d.currents.idd4w; });
  row_f("  IDD5B", [](S d) { return d.currents.idd5b; });
  row_f("  VDD", [](S d) { return d.currents.vdd; });
  std::printf("derived energy (pJ per chip)\n");
  row_f("  ACT+PRE", [](S d) { return d.energy.act_pj; });
  row_f("  RD burst", [](S d) { return d.energy.rd_burst_pj; });
  row_f("  WR burst", [](S d) { return d.energy.wr_burst_pj; });
  row_f("  REF", [](S d) { return d.energy.refresh_pj; });
}

int cmd_specs(int argc, char** argv) {
  std::optional<dram::Generation> only;
  for (int i = 2; i < argc; ++i) {
    const char* v = flag_value(argc, argv, i, "--dram");
    if (v != nullptr) {
      only = dram::parse_generation(v);
      if (!only) {
        std::fprintf(stderr,
                     "tracetool specs: --dram must be ddr3, ddr4, or ddr5, "
                     "got '%s'\n", v);
        return 2;
      }
    } else {
      std::fprintf(stderr, "tracetool specs: unknown flag '%s'\n", argv[i]);
      return 2;
    }
  }
  const dram::Generation all[] = {dram::Generation::kDdr3,
                                  dram::Generation::kDdr4,
                                  dram::Generation::kDdr5};
  bool first = true;
  for (dram::Generation g : all) {
    if (only && g != *only) continue;
    if (!first) std::printf("\n");
    first = false;
    print_spec_table(g);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(stderr, 2);
  const std::string cmd = argv[1];
  try {
    if (cmd == "record") return cmd_record(argc, argv);
    if (cmd == "info" && argc == 3) return cmd_info(argv[2]);
    if (cmd == "validate") return cmd_validate(argc, argv);
    if (cmd == "stats") return cmd_stats(argc, argv);
    if (cmd == "head") return cmd_head(argc, argv);
    if (cmd == "list-workloads") {
      print_workloads();
      return 0;
    }
    if (cmd == "specs") return cmd_specs(argc, argv);
    if (cmd == "--help" || cmd == "-h" || cmd == "help") {
      return usage(stdout, 0);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "tracetool %s: %s\n", cmd.c_str(), e.what());
    return 1;
  }
  return usage(stderr, 2);
}
