// Ablation: where to cache the ECC/XOR lines (Sec. IV-C).  Multi-ECC [13]
// used a dedicated 128 KB ECC cache; the paper's methodology caches
// ECC-related lines in the 8 MB LLC alongside data ("identical to [13]
// with the exception that we cache the ECC correction bits in the 8MB LLC
// instead of a much smaller but dedicated 128KB ECC cache").  This bench
// quantifies the difference: XOR-cacheline hit rates, parity-update
// traffic, and EPI for LLC-shared vs dedicated caches of several sizes.
#include <cstdio>

#include "bench_common.hpp"

using namespace eccsim;

int main(int argc, char** argv) {
  eccsim::bench::init(argc, argv);
  std::printf("Ablation -- ECC-line cache placement (Sec. IV-C)\n\n");
  const auto desc = ecc::make_scheme(ecc::SchemeId::kLotEcc5Parity,
                                     ecc::SystemScale::kQuadEquivalent);
  Table t({"ECC cache", "EPI (pJ/instr)", "parity traffic/KI", "MAPI"});
  struct Cfg {
    const char* label;
    std::uint64_t bytes;
  };
  const Cfg cfgs[] = {
      {"shared 8MB LLC (paper)", 0},
      {"dedicated 512KB", 512ULL * 1024},
      {"dedicated 128KB ([13])", 128ULL * 1024},
      {"dedicated 32KB", 32ULL * 1024},
  };
  for (const Cfg& cfg : cfgs) {
    sim::SimOptions opts;
    opts.target_instructions = bench::target_instructions();
    opts.dedicated_ecc_cache_bytes = cfg.bytes;
    sim::SystemSim s(desc, trace::workload_by_name("milc"),
                     sim::CpuConfig{}, opts);
    const auto r = s.run();
    const double ki = static_cast<double>(r.instructions) / 1000.0;
    t.add_row({cfg.label, Table::num(r.epi_pj, 1),
               Table::num(static_cast<double>(r.mem.ecc_reads +
                                              r.mem.ecc_writes) /
                              ki,
                          2),
               Table::num(r.mapi, 4)});
  }
  bench::emit("ablation_ecc_cache", t);
  std::printf(
      "Smaller dedicated caches evict XOR lines sooner, inflating parity\n"
      "read-modify-write traffic -- the reason the paper co-locates ECC\n"
      "lines in the big LLC.  (A dedicated cache does free LLC data\n"
      "capacity, which can offset part of the loss on cache-tight\n"
      "workloads.)\n");
  return 0;
}
