# Empty dependencies file for fig15_perf_dual.
# This may be replaced when dependencies are built.
