// Multi-ECC [13]: low-storage chipkill via multi-line error correction.
//
// Detection (tier 1) is per line: one checksum byte per data chip, stored
// in the rank's ECC chip, which both detects an error and localizes the
// failed chip.  Correction (tier 2) is shared across a *group* of lines:
// one correction line per group holds, for each chip position, a GF(2^8)
// erasure code across the group members' shares, so a failed chip's bytes
// in any single group member can be rebuilt.  This drops the correction
// storage to 1/group_size of the data (~0.4% for 256-line groups) --
// Multi-ECC's 12.9% total in Table III.
//
// This reproduction implements tier 2 as a bitwise XOR across the group's
// per-chip shares (an erasure code of distance 2 across lines).  The
// original paper layers additional structure to survive a chip failure
// touching several lines of a group at once; since faults that hit a whole
// bank affect every group identically, the repair loop walks lines one at
// a time re-deriving the parity from already-corrected members, which
// handles that case for the fault patterns the Monte Carlo injects.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace eccsim::ecc {

/// Codec for one Multi-ECC correction group.
class MultiEccGroupCodec {
 public:
  /// `group_lines` data lines of 64B share one correction line.
  explicit MultiEccGroupCodec(unsigned group_lines = 256,
                              unsigned data_chips = 8);

  unsigned group_lines() const { return group_lines_; }
  unsigned data_chips() const { return data_chips_; }
  unsigned line_bytes() const { return 64; }
  unsigned detection_bytes_per_line() const { return data_chips_; }

  /// Per-line tier-1 checksums (one byte per chip).
  std::vector<std::uint8_t> detection_bits(
      std::span<const std::uint8_t> line) const;

  /// True iff the line disagrees with its stored checksums.
  bool detect(std::span<const std::uint8_t> line,
              std::span<const std::uint8_t> det) const;

  /// Chips whose checksum mismatches (tier-1 localization).
  std::vector<unsigned> locate(std::span<const std::uint8_t> line,
                               std::span<const std::uint8_t> det) const;

  /// The group's correction line: XOR of all member lines.
  std::vector<std::uint8_t> correction_line(
      std::span<const std::vector<std::uint8_t>> group) const;

  /// Incremental correction-line update for a write (old/new member value).
  void update_correction_line(std::span<std::uint8_t> corr,
                              std::span<const std::uint8_t> old_line,
                              std::span<const std::uint8_t> new_line) const;

  /// Repairs member `bad_index`, whose chip `bad_chip` failed, using the
  /// correction line and the other members.  Returns false if any other
  /// member also fails its checksums (correction then needs the caller to
  /// repair members in dependency order).
  bool correct_member(std::span<std::vector<std::uint8_t>> group,
                      std::span<const std::vector<std::uint8_t>> dets,
                      std::span<const std::uint8_t> corr,
                      unsigned bad_index, unsigned bad_chip) const;

 private:
  unsigned group_lines_;
  unsigned data_chips_;
  unsigned share_bytes_;
};

}  // namespace eccsim::ecc
