// Bank-pair error counters and the bank health table (Sec. III-B/C/E).
//
// Stored ECC resources are tracked at the granularity of pairs of banks in
// the same channel (pair k = banks 2k and 2k+1 of one rank).  Every
// detected error increments the pair's counter.  Below the threshold
// (default 4) the OS retires the affected physical page (plus the pages
// sharing its parities); at the threshold, the pair is recorded as faulty
// and the actual ECC correction bits of both banks are materialized in
// memory.  The table is the on-chip SRAM consulted by steps A1/A2 of
// Fig. 6; at 0.5 B per pair it costs 512 B for a 1024-bank system.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "dram/request.hpp"

namespace eccsim::eccparity {

/// Identifies one bank pair within a channel.
struct BankPairId {
  std::uint32_t channel = 0;
  std::uint32_t rank = 0;
  std::uint32_t pair = 0;  ///< bank / 2

  friend bool operator==(const BankPairId&, const BankPairId&) = default;

  std::uint64_t key() const {
    return (static_cast<std::uint64_t>(channel) << 40) |
           (static_cast<std::uint64_t>(rank) << 20) | pair;
  }
};

/// What a recorded error led to.
enum class ErrorAction {
  kRetirePage,   ///< counter below threshold: retire the page (Sec. III-C)
  kMarkFaulty,   ///< counter just saturated: materialize correction bits
  kAlreadyFaulty ///< the pair was already recorded as faulty
};

class BankHealthTable {
 public:
  explicit BankHealthTable(unsigned threshold = 4) : threshold_(threshold) {}

  static BankPairId pair_of(const dram::DramAddress& addr) {
    return BankPairId{addr.channel, addr.rank, addr.bank / 2};
  }

  /// Step A1/A2 of Fig. 6: is the bank containing `addr` recorded faulty?
  bool is_faulty(const dram::DramAddress& addr) const {
    return faulty_.contains(pair_of(addr).key());
  }
  bool is_faulty_pair(const BankPairId& id) const {
    return faulty_.contains(id.key());
  }

  /// Records a detected error in the bank containing `addr`.
  ErrorAction record_error(const dram::DramAddress& addr) {
    const BankPairId id = pair_of(addr);
    if (faulty_.contains(id.key())) return ErrorAction::kAlreadyFaulty;
    const unsigned count = ++counters_[id.key()];
    if (count >= threshold_) {
      faulty_.insert(id.key());
      return ErrorAction::kMarkFaulty;
    }
    return ErrorAction::kRetirePage;
  }

  /// Directly marks a pair faulty (e.g. from a scrub sweep that identified
  /// a device-level fault without waiting for demand errors).
  void mark_faulty(const BankPairId& id) { faulty_.insert(id.key()); }

  unsigned threshold() const { return threshold_; }
  std::size_t faulty_pairs() const { return faulty_.size(); }
  unsigned error_count(const BankPairId& id) const {
    const auto it = counters_.find(id.key());
    return it == counters_.end() ? 0 : it->second;
  }

  /// On-chip SRAM budget (Sec. III-E).  The paper states 512 B for a
  /// 1024-bank system at "0.5 B per pair of banks"; matching its headline
  /// number, we charge 0.5 B per bank (1 B per pair: a 4-bit saturating
  /// counter plus the faulty flag, rounded to a byte).
  static double sram_bytes(std::uint64_t total_banks) {
    return 0.5 * static_cast<double>(total_banks);
  }

 private:
  unsigned threshold_;
  std::unordered_map<std::uint64_t, unsigned> counters_;
  std::unordered_set<std::uint64_t> faulty_;
};

}  // namespace eccsim::eccparity
