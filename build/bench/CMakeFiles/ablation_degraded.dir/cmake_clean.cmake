file(REMOVE_RECURSE
  "CMakeFiles/ablation_degraded.dir/ablation_degraded.cpp.o"
  "CMakeFiles/ablation_degraded.dir/ablation_degraded.cpp.o.d"
  "ablation_degraded"
  "ablation_degraded.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_degraded.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
