# Empty compiler generated dependencies file for ecc_sim.
# This may be replaced when dependencies are built.
