file(REMOVE_RECURSE
  "CMakeFiles/eccparity_fuzz_test.dir/eccparity_fuzz_test.cpp.o"
  "CMakeFiles/eccparity_fuzz_test.dir/eccparity_fuzz_test.cpp.o.d"
  "eccparity_fuzz_test"
  "eccparity_fuzz_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eccparity_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
