# Empty dependencies file for fig09_workload_bandwidth.
# This may be replaced when dependencies are built.
