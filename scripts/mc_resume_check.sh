#!/bin/sh
# Kill-and-resume check for the Monte Carlo checkpoint machinery.
#
# Usage: ./scripts/mc_resume_check.sh <bench-binary>
#   e.g. ./scripts/mc_resume_check.sh build/bench/fig02_mtbf_channels
#
# Three smoke-sized runs of the same binary at a small chunk size:
#   1. reference   -- no checkpoint
#   2. interrupted -- checkpointing, slowed via ECCSIM_MC_CHUNK_DELAY_MS so
#                     a SIGKILL reliably lands mid-run
#   3. resumed     -- same checkpoint file, full speed
# The resumed run must (a) actually restore chunks from the checkpoint
# (its stderr reports "resuming"), (b) produce stdout and CSV output
# byte-identical to the uninterrupted reference, and (c) record
# "resumed": true in its run manifest (see docs/OBSERVABILITY.md).
# results/*.json files are excluded from the byte comparison: they embed
# wall-clock timings.
set -e

bin=$1
if [ -z "$bin" ] || [ ! -x "$bin" ]; then
  echo "usage: $0 <bench-binary>" >&2
  exit 2
fi
name=$(basename "$bin")
cd "$(dirname "$0")/.."

work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT
ck="$work/checkpoint.txt"
csv="bench_results/smoke/$name.csv"

export ECCSIM_SMOKE=1
export ECCSIM_MC_CHUNK=32

echo "[mc-resume] $name: reference run" >&2
"$bin" >"$work/ref.out" 2>/dev/null
cp "$csv" "$work/ref.csv"

echo "[mc-resume] $name: interrupted run (SIGKILL mid-way)" >&2
ECCSIM_MC_CHUNK_DELAY_MS=200 "$bin" --mc-checkpoint "$ck" \
  >/dev/null 2>"$work/killed.err" &
pid=$!
sleep 1
kill -9 "$pid" 2>/dev/null || true
wait "$pid" 2>/dev/null || true
if [ ! -s "$ck" ]; then
  echo "[mc-resume] FAIL: no checkpoint written before the kill" >&2
  exit 1
fi
chunks=$(grep -c '^mcchunk1 ' "$ck" || true)
echo "[mc-resume] $name: $chunks chunk(s) checkpointed before the kill" >&2

echo "[mc-resume] $name: resumed run" >&2
"$bin" --mc-checkpoint "$ck" >"$work/res.out" 2>"$work/res.err"
if ! grep -q 'resuming' "$work/res.err"; then
  echo "[mc-resume] FAIL: resumed run restored nothing from $ck" >&2
  cat "$work/res.err" >&2
  exit 1
fi
if ! cmp -s "$work/ref.out" "$work/res.out"; then
  echo "[mc-resume] FAIL: resumed stdout differs from the reference" >&2
  diff "$work/ref.out" "$work/res.out" >&2 || true
  exit 1
fi
if ! cmp -s "$work/ref.csv" "$csv"; then
  echo "[mc-resume] FAIL: resumed CSV differs from the reference" >&2
  diff "$work/ref.csv" "$csv" >&2 || true
  exit 1
fi
manifest="results/smoke/$name.manifest.json"
if ! grep -q '"resumed": true' "$manifest"; then
  echo "[mc-resume] FAIL: $manifest does not record \"resumed\": true" >&2
  cat "$manifest" >&2 || true
  exit 1
fi
if ! grep -q '"status": "completed"' "$manifest"; then
  echo "[mc-resume] FAIL: $manifest is not marked completed" >&2
  exit 1
fi
echo "[mc-resume] $name: OK (resume is byte-identical, manifest records it)" >&2
