// Bulk GF(2^8) region kernels with runtime CPU dispatch.
//
// The Reed-Solomon hot loops (`parity`, `syndromes`) and the XOR-share
// codecs spend nearly all of their time multiplying a byte region by a
// field constant and folding it into an accumulator.  This header exposes
// those three primitives --
//
//   gf_mul_region      dst[i]  = c * src[i]
//   gf_mul_region_acc  dst[i] ^= c * src[i]
//   gf_affine_combine  dst[i]  = xor_r coeffs[r] * rows[r][i]
//   gf_xor_region      dst[i] ^= src[i]            (the c == 1 special case)
//
// -- in three interchangeable implementations selected once per process:
//
//   scalar  The original per-symbol log/exp table walk (Field<8>::mul).
//           Slow, but byte-for-byte the reference oracle every other
//           kernel is tested against.
//   slice8  A 64 KiB full product table (kMul[c][x]); the region loop is
//           unrolled to consume 8 bytes per iteration ("slice-by-8"), so
//           a multiply is one L1 load with no zero-checks or log adds.
//   simd    SSSE3/AVX2 PSHUFB over 4-bit nibble tables: c*x is split as
//           c*lo(x) ^ c*hi(x), each half answered by a 16-entry shuffle,
//           giving 16 (SSSE3) or 32 (AVX2) products per instruction.
//
// Dispatch policy: the widest kernel the CPU supports wins (AVX2 > SSSE3
// > slice8); the environment variable ECCSIM_KERNEL=scalar|slice8|simd
// overrides it.  An unknown value is a usage error and exits with code 2,
// matching the bench flag convention, and requesting `simd` on a CPU
// without SSSE3 also exits 2 rather than silently falling back -- a forced
// kernel is a measurement request, not a hint.  See docs/KERNELS.md.
//
// All kernels are bit-identical by construction *and* by test
// (tests/gf_kernels_test.cpp compares every variant against the scalar
// oracle over all alignments and lengths), so kernel choice can never
// change simulation results -- only wall-clock.
//
// This header deliberately lives inside the gf module (see
// tools/ecclint/layers.txt): the scalar oracle *is* Field<8>, so a
// separate kernels module would create a gf <-> kernels cycle.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace eccsim::gf {

/// The selectable region-kernel implementations, ordered by speed.
enum class Kernel {
  kScalar = 0,  ///< Field<8>::mul per byte; the test oracle.
  kSlice8 = 1,  ///< 64 KiB product table, 8 bytes per loop iteration.
  kSimd = 2,    ///< PSHUFB nibble tables (SSSE3 or AVX2 at runtime).
};

/// Stable lowercase name, the same token ECCSIM_KERNEL accepts.
const char* kernel_name(Kernel k);

/// True iff `k` can run on this CPU (scalar/slice8 always; simd needs
/// SSSE3).
bool kernel_available(Kernel k);

/// True iff the simd kernel will use 256-bit AVX2 paths (informational;
/// affects speed only, never results).
bool kernel_simd_uses_avx2();

/// Resolves ECCSIM_KERNEL + CPU features to a kernel.  Re-reads the
/// environment on every call (so tests can setenv/unsetenv around it);
/// exits with code 2 on an unknown value or an unavailable forced kernel.
Kernel resolve_kernel_from_env();

/// The process-wide active kernel: `resolve_kernel_from_env()` evaluated
/// once and cached.  All dispatching entry points below route through it.
Kernel active_kernel();

/// Overrides the cached active kernel programmatically (benchmarks pin a
/// kernel per measurement loop; tests restore the old value).  Returns the
/// previous active kernel.  The override must be available on this CPU.
Kernel set_kernel_override(Kernel k);

// --- dispatching entry points ----------------------------------------------
// `src` and `dst` may alias exactly (in-place) but must not partially
// overlap.  len == 0 is a no-op; null pointers are fine when len == 0.

/// dst[i] = c * src[i] for i in [0, len).
void gf_mul_region(std::uint8_t c, const std::uint8_t* src, std::uint8_t* dst,
                   std::size_t len);

/// dst[i] ^= c * src[i] for i in [0, len).
void gf_mul_region_acc(std::uint8_t c, const std::uint8_t* src,
                       std::uint8_t* dst, std::size_t len);

/// dst[i] ^= src[i] for i in [0, len).
void gf_xor_region(const std::uint8_t* src, std::uint8_t* dst,
                   std::size_t len);

/// dst[i] = xor over r of coeffs[r] * rows[r * row_stride + i], the
/// generator-matrix row combine used by RS encode and syndromes.  `dst`
/// is overwritten (zero rows contribute nothing).  Rows live row-major in
/// one block with `row_stride >= len` bytes between row starts.
void gf_affine_combine(const std::uint8_t* coeffs, std::size_t n_rows,
                       const std::uint8_t* rows, std::size_t row_stride,
                       std::uint8_t* dst, std::size_t len);

// --- per-kernel entry points (tests and benchmarks) -------------------------
// Identical contracts to the dispatchers above, with the kernel pinned.
// The *_simd variants require kernel_available(Kernel::kSimd).

void gf_mul_region_scalar(std::uint8_t c, const std::uint8_t* src,
                          std::uint8_t* dst, std::size_t len);
void gf_mul_region_slice8(std::uint8_t c, const std::uint8_t* src,
                          std::uint8_t* dst, std::size_t len);
void gf_mul_region_simd(std::uint8_t c, const std::uint8_t* src,
                        std::uint8_t* dst, std::size_t len);

void gf_mul_region_acc_scalar(std::uint8_t c, const std::uint8_t* src,
                              std::uint8_t* dst, std::size_t len);
void gf_mul_region_acc_slice8(std::uint8_t c, const std::uint8_t* src,
                              std::uint8_t* dst, std::size_t len);
void gf_mul_region_acc_simd(std::uint8_t c, const std::uint8_t* src,
                            std::uint8_t* dst, std::size_t len);

void gf_xor_region_scalar(const std::uint8_t* src, std::uint8_t* dst,
                          std::size_t len);
void gf_xor_region_slice8(const std::uint8_t* src, std::uint8_t* dst,
                          std::size_t len);
void gf_xor_region_simd(const std::uint8_t* src, std::uint8_t* dst,
                        std::size_t len);

void gf_affine_combine_scalar(const std::uint8_t* coeffs, std::size_t n_rows,
                              const std::uint8_t* rows, std::size_t row_stride,
                              std::uint8_t* dst, std::size_t len);
void gf_affine_combine_slice8(const std::uint8_t* coeffs, std::size_t n_rows,
                              const std::uint8_t* rows, std::size_t row_stride,
                              std::uint8_t* dst, std::size_t len);
void gf_affine_combine_simd(const std::uint8_t* coeffs, std::size_t n_rows,
                            const std::uint8_t* rows, std::size_t row_stride,
                            std::uint8_t* dst, std::size_t len);

/// A precompiled GF(2^8) matrix-vector product: out = vec x M for a fixed
/// matrix M (n_rows x width), the shape of RS encoding (M = generator
/// rows, vec = data) and syndrome computation (M = alpha powers, vec =
/// codeword).
///
/// The memory codes in this repository have *narrow* parity (2t <= 8
/// check bytes) and long input vectors, which is the worst possible shape
/// for per-row region kernels: a PSHUFB over a 4-byte row is all setup
/// and no work.  So apply() picks its strategy from the matrix shape, not
/// just the active kernel:
///
///   scalar        the naive per-symbol Field<8>::mul double loop -- the
///                 oracle, bit-compared against the others in tests.
///   width <= 8    per-position contribution tables: row r's 256 possible
///                 products are packed into one uint64 each at build time,
///                 so apply() is n_rows table loads + XORs regardless of
///                 kernel (slice8 and simd share this path; a shuffle
///                 cannot beat an L1 load for a <= 8-byte row).
///   width  > 8    per-row gf_mul_region_acc in the active kernel.
///
/// All strategies are generated from Field<8>::mul, so they are
/// bit-identical by construction; tests/gf_kernels_test.cpp checks it.
class GfMatApply {
 public:
  GfMatApply() = default;

  /// Compiles `rows` (n_rows x width, row-major, stride == width).
  GfMatApply(const std::uint8_t* rows, std::size_t n_rows, std::size_t width);

  std::size_t rows() const { return n_rows_; }
  std::size_t width() const { return width_; }

  /// out[0..width) = xor over r of vec[r] * M[r].  `n` must equal rows().
  /// Uses the process-wide active kernel.
  void apply(const std::uint8_t* vec, std::size_t n, std::uint8_t* out) const;

  /// Same, with the kernel pinned (tests compare variants directly).
  void apply_with(Kernel k, const std::uint8_t* vec, std::size_t n,
                  std::uint8_t* out) const;

 private:
  std::size_t n_rows_ = 0;
  std::size_t width_ = 0;
  std::vector<std::uint8_t> rows_;      ///< the matrix (oracle + wide path)
  std::vector<std::uint64_t> tables_;   ///< width<=8: n_rows*256 packed rows
};

}  // namespace eccsim::gf
