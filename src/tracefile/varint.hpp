// LEB128 varint + zigzag primitives for the .ecctrace chunk payloads, and
// a bounds-checked decode cursor.  Dependency-free; all corruption paths
// (overrun, overlong varint) throw TraceError instead of reading past the
// buffer or looping.
#pragma once

#include <cstdint>
#include <string>

#include "tracefile/format.hpp"

namespace eccsim::tracefile {

/// Appends `v` to `out` as an unsigned LEB128 varint (1-10 bytes).
inline void put_varint(std::string& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>((v & 0x7Fu) | 0x80u));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

/// Appends a fixed-width little-endian u32 / u64.
inline void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

inline void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

inline std::uint32_t get_u32(const unsigned char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

inline std::uint64_t get_u64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

/// Zigzag-maps a signed delta so small magnitudes of either sign encode
/// as short varints.  Deltas are computed modulo 2^64, so the full u64
/// line-address space round-trips.
inline std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

inline std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1u);
}

/// Read cursor over one decoded chunk payload.  Every read is
/// bounds-checked; a malformed payload that survives its CRC (or a logic
/// error) surfaces as TraceError, never undefined behavior.
class ByteCursor {
 public:
  ByteCursor(const unsigned char* data, std::size_t size)
      : data_(data), size_(size) {}

  std::uint64_t varint() {
    std::uint64_t v = 0;
    for (unsigned shift = 0; shift < 64; shift += 7) {
      if (pos_ >= size_) {
        throw TraceError("ecctrace: varint overruns chunk payload");
      }
      const unsigned char b = data_[pos_++];
      v |= static_cast<std::uint64_t>(b & 0x7Fu) << shift;
      if ((b & 0x80u) == 0) return v;
    }
    throw TraceError("ecctrace: overlong varint");
  }

  bool done() const { return pos_ == size_; }
  std::size_t position() const { return pos_; }

 private:
  const unsigned char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace eccsim::tracefile
