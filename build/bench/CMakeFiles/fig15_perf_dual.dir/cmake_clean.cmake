file(REMOVE_RECURSE
  "CMakeFiles/fig15_perf_dual.dir/fig15_perf_dual.cpp.o"
  "CMakeFiles/fig15_perf_dual.dir/fig15_perf_dual.cpp.o.d"
  "fig15_perf_dual"
  "fig15_perf_dual.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_perf_dual.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
