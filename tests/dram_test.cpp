// Unit tests for the DDR3 DRAM simulator: device parameters, address
// mapping, channel timing constraints, power accounting, and the
// memory-system facade.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "dram/address_map.hpp"
#include "dram/channel.hpp"
#include "dram/spec.hpp"
#include "dram/memory_system.hpp"

namespace eccsim::dram {
namespace {

// ---------------------------------------------------------------------------
// Device parameters

TEST(Ddr3Params, GeometryMatchesCapacity) {
  for (auto w : {DeviceWidth::kX4, DeviceWidth::kX8, DeviceWidth::kX16}) {
    const Ddr3Device d = micron_2gb(w);
    const std::uint64_t bits = static_cast<std::uint64_t>(d.banks) * d.rows *
                               d.columns * static_cast<unsigned>(w);
    EXPECT_EQ(bits, d.capacity_mbit * 1024 * 1024) << to_string(w);
  }
}

TEST(Ddr3Params, X16HasFewerRows) {
  EXPECT_EQ(micron_2gb(DeviceWidth::kX4).rows, 32768u);
  EXPECT_EQ(micron_2gb(DeviceWidth::kX8).rows, 32768u);
  EXPECT_EQ(micron_2gb(DeviceWidth::kX16).rows, 16384u);
}

TEST(Ddr3Params, DerivedEnergiesArePositive) {
  for (auto w : {DeviceWidth::kX4, DeviceWidth::kX8, DeviceWidth::kX16}) {
    const Ddr3Device d = micron_2gb(w);
    EXPECT_GT(d.energy.act_pj, 0.0);
    EXPECT_GT(d.energy.rd_burst_pj, 0.0);
    EXPECT_GT(d.energy.wr_burst_pj, 0.0);
    EXPECT_GT(d.energy.refresh_pj, 0.0);
    EXPECT_GT(d.energy.bg_pre_pj_cyc, d.energy.bg_pd_pj_cyc);
    EXPECT_GT(d.energy.bg_act_pj_cyc, d.energy.bg_pre_pj_cyc);
  }
}

TEST(Ddr3Params, WiderChipsBurnMoreBurstEnergy) {
  const auto x4 = micron_2gb(DeviceWidth::kX4);
  const auto x8 = micron_2gb(DeviceWidth::kX8);
  const auto x16 = micron_2gb(DeviceWidth::kX16);
  EXPECT_LT(x4.energy.rd_burst_pj, x8.energy.rd_burst_pj);
  EXPECT_LT(x8.energy.rd_burst_pj, x16.energy.rd_burst_pj);
}

TEST(Ddr3Params, FasterSpeedBinShortensLatencyAndRaisesCurrent) {
  const auto base = micron_2gb(DeviceWidth::kX8);
  const auto fast = micron_2gb(DeviceWidth::kX8, 1.16);
  EXPECT_LT(fast.timing.tCL, base.timing.tCL);
  EXPECT_GT(fast.currents.idd4r, base.currents.idd4r);
}

// ---------------------------------------------------------------------------
// Address map

TEST(AddressMap, DecodeEncodeRoundTrip) {
  MemGeometry g;
  g.channels = 8;
  g.ranks_per_channel = 4;
  g.banks_per_rank = 8;
  g.rows_per_bank = 1024;
  g.line_bytes = 64;
  AddressMap map(g);
  for (std::uint64_t line = 0; line < g.total_data_lines();
       line += 977) {  // prime stride samples the space
    EXPECT_EQ(map.encode(map.decode(line)), line);
  }
}

TEST(AddressMap, AdjacentPagesInterleaveAcrossChannels) {
  MemGeometry g;
  g.channels = 4;
  g.rows_per_bank = 256;
  AddressMap map(g);
  const std::uint32_t lpr = g.lines_per_row();
  for (unsigned p = 0; p < 16; ++p) {
    const DramAddress a = map.decode(static_cast<std::uint64_t>(p) * lpr);
    EXPECT_EQ(a.channel, p % 4u);
  }
}

TEST(AddressMap, LinesWithinPageShareChannel) {
  MemGeometry g;
  g.rows_per_bank = 256;
  AddressMap map(g);
  const DramAddress first = map.decode(0);
  for (std::uint32_t i = 1; i < g.lines_per_row(); ++i) {
    const DramAddress a = map.decode(i);
    EXPECT_EQ(a.channel, first.channel);
  }
}

TEST(AddressMap, ConsecutiveLinesWithinChannelSpreadBanks) {
  // The High-Performance close-page map: lines of one page interleave
  // across every bank of the channel, so streams never serialize on one
  // bank's tRC recovery.
  MemGeometry g;
  g.channels = 2;
  g.banks_per_rank = 8;
  g.rows_per_bank = 64;
  AddressMap map(g);
  std::set<std::uint32_t> banks;
  for (unsigned i = 0; i < 8; ++i) {
    const DramAddress a = map.decode(i);
    ASSERT_EQ(a.channel, 0u);
    banks.insert(a.bank);
  }
  EXPECT_EQ(banks.size(), 8u);
}

TEST(AddressMap, ConsecutiveLinesSpreadRanksAfterBanks) {
  MemGeometry g;
  g.channels = 2;
  g.banks_per_rank = 8;
  g.ranks_per_channel = 4;
  g.rows_per_bank = 64;
  AddressMap map(g);
  // Line 8 wraps to bank 0 of the next rank.
  EXPECT_EQ(map.decode(0).rank, 0u);
  EXPECT_EQ(map.decode(8).rank, 1u);
  EXPECT_EQ(map.decode(8).bank, 0u);
}

TEST(AddressMap, GeometryByteAccounting) {
  MemGeometry g;
  g.channels = 8;
  g.ranks_per_channel = 4;
  g.banks_per_rank = 8;
  g.rows_per_bank = 32768;
  g.line_bytes = 64;
  // 8 * 4 * 8 banks * 32768 rows * 4KB = 32 GiB
  EXPECT_EQ(g.total_data_bytes(), 32ULL * 1024 * 1024 * 1024);
}

// ---------------------------------------------------------------------------
// Channel timing

ChannelConfig test_channel_config() {
  ChannelConfig cc;
  cc.device = micron_2gb(DeviceWidth::kX8);
  cc.ranks = 2;
  cc.banks = 8;
  cc.chips_per_rank = 9;
  return cc;
}

MemRequest make_req(std::uint64_t id, std::uint32_t rank, std::uint32_t bank,
                    std::uint64_t row, std::uint32_t col, bool write) {
  MemRequest r;
  r.id = id;
  r.addr = DramAddress{0, rank, bank, row, col};
  r.is_write = write;
  return r;
}

/// Runs the channel until all completions arrive or `limit` cycles pass.
std::vector<MemCompletion> run_until_drained(Channel& ch, std::uint64_t limit) {
  std::vector<MemCompletion> out;
  std::uint64_t now = 0;
  while ((ch.pending() || ch.in_flight()) && now < limit) {
    ch.tick(++now, out);
  }
  return out;
}

TEST(Channel, SingleReadLatencyRespectsActToData) {
  Channel ch(test_channel_config());
  ASSERT_TRUE(ch.enqueue(make_req(1, 0, 0, 0, 0, false)));
  const auto done = run_until_drained(ch, 10000);
  ASSERT_EQ(done.size(), 1u);
  const auto& t = test_channel_config().device.timing;
  // Data cannot finish before ACT + tRCD + tCL + tBurst.
  EXPECT_GE(done[0].finish_cycle, t.tRCD + t.tCL + t.tBurst);
  EXPECT_LE(done[0].finish_cycle, t.tRCD + t.tCL + t.tBurst + t.tXP + 8);
}

TEST(Channel, SameBankBackToBackSeparatedByTrc) {
  Channel ch(test_channel_config());
  ASSERT_TRUE(ch.enqueue(make_req(1, 0, 3, 7, 0, false)));
  ASSERT_TRUE(ch.enqueue(make_req(2, 0, 3, 9, 0, false)));  // same bank
  const auto done = run_until_drained(ch, 10000);
  ASSERT_EQ(done.size(), 2u);
  const auto& t = test_channel_config().device.timing;
  const std::uint64_t gap = done[1].finish_cycle - done[0].finish_cycle;
  EXPECT_GE(gap, static_cast<std::uint64_t>(t.tRC) - t.tBurst);
}

TEST(Channel, DifferentBanksPipelineOnDataBus) {
  Channel ch(test_channel_config());
  for (unsigned i = 0; i < 8; ++i) {
    ASSERT_TRUE(ch.enqueue(make_req(i, 0, i, 0, 0, false)));
  }
  const auto done = run_until_drained(ch, 10000);
  ASSERT_EQ(done.size(), 8u);
  // Bus-limited: at steady state consecutive reads finish ~tBurst apart
  // (modulo tRRD/tFAW); total span must be far below 8 serial accesses.
  const auto& t = test_channel_config().device.timing;
  const std::uint64_t span = done.back().finish_cycle - done[0].finish_cycle;
  EXPECT_LT(span, 7ULL * t.tRC);
  EXPECT_GE(span, 7ULL * t.tBurst);
}

TEST(Channel, TfawLimitsActivateBursts) {
  auto cfg = test_channel_config();
  Channel ch(cfg);
  // 5 activates to distinct banks in one rank: the 5th waits for tFAW.
  for (unsigned i = 0; i < 5; ++i) {
    ASSERT_TRUE(ch.enqueue(make_req(i, 0, i, 0, 0, false)));
  }
  const auto done = run_until_drained(ch, 10000);
  ASSERT_EQ(done.size(), 5u);
  const auto& t = cfg.device.timing;
  // The 5th access cannot finish before tFAW + tRCD + tCL + tBurst.
  EXPECT_GE(done[4].finish_cycle,
            static_cast<std::uint64_t>(t.tFAW) + t.tRCD + t.tCL + t.tBurst);
}

TEST(Channel, WritesCountSeparately) {
  Channel ch(test_channel_config());
  ASSERT_TRUE(ch.enqueue(make_req(1, 0, 0, 0, 0, true)));
  ASSERT_TRUE(ch.enqueue(make_req(2, 0, 1, 0, 0, false)));
  run_until_drained(ch, 10000);
  EXPECT_EQ(ch.stats().writes, 1u);
  EXPECT_EQ(ch.stats().reads, 1u);
  EXPECT_GT(ch.stats().energy.write_pj, 0.0);
  EXPECT_GT(ch.stats().energy.read_pj, 0.0);
}

TEST(Channel, EccLineClassTracked) {
  Channel ch(test_channel_config());
  MemRequest r = make_req(1, 0, 0, 0, 0, true);
  r.line_class = LineClass::kEccParity;
  ASSERT_TRUE(ch.enqueue(r));
  run_until_drained(ch, 10000);
  EXPECT_EQ(ch.stats().ecc_writes, 1u);
}

TEST(Channel, IdleRankAccruesPowerDownEnergy) {
  auto cfg = test_channel_config();
  Channel ch(cfg);
  std::vector<MemCompletion> out;
  for (std::uint64_t now = 1; now <= 100000; ++now) ch.tick(now, out);
  ch.finalize(100000);
  const double bg = ch.stats().energy.background_pj;
  // Idle the whole time: expect ~power-down floor for 2 ranks * 9 chips.
  const double pd_floor = cfg.device.energy.bg_pd_pj_cyc * 18 * 100000;
  EXPECT_GT(bg, 0.9 * pd_floor);
  EXPECT_LT(bg, 1.5 * pd_floor);
}

TEST(Channel, PowerdownDisabledCostsStandby) {
  auto cfg = test_channel_config();
  cfg.powerdown_enabled = false;
  Channel ch(cfg);
  std::vector<MemCompletion> out;
  for (std::uint64_t now = 1; now <= 50000; ++now) ch.tick(now, out);
  ch.finalize(50000);
  const double standby_floor = cfg.device.energy.bg_pre_pj_cyc * 18 * 50000;
  EXPECT_GT(ch.stats().energy.background_pj, 0.95 * standby_floor);
}

TEST(Channel, RefreshEnergyAccruesWhenIdle) {
  auto cfg = test_channel_config();
  Channel ch(cfg);
  std::vector<MemCompletion> out;
  const std::uint64_t cycles = 10 * cfg.device.timing.tREFI;
  for (std::uint64_t now = 1; now <= cycles; ++now) ch.tick(now, out);
  ch.finalize(cycles);
  // ~10 refreshes per rank, 2 ranks.
  const double expect =
      20.0 * cfg.device.energy.refresh_pj * cfg.chips_per_rank;
  EXPECT_NEAR(ch.stats().energy.refresh_pj, expect, expect * 0.2);
}

TEST(Channel, QueueFullRejects) {
  auto cfg = test_channel_config();
  cfg.queue_depth = 4;
  Channel ch(cfg);
  for (unsigned i = 0; i < 4; ++i) {
    EXPECT_TRUE(ch.enqueue(make_req(i, 0, 0, 0, 0, false)));
  }
  EXPECT_FALSE(ch.enqueue(make_req(99, 0, 0, 0, 0, false)));
}

TEST(Channel, BadRankThrows) {
  Channel ch(test_channel_config());
  EXPECT_THROW(ch.enqueue(make_req(1, 7, 0, 0, 0, false)),
               std::out_of_range);
}

TEST(Channel, ReadLatencyStatTracksQueueing) {
  Channel ch(test_channel_config());
  // Saturate one bank; later requests should see growing latency.
  for (unsigned i = 0; i < 16; ++i) {
    ASSERT_TRUE(ch.enqueue(make_req(i, 0, 0, i, 0, false)));
  }
  run_until_drained(ch, 100000);
  const double avg = static_cast<double>(ch.stats().read_latency_sum) / 16.0;
  const auto& t = test_channel_config().device.timing;
  EXPECT_GT(avg, static_cast<double>(t.tRC));  // queued behind bank recovery
}

// ---------------------------------------------------------------------------
// Memory system

MemSystemConfig small_system() {
  MemSystemConfig cfg;
  cfg.channels = 4;
  cfg.ranks_per_channel = 2;
  cfg.chips_per_rank = 9;
  cfg.data_chips_per_rank = 8;
  cfg.line_bytes = 64;
  cfg.device = micron_2gb(DeviceWidth::kX8);
  return cfg;
}

TEST(MemorySystem, CapacityAndPins) {
  const MemSystemConfig cfg = small_system();
  // 4 chan * 2 ranks * 8 data chips * 256MB = 16 GiB.
  EXPECT_EQ(cfg.data_capacity_bytes(), 16ULL * 1024 * 1024 * 1024);
  EXPECT_EQ(cfg.total_io_pins(), 4ULL * 9 * 8);
  EXPECT_EQ(cfg.total_chips(), 72u);
}

TEST(MemorySystem, RequestsRouteToMappedChannel) {
  MemorySystem mem(small_system());
  const auto& map = mem.map();
  const std::uint64_t line = 12345;
  const DramAddress a = map.decode(line);
  ASSERT_TRUE(mem.enqueue_line(line, false, LineClass::kData, 7));
  // Drain.
  while (mem.outstanding() > 0) mem.tick();
  auto& done = mem.completions();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].id, 7u);
  (void)a;
}

TEST(MemorySystem, ParallelChannelsOutpaceSingleChannel) {
  // Issue 64 requests spread across channels vs pinned to one channel.
  std::uint64_t t_spread = 0, t_pinned = 0;
  {
    MemorySystem mem(small_system());
    const auto g = small_system().geometry();
    const std::uint32_t lpr = g.lines_per_row();
    for (unsigned i = 0; i < 64; ++i) {
      ASSERT_TRUE(mem.enqueue_line(static_cast<std::uint64_t>(i) * lpr, false,
                                   LineClass::kData, i));
    }
    while (mem.outstanding() > 0) mem.tick();
    t_spread = mem.cycle();
  }
  {
    MemorySystem mem(small_system());
    const auto g = small_system().geometry();
    const std::uint32_t lpr = g.lines_per_row();
    for (unsigned i = 0; i < 64; ++i) {
      ASSERT_TRUE(mem.enqueue_line(static_cast<std::uint64_t>(i) * 4 * lpr,
                                   false, LineClass::kData, i));
    }
    while (mem.outstanding() > 0) mem.tick();
    t_pinned = mem.cycle();
  }
  EXPECT_LT(t_spread, t_pinned);
}

TEST(MemorySystem, FinalizeAggregatesEnergy) {
  MemorySystem mem(small_system());
  for (unsigned i = 0; i < 32; ++i) {
    ASSERT_TRUE(mem.enqueue_line(i * 64, i % 2 == 0, LineClass::kData, i));
  }
  while (mem.outstanding() > 0) mem.tick();
  const MemSystemStats s = mem.finalize();
  EXPECT_EQ(s.reads + s.writes, 32u);
  EXPECT_GT(s.energy.activate_pj, 0.0);
  EXPECT_GT(s.energy.background_pj, 0.0);
  EXPECT_GT(s.energy.total_pj(), s.energy.dynamic_pj());
}

TEST(MemorySystem, PeekMatchesFinalizeExactly) {
  // peek_stats() is the observation path the stats gauges poll; it must
  // report precisely what finalize() is about to, including residual
  // refresh energy and background energy integrated to the current cycle
  // -- and it must not advance any accounting state while doing so.
  MemorySystem mem(small_system());
  for (unsigned i = 0; i < 48; ++i) {
    ASSERT_TRUE(mem.enqueue_line(i * 192 + 7, i % 3 == 0,
                                 i % 5 == 0 ? LineClass::kEccParity
                                            : LineClass::kData,
                                 i));
  }
  while (mem.outstanding() > 0) mem.tick();
  // Idle long enough to cross several refresh intervals so the residual
  // refresh/background terms are nonzero.
  const std::uint64_t idle_until =
      mem.cycle() + 4 * small_system().device.timing.tREFI;
  while (mem.cycle() < idle_until) mem.tick();

  const MemSystemStats peeked = mem.peek_stats();
  const MemSystemStats repeeked = mem.peek_stats();  // peeking is idempotent
  const MemSystemStats fin = mem.finalize();

  EXPECT_EQ(peeked.reads, fin.reads);
  EXPECT_EQ(peeked.writes, fin.writes);
  EXPECT_EQ(peeked.ecc_reads, fin.ecc_reads);
  EXPECT_EQ(peeked.avg_read_latency, fin.avg_read_latency);
  // Bit-exact energy equality: peek and finalize share the same
  // integration code and accumulation order.
  EXPECT_EQ(peeked.energy.activate_pj, fin.energy.activate_pj);
  EXPECT_EQ(peeked.energy.refresh_pj, fin.energy.refresh_pj);
  EXPECT_EQ(peeked.energy.background_pj, fin.energy.background_pj);
  EXPECT_EQ(peeked.energy.total_pj(), fin.energy.total_pj());
  EXPECT_EQ(repeeked.energy.total_pj(), peeked.energy.total_pj());
  EXPECT_GT(fin.energy.refresh_pj, 0.0);
  EXPECT_GT(fin.energy.background_pj, 0.0);

  // finalize() is idempotent: a second call reports the same totals.
  const MemSystemStats again = mem.finalize();
  EXPECT_EQ(again.energy.total_pj(), fin.energy.total_pj());
  EXPECT_EQ(again.reads, fin.reads);
}

TEST(MemorySystem, Access64bNormalization) {
  MemSystemStats s;
  s.reads = 10;
  s.writes = 6;
  EXPECT_EQ(s.accesses_64b(64), 16u);
  EXPECT_EQ(s.accesses_64b(128), 32u);
}

}  // namespace
}  // namespace eccsim::dram
