// Service shape of the fleet subsystem: a long-running daemon on a local
// Unix-domain socket.
//
// Layer (3).  Clients connect, send one `eccsim.fleetreq/1` JSON request
// terminated by a newline, read one JSON response line, and disconnect.
// The daemon serves concurrent sessions (thread per connection), feeds
// accepted sweeps through a bounded FIFO queue with backpressure (a full
// queue rejects the submit rather than blocking the socket), and executes
// one job at a time on a single executor thread -- the job itself fans out
// through the Coordinator.
//
// Results are cached under <results_dir>/cache/<config_hash>.json, keyed
// by fleet::config_hash of the *normalized* spec, so a repeated sweep --
// whatever the field order or defaulting of the submitted document -- is
// answered from the cache without re-simulation.  Every submit writes a
// per-request manifest (<results_dir>/manifests/req-<seq>.json) through
// src/obs recording the config hash and whether it was a cache hit.
//
// Request ops (full schema in docs/OBSERVABILITY.md):
//   ping      liveness probe
//   submit    enqueue a spec (or hit the cache); "wait": true blocks the
//             session until the job finishes
//   status    job state for a config hash: cached | queued | running |
//             unknown, plus the current queue depth
//   results   inline the cached result document for a config hash
//   shutdown  acknowledge, then stop serving
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "fleet/coordinator.hpp"

namespace eccsim::runner {
class Json;
}

namespace eccsim::fleet {

struct ServiceOptions {
  /// Unix-domain socket path.  Keep it short: sockaddr_un caps the path
  /// around 100 bytes, and bind() fails beyond that.
  std::string socket_path;
  /// Root for cache/, manifests/, and job work directories.
  std::string results_dir = "results/fleet";
  /// Bounded submit queue: a submit arriving with this many jobs pending
  /// is rejected ("queue full", retryable:true) instead of queued.
  std::size_t queue_capacity = 8;
  /// Execution template for accepted jobs (mode, shards, threads, chunk
  /// size, worker binary; work_dir is derived per job).
  RunOptions run;
};

class Service {
 public:
  explicit Service(ServiceOptions opts);
  ~Service();

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Binds the socket and starts the accept + executor threads.  Throws
  /// std::runtime_error when the socket cannot be created.
  void start();

  /// Stops accepting, drains in-flight sessions, and joins all threads.
  /// Idempotent; also invoked by the destructor and the shutdown op.
  void stop();

  /// Blocks until stop() has been requested (the serve-forever main).
  void wait();

  const ServiceOptions& options() const { return opts_; }

  /// Requests handled so far (any op), for tests and status lines.
  std::uint64_t requests_served() const;

 private:
  enum class JobState { kQueued, kRunning, kDone, kFailed };
  struct Job {
    std::string hash;
    FleetSpec spec;
    JobState state = JobState::kQueued;
    std::string error;
  };

  void accept_loop();
  void executor_loop();
  void handle_connection(int fd);
  runner::Json handle_request(const runner::Json& req);
  runner::Json handle_submit(const runner::Json& req);
  std::string cache_path(const std::string& hash) const;
  /// State of `hash` under lk (must hold mu_): cached/queued/running/
  /// failed/unknown.
  std::string job_state_locked(const std::string& hash) const;

  ServiceOptions opts_;
  int listen_fd_ = -1;

  mutable std::mutex mu_;
  std::condition_variable queue_cv_;  ///< executor waits for work
  std::condition_variable done_cv_;   ///< wait:true sessions + wait()
  std::deque<std::size_t> queue_;     ///< indices into jobs_
  std::vector<Job> jobs_;             ///< append-only job log
  std::uint64_t requests_ = 0;
  std::uint64_t manifests_ = 0;       ///< per-request manifest sequence
  bool stopping_ = false;

  std::thread accept_thread_;
  std::thread executor_thread_;
  std::vector<std::thread> sessions_;
};

/// Client side: connects to `socket_path`, sends `request` as one JSON
/// line, and returns the parsed response.  Throws std::runtime_error on
/// connect/IO/parse failure.
runner::Json fleet_request(const std::string& socket_path,
                           const runner::Json& request);

/// Convenience: a minimal `eccsim.fleetreq/1` envelope for `op`.
runner::Json make_request(const std::string& op);

}  // namespace eccsim::fleet
