file(REMOVE_RECURSE
  "CMakeFiles/fig12_dynamic_epi_quad.dir/fig12_dynamic_epi_quad.cpp.o"
  "CMakeFiles/fig12_dynamic_epi_quad.dir/fig12_dynamic_epi_quad.cpp.o.d"
  "fig12_dynamic_epi_quad"
  "fig12_dynamic_epi_quad.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_dynamic_epi_quad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
