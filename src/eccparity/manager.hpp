// The ECC Parity manager: a functional, byte-accurate implementation of the
// paper's proposal (Sec. III) on top of any underlying per-line ECC codec.
//
// State held per memory system:
//   - the data image (what the DRAMs store, including injected corruption),
//   - per-line detection bits (stored inline in every channel),
//   - per-group ECC parities for healthy regions (Sec. III-A),
//   - materialized per-line ECC correction bits for banks recorded as
//     faulty (Sec. III-B),
//   - the bank-pair error counters / health table and the retired-page set
//     (Sec. III-C).
//
// Operations mirror Fig. 6:
//   write_line: bank-health lookup; faulty -> update the line's ECC
//     correction bits (step D); healthy -> update the ECC parity with
//     ECCP_new = ECCP_old ^ ECC_old ^ ECC_new (step E / Eq. 1).  If the old
//     stored value carries a detected error, it is corrected first so a
//     corrupted ECC_old never poisons the parity.
//   read_line: check detection bits on the fly; on error, reconstruct the
//     line's correction bits from its ECC parity and the healthy group
//     members (step C) -- or read them directly if the bank is recorded
//     faulty (step B) -- then correct, record the error (retire page or
//     mark the bank pair faulty), and write back the corrected line.
//   scrub: periodic sweep of every touched line through the read path
//     (Sec. III-C / VI-C).
//   Marking a pair faulty materializes the correction bits of every line in
//   the pair's banks and recomputes every parity group touching those banks
//   to exclude them (Sec. III-B).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "dram/address_map.hpp"
#include "ecc/codec.hpp"
#include "ecc/memory_image.hpp"
#include "eccparity/health.hpp"
#include "eccparity/layout.hpp"
#include "stats/stats.hpp"

namespace eccsim::eccparity {

/// Result of a read through the ECC Parity machinery.
struct ReadResult {
  std::vector<std::uint8_t> data;
  bool error_detected = false;
  bool corrected = false;
  bool uncorrectable = false;
  bool used_parity_reconstruction = false;  ///< step C was exercised
  bool used_materialized_bits = false;      ///< step B was exercised
  ErrorAction action = ErrorAction::kRetirePage;  ///< valid if detected
};

/// Counters for the mechanism's rare events.
struct ManagerStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t errors_detected = 0;
  std::uint64_t corrected_via_parity = 0;
  std::uint64_t corrected_via_materialized = 0;
  std::uint64_t uncorrectable = 0;
  std::uint64_t pages_retired = 0;
  std::uint64_t pairs_marked_faulty = 0;
  std::uint64_t lines_materialized = 0;
  std::uint64_t parity_groups_recomputed = 0;
};

class EccParityManager {
 public:
  /// The manager owns nothing about timing; it is the functional spine the
  /// examples, fault-injection tests, and scrub studies drive.
  EccParityManager(const dram::MemGeometry& geom,
                   std::unique_ptr<ecc::LineCodec> codec,
                   unsigned error_threshold = 4);

  const ParityLayout& layout() const { return layout_; }
  const BankHealthTable& health() const { return health_; }
  const ManagerStats& stats() const { return stats_; }
  const dram::AddressMap& map() const { return map_; }

  /// Application write (Fig. 6 right side).
  void write_line(std::uint64_t line_index,
                  std::span<const std::uint8_t> bytes);

  /// Application read (Fig. 6 left side).
  ReadResult read_line(std::uint64_t line_index);

  /// Scrubs every line ever written (sparse sweep); returns the number of
  /// errors found.
  std::uint64_t scrub();

  /// Fault injection: corrupts the stored bytes of a line *without*
  /// updating detection bits or parities (exactly what a DRAM fault does).
  void corrupt_line(std::uint64_t line_index,
                    std::span<const std::uint8_t> xor_mask);
  /// Corrupts the data belonging to one chip of the line's rank.
  void corrupt_chip_share(std::uint64_t line_index, unsigned chip,
                          std::uint8_t xor_byte = 0xA5);

  bool page_retired(std::uint64_t page_index) const {
    return retired_pages_.contains(page_index);
  }
  std::size_t retired_page_count() const { return retired_pages_.size(); }

  /// Verifies the parity invariant for every group touching written lines:
  /// stored parity == XOR of members' correction bits (healthy members
  /// only; groups with materialized members must have been recomputed).
  /// Returns the number of violated groups.
  std::uint64_t verify_parity_invariant();

  /// Fraction of (touched) lines whose correction bits are materialized.
  double materialized_fraction() const;

  /// Registers polled gauges over this manager's rare-event counters under
  /// `prefix` (e.g. "eccparity.mgr.corrected_via_parity").  Observation
  /// only.  `reg` must outlive the manager's use.
  void attach_stats(stats::Registry& reg, const std::string& prefix);

 private:
  std::vector<std::uint8_t> correction_of(std::span<const std::uint8_t> data)
      const {
    return codec_->correction_bits(data);
  }
  std::vector<std::uint8_t>& parity_slot(const GroupId& id);
  /// XOR of correction bits of all healthy members except `exclude_line`.
  std::vector<std::uint8_t> xor_members(
      const GroupId& id, std::uint64_t exclude_line);
  void retire_page_of(std::uint64_t line_index);
  void materialize_pair(const BankPairId& pair);
  bool bank_in_pair(const dram::DramAddress& addr,
                    const BankPairId& pair) const {
    return addr.channel == pair.channel && addr.rank == pair.rank &&
           addr.bank / 2 == pair.pair;
  }

  dram::MemGeometry geom_;
  dram::AddressMap map_;
  ParityLayout layout_;
  std::unique_ptr<ecc::LineCodec> codec_;
  BankHealthTable health_;

  ecc::MemoryImage data_;
  std::unordered_map<std::uint64_t, std::vector<std::uint8_t>> detection_;
  std::unordered_map<std::uint64_t, std::vector<std::uint8_t>> parities_;
  std::unordered_map<std::uint64_t, std::vector<std::uint8_t>> materialized_;
  std::unordered_set<std::uint64_t> retired_pages_;

  ManagerStats stats_;
};

}  // namespace eccsim::eccparity
