// Tests for the ECC scheme descriptors: Table II organizations, Fig. 1 /
// Table III capacity overheads, and the equal-capacity/equal-pins
// invariants the paper's methodology relies on.
#include <gtest/gtest.h>

#include "ecc/scheme.hpp"

namespace eccsim::ecc {
namespace {

TEST(SchemeDesc, TableII_RankOrganizations) {
  const auto ck36 = make_scheme(SchemeId::kChipkill36,
                                SystemScale::kQuadEquivalent);
  EXPECT_EQ(ck36.chips_per_rank, 36u);
  EXPECT_EQ(ck36.line_bytes, 128u);
  EXPECT_EQ(ck36.ranks_per_channel, 1u);
  EXPECT_EQ(ck36.channels, 4u);

  const auto ck18 = make_scheme(SchemeId::kChipkill18,
                                SystemScale::kQuadEquivalent);
  EXPECT_EQ(ck18.chips_per_rank, 18u);
  EXPECT_EQ(ck18.line_bytes, 64u);
  EXPECT_EQ(ck18.channels, 8u);

  const auto lot5 = make_scheme(SchemeId::kLotEcc5,
                                SystemScale::kQuadEquivalent);
  EXPECT_EQ(lot5.chips_per_rank, 5u);
  EXPECT_EQ(lot5.ranks_per_channel, 4u);
  EXPECT_EQ(lot5.channels, 8u);
  EXPECT_TRUE(lot5.mixed_rank);

  const auto lot9 = make_scheme(SchemeId::kLotEcc9,
                                SystemScale::kQuadEquivalent);
  EXPECT_EQ(lot9.chips_per_rank, 9u);
  EXPECT_EQ(lot9.ranks_per_channel, 2u);

  const auto raim = make_scheme(SchemeId::kRaim, SystemScale::kQuadEquivalent);
  EXPECT_EQ(raim.chips_per_rank, 45u);
  EXPECT_EQ(raim.line_bytes, 128u);
  EXPECT_EQ(raim.channels, 4u);

  const auto raimp = make_scheme(SchemeId::kRaimParity,
                                 SystemScale::kQuadEquivalent);
  EXPECT_EQ(raimp.chips_per_rank, 18u);
  EXPECT_EQ(raimp.line_bytes, 64u);
  EXPECT_EQ(raimp.channels, 10u);
}

TEST(SchemeDesc, TableII_PinCounts) {
  // Chipkill family: 576 pins at quad scale, 288 at dual.
  for (auto id : chipkill_family()) {
    EXPECT_EQ(make_scheme(id, SystemScale::kQuadEquivalent).io_pins(), 576u)
        << to_string(id);
    EXPECT_EQ(make_scheme(id, SystemScale::kDualEquivalent).io_pins(), 288u)
        << to_string(id);
  }
  // RAIM family: 720 / 360.
  for (auto id : {SchemeId::kRaim, SchemeId::kRaimParity}) {
    EXPECT_EQ(make_scheme(id, SystemScale::kQuadEquivalent).io_pins(), 720u)
        << to_string(id);
    EXPECT_EQ(make_scheme(id, SystemScale::kDualEquivalent).io_pins(), 360u)
        << to_string(id);
  }
}

TEST(SchemeDesc, EqualDataCapacityWithinChipkillFamily) {
  // Sec. IV-B: all chipkill-class systems are configured to equal physical
  // capacity; their data capacity is 32 GiB at quad scale.
  for (auto id : chipkill_family()) {
    const auto d = make_scheme(id, SystemScale::kQuadEquivalent);
    EXPECT_EQ(d.mem_config().data_capacity_bytes(),
              32ULL * 1024 * 1024 * 1024)
        << to_string(id);
  }
}

TEST(SchemeDesc, Fig1_CapacityBreakdown) {
  // Fig. 1: detection vs correction split of each ECC's overhead.
  const auto ck36 = make_scheme(SchemeId::kChipkill36,
                                SystemScale::kQuadEquivalent);
  EXPECT_DOUBLE_EQ(ck36.detection_overhead, 0.0625);
  EXPECT_DOUBLE_EQ(ck36.correction_ratio, 0.0625);
  EXPECT_NEAR(ck36.capacity_overhead(), 0.125, 1e-9);

  const auto lot9 = make_scheme(SchemeId::kLotEcc9,
                                SystemScale::kQuadEquivalent);
  EXPECT_NEAR(lot9.capacity_overhead(), 0.265625, 1e-9);  // paper: 26.5%

  const auto lot5 = make_scheme(SchemeId::kLotEcc5,
                                SystemScale::kQuadEquivalent);
  EXPECT_NEAR(lot5.capacity_overhead(), 0.40625, 1e-9);   // paper: 40.6%

  const auto multi = make_scheme(SchemeId::kMultiEcc,
                                 SystemScale::kQuadEquivalent);
  EXPECT_NEAR(multi.capacity_overhead(), 0.1294, 5e-4);   // paper: 12.9%

  const auto raim = make_scheme(SchemeId::kRaim, SystemScale::kQuadEquivalent);
  EXPECT_NEAR(raim.capacity_overhead(), 0.40625, 1e-9);   // paper: 40.6%
}

TEST(SchemeDesc, TableIII_ParityOverheads) {
  // 8-channel LOT-ECC5 + ECC Parity: 16.5%.
  const auto lot5p8 = make_scheme(SchemeId::kLotEcc5Parity,
                                  SystemScale::kQuadEquivalent);
  ASSERT_EQ(lot5p8.channels, 8u);
  EXPECT_NEAR(lot5p8.capacity_overhead(), 0.1652, 5e-4);

  // 4-channel LOT-ECC5 + ECC Parity: 21.9%.
  const auto lot5p4 = make_scheme(SchemeId::kLotEcc5Parity,
                                  SystemScale::kDualEquivalent);
  ASSERT_EQ(lot5p4.channels, 4u);
  EXPECT_NEAR(lot5p4.capacity_overhead(), 0.21875, 5e-4);

  // 10-channel RAIM + ECC Parity: 18.8%.
  const auto raimp10 = make_scheme(SchemeId::kRaimParity,
                                   SystemScale::kQuadEquivalent);
  ASSERT_EQ(raimp10.channels, 10u);
  EXPECT_NEAR(raimp10.capacity_overhead(), 0.1875, 5e-4);

  // 5-channel RAIM + ECC Parity: 26.6%.
  const auto raimp5 = make_scheme(SchemeId::kRaimParity,
                                  SystemScale::kDualEquivalent);
  ASSERT_EQ(raimp5.channels, 5u);
  EXPECT_NEAR(raimp5.capacity_overhead(), 0.265625, 5e-4);
}

TEST(SchemeDesc, EolOverheadGrowsWithFaultyFraction) {
  const auto d = make_scheme(SchemeId::kLotEcc5Parity,
                             SystemScale::kQuadEquivalent);
  const double healthy = d.capacity_overhead_eol(0.0);
  const double eol = d.capacity_overhead_eol(0.004);  // Fig. 8 average
  EXPECT_NEAR(healthy, d.capacity_overhead(), 1e-12);
  EXPECT_GT(eol, healthy);
  // Paper Table III: 16.5% -> EOL avg 16.7%: roughly +0.2%.
  EXPECT_NEAR(eol - healthy, 0.002, 0.002);
}

TEST(SchemeDesc, EolOverheadConstantForBaselines) {
  const auto d = make_scheme(SchemeId::kLotEcc9, SystemScale::kQuadEquivalent);
  EXPECT_DOUBLE_EQ(d.capacity_overhead_eol(0.01), d.capacity_overhead());
}

TEST(SchemeDesc, ParityXorCoverageScalesWithChannels) {
  const auto quad = make_scheme(SchemeId::kLotEcc5Parity,
                                SystemScale::kQuadEquivalent);
  const auto dual = make_scheme(SchemeId::kLotEcc5Parity,
                                SystemScale::kDualEquivalent);
  EXPECT_EQ(quad.ecc_line_coverage, 4u * 7);   // 8 channels: 4*(N-1)
  EXPECT_EQ(dual.ecc_line_coverage, 4u * 3);   // 4 channels
  // Sec. V-D: fewer channels -> fewer lines per XOR line -> higher miss
  // rate; the descriptor must encode that.
  EXPECT_GT(quad.ecc_line_coverage, dual.ecc_line_coverage);
}

TEST(SchemeDesc, MaintenanceTrafficKinds) {
  EXPECT_EQ(make_scheme(SchemeId::kChipkill36, SystemScale::kQuadEquivalent)
                .maint,
            MaintTraffic::kNone);
  EXPECT_EQ(make_scheme(SchemeId::kLotEcc9, SystemScale::kQuadEquivalent)
                .maint,
            MaintTraffic::kWriteOnEvict);
  EXPECT_EQ(make_scheme(SchemeId::kMultiEcc, SystemScale::kQuadEquivalent)
                .maint,
            MaintTraffic::kReadWriteOnEvict);
  EXPECT_EQ(make_scheme(SchemeId::kLotEcc5Parity,
                        SystemScale::kQuadEquivalent)
                .maint,
            MaintTraffic::kReadWriteOnEvict);
}

TEST(SchemeDesc, MemConfigChipsAndDevice) {
  const auto lot5 = make_scheme(SchemeId::kLotEcc5,
                                SystemScale::kQuadEquivalent);
  const auto cfg = lot5.mem_config();
  EXPECT_EQ(cfg.chips_per_rank, 5u);
  EXPECT_EQ(cfg.data_chips_per_rank, 4u);
  // Mixed rank blends down the per-chip currents: energy per chip must be
  // below a plain x16.
  const auto x16 = dram::micron_2gb(dram::DeviceWidth::kX16);
  EXPECT_LT(cfg.device.energy.rd_burst_pj, x16.energy.rd_burst_pj);

  const auto ck36 = make_scheme(SchemeId::kChipkill36,
                                SystemScale::kQuadEquivalent);
  EXPECT_EQ(ck36.mem_config().device.width, dram::DeviceWidth::kX4);
}

TEST(SchemeDesc, AllSchemesEnumerated) {
  EXPECT_EQ(all_schemes().size(), 8u);
  for (auto id : all_schemes()) {
    EXPECT_FALSE(to_string(id).empty());
    // Descriptors must construct at both scales without throwing.
    (void)make_scheme(id, SystemScale::kDualEquivalent);
    (void)make_scheme(id, SystemScale::kQuadEquivalent);
  }
}

TEST(SchemeDesc, RankAccessEnergyOrdering) {
  // The core energy claim: energy per access follows chip count.
  auto rank_access_pj = [](SchemeId id) {
    const auto d = make_scheme(id, SystemScale::kQuadEquivalent);
    const auto cfg = d.mem_config();
    const auto& e = cfg.device.energy;
    return (e.act_pj + e.rd_burst_pj) * cfg.chips_per_rank;
  };
  EXPECT_GT(rank_access_pj(SchemeId::kRaim),
            rank_access_pj(SchemeId::kChipkill36));
  EXPECT_GT(rank_access_pj(SchemeId::kChipkill36),
            rank_access_pj(SchemeId::kChipkill18));
  EXPECT_GT(rank_access_pj(SchemeId::kChipkill18),
            rank_access_pj(SchemeId::kLotEcc9));
  EXPECT_GT(rank_access_pj(SchemeId::kLotEcc9),
            rank_access_pj(SchemeId::kLotEcc5));
}

}  // namespace
}  // namespace eccsim::ecc
