// Sharded execution of one fleet run.
//
// Layer (2) of the fleet subsystem.  A fleet run is split into contiguous
// chunk-range work units; every unit independently produces its chunks'
// per-node field blocks encoded in the MC checkpoint envelope (`mcchunk1`
// lines, see mc_engine.hpp and docs/CHECKPOINTS.md), and the coordinator
// merges all recorded chunks in strict index order into a FleetAccumulator.
//
// Byte-identity argument: each node's fields depend only on
// (spec.seed, node index) via faults::mc_system_rng; the envelope
// round-trips doubles exactly (std::bit_cast hex); and the merge consumes
// the same ordered field stream whatever produced it.  Therefore the
// merged FleetResult -- and its JSON dump -- is byte-identical at any
// shard count and for in-process vs worker-process execution, which
// scripts/fleet_identity_check.sh gates in CI.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "fleet/model.hpp"
#include "fleet/spec.hpp"

namespace eccsim::obs {
class Heartbeat;
}

namespace eccsim::fleet {

/// One work unit: the half-open chunk range [chunk_lo, chunk_hi).
struct WorkUnit {
  std::uint64_t chunk_lo = 0;
  std::uint64_t chunk_hi = 0;
};

/// Chunk count for a fleet of `nodes` nodes at `chunk_size` nodes/chunk.
std::uint64_t fleet_chunk_count(std::uint64_t nodes, unsigned chunk_size);

/// Node count of chunk `ci` (the last chunk may be short).
unsigned fleet_chunk_nodes(std::uint64_t nodes, unsigned chunk_size,
                           std::uint64_t ci);

/// Envelope identity of a fleet run: mc_run_identity over the
/// "fleet:<config_hash>" tag and the sampling parameters, so a work-unit
/// file produced under any differing spec or chunk size never matches.
std::uint64_t fleet_run_identity(const FleetSpec& spec, unsigned chunk_size);

/// Executes chunks [chunk_lo, chunk_hi) of the fleet and appends each as
/// one `mcchunk1` line to `out`.  This is the whole worker: in-process
/// shards call it with a string stream, `fleetd --worker` calls it with an
/// output file.
void compute_unit(const FleetModel& model, std::uint64_t chunk_lo,
                  std::uint64_t chunk_hi, unsigned chunk_size,
                  std::ostream& out);

struct RunOptions {
  enum class Mode {
    kInProcess,      ///< shards are tasks on a shared runner::ThreadPool
    kWorkerProcess,  ///< shards are spawned `fleetd --worker` processes
  };
  Mode mode = Mode::kInProcess;
  /// Work-unit count; chunks are split into `shards` contiguous ranges.
  unsigned shards = 1;
  /// In-process pool width; 0 = runner::ThreadPool::default_thread_count().
  unsigned threads = 0;
  /// Nodes per chunk; 0 = faults::kMcDefaultChunkSize.  Like the MC
  /// engine, results are identical for any value.
  unsigned chunk_size = 0;
  /// Worker-mode binary (typically argv[0] of fleetd itself).
  std::string worker_binary;
  /// Worker-mode scratch directory for the spec file and the per-shard
  /// work-unit envelopes; created if absent, files are left for
  /// inspection.
  std::string work_dir;
  /// Optional progress sink; ticked per merged chunk under phase "fleet".
  obs::Heartbeat* heartbeat = nullptr;
};

/// Splits [0, nchunks) into `shards` contiguous near-equal ranges; ranges
/// beyond the chunk supply come back empty.
std::vector<WorkUnit> shard_plan(std::uint64_t nchunks, unsigned shards);

/// Runs a validated FleetSpec end to end: plan shards, execute every work
/// unit, merge in strict chunk/node index order, finalize.
class Coordinator {
 public:
  explicit Coordinator(const FleetSpec& spec);

  const FleetModel& model() const { return model_; }

  /// Executes the fleet and returns the merged result.  Throws
  /// std::runtime_error on a failed worker process or a missing chunk.
  FleetResult run(const RunOptions& opts) const;

 private:
  FleetModel model_;
};

}  // namespace eccsim::fleet
