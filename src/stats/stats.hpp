// Simulator-wide observability: a hierarchical stat registry with stable
// dotted paths ("dram.ch0.bank3.acts"), epoch-delta time series, and the
// per-run Collector that bundles a registry with an optional Chrome-trace
// Tracer (stats/trace.hpp) and the scoped profiler (stats/scope.hpp).
//
// Design constraints (docs/OBSERVABILITY.md):
//   - Observation only.  Nothing registered here may feed back into
//     simulation state, so enabling stats never changes a simulated
//     result -- at any thread count.
//   - Allocation-light hot path.  Components resolve Counter/Histogram
//     pointers once at attach time (pointers are stable for the life of
//     the registry); the per-event cost is one increment.  Stats that a
//     component already accumulates for its functional results (energy,
//     read counts) are registered as polled gauges instead, so the hot
//     path is not touched twice.
//   - Per-worker ownership with merge-on-finalize.  A Registry is
//     single-threaded by design; the parallel sweep gives every cell its
//     own Collector and merges/serializes on the main thread after the
//     fan-out, which keeps the bit-identical-results guarantee of the
//     runner intact.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace eccsim::stats {

/// Monotone event counter.  The only hot-path push stat: one increment.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Monotone floating-point accumulator (e.g. picojoules).
class Accum {
 public:
  void add(double x) { value_ += x; }
  double value() const { return value_; }

 private:
  double value_ = 0;
};

/// Count / sum / min / max summary of a stream of samples.
class Distribution {
 public:
  void add(double x);
  void merge(const Distribution& other);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const {
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
  }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }

 private:
  std::uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

/// Fixed-width linear histogram over [lo, hi); out-of-range samples clamp
/// into the edge bins so no mass is silently dropped.  Supports
/// interpolated percentile queries for the end-of-run report.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  void merge(const Histogram& other);

  /// Interpolated percentile, p in [0, 100]; 0 when empty.
  double percentile(double p) const;

  double lo() const { return lo_; }
  double hi() const { return hi_; }
  std::uint64_t total() const { return total_; }
  const std::vector<std::uint64_t>& bins() const { return counts_; }

 private:
  double lo_, hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// The stat registry: a flat namespace of dotted paths.
///
/// Counters, accums, and gauges are *sampled* stats: sample_epoch()
/// records their delta since the previous epoch into an in-memory time
/// series.  Distributions and histograms are cumulative only.
///
/// Registration is create-or-get: asking for an existing path of the same
/// kind returns the existing stat; asking for an existing path of a
/// different kind throws std::invalid_argument (path uniqueness).
class Registry {
 public:
  enum class Kind : std::uint8_t {
    kCounter,
    kAccum,
    kGauge,
    kDistribution,
    kHistogram,
  };

  /// Polled cumulative value; called with the current simulation cycle at
  /// every epoch sample and once at finalize().
  using GaugeFn = std::function<double(std::uint64_t cycle)>;

  Counter* counter(const std::string& path);
  Accum* accum(const std::string& path);
  Distribution* distribution(const std::string& path);
  Histogram* histogram(const std::string& path, double lo, double hi,
                       std::size_t bins);
  /// Registers a polled gauge.  Re-registering an existing gauge path
  /// replaces its poll function (the series continues).
  void gauge(const std::string& path, GaugeFn poll);

  bool has(const std::string& path) const { return index_.count(path) != 0; }
  std::size_t size() const { return entries_.size(); }

  /// Current cumulative value of a sampled stat (counter/accum/gauge);
  /// throws std::out_of_range for unknown paths, std::invalid_argument
  /// for distributions/histograms.
  double value(const std::string& path, std::uint64_t cycle = 0) const;

  // --- epoch time series --------------------------------------------------
  /// Epoch length in cycles; 0 (default) disables epoch bookkeeping.
  void set_epoch_cycles(std::uint64_t cycles) { epoch_cycles_ = cycles; }
  std::uint64_t epoch_cycles() const { return epoch_cycles_; }

  /// Snapshots the delta of every sampled stat since the previous sample.
  /// `cycle` is recorded as the epoch's end mark (marks need not be
  /// equally spaced; the final, partial epoch is shorter).
  void sample_epoch(std::uint64_t cycle);

  /// End cycle of each recorded epoch, in order.
  const std::vector<std::uint64_t>& epoch_marks() const { return marks_; }
  /// Per-epoch deltas for one sampled stat; nullptr if the path is
  /// unknown or not a sampled kind.
  const std::vector<double>* epoch_series(const std::string& path) const;

  /// Attaches an externally computed per-epoch series (derived metrics
  /// such as per-channel bandwidth); overwrites on duplicate path.
  void add_series(const std::string& path, std::vector<double> values);
  const std::vector<std::pair<std::string, std::vector<double>>>& series()
      const {
    return series_;
  }

  /// Records the final (possibly partial) epoch if cycles advanced since
  /// the last sample, stores every gauge's final value, and releases the
  /// gauge poll functions.  After finalize() the registry is pure data:
  /// it may outlive the components its gauges referenced.
  void finalize(std::uint64_t cycle);
  bool finalized() const { return finalized_; }

  /// Merges another registry's push stats into this one by path: counters
  /// and accums sum, distributions and histograms merge.  Gauges, epoch
  /// series, and derived series are per-run artifacts and are skipped.
  /// Merging is order-independent (commutative and associative), so a
  /// 1-thread and an N-thread reduction produce identical values.
  /// Throws std::invalid_argument on a path registered with different
  /// kinds (or different histogram shapes) in the two registries.
  void merge(const Registry& other);

  // --- read access for serializers ----------------------------------------
  struct EntryView {
    const std::string* path;
    Kind kind;
    double value;  ///< final cumulative value (sampled kinds)
    const std::vector<double>* epochs;  ///< sampled kinds; may be empty
    const Distribution* dist;           ///< kDistribution only
    const Histogram* hist;              ///< kHistogram only
  };
  /// One view per registered stat, in registration order.  Gauge values
  /// require finalize() to have run (0.0 before that).
  std::vector<EntryView> view() const;

 private:
  struct Entry {
    std::string path;
    Kind kind;
    std::size_t slot;  ///< index into the kind's storage deque
    double last_sample = 0;         ///< previous epoch's cumulative value
    double final_value = 0;         ///< set by finalize() (gauges)
    std::vector<double> epoch_deltas;
  };

  Entry& add_entry(const std::string& path, Kind kind, std::size_t slot);
  const Entry* find(const std::string& path) const;
  double current(const Entry& e, std::uint64_t cycle) const;
  bool sampled(Kind k) const {
    return k == Kind::kCounter || k == Kind::kAccum || k == Kind::kGauge;
  }

  std::vector<Entry> entries_;
  std::unordered_map<std::string, std::size_t> index_;

  // Stable storage: components keep raw pointers into these deques.
  std::deque<Counter> counters_;
  std::deque<Accum> accums_;
  std::deque<GaugeFn> gauges_;
  std::deque<Distribution> distributions_;
  std::deque<Histogram> histograms_;

  std::uint64_t epoch_cycles_ = 0;
  std::vector<std::uint64_t> marks_;
  std::vector<std::pair<std::string, std::vector<double>>> series_;
  bool finalized_ = false;
};

class Tracer;

/// Observability knobs for one run, normally parsed from the environment:
///   ECCSIM_STATS=1        master switch (the bench --stats flag sets it)
///   STATS_EPOCH=N         epoch length in memory cycles
///   STATS_TRACE=DIR       enable Chrome tracing, one file per run in DIR
///   STATS_TRACE_LIMIT=N   max trace events before rate-limiting kicks in
struct Config {
  bool enabled = false;
  std::uint64_t epoch_cycles = 10'000;
  std::string trace_dir;  ///< empty = tracing off
  std::uint64_t trace_limit = 200'000;

  static Config from_env(std::uint64_t default_epoch = 10'000);
};

/// Everything one simulation run collects: a registry, an optional
/// tracer, and the (workload, scheme) label of the cell that produced it.
/// Single-owner: exactly one worker drives a Collector at a time.
class Collector {
 public:
  explicit Collector(const Config& cfg);
  ~Collector();

  const Config& config() const { return cfg_; }
  Registry& registry() { return registry_; }
  const Registry& registry() const { return registry_; }

  /// Creates the tracer writing to `path` (rate limit from the config).
  /// No-op if a tracer is already open.
  void open_trace(const std::string& path);
  Tracer* tracer() { return tracer_.get(); }

  void set_label(std::string workload, std::string scheme) {
    workload_ = std::move(workload);
    scheme_ = std::move(scheme);
  }
  const std::string& workload() const { return workload_; }
  const std::string& scheme() const { return scheme_; }

 private:
  Config cfg_;
  Registry registry_;
  std::unique_ptr<Tracer> tracer_;
  std::string workload_;
  std::string scheme_;
};

/// Peak resident set size of this process in bytes (0 where unsupported).
std::uint64_t process_peak_rss_bytes();

}  // namespace eccsim::stats
