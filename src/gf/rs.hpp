// Reed-Solomon encoder / errors-and-erasures decoder over GF(2^8) and
// GF(2^16).
//
// The memory ECC schemes in this repository map DRAM chips to code symbols:
// a chip failure erases known symbol positions (erasure decoding), while a
// fault of unknown location must be found by the code itself (error
// decoding).  A (n, k) code with 2t = n - k check symbols corrects any
// combination of nu errors and e erasures with 2*nu + e <= 2t:
//
//   - 36-device commercial chipkill: 4 check symbols -> corrects 1 unknown
//     symbol error and detects 2 (single-symbol-correct, double-symbol-
//     detect), or corrects 2 erasures.
//   - 18-device commercial chipkill: 2 check symbols -> corrects 1 erasure
//     plus detects, or corrects 1 unknown error with no detection margin.
//   - RAIM / LOT-ECC tier 2: erasure correction with separate localization.
//
// Decoder: Sugiyama (extended Euclidean) algorithm with erasures.  Given
// syndromes S(x) and the erasure locator Gamma(x), it finds the error
// locator Lambda(x) and evaluator Omega(x), locates roots by Chien search,
// and computes error magnitudes with Forney's formula.  The generator
// polynomial has roots alpha^1 .. alpha^{2t} (b = 1 convention).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "gf/gf.hpp"
#include "gf/kernels.hpp"

namespace eccsim::gf {

/// Outcome of a decode attempt.
struct RsDecodeResult {
  bool ok = false;                ///< Codeword is now (or already was) valid.
  bool detected_error = false;    ///< Nonzero syndrome was observed.
  unsigned corrected_errors = 0;  ///< Unknown-location symbols fixed.
  unsigned corrected_erasures = 0;  ///< Known-location symbols fixed.
};

/// A systematic (n, k) Reed-Solomon code over GF(2^Bits).
///
/// Codeword layout: positions [0, n-k) hold the parity symbols, positions
/// [n-k, n) hold the data symbols in order.  Position i has locator
/// alpha^i.  n must satisfy 1 <= k < n <= 2^Bits - 1.
template <unsigned Bits>
class ReedSolomon {
 public:
  using F = Field<Bits>;
  using Symbol = typename F::Symbol;

  ReedSolomon(unsigned n, unsigned k);

  unsigned n() const { return n_; }
  unsigned k() const { return k_; }
  unsigned parity_symbols() const { return n_ - k_; }
  /// Maximum erasures correctable with no unknown errors.
  unsigned max_erasures() const { return n_ - k_; }
  /// Maximum unknown-location errors correctable with no erasures.
  unsigned max_errors() const { return (n_ - k_) / 2; }

  /// Encodes `data` (size k) into a full codeword (size n).
  std::vector<Symbol> encode(std::span<const Symbol> data) const;

  /// Computes the parity symbols only (size n-k) for `data` (size k).
  std::vector<Symbol> parity(std::span<const Symbol> data) const;

  /// True iff all syndromes are zero (no detectable error).
  bool check(std::span<const Symbol> codeword) const;

  /// Corrects `codeword` in place.  `erasures` lists known-bad positions
  /// (0-based codeword indices, each < n); duplicate positions are
  /// deduplicated and count once toward the capability bound.  Returns
  /// the decode outcome; on failure (`!ok`) the codeword is restored to
  /// exactly the input, so callers never observe a partial correction.
  RsDecodeResult decode(std::span<Symbol> codeword,
                        std::span<const unsigned> erasures = {}) const;

 private:
  using Poly = std::vector<Symbol>;  // coefficient i of x^i at index i

  Poly syndromes(std::span<const Symbol> codeword) const;
  static Poly poly_mul(const Poly& a, const Poly& b);
  static Poly poly_mod(Poly a, const Poly& b);
  static Poly poly_add(const Poly& a, const Poly& b);
  static void poly_trim(Poly& p);
  static Symbol poly_eval(const Poly& p, Symbol x);
  static int poly_deg(const Poly& p);

  unsigned n_;
  unsigned k_;
  Poly generator_;  // degree n-k, roots alpha^1..alpha^{n-k}

  // GF(2^8) kernel acceleration (unused for other fields): precompiled
  // generator-matrix products.  enc_map_ holds k rows of x^{2t+i} mod
  // g(x), so parity is one matrix apply over the data; syn_map_ holds n
  // rows of alpha^{i*j}, so the syndrome vector is one apply over the
  // codeword.  The scalar kernel bypasses these and runs the original
  // per-symbol loops, which is what makes it the oracle.
  GfMatApply enc_map_;
  GfMatApply syn_map_;
};

using Rs8 = ReedSolomon<8>;
using Rs16 = ReedSolomon<16>;

extern template class ReedSolomon<8>;
extern template class ReedSolomon<16>;

}  // namespace eccsim::gf
