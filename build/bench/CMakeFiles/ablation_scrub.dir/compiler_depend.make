# Empty compiler generated dependencies file for ablation_scrub.
# This may be replaced when dependencies are built.
