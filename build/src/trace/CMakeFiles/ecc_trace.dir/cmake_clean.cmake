file(REMOVE_RECURSE
  "CMakeFiles/ecc_trace.dir/workload.cpp.o"
  "CMakeFiles/ecc_trace.dir/workload.cpp.o.d"
  "libecc_trace.a"
  "libecc_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecc_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
