// Independent DRAM protocol checker (verification layer, no scheduler
// logic shared).
//
// The checker observes the command stream one Channel emits through the
// dram::CommandObserver hook and re-validates every command against the
// raw timing table (dram::DramTiming) and channel configuration alone.
// The rule set adapts to the configured DramSpec's generation: bank-group
// constraints degenerate to the classic single constraints when
// bank_groups == 1, and the refresh rules follow the spec's RefreshPolicy.
//
//   per bank   : state legality (ACT only to a closed bank, RD/WR only to
//                the open row, PRE only to an open bank), tRCD, tRP, tRC,
//                tRAS, tRTP, tWR, tCCD_L
//   per group  : tRRD_L between ACTs and tCCD_L between CAS commands in
//                the same bank group of a rank (equal to the rank-wide
//                rules for DDR3, tighter for DDR4/DDR5)
//   per rank   : tRRD_S, the four-activate window tFAW, refresh-interval
//                conformance (REF every tREFI exactly; under DDR5 REFsb
//                also the bank-set rotation), and the tRFC refresh
//                blackout (no ACT inside it -- rank-wide under kAllBank,
//                per bank set under kSameBank)
//   per channel: tCCD_S between any two CAS commands, data-bus occupancy
//                (bursts never overlap) and write-to-read / read-to-write
//                turnaround (tWTR / tRTW, measured from data end to next
//                data start, which is the channel model's documented bus
//                contract)
//   policy     : under close-page, every CAS must carry auto-precharge and
//                an activation serves exactly one CAS
//
// It deliberately reimplements the rules from the JEDEC-style timing
// parameters instead of reusing Channel's arithmetic, so a scheduler bug
// cannot hide by being mirrored in its own audit.  Two model-level scope
// notes: power-down exit (tXP) depends on scheduler-local wall-clock state
// that is not part of the command stream, and refresh is modeled as
// blocking activates only (banks are not force-precharged), so neither is
// checked.
//
// Violations carry the offending command, the violated rule, and a rolling
// window of recent command history.  Mode::kFatal (the Debug default)
// prints the full context and aborts at the first violation; Mode::kCount
// (the Release default) records and counts them so the caller can fail the
// run at a convenient boundary.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "dram/channel.hpp"
#include "dram/observer.hpp"

namespace eccsim::check {

/// Audits one channel's command stream.  Attach via
/// Channel::set_observer / MemorySystem::set_command_observer; single
/// owner, driven synchronously by whichever thread runs the channel.
class ProtocolChecker final : public dram::CommandObserver {
 public:
  enum class Mode {
    kFatal,  ///< print context and abort at the first violation
    kCount,  ///< record (bounded) and count; caller decides when to fail
  };

  /// kFatal in Debug builds (NDEBUG unset), kCount in Release.
  static Mode default_mode();

  struct Violation {
    std::string rule;    ///< violated constraint, e.g. "tFAW" or "bank-state"
    std::string detail;  ///< expected-vs-actual cycles, addresses
    dram::DramCommand cmd;
  };

  ProtocolChecker(const dram::ChannelConfig& cfg, std::string name,
                  Mode mode = default_mode());

  void on_command(const dram::DramCommand& cmd) override;

  /// Total violations seen (kCount mode counts past the storage cap).
  std::uint64_t violation_count() const { return violation_count_; }
  /// Stored violations (first kMaxStored, with full detail).
  const std::vector<Violation>& violations() const { return violations_; }
  std::uint64_t commands_checked() const { return commands_; }
  const std::string& name() const { return name_; }

  /// Human-readable summary: per-rule counts plus the stored violations
  /// with their command-history context.
  std::string report() const;

  /// At most this many violations keep full detail; the rest only count.
  static constexpr std::size_t kMaxStored = 16;
  /// Command-history window captured into each violation's context.
  static constexpr std::size_t kHistory = 48;

 private:
  struct BankState {
    bool open = false;
    std::uint64_t row = 0;
    std::uint64_t act_cycle = 0;   ///< last ACT (valid once has_act)
    std::uint64_t pre_cycle = 0;   ///< last PRE (valid once has_pre)
    std::uint64_t last_cas = 0;    ///< last RD/WR CAS (valid once has_cas)
    std::uint64_t last_rd_cas = 0;      ///< since current activation
    std::uint64_t last_wr_data_end = 0; ///< since current activation
    bool has_act = false;
    bool has_pre = false;
    bool has_cas = false;
    bool rd_since_act = false;
    bool wr_since_act = false;
    bool cas_since_act = false;
  };
  struct RankState {
    std::deque<std::uint64_t> act_window;  ///< last ACTs, for tRRD_S / tFAW
    std::vector<std::uint64_t> group_last_act;  ///< per group, for tRRD_L
    std::vector<bool> group_has_act;
    std::vector<std::uint64_t> group_last_cas;  ///< per group, for tCCD_L
    std::vector<bool> group_has_cas;
    std::vector<std::uint64_t> set_last_ref;  ///< per bank set (1 entry
                                              ///< under kAllBank)
    std::vector<bool> set_has_ref;
    std::uint64_t refs_seen = 0;
  };

  void check_activate(const dram::DramCommand& cmd);
  void check_cas(const dram::DramCommand& cmd);
  void check_precharge(const dram::DramCommand& cmd);
  void check_refresh(const dram::DramCommand& cmd);

  /// Records/reports one violation (rule, expected-vs-actual detail).
  void fail(const char* rule, const dram::DramCommand& cmd,
            std::string detail);
  /// Shorthand for "cycle >= floor" timing-window checks.
  void require_window(const char* rule, const dram::DramCommand& cmd,
                      std::uint64_t actual, std::uint64_t floor,
                      const char* since);

  std::string format_history() const;

  dram::ChannelConfig cfg_;
  std::string name_;
  Mode mode_;

  std::vector<RankState> ranks_;
  std::vector<BankState> banks_;  ///< rank-major [rank * banks + bank]

  // Channel-level data-bus and CAS-spacing state.
  std::uint64_t bus_data_end_ = 0;
  bool bus_last_write_ = false;
  bool bus_used_ = false;
  std::uint64_t last_cas_any_ = 0;  ///< for the channel-wide tCCD_S rule
  bool cas_seen_ = false;

  std::deque<dram::DramCommand> history_;
  std::vector<Violation> violations_;
  std::uint64_t violation_count_ = 0;
  std::uint64_t commands_ = 0;
};

/// Historical name from when the checker was DDR3-only; the class now
/// validates whichever generation the ChannelConfig's DramSpec selects.
using Ddr3ProtocolChecker = ProtocolChecker;

}  // namespace eccsim::check
