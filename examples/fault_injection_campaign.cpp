// Fault-injection campaign: the full Sec. III lifecycle on one system.
//
// Walks the ECC Parity state machine through its three regimes:
//   1. small faults  -> corrected via parity, pages retired (counter < 4);
//   2. a device-level (bank-scale) fault -> counter saturates, the bank
//      pair is marked faulty, correction bits are materialized, and every
//      parity group touching the pair is recomputed without it;
//   3. post-materialization -> further faults in the marked banks are
//      corrected from the stored ECC lines (step B), while the rest of the
//      system still corrects via parity; a same-location double-channel
//      fault remains (correctly) uncorrectable.
//
// Build & run:  ./build/examples/fault_injection_campaign
#include <cstdio>

#include "common/rng.hpp"
#include "ecc/codec.hpp"
#include "eccparity/manager.hpp"

using namespace eccsim;

namespace {

std::vector<std::uint8_t> random_payload(Rng& rng) {
  std::vector<std::uint8_t> v(64);
  for (auto& b : v) b = static_cast<std::uint8_t>(rng.next_below(256));
  return v;
}

void banner(const char* text) { std::printf("\n== %s ==\n", text); }

}  // namespace

int main() {
  dram::MemGeometry geom;
  geom.channels = 8;
  geom.ranks_per_channel = 2;
  geom.banks_per_rank = 8;
  geom.rows_per_bank = 128;
  geom.line_bytes = 64;
  eccparity::EccParityManager memory(
      geom, ecc::make_codec(ecc::SchemeId::kLotEcc5), 4);
  Rng rng(2014);

  // Populate a working set.
  const std::uint64_t kLines = 6000;
  for (std::uint64_t l = 0; l < kLines; ++l) {
    memory.write_line(l, random_payload(rng));
  }
  std::printf("populated %llu lines; parity violations: %llu\n",
              (unsigned long long)kLines,
              (unsigned long long)memory.verify_parity_invariant());

  banner("phase 1: scattered small faults (bit/row class)");
  // Three faults in three different bank pairs: each is corrected via
  // parity and retires its page; no counter saturates.
  for (std::uint64_t l : {11ULL, 1700ULL, 4100ULL}) {
    memory.corrupt_chip_share(l, 1);
    const auto r = memory.read_line(l);
    std::printf(
        "  line %5llu: detected=%d corrected=%d via_parity=%d action=%s\n",
        (unsigned long long)l, r.error_detected, r.corrected,
        r.used_parity_reconstruction,
        r.action == eccparity::ErrorAction::kRetirePage ? "retire-page"
                                                        : "other");
  }
  std::printf("  retired pages: %zu, faulty pairs: %zu\n",
              memory.retired_page_count(), memory.health().faulty_pairs());

  banner("phase 2: a bank-scale fault saturates one pair's counter");
  // Hammer lines that live in one bank pair until the 4th error marks it.
  const auto target =
      eccparity::BankHealthTable::pair_of(memory.map().decode(0));
  unsigned errors_in_pair = 0;
  for (std::uint64_t l = 0; l < kLines && memory.health().faulty_pairs() == 0;
       ++l) {
    if (eccparity::BankHealthTable::pair_of(memory.map().decode(l)) !=
        target) {
      continue;
    }
    memory.corrupt_chip_share(l, 0);
    const auto r = memory.read_line(l);
    ++errors_in_pair;
    if (r.action == eccparity::ErrorAction::kMarkFaulty) {
      std::printf("  error #%u marked the pair faulty\n", errors_in_pair);
    }
  }
  const auto& s = memory.stats();
  std::printf("  lines materialized: %llu, parity groups recomputed: %llu\n",
              (unsigned long long)s.lines_materialized,
              (unsigned long long)s.parity_groups_recomputed);
  std::printf("  materialized fraction of memory: %.3f%%\n",
              memory.materialized_fraction() * 100.0);
  std::printf("  parity invariant violations after recompute: %llu\n",
              (unsigned long long)memory.verify_parity_invariant());

  banner("phase 3a: new fault inside the marked pair -> step B");
  {
    std::uint64_t in_pair = 0;
    for (std::uint64_t l = 0; l < kLines; ++l) {
      if (eccparity::BankHealthTable::pair_of(memory.map().decode(l)) ==
          target) {
        in_pair = l;
        break;
      }
    }
    memory.corrupt_chip_share(in_pair, 3);
    const auto r = memory.read_line(in_pair);
    std::printf("  line %llu: corrected=%d via_materialized_bits=%d\n",
                (unsigned long long)in_pair, r.corrected,
                r.used_materialized_bits);
  }

  banner("phase 3b: fault in a healthy channel still corrects via parity");
  {
    // Pick a line in another channel (odd page -> different channel).
    const std::uint64_t l = geom.lines_per_row() + 5;  // page 1, channel 1
    memory.corrupt_chip_share(l, 2);
    const auto r = memory.read_line(l);
    std::printf("  line %llu: corrected=%d via_parity=%d\n",
                (unsigned long long)l, r.corrected,
                r.used_parity_reconstruction);
  }

  banner("phase 3c: the documented limit -- same location, two channels");
  {
    const std::uint64_t a = 64 * 100;  // some line
    const auto group = memory.layout().group_of(a);
    const auto members = memory.layout().members(group);
    const std::uint64_t b = members[0].line_index == a
                                ? members[1].line_index
                                : members[0].line_index;
    memory.corrupt_chip_share(a, 0);
    memory.corrupt_chip_share(b, 0);
    const auto r = memory.read_line(a);
    std::printf(
        "  lines %llu and %llu share a parity group; double fault "
        "uncorrectable=%d (expected 1)\n",
        (unsigned long long)a, (unsigned long long)b, r.uncorrectable);
  }

  banner("final scrub");
  const std::uint64_t found = memory.scrub();
  std::printf("  scrub pass found %llu remaining errors\n",
              (unsigned long long)found);
  std::printf(
      "\ntotals: reads=%llu writes=%llu detected=%llu via_parity=%llu "
      "via_ecc_lines=%llu uncorrectable=%llu retired_pages=%llu\n",
      (unsigned long long)s.reads, (unsigned long long)s.writes,
      (unsigned long long)s.errors_detected,
      (unsigned long long)s.corrected_via_parity,
      (unsigned long long)s.corrected_via_materialized,
      (unsigned long long)s.uncorrectable,
      (unsigned long long)s.pages_retired);
  return 0;
}
