# Empty compiler generated dependencies file for fig10_epi_quad.
# This may be replaced when dependencies are built.
