// Tests for the fault model and Monte Carlo engine: rate bookkeeping,
// sampling statistics, and agreement between simulation and the closed-form
// models for the paper's reliability figures.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>

#include "common/units.hpp"
#include "faults/fault_model.hpp"
#include "faults/montecarlo.hpp"

namespace eccsim::faults {
namespace {

TEST(FitRates, VendorAverageTotals44) {
  EXPECT_NEAR(ddr3_vendor_average().total(), 44.0, 1e-9);
}

TEST(FitRates, ScaledToPreservesShape) {
  const FitRates base = ddr3_vendor_average();
  const FitRates scaled = base.scaled_to(100.0);
  EXPECT_NEAR(scaled.total(), 100.0, 1e-9);
  EXPECT_NEAR(scaled[FaultType::kBit] / scaled[FaultType::kBank],
              base[FaultType::kBit] / base[FaultType::kBank], 1e-9);
}

TEST(FaultModel, SaturationClassification) {
  // Sec. III-C: bit/word/row are absorbed by page retirement; column and
  // larger saturate the bank-pair counter.
  EXPECT_FALSE(saturates_error_counter(FaultType::kBit));
  EXPECT_FALSE(saturates_error_counter(FaultType::kWord));
  EXPECT_FALSE(saturates_error_counter(FaultType::kRow));
  EXPECT_TRUE(saturates_error_counter(FaultType::kColumn));
  EXPECT_TRUE(saturates_error_counter(FaultType::kBank));
  EXPECT_TRUE(saturates_error_counter(FaultType::kMultiBank));
  EXPECT_TRUE(saturates_error_counter(FaultType::kMultiRank));
}

TEST(FaultModel, BanksAffectedScalesWithType) {
  EXPECT_EQ(banks_affected(FaultType::kBank, 8, 4), 1u);
  EXPECT_EQ(banks_affected(FaultType::kMultiBank, 8, 4), 4u);
  EXPECT_EQ(banks_affected(FaultType::kMultiRank, 8, 4), 32u);
}

TEST(SystemShape, PaperFig2Shape) {
  // Fig. 2: eight channels, four ranks per channel, nine chips per rank.
  SystemShape s;
  EXPECT_EQ(s.total_chips(), 288u);
  EXPECT_EQ(s.total_banks(), 256u);
}

TEST(Sampling, EventCountMatchesExpectation) {
  SystemShape shape;
  const FitRates rates = ddr3_vendor_average();
  const double lifetime = 7 * units::kHoursPerYear;
  const double expected =
      units::fit_to_per_hour(rates.total()) * shape.total_chips() * lifetime;
  std::atomic<std::uint64_t> total{0};
  const unsigned systems = 4000;
  parallel_systems(systems, 99, [&](unsigned, Rng& rng) {
    total += sample_lifetime(shape, rates, lifetime, rng).size();
  });
  const double mean = static_cast<double>(total) / systems;
  EXPECT_NEAR(mean, expected, expected * 0.05);
}

TEST(Sampling, EventsAreSortedAndInRange) {
  SystemShape shape;
  Rng rng(7);
  const double lifetime = 50 * units::kHoursPerYear;  // enough events
  const auto events =
      sample_lifetime(shape, ddr3_vendor_average(), lifetime, rng);
  ASSERT_GT(events.size(), 1u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_LT(events[i].time_hours, lifetime);
    EXPECT_LT(events[i].channel, shape.channels);
    EXPECT_LT(events[i].rank, shape.ranks_per_channel);
    EXPECT_LT(events[i].chip, shape.chips_per_rank);
    if (i > 0) {
      EXPECT_GE(events[i].time_hours, events[i - 1].time_hours);
    }
  }
}

TEST(Sampling, DeterministicAcrossRuns) {
  SystemShape shape;
  Rng a(123), b(123);
  const auto ea = sample_lifetime(shape, ddr3_vendor_average(), 1e5, a);
  const auto eb = sample_lifetime(shape, ddr3_vendor_average(), 1e5, b);
  ASSERT_EQ(ea.size(), eb.size());
  for (std::size_t i = 0; i < ea.size(); ++i) {
    EXPECT_DOUBLE_EQ(ea[i].time_hours, eb[i].time_hours);
    EXPECT_EQ(ea[i].channel, eb[i].channel);
  }
}

TEST(Mtbf, AnalyticMatchesHandComputation) {
  // Fig. 2 caption check: 288 chips at 44 FIT.
  SystemShape shape;
  const double mtbf = analytic_mtbf_hours(shape, 44.0);
  EXPECT_NEAR(mtbf, 1.0 / (288 * 44e-9), 1e-3);
  // "Order of 100's of days": ~3289 days at 44 FIT.
  EXPECT_GT(mtbf / 24.0, 100.0);
}

TEST(Mtbf, SimulationAgreesWithAnalytic) {
  SystemShape shape;
  const auto res = mtbf_between_channels(
      shape, ddr3_vendor_average(), 300, 200 * units::kHoursPerYear, 17);
  ASSERT_GT(res.gaps_observed, 100u);
  // Inter-channel gaps are slightly shorter than all-fault gaps in
  // expectation conditioning, but within a quarter of the analytic value.
  EXPECT_NEAR(res.simulated_hours, res.analytic_hours,
              res.analytic_hours * 0.25);
}

TEST(Eol, FractionIsSmallAndGrowsWithFit) {
  SystemShape shape;
  const double life = 7 * units::kHoursPerYear;
  const auto base =
      eol_materialized_fraction(shape, ddr3_vendor_average(), 3000, life, 5);
  // Fig. 8: a small fraction (paper average 0.4%).
  EXPECT_GT(base.mean_fraction, 0.0002);
  EXPECT_LT(base.mean_fraction, 0.02);
  const auto high = eol_materialized_fraction(
      shape, ddr3_vendor_average().scaled_to(100.0), 3000, life, 5);
  EXPECT_GT(high.mean_fraction, base.mean_fraction);
}

TEST(Eol, PercentileAtLeastMean) {
  SystemShape shape;
  const auto res = eol_materialized_fraction(
      shape, ddr3_vendor_average(), 2000, 7 * units::kHoursPerYear, 6);
  EXPECT_GE(res.p999_fraction, res.mean_fraction);
}

TEST(ScrubWindow, PaperHeadlineNumber) {
  // Sec. VI-C: 8-hour window, 100 FIT/chip -> ~0.0002 over seven years.
  SystemShape shape;
  const double p = analytic_multichannel_window_probability(
      shape, 100.0, 8.0, 7 * units::kHoursPerYear);
  EXPECT_NEAR(p, 2.0e-4, 1.0e-4);
}

TEST(ScrubWindow, ProbabilityMonotonicInWindow) {
  SystemShape shape;
  const double life = 7 * units::kHoursPerYear;
  double prev = 0;
  for (double w : {1.0, 8.0, 24.0, 168.0}) {
    const double p =
        analytic_multichannel_window_probability(shape, 44.0, w, life);
    EXPECT_GT(p, prev);
    prev = p;
  }
}

TEST(ScrubWindow, SimulationAgreesWithAnalytic) {
  SystemShape shape;
  // Use a high FIT and long window so the probability is large enough to
  // estimate with a modest number of systems.
  const FitRates rates = ddr3_vendor_average().scaled_to(3000.0);
  const auto res = multichannel_window_probability(
      shape, rates, 24.0 * 30, 7 * units::kHoursPerYear, 4000, 33);
  ASSERT_GT(res.analytic_probability, 0.05);
  EXPECT_NEAR(res.simulated_probability, res.analytic_probability,
              res.analytic_probability * 0.2);
}

TEST(HpcStall, MatchesPaperOrder) {
  // Sec. VI-B: 2PB system, 128GB/node, 1GB/s NIC -> ~0.35% stall.
  const double frac = hpc_stall_fraction(HpcStallParams{},
                                         ddr3_vendor_average());
  EXPECT_GT(frac, 0.001);
  EXPECT_LT(frac, 0.006);
}

TEST(HpcStall, ScalesWithNicBandwidth) {
  HpcStallParams fast;
  fast.nic_bandwidth_bytes_per_s *= 10;
  EXPECT_LT(hpc_stall_fraction(fast, ddr3_vendor_average()),
            hpc_stall_fraction(HpcStallParams{}, ddr3_vendor_average()));
}

TEST(ParallelSystems, VisitsEveryIndexOnce) {
  std::vector<std::atomic<int>> counts(257);
  parallel_systems(257, 1, [&](unsigned i, Rng&) { ++counts[i]; });
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

}  // namespace
}  // namespace eccsim::faults
