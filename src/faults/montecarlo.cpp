#include "faults/montecarlo.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <unordered_set>

#include "common/units.hpp"
#include "stats/stats.hpp"

namespace eccsim::faults {

namespace {

/// Checkpoint/series tag for one study invocation: the study kind plus
/// every model parameter that shapes the sampled stream.  (The engine
/// additionally keys on seed, budget, chunk size, and field layout.)
std::string run_tag(const char* kind, const SystemShape& shape,
                    double total_fit, double lifetime_hours, double extra) {
  char buf[160];
  std::snprintf(buf, sizeof buf, "%s_c%ur%uk%ub%u_fit%.6g_life%.6g_x%.6g",
                kind, shape.channels, shape.ranks_per_channel,
                shape.chips_per_rank, shape.banks_per_rank, total_fit,
                lifetime_hours, extra);
  return buf;
}

void count_events(const McOptions& opts, std::uint64_t events) {
  if (opts.stats != nullptr) {
    opts.stats->counter("mc.events_sampled")->inc(events);
  }
}

}  // namespace

std::vector<FaultEvent> sample_lifetime(const SystemShape& shape,
                                        const FitRates& rates,
                                        double lifetime_hours, Rng& rng) {
  std::vector<FaultEvent> events;
  const unsigned total_chips = shape.total_chips();
  for (std::size_t ti = 0; ti < kFaultTypeCount; ++ti) {
    const auto type = static_cast<FaultType>(ti);
    const double rate_per_hour =
        units::fit_to_per_hour(rates[type]) * total_chips;
    if (rate_per_hour <= 0) continue;
    // Poisson process over the whole chip population for this type.
    double t = rng.exponential(rate_per_hour);
    while (t < lifetime_hours) {
      FaultEvent e;
      e.time_hours = t;
      e.type = type;
      const std::uint64_t chip = rng.next_below(total_chips);
      e.channel = static_cast<unsigned>(chip / shape.chips_per_channel());
      const std::uint64_t within =
          chip % shape.chips_per_channel();
      e.rank = static_cast<unsigned>(within / shape.chips_per_rank);
      e.chip = static_cast<unsigned>(within % shape.chips_per_rank);
      events.push_back(e);
      t += rng.exponential(rate_per_hour);
    }
  }
  std::sort(events.begin(), events.end());
  return events;
}

double analytic_mtbf_hours(const SystemShape& shape, double total_fit) {
  return units::mtbf_hours(total_fit, shape.total_chips());
}

MtbfResult mtbf_between_channels(const SystemShape& shape,
                                 const FitRates& rates, unsigned systems,
                                 double lifetime_hours, std::uint64_t seed,
                                 const McOptions& opts) {
  MtbfResult out;
  out.analytic_hours = analytic_mtbf_hours(shape, rates.total());
  double gap_sum = 0;
  std::uint64_t gaps = 0;
  std::uint64_t events_total = 0;
  // CI proxy for early stop: the per-system mean inter-channel gap (over
  // systems that observed at least one gap).
  RunningStat per_system;
  // Per-system fields: [0] sum of inter-channel gaps, [1] gap count,
  // [2] fault events sampled.
  out.mc = mc_run(
      systems, seed, 3,
      run_tag("mtbf", shape, rates.total(), lifetime_hours, 0), opts,
      [&](unsigned, Rng& rng, double* f) {
        const auto events = sample_lifetime(shape, rates, lifetime_hours, rng);
        double local_sum = 0;
        std::uint64_t local_gaps = 0;
        for (std::size_t i = 1; i < events.size(); ++i) {
          if (events[i].channel != events[i - 1].channel) {
            local_sum += events[i].time_hours - events[i - 1].time_hours;
            ++local_gaps;
          }
        }
        f[0] = local_sum;
        f[1] = static_cast<double>(local_gaps);
        f[2] = static_cast<double>(events.size());
      },
      [&](unsigned, const double* f) {
        gap_sum += f[0];
        gaps += static_cast<std::uint64_t>(f[1]);
        events_total += static_cast<std::uint64_t>(f[2]);
        if (f[1] > 0) per_system.add(f[0] / f[1]);
      },
      [&] { return relative_ci95(per_system); });
  out.gaps_observed = gaps;
  out.events_sampled = events_total;
  if (gaps > 0) {
    out.simulated_hours = gap_sum / static_cast<double>(gaps);
  }  // else: stays NaN -- no gaps observed is "no data", not 0 hours
  count_events(opts, events_total);
  return out;
}

EolResult eol_materialized_fraction(const SystemShape& shape,
                                    const FitRates& rates, unsigned systems,
                                    double lifetime_hours, std::uint64_t seed,
                                    const McOptions& opts) {
  RunningStat fractions;
  QuantileReservoir tail(kEolReservoirCap);
  std::uint64_t with_any = 0;
  std::uint64_t events_total = 0;
  // Per-system fields: [0] faulty-pair memory fraction, [1] had any
  // faulty pair, [2] fault events sampled.
  EolResult out;
  out.mc = mc_run(
      systems, seed, 3,
      run_tag("eol", shape, rates.total(), lifetime_hours, 0), opts,
      [&](unsigned, Rng& rng, double* f) {
        const auto events = sample_lifetime(shape, rates, lifetime_hours, rng);
        // Pairs marked faulty: key = channel * banks_per_channel/2 + pair.
        std::unordered_set<std::uint64_t> faulty_pairs;
        for (const FaultEvent& e : events) {
          if (!saturates_error_counter(e.type)) continue;
          const unsigned affected =
              banks_affected(e.type, shape.banks_per_rank,
                             shape.ranks_per_channel);
          if (e.type == FaultType::kMultiRank) {
            // Every bank of every rank in the channel.
            for (unsigned r = 0; r < shape.ranks_per_channel; ++r) {
              for (unsigned b = 0; b < shape.banks_per_rank; b += 2) {
                faulty_pairs.insert(
                    (static_cast<std::uint64_t>(e.channel) << 32) |
                    (r << 8) | (b / 2));
              }
            }
          } else {
            // Banks within the faulted chip's rank, starting at a random bank.
            const unsigned first =
                static_cast<unsigned>(rng.next_below(shape.banks_per_rank));
            for (unsigned k = 0; k < affected; ++k) {
              const unsigned b = (first + k) % shape.banks_per_rank;
              faulty_pairs.insert(
                  (static_cast<std::uint64_t>(e.channel) << 32) |
                  (e.rank << 8) | (b / 2));
            }
          }
        }
        f[0] = 2.0 * static_cast<double>(faulty_pairs.size()) /
               static_cast<double>(shape.total_banks());
        f[1] = faulty_pairs.empty() ? 0.0 : 1.0;
        f[2] = static_cast<double>(events.size());
      },
      [&](unsigned index, const double* f) {
        fractions.add(f[0]);
        tail.add(f[0], mc_sample_key(seed, index));
        if (f[1] > 0) ++with_any;
        events_total += static_cast<std::uint64_t>(f[2]);
      },
      [&] { return relative_ci95(fractions); });
  out.mean_fraction = fractions.mean();
  out.p999_fraction = tail.percentile(99.9);
  out.p999_exact = tail.exact();
  out.systems_with_any =
      out.mc.systems_merged != 0
          ? static_cast<double>(with_any) /
                static_cast<double>(out.mc.systems_merged)
          : 0.0;
  out.events_sampled = events_total;
  count_events(opts, events_total);
  return out;
}

double analytic_multichannel_window_probability(const SystemShape& shape,
                                                double total_fit,
                                                double window_hours,
                                                double lifetime_hours) {
  // Per window: each channel faults with p = 1 - exp(-lambda_ch * w);
  // P(>= 2 channels fault) = 1 - (1-p)^N - N p (1-p)^{N-1}.
  const double lambda_ch = units::fit_to_per_hour(total_fit) *
                           shape.chips_per_channel();
  const double p = 1.0 - std::exp(-lambda_ch * window_hours);
  const unsigned n = shape.channels;
  const double none = std::pow(1.0 - p, n);
  const double one = n * p * std::pow(1.0 - p, n - 1);
  const double q = 1.0 - none - one;
  const double windows = lifetime_hours / window_hours;
  // P(at least one bad window over the lifetime).
  return 1.0 - std::pow(1.0 - q, windows);
}

ScrubWindowResult multichannel_window_probability(
    const SystemShape& shape, const FitRates& rates, double window_hours,
    double lifetime_hours, unsigned systems, std::uint64_t seed,
    const McOptions& opts) {
  ScrubWindowResult out;
  out.analytic_probability = analytic_multichannel_window_probability(
      shape, rates.total(), window_hours, lifetime_hours);
  RunningStat bernoulli;
  std::uint64_t bad_systems = 0;
  std::uint64_t events_total = 0;
  // Per-system fields: [0] had a multi-channel window, [1] events sampled.
  out.mc = mc_run(
      systems, seed, 2,
      run_tag("scrub", shape, rates.total(), lifetime_hours, window_hours),
      opts,
      [&](unsigned, Rng& rng, double* f) {
        const auto events = sample_lifetime(shape, rates, lifetime_hours, rng);
        // Walk the sorted events; flag any window containing two channels.
        bool bad = false;
        std::size_t i = 0;
        while (i < events.size() && !bad) {
          const auto window_index =
              static_cast<std::uint64_t>(events[i].time_hours / window_hours);
          const unsigned first_channel = events[i].channel;
          std::size_t j = i + 1;
          while (j < events.size() &&
                 static_cast<std::uint64_t>(events[j].time_hours /
                                            window_hours) == window_index) {
            if (events[j].channel != first_channel) {
              bad = true;
              break;
            }
            ++j;
          }
          i = j;
        }
        f[0] = bad ? 1.0 : 0.0;
        f[1] = static_cast<double>(events.size());
      },
      [&](unsigned, const double* f) {
        bernoulli.add(f[0]);
        if (f[0] > 0) ++bad_systems;
        events_total += static_cast<std::uint64_t>(f[1]);
      },
      [&] { return relative_ci95(bernoulli); });
  out.bad_systems = bad_systems;
  out.events_sampled = events_total;
  out.simulated_probability =
      out.mc.systems_merged != 0
          ? static_cast<double>(bad_systems) /
                static_cast<double>(out.mc.systems_merged)
          : 0.0;
  count_events(opts, events_total);
  return out;
}

namespace {

/// Shared derivation for the Sec. VI-B model: machine-wide rate of
/// migration-triggering (column-or-larger) faults and the stall per event.
struct HpcDerived {
  double events_per_hour = 0;
  double stall_hours_per_event = 0;
};

HpcDerived hpc_derive(const HpcStallParams& params, const FitRates& rates) {
  HpcDerived d;
  const double nodes = params.total_memory_bytes / params.node_memory_bytes;
  const double chips_per_node =
      params.node_memory_bytes / params.chip_capacity_bytes;
  // Migration happens on every column-or-larger fault (Sec. VI-B).
  double sat_fit = 0;
  for (std::size_t t = 0; t < kFaultTypeCount; ++t) {
    const auto type = static_cast<FaultType>(t);
    if (saturates_error_counter(type)) sat_fit += rates[type];
  }
  d.events_per_hour =
      units::fit_to_per_hour(sat_fit) * chips_per_node * nodes;
  // Stall per event: migrate the node's memory over its NIC, plus
  // reconstructing the ECC correction bits, which requires streaming the
  // faulty node's memory once at memory bandwidth (~50 GB/s; a few
  // seconds, Sec. III-B).
  const double migrate_s =
      params.node_memory_bytes / params.nic_bandwidth_bytes_per_s;
  const double reconstruct_s =
      params.node_memory_bytes / (50.0 * 1024 * 1024 * 1024);
  d.stall_hours_per_event = (migrate_s + reconstruct_s) / 3600.0;
  return d;
}

}  // namespace

double hpc_stall_fraction(const HpcStallParams& params,
                          const FitRates& rates) {
  const HpcDerived d = hpc_derive(params, rates);
  return d.events_per_hour * d.stall_hours_per_event;
}

HpcStallResult hpc_stall_fraction_mc(const HpcStallParams& params,
                                     const FitRates& rates, unsigned systems,
                                     std::uint64_t seed,
                                     const McOptions& opts) {
  HpcStallResult out;
  out.analytic_fraction = hpc_stall_fraction(params, rates);
  const HpcDerived d = hpc_derive(params, rates);
  RunningStat fractions;
  std::uint64_t events_total = 0;
  SystemShape tag_shape;  // the HPC model has no channel shape; tag on size
  tag_shape.channels = 0;
  // Per-system fields: [0] stalled fraction of the lifetime, [1] migration
  // events sampled.
  out.mc = mc_run(
      systems, seed, 2,
      run_tag("hpc", tag_shape, rates.total(), params.lifetime_hours,
              params.total_memory_bytes / params.node_memory_bytes),
      opts,
      [&](unsigned, Rng& rng, double* f) {
        // Poisson stream of migration events over the whole machine.
        std::uint64_t n = 0;
        if (d.events_per_hour > 0) {
          double t = rng.exponential(d.events_per_hour);
          while (t < params.lifetime_hours) {
            ++n;
            t += rng.exponential(d.events_per_hour);
          }
        }
        f[0] = static_cast<double>(n) * d.stall_hours_per_event /
               params.lifetime_hours;
        f[1] = static_cast<double>(n);
      },
      [&](unsigned, const double* f) {
        fractions.add(f[0]);
        events_total += static_cast<std::uint64_t>(f[1]);
      },
      [&] { return relative_ci95(fractions); });
  out.simulated_fraction = fractions.mean();
  out.events_sampled = events_total;
  count_events(opts, events_total);
  return out;
}

}  // namespace eccsim::faults
