file(REMOVE_RECURSE
  "CMakeFiles/fig13_background_epi_quad.dir/fig13_background_epi_quad.cpp.o"
  "CMakeFiles/fig13_background_epi_quad.dir/fig13_background_epi_quad.cpp.o.d"
  "fig13_background_epi_quad"
  "fig13_background_epi_quad.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_background_epi_quad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
