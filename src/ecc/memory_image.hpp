// Sparse byte-accurate memory image.
//
// The performance simulator moves no data, but the functional layers (the
// codecs, the ECC Parity manager, the fault injector, the examples) operate
// on real bytes.  The image is sparse: untouched lines read as zero, which
// is also what a zero-initialized DRAM would return, so parities computed
// over untouched regions are trivially consistent.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

namespace eccsim::ecc {

class MemoryImage {
 public:
  explicit MemoryImage(unsigned line_bytes) : line_bytes_(line_bytes) {}

  unsigned line_bytes() const { return line_bytes_; }

  /// Read-only view; returns the shared zero line when untouched.
  std::span<const std::uint8_t> read(std::uint64_t line_index) const {
    const auto it = lines_.find(line_index);
    if (it == lines_.end()) {
      if (zero_.size() != line_bytes_) zero_.assign(line_bytes_, 0);
      return zero_;
    }
    return it->second;
  }

  /// Mutable line, created zero-filled on first touch.
  std::vector<std::uint8_t>& line(std::uint64_t line_index) {
    auto& l = lines_[line_index];
    if (l.empty()) l.assign(line_bytes_, 0);
    return l;
  }

  void write(std::uint64_t line_index, std::span<const std::uint8_t> bytes) {
    auto& l = line(line_index);
    l.assign(bytes.begin(), bytes.end());
    l.resize(line_bytes_, 0);
  }

  /// XORs `bytes` into the line (parity maintenance).
  void xor_into(std::uint64_t line_index,
                std::span<const std::uint8_t> bytes) {
    auto& l = line(line_index);
    const std::size_t n = std::min<std::size_t>(bytes.size(), l.size());
    for (std::size_t i = 0; i < n; ++i) l[i] ^= bytes[i];
  }

  bool touched(std::uint64_t line_index) const {
    return lines_.contains(line_index);
  }
  std::size_t touched_lines() const { return lines_.size(); }

  /// Visits every touched line: fn(line_index, bytes).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& [idx, bytes] : lines_) fn(idx, bytes);
  }

 private:
  unsigned line_bytes_;
  std::unordered_map<std::uint64_t, std::vector<std::uint8_t>> lines_;
  mutable std::vector<std::uint8_t> zero_;
};

}  // namespace eccsim::ecc
