// DRAM device-level fault taxonomy and field failure rates.
//
// Fault types and rates follow the large-scale field studies the paper
// builds on (Sridharan et al. [20][21]): DRAM devices exhibit single-bit,
// word, column, row, bank, multi-bank, and multi-rank faults, with an
// all-type average of ~44 FIT per DDR3 chip across vendors (Fig. 2 caption).
// The per-type split below reproduces the qualitative structure reported in
// those studies -- single-bit faults dominate, large device-level faults
// are a small but reliability-critical minority -- normalized to the
// 44 FIT/chip total.
//
// The ECC Parity mechanism reacts differently by type (Sec. III-C):
// bit/word/row faults are absorbed by page retirement before the bank-pair
// error counter saturates; column and larger faults keep producing errors
// across retired pages, saturate the counter, and cause the pair (or, for
// multi-bank/multi-rank faults, several pairs) to be marked faulty.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace eccsim::faults {

enum class FaultType : std::uint8_t {
  kBit = 0,
  kWord,
  kColumn,
  kRow,
  kBank,
  kMultiBank,
  kMultiRank,
  kCount_,
};

inline constexpr std::size_t kFaultTypeCount =
    static_cast<std::size_t>(FaultType::kCount_);

std::string to_string(FaultType t);

/// Per-type FIT rates (failures per 10^9 device-hours) for one DRAM chip.
struct FitRates {
  std::array<double, kFaultTypeCount> fit{};

  double operator[](FaultType t) const {
    return fit[static_cast<std::size_t>(t)];
  }
  double& operator[](FaultType t) {
    return fit[static_cast<std::size_t>(t)];
  }

  double total() const {
    double s = 0;
    for (double f : fit) s += f;
    return s;
  }

  /// Uniformly scales every rate so the total equals `target_fit`
  /// (used for the Fig. 2 / Fig. 18 sweeps over 10..100 FIT/chip).
  FitRates scaled_to(double target_fit) const;
};

/// The DDR3 vendor-average distribution (~44 FIT/chip, [21]).
FitRates ddr3_vendor_average();

/// Applies an on-die ECC pre-correction filter (DDR5's internal SECDED) to
/// a rate distribution: the single-bit rate is attenuated by the filter's
/// coverage (fraction of bit faults corrected inside the device before the
/// rank-level scheme sees them); every larger fault type passes through
/// untouched, since a (136,128) SECDED cannot absorb word/column/row-class
/// failures.  `bit_fault_coverage` in [0,1]; 0 returns the input verbatim.
/// The caller passes DramSpec::on_die_ecc.bit_fault_coverage -- this layer
/// stays independent of the DRAM spec types.
FitRates on_die_ecc_filter(const FitRates& rates, double bit_fault_coverage);

/// Whether a fault type saturates the bank-pair error counter (column and
/// larger) or is absorbed by page retirement (bit/word/row), Sec. III-C/E.
bool saturates_error_counter(FaultType t);

/// How many logical banks of the channel a fault of this type affects,
/// given `banks_per_rank` and `ranks_per_channel`.  A bank-pair is marked
/// faulty as a unit, so the affected-bank count is rounded up to pairs by
/// the caller.
unsigned banks_affected(FaultType t, unsigned banks_per_rank,
                        unsigned ranks_per_channel);

}  // namespace eccsim::faults
