#include "gf/kernels.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "gf/gf.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define ECCSIM_KERNELS_X86 1
#else
#define ECCSIM_KERNELS_X86 0
#endif

namespace eccsim::gf {
namespace {

// Every lookup table below is generated from Field<8>::mul, the scalar
// oracle, so the fast kernels cannot disagree with it without the
// generator itself being wrong -- and tests/gf_kernels_test.cpp checks
// the composition anyway.
struct MulTables {
  // Full product table: mul[c][x] = c * x.  64 KiB; the row for one
  // coefficient is 256 bytes, so a region multiply touches 4 cache lines
  // of table regardless of region length.
  std::uint8_t mul[256][256];
  // Nibble tables for PSHUFB: c * x == nib_lo[c][x & 15] ^
  // nib_hi[c][x >> 4], each half a 16-entry shuffle.  8 KiB.
  alignas(16) std::uint8_t nib_lo[256][16];
  alignas(16) std::uint8_t nib_hi[256][16];
  MulTables() {
    using F = Field<8>;
    for (unsigned c = 0; c < 256; ++c) {
      for (unsigned x = 0; x < 256; ++x) {
        mul[c][x] = F::mul(static_cast<std::uint8_t>(c),
                           static_cast<std::uint8_t>(x));
      }
      for (unsigned n = 0; n < 16; ++n) {
        nib_lo[c][n] = mul[c][n];
        nib_hi[c][n] = mul[c][n << 4];
      }
    }
  }
};

const MulTables& tables() {
  static const MulTables t;
  return t;
}

bool cpu_has_ssse3() {
#if ECCSIM_KERNELS_X86
  return __builtin_cpu_supports("ssse3") != 0;
#else
  return false;
#endif
}

bool cpu_has_avx2() {
#if ECCSIM_KERNELS_X86
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

[[noreturn]] void kernel_usage_error(const char* msg, const char* value) {
  std::fprintf(stderr, "eccsim: %s ECCSIM_KERNEL value '%s' %s\n",
               value ? "unknown" : "unusable", value ? value : "simd", msg);
  std::exit(2);
}

Kernel& active_slot() {
  static Kernel k = resolve_kernel_from_env();
  return k;
}

}  // namespace

const char* kernel_name(Kernel k) {
  switch (k) {
    case Kernel::kScalar:
      return "scalar";
    case Kernel::kSlice8:
      return "slice8";
    case Kernel::kSimd:
      return "simd";
  }
  return "?";
}

bool kernel_available(Kernel k) {
  return k != Kernel::kSimd || cpu_has_ssse3();
}

bool kernel_simd_uses_avx2() { return cpu_has_avx2(); }

Kernel resolve_kernel_from_env() {
  const char* env = std::getenv("ECCSIM_KERNEL");
  if (env == nullptr || *env == '\0') {
    return cpu_has_ssse3() ? Kernel::kSimd : Kernel::kSlice8;
  }
  if (std::strcmp(env, "scalar") == 0) return Kernel::kScalar;
  if (std::strcmp(env, "slice8") == 0) return Kernel::kSlice8;
  if (std::strcmp(env, "simd") == 0) {
    // A forced kernel is a measurement request; silently falling back to
    // slice8 would mislabel every number it produced.
    if (!cpu_has_ssse3()) {
      kernel_usage_error("(this CPU lacks SSSE3)", nullptr);
    }
    return Kernel::kSimd;
  }
  kernel_usage_error("(expected scalar|slice8|simd)", env);
}

Kernel active_kernel() { return active_slot(); }

Kernel set_kernel_override(Kernel k) {
  if (!kernel_available(k)) {
    throw std::invalid_argument("set_kernel_override: kernel unavailable");
  }
  Kernel prev = active_slot();
  active_slot() = k;
  return prev;
}

// --- scalar -----------------------------------------------------------------
// The original table walk, byte at a time.  This is the oracle: it calls
// straight into Field<8>, the arithmetic every existing test pins down.

void gf_mul_region_scalar(std::uint8_t c, const std::uint8_t* src,
                          std::uint8_t* dst, std::size_t len) {
  using F = Field<8>;
  for (std::size_t i = 0; i < len; ++i) dst[i] = F::mul(c, src[i]);
}

void gf_mul_region_acc_scalar(std::uint8_t c, const std::uint8_t* src,
                              std::uint8_t* dst, std::size_t len) {
  using F = Field<8>;
  for (std::size_t i = 0; i < len; ++i) {
    dst[i] = F::add(dst[i], F::mul(c, src[i]));
  }
}

void gf_xor_region_scalar(const std::uint8_t* src, std::uint8_t* dst,
                          std::size_t len) {
  using F = Field<8>;
  for (std::size_t i = 0; i < len; ++i) dst[i] = F::add(dst[i], src[i]);
}

void gf_affine_combine_scalar(const std::uint8_t* coeffs, std::size_t n_rows,
                              const std::uint8_t* rows, std::size_t row_stride,
                              std::uint8_t* dst, std::size_t len) {
  std::memset(dst, 0, len);
  for (std::size_t r = 0; r < n_rows; ++r) {
    gf_mul_region_acc_scalar(coeffs[r], rows + r * row_stride, dst, len);
  }
}

// --- slice8 -----------------------------------------------------------------
// One 256-byte table row per coefficient; the loop consumes 8 bytes per
// iteration so the lookups pipeline and the stores coalesce to one u64.

void gf_mul_region_slice8(std::uint8_t c, const std::uint8_t* src,
                          std::uint8_t* dst, std::size_t len) {
  if (c == 0) {
    std::memset(dst, 0, len);
    return;
  }
  if (c == 1) {
    std::memmove(dst, src, len);
    return;
  }
  const std::uint8_t* row = tables().mul[c];
  std::size_t i = 0;
  for (; i + 8 <= len; i += 8) {
    std::uint8_t out[8];
    for (unsigned j = 0; j < 8; ++j) out[j] = row[src[i + j]];
    std::memcpy(dst + i, out, 8);
  }
  for (; i < len; ++i) dst[i] = row[src[i]];
}

void gf_mul_region_acc_slice8(std::uint8_t c, const std::uint8_t* src,
                              std::uint8_t* dst, std::size_t len) {
  if (c == 0) return;
  if (c == 1) {
    gf_xor_region_slice8(src, dst, len);
    return;
  }
  const std::uint8_t* row = tables().mul[c];
  std::size_t i = 0;
  for (; i + 8 <= len; i += 8) {
    std::uint64_t acc;
    std::uint8_t out[8];
    for (unsigned j = 0; j < 8; ++j) out[j] = row[src[i + j]];
    std::uint64_t prod;
    std::memcpy(&prod, out, 8);
    std::memcpy(&acc, dst + i, 8);
    acc ^= prod;
    std::memcpy(dst + i, &acc, 8);
  }
  for (; i < len; ++i) dst[i] ^= row[src[i]];
}

void gf_xor_region_slice8(const std::uint8_t* src, std::uint8_t* dst,
                          std::size_t len) {
  std::size_t i = 0;
  for (; i + 8 <= len; i += 8) {
    std::uint64_t a, b;
    std::memcpy(&a, dst + i, 8);
    std::memcpy(&b, src + i, 8);
    a ^= b;
    std::memcpy(dst + i, &a, 8);
  }
  for (; i < len; ++i) dst[i] ^= src[i];
}

void gf_affine_combine_slice8(const std::uint8_t* coeffs, std::size_t n_rows,
                              const std::uint8_t* rows, std::size_t row_stride,
                              std::uint8_t* dst, std::size_t len) {
  std::memset(dst, 0, len);
  for (std::size_t r = 0; r < n_rows; ++r) {
    gf_mul_region_acc_slice8(coeffs[r], rows + r * row_stride, dst, len);
  }
}

// --- simd -------------------------------------------------------------------
// PSHUFB answers 16 nibble lookups per instruction: split every source
// byte into nibbles, shuffle each half through its 16-entry product
// table, XOR the halves.  The AVX2 variant broadcasts the same two
// 128-bit tables to both lanes and processes 32 bytes per iteration.
// Both variants are compiled with per-function target attributes so the
// translation unit itself stays baseline-ISA and dispatch is a plain
// runtime branch.

#if ECCSIM_KERNELS_X86

__attribute__((target("ssse3"))) static void mul_region_acc_ssse3(
    const std::uint8_t* lo_tab, const std::uint8_t* hi_tab,
    const std::uint8_t* src, std::uint8_t* dst, std::size_t len, bool acc) {
  const __m128i lo = _mm_load_si128(reinterpret_cast<const __m128i*>(lo_tab));
  const __m128i hi = _mm_load_si128(reinterpret_cast<const __m128i*>(hi_tab));
  const __m128i mask = _mm_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 16 <= len; i += 16) {
    __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    __m128i nlo = _mm_and_si128(v, mask);
    __m128i nhi = _mm_and_si128(_mm_srli_epi64(v, 4), mask);
    __m128i prod =
        _mm_xor_si128(_mm_shuffle_epi8(lo, nlo), _mm_shuffle_epi8(hi, nhi));
    if (acc) {
      prod = _mm_xor_si128(
          prod, _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i)));
    }
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), prod);
  }
  // Tail: the nibble tables answer single bytes just as well.
  for (; i < len; ++i) {
    const std::uint8_t p = static_cast<std::uint8_t>(
        lo_tab[src[i] & 0x0f] ^ hi_tab[src[i] >> 4]);
    dst[i] = acc ? static_cast<std::uint8_t>(dst[i] ^ p) : p;
  }
}

__attribute__((target("avx2"))) static void mul_region_acc_avx2(
    const std::uint8_t* lo_tab, const std::uint8_t* hi_tab,
    const std::uint8_t* src, std::uint8_t* dst, std::size_t len, bool acc) {
  const __m256i lo = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(lo_tab)));
  const __m256i hi = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(hi_tab)));
  const __m256i mask = _mm256_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 32 <= len; i += 32) {
    __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    __m256i nlo = _mm256_and_si256(v, mask);
    __m256i nhi = _mm256_and_si256(_mm256_srli_epi64(v, 4), mask);
    __m256i prod = _mm256_xor_si256(_mm256_shuffle_epi8(lo, nlo),
                                    _mm256_shuffle_epi8(hi, nhi));
    if (acc) {
      prod = _mm256_xor_si256(
          prod, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i)));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), prod);
  }
  if (i < len) {
    mul_region_acc_ssse3(lo_tab, hi_tab, src + i, dst + i, len - i, acc);
  }
}

static void mul_region_simd_impl(std::uint8_t c, const std::uint8_t* src,
                                 std::uint8_t* dst, std::size_t len,
                                 bool acc) {
  if (c == 0) {
    if (!acc) std::memset(dst, 0, len);
    return;
  }
  const MulTables& t = tables();
  if (cpu_has_avx2()) {
    mul_region_acc_avx2(t.nib_lo[c], t.nib_hi[c], src, dst, len, acc);
  } else {
    mul_region_acc_ssse3(t.nib_lo[c], t.nib_hi[c], src, dst, len, acc);
  }
}

#else  // !ECCSIM_KERNELS_X86

// Non-x86 builds never report the simd kernel as available; these bodies
// keep the symbols defined (and correct, via slice8) if called anyway.
static void mul_region_simd_impl(std::uint8_t c, const std::uint8_t* src,
                                 std::uint8_t* dst, std::size_t len,
                                 bool acc) {
  if (acc) {
    gf_mul_region_acc_slice8(c, src, dst, len);
  } else {
    gf_mul_region_slice8(c, src, dst, len);
  }
}

#endif  // ECCSIM_KERNELS_X86

void gf_mul_region_simd(std::uint8_t c, const std::uint8_t* src,
                        std::uint8_t* dst, std::size_t len) {
  mul_region_simd_impl(c, src, dst, len, /*acc=*/false);
}

void gf_mul_region_acc_simd(std::uint8_t c, const std::uint8_t* src,
                            std::uint8_t* dst, std::size_t len) {
  mul_region_simd_impl(c, src, dst, len, /*acc=*/true);
}

void gf_xor_region_simd(const std::uint8_t* src, std::uint8_t* dst,
                        std::size_t len) {
  // XOR is multiply-by-one; the shuffle would be identity, so the plain
  // wide-XOR loop is already optimal.
  gf_xor_region_slice8(src, dst, len);
}

void gf_affine_combine_simd(const std::uint8_t* coeffs, std::size_t n_rows,
                            const std::uint8_t* rows, std::size_t row_stride,
                            std::uint8_t* dst, std::size_t len) {
  std::memset(dst, 0, len);
  for (std::size_t r = 0; r < n_rows; ++r) {
    gf_mul_region_acc_simd(coeffs[r], rows + r * row_stride, dst, len);
  }
}

// --- dispatchers ------------------------------------------------------------

void gf_mul_region(std::uint8_t c, const std::uint8_t* src, std::uint8_t* dst,
                   std::size_t len) {
  switch (active_kernel()) {
    case Kernel::kScalar:
      gf_mul_region_scalar(c, src, dst, len);
      return;
    case Kernel::kSlice8:
      gf_mul_region_slice8(c, src, dst, len);
      return;
    case Kernel::kSimd:
      gf_mul_region_simd(c, src, dst, len);
      return;
  }
}

void gf_mul_region_acc(std::uint8_t c, const std::uint8_t* src,
                       std::uint8_t* dst, std::size_t len) {
  switch (active_kernel()) {
    case Kernel::kScalar:
      gf_mul_region_acc_scalar(c, src, dst, len);
      return;
    case Kernel::kSlice8:
      gf_mul_region_acc_slice8(c, src, dst, len);
      return;
    case Kernel::kSimd:
      gf_mul_region_acc_simd(c, src, dst, len);
      return;
  }
}

void gf_xor_region(const std::uint8_t* src, std::uint8_t* dst,
                   std::size_t len) {
  switch (active_kernel()) {
    case Kernel::kScalar:
      gf_xor_region_scalar(src, dst, len);
      return;
    case Kernel::kSlice8:
      gf_xor_region_slice8(src, dst, len);
      return;
    case Kernel::kSimd:
      gf_xor_region_simd(src, dst, len);
      return;
  }
}

void gf_affine_combine(const std::uint8_t* coeffs, std::size_t n_rows,
                       const std::uint8_t* rows, std::size_t row_stride,
                       std::uint8_t* dst, std::size_t len) {
  switch (active_kernel()) {
    case Kernel::kScalar:
      gf_affine_combine_scalar(coeffs, n_rows, rows, row_stride, dst, len);
      return;
    case Kernel::kSlice8:
      gf_affine_combine_slice8(coeffs, n_rows, rows, row_stride, dst, len);
      return;
    case Kernel::kSimd:
      gf_affine_combine_simd(coeffs, n_rows, rows, row_stride, dst, len);
      return;
  }
}

// --- GfMatApply -------------------------------------------------------------

GfMatApply::GfMatApply(const std::uint8_t* rows, std::size_t n_rows,
                       std::size_t width)
    : n_rows_(n_rows),
      width_(width),
      rows_(rows, rows + n_rows * width) {
  if (width_ == 0 || width_ > 8) return;
  // Pack every possible per-position contribution x * M[r] into a uint64
  // (little-endian byte j = column j), so apply() folds whole rows with
  // one XOR.  256 entries x n_rows; 64 KiB for RS(36,32)'s encode map.
  using F = Field<8>;
  tables_.assign(n_rows_ * 256, 0);
  for (std::size_t r = 0; r < n_rows_; ++r) {
    for (unsigned x = 0; x < 256; ++x) {
      std::uint64_t packed = 0;
      for (std::size_t j = 0; j < width_; ++j) {
        const std::uint8_t prod =
            F::mul(static_cast<std::uint8_t>(x), rows_[r * width_ + j]);
        packed |= static_cast<std::uint64_t>(prod) << (8 * j);
      }
      tables_[r * 256 + x] = packed;
    }
  }
}

void GfMatApply::apply(const std::uint8_t* vec, std::size_t n,
                       std::uint8_t* out) const {
  apply_with(active_kernel(), vec, n, out);
}

void GfMatApply::apply_with(Kernel k, const std::uint8_t* vec, std::size_t n,
                            std::uint8_t* out) const {
  if (n != n_rows_) {
    throw std::invalid_argument("GfMatApply::apply: vector length != rows");
  }
  if (k == Kernel::kScalar) {
    using F = Field<8>;
    for (std::size_t j = 0; j < width_; ++j) out[j] = 0;
    for (std::size_t r = 0; r < n_rows_; ++r) {
      const std::uint8_t c = vec[r];
      if (c == 0) continue;
      for (std::size_t j = 0; j < width_; ++j) {
        out[j] = F::add(out[j], F::mul(c, rows_[r * width_ + j]));
      }
    }
    return;
  }
  if (!tables_.empty()) {
    std::uint64_t acc = 0;
    const std::uint64_t* t = tables_.data();
    for (std::size_t r = 0; r < n_rows_; ++r) acc ^= t[r * 256 + vec[r]];
    for (std::size_t j = 0; j < width_; ++j) {
      out[j] = static_cast<std::uint8_t>(acc >> (8 * j));
    }
    return;
  }
  if (k == Kernel::kSimd) {
    gf_affine_combine_simd(vec, n_rows_, rows_.data(), width_, out, width_);
  } else {
    gf_affine_combine_slice8(vec, n_rows_, rows_.data(), width_, out, width_);
  }
}

}  // namespace eccsim::gf
