// Sec. VI-D: undetectable-error analysis for the modified LOT-ECC5
// encoding.  The modification replaces LOT-ECC's inter-device parity with
// a Reed-Solomon code over GF(2^16): two 16-bit check symbols per word of
// eight 16-bit data symbols interleaved across the four x16 chips.  One
// check symbol is stored on-line (the x8 ECC chip) for on-the-fly
// detection; the other is covered by ECC parities.
//
// A single 16-bit check symbol cannot *guarantee* detection of a two-symbol
// error (a faulty x16 device contributes two symbols per word), but a
// random two-symbol corruption escapes with probability ~2^-16 per word.
// This binary measures that escape rate empirically with the real RS codec
// and scales it to the paper's system-level estimate.
#include <cstdio>

#include "bench_common.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "faults/montecarlo.hpp"
#include "gf/rs.hpp"

using namespace eccsim;

int main(int argc, char** argv) {
  eccsim::bench::init(argc, argv);
  // The Sec. VI-D code: RS(10, 8) over GF(2^16).  Detection uses only the
  // first check symbol (syndrome S1 of the full code).
  gf::Rs16 code(10, 8);
  Rng rng(2014);

  // Empirical escape rate: corrupt the two data symbols of one x16 chip
  // with random values and test whether a 1-symbol-check detector (an
  // RS(9,8) subcode evaluated over data + first check) misses it.
  gf::Rs16 detector(9, 8);
  const unsigned trials = 2'000'000;
  unsigned undetected = 0;
  for (unsigned i = 0; i < trials; ++i) {
    std::vector<std::uint16_t> data(8);
    for (auto& d : data) d = static_cast<std::uint16_t>(rng.next_below(65536));
    auto cw = detector.encode(data);
    // A faulty x16 chip owns two interleaved symbols per word: corrupt a
    // random adjacent pair of data symbols.
    const unsigned chip = static_cast<unsigned>(rng.next_below(4));
    cw[1 + 2 * chip] ^= static_cast<std::uint16_t>(1 + rng.next_below(65535));
    cw[1 + 2 * chip + 1] ^=
        static_cast<std::uint16_t>(1 + rng.next_below(65535));
    if (detector.check(cw)) ++undetected;
  }
  const double escape = static_cast<double>(undetected) / trials;
  std::printf("Sec. VI-D -- Undetectable error rate, modified LOT-ECC5\n\n");
  std::printf(
      "Empirical two-symbol escape probability per word: %.3e "
      "(expected ~2^-16 = %.3e)\n\n",
      escape, 1.0 / 65536.0);

  // System-level estimate: errors can only escape in banks not yet
  // recorded faulty, i.e. during the at-most-(threshold) error events a
  // device-level fault produces before its pair is marked (Sec. VI-D).
  // Pessimistically assume every fault is an address-decoder fault
  // manifesting as random flips, threshold 4 events each.
  faults::SystemShape shape;  // 8-channel system
  const auto rates = faults::ddr3_vendor_average();
  const double faults_per_hour =
      rates.total() * 1e-9 * shape.total_chips();
  const unsigned threshold = 4;
  const double escape_used = escape > 0 ? escape : 1.0 / 65536.0;
  const double undetected_per_hour =
      faults_per_hour * threshold * escape_used;
  const double years_per_undetected =
      1.0 / (undetected_per_hour * units::kHoursPerYear);
  Table t({"quantity", "value", "paper"});
  t.add_row({"fault events before pair marked", std::to_string(threshold),
             "4"});
  t.add_row({"escape probability per event",
             Table::num(escape_used * 65536, 2) + " x 2^-16", "~2^-16"});
  t.add_row({"years per undetected error",
             Table::num(years_per_undetected, 0), "~300,000"});
  t.add_row({"target (Bossen)", "1,000 years", "1,000 years"});
  bench::emit("sec6d_undetected", t);
  return 0;
}
