// Perf-trajectory tracking: append-only per-benchmark history files and
// the rolling-median regression comparison that gates CI.
//
// `benchtool record` appends one Record per commit into
// results/history/BENCH_<name>.json; `benchtool compare` checks the
// newest record against the median of the previous `window` records taken
// on the same host with the same smoke setting and thread count, and
// fails when any metric's wall-clock regresses by more than the
// threshold.  With no comparable prior records (first run, new CI host)
// the comparison passes vacuously and says so.
//
// History documents are ordinary runner::Json so they diff cleanly in
// review:
//   { "schema": "eccsim.perf_history/1", "bench": "...",
//     "records": [ { git_sha, timestamp_utc, host, threads, smoke,
//                    metrics: { "<name>": seconds, ... } }, ... ] }
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace eccsim::runner {
class Json;
}

namespace eccsim::obs::perf {

/// One benchmark invocation's results: named wall-clock metrics in
/// seconds (smaller is better), plus the context needed to decide which
/// later runs it is comparable with.
struct Record {
  std::string git_sha;
  std::string timestamp_utc;
  std::string host;
  unsigned threads = 0;
  bool smoke = false;
  std::vector<std::pair<std::string, double>> metrics;  ///< name -> seconds
};

struct History {
  std::string bench;
  std::vector<Record> records;  ///< oldest first
};

runner::Json to_json(const History& h);
History history_from_json(const runner::Json& doc);

/// Loads a history file; returns an empty History named `bench` when the
/// file does not exist.  Throws std::runtime_error on malformed content.
History load_history(const std::string& path, const std::string& bench);

/// Appends `rec` to the history at `path` (creating it), trimming to the
/// newest `max_records`, and writes the file back atomically.
bool append_record(const std::string& path, const std::string& bench,
                   const Record& rec, std::size_t max_records = 200);

/// One metric's comparison against its rolling-median baseline.
struct MetricComparison {
  std::string name;
  double current = 0.0;       ///< newest record's value, seconds
  double baseline = 0.0;      ///< median of comparable prior records
  double ratio = 0.0;         ///< current / baseline
  std::size_t samples = 0;    ///< prior records the median was taken over
  bool regressed = false;     ///< ratio > 1 + threshold (and enough samples)
};

struct CompareResult {
  bool comparable = false;  ///< false = no matching prior records (vacuous
                            ///< pass); regressed is then always false
  bool regressed = false;   ///< any metric over threshold
  std::vector<MetricComparison> metrics;
};

/// Compares the newest record in `h` against the median of up to `window`
/// prior records matching its host, smoke setting, and thread count.
/// Metrics absent from the baseline records are skipped (new benchmarks
/// don't fail the gate), and a metric only gates once its median covers at
/// least `min_samples` priors -- a single-sample "median" is all noise on
/// microsecond-scale benchmarks.  `threshold` is fractional: 0.15 = fail
/// on a >15% slowdown.
CompareResult compare(const History& h, double threshold = 0.15,
                      std::size_t window = 10, std::size_t min_samples = 2);

}  // namespace eccsim::obs::perf
