// Fig. 8: the fraction of memory per system that ends up having its ECC
// correction bits stored in memory after seven years of operation, for
// systems with different channel counts (four ranks per channel, nine
// chips per rank, DDR3 vendor-average fault rates).  Solid bars = average;
// horizontal lines = the 99.9th-percentile upper limit.
#include <cstdio>

#include "bench_common.hpp"
#include "common/units.hpp"
#include "faults/montecarlo.hpp"

using namespace eccsim;

int main(int argc, char** argv) {
  eccsim::bench::init(argc, argv);
  const auto opts = bench::mc_options();
  const double life = 7 * units::kHoursPerYear;
  const auto rates = faults::ddr3_vendor_average();
  const unsigned systems = bench::mc_systems(20'000);
  Table t({"channels", "avg fraction", "99.9th pct", "systems w/ faulty pair"});
  double weighted_avg = 0;
  unsigned count = 0;
  bool tail_estimated = false;
  for (unsigned channels : {2u, 4u, 6u, 8u, 12u, 16u}) {
    faults::SystemShape shape;
    shape.channels = channels;
    const auto res = faults::eol_materialized_fraction(shape, rates, systems,
                                                       life, 88, opts);
    tail_estimated = tail_estimated || !res.p999_exact;
    t.add_row({std::to_string(channels),
               Table::pct(res.mean_fraction, 3),
               Table::pct(res.p999_fraction, 2),
               Table::pct(res.systems_with_any, 1)});
    weighted_avg += res.mean_fraction;
    ++count;
  }
  std::printf(
      "Fig. 8 -- EOL fraction of memory protected by materialized ECC\n"
      "correction bits (7 years, 44 FIT/chip, %u systems/point)\n\n",
      systems);
  bench::emit("fig08_eol_correction_fraction", t);
  if (tail_estimated) {
    std::printf(
        "note: 99.9th percentiles estimated from the bounded-memory\n"
        "reservoir (population exceeds %zu retained samples).\n\n",
        faults::kEolReservoirCap);
  }
  std::printf(
      "Cross-config average: %.2f%% (paper: ~0.4%% on average; the solid\n"
      "bars in Fig. 8).  The fraction is channel-count insensitive, as in\n"
      "the paper: faults are per-chip, and the per-pair memory share\n"
      "shrinks as the system grows.\n",
      weighted_avg / count * 100.0);
  return 0;
}
