// Randomized-operation ("fuzz") tests of the ECC Parity manager: long
// random interleavings of writes, overwrites, chip faults, reads, and
// scrubs across codecs and channel counts, with the parity invariant and
// data integrity re-verified throughout.  A shadow map of the last-written
// values acts as the oracle.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <tuple>

#include "common/rng.hpp"
#include "ecc/codec.hpp"
#include "ecc/lotecc5_rs16.hpp"
#include "eccparity/manager.hpp"

namespace eccsim::eccparity {
namespace {

enum class Base { kLotEcc5, kLotEcc5Rs16, kRaimParity };

std::unique_ptr<ecc::LineCodec> build(Base base) {
  switch (base) {
    case Base::kLotEcc5: return ecc::make_codec(ecc::SchemeId::kLotEcc5);
    case Base::kLotEcc5Rs16: return ecc::make_lotecc5_rs16_codec();
    case Base::kRaimParity: return ecc::make_codec(ecc::SchemeId::kRaimParity);
  }
  return nullptr;
}

unsigned data_chips(Base base) {
  // RAIM corrects at DIMM granularity: 2 data "chips" per 64B line.
  return base == Base::kRaimParity ? 2 : 4;
}

std::string base_name(Base base) {
  switch (base) {
    case Base::kLotEcc5: return "lotecc5";
    case Base::kLotEcc5Rs16: return "lotecc5_rs16";
    case Base::kRaimParity: return "raim_parity";
  }
  return "?";
}

using Params = std::tuple<Base, std::uint32_t>;  // codec, channels

class EccParityFuzzTest : public ::testing::TestWithParam<Params> {
 protected:
  dram::MemGeometry geom() const {
    dram::MemGeometry g;
    g.channels = std::get<1>(GetParam());
    g.ranks_per_channel = 2;
    g.banks_per_rank = 8;
    g.rows_per_bank = 32;
    g.line_bytes = 64;
    return g;
  }
};

TEST_P(EccParityFuzzTest, RandomOpsPreserveDataAndInvariant) {
  const auto g = geom();
  EccParityManager mgr(g, build(std::get<0>(GetParam())), 4);
  Rng rng(1000 + g.channels);

  std::map<std::uint64_t, std::vector<std::uint8_t>> oracle;
  const std::uint64_t space = 3000;
  unsigned uncorrectable_allowed = 0;

  for (int step = 0; step < 2500; ++step) {
    const std::uint64_t line = rng.next_below(space);
    const double dice = rng.next_double();
    if (dice < 0.55) {
      // Write.
      std::vector<std::uint8_t> v(64);
      for (auto& b : v) b = static_cast<std::uint8_t>(rng.next_below(256));
      mgr.write_line(line, v);
      oracle[line] = std::move(v);
    } else if (dice < 0.70) {
      // Single-chip fault on one line.  (Never a second fault before the
      // first is read, and group members are in distinct channels, so
      // every fault is correctable.)
      const unsigned chip = static_cast<unsigned>(
          rng.next_below(data_chips(std::get<0>(GetParam()))));
      mgr.corrupt_chip_share(line, chip);
      const ReadResult r = mgr.read_line(line);
      ASSERT_TRUE(r.corrected || !r.error_detected)
          << "step " << step << " line " << line;
    } else if (dice < 0.95) {
      // Read and compare with the oracle.
      const ReadResult r = mgr.read_line(line);
      ASSERT_FALSE(r.uncorrectable) << "step " << step;
      const auto it = oracle.find(line);
      const std::vector<std::uint8_t> expect =
          it != oracle.end() ? it->second : std::vector<std::uint8_t>(64, 0);
      ASSERT_EQ(r.data, expect) << "step " << step << " line " << line;
    } else {
      // Scrub everything.
      mgr.scrub();
    }
    if (step % 500 == 499) {
      ASSERT_EQ(mgr.verify_parity_invariant(), 0u) << "step " << step;
    }
  }
  EXPECT_EQ(mgr.verify_parity_invariant(), 0u);
  EXPECT_EQ(mgr.stats().uncorrectable, uncorrectable_allowed);

  // Final full audit: every oracle entry reads back exactly.
  for (const auto& [line, expect] : oracle) {
    const ReadResult r = mgr.read_line(line);
    ASSERT_EQ(r.data, expect) << "final audit line " << line;
  }
}

TEST_P(EccParityFuzzTest, FaultStormMaterializesAndSurvives) {
  // Saturate several bank pairs through demand errors, then verify data
  // integrity and invariant across the materialization churn.
  const auto g = geom();
  EccParityManager mgr(g, build(std::get<0>(GetParam())), 2);
  Rng rng(2000 + g.channels);

  std::map<std::uint64_t, std::vector<std::uint8_t>> oracle;
  for (std::uint64_t line = 0; line < 1500; ++line) {
    std::vector<std::uint8_t> v(64);
    for (auto& b : v) b = static_cast<std::uint8_t>(rng.next_below(256));
    mgr.write_line(line, v);
    oracle[line] = std::move(v);
  }
  // Storm: faults on 60 random lines (threshold 2 marks pairs quickly).
  for (int i = 0; i < 60; ++i) {
    const std::uint64_t line = rng.next_below(1500);
    mgr.corrupt_chip_share(
        line, static_cast<unsigned>(
                  rng.next_below(data_chips(std::get<0>(GetParam())))));
    const ReadResult r = mgr.read_line(line);
    ASSERT_TRUE(r.corrected) << "storm fault " << i;
  }
  EXPECT_GT(mgr.health().faulty_pairs(), 0u);
  EXPECT_EQ(mgr.verify_parity_invariant(), 0u);
  for (const auto& [line, expect] : oracle) {
    ASSERT_EQ(mgr.read_line(line).data, expect) << "line " << line;
  }
}

INSTANTIATE_TEST_SUITE_P(
    CodecsAndChannels, EccParityFuzzTest,
    ::testing::Combine(::testing::Values(Base::kLotEcc5, Base::kLotEcc5Rs16,
                                         Base::kRaimParity),
                       ::testing::Values(2u, 4u, 8u)),
    [](const ::testing::TestParamInfo<Params>& info) {
      return base_name(std::get<0>(info.param)) + "_N" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace eccsim::eccparity
