// Tests for the chunked Monte Carlo engine (faults/mc_engine.hpp): bit
// identity at any thread count and chunk size, checkpoint/resume,
// confidence-interval early termination, mc.* observability, and the
// statistical regression checks tying the fault studies to their
// closed-form models.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/units.hpp"
#include "faults/fault_model.hpp"
#include "faults/mc_engine.hpp"
#include "faults/montecarlo.hpp"
#include "runner/thread_pool.hpp"
#include "stats/stats.hpp"

namespace eccsim::faults {
namespace {

/// A cheap deterministic per-system computation with enough RNG draws
/// that stream mixups would show.
void fake_system(unsigned index, Rng& rng, double* f) {
  double acc = 0;
  for (int i = 0; i < 16; ++i) acc += rng.next_double();
  f[0] = acc;
  f[1] = static_cast<double>(index) + rng.next_double();
}

/// Runs the fake study and returns the merged per-system fields in merge
/// order (which the engine guarantees is index order).
std::vector<double> run_fake(unsigned systems, McOptions opts,
                             McRunInfo* info_out = nullptr) {
  std::vector<double> merged;
  RunningStat stat;
  const McRunInfo info =
      mc_run(systems, 42, 2, "fake", opts, fake_system,
             [&](unsigned, const double* f) {
               merged.push_back(f[0]);
               merged.push_back(f[1]);
               stat.add(f[0]);
             },
             [&] { return relative_ci95(stat); });
  if (info_out != nullptr) *info_out = info;
  return merged;
}

std::string temp_path(const char* name) {
  return testing::TempDir() + "/" + name;
}

TEST(McEngine, SystemRngIsPerIndexDeterministic) {
  Rng a = mc_system_rng(7, 3);
  Rng b = mc_system_rng(7, 3);
  Rng c = mc_system_rng(7, 4);
  EXPECT_EQ(a.next(), b.next());
  EXPECT_NE(a.next(), c.next());
  EXPECT_NE(mc_sample_key(7, 3), mc_sample_key(7, 4));
}

TEST(McEngine, BitIdenticalAcrossThreadsAndChunks) {
  McOptions serial;
  serial.threads = 1;
  const std::vector<double> reference = run_fake(301, serial);
  ASSERT_EQ(reference.size(), 2u * 301u);

  for (unsigned threads : {2u, 4u}) {
    for (unsigned chunk : {1u, 7u, 64u, 301u, 1000u}) {
      McOptions opts;
      opts.threads = threads;
      opts.chunk_size = chunk;
      McRunInfo info;
      const std::vector<double> got = run_fake(301, opts, &info);
      ASSERT_EQ(got.size(), reference.size())
          << "threads=" << threads << " chunk=" << chunk;
      for (std::size_t i = 0; i < got.size(); ++i) {
        // Bit identity, not tolerance: the whole point of in-order merge.
        EXPECT_EQ(got[i], reference[i])
            << "i=" << i << " threads=" << threads << " chunk=" << chunk;
      }
      EXPECT_EQ(info.systems_merged, 301u);
    }
  }
}

TEST(McEngine, MergesInStrictIndexOrder) {
  McOptions opts;
  opts.threads = 4;
  opts.chunk_size = 13;
  std::vector<unsigned> order;
  mc_run(100, 1, 1, "order", opts,
         [](unsigned, Rng&, double* f) { f[0] = 0; },
         [&](unsigned index, const double*) { order.push_back(index); });
  ASSERT_EQ(order.size(), 100u);
  for (unsigned i = 0; i < 100; ++i) EXPECT_EQ(order[i], i);
}

TEST(McEngine, NestedRunExecutesInlineOnWorker) {
  // A Monte Carlo launched from inside a pool worker (as a sweep cell
  // would) must not spin up a second pool -- and must still produce the
  // same bits as a top-level run.
  const std::vector<double> reference = run_fake(64, McOptions{});
  std::vector<double> nested;
  bool was_worker = false;
  {
    runner::ThreadPool pool(2);
    pool.submit([&] {
      was_worker = runner::ThreadPool::on_worker_thread();
      McOptions opts;
      opts.threads = 8;  // would oversubscribe if honored
      nested = run_fake(64, opts);
    });
    pool.wait_idle();
  }
  EXPECT_TRUE(was_worker);
  EXPECT_FALSE(runner::ThreadPool::on_worker_thread());
  ASSERT_EQ(nested.size(), reference.size());
  for (std::size_t i = 0; i < nested.size(); ++i) {
    EXPECT_EQ(nested[i], reference[i]);
  }
}

TEST(McEngine, CheckpointRoundTripSkipsLoadedChunks) {
  const std::string path = temp_path("mc_roundtrip.ck");
  std::remove(path.c_str());
  McOptions opts;
  opts.threads = 2;
  opts.chunk_size = 32;
  opts.checkpoint_path = path;
  McRunInfo first;
  const std::vector<double> a = run_fake(200, opts, &first);
  EXPECT_EQ(first.chunks_loaded, 0u);
  EXPECT_EQ(first.chunks_merged, 7u);

  McRunInfo second;
  const std::vector<double> b = run_fake(200, opts, &second);
  EXPECT_EQ(second.chunks_loaded, 7u);
  EXPECT_EQ(second.chunks_merged, 7u);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  std::remove(path.c_str());
}

TEST(McEngine, ResumeAfterPartialFileIsIdentical) {
  const std::string full_path = temp_path("mc_full.ck");
  const std::string part_path = temp_path("mc_part.ck");
  std::remove(full_path.c_str());
  std::remove(part_path.c_str());
  McOptions opts;
  opts.threads = 1;
  opts.chunk_size = 32;
  opts.checkpoint_path = full_path;
  const std::vector<double> reference = run_fake(200, opts);

  // Simulate a mid-run kill: keep the header, two complete chunk lines,
  // and one torn (half-written) line.
  std::ifstream in(full_path);
  std::string line, partial;
  int kept = 0;
  {
    std::ofstream out(part_path);
    while (std::getline(in, line)) {
      if (line.rfind("mcchunk1", 0) != 0) {
        out << line << '\n';
        continue;
      }
      if (kept < 2) {
        out << line << '\n';
        ++kept;
      } else {
        out << line.substr(0, line.size() / 2);  // torn write, no newline
        break;
      }
    }
  }
  opts.checkpoint_path = part_path;
  McRunInfo info;
  const std::vector<double> resumed = run_fake(200, opts, &info);
  EXPECT_EQ(info.chunks_loaded, 2u);
  ASSERT_EQ(resumed.size(), reference.size());
  for (std::size_t i = 0; i < resumed.size(); ++i) {
    EXPECT_EQ(resumed[i], reference[i]);
  }
  std::remove(full_path.c_str());
  std::remove(part_path.c_str());
}

TEST(McEngine, CheckpointRejectsMismatchedParameters) {
  const std::string path = temp_path("mc_mismatch.ck");
  std::remove(path.c_str());
  McOptions opts;
  opts.chunk_size = 32;
  opts.checkpoint_path = path;
  run_fake(128, opts);

  // Different seed -> different run identity -> nothing restored.
  std::vector<double> merged;
  const McRunInfo info = mc_run(
      128, 43, 2, "fake", opts, fake_system,
      [&](unsigned, const double* f) { merged.push_back(f[0]); });
  EXPECT_EQ(info.chunks_loaded, 0u);
  EXPECT_EQ(merged.size(), 128u);
  std::remove(path.c_str());
}

TEST(McEngine, EarlyStopConvergesAndIsThreadCountInvariant) {
  auto run = [](unsigned threads) {
    McOptions opts;
    opts.threads = threads;
    opts.chunk_size = 50;
    opts.target_rel_ci = 0.05;
    opts.min_systems = 200;
    McRunInfo info;
    run_fake(100'000, opts, &info);
    return info;
  };
  const McRunInfo serial = run(1);
  EXPECT_TRUE(serial.early_stopped);
  EXPECT_GE(serial.systems_merged, 200u);
  EXPECT_LT(serial.systems_merged, 100'000u);
  EXPECT_LE(serial.final_rel_ci, 0.05);
  // The stopping point depends only on the chunk size, not on threads.
  const McRunInfo parallel = run(4);
  EXPECT_TRUE(parallel.early_stopped);
  EXPECT_EQ(parallel.systems_merged, serial.systems_merged);
  EXPECT_EQ(parallel.chunks_merged, serial.chunks_merged);
}

TEST(McEngine, ResumingAnEarlyStoppedRunSimulatesNothingNew) {
  // Regression for the checkpoint x --mc-target-rel-ci interaction
  // (docs/CHECKPOINTS.md): an early-stopped run records only the chunks
  // that merged, and resuming it must replay those chunks through the
  // same convergence checks, stop at the same boundary, and -- on the
  // single-threaded path -- evaluate zero new systems.
  const std::string path = temp_path("mc_earlystop_resume.ck");
  std::remove(path.c_str());
  McOptions opts;
  opts.threads = 1;  // inline path: loaded chunks fully precede new work
  opts.chunk_size = 50;
  opts.target_rel_ci = 0.05;
  opts.min_systems = 200;
  opts.checkpoint_path = path;
  McRunInfo first;
  const std::vector<double> reference = run_fake(100'000, opts, &first);
  ASSERT_TRUE(first.early_stopped);
  ASSERT_LT(first.systems_merged, 100'000u);

  unsigned simulated = 0;
  std::vector<double> resumed;
  RunningStat stat;
  const McRunInfo second = mc_run(
      100'000, 42, 2, "fake", opts,
      [&](unsigned index, Rng& rng, double* f) {
        ++simulated;
        fake_system(index, rng, f);
      },
      [&](unsigned, const double* f) {
        resumed.push_back(f[0]);
        resumed.push_back(f[1]);
        stat.add(f[0]);
      },
      [&] { return relative_ci95(stat); });
  EXPECT_EQ(simulated, 0u);  // no extra chunk ever executed
  EXPECT_TRUE(second.early_stopped);
  EXPECT_EQ(second.chunks_loaded, first.chunks_merged);
  EXPECT_EQ(second.chunks_merged, first.chunks_merged);
  EXPECT_EQ(second.systems_merged, first.systems_merged);
  ASSERT_EQ(resumed.size(), reference.size());
  for (std::size_t i = 0; i < resumed.size(); ++i) {
    EXPECT_EQ(resumed[i], reference[i]);
  }
  std::remove(path.c_str());
}

TEST(McEngine, RegistersMcStats) {
  stats::Registry reg;
  McOptions opts;
  opts.chunk_size = 25;
  opts.stats = &reg;
  opts.target_rel_ci = 1e-9;  // unreachable: exercises the CI series
  run_fake(100, opts);
  EXPECT_EQ(reg.value("mc.systems_simulated"), 100.0);
  EXPECT_EQ(reg.value("mc.systems_merged"), 100.0);
  EXPECT_EQ(reg.value("mc.chunks_merged"), 4.0);
  EXPECT_EQ(reg.value("mc.chunks_loaded"), 0.0);
  EXPECT_EQ(reg.value("mc.early_stops"), 0.0);
  ASSERT_EQ(reg.series().size(), 1u);
  EXPECT_EQ(reg.series()[0].first, "mc.rel_ci.fake");
  EXPECT_EQ(reg.series()[0].second.size(), 4u);
}

// ---------------------------------------------------------------------------
// Statistical regression: simulation vs closed form, with tolerances
// derived from the run's own sample count, and bit identity of the study
// functions across execution configurations.

TEST(McStatistics, MtbfAgreesWithAnalyticWithinSamplingError) {
  SystemShape shape;
  const FitRates rates = ddr3_vendor_average();
  const auto res = mtbf_between_channels(shape, rates, 400,
                                         200 * units::kHoursPerYear, 17);
  ASSERT_TRUE(res.has_data());
  // Gap times are roughly exponential (CV ~= 1), so the standard error of
  // the mean over n gaps is ~mean/sqrt(n); allow 5 sigma plus a 5% model
  // bias margin (inter-channel gaps are conditioned, not plain renewal
  // intervals).
  const double sigma =
      res.analytic_hours / std::sqrt(static_cast<double>(res.gaps_observed));
  EXPECT_NEAR(res.simulated_hours, res.analytic_hours,
              5.0 * sigma + 0.05 * res.analytic_hours);
}

TEST(McStatistics, WindowProbabilityAgreesWithinSamplingError) {
  SystemShape shape;
  const FitRates rates = ddr3_vendor_average().scaled_to(3000.0);
  const unsigned systems = 4000;
  const auto res = multichannel_window_probability(
      shape, rates, 24.0 * 30, 7 * units::kHoursPerYear, systems, 33);
  const double p = res.analytic_probability;
  ASSERT_GT(p, 0.05);
  // Bernoulli standard error at the analytic p; 5 sigma.
  const double sigma = std::sqrt(p * (1 - p) / systems);
  EXPECT_NEAR(res.simulated_probability, p, 5.0 * sigma);
  EXPECT_EQ(res.bad_systems,
            static_cast<std::uint64_t>(
                std::lround(res.simulated_probability * systems)));
}

TEST(McStatistics, HpcStallSimulationMatchesClosedForm) {
  const auto res =
      hpc_stall_fraction_mc(HpcStallParams{}, ddr3_vendor_average(), 300, 9);
  ASSERT_GT(res.events_sampled, 1000u);
  // The per-system fraction is (count * stall) / lifetime with Poisson
  // count, so the relative standard error is 1/sqrt(total events).
  const double rel_sigma =
      1.0 / std::sqrt(static_cast<double>(res.events_sampled));
  EXPECT_NEAR(res.simulated_fraction, res.analytic_fraction,
              5.0 * rel_sigma * res.analytic_fraction);
}

TEST(McStatistics, StudiesBitIdenticalAcrossExecutionConfigs) {
  SystemShape shape;
  const FitRates rates = ddr3_vendor_average();
  const double life = 20 * units::kHoursPerYear;
  McOptions serial;
  serial.threads = 1;
  const auto m1 = mtbf_between_channels(shape, rates, 150, life, 3, serial);
  const auto e1 = eol_materialized_fraction(shape, rates, 150, life, 3, serial);
  for (unsigned threads : {2u, 4u}) {
    McOptions opts;
    opts.threads = threads;
    opts.chunk_size = 11;
    const auto m2 = mtbf_between_channels(shape, rates, 150, life, 3, opts);
    EXPECT_EQ(m1.simulated_hours, m2.simulated_hours);
    EXPECT_EQ(m1.gaps_observed, m2.gaps_observed);
    EXPECT_EQ(m1.events_sampled, m2.events_sampled);
    const auto e2 =
        eol_materialized_fraction(shape, rates, 150, life, 3, opts);
    EXPECT_EQ(e1.mean_fraction, e2.mean_fraction);
    EXPECT_EQ(e1.p999_fraction, e2.p999_fraction);
    EXPECT_EQ(e1.systems_with_any, e2.systems_with_any);
  }
}

TEST(McStatistics, MtbfNoDataIsNaNNotZero) {
  SystemShape shape;
  FitRates zero;  // no faults ever -> no gaps -> no data
  const auto res = mtbf_between_channels(shape, zero, 50, 1e4, 1);
  EXPECT_EQ(res.gaps_observed, 0u);
  EXPECT_FALSE(res.has_data());
  EXPECT_TRUE(std::isnan(res.simulated_hours));
  EXPECT_TRUE(std::isinf(res.analytic_hours));
}

TEST(McStatistics, EolTailReservoirStaysExactUpToCap) {
  SystemShape shape;
  const auto res = eol_materialized_fraction(
      shape, ddr3_vendor_average(), 500, 7 * units::kHoursPerYear, 6);
  EXPECT_TRUE(res.p999_exact);  // 500 systems << kEolReservoirCap
  EXPECT_GE(res.p999_fraction, res.mean_fraction);
}

}  // namespace
}  // namespace eccsim::faults
