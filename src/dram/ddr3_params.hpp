// DDR3 device timing and current (IDD) parameters.
//
// The paper (Sec. IV-B) models 2Gb DDR3 DRAM chips with a 1 GHz I/O clock
// (DDR3-2000), with parameters taken from die revision D of the Micron 2Gb
// DDR3 SDRAM datasheet, and computes power with the standard Micron
// methodology (TN-41-01): activate energy from IDD0 against the standby
// floor, burst energy from IDD4R/IDD4W, background power from
// IDD2P/IDD2N/IDD3N, refresh from IDD5B.
//
// All timing values are stored in memory-controller clock cycles.  The
// controller clock is 1 GHz (1 ns per cycle), so cycle counts equal
// nanoseconds for this part.
#pragma once

#include <cstdint>
#include <string>

namespace eccsim::dram {

/// DRAM device data-bus width.  Width determines burst energy (more DQ pins
/// toggle) and the number of chips needed per rank.
enum class DeviceWidth : std::uint8_t { kX4 = 4, kX8 = 8, kX16 = 16 };

std::string to_string(DeviceWidth w);

/// Timing constraints in controller cycles (1 ns @ 1 GHz).
struct Ddr3Timing {
  unsigned tCK = 1;     ///< controller clock period (cycles; identity)
  unsigned tRCD = 14;   ///< ACT to RD/WR
  unsigned tCL = 14;    ///< RD to first data
  unsigned tCWL = 10;   ///< WR to first data
  unsigned tRP = 14;    ///< PRE to ACT
  unsigned tRAS = 35;   ///< ACT to PRE
  unsigned tRC = 49;    ///< ACT to ACT, same bank
  unsigned tRRD = 6;    ///< ACT to ACT, same rank
  unsigned tFAW = 30;   ///< four-activate window, same rank
  unsigned tWR = 15;    ///< end of write data to PRE
  unsigned tWTR = 8;    ///< end of write data to RD, same rank
  unsigned tRTP = 8;    ///< RD to PRE
  unsigned tCCD = 4;    ///< column-to-column (burst gap)
  unsigned tBurst = 4;  ///< BL8 at double data rate occupies 4 clocks
  unsigned tRFC = 160;  ///< refresh cycle time (2Gb part)
  unsigned tREFI = 7800;  ///< average refresh interval
  unsigned tXP = 6;     ///< power-down exit to first command
  unsigned tCKE = 6;    ///< minimum power-down residency
  unsigned tRTW = 8;    ///< read-to-write bus turnaround, same channel
};

/// IDD currents in milliamps and the supply voltage.
struct Ddr3Currents {
  double idd0 = 95;    ///< one-bank ACT-PRE cycling
  double idd2p = 12;   ///< precharge power-down (slow exit)
  double idd2n = 45;   ///< precharge standby
  double idd3p = 50;   ///< active power-down
  double idd3n = 62;   ///< active standby
  double idd4r = 140;  ///< burst read
  double idd4w = 145;  ///< burst write
  double idd5b = 235;  ///< burst refresh
  double vdd = 1.5;    ///< supply voltage (volts)
};

/// Per-event / per-state energy quantities derived from the currents, in
/// picojoules (energy) and picojoules-per-cycle (power at 1 ns cycles).
struct Ddr3Energy {
  double act_pj = 0;        ///< one ACT+PRE pair, per chip
  double rd_burst_pj = 0;   ///< one BL8 read burst, per chip
  double wr_burst_pj = 0;   ///< one BL8 write burst, per chip
  double refresh_pj = 0;    ///< one REF command, per chip
  double bg_pd_pj_cyc = 0;      ///< background, precharge power-down
  double bg_pre_pj_cyc = 0;     ///< background, precharge standby
  double bg_act_pj_cyc = 0;     ///< background, active standby
};

/// A complete device description.
struct Ddr3Device {
  DeviceWidth width = DeviceWidth::kX8;
  std::uint64_t capacity_mbit = 2048;  ///< 2Gb parts throughout the paper
  unsigned banks = 8;
  std::uint64_t rows = 32768;     ///< derived; see micron_2gb()
  unsigned columns = 1024;        ///< column addresses per row
  unsigned page_bytes = 2048;     ///< row-buffer size in bytes
  Ddr3Timing timing;
  Ddr3Currents currents;
  Ddr3Energy energy;  ///< derived from currents+timing by micron_2gb()

  /// A speed-multiplier knob for the Sec. V-D discussion (a 16% faster speed
  /// bin costs ~5% memory energy); 1.0 for the standard part.
  double speed_factor = 1.0;
};

/// Builds the 2Gb Micron die-rev-D device model for a given width.
/// Geometry: x4 -> 2KB... DDR3 2Gb parts: x4: 16 banks? No: 2Gb DDR3 has 8
/// banks for all widths; x4/x8 have 32K rows (x4: 2K cols, x8: 1K cols),
/// x16 has 16K rows.  IDD4 scales with width (more DQ toggling); IDD0/IDD5
/// are slightly higher for x16.
Ddr3Device micron_2gb(DeviceWidth width, double speed_factor = 1.0);

/// Recomputes the derived per-event energies from the device's current
/// timing and IDD values.  Call after editing currents (e.g. to model the
/// LOT-ECC5 mixed x16/x8 rank as scaled x16 chips).
void rederive_energy(Ddr3Device& device);

}  // namespace eccsim::dram
