#!/bin/sh
# Kernel bit-identity gate for the GF(2^8) region-kernel layer.
#
# Usage: ./scripts/kernel_identity_check.sh [path-to-fig10_epi_quad]
#   default binary: build/bench/fig10_epi_quad
#
# The kernel layer's contract (docs/KERNELS.md) is that ECCSIM_KERNEL
# changes wall-clock only, never results.  This script runs the fig10
# smoke sweep once under default dispatch, then once per kernel the
# host supports (read from the run's kernels.json provenance document),
# and requires the sweep CSV and the derived figure table to be
# byte-identical across all of them.  Smoke fidelity keeps it CI-sized
# (~seconds); the tests in tests/gf_kernels_test.cpp cover the
# primitives exhaustively, this gate covers the composed pipeline.
set -e

bin=${1:-build/bench/fig10_epi_quad}
cd "$(dirname "$0")/.."
if [ ! -x "$bin" ]; then
  echo "usage: $0 [path-to-fig10_epi_quad]  ($bin: not an executable)" >&2
  exit 2
fi

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

run_sweep() {  # $1 = label, $2... = extra env assignments
  label=$1; shift
  rm -f bench_results/sweep_quad_smoke.csv
  env -u ECCSIM_KERNEL -u ECCSIM_QUICK -u ECCSIM_DRAM ECCSIM_SMOKE=1 \
      "$@" "$bin" >/dev/null
  cp bench_results/sweep_quad_smoke.csv "$tmp/sweep.$label"
  cp bench_results/smoke/fig10_epi_quad.csv "$tmp/fig10.$label"
}

echo "[kernel-identity] smoke sweep under default dispatch" >&2
run_sweep default
# The provenance document written by the run lists what this host can
# actually execute -- force only those (forcing simd on a non-SSSE3
# host is a deliberate exit-2, not a skip).
kernels=$(sed -n '/"available"/,/\]/p' results/smoke/fig10_epi_quad.kernels.json |
          grep -o '"[a-z0-9]*"' | tr -d '"' | grep -x 'scalar\|slice8\|simd')
[ -n "$kernels" ] || { echo "[kernel-identity] FAIL: no kernels parsed from provenance doc" >&2; exit 1; }

fail=0
for k in $kernels; do
  echo "[kernel-identity] smoke sweep under ECCSIM_KERNEL=$k" >&2
  run_sweep "$k" ECCSIM_KERNEL="$k"
  for f in sweep fig10; do
    if ! cmp -s "$tmp/$f.default" "$tmp/$f.$k"; then
      echo "[kernel-identity] FAIL: $f CSV differs under ECCSIM_KERNEL=$k" >&2
      fail=1
    fi
  done
done

# Leave no smoke sweep cache behind: later CI steps rely on an empty
# cache so their checked runs really re-simulate.
rm -f bench_results/sweep_quad_smoke.csv

if [ "$fail" -ne 0 ]; then
  echo "[kernel-identity] FAIL: kernel choice changed simulation results" >&2
  echo "[kernel-identity] (the kernel contract is bit-identity; see docs/KERNELS.md)" >&2
  exit 1
fi
echo "[kernel-identity] OK (results bit-identical across: default $(echo $kernels))" >&2
