// Table II: summary of evaluated ECC implementations -- rank configuration,
// line size, ranks per channel, logical channels, and total I/O pins at
// both evaluated system scales.
#include <cstdio>

#include "bench_common.hpp"
#include "dram/spec.hpp"

using namespace eccsim;

namespace {
std::string rank_config(const ecc::SchemeDesc& d) {
  if (d.mixed_rank) return "4 x16, 1 x8";
  return std::to_string(d.chips_per_rank) + " " +
         dram::to_string(d.width);
}
}  // namespace

int main(int argc, char** argv) {
  eccsim::bench::init(argc, argv);
  Table t({"scheme", "rank config", "line", "ranks/chan",
           "channels (dual,quad)", "pins (dual,quad)"});
  for (const auto id : ecc::all_schemes()) {
    const auto dual = ecc::make_scheme(id, ecc::SystemScale::kDualEquivalent);
    const auto quad = ecc::make_scheme(id, ecc::SystemScale::kQuadEquivalent);
    t.add_row({dual.name, rank_config(dual),
               std::to_string(dual.line_bytes) + "B",
               std::to_string(dual.ranks_per_channel),
               std::to_string(dual.channels) + ", " +
                   std::to_string(quad.channels),
               std::to_string(dual.io_pins()) + ", " +
                   std::to_string(quad.io_pins())});
  }
  std::printf("Table II -- Evaluated ECC implementations\n\n");
  bench::emit("table2_configs", t);
  std::printf(
      "Paper check: chipkill family at 288/576 pins, RAIM family at\n"
      "360/720; equal data capacity within each family (32 GiB at quad\n"
      "scale for the chipkill family).\n");
  return 0;
}
