# Empty compiler generated dependencies file for fig14_perf_quad.
# This may be replaced when dependencies are built.
