#include "common/rng.hpp"

// All of Rng is defined inline in the header; this TU anchors the library.
namespace eccsim {}
