#include "lexer.hpp"

#include <cctype>
#include <cstddef>

namespace eccsim::ecclint {

namespace {

/// Cursor over the raw bytes that makes backslash-newline splices
/// invisible to the token scanners (phase-2 of translation), while
/// keeping an accurate 1-based line count.
class Cursor {
 public:
  explicit Cursor(const std::string& s) : s_(s) { skip_splices(); }

  bool eof() const { return i_ >= s_.size(); }
  char peek() const { return eof() ? '\0' : s_[i_]; }
  char peek2() const { return i_ + 1 < s_.size() ? s_[i_ + 1] : '\0'; }
  int line() const { return line_; }

  void advance() {
    if (eof()) return;
    if (s_[i_] == '\n') ++line_;
    ++i_;
    skip_splices();
  }

 private:
  void skip_splices() {
    while (i_ + 1 < s_.size() && s_[i_] == '\\') {
      if (s_[i_ + 1] == '\n') {
        i_ += 2;
        ++line_;
      } else if (i_ + 2 < s_.size() && s_[i_ + 1] == '\r' &&
                 s_[i_ + 2] == '\n') {
        i_ += 3;
        ++line_;
      } else {
        break;
      }
    }
  }

  const std::string& s_;
  std::size_t i_ = 0;
  int line_ = 1;
};

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

/// Multi-character punctuators the rule passes care about, longest first.
const char* const kPuncts[] = {
    "<<=", ">>=", "->*", "...", "::", "->", "++", "--", "+=", "-=",
    "*=",  "/=",  "%=",  "^=", "&=", "|=", "<<", ">>", "<=", ">=",
    "==",  "!=",  "&&",  "||",
};

class Lexer {
 public:
  Lexer(const std::string& path, const std::string& content)
      : cur_(content) {
    out_.path = path;
  }

  LexedFile run() {
    while (!cur_.eof()) {
      const char c = cur_.peek();
      if (c == '\n') {
        at_line_start_ = true;
        cur_.advance();
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c))) {
        cur_.advance();
        continue;
      }
      if (c == '#' && at_line_start_) {
        directive();
        continue;
      }
      at_line_start_ = false;
      if (disabled_depth_ > 0) {  // inside #if 0: skip to the next line
        while (!cur_.eof() && cur_.peek() != '\n') cur_.advance();
        continue;
      }
      if (c == '/' && cur_.peek2() == '/') {
        line_comment();
      } else if (c == '/' && cur_.peek2() == '*') {
        block_comment();
      } else if (c == '"') {
        string_literal();
      } else if (c == '\'') {
        char_literal();
      } else if (ident_start(c)) {
        identifier();
      } else if (std::isdigit(static_cast<unsigned char>(c)) ||
                 (c == '.' && std::isdigit(
                                  static_cast<unsigned char>(cur_.peek2())))) {
        number();
      } else {
        punct();
      }
    }
    return std::move(out_);
  }

 private:
  void emit(Tok kind, std::string text, int line) {
    if (disabled_depth_ == 0) {
      out_.tokens.push_back(Token{kind, std::move(text), line});
    }
  }

  /// Consumes the rest of the (spliced) logical line, returning its text.
  std::string rest_of_line() {
    std::string text;
    while (!cur_.eof() && cur_.peek() != '\n') {
      text.push_back(cur_.peek());
      cur_.advance();
    }
    return text;
  }

  void directive() {
    const int line = cur_.line();
    cur_.advance();  // '#'
    while (!cur_.eof() && (cur_.peek() == ' ' || cur_.peek() == '\t')) {
      cur_.advance();
    }
    std::string name;
    while (!cur_.eof() && ident_char(cur_.peek())) {
      name.push_back(cur_.peek());
      cur_.advance();
    }
    const std::string rest = trim(rest_of_line());
    if (name == "if") {
      if (disabled_depth_ > 0) {
        ++disabled_depth_;
      } else if (rest == "0") {
        disabled_depth_ = 1;
      }
    } else if (name == "ifdef" || name == "ifndef") {
      if (disabled_depth_ > 0) ++disabled_depth_;
    } else if (name == "elif" || name == "else") {
      // The branch after a disabled `#if 0` is compiled; deeper nesting
      // inside the disabled region stays disabled.
      if (disabled_depth_ == 1) disabled_depth_ = 0;
    } else if (name == "endif") {
      if (disabled_depth_ > 0) --disabled_depth_;
    } else if (name == "include" && disabled_depth_ == 0) {
      parse_include(rest, line);
    }
    at_line_start_ = true;
  }

  void parse_include(const std::string& rest, int line) {
    if (rest.empty()) return;
    const char open = rest[0];
    const char close = open == '<' ? '>' : (open == '"' ? '"' : '\0');
    if (close == '\0') return;  // computed include: ignore
    const std::size_t end = rest.find(close, 1);
    if (end == std::string::npos) return;
    out_.includes.push_back(
        Include{rest.substr(1, end - 1), line, open == '<'});
  }

  void scan_suppression(const std::string& text, int line) {
    static const std::string kTag = "ecclint:allow(";
    const std::size_t at = text.find(kTag);
    if (at == std::string::npos) return;
    const std::size_t close = text.find(')', at + kTag.size());
    if (close == std::string::npos) return;
    std::string reason = text.substr(close + 1);
    // Strip a block comment's trailer and leading ':'/'-' separators.
    if (const std::size_t tail = reason.find("*/");
        tail != std::string::npos) {
      reason = reason.substr(0, tail);
    }
    std::size_t b = 0;
    while (b < reason.size() &&
           (reason[b] == ':' || reason[b] == '-' || reason[b] == ' ')) {
      ++b;
    }
    out_.suppressions.push_back(Suppression{
        line, text.substr(at + kTag.size(), close - at - kTag.size()),
        trim(reason.substr(b))});
  }

  void line_comment() {
    const int line = cur_.line();
    scan_suppression(rest_of_line(), line);
  }

  void block_comment() {
    const int line = cur_.line();
    std::string text;
    cur_.advance();  // '/'
    cur_.advance();  // '*'
    while (!cur_.eof()) {
      if (cur_.peek() == '*' && cur_.peek2() == '/') {
        cur_.advance();
        cur_.advance();
        break;
      }
      text.push_back(cur_.peek());
      cur_.advance();
    }
    scan_suppression(text, line);
  }

  void string_literal() {
    const int line = cur_.line();
    std::string text;
    cur_.advance();  // opening quote
    while (!cur_.eof() && cur_.peek() != '"' && cur_.peek() != '\n') {
      if (cur_.peek() == '\\') {
        text.push_back(cur_.peek());
        cur_.advance();
        if (cur_.eof()) break;
      }
      text.push_back(cur_.peek());
      cur_.advance();
    }
    if (!cur_.eof() && cur_.peek() == '"') cur_.advance();
    emit(Tok::kString, std::move(text), line);
  }

  void raw_string_literal() {
    const int line = cur_.line();
    cur_.advance();  // opening quote
    std::string delim;
    while (!cur_.eof() && cur_.peek() != '(') {
      delim.push_back(cur_.peek());
      cur_.advance();
    }
    cur_.advance();  // '('
    const std::string closer = ")" + delim + "\"";
    std::string text, window;
    while (!cur_.eof()) {
      text.push_back(cur_.peek());
      cur_.advance();
      if (text.size() >= closer.size() &&
          text.compare(text.size() - closer.size(), closer.size(),
                       closer) == 0) {
        text.resize(text.size() - closer.size());
        break;
      }
    }
    emit(Tok::kString, std::move(text), line);
  }

  void char_literal() {
    const int line = cur_.line();
    std::string text;
    cur_.advance();  // opening quote
    while (!cur_.eof() && cur_.peek() != '\'' && cur_.peek() != '\n') {
      if (cur_.peek() == '\\') {
        text.push_back(cur_.peek());
        cur_.advance();
        if (cur_.eof()) break;
      }
      text.push_back(cur_.peek());
      cur_.advance();
    }
    if (!cur_.eof() && cur_.peek() == '\'') cur_.advance();
    emit(Tok::kChar, std::move(text), line);
  }

  void identifier() {
    const int line = cur_.line();
    std::string text;
    while (!cur_.eof() && ident_char(cur_.peek())) {
      text.push_back(cur_.peek());
      cur_.advance();
    }
    if (cur_.peek() == '"') {
      // String-literal prefix rather than an identifier.
      if (text == "R" || text == "u8R" || text == "uR" || text == "UR" ||
          text == "LR") {
        raw_string_literal();
        return;
      }
      if (text == "u8" || text == "u" || text == "U" || text == "L") {
        string_literal();
        return;
      }
    }
    if (cur_.peek() == '\'' &&
        (text == "u8" || text == "u" || text == "U" || text == "L")) {
      char_literal();
      return;
    }
    emit(Tok::kIdent, std::move(text), line);
  }

  void number() {
    const int line = cur_.line();
    std::string text;
    while (!cur_.eof()) {
      const char c = cur_.peek();
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '.' ||
          c == '\'') {
        text.push_back(c);
        cur_.advance();
      } else if ((c == '+' || c == '-') && !text.empty()) {
        const char prev = text.back();
        if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
          text.push_back(c);
          cur_.advance();
        } else {
          break;
        }
      } else {
        break;
      }
    }
    emit(Tok::kNumber, std::move(text), line);
  }

  void punct() {
    const int line = cur_.line();
    for (const char* p : kPuncts) {
      std::string s(p);
      bool match = true;
      Cursor probe = cur_;
      for (char want : s) {
        if (probe.peek() != want) {
          match = false;
          break;
        }
        probe.advance();
      }
      if (match) {
        for (std::size_t k = 0; k < s.size(); ++k) cur_.advance();
        emit(Tok::kPunct, std::move(s), line);
        return;
      }
    }
    emit(Tok::kPunct, std::string(1, cur_.peek()), line);
    cur_.advance();
  }

  Cursor cur_;
  LexedFile out_;
  bool at_line_start_ = true;
  int disabled_depth_ = 0;  // nesting inside a `#if 0` region
};

}  // namespace

LexedFile lex(const std::string& path, const std::string& content) {
  return Lexer(path, content).run();
}

}  // namespace eccsim::ecclint
