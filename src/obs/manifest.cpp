#include "obs/manifest.hpp"

#include <mutex>
#include <stdexcept>

#include "obs/heartbeat.hpp"
#include "runner/json.hpp"

namespace eccsim::obs {

namespace {

std::mutex g_manifest_mu;

}  // namespace

runner::Json to_json(const Manifest& m) {
  runner::Json doc = runner::Json::object();
  doc.set("schema", "eccsim.manifest/1");
  doc.set("tool", m.tool);
  runner::Json args = runner::Json::array();
  for (const auto& a : m.args) args.push_back(a);
  doc.set("args", args);
  doc.set("git_sha", m.git_sha);
  doc.set("dram", m.dram);
  doc.set("seed_regime", m.seed_regime);
  doc.set("threads", static_cast<std::uint64_t>(m.threads));
  doc.set("host", m.host);
  doc.set("host_cpus", static_cast<std::uint64_t>(m.host_cpus));
  doc.set("started_utc", m.started_utc);
  doc.set("finished_utc",
          m.finished_utc.empty() ? runner::Json() : runner::Json(m.finished_utc));
  doc.set("wall_seconds", m.wall_seconds);
  doc.set("peak_rss_bytes", m.peak_rss_bytes);
  doc.set("status", m.status);
  doc.set("exit_code", static_cast<std::int64_t>(m.exit_code));
  doc.set("resumed", m.resumed);
  if (!m.extra.empty()) {
    runner::Json extra = runner::Json::object();
    for (const auto& [key, value] : m.extra) extra.set(key, value);
    doc.set("extra", extra);
  }
  return doc;
}

Manifest manifest_from_json(const runner::Json& doc) {
  if (!doc.is_object()) throw std::runtime_error("manifest: not an object");
  Manifest m;
  m.tool = doc.at("tool").as_string();
  for (const auto& a : doc.at("args").items()) m.args.push_back(a.as_string());
  m.git_sha = doc.at("git_sha").as_string();
  m.dram = doc.at("dram").as_string();
  m.seed_regime = doc.at("seed_regime").as_string();
  m.threads = static_cast<unsigned>(doc.at("threads").as_number());
  m.host = doc.at("host").as_string();
  m.host_cpus = static_cast<unsigned>(doc.at("host_cpus").as_number());
  m.started_utc = doc.at("started_utc").as_string();
  if (!doc.at("finished_utc").is_null()) {
    m.finished_utc = doc.at("finished_utc").as_string();
  }
  m.wall_seconds = doc.at("wall_seconds").as_number();
  m.peak_rss_bytes =
      static_cast<std::uint64_t>(doc.at("peak_rss_bytes").as_number());
  m.status = doc.at("status").as_string();
  m.exit_code = static_cast<int>(doc.at("exit_code").as_number());
  m.resumed = doc.at("resumed").as_bool();
  if (doc.contains("extra")) {
    for (const auto& [key, value] : doc.at("extra").members()) {
      m.extra.emplace_back(key, value.as_string());
    }
  }
  return m;
}

bool write_manifest(const std::string& path, const Manifest& m) {
  return atomic_write_file(path, to_json(m).dump(2) + "\n");
}

Manifest& manifest() {
  static Manifest m;
  return m;
}

void note_resumed() {
  std::lock_guard<std::mutex> lock(g_manifest_mu);
  manifest().resumed = true;
}

void note_exit_code(int code) {
  std::lock_guard<std::mutex> lock(g_manifest_mu);
  Manifest& m = manifest();
  m.exit_code = code;
  if (code != 0) m.status = "failed";
}

}  // namespace eccsim::obs
