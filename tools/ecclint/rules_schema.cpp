// Schema/consistency rules (EL201-EL205): the telemetry surface --
// `eccsim.<name>/<version>` schema ids, stats dotted paths, and bench
// flag strings -- must stay internally consistent and documented, because
// downstream consumers (benchtool, CI asserts, dashboards) key on these
// strings verbatim.
#include <cctype>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analyzer.hpp"

namespace eccsim::ecclint {

namespace {

bool is_schema_like(const std::string& s) {
  // ecclint:allow(EL201) the rule's own match prefix, not a schema id
  return s.rfind("eccsim.", 0) == 0;
}

/// eccsim.<name>/<version> with name in [a-z0-9_]+ and a numeric version.
bool valid_schema_id(const std::string& s, std::string* name,
                     std::string* version) {
  const std::string body = s.substr(7);  // past "eccsim."
  const std::size_t slash = body.find('/');
  if (slash == std::string::npos || slash == 0 ||
      slash + 1 >= body.size()) {
    return false;
  }
  for (std::size_t i = 0; i < slash; ++i) {
    const char c = body[i];
    if (!std::islower(static_cast<unsigned char>(c)) &&
        !std::isdigit(static_cast<unsigned char>(c)) && c != '_') {
      return false;
    }
  }
  for (std::size_t i = slash + 1; i < body.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(body[i]))) return false;
  }
  *name = body.substr(0, slash);
  *version = body.substr(slash + 1);
  return true;
}

const std::set<std::string> kRegistrationFns = {
    "counter", "accum", "gauge", "distribution", "histogram"};

/// A whole-literal bench flag: --foo, --foo-bar, --foo= (value-taking).
bool flag_shaped(const std::string& s) {
  if (s.size() < 3 || s[0] != '-' || s[1] != '-') return false;
  std::string body = s.substr(2);
  if (!body.empty() && body.back() == '=') body.pop_back();
  if (body.empty() ||
      !std::isalnum(static_cast<unsigned char>(body[0]))) {
    return false;
  }
  for (char c : body) {
    if (!std::islower(static_cast<unsigned char>(c)) &&
        !std::isdigit(static_cast<unsigned char>(c)) && c != '-' &&
        c != '_') {
      return false;
    }
  }
  return true;
}

/// True when `flag` occurs in `text` at a flag boundary (not as a prefix
/// of a longer flag, so "--trace" does not match inside "--trace-in").
bool contains_flag(const std::string& text, const std::string& flag) {
  std::size_t at = 0;
  while ((at = text.find(flag, at)) != std::string::npos) {
    const std::size_t end = at + flag.size();
    const char next = end < text.size() ? text[end] : '\0';
    if (!std::islower(static_cast<unsigned char>(next)) &&
        !std::isdigit(static_cast<unsigned char>(next)) && next != '-' &&
        next != '_') {
      return true;
    }
    at = end;
  }
  return false;
}

bool has_prefix(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

}  // namespace

void check_schema(const std::vector<LexedFile>& files, const Config& cfg,
                  std::vector<Finding>& out) {
  struct Site {
    std::string file;
    int line;
    std::string what;  // version or stat kind
  };
  std::map<std::string, Site> schema_versions;  // name -> first site
  std::map<std::string, Site> stat_kinds;       // path -> first site

  for (const LexedFile& file : files) {
    const std::vector<Token>& toks = file.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind != Tok::kString) continue;

      // --- EL201/EL202/EL203: schema ids ------------------------------
      if (is_schema_like(t.text)) {
        std::string name, version;
        if (!valid_schema_id(t.text, &name, &version)) {
          out.push_back(Finding{
              file.path, t.line, "EL201",
              "schema id '" + t.text +
                  "' does not match the eccsim.<name>/<version> convention "
                  "(docs/OBSERVABILITY.md)"});
          continue;
        }
        const auto [it, inserted] =
            schema_versions.emplace(name, Site{file.path, t.line, version});
        if (!inserted && it->second.what != version) {
          out.push_back(Finding{
              file.path, t.line, "EL203",
              "schema 'eccsim." + name + "' bound to version " + version +
                  " here but version " + it->second.what + " at " +
                  it->second.file + ":" + std::to_string(it->second.line) +
                  " (bump every producer together)"});
        }
        if (!cfg.schema_doc.empty() &&
            cfg.schema_doc.find(t.text) == std::string::npos) {
          out.push_back(Finding{
              file.path, t.line, "EL202",
              "schema id '" + t.text + "' is not documented in " +
                  cfg.schema_doc_path});
        }
      }

      // --- EL204: stats dotted-path kind conflicts --------------------
      // Pattern: <recv> . / -> / :: REGFN ( "literal"  -- only literal
      // first arguments are statically checkable; prefix-composed paths
      // are exercised by the runtime registry's uniqueness exception.
      if (i >= 2 && toks[i - 1].kind == Tok::kPunct &&
          toks[i - 1].text == "(" && toks[i - 2].kind == Tok::kIdent &&
          kRegistrationFns.count(toks[i - 2].text) != 0 && i >= 3 &&
          toks[i - 3].kind == Tok::kPunct &&
          (toks[i - 3].text == "." || toks[i - 3].text == "->" ||
           toks[i - 3].text == "::")) {
        const std::string& kind = toks[i - 2].text;
        const auto [it, inserted] =
            stat_kinds.emplace(t.text, Site{file.path, t.line, kind});
        if (!inserted && it->second.what != kind) {
          out.push_back(Finding{
              file.path, t.line, "EL204",
              "stats path '" + t.text + "' registered as " + kind +
                  " here but as " + it->second.what + " at " +
                  it->second.file + ":" + std::to_string(it->second.line) +
                  " (the registry throws on kind conflicts at runtime)"});
        }
      }
    }

    // --- EL205: every flag literal must appear in the --help text -----
    // Applies to binaries' sources: anything under bench/ or tools/ that
    // mentions --help.  The help text is the set of literals that contain
    // more than the bare flag.
    if (!has_prefix(file.path, "bench/") && !has_prefix(file.path, "tools/")) {
      continue;
    }
    bool has_help = false;
    for (const Token& t : toks) {
      if (t.kind == Tok::kString && contains_flag(t.text, "--help")) {
        has_help = true;
        break;
      }
    }
    if (!has_help) continue;
    for (const Token& t : toks) {
      if (t.kind != Tok::kString || !flag_shaped(t.text)) continue;
      std::string flag = t.text;
      if (flag.back() == '=') flag.pop_back();
      if (flag == "--help") continue;  // self-documenting

      bool documented = false;
      for (const Token& u : toks) {
        if (u.kind != Tok::kString || &u == &t) continue;
        if (u.text.size() > flag.size() && contains_flag(u.text, flag)) {
          documented = true;
          break;
        }
      }
      if (!documented) {
        out.push_back(Finding{
            file.path, t.line, "EL205",
            "flag '" + flag + "' is parsed here but never mentioned in "
            "this binary's --help text"});
      }
    }
  }
}

}  // namespace eccsim::ecclint
