# Empty dependencies file for ablation_rowpolicy.
# This may be replaced when dependencies are built.
