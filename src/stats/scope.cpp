#include "stats/scope.hpp"

#include <algorithm>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

namespace eccsim::stats {

namespace {

/// Per-thread accumulation buffer.  The buffer's own mutex is only
/// contended when snapshot()/reset() run concurrently with that thread,
/// so the common record() path pays an uncontended lock.
struct ThreadBuffer {
  std::mutex mu;
  std::unordered_map<const char*, ScopeTotals> by_site;
};

std::mutex& buffers_mu() {
  static std::mutex mu;
  return mu;
}

std::vector<std::shared_ptr<ThreadBuffer>>& buffers() {
  static std::vector<std::shared_ptr<ThreadBuffer>> bufs;
  return bufs;
}

ThreadBuffer& local_buffer() {
  // shared_ptr keeps the buffer alive past thread exit so pool workers'
  // samples survive until the main thread snapshots.
  thread_local std::shared_ptr<ThreadBuffer> buf = [] {
    auto b = std::make_shared<ThreadBuffer>();
    std::lock_guard<std::mutex> lock(buffers_mu());
    buffers().push_back(b);
    return b;
  }();
  return *buf;
}

}  // namespace

void Profiler::record(const char* name, double seconds) {
  ThreadBuffer& buf = local_buffer();
  std::lock_guard<std::mutex> lock(buf.mu);
  ScopeTotals& t = buf.by_site[name];
  ++t.calls;
  t.seconds += seconds;
}

std::vector<std::pair<std::string, ScopeTotals>> Profiler::snapshot() {
  // Accumulate in sorted site order so repeated snapshots of the same
  // samples sum the doubles in one deterministic order regardless of the
  // per-thread hash layout.
  std::map<std::string, ScopeTotals> merged;
  {
    std::lock_guard<std::mutex> lock(buffers_mu());
    for (const auto& buf : buffers()) {
      std::lock_guard<std::mutex> inner(buf->mu);
      std::vector<std::pair<std::string, ScopeTotals>> sites(
          buf->by_site.begin(), buf->by_site.end());
      std::sort(sites.begin(), sites.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
      for (const auto& [name, totals] : sites) {
        ScopeTotals& t = merged[name];
        t.calls += totals.calls;
        t.seconds += totals.seconds;
      }
    }
  }
  return {merged.begin(), merged.end()};
}

void Profiler::reset() {
  std::lock_guard<std::mutex> lock(buffers_mu());
  for (const auto& buf : buffers()) {
    std::lock_guard<std::mutex> inner(buf->mu);
    buf->by_site.clear();
  }
}

}  // namespace eccsim::stats
