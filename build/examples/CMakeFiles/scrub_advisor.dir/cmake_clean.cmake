file(REMOVE_RECURSE
  "CMakeFiles/scrub_advisor.dir/scrub_advisor.cpp.o"
  "CMakeFiles/scrub_advisor.dir/scrub_advisor.cpp.o.d"
  "scrub_advisor"
  "scrub_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scrub_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
