# Empty dependencies file for ecc_cache.
# This may be replaced when dependencies are built.
