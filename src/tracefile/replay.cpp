#include "tracefile/replay.hpp"

namespace eccsim::tracefile {

namespace {

TraceMeta recording_meta(const trace::TraceSource& inner,
                         std::uint64_t seed) {
  TraceMeta meta;
  meta.point = CapturePoint::kPreLlc;
  meta.cores = inner.cores();
  meta.seed = seed;
  meta.workload = inner.workload().name;
  return meta;
}

}  // namespace

ReplaySource::ReplaySource(const std::string& path) : reader_(path) {
  if (reader_.meta().point != CapturePoint::kPreLlc) {
    throw TraceError("ecctrace: only pre-LLC traces are replayable (" +
                     path + " is " + to_string(reader_.meta().point) + ")");
  }
  if (reader_.meta().cores == 0) {
    throw TraceError("ecctrace: zero cores in trace header of " + path);
  }
  desc_ = trace::workload_by_name(reader_.meta().workload);
  queues_.resize(reader_.meta().cores);
}

trace::MemOp ReplaySource::next(unsigned core) {
  if (core >= queues_.size()) {
    throw TraceError("ecctrace: replay asked for core " +
                     std::to_string(core) + " but trace has " +
                     std::to_string(queues_.size()) + " cores");
  }
  while (queues_[core].empty()) {
    PreOp rec;
    if (!reader_.next(rec)) {
      throw TraceError(
          "ecctrace: trace exhausted replaying " + reader_.path() +
          " (core " + std::to_string(core) + " after " +
          std::to_string(replayed_) +
          " ops); re-record with more --ops-per-core");
    }
    if (rec.core >= queues_.size()) {
      throw TraceError("ecctrace: record for core " +
                       std::to_string(rec.core) +
                       " exceeds the header's core count");
    }
    queues_[rec.core].push_back(rec.op);
  }
  const trace::MemOp op = queues_[core].front();
  queues_[core].pop_front();
  ++replayed_;
  return op;
}

std::string ReplaySource::describe() const {
  return "replay of " + reader_.path() + " (" + desc_.name + ", " +
         std::to_string(reader_.total_ops()) + " ops)";
}

RecordingSource::RecordingSource(std::unique_ptr<trace::TraceSource> inner,
                                 const std::string& path, std::uint64_t seed,
                                 std::size_t ops_per_chunk)
    : inner_(std::move(inner)),
      writer_(path, recording_meta(*inner_, seed), ops_per_chunk) {}

std::string RecordingSource::describe() const {
  return inner_->describe() + " -> recording " + writer_.path();
}

std::uint64_t record_workload_trace(const trace::WorkloadDesc& desc,
                                    unsigned cores,
                                    std::uint64_t ops_per_core,
                                    std::uint64_t seed,
                                    const std::string& path) {
  TraceMeta meta;
  meta.point = CapturePoint::kPreLlc;
  meta.cores = cores;
  meta.seed = seed;
  meta.workload = desc.name;
  TraceWriter writer(path, meta);
  std::vector<trace::CoreGenerator> gens;
  gens.reserve(cores);
  for (unsigned c = 0; c < cores; ++c) {
    gens.emplace_back(desc, c, cores, seed);
  }
  for (std::uint64_t i = 0; i < ops_per_core; ++i) {
    for (unsigned c = 0; c < cores; ++c) {
      writer.append(gens[c].next(), c);
    }
  }
  writer.close();
  return writer.counters().ops;
}

}  // namespace eccsim::tracefile
