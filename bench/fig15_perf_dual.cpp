// Fig. 15: performance normalized to the baselines, dual-channel-
// equivalent systems.  Same qualitative behavior as Fig. 14.
#include "fig_perf_common.hpp"

int main(int argc, char** argv) {
  eccsim::bench::init(argc, argv);
  eccsim::bench::ratio_figure(
      "fig15_perf_dual",
      "Fig. 15 -- Performance normalized to baselines (dual-equivalent, >1 = faster)",
      eccsim::ecc::SystemScale::kDualEquivalent,
      [](const eccsim::sim::RunResult& r) { return r.ipc; });
  return 0;
}
