#include "fleet/coordinator.hpp"

#include <sys/wait.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "faults/mc_engine.hpp"
#include "obs/heartbeat.hpp"
#include "runner/json.hpp"
#include "runner/thread_pool.hpp"

namespace eccsim::fleet {

namespace {

/// Spawns `binary` with `args` (argv[1..]); returns the child pid or
/// throws.  The child replaces itself via execv, so no state of this
/// process leaks into the worker beyond the command line.
pid_t spawn(const std::string& binary, const std::vector<std::string>& args) {
  const pid_t pid = ::fork();
  if (pid < 0) throw std::runtime_error("fleet: fork() failed");
  if (pid == 0) {
    std::vector<char*> argv;
    argv.push_back(const_cast<char*>(binary.c_str()));
    for (const std::string& a : args) {
      argv.push_back(const_cast<char*>(a.c_str()));
    }
    argv.push_back(nullptr);
    ::execv(binary.c_str(), argv.data());
    _exit(127);  // exec failed; 127 mirrors the shell's "not found"
  }
  return pid;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("fleet: cannot read " + path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

}  // namespace

std::uint64_t fleet_chunk_count(std::uint64_t nodes, unsigned chunk_size) {
  return (nodes + chunk_size - 1) / chunk_size;
}

unsigned fleet_chunk_nodes(std::uint64_t nodes, unsigned chunk_size,
                           std::uint64_t ci) {
  const std::uint64_t lo = ci * chunk_size;
  const std::uint64_t hi = std::min<std::uint64_t>(lo + chunk_size, nodes);
  return lo < hi ? static_cast<unsigned>(hi - lo) : 0u;
}

std::uint64_t fleet_run_identity(const FleetSpec& spec, unsigned chunk_size) {
  return faults::mc_run_identity("fleet:" + config_hash(spec), spec.seed,
                                 static_cast<unsigned>(spec.total_nodes()),
                                 chunk_size, kNodeFields);
}

void compute_unit(const FleetModel& model, std::uint64_t chunk_lo,
                  std::uint64_t chunk_hi, unsigned chunk_size,
                  std::ostream& out) {
  const std::uint64_t nodes = model.nodes();
  const std::uint64_t run_id = fleet_run_identity(model.spec(), chunk_size);
  std::vector<double> fields;
  for (std::uint64_t ci = chunk_lo; ci < chunk_hi; ++ci) {
    const unsigned count = fleet_chunk_nodes(nodes, chunk_size, ci);
    fields.assign(static_cast<std::size_t>(count) * kNodeFields, 0.0);
    for (unsigned j = 0; j < count; ++j) {
      const std::uint64_t node = ci * chunk_size + j;
      Rng rng = faults::mc_system_rng(model.spec().seed,
                                      static_cast<unsigned>(node));
      model.node_fields(node, rng,
                        fields.data() + static_cast<std::size_t>(j) *
                                            kNodeFields);
    }
    faults::mc_checkpoint_append(out, run_id, ci, count, fields);
  }
}

std::vector<WorkUnit> shard_plan(std::uint64_t nchunks, unsigned shards) {
  if (shards == 0) shards = 1;
  std::vector<WorkUnit> plan(shards);
  const std::uint64_t base = nchunks / shards;
  const std::uint64_t extra = nchunks % shards;
  std::uint64_t lo = 0;
  for (unsigned s = 0; s < shards; ++s) {
    const std::uint64_t len = base + (s < extra ? 1 : 0);
    plan[s] = {lo, lo + len};
    lo += len;
  }
  return plan;
}

Coordinator::Coordinator(const FleetSpec& spec) : model_(spec) {}

FleetResult Coordinator::run(const RunOptions& opts) const {
  const unsigned chunk_size =
      opts.chunk_size ? opts.chunk_size : faults::kMcDefaultChunkSize;
  const std::uint64_t nodes = model_.nodes();
  const std::uint64_t nchunks = fleet_chunk_count(nodes, chunk_size);
  const std::uint64_t run_id = fleet_run_identity(model_.spec(), chunk_size);
  const std::vector<WorkUnit> plan = shard_plan(nchunks, opts.shards);
  std::vector<std::string> blobs(plan.size());

  if (opts.mode == RunOptions::Mode::kInProcess) {
    runner::ThreadPool pool(
        opts.threads ? opts.threads
                     : runner::ThreadPool::default_thread_count());
    for (std::size_t s = 0; s < plan.size(); ++s) {
      pool.submit([this, &plan, &blobs, chunk_size, s] {
        std::ostringstream os;
        compute_unit(model_, plan[s].chunk_lo, plan[s].chunk_hi, chunk_size,
                     os);
        blobs[s] = os.str();
      });
    }
    pool.wait_idle();
  } else {
    if (opts.worker_binary.empty() || opts.work_dir.empty()) {
      throw std::runtime_error(
          "fleet: worker-process mode needs worker_binary and work_dir");
    }
    std::filesystem::create_directories(opts.work_dir);
    const std::string spec_path = opts.work_dir + "/spec.json";
    {
      std::ofstream out(spec_path, std::ios::binary | std::ios::trunc);
      out << to_json(model_.spec()).dump(2) << "\n";
      if (!out) throw std::runtime_error("fleet: cannot write " + spec_path);
    }
    std::vector<std::pair<pid_t, std::size_t>> children;
    std::vector<std::string> unit_paths(plan.size());
    for (std::size_t s = 0; s < plan.size(); ++s) {
      if (plan[s].chunk_lo == plan[s].chunk_hi) continue;
      unit_paths[s] =
          opts.work_dir + "/unit-" + std::to_string(s) + ".mcchunks";
      children.emplace_back(
          spawn(opts.worker_binary,
                {"--worker", "--spec", spec_path, "--chunk-lo",
                 std::to_string(plan[s].chunk_lo), "--chunk-hi",
                 std::to_string(plan[s].chunk_hi), "--chunk-size",
                 std::to_string(chunk_size), "--out", unit_paths[s]}),
          s);
    }
    for (const auto& [pid, s] : children) {
      int status = 0;
      if (::waitpid(pid, &status, 0) < 0 || !WIFEXITED(status) ||
          WEXITSTATUS(status) != 0) {
        throw std::runtime_error("fleet: worker for unit " +
                                 std::to_string(s) + " failed");
      }
    }
    for (std::size_t s = 0; s < plan.size(); ++s) {
      if (!unit_paths[s].empty()) blobs[s] = slurp(unit_paths[s]);
    }
  }

  const auto chunk_systems = [&](std::uint64_t ci) {
    return fleet_chunk_nodes(nodes, chunk_size, ci);
  };
  std::unordered_map<std::uint64_t, std::vector<double>> chunks;
  for (const std::string& blob : blobs) {
    std::istringstream is(blob);
    chunks.merge(faults::mc_checkpoint_load(is, run_id, nchunks,
                                            chunk_systems, kNodeFields));
  }

  FleetAccumulator acc(model_);
  for (std::uint64_t ci = 0; ci < nchunks; ++ci) {
    const auto it = chunks.find(ci);
    if (it == chunks.end()) {
      throw std::runtime_error("fleet: work units left chunk " +
                               std::to_string(ci) + " uncomputed");
    }
    const unsigned count = chunk_systems(ci);
    for (unsigned j = 0; j < count; ++j) {
      acc.add(ci * chunk_size + j,
              it->second.data() + static_cast<std::size_t>(j) * kNodeFields);
    }
    if (opts.heartbeat && opts.heartbeat->enabled()) {
      obs::Heartbeat::Tick t;
      t.phase = "fleet";
      t.done = ci + 1;
      t.total = nchunks;
      t.force = ci + 1 == nchunks;
      opts.heartbeat->tick(t);
    }
  }
  return acc.finalize();
}

}  // namespace eccsim::fleet
