file(REMOVE_RECURSE
  "CMakeFiles/ablation_ecc_cache.dir/ablation_ecc_cache.cpp.o"
  "CMakeFiles/ablation_ecc_cache.dir/ablation_ecc_cache.cpp.o.d"
  "ablation_ecc_cache"
  "ablation_ecc_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ecc_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
