// CRC-32 (IEEE 802.3, polynomial 0xEDB88320), table-driven and
// dependency-free.  Protects every .ecctrace header, chunk payload, and
// footer so corruption is detected per chunk instead of crashing a sweep.
#pragma once

#include <cstddef>
#include <cstdint>

namespace eccsim::tracefile {

/// CRC of `len` bytes at `data`.  Pass a previous result as `seed` to
/// continue a running CRC over discontiguous buffers.
std::uint32_t crc32(const void* data, std::size_t len, std::uint32_t seed = 0);

}  // namespace eccsim::tracefile
