#include "faults/mc_engine.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cinttypes>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "obs/heartbeat.hpp"
#include "obs/manifest.hpp"
#include "runner/thread_pool.hpp"
#include "stats/stats.hpp"

namespace eccsim::faults {

namespace {

/// FNV-1a over the tag string, used to match checkpoint lines to runs.
std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t mix64(std::uint64_t x) {
  SplitMix64 sm(x);
  return sm.next();
}

constexpr const char* kChunkLineTag = "mcchunk1";

/// Loads every complete chunk recorded for `run_id` from a file path;
/// a missing or unreadable file is an empty (fresh) checkpoint.
std::unordered_map<std::uint64_t, std::vector<double>> load_checkpoint(
    const std::string& path, std::uint64_t run_id, std::uint64_t nchunks,
    const std::function<unsigned(std::uint64_t)>& chunk_systems,
    std::size_t nfields) {
  std::ifstream in(path);
  if (!in) return {};
  return mc_checkpoint_load(in, run_id, nchunks, chunk_systems, nfields);
}

/// Test hook: per-chunk sleep so kill-and-resume checks can reliably
/// interrupt an otherwise fast smoke run (scripts/mc_resume_check.sh).
long chunk_delay_ms() {
  static const long delay = [] {
    const char* v = std::getenv("ECCSIM_MC_CHUNK_DELAY_MS");
    return v != nullptr ? std::strtol(v, nullptr, 10) : 0L;
  }();
  return delay;
}

void maybe_delay() {
  const long ms = chunk_delay_ms();
  if (ms <= 0) return;
  timespec ts{ms / 1000, (ms % 1000) * 1000000L};
  nanosleep(&ts, nullptr);
}

double now_seconds() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

/// mc.* observability; every pointer is null when stats are off.
struct McStats {
  stats::Counter* systems_simulated = nullptr;
  stats::Counter* systems_merged = nullptr;
  stats::Counter* chunks_merged = nullptr;
  stats::Counter* chunks_loaded = nullptr;
  stats::Counter* chunks_skipped = nullptr;
  stats::Counter* early_stops = nullptr;
  stats::Distribution* chunk_seconds = nullptr;

  explicit McStats(stats::Registry* reg) {
    if (reg == nullptr) return;
    systems_simulated = reg->counter("mc.systems_simulated");
    systems_merged = reg->counter("mc.systems_merged");
    chunks_merged = reg->counter("mc.chunks_merged");
    chunks_loaded = reg->counter("mc.chunks_loaded");
    chunks_skipped = reg->counter("mc.chunks_skipped");
    early_stops = reg->counter("mc.early_stops");
    chunk_seconds = reg->distribution("mc.chunk_seconds");
  }
};

}  // namespace

std::uint64_t mc_run_identity(const std::string& tag, std::uint64_t seed,
                              unsigned systems, unsigned chunk_size,
                              std::size_t nfields) {
  std::uint64_t id = fnv1a(tag);
  id = mix64(id ^ seed);
  id = mix64(id ^ systems);
  id = mix64(id ^ chunk_size);
  id = mix64(id ^ nfields);
  return id;
}

void mc_checkpoint_append(std::ostream& out, std::uint64_t run_id,
                          std::uint64_t index, unsigned count,
                          const std::vector<double>& fields) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%s %016" PRIx64 " %" PRIu64 " %u",
                kChunkLineTag, run_id, index, count);
  out << buf;
  for (const double d : fields) {
    std::snprintf(buf, sizeof buf, " %016" PRIx64,
                  std::bit_cast<std::uint64_t>(d));
    out << buf;
  }
  // One line per chunk, flushed immediately: a kill can lose at most the
  // line being written, and the loader discards a partial trailer.
  out << '\n' << std::flush;
}

std::unordered_map<std::uint64_t, std::vector<double>> mc_checkpoint_load(
    std::istream& in, std::uint64_t run_id, std::uint64_t nchunks,
    const std::function<unsigned(std::uint64_t)>& chunk_systems,
    std::size_t nfields) {
  std::unordered_map<std::uint64_t, std::vector<double>> loaded;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream is(line);
    std::string word;
    std::uint64_t id = 0, index = 0, count = 0;
    is >> word >> std::hex >> id >> std::dec >> index >> count;
    if (!is || word != kChunkLineTag || id != run_id) continue;
    if (index >= nchunks || count != chunk_systems(index)) continue;
    if (loaded.count(index) != 0) continue;  // identical by construction
    std::vector<double> fields;
    fields.reserve(count * nfields);
    bool ok = true;
    for (std::uint64_t k = 0; k < count * nfields; ++k) {
      std::uint64_t bits = 0;
      if (!(is >> std::hex >> bits)) {
        ok = false;  // partial line (killed mid-write): discard
        break;
      }
      fields.push_back(std::bit_cast<double>(bits));
    }
    if (ok) loaded.emplace(index, std::move(fields));
  }
  return loaded;
}

Rng mc_system_rng(std::uint64_t seed, unsigned index) {
  SplitMix64 sm(seed ^ (0x9e3779b97f4a7c15ULL * (index + 1)));
  return Rng(sm.next());
}

std::uint64_t mc_sample_key(std::uint64_t seed, unsigned index) {
  // Different mixing path than mc_system_rng (extra round, distinct
  // constant) so retention keys are uncorrelated with the sample streams.
  SplitMix64 sm(seed ^ (0xbf58476d1ce4e5b9ULL * (index + 1)));
  sm.next();
  return sm.next();
}

McRunInfo mc_run(unsigned systems, std::uint64_t seed, std::size_t nfields,
                 const std::string& tag, const McOptions& opts,
                 const McSystemFn& fn, const McMergeFn& merge,
                 const McRelCiFn& rel_ci) {
  McRunInfo info;
  info.systems_requested = systems;
  if (systems == 0) return info;

  const unsigned chunk =
      opts.chunk_size != 0 ? opts.chunk_size : kMcDefaultChunkSize;
  const std::uint64_t nchunks = (systems + chunk - 1) / chunk;
  info.chunks_total = nchunks;
  const auto chunk_base = [chunk](std::uint64_t ci) {
    return static_cast<unsigned>(ci * chunk);
  };
  const auto chunk_systems = [&](std::uint64_t ci) {
    return std::min(chunk, systems - chunk_base(ci));
  };

  McStats mc(opts.stats);

  // --- checkpoint: restore already-completed chunks ------------------------
  const std::uint64_t run_id =
      mc_run_identity(tag, seed, systems, chunk, nfields);
  std::unordered_map<std::uint64_t, std::vector<double>> loaded;
  std::ofstream ckpt;
  if (!opts.checkpoint_path.empty()) {
    loaded = load_checkpoint(opts.checkpoint_path, run_id, nchunks,
                             chunk_systems, nfields);
    ckpt.open(opts.checkpoint_path, std::ios::app);
    if (ckpt && loaded.empty()) {
      ckpt << "# eccsim mc checkpoint: tag=" << tag << " seed=" << seed
           << " systems=" << systems << " chunk=" << chunk
           << " nfields=" << nfields << '\n'
           << std::flush;
    }
    if (!loaded.empty()) {
      std::fprintf(stderr, "[mc] %s: resuming %zu/%" PRIu64
                   " chunks from %s\n",
                   tag.c_str(), loaded.size(), nchunks,
                   opts.checkpoint_path.c_str());
      obs::note_resumed();
    }
  }

  const auto compute_chunk = [&](std::uint64_t ci,
                                 const std::atomic<std::uint64_t>* stop_before)
      -> std::vector<double> {
    maybe_delay();
    const unsigned base = chunk_base(ci);
    const unsigned count = chunk_systems(ci);
    std::vector<double> fields(static_cast<std::size_t>(count) * nfields,
                               0.0);
    for (unsigned k = 0; k < count; ++k) {
      // Bail quickly once the merger has decided to stop before this
      // chunk; the partial buffer is discarded, never merged.
      if (stop_before != nullptr &&
          ci >= stop_before->load(std::memory_order_relaxed)) {
        return {};
      }
      Rng rng = mc_system_rng(seed, base + k);
      fn(base + k, rng, fields.data() + static_cast<std::size_t>(k) * nfields);
    }
    return fields;
  };

  // Merges one completed chunk (strict index order across calls) and
  // evaluates the early-stop rule; returns true to keep going.
  std::vector<double> ci_series;
  obs::Heartbeat& hb = obs::Heartbeat::global();
  const auto heartbeat_tick = [&](bool run_complete) {
    if (!hb.enabled()) return;
    obs::Heartbeat::Tick t;
    t.phase = "mc:" + tag;
    t.done = info.systems_merged;
    // Early stop ends the run with systems_merged < systems; shrink the
    // plan so the snapshot reads as final rather than abandoned.
    t.total = run_complete ? info.systems_merged : systems;
    if (rel_ci && info.chunks_merged > 0) t.rel_ci = info.final_rel_ci;
    t.counters = {
        {"chunks_merged", static_cast<double>(info.chunks_merged)},
        {"chunks_loaded", static_cast<double>(info.chunks_loaded)},
    };
    t.force = run_complete;
    hb.tick(t);
  };
  const auto merge_chunk = [&](std::uint64_t ci,
                               const std::vector<double>& fields,
                               bool was_loaded) {
    const unsigned base = chunk_base(ci);
    const unsigned count = chunk_systems(ci);
    for (unsigned k = 0; k < count; ++k) {
      merge(base + k, fields.data() + static_cast<std::size_t>(k) * nfields);
    }
    info.systems_merged += count;
    ++info.chunks_merged;
    if (was_loaded) {
      ++info.chunks_loaded;
      if (mc.chunks_loaded != nullptr) mc.chunks_loaded->inc();
    }
    if (mc.chunks_merged != nullptr) mc.chunks_merged->inc();
    if (mc.systems_merged != nullptr) mc.systems_merged->inc(count);
    if (!was_loaded && ckpt.is_open()) {
      mc_checkpoint_append(ckpt, run_id, ci, count, fields);
    }
    if (rel_ci) {
      info.final_rel_ci = rel_ci();
      ci_series.push_back(info.final_rel_ci);
      if (opts.target_rel_ci > 0.0 &&
          info.systems_merged >= opts.min_systems &&
          info.final_rel_ci <= opts.target_rel_ci) {
        info.early_stopped = true;
        heartbeat_tick(true);
        return false;
      }
    }
    heartbeat_tick(false);
    return true;
  };

  const unsigned threads = opts.threads != 0
                               ? opts.threads
                               : runner::ThreadPool::default_thread_count();
  const bool inline_run = threads <= 1 ||
                          runner::ThreadPool::on_worker_thread() ||
                          nchunks <= 1;

  if (inline_run) {
    for (std::uint64_t ci = 0; ci < nchunks; ++ci) {
      const auto it = loaded.find(ci);
      const bool was_loaded = it != loaded.end();
      std::vector<double> fields;
      if (was_loaded) {
        fields = std::move(it->second);
      } else {
        const double t0 = now_seconds();
        fields = compute_chunk(ci, nullptr);
        if (mc.chunk_seconds != nullptr) {
          mc.chunk_seconds->add(now_seconds() - t0);
        }
        if (mc.systems_simulated != nullptr) {
          mc.systems_simulated->inc(chunk_systems(ci));
        }
      }
      if (!merge_chunk(ci, fields, was_loaded)) {
        info.chunks_total = nchunks;
        break;
      }
    }
  } else {
    std::mutex mu;
    std::condition_variable cv;
    std::map<std::uint64_t, std::vector<double>> ready;
    std::atomic<std::uint64_t> stop_before{nchunks};
    {
      runner::ThreadPool pool(std::min<unsigned>(
          threads, static_cast<unsigned>(nchunks)));
      for (std::uint64_t ci = 0; ci < nchunks; ++ci) {
        if (loaded.count(ci) != 0) continue;  // merged from the checkpoint
        pool.submit([&, ci] {
          const double t0 = now_seconds();
          std::vector<double> fields = compute_chunk(ci, &stop_before);
          const double dt = now_seconds() - t0;
          std::lock_guard<std::mutex> lock(mu);
          if (!fields.empty() || chunk_systems(ci) == 0) {
            // Timings and simulated-system counts are recorded under the
            // merge lock so the registry stays single-writer.
            if (mc.chunk_seconds != nullptr) mc.chunk_seconds->add(dt);
            if (mc.systems_simulated != nullptr) {
              mc.systems_simulated->inc(chunk_systems(ci));
            }
          }
          ready.emplace(ci, std::move(fields));
          cv.notify_all();
        });
      }
      for (std::uint64_t ci = 0; ci < nchunks; ++ci) {
        const auto it = loaded.find(ci);
        const bool was_loaded = it != loaded.end();
        std::vector<double> fields;
        if (was_loaded) {
          fields = std::move(it->second);
        } else {
          std::unique_lock<std::mutex> lock(mu);
          cv.wait(lock, [&] { return ready.count(ci) != 0; });
          fields = std::move(ready.at(ci));
          ready.erase(ci);
        }
        bool keep_going;
        {
          // merge_chunk touches the registry; hold the lock so in-flight
          // workers recording timings cannot interleave.
          std::lock_guard<std::mutex> lock(mu);
          keep_going = merge_chunk(ci, fields, was_loaded);
        }
        if (!keep_going) {
          stop_before.store(ci + 1, std::memory_order_relaxed);
          break;
        }
      }
      // ~ThreadPool drains the remaining (bailing) chunk tasks.
    }
  }

  const std::uint64_t skipped = nchunks - info.chunks_merged;
  if (info.early_stopped) {
    if (mc.early_stops != nullptr) mc.early_stops->inc();
    if (mc.chunks_skipped != nullptr) mc.chunks_skipped->inc(skipped);
  }
  if (opts.stats != nullptr && !ci_series.empty()) {
    opts.stats->add_series("mc.rel_ci." + tag, std::move(ci_series));
  }
  return info;
}

void parallel_systems(unsigned systems, std::uint64_t seed,
                      const std::function<void(unsigned, Rng&)>& fn) {
  const unsigned threads = runner::ThreadPool::default_thread_count();
  if (threads <= 1 || systems <= 1 ||
      runner::ThreadPool::on_worker_thread()) {
    for (unsigned i = 0; i < systems; ++i) {
      Rng rng = mc_system_rng(seed, i);
      fn(i, rng);
    }
    return;
  }
  const unsigned chunk = kMcDefaultChunkSize;
  const unsigned nchunks = (systems + chunk - 1) / chunk;
  runner::ThreadPool pool(std::min(threads, nchunks));
  for (unsigned ci = 0; ci < nchunks; ++ci) {
    pool.submit([&, ci] {
      const unsigned hi = std::min(systems, (ci + 1) * chunk);
      for (unsigned i = ci * chunk; i < hi; ++i) {
        Rng rng = mc_system_rng(seed, i);
        fn(i, rng);
      }
    });
  }
  pool.wait_idle();
}

}  // namespace eccsim::faults
