# Empty dependencies file for fig12_dynamic_epi_quad.
# This may be replaced when dependencies are built.
