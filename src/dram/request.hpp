// Memory request / completion types shared between the DRAM simulator and
// everything above it (LLC, ECC schemes, the ECC Parity overlay).
#pragma once

#include <cstdint>

namespace eccsim::dram {

/// Physical location of one memory line: (channel, rank, bank, row, column),
/// where "row" is a logical 4KB row (one physical page, Fig. 4 of the paper)
/// and "col" indexes lines within that row.
struct DramAddress {
  std::uint32_t channel = 0;
  std::uint32_t rank = 0;
  std::uint32_t bank = 0;
  std::uint64_t row = 0;
  std::uint32_t col = 0;

  friend bool operator==(const DramAddress&, const DramAddress&) = default;
};

/// What kind of line a request touches.  Purely bookkeeping: the DRAM
/// simulator treats all classes identically, but the statistics separate
/// demand traffic from ECC-maintenance traffic (Figs. 16/17 count both).
enum class LineClass : std::uint8_t {
  kData = 0,      ///< application data
  kEccParity,     ///< an ECC parity line (Sec. III-A)
  kEccCorrection, ///< a materialized ECC-correction line (Sec. III-B)
  kEccOther,      ///< baseline-scheme ECC lines (LOT-ECC tier 2, Multi-ECC)
};

/// One transaction presented to a memory channel.  Every request moves one
/// memory line (the configured line size; a 128B line on a 36-device
/// chipkill system counts as two 64B "accesses" in the paper's Fig. 16
/// metric -- that normalization happens in the statistics layer).
struct MemRequest {
  std::uint64_t id = 0;
  DramAddress addr;
  bool is_write = false;
  LineClass line_class = LineClass::kData;
  std::uint64_t enqueue_cycle = 0;
};

/// Completion record handed back to the requester.
struct MemCompletion {
  std::uint64_t id = 0;
  bool is_write = false;
  std::uint64_t finish_cycle = 0;
};

}  // namespace eccsim::dram
