#!/bin/sh
# ecclint gate: build (if needed) and self-run the repo's static-analysis
# suite against the committed baseline.
#
# Usage: ./scripts/ecclint_check.sh [path-to-ecclint]
#   default binary: build/tools/ecclint/ecclint
#
# Exit 0 means every finding in the tree is either fixed, suppressed at
# the site with a reason, or grandfathered in tools/ecclint/baseline.txt
# -- and every baseline entry still fires (the ratchet: stale entries
# must be deleted, so the baseline only shrinks).  See
# docs/STATIC_ANALYSIS.md for the rule catalog and workflow.
set -e

tool=${1:-build/tools/ecclint/ecclint}
cd "$(dirname "$0")/.."

if [ ! -x "$tool" ]; then
  echo "[ecclint] $tool missing; building it" >&2
  cmake -B build -S . >/dev/null
  cmake --build build -j "$(nproc)" --target ecclint >/dev/null
fi

echo "[ecclint] self-run over src/ bench/ tools/" >&2
"$tool" --root . --baseline tools/ecclint/baseline.txt

echo "[ecclint] clean" >&2
