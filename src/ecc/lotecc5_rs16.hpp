// The modified LOT-ECC5 encoding of Sec. VI-D.
//
// Plain LOT-ECC detects with *intra-chip* checksums, so it cannot detect
// address-decoder errors (a chip returning the right data for the wrong
// row passes its own checksum).  Sec. VI-D fixes this for banks not yet
// recorded faulty by replacing LOT-ECC's inter-device parity with a
// Reed-Solomon code over GF(2^16):
//
//   - each word is eight 16-bit symbols interleaved evenly across the four
//     x16 data chips (two symbols per chip per word);
//   - the code computes two 16-bit check symbols per word;
//   - the FIRST check symbol is stored in the x8 ECC chip of the rank, so
//     inter-chip error detection happens on the fly with every read --
//     this is what catches address errors;
//   - the SECOND check symbol and the intra-chip checksums are stored via
//     ECC parities (they are the correction bits);
//   - correction localizes the failed chip with the intra-chip checksums
//     and erasure-decodes with both check symbols (2 erasures = the two
//     symbols a failed x16 chip contributes to each word).
//
// Capacity is unchanged from LOT-ECC5: detection 8B/line (12.5%),
// correction 16B/line (R = 0.25), so Table III is unaffected.
#pragma once

#include <memory>

#include "ecc/codec.hpp"

namespace eccsim::ecc {

/// Builds the Sec. VI-D codec.  Drop-in replacement for
/// make_codec(kLotEcc5) wherever address-error detection matters.
std::unique_ptr<LineCodec> make_lotecc5_rs16_codec();

}  // namespace eccsim::ecc
