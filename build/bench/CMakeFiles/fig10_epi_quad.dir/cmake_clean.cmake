file(REMOVE_RECURSE
  "CMakeFiles/fig10_epi_quad.dir/fig10_epi_quad.cpp.o"
  "CMakeFiles/fig10_epi_quad.dir/fig10_epi_quad.cpp.o.d"
  "fig10_epi_quad"
  "fig10_epi_quad.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_epi_quad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
