file(REMOVE_RECURSE
  "CMakeFiles/sec6b_hpc_stall.dir/sec6b_hpc_stall.cpp.o"
  "CMakeFiles/sec6b_hpc_stall.dir/sec6b_hpc_stall.cpp.o.d"
  "sec6b_hpc_stall"
  "sec6b_hpc_stall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec6b_hpc_stall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
