// Table III: capacity overheads of all evaluated schemes, including the
// Monte Carlo end-of-life averages for the ECC Parity configurations.
#include <cstdio>

#include "bench_common.hpp"
#include "common/units.hpp"
#include "faults/montecarlo.hpp"

using namespace eccsim;

namespace {

/// EOL-average overhead for a parity scheme: healthy overhead plus the
/// Monte Carlo expected materialized fraction at 2x parity allocation.
std::string eol_cell(const ecc::SchemeDesc& d) {
  if (!d.uses_ecc_parity) return "--";
  faults::SystemShape shape;
  shape.channels = d.channels;
  shape.ranks_per_channel = d.ranks_per_channel;
  shape.chips_per_rank = d.chips_per_rank;
  const auto res = faults::eol_materialized_fraction(
      shape, faults::ddr3_vendor_average(), 20'000,
      7 * units::kHoursPerYear, 3);
  return Table::pct(d.capacity_overhead_eol(res.mean_fraction));
}

}  // namespace

int main(int argc, char** argv) {
  eccsim::bench::init(argc, argv);
  struct Row {
    ecc::SchemeId id;
    ecc::SystemScale scale;
    const char* label;
    const char* paper;
  };
  const Row rows[] = {
      {ecc::SchemeId::kChipkill36, ecc::SystemScale::kQuadEquivalent,
       "36-device commercial chipkill", "12.5%"},
      {ecc::SchemeId::kChipkill18, ecc::SystemScale::kQuadEquivalent,
       "18-device commercial chipkill", "12.5%"},
      {ecc::SchemeId::kLotEcc9, ecc::SystemScale::kQuadEquivalent,
       "LOT-ECC9", "26.5%"},
      {ecc::SchemeId::kMultiEcc, ecc::SystemScale::kQuadEquivalent,
       "Multi-ECC", "12.9%"},
      {ecc::SchemeId::kLotEcc5, ecc::SystemScale::kQuadEquivalent,
       "LOT-ECC5", "40.6%"},
      {ecc::SchemeId::kLotEcc5Parity, ecc::SystemScale::kQuadEquivalent,
       "8 chan LOT-ECC5 + ECC Parity", "16.5%, EOL 16.7%"},
      {ecc::SchemeId::kLotEcc5Parity, ecc::SystemScale::kDualEquivalent,
       "4 chan LOT-ECC5 + ECC Parity", "21.9%, EOL 22.1%"},
      {ecc::SchemeId::kRaim, ecc::SystemScale::kQuadEquivalent, "RAIM",
       "40.6%"},
      {ecc::SchemeId::kRaimParity, ecc::SystemScale::kQuadEquivalent,
       "10 chan RAIM + ECC Parity", "18.8%, EOL 19.1%"},
      {ecc::SchemeId::kRaimParity, ecc::SystemScale::kDualEquivalent,
       "5 chan RAIM + ECC Parity", "26.6%, EOL 26.9%"},
  };
  Table t({"scheme", "overhead", "EOL avg", "paper"});
  for (const Row& row : rows) {
    const auto d = ecc::make_scheme(row.id, row.scale);
    t.add_row({row.label, Table::pct(d.capacity_overhead()), eol_cell(d),
               row.paper});
  }
  std::printf("Table III -- Capacity overheads\n\n");
  bench::emit("table3_capacity", t);
  return 0;
}
