#include "dram/channel.hpp"

#include <algorithm>
#include <stdexcept>

#include "stats/scope.hpp"

namespace eccsim::dram {

namespace {

/// Trace-event labels per command; ECC-maintenance classes carry the
/// "eccparity" category so parity traffic is filterable in Perfetto.
const char* trace_cat(LineClass lc) {
  return lc == LineClass::kData ? "dram" : "dram,eccparity";
}

const char* trace_name(bool is_write, LineClass lc) {
  switch (lc) {
    case LineClass::kData: return is_write ? "WR" : "RD";
    case LineClass::kEccParity:
      return is_write ? "PARITY_WR" : "PARITY_RD";
    case LineClass::kEccCorrection:
      return is_write ? "ECC_CORR_WR" : "ECC_CORR_RD";
    case LineClass::kEccOther: return is_write ? "ECC_WR" : "ECC_RD";
  }
  return "?";
}

}  // namespace

const char* to_string(CmdKind kind) {
  switch (kind) {
    case CmdKind::kActivate: return "ACT";
    case CmdKind::kRead: return "RD";
    case CmdKind::kWrite: return "WR";
    case CmdKind::kPrecharge: return "PRE";
    case CmdKind::kRefresh: return "REF";
  }
  return "?";
}

Channel::Channel(const ChannelConfig& cfg) : cfg_(cfg) {
  if (cfg_.ranks == 0 || cfg_.banks == 0) {
    throw std::invalid_argument("Channel: ranks/banks must be nonzero");
  }
  if (cfg_.device.bank_groups == 0) {
    throw std::invalid_argument("Channel: device.bank_groups must be nonzero");
  }
  ranks_.resize(cfg_.ranks);
  for (auto& r : ranks_) {
    r.banks.resize(cfg_.banks);
    r.next_act_rrd_l.resize(cfg_.device.bank_groups, 0);
    r.next_cas_group.resize(cfg_.device.bank_groups, 0);
    r.next_refresh = cfg_.device.timing.tREFI;
  }
}

bool Channel::enqueue(const MemRequest& req) {
  if (!can_accept()) return false;
  if (req.addr.rank >= cfg_.ranks || req.addr.bank >= cfg_.banks) {
    throw std::out_of_range("Channel::enqueue: rank/bank out of range");
  }
  queue_.push_back(req);
  return true;
}

std::uint64_t Channel::earliest_act(const MemRequest& req,
                                    std::uint64_t now) const {
  const auto& t = cfg_.device.timing;
  const RankState& rank = ranks_[req.addr.rank];
  const BankState& bank = rank.banks[req.addr.bank];

  if (cfg_.row_policy == RowPolicy::kOpenPage && bank.row_open &&
      bank.open_row == req.addr.row &&
      now <= bank.last_use + cfg_.open_row_timeout) {
    // Row hit: no ACT needed; the comparable "start" time is the CAS gate.
    return std::max(now, bank.next_cas);
  }

  std::uint64_t act = std::max(now, bank.next_act);
  if (cfg_.row_policy == RowPolicy::kOpenPage && bank.row_open) {
    // Row conflict: precharge the open row first.
    act = std::max(act, std::max(now, bank.earliest_pre) + t.tRP);
  }
  act = std::max(act, rank.next_act_rrd_s);
  act = std::max(act,
                 rank.next_act_rrd_l[cfg_.device.bank_group_of(req.addr.bank)]);
  // tFAW: a 5th ACT must wait for the oldest of the last 4 to age out.
  if (rank.act_times.size() >= 4) {
    act = std::max(act, rank.act_times.front() + t.tFAW);
  }
  // Power-down exit: if the rank has been idle past the timeout it is in
  // precharge power-down and costs tXP to wake.
  if (cfg_.powerdown_enabled && rank.active_until + cfg_.idle_pd_timeout < now) {
    act = std::max(act, now + t.tXP);
  }
  return act;
}

void Channel::charge_refresh(RankState& rank, std::uint32_t rank_idx) {
  stats_.energy.refresh_pj +=
      cfg_.device.energy.refresh_pj * cfg_.chips_per_rank;
  if (hooks_) hooks_->refreshes->inc();
  if (observer_) {
    emit_refresh(rank_idx, rank.next_refresh,
                 cfg_.device.refresh_set_of_ref(rank.refs_issued));
  }
  ++rank.refs_issued;
  rank.next_refresh += cfg_.device.timing.tREFI;
}

std::uint64_t Channel::apply_refresh(RankState& rank, std::uint32_t rank_idx,
                                     std::uint32_t bank_idx,
                                     std::uint64_t t_act) {
  const auto& t = cfg_.device.timing;
  // Consume refresh intervals that elapsed before this activate; each one
  // blocks its target banks for tRFC at its scheduled point if the ACT
  // would land inside the blackout.
  while (rank.next_refresh + t.tRFC <= t_act) {
    charge_refresh(rank, rank_idx);
  }
  if (t_act >= rank.next_refresh) {
    // The ACT falls inside the pending refresh's blackout window.  Under
    // all-bank refresh every ACT waits; under same-bank refresh (REFsb)
    // only ACTs to the refreshed bank set do -- others proceed, and the
    // pending REF stays unconsumed until time passes it.
    if (cfg_.device.refresh == RefreshPolicy::kAllBank ||
        cfg_.device.refresh_set_of_ref(rank.refs_issued) ==
            cfg_.device.refresh_set_of_bank(bank_idx)) {
      const std::uint64_t blackout_end = rank.next_refresh + t.tRFC;
      charge_refresh(rank, rank_idx);
      t_act = blackout_end;
    }
  }
  return t_act;
}

void Channel::emit_refresh(std::uint32_t rank_idx, std::uint64_t cycle,
                           std::uint32_t bank_set) {
  DramCommand cmd;
  cmd.kind = CmdKind::kRefresh;
  cmd.cycle = cycle;
  cmd.rank = rank_idx;
  cmd.bank = bank_set;
  observer_->on_command(cmd);
}

Channel::BackgroundParts Channel::background_pj_between(
    const RankState& rank, std::uint64_t from, std::uint64_t until) const {
  const auto& e = cfg_.device.energy;
  const double chips = cfg_.chips_per_rank;
  BackgroundParts parts;

  // Split [from, until) into: active-standby while any bank is open
  // (<= active_until), then precharge standby for the idle timeout, then
  // power-down for the remainder.
  if (from < rank.active_until) {
    const std::uint64_t active_span = std::min(until, rank.active_until) - from;
    parts.active_pj = static_cast<double>(active_span) * e.bg_act_pj_cyc *
                      chips;
    from += active_span;
  }
  if (from < until) {
    const std::uint64_t idle_span = until - from;
    std::uint64_t standby_span = idle_span;
    std::uint64_t pd_span = 0;
    if (cfg_.powerdown_enabled) {
      // The rank idles in precharge standby for idle_pd_timeout cycles
      // after its last precharge, then drops into power-down.
      const std::uint64_t already_idle = from - rank.active_until;
      const std::uint64_t timeout = cfg_.idle_pd_timeout;
      if (already_idle >= timeout) {
        standby_span = 0;
        pd_span = idle_span;
      } else if (idle_span > timeout - already_idle) {
        standby_span = timeout - already_idle;
        pd_span = idle_span - standby_span;
      }
    }
    parts.idle_pj = static_cast<double>(standby_span) * e.bg_pre_pj_cyc *
                        chips +
                    static_cast<double>(pd_span) * e.bg_pd_pj_cyc * chips;
  }
  return parts;
}

void Channel::account_background(RankState& rank, std::uint64_t until) {
  if (until <= rank.bg_accounted_until) return;
  const BackgroundParts parts =
      background_pj_between(rank, rank.bg_accounted_until, until);
  // Two separate adds, matching the pre-refactor accumulation order
  // exactly (x += 0.0 is exact for the finite non-negative tallies here).
  stats_.energy.background_pj += parts.active_pj;
  stats_.energy.background_pj += parts.idle_pj;
  rank.bg_accounted_until = until;
}

ChannelStats Channel::peek_stats(std::uint64_t now) const {
  ChannelStats s = stats_;
  const auto& t = cfg_.device.timing;
  for (const RankState& rank : ranks_) {
    // Residual refresh intervals finalize(now) would still charge.
    std::uint64_t next_refresh = rank.next_refresh;
    while (next_refresh < now) {
      s.energy.refresh_pj +=
          cfg_.device.energy.refresh_pj * cfg_.chips_per_rank;
      next_refresh += t.tREFI;
    }
    if (now > rank.bg_accounted_until) {
      const BackgroundParts parts =
          background_pj_between(rank, rank.bg_accounted_until, now);
      s.energy.background_pj += parts.active_pj;
      s.energy.background_pj += parts.idle_pj;
    }
  }
  return s;
}

void Channel::attach_stats(stats::Registry& reg, const std::string& prefix,
                           stats::Tracer* tracer, std::uint32_t tracer_tid) {
  hooks_ = std::make_unique<StatHooks>();
  hooks_->acts = reg.counter(prefix + ".acts");
  hooks_->refreshes = reg.counter(prefix + ".refreshes");
  hooks_->bank_acts.reserve(std::size_t{cfg_.ranks} * cfg_.banks);
  for (std::uint32_t r = 0; r < cfg_.ranks; ++r) {
    for (std::uint32_t b = 0; b < cfg_.banks; ++b) {
      hooks_->bank_acts.push_back(reg.counter(
          prefix + ".bank" + std::to_string(r * cfg_.banks + b) + ".acts"));
    }
  }
  hooks_->read_latency =
      reg.histogram(prefix + ".read_latency", 0.0, 2000.0, 100);
  hooks_->queue_depth = reg.distribution(prefix + ".queue_depth");

  // Polled gauges over the counters the channel keeps anyway for its
  // functional results, so the hot path is not touched twice.  Energy
  // gauges go through peek_stats so every epoch sample sees background
  // and refresh energy integrated up to the sample cycle.
  reg.gauge(prefix + ".reads", [this](std::uint64_t) {
    return static_cast<double>(stats_.reads);
  });
  reg.gauge(prefix + ".writes", [this](std::uint64_t) {
    return static_cast<double>(stats_.writes);
  });
  reg.gauge(prefix + ".ecc_reads", [this](std::uint64_t) {
    return static_cast<double>(stats_.ecc_reads);
  });
  reg.gauge(prefix + ".ecc_writes", [this](std::uint64_t) {
    return static_cast<double>(stats_.ecc_writes);
  });
  reg.gauge(prefix + ".busy_data_cycles", [this](std::uint64_t) {
    return static_cast<double>(stats_.busy_data_cycles);
  });
  reg.gauge(prefix + ".row_hits", [this](std::uint64_t) {
    return static_cast<double>(row_hits_);
  });
  reg.gauge(prefix + ".energy.dynamic_pj", [this](std::uint64_t) {
    return stats_.energy.dynamic_pj();
  });
  reg.gauge(prefix + ".energy.refresh_pj", [this](std::uint64_t cycle) {
    return peek_stats(cycle).energy.refresh_pj;
  });
  reg.gauge(prefix + ".energy.background_pj", [this](std::uint64_t cycle) {
    return peek_stats(cycle).energy.background_pj;
  });
  reg.gauge(prefix + ".energy.total_pj", [this](std::uint64_t cycle) {
    return peek_stats(cycle).energy.total_pj();
  });

  tracer_ = tracer;
  tracer_tid_ = tracer_tid;
  if (tracer_) tracer_->set_thread_name(tracer_tid_, prefix);
}

std::uint64_t Channel::issue(const MemRequest& req, std::uint64_t now) {
  const auto& t = cfg_.device.timing;
  const auto& e = cfg_.device.energy;
  RankState& rank = ranks_[req.addr.rank];
  BankState& bank = rank.banks[req.addr.bank];

  const std::uint32_t group = cfg_.device.bank_group_of(req.addr.bank);

  // Open-page row hit: CAS straight into the open row, no ACT energy.
  if (cfg_.row_policy == RowPolicy::kOpenPage && bank.row_open &&
      bank.open_row == req.addr.row &&
      now <= bank.last_use + cfg_.open_row_timeout) {
    const unsigned cas_lat = req.is_write ? t.tCWL : t.tCL;
    std::uint64_t data_start =
        std::max(now, bank.next_cas) + cas_lat;
    std::uint64_t bus_ready = bus_free_;
    if (last_was_write_ && !req.is_write) bus_ready += t.tWTR;
    else if (!last_was_write_ && req.is_write) bus_ready += t.tRTW;
    data_start = std::max(data_start, bus_ready);
    // CAS command spacing: tCCD_S channel-wide, tCCD_L within the bank
    // group.  Both degenerate to the bus booking above for DDR3.
    data_start = std::max(data_start, next_cas_any_ + cas_lat);
    data_start =
        std::max(data_start, rank.next_cas_group[group] + cas_lat);
    const std::uint64_t data_end = data_start + t.tBurst;
    const std::uint64_t t_cas = data_start - cas_lat;

    bank.next_cas = t_cas + t.tCCD_L;
    next_cas_any_ = t_cas + t.tCCD_S;
    rank.next_cas_group[group] = t_cas + t.tCCD_L;
    bank.earliest_pre = std::max(
        bank.earliest_pre,
        req.is_write ? data_end + t.tWR : t_cas + t.tRTP);
    bank.last_use = data_end;
    ++row_hits_;

    account_background(rank, now);
    rank.active_until = std::max(rank.active_until,
                                 data_end + cfg_.open_row_timeout);

    const double chips = cfg_.chips_per_rank;
    if (req.is_write) {
      stats_.energy.write_pj += e.wr_burst_pj * chips;
      ++stats_.writes;
      if (req.line_class != LineClass::kData) ++stats_.ecc_writes;
    } else {
      stats_.energy.read_pj += e.rd_burst_pj * chips;
      ++stats_.reads;
      if (req.line_class != LineClass::kData) ++stats_.ecc_reads;
      stats_.read_latency_sum += data_end - req.enqueue_cycle;
    }
    stats_.busy_data_cycles += t.tBurst;
    bus_free_ = data_end;
    last_was_write_ = req.is_write;
    completions_.push(PendingCompletion{
        data_end, MemCompletion{req.id, req.is_write, data_end}});
    if (hooks_) {
      if (!req.is_write) {
        hooks_->read_latency->add(
            static_cast<double>(data_end - req.enqueue_cycle));
      }
      hooks_->queue_depth->add(static_cast<double>(queue_.size()));
    }
    if (tracer_) {
      tracer_->duration(
          trace_cat(req.line_class), trace_name(req.is_write, req.line_class),
          data_start, data_end, tracer_tid_,
          {{"bank", static_cast<double>(req.addr.rank * cfg_.banks +
                                        req.addr.bank)},
           {"row", static_cast<double>(req.addr.row)}});
    }
    if (observer_) {
      DramCommand cmd;
      cmd.kind = req.is_write ? CmdKind::kWrite : CmdKind::kRead;
      cmd.cycle = t_cas;
      cmd.rank = req.addr.rank;
      cmd.bank = req.addr.bank;
      cmd.row = req.addr.row;
      cmd.col = req.addr.col;
      cmd.data_start = data_start;
      cmd.data_end = data_end;
      cmd.line_class = req.line_class;
      observer_->on_command(cmd);
    }
    return data_end;
  }

  // Captured before the booking below overwrites the bank state: an
  // open-page row conflict implies an explicit precharge of the old row,
  // which the observer must see to keep its bank-state machine accurate.
  const bool conflict_pre =
      cfg_.row_policy == RowPolicy::kOpenPage && bank.row_open;
  const std::uint64_t conflict_row = bank.open_row;

  std::uint64_t t_act = earliest_act(req, now);
  t_act = apply_refresh(rank, req.addr.rank, req.addr.bank, t_act);

  // CAS data placement: first data cycle respects tRCD + CAS latency and
  // the shared bus (with turnaround when direction changes).
  const unsigned cas_lat = req.is_write ? t.tCWL : t.tCL;
  std::uint64_t data_start = t_act + t.tRCD + cas_lat;
  std::uint64_t bus_ready = bus_free_;
  if (last_was_write_ && !req.is_write) {
    bus_ready += t.tWTR;  // write-to-read turnaround
  } else if (!last_was_write_ && req.is_write) {
    bus_ready += t.tRTW;  // read-to-write turnaround
  }
  data_start = std::max(data_start, bus_ready);
  // CAS command spacing: tCCD_S channel-wide, tCCD_L within the bank
  // group.  Both degenerate to the bus booking above for DDR3 (where
  // tCCD_S == tCCD_L == tBurst); tCCD_L > tBurst inserts the DDR4/DDR5
  // same-group bubble.
  data_start = std::max(data_start, next_cas_any_ + cas_lat);
  data_start = std::max(data_start, rank.next_cas_group[group] + cas_lat);
  const std::uint64_t data_end = data_start + t.tBurst;
  const std::uint64_t t_cas = data_start - cas_lat;  // implied CAS issue

  // Close-page policy: auto-precharge after the access.
  std::uint64_t precharge_start;
  if (req.is_write) {
    precharge_start = data_end + t.tWR;
  } else {
    precharge_start = std::max<std::uint64_t>(t_cas + t.tRTP, t_act + t.tRAS);
  }
  precharge_start = std::max<std::uint64_t>(precharge_start, t_act + t.tRAS);
  const std::uint64_t precharge_done = precharge_start + t.tRP;

  // Book bank/rank state.
  if (cfg_.row_policy == RowPolicy::kOpenPage) {
    // The row stays open; remember what a future precharge must respect.
    bank.row_open = true;
    bank.open_row = req.addr.row;
    bank.act_time = t_act;
    bank.earliest_pre = precharge_start;
    bank.next_cas = (data_end - t.tBurst - (req.is_write ? t.tCWL : t.tCL)) +
                    t.tCCD_L;
    bank.last_use = data_end;
    bank.next_act = t_act + t.tRC;
  } else {
    bank.next_act = std::max(precharge_done, t_act + t.tRC);
  }
  next_cas_any_ = t_cas + t.tCCD_S;
  rank.next_cas_group[group] = t_cas + t.tCCD_L;
  rank.next_act_rrd_s = t_act + t.tRRD_S;
  rank.next_act_rrd_l[group] = t_act + t.tRRD_L;
  rank.act_times.push_back(t_act);
  while (rank.act_times.size() > 4) rank.act_times.pop_front();

  // Background accounting: charge everything up to this ACT first (the
  // rank's standby/power-down history), then extend the active window.
  account_background(rank, t_act);
  rank.active_until = std::max(
      rank.active_until,
      cfg_.row_policy == RowPolicy::kOpenPage
          ? data_end + cfg_.open_row_timeout
          : precharge_done);

  // Energy: all chips in the rank activate and burst together (this is the
  // heart of the cross-scheme dynamic-energy differences: 36 chips for
  // commercial chipkill vs 5 for LOT-ECC5).
  const double chips = cfg_.chips_per_rank;
  stats_.energy.activate_pj += e.act_pj * chips;
  if (req.is_write) {
    stats_.energy.write_pj += e.wr_burst_pj * chips;
    ++stats_.writes;
    if (req.line_class != LineClass::kData) ++stats_.ecc_writes;
  } else {
    stats_.energy.read_pj += e.rd_burst_pj * chips;
    ++stats_.reads;
    if (req.line_class != LineClass::kData) ++stats_.ecc_reads;
    stats_.read_latency_sum += data_end - req.enqueue_cycle;
  }
  stats_.busy_data_cycles += t.tBurst;

  bus_free_ = data_end;
  last_was_write_ = req.is_write;

  completions_.push(PendingCompletion{
      data_end, MemCompletion{req.id, req.is_write, data_end}});
  if (hooks_) {
    hooks_->acts->inc();
    hooks_->bank_acts[req.addr.rank * cfg_.banks + req.addr.bank]->inc();
    if (!req.is_write) {
      hooks_->read_latency->add(
          static_cast<double>(data_end - req.enqueue_cycle));
    }
    hooks_->queue_depth->add(static_cast<double>(queue_.size()));
  }
  if (tracer_) {
    tracer_->duration(
        trace_cat(req.line_class), trace_name(req.is_write, req.line_class),
        data_start, data_end, tracer_tid_,
        {{"bank", static_cast<double>(req.addr.rank * cfg_.banks +
                                      req.addr.bank)},
         {"row", static_cast<double>(req.addr.row)}});
  }
  if (observer_) {
    DramCommand cmd;
    cmd.rank = req.addr.rank;
    cmd.bank = req.addr.bank;
    cmd.col = req.addr.col;
    cmd.line_class = req.line_class;
    if (conflict_pre) {
      // The precharge closing the old row: earliest_act() placed the ACT
      // at least tRP after it, so its start is exactly t_act - tRP (or
      // earlier; t_act - tRP is the latest legal reconstruction).
      cmd.kind = CmdKind::kPrecharge;
      cmd.cycle = t_act - t.tRP;
      cmd.row = conflict_row;
      observer_->on_command(cmd);
    }
    cmd.kind = CmdKind::kActivate;
    cmd.cycle = t_act;
    cmd.row = req.addr.row;
    observer_->on_command(cmd);
    cmd.kind = req.is_write ? CmdKind::kWrite : CmdKind::kRead;
    cmd.cycle = t_cas;
    cmd.data_start = data_start;
    cmd.data_end = data_end;
    cmd.auto_precharge = cfg_.row_policy == RowPolicy::kClosePage;
    observer_->on_command(cmd);
    if (cfg_.row_policy == RowPolicy::kClosePage) {
      cmd.kind = CmdKind::kPrecharge;
      cmd.cycle = precharge_start;
      cmd.data_start = 0;
      cmd.data_end = 0;
      cmd.auto_precharge = true;
      observer_->on_command(cmd);
    }
  }
  return data_end;
}

void Channel::tick(std::uint64_t now, std::vector<MemCompletion>& out) {
  // Deliver finished transactions.
  while (!completions_.empty() && completions_.top().finish <= now) {
    out.push_back(completions_.top().completion);
    completions_.pop();
  }

  if (queue_.empty()) return;
  STATS_SCOPE("dram.scheduler");

  // Scheduler: examine up to `scheduler_window` oldest transactions, pick
  // the one that can activate earliest; break ties in favor of the
  // (rank, bank, row) with the most queued requests (DRAMsim's
  // Most-Pending policy), then age.  FCFS degenerates to a window of 1.
  const std::size_t window = std::min<std::size_t>(
      queue_.size(), cfg_.scheduler == SchedulerPolicy::kFcfs
                         ? 1
                         : cfg_.scheduler_window);
  std::size_t best = 0;
  std::uint64_t best_act = ~0ULL;
  std::size_t best_pending = 0;
  for (std::size_t i = 0; i < window; ++i) {
    const MemRequest& cand = queue_[i];
    const std::uint64_t act = earliest_act(cand, now);
    std::size_t same_row = 0;
    for (std::size_t j = 0; j < window; ++j) {
      const MemRequest& o = queue_[j];
      if (o.addr.rank == cand.addr.rank && o.addr.bank == cand.addr.bank &&
          o.addr.row == cand.addr.row) {
        ++same_row;
      }
    }
    if (act < best_act ||
        (act == best_act && same_row > best_pending)) {
      best = i;
      best_act = act;
      best_pending = same_row;
    }
  }

  // Issue only when the winner can start "soon": we avoid booking a
  // transaction far in the future so that later arrivals can still compete.
  const auto& t = cfg_.device.timing;
  if (best_act <= now + t.tRC) {
    const MemRequest req = queue_[best];
    queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(best));
    issue(req, now);
  }
}

void Channel::finalize(std::uint64_t end_cycle) {
  for (std::uint32_t r = 0; r < ranks_.size(); ++r) {
    RankState& rank = ranks_[r];
    // Charge residual refresh energy for intervals that elapsed with no
    // traffic to trigger apply_refresh().
    while (rank.next_refresh < end_cycle) {
      charge_refresh(rank, r);
    }
    account_background(rank, end_cycle);
  }
}

}  // namespace eccsim::dram
