// Streaming statistics used throughout the simulator and the benchmark
// harness: single-pass mean/variance (Welford), percentile estimation over
// retained samples, histograms, and the geometric mean used by the paper's
// cross-workload averages.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace eccsim {

/// Single-pass mean / variance / min / max accumulator (Welford's method,
/// numerically stable).
class RunningStat {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

  /// Merges another accumulator into this one (parallel reduction).
  void merge(const RunningStat& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Retains all samples; supports exact percentiles.  Used for the Monte
/// Carlo experiments that report 99.9th-percentile outcomes (Fig. 8).
///
/// Contract: the set is add-only (no removal or mutation of recorded
/// samples).  percentile() caches a sorted copy; add() and merge()
/// invalidate that cache explicitly, so interleaving adds and percentile
/// queries is always correct -- just O(n log n) per query after a
/// mutation.
class SampleSet {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_valid_ = false;
  }
  void reserve(std::size_t n) { samples_.reserve(n); }
  std::size_t count() const { return samples_.size(); }

  double mean() const;
  /// Exact percentile by nearest-rank; p in [0, 100] (clamped).
  /// p = 0 returns the minimum, p = 100 the maximum.
  double percentile(double p) const;
  double min() const;
  double max() const;

  const std::vector<double>& samples() const { return samples_; }
  void merge(const SampleSet& other);

 private:
  std::vector<double> samples_;
  mutable std::vector<double> sorted_;  // lazily (re)built by percentile()
  mutable bool sorted_valid_ = false;
};

/// Bounded-memory percentile sketch for Monte Carlo populations too large
/// to retain in full.  Keeps the `cap` samples with the smallest caller
/// supplied 64-bit keys (a deterministic "bottom-k" sketch): with keys
/// drawn from a hash of the sample's index, the retained set is a uniform
/// random subset of everything offered, and -- unlike classic reservoir
/// sampling -- it is independent of insertion order, thread count, and
/// chunking, so percentile estimates are bit-identical under any parallel
/// schedule.  While offered() <= capacity the sketch is exhaustive and
/// percentiles are exact.
class QuantileReservoir {
 public:
  explicit QuantileReservoir(std::size_t cap);

  /// Offers one sample.  `key` must be a deterministic function of the
  /// sample's identity (e.g. a hash of its Monte Carlo system index);
  /// ties on key break on value so the retained set is a pure function
  /// of the offered multiset.
  void add(double value, std::uint64_t key);

  std::size_t capacity() const { return cap_; }
  std::size_t offered() const { return offered_; }
  std::size_t retained() const { return heap_.size(); }
  /// True while every offered sample is still retained (percentiles are
  /// exact rather than subsampled estimates).
  bool exact() const { return offered_ <= cap_; }

  /// Nearest-rank percentile over the retained subset; p in [0, 100]
  /// (clamped).  0.0 when nothing was offered.
  double percentile(double p) const;

 private:
  struct Item {
    std::uint64_t key;
    double value;
    bool operator<(const Item& o) const {
      return key != o.key ? key < o.key : value < o.value;
    }
  };

  std::size_t cap_;
  std::uint64_t offered_ = 0;
  std::vector<Item> heap_;  // max-heap on (key, value): front = largest kept
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

/// Fixed-width linear histogram over [lo, hi); out-of-range samples clamp
/// into the edge bins so mass is never silently dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  std::size_t bins() const { return counts_.size(); }
  std::size_t total() const { return total_; }
  double bin_low(std::size_t i) const;
  double bin_high(std::size_t i) const;

  /// Renders a compact ASCII bar chart (for example programs).
  std::string ascii(std::size_t width = 50) const;

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Half-width of the normal-approximation 95% confidence interval of the
/// mean, relative to |mean|.  Returns +inf when fewer than two samples
/// have been seen or the mean is zero (no meaningful relative width), so
/// `relative_ci95(s) <= target` is a safe convergence test.
double relative_ci95(const RunningStat& s);

/// Geometric mean of a set of (positive) values.  The paper's "average
/// reduction across workloads" figures are cross-workload means of ratios;
/// we use the geometric mean for ratio aggregation.
double geomean(const std::vector<double>& values);

/// Arithmetic mean convenience.
double mean(const std::vector<double>& values);

}  // namespace eccsim
