file(REMOVE_RECURSE
  "CMakeFiles/fig17_mapi_dual.dir/fig17_mapi_dual.cpp.o"
  "CMakeFiles/fig17_mapi_dual.dir/fig17_mapi_dual.cpp.o.d"
  "fig17_mapi_dual"
  "fig17_mapi_dual.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_mapi_dual.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
