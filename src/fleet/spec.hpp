// Fleet model description: a datacenter as named node pools.
//
// The paper evaluates ECC Parity on one memory system; the fleet layer
// scales the same fault Monte Carlo to datacenter economics (SCREME
// direction, PAPERS.md): heterogeneous pools of nodes -- each pool with
// its own DRAM generation, channel/rank organization, ECC scheme, and
// speed-bin-scaled fault rates -- plus a repair/replacement policy, with
// fleet availability and annual node-loss as the output metrics.
//
// A FleetSpec is a plain value, serialized as canonical JSON (fixed field
// order, every field explicit) so that `config_hash()` is a stable cache
// key: two requests describing the same fleet hash identically whatever
// the field order or defaulting of the submitted document.
//
// Layering note: this module deliberately does NOT include src/dram or
// src/ecc.  Pools carry their DRAM generation and ECC scheme as validated
// *names*; the per-generation fault-level parameters the model needs
// (banks per rank, on-die-ECC bit-fault coverage) live in a small table
// here that tests/fleet_test.cpp pins against dram::spec_for(), following
// the same independence precedent as faults::on_die_ecc_filter().
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace eccsim::runner {
class Json;
}

namespace eccsim::fleet {

/// Fleet-wide repair/replacement policy.  An uncorrected error crashes
/// the node: after `detect_hours` the fault is detected and the node is
/// drained, and `repair_hours` later it is back in service -- provided a
/// spare was available for its first (replacement-consuming) event.  Once
/// the spare pool is depleted, a newly failing node stays down for the
/// remainder of the fleet lifetime.
struct RepairPolicy {
  double detect_hours = 1.0;
  double repair_hours = 24.0;
  /// Fleet-wide spare-node pool; negative = unlimited.
  std::int64_t spares = -1;
};

/// One homogeneous pool of nodes.
struct PoolSpec {
  std::string name;
  std::uint64_t nodes = 0;
  /// DRAM generation name: "ddr3", "ddr4", or "ddr5" (the --dram set).
  std::string dram = "ddr3";
  /// ECC scheme name (the Table II set, e.g. "chipkill36",
  /// "lotecc5+parity"); determines the fleet-level failure class.
  std::string ecc = "lotecc5+parity";
  unsigned channels = 8;
  unsigned ranks_per_channel = 4;
  unsigned chips_per_rank = 9;
  /// All-type per-chip fault rate (FIT), distributed per the DDR3
  /// vendor-average split and filtered by the generation's on-die ECC.
  double fit_per_chip = 44.0;
  /// Speed-bin scaling of the fault rates (Sec. V-D: faster bins fault
  /// more); the effective rate is fit_per_chip * speed_factor.
  double speed_factor = 1.0;
};

/// A complete fleet description.
struct FleetSpec {
  std::string name = "fleet";
  std::uint64_t seed = 2014;
  double lifetime_hours = 5 * 8766.0;  ///< five deployment years
  /// Detection/scrub window for cross-parity double-fault coincidence
  /// (Fig. 18).  Isolated schemes are windowless: their chip-class
  /// faults are permanent damage that stays exposed until repair.
  double window_hours = 12.0;
  RepairPolicy repair;
  std::vector<PoolSpec> pools;

  std::uint64_t total_nodes() const;
  /// Divides every pool's node count by `factor` (floor 1 node) -- the
  /// smoke-scaling knob used by run_all.sh and the CI identity check.
  void scale_nodes(std::uint64_t factor);
};

/// Fault-level parameters of one DRAM generation, mirroring src/dram's
/// spec factories (pinned against dram::spec_for by tests/fleet_test.cpp).
struct GenFaultParams {
  unsigned banks_per_rank = 8;
  /// DramSpec::on_die_ecc.bit_fault_coverage of the generation's default
  /// device (0 when on-die ECC is absent).
  double on_die_bit_coverage = 0.0;
};

/// Parameters for a generation name; std::nullopt for anything else.
std::optional<GenFaultParams> gen_fault_params(const std::string& dram);

/// Fleet-level failure class of an ECC scheme: schemes that correct
/// within one rank/channel fail on a second overlapping fault in the same
/// rank (kIsolated); the ECC Parity schemes correct across channels and
/// fail when faults land in more than one channel within the detection
/// window (kCrossParity, the paper's Fig. 18 coincidence).
enum class SchemeClass { kIsolated, kCrossParity };

/// Failure class of a Table II scheme name; std::nullopt for unknown
/// names.  Covers every ecc::SchemeId spelling (pinned by tests).
std::optional<SchemeClass> scheme_class(const std::string& ecc);

/// Canonical JSON form: fixed field order, every field explicit.
runner::Json to_json(const FleetSpec& spec);

/// Parses a spec document (the `spec` member of an eccsim.fleetreq/1
/// request, or a standalone file).  Unknown members throw; absent members
/// take their defaults.  Throws std::runtime_error with a field path on
/// malformed input.
FleetSpec spec_from_json(const runner::Json& doc);

/// Validates semantic constraints (known generation/scheme names, nonzero
/// pools, positive rates/durations, total node budget).  Returns "" when
/// valid, else a one-line diagnostic.
std::string validate(const FleetSpec& spec);

/// Cache key: 16 lowercase hex digits, FNV-1a over the canonical JSON
/// dump of the spec.  Stable across field order and defaulting of the
/// submitted document (both normalize through spec_from_json/to_json).
std::string config_hash(const FleetSpec& spec);

}  // namespace eccsim::fleet
