# Empty compiler generated dependencies file for ecc_faults.
# This may be replaced when dependencies are built.
