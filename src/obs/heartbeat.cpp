#include "obs/heartbeat.hpp"

#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "obs/run_info.hpp"
#include "runner/json.hpp"
#include "stats/stats.hpp"

namespace eccsim::obs {

namespace {

/// Snapshots keep at most this many trailing rel-CI observations; enough
/// to see the convergence trend without unbounded growth on million-chunk
/// runs.
constexpr std::size_t kMaxRelCiSeries = 64;

std::string human_eta(double seconds) {
  char buf[32];
  if (seconds >= 3600.0) {
    std::snprintf(buf, sizeof buf, "%.1fh", seconds / 3600.0);
  } else if (seconds >= 60.0) {
    std::snprintf(buf, sizeof buf, "%.1fm", seconds / 60.0);
  } else {
    std::snprintf(buf, sizeof buf, "%.0fs", seconds);
  }
  return buf;
}

}  // namespace

HeartbeatConfig HeartbeatConfig::from_env() {
  HeartbeatConfig cfg;
  if (const char* v = std::getenv("ECCSIM_STATUS")) cfg.status_path = v;
  if (const char* v = std::getenv("ECCSIM_PROGRESS")) {
    cfg.stderr_line = std::string(v) != "0";
  }
  if (const char* v = std::getenv("ECCSIM_STATUS_INTERVAL_MS")) {
    cfg.min_interval_ms = std::strtoull(v, nullptr, 10);
  }
  return cfg;
}

void Heartbeat::set_tool(std::string name) {
  std::lock_guard<std::mutex> lock(mu_);
  tool_ = std::move(name);
}

std::uint64_t Heartbeat::snapshots_written() const {
  std::lock_guard<std::mutex> lock(mu_);
  return seq_;
}

std::string Heartbeat::render_json(const Tick& t, double now) const {
  runner::Json doc = runner::Json::object();
  doc.set("schema", "eccsim.heartbeat/1");
  doc.set("pid", static_cast<std::int64_t>(getpid()));
  doc.set("tool", tool_);
  doc.set("phase", t.phase);
  doc.set("seq", seq_);
  doc.set("timestamp_utc", utc_timestamp());
  doc.set("elapsed_seconds", now - start_);
  const double phase_elapsed = now - phase_start_;
  doc.set("phase_elapsed_seconds", phase_elapsed);
  doc.set("done", t.done);
  doc.set("total", t.total);
  const double throughput =
      phase_elapsed > 0.0 ? static_cast<double>(t.done) / phase_elapsed : 0.0;
  doc.set("throughput_per_s",
          throughput > 0.0 ? runner::Json(throughput) : runner::Json());
  if (throughput > 0.0 && t.total >= t.done) {
    doc.set("eta_seconds",
            static_cast<double>(t.total - t.done) / throughput);
  } else {
    doc.set("eta_seconds", runner::Json());
  }
  doc.set("rel_ci",
          std::isnan(t.rel_ci) ? runner::Json() : runner::Json(t.rel_ci));
  runner::Json series = runner::Json::array();
  for (const double v : rel_ci_series_) series.push_back(v);
  doc.set("rel_ci_series", series);
  runner::Json counters = runner::Json::object();
  for (const auto& [name, value] : t.counters) counters.set(name, value);
  doc.set("counters", counters);
  doc.set("peak_rss_bytes", stats::process_peak_rss_bytes());
  doc.set("final", t.total > 0 && t.done >= t.total);
  return doc.dump(2) + "\n";
}

void Heartbeat::tick(const Tick& t) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  const double now = monotonic_seconds();
  if (start_ < 0.0) start_ = now;
  if (t.phase != phase_) {
    phase_ = t.phase;
    phase_start_ = now;
    rel_ci_series_.clear();
  }
  if (!std::isnan(t.rel_ci)) {
    rel_ci_series_.push_back(t.rel_ci);
    if (rel_ci_series_.size() > kMaxRelCiSeries) {
      rel_ci_series_.erase(rel_ci_series_.begin());
    }
  }
  const bool final_tick = t.total > 0 && t.done >= t.total;
  if (!t.force && !final_tick && last_write_ >= 0.0 &&
      (now - last_write_) * 1000.0 <
          static_cast<double>(cfg_.min_interval_ms)) {
    return;
  }
  last_write_ = now;
  ++seq_;
  if (!cfg_.status_path.empty()) {
    atomic_write_file(cfg_.status_path, render_json(t, now));
  }
  if (cfg_.stderr_line) {
    const double phase_elapsed = now - phase_start_;
    const double throughput = phase_elapsed > 0.0
                                  ? static_cast<double>(t.done) / phase_elapsed
                                  : 0.0;
    std::string extra;
    if (throughput > 0.0 && t.total >= t.done) {
      extra = " eta " + human_eta(static_cast<double>(t.total - t.done) /
                                  throughput);
    }
    if (!std::isnan(t.rel_ci)) {
      char buf[40];
      std::snprintf(buf, sizeof buf, " rel_ci %.4g", t.rel_ci);
      extra += buf;
    }
    std::fprintf(stderr, "\r[%s] %s %llu/%llu (%.1f/s)%s        ",
                 tool_.c_str(), t.phase.c_str(),
                 static_cast<unsigned long long>(t.done),
                 static_cast<unsigned long long>(t.total), throughput,
                 extra.c_str());
    if (final_tick) std::fprintf(stderr, "\n");
    std::fflush(stderr);
  }
}

Heartbeat& Heartbeat::global() {
  static Heartbeat hb(HeartbeatConfig::from_env());
  return hb;
}

bool atomic_write_file(const std::string& path, const std::string& content) {
  std::error_code ec;
  const auto parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) {
    std::filesystem::create_directories(parent, ec);
    if (ec) return false;
  }
  const std::string tmp = path + ".tmp." + std::to_string(getpid());
  {
    std::ofstream out(tmp, std::ios::trunc | std::ios::binary);
    if (!out) return false;
    out << content;
    if (!out.flush()) {
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace eccsim::obs
