#include "obs/openmetrics.hpp"

#include <cctype>
#include <cinttypes>
#include <cmath>
#include <cstdio>

#include "obs/heartbeat.hpp"
#include "stats/stats.hpp"

namespace eccsim::obs {

namespace {

/// Maps a dotted registry path onto a metric name: eccsim_ prefix, dots
/// and any other non-[a-zA-Z0-9_] byte become underscores.
std::string metric_name(const std::string& path) {
  std::string out = "eccsim_";
  for (const char c : path) {
    out += std::isalnum(static_cast<unsigned char>(c)) != 0 ? c : '_';
  }
  return out;
}

std::string escape_label(const std::string& value) {
  std::string out;
  for (const char c : value) {
    if (c == '\\' || c == '"') out += '\\';
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
  return out;
}

std::string format_number(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%" PRId64, static_cast<std::int64_t>(v));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

class Writer {
 public:
  explicit Writer(
      const std::vector<std::pair<std::string, std::string>>& labels) {
    for (const auto& [key, value] : labels) {
      if (!base_labels_.empty()) base_labels_ += ',';
      base_labels_ += key + "=\"" + escape_label(value) + "\"";
    }
  }

  void type_line(const std::string& name, const char* type) {
    out_ += "# TYPE " + name + ' ' + type + '\n';
  }

  /// Emits one sample; `extra` is an optional pre-formatted label pair
  /// (e.g. `le="0.5"`) appended after the base labels.
  void sample(const std::string& name, double value,
              const std::string& extra = "") {
    out_ += name;
    if (!base_labels_.empty() || !extra.empty()) {
      out_ += '{';
      out_ += base_labels_;
      if (!base_labels_.empty() && !extra.empty()) out_ += ',';
      out_ += extra;
      out_ += '}';
    }
    out_ += ' ';
    out_ += format_number(value);
    out_ += '\n';
  }

  std::string finish() {
    out_ += "# EOF\n";
    return std::move(out_);
  }

 private:
  std::string base_labels_;
  std::string out_;
};

}  // namespace

std::string to_openmetrics(
    const stats::Registry& reg,
    const std::vector<std::pair<std::string, std::string>>& labels) {
  Writer w(labels);
  using Kind = stats::Registry::Kind;
  for (const auto& entry : reg.view()) {
    const std::string name = metric_name(*entry.path);
    switch (entry.kind) {
      case Kind::kCounter:
      case Kind::kAccum:
        w.type_line(name, "counter");
        w.sample(name + "_total", entry.value);
        break;
      case Kind::kGauge:
        w.type_line(name, "gauge");
        w.sample(name, entry.value);
        break;
      case Kind::kDistribution: {
        w.type_line(name + "_count", "gauge");
        w.sample(name + "_count", static_cast<double>(entry.dist->count()));
        w.type_line(name + "_sum", "gauge");
        w.sample(name + "_sum", entry.dist->sum());
        w.type_line(name + "_min", "gauge");
        w.sample(name + "_min", entry.dist->min());
        w.type_line(name + "_max", "gauge");
        w.sample(name + "_max", entry.dist->max());
        break;
      }
      case Kind::kHistogram: {
        const stats::Histogram& h = *entry.hist;
        w.type_line(name, "histogram");
        const double width =
            (h.hi() - h.lo()) / static_cast<double>(h.bins().size());
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < h.bins().size(); ++i) {
          cumulative += h.bins()[i];
          // The top edge bin clamps overflow samples, so its upper bound
          // is +Inf rather than hi().
          const bool last = i + 1 == h.bins().size();
          const std::string le =
              last ? "+Inf"
                   : format_number(h.lo() + width * static_cast<double>(i + 1));
          w.sample(name + "_bucket", static_cast<double>(cumulative),
                   "le=\"" + le + "\"");
        }
        w.sample(name + "_count", static_cast<double>(h.total()));
        break;
      }
    }
  }
  return w.finish();
}

bool write_openmetrics(
    const std::string& path, const stats::Registry& reg,
    const std::vector<std::pair<std::string, std::string>>& labels) {
  return atomic_write_file(path, to_openmetrics(reg, labels));
}

}  // namespace eccsim::obs
