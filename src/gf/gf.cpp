#include "gf/gf.hpp"

#include <stdexcept>

namespace eccsim::gf {

template <unsigned Bits>
Field<Bits>::Tables::Tables() {
  exp.resize(2 * (kOrder - 1));
  log.resize(kOrder);
  using Wide = typename Traits::Wide;
  Wide x = 1;
  for (unsigned i = 0; i < kOrder - 1; ++i) {
    exp[i] = static_cast<Symbol>(x);
    log[static_cast<Symbol>(x)] = i;
    x <<= 1;
    if (x & kOrder) x ^= Traits::kPrimitivePoly;
  }
  // Duplicate so exp[log a + log b] never needs reduction.
  for (unsigned i = 0; i < kOrder - 1; ++i) exp[kOrder - 1 + i] = exp[i];
  log[0] = 0;  // sentinel; callers must not take log(0)
}

template <unsigned Bits>
typename Field<Bits>::Symbol Field<Bits>::div(Symbol a, Symbol b) {
  if (b == 0) throw std::domain_error("GF division by zero");
  if (a == 0) return 0;
  const Tables& t = tables();
  return t.exp[t.log[a] + (kOrder - 1) - t.log[b]];
}

template <unsigned Bits>
unsigned Field<Bits>::log(Symbol x) {
  if (x == 0) throw std::domain_error("GF log of zero");
  return tables().log[x];
}

template <unsigned Bits>
typename Field<Bits>::Symbol Field<Bits>::pow(Symbol a, unsigned e) {
  if (e == 0) return 1;
  if (a == 0) return 0;
  const Tables& t = tables();
  const unsigned long long l =
      static_cast<unsigned long long>(t.log[a]) * e % (kOrder - 1);
  return t.exp[l];
}

template class Field<8>;
template class Field<16>;

}  // namespace eccsim::gf
