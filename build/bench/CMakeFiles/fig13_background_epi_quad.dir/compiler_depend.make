# Empty compiler generated dependencies file for fig13_background_epi_quad.
# This may be replaced when dependencies are built.
