file(REMOVE_RECURSE
  "libecc_schemes.a"
)
