#include "tracefile/reader.hpp"

#include <cstring>

#include "tracefile/codec.hpp"
#include "tracefile/crc32.hpp"
#include "tracefile/varint.hpp"

namespace eccsim::tracefile {

namespace {

/// Reads exactly `n` bytes or throws the given truncation message.
void read_exact(std::ifstream& in, unsigned char* buf, std::size_t n,
                const std::string& what) {
  in.read(reinterpret_cast<char*>(buf), static_cast<std::streamsize>(n));
  if (static_cast<std::size_t>(in.gcount()) != n) {
    throw TraceError("ecctrace: truncated file (" + what + ")");
  }
}

}  // namespace

TraceReader::TraceReader(const std::string& path) : path_(path) {
  in_.open(path, std::ios::binary);
  if (!in_) {
    throw TraceError("ecctrace: cannot open " + path);
  }
  parse_header();
  index_chunks();
  seek_chunk(0);
}

void TraceReader::parse_header() {
  unsigned char fixed[32];
  read_exact(in_, fixed, sizeof fixed, "header");
  if (std::memcmp(fixed, kMagic, sizeof kMagic) != 0) {
    throw TraceError("ecctrace: bad magic (not an .ecctrace file): " + path_);
  }
  const std::uint32_t version = get_u32(fixed + 8);
  if (version != kFormatVersion) {
    throw TraceError("ecctrace: unsupported format version " +
                     std::to_string(version) + " (expected " +
                     std::to_string(kFormatVersion) + ")");
  }
  const std::uint32_t point = get_u32(fixed + 12);
  if (point > static_cast<std::uint32_t>(CapturePoint::kPostLlc)) {
    throw TraceError("ecctrace: unknown capture point " +
                     std::to_string(point));
  }
  meta_.point = static_cast<CapturePoint>(point);
  meta_.cores = get_u32(fixed + 16);
  meta_.seed = get_u64(fixed + 20);
  const std::uint32_t name_len = get_u32(fixed + 28);
  if (name_len > kMaxNameBytes) {
    throw TraceError("ecctrace: corrupt header (name length)");
  }
  std::string name(name_len, '\0');
  if (name_len > 0) {
    read_exact(in_, reinterpret_cast<unsigned char*>(name.data()), name_len,
               "workload name");
  }
  meta_.workload = std::move(name);
  unsigned char crc_bytes[4];
  read_exact(in_, crc_bytes, sizeof crc_bytes, "header CRC");
  std::uint32_t expect = crc32(fixed, sizeof fixed);
  expect = crc32(meta_.workload.data(), meta_.workload.size(), expect);
  if (get_u32(crc_bytes) != expect) {
    throw TraceError("ecctrace: header CRC mismatch in " + path_);
  }
}

void TraceReader::index_chunks() {
  std::uint64_t ops_seen = 0;
  for (;;) {
    unsigned char marker_bytes[4];
    read_exact(in_, marker_bytes, sizeof marker_bytes,
               "chunk marker / footer");
    const std::uint32_t marker = get_u32(marker_bytes);
    if (marker == kChunkMarker) {
      unsigned char head[12];
      read_exact(in_, head, sizeof head, "chunk header");
      ChunkInfo ci;
      ci.payload_bytes = get_u32(head);
      ci.op_count = get_u32(head + 4);
      ci.crc = get_u32(head + 8);
      if (ci.payload_bytes > kMaxPayloadBytes) {
        throw TraceError("ecctrace: corrupt chunk header (payload size)");
      }
      ci.payload_offset = static_cast<std::uint64_t>(in_.tellg());
      in_.seekg(static_cast<std::streamoff>(ci.payload_bytes),
                std::ios::cur);
      // seekg past EOF only fails at the next read; probe now so a
      // truncated final chunk is reported as truncation, not bad framing.
      if (in_.peek() == std::ifstream::traits_type::eof()) {
        throw TraceError("ecctrace: truncated file (chunk payload)");
      }
      ops_seen += ci.op_count;
      chunks_.push_back(ci);
      continue;
    }
    if (marker == kEndMarker) {
      // Footer body after the marker: u32 chunk_count, u64 total_ops,
      // u32 crc over (marker, chunk_count, total_ops).
      unsigned char foot[16];
      read_exact(in_, foot, sizeof foot, "footer");
      std::string crc_input(reinterpret_cast<const char*>(marker_bytes), 4);
      crc_input.append(reinterpret_cast<const char*>(foot), 12);
      if (get_u32(foot + 12) != crc32(crc_input.data(), crc_input.size())) {
        throw TraceError("ecctrace: footer CRC mismatch in " + path_);
      }
      const std::uint32_t chunk_count = get_u32(foot);
      total_ops_ = get_u64(foot + 4);
      if (chunk_count != chunks_.size() || total_ops_ != ops_seen) {
        throw TraceError("ecctrace: footer totals disagree with chunk "
                         "index in " + path_);
      }
      file_bytes_ = static_cast<std::uint64_t>(in_.tellg());
      if (in_.peek() != std::ifstream::traits_type::eof()) {
        throw TraceError("ecctrace: trailing bytes after footer in " +
                         path_);
      }
      in_.clear();
      return;
    }
    throw TraceError("ecctrace: corrupt chunk framing in " + path_);
  }
}

bool TraceReader::ensure_records() {
  const std::size_t have = meta_.point == CapturePoint::kPreLlc
                               ? dec_pre_.size()
                               : dec_post_.size();
  while (dec_pos_ >= have) {
    if (next_chunk_ >= chunks_.size()) return false;
    load_chunk(next_chunk_++);
    return ensure_records();
  }
  return true;
}

void TraceReader::load_chunk(std::size_t index) {
  const ChunkInfo& ci = chunks_[index];
  std::vector<unsigned char> payload(ci.payload_bytes);
  in_.clear();
  in_.seekg(static_cast<std::streamoff>(ci.payload_offset));
  if (ci.payload_bytes > 0) {
    read_exact(in_, payload.data(), payload.size(), "chunk payload");
  }
  if (crc32(payload.data(), payload.size()) != ci.crc) {
    throw TraceError("ecctrace: chunk " + std::to_string(index) +
                     " CRC mismatch in " + path_);
  }
  if (meta_.point == CapturePoint::kPreLlc) {
    decode_pre_chunk(payload.data(), payload.size(), ci.op_count, dec_pre_);
  } else {
    decode_post_chunk(payload.data(), payload.size(), ci.op_count,
                      dec_post_);
  }
  counters_.chunks_decoded += 1;
  counters_.payload_bytes += ci.payload_bytes;
  dec_pos_ = 0;
}

bool TraceReader::next(PreOp& out) {
  if (meta_.point != CapturePoint::kPreLlc) {
    throw TraceError("ecctrace: pre-LLC read from a " +
                     to_string(meta_.point) + " trace");
  }
  if (!ensure_records()) return false;
  out = dec_pre_[dec_pos_++];
  return true;
}

bool TraceReader::next(PostOp& out) {
  if (meta_.point != CapturePoint::kPostLlc) {
    throw TraceError("ecctrace: post-LLC read from a " +
                     to_string(meta_.point) + " trace");
  }
  if (!ensure_records()) return false;
  out = dec_post_[dec_pos_++];
  return true;
}

void TraceReader::seek_chunk(std::size_t index) {
  if (index > chunks_.size()) {
    throw TraceError("ecctrace: seek past end of trace");
  }
  next_chunk_ = index;
  dec_pre_.clear();
  dec_post_.clear();
  dec_pos_ = 0;
}

ValidateResult validate_file(const std::string& path) {
  ValidateResult r;
  try {
    TraceReader reader(path);
    r.meta = reader.meta();
    r.chunks = reader.chunk_count();
    r.file_bytes = reader.file_bytes();
    if (reader.meta().point == CapturePoint::kPreLlc) {
      PreOp op;
      while (reader.next(op)) ++r.ops;
    } else {
      PostOp op;
      while (reader.next(op)) ++r.ops;
    }
    if (r.ops != reader.total_ops()) {
      r.error = "ecctrace: op count mismatch (footer says " +
                std::to_string(reader.total_ops()) + ", decoded " +
                std::to_string(r.ops) + ")";
      return r;
    }
    r.ok = true;
  } catch (const TraceError& e) {
    r.error = e.what();
  }
  return r;
}

}  // namespace eccsim::tracefile
