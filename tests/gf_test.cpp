// Unit tests for GF(2^m) arithmetic and the Reed-Solomon codec.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "common/rng.hpp"
#include "gf/gf.hpp"
#include "gf/rs.hpp"

namespace eccsim::gf {
namespace {

TEST(GF256, AddIsXor) {
  EXPECT_EQ(GF256::add(0x53, 0xCA), 0x53 ^ 0xCA);
  EXPECT_EQ(GF256::add(0, 0xFF), 0xFF);
  EXPECT_EQ(GF256::add(0xAB, 0xAB), 0);
}

TEST(GF256, MulIdentityAndZero) {
  for (unsigned a = 0; a < 256; ++a) {
    EXPECT_EQ(GF256::mul(static_cast<std::uint8_t>(a), 1), a);
    EXPECT_EQ(GF256::mul(static_cast<std::uint8_t>(a), 0), 0);
  }
}

TEST(GF256, MulCommutativeAssociative) {
  Rng rng(1);
  for (int i = 0; i < 2000; ++i) {
    const auto a = static_cast<std::uint8_t>(rng.next_below(256));
    const auto b = static_cast<std::uint8_t>(rng.next_below(256));
    const auto c = static_cast<std::uint8_t>(rng.next_below(256));
    EXPECT_EQ(GF256::mul(a, b), GF256::mul(b, a));
    EXPECT_EQ(GF256::mul(GF256::mul(a, b), c), GF256::mul(a, GF256::mul(b, c)));
  }
}

TEST(GF256, Distributive) {
  Rng rng(2);
  for (int i = 0; i < 2000; ++i) {
    const auto a = static_cast<std::uint8_t>(rng.next_below(256));
    const auto b = static_cast<std::uint8_t>(rng.next_below(256));
    const auto c = static_cast<std::uint8_t>(rng.next_below(256));
    EXPECT_EQ(GF256::mul(a, GF256::add(b, c)),
              GF256::add(GF256::mul(a, b), GF256::mul(a, c)));
  }
}

TEST(GF256, InverseRoundTrip) {
  for (unsigned a = 1; a < 256; ++a) {
    const auto s = static_cast<std::uint8_t>(a);
    EXPECT_EQ(GF256::mul(s, GF256::inv(s)), 1) << "a=" << a;
  }
}

TEST(GF256, DivByZeroThrows) {
  EXPECT_THROW(GF256::div(5, 0), std::domain_error);
  EXPECT_THROW(GF256::log(0), std::domain_error);
}

TEST(GF256, AlphaPowersCycle) {
  // alpha^(q-1) == 1 and alpha generates all nonzero elements.
  EXPECT_EQ(GF256::alpha_pow(255), 1);
  std::vector<bool> seen(256, false);
  for (unsigned i = 0; i < 255; ++i) {
    const auto v = GF256::alpha_pow(i);
    EXPECT_NE(v, 0);
    EXPECT_FALSE(seen[v]) << "duplicate at power " << i;
    seen[v] = true;
  }
}

TEST(GF65536, InverseSampled) {
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    const auto a =
        static_cast<std::uint16_t>(1 + rng.next_below(65535));
    EXPECT_EQ(GF65536::mul(a, GF65536::inv(a)), 1);
  }
}

TEST(GF65536, PowMatchesRepeatedMul) {
  Rng rng(4);
  for (int i = 0; i < 200; ++i) {
    const auto a =
        static_cast<std::uint16_t>(1 + rng.next_below(65535));
    std::uint16_t acc = 1;
    for (unsigned e = 0; e < 8; ++e) {
      EXPECT_EQ(GF65536::pow(a, e), acc);
      acc = GF65536::mul(acc, a);
    }
  }
}

// ---------------------------------------------------------------------------
// Reed-Solomon

TEST(ReedSolomon, InvalidParamsThrow) {
  EXPECT_THROW(Rs8(10, 0), std::invalid_argument);
  EXPECT_THROW(Rs8(10, 10), std::invalid_argument);
  EXPECT_THROW(Rs8(256, 4), std::invalid_argument);
}

TEST(ReedSolomon, EncodeIsSystematic) {
  Rs8 rs(36, 32);
  std::vector<std::uint8_t> data(32);
  std::iota(data.begin(), data.end(), 1);
  const auto cw = rs.encode(data);
  ASSERT_EQ(cw.size(), 36u);
  for (unsigned i = 0; i < 32; ++i) EXPECT_EQ(cw[4 + i], data[i]);
  EXPECT_TRUE(rs.check(cw));
}

TEST(ReedSolomon, ZeroDataEncodesToZero) {
  Rs8 rs(18, 16);
  std::vector<std::uint8_t> data(16, 0);
  const auto cw = rs.encode(data);
  EXPECT_TRUE(std::all_of(cw.begin(), cw.end(),
                          [](std::uint8_t v) { return v == 0; }));
}

TEST(ReedSolomon, DetectsSingleSymbolError) {
  Rs8 rs(36, 32);
  std::vector<std::uint8_t> data(32, 0x5A);
  auto cw = rs.encode(data);
  cw[7] ^= 0x01;
  EXPECT_FALSE(rs.check(cw));
}

TEST(ReedSolomon, CorrectsSingleUnknownError) {
  Rs8 rs(36, 32);  // 4 check symbols: corrects up to 2 unknown errors
  Rng rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::uint8_t> data(32);
    for (auto& d : data) d = static_cast<std::uint8_t>(rng.next_below(256));
    auto cw = rs.encode(data);
    const auto orig = cw;
    const auto pos = static_cast<unsigned>(rng.next_below(36));
    cw[pos] ^= static_cast<std::uint8_t>(1 + rng.next_below(255));
    const auto res = rs.decode(cw);
    ASSERT_TRUE(res.ok) << "trial " << trial;
    EXPECT_EQ(res.corrected_errors, 1u);
    EXPECT_EQ(cw, orig);
  }
}

TEST(ReedSolomon, CorrectsTwoUnknownErrors) {
  Rs8 rs(36, 32);
  Rng rng(6);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::uint8_t> data(32);
    for (auto& d : data) d = static_cast<std::uint8_t>(rng.next_below(256));
    auto cw = rs.encode(data);
    const auto orig = cw;
    const auto p1 = static_cast<unsigned>(rng.next_below(36));
    auto p2 = static_cast<unsigned>(rng.next_below(36));
    while (p2 == p1) p2 = static_cast<unsigned>(rng.next_below(36));
    cw[p1] ^= static_cast<std::uint8_t>(1 + rng.next_below(255));
    cw[p2] ^= static_cast<std::uint8_t>(1 + rng.next_below(255));
    const auto res = rs.decode(cw);
    ASSERT_TRUE(res.ok) << "trial " << trial;
    EXPECT_EQ(res.corrected_errors, 2u);
    EXPECT_EQ(cw, orig);
  }
}

TEST(ReedSolomon, CorrectsErasuresUpToTwoT) {
  Rs8 rs(36, 32);
  Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::uint8_t> data(32);
    for (auto& d : data) d = static_cast<std::uint8_t>(rng.next_below(256));
    auto cw = rs.encode(data);
    const auto orig = cw;
    // Erase 4 distinct positions (== 2t).
    std::vector<unsigned> positions(36);
    std::iota(positions.begin(), positions.end(), 0);
    std::shuffle(positions.begin(), positions.end(), rng);
    positions.resize(4);
    for (unsigned p : positions) {
      cw[p] ^= static_cast<std::uint8_t>(1 + rng.next_below(255));
    }
    const auto res = rs.decode(cw, positions);
    ASSERT_TRUE(res.ok) << "trial " << trial;
    EXPECT_EQ(cw, orig);
  }
}

TEST(ReedSolomon, CorrectsOneErrorPlusTwoErasures) {
  Rs8 rs(36, 32);  // 2*1 + 2 == 4 == 2t: exactly at capability
  Rng rng(8);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::uint8_t> data(32);
    for (auto& d : data) d = static_cast<std::uint8_t>(rng.next_below(256));
    auto cw = rs.encode(data);
    const auto orig = cw;
    std::vector<unsigned> positions(36);
    std::iota(positions.begin(), positions.end(), 0);
    std::shuffle(positions.begin(), positions.end(), rng);
    const std::vector<unsigned> erasures{positions[0], positions[1]};
    const unsigned err_pos = positions[2];
    for (unsigned p : erasures) {
      cw[p] ^= static_cast<std::uint8_t>(1 + rng.next_below(255));
    }
    cw[err_pos] ^= static_cast<std::uint8_t>(1 + rng.next_below(255));
    const auto res = rs.decode(cw, erasures);
    ASSERT_TRUE(res.ok) << "trial " << trial;
    EXPECT_EQ(cw, orig);
  }
}

TEST(ReedSolomon, ErasedButCorrectPositionsAreHarmless) {
  // Declaring erasures at positions that actually hold correct values must
  // still decode (magnitude 0 corrections).
  Rs8 rs(36, 32);
  std::vector<std::uint8_t> data(32, 0x11);
  auto cw = rs.encode(data);
  const auto orig = cw;
  const std::vector<unsigned> erasures{3, 9, 20};
  cw[9] ^= 0x40;  // only one of the three is actually wrong
  const auto res = rs.decode(cw, erasures);
  ASSERT_TRUE(res.ok);
  EXPECT_EQ(cw, orig);
}

TEST(ReedSolomon, FailsBeyondCapability) {
  Rs8 rs(18, 16);  // 2 check symbols: 1 unknown error max
  Rng rng(9);
  int miscorrections = 0;
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::uint8_t> data(16);
    for (auto& d : data) d = static_cast<std::uint8_t>(rng.next_below(256));
    auto cw = rs.encode(data);
    const auto orig = cw;
    // Inject 2 errors (beyond the 1-error capability).
    cw[2] ^= static_cast<std::uint8_t>(1 + rng.next_below(255));
    cw[11] ^= static_cast<std::uint8_t>(1 + rng.next_below(255));
    const auto res = rs.decode(cw);
    // Either the decoder reports failure, or it "succeeds" onto a different
    // codeword (miscorrection) -- it must never silently return the wrong
    // data while claiming the original was restored.
    if (res.ok && cw != orig) ++miscorrections;
    EXPECT_TRUE(!res.ok || cw != orig || res.corrected_errors <= 1);
  }
  // A 2-symbol-redundancy code miscorrects some double errors by design;
  // just make sure the test exercised both branches.
  SUCCEED() << "miscorrections: " << miscorrections;
}

TEST(ReedSolomon, Gf16RoundTrip) {
  Rs16 rs(10, 8);  // the Sec. VI-D code: 8 data + 2 check 16-bit symbols
  Rng rng(10);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<std::uint16_t> data(8);
    for (auto& d : data) d = static_cast<std::uint16_t>(rng.next_below(65536));
    auto cw = rs.encode(data);
    const auto orig = cw;
    EXPECT_TRUE(rs.check(cw));
    // Two erasures (a failed x16 device contributes two symbols).
    const std::vector<unsigned> erasures{4, 5};
    cw[4] ^= static_cast<std::uint16_t>(1 + rng.next_below(65535));
    cw[5] ^= static_cast<std::uint16_t>(1 + rng.next_below(65535));
    const auto res = rs.decode(cw, erasures);
    ASSERT_TRUE(res.ok) << "trial " << trial;
    EXPECT_EQ(cw, orig);
  }
}

TEST(ReedSolomon, DecodeCleanCodewordIsNoop) {
  Rs8 rs(36, 32);
  std::vector<std::uint8_t> data(32, 0xA5);
  auto cw = rs.encode(data);
  const auto orig = cw;
  const auto res = rs.decode(cw);
  EXPECT_TRUE(res.ok);
  EXPECT_FALSE(res.detected_error);
  EXPECT_EQ(cw, orig);
}

}  // namespace
}  // namespace eccsim::gf
