// Minimal JSON document model for the experiment runner.
//
// The runner emits machine-readable results (results/<bench>.json) and the
// test suite asserts they round-trip, so we need both a writer and a
// parser.  This is a deliberately small, dependency-free implementation
// covering exactly the JSON the runner produces: null, bool, finite
// numbers, strings, arrays, and insertion-ordered objects.  It is not a
// general-purpose validator (e.g. it accepts trailing whitespace only at
// the end of the document and stores all numbers as double).
#pragma once

#include <cstdint>
#include <initializer_list>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace eccsim::runner {

/// One JSON value: a tagged union over the seven JSON types (integers and
/// reals share the number type).
///
/// Objects preserve insertion order so emitted files diff cleanly between
/// runs.  Lookup is linear, which is fine at the runner's scale (a few
/// dozen keys per object).
class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Constructs null.
  Json() = default;
  Json(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)
  Json(bool b) : type_(Type::kBool), bool_(b) {}  // NOLINT
  Json(double d) : type_(Type::kNumber), num_(d) {}  // NOLINT
  Json(int i) : Json(static_cast<double>(i)) {}  // NOLINT
  Json(std::uint64_t u)  // NOLINT(google-explicit-constructor)
      : type_(Type::kNumber), num_(static_cast<double>(u)) {}
  Json(std::int64_t i)  // NOLINT(google-explicit-constructor)
      : type_(Type::kNumber), num_(static_cast<double>(i)) {}
  Json(const char* s) : type_(Type::kString), str_(s) {}  // NOLINT
  Json(std::string s)  // NOLINT(google-explicit-constructor)
      : type_(Type::kString), str_(std::move(s)) {}

  /// Named constructors for the container types.
  static Json array();
  static Json object();

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }

  /// Typed accessors; throw std::runtime_error on a type mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const std::vector<Json>& items() const;                   ///< array
  const std::vector<std::pair<std::string, Json>>& members() const;  ///< obj

  /// Array append.  Throws unless this value is an array.
  void push_back(Json v);
  /// Object insert-or-overwrite (keeps the original position on
  /// overwrite).  Throws unless this value is an object.
  void set(const std::string& key, Json v);
  /// Object lookup; throws std::out_of_range if the key is absent.
  const Json& at(const std::string& key) const;
  /// Object membership test (false for non-objects).
  bool contains(const std::string& key) const;
  /// Element count of an array or object, 0 otherwise.
  std::size_t size() const;

  /// Serializes the document.  `indent` > 0 pretty-prints with that many
  /// spaces per level; 0 emits the compact single-line form.  Numbers are
  /// printed with enough digits to round-trip doubles exactly.
  std::string dump(int indent = 2) const;

  /// Parses a complete JSON document.  Throws std::runtime_error with a
  /// byte offset on malformed input or trailing garbage.
  static Json parse(const std::string& text);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double num_ = 0;
  std::string str_;
  std::vector<Json> arr_;
  std::vector<std::pair<std::string, Json>> obj_;
};

}  // namespace eccsim::runner
