// Fig. 11: memory EPI reduction in systems equivalent in physical
// bandwidth and size to the dual-channel commercial ECC memory systems.
// Same trends as Fig. 10 with somewhat smaller parity-sharing benefits.
#include "fig_epi_common.hpp"

int main(int argc, char** argv) {
  eccsim::bench::init(argc, argv);
  eccsim::bench::epi_style_figure(
      "fig11_epi_dual",
      "Fig. 11 -- Memory EPI reduction, dual-channel-equivalent systems",
      eccsim::ecc::SystemScale::kDualEquivalent,
      [](const eccsim::sim::RunResult& r) { return r.epi_pj; });
  return 0;
}
