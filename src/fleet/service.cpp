#include "fleet/service.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "obs/heartbeat.hpp"
#include "obs/manifest.hpp"
#include "obs/run_info.hpp"
#include "runner/json.hpp"

namespace eccsim::fleet {

namespace {

/// Caps a request line; a client that streams more than this without a
/// newline is broken, not big.
constexpr std::size_t kMaxRequestBytes = 4u << 20;

void write_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("fleet: socket write failed");
    }
    off += static_cast<std::size_t>(n);
  }
}

/// Reads until the first newline (exclusive) or EOF.
std::string read_line(int fd) {
  std::string line;
  char buf[4096];
  while (line.size() < kMaxRequestBytes) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("fleet: socket read failed");
    }
    if (n == 0) break;
    line.append(buf, static_cast<std::size_t>(n));
    const std::size_t nl = line.find('\n');
    if (nl != std::string::npos) {
      line.resize(nl);
      return line;
    }
  }
  return line;
}

runner::Json error_response(const std::string& message,
                            bool retryable = false) {
  runner::Json doc = runner::Json::object();
  doc.set("ok", false);
  doc.set("error", message);
  if (retryable) doc.set("retryable", true);
  return doc;
}

/// Deterministic backpressure hook for tests: stalls every job by
/// ECCSIM_FLEET_JOB_DELAY_MS milliseconds so a bounded queue can be
/// filled reliably.  Unset (the normal case) means no delay.
void test_job_delay() {
  const char* ms = std::getenv("ECCSIM_FLEET_JOB_DELAY_MS");
  if (!ms || !*ms) return;
  const long v = std::strtol(ms, nullptr, 10);
  if (v > 0) std::this_thread::sleep_for(std::chrono::milliseconds(v));
}

}  // namespace

Service::Service(ServiceOptions opts) : opts_(std::move(opts)) {}

Service::~Service() { stop(); }

void Service::start() {
  if (opts_.socket_path.empty()) {
    throw std::runtime_error("fleet: service needs a socket path");
  }
  std::filesystem::create_directories(opts_.results_dir + "/cache");
  std::filesystem::create_directories(opts_.results_dir + "/manifests");

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (opts_.socket_path.size() >= sizeof addr.sun_path) {
    throw std::runtime_error("fleet: socket path too long: " +
                             opts_.socket_path);
  }
  std::memcpy(addr.sun_path, opts_.socket_path.c_str(),
              opts_.socket_path.size() + 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("fleet: socket() failed");
  ::unlink(opts_.socket_path.c_str());  // stale socket from a dead daemon
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0 ||
      ::listen(listen_fd_, 16) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("fleet: cannot listen on " + opts_.socket_path);
  }

  accept_thread_ = std::thread([this] { accept_loop(); });
  executor_thread_ = std::thread([this] { executor_loop(); });
}

void Service::stop() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stopping_ && accept_thread_.joinable() == false &&
        executor_thread_.joinable() == false) {
      return;  // already fully stopped
    }
    stopping_ = true;
  }
  queue_cv_.notify_all();
  done_cv_.notify_all();
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (executor_thread_.joinable()) executor_thread_.join();
  std::vector<std::thread> sessions;
  {
    std::lock_guard<std::mutex> lk(mu_);
    sessions.swap(sessions_);
  }
  for (std::thread& t : sessions) {
    if (t.joinable()) t.join();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(opts_.socket_path.c_str());
  }
}

void Service::wait() {
  std::unique_lock<std::mutex> lk(mu_);
  done_cv_.wait(lk, [this] { return stopping_; });
}

std::uint64_t Service::requests_served() const {
  std::lock_guard<std::mutex> lk(mu_);
  return requests_;
}

void Service::accept_loop() {
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listen socket shut down (stop or shutdown op)
    }
    std::lock_guard<std::mutex> lk(mu_);
    if (stopping_) {
      ::close(fd);
      return;
    }
    sessions_.emplace_back([this, fd] { handle_connection(fd); });
  }
}

void Service::handle_connection(int fd) {
  runner::Json response;
  try {
    const runner::Json request = runner::Json::parse(read_line(fd));
    response = handle_request(request);
  } catch (const std::exception& e) {
    response = error_response(e.what());
  }
  try {
    write_all(fd, response.dump(0) + "\n");
  } catch (const std::exception&) {
    // Client hung up before the response; nothing left to do.
  }
  ::close(fd);
}

runner::Json Service::handle_request(const runner::Json& req) {
  if (!req.is_object() || !req.contains("schema") ||
      req.at("schema").as_string() != "eccsim.fleetreq/1") {
    return error_response("expected an eccsim.fleetreq/1 envelope");
  }
  const std::string op =
      req.contains("op") ? req.at("op").as_string() : "";
  {
    std::lock_guard<std::mutex> lk(mu_);
    ++requests_;
  }

  if (op == "ping") {
    runner::Json doc = runner::Json::object();
    doc.set("ok", true);
    doc.set("op", "ping");
    return doc;
  }
  if (op == "shutdown") {
    {
      std::lock_guard<std::mutex> lk(mu_);
      stopping_ = true;
    }
    queue_cv_.notify_all();
    done_cv_.notify_all();
    // Unblock accept(); the owner thread (wait() caller) runs stop() and
    // joins -- a session thread must never join itself.
    ::shutdown(listen_fd_, SHUT_RDWR);
    runner::Json doc = runner::Json::object();
    doc.set("ok", true);
    doc.set("op", "shutdown");
    return doc;
  }
  if (op == "submit") {
    return handle_submit(req);
  }
  if (op == "status" || op == "results") {
    std::string hash;
    if (req.contains("hash")) {
      hash = req.at("hash").as_string();
    } else if (req.contains("spec")) {
      hash = config_hash(spec_from_json(req.at("spec")));
    } else {
      return error_response(op + " needs a 'hash' or a 'spec'");
    }
    runner::Json doc = runner::Json::object();
    doc.set("ok", true);
    doc.set("op", op);
    doc.set("hash", hash);
    if (op == "status") {
      std::lock_guard<std::mutex> lk(mu_);
      doc.set("state", job_state_locked(hash));
      doc.set("queue_depth", static_cast<std::uint64_t>(queue_.size()));
      return doc;
    }
    const std::string path = cache_path(hash);
    std::ifstream in(path, std::ios::binary);
    if (!in) return error_response("no cached result for " + hash);
    std::ostringstream os;
    os << in.rdbuf();
    doc.set("result", runner::Json::parse(os.str()));
    return doc;
  }
  return error_response("unknown op '" + op + "'");
}

runner::Json Service::handle_submit(const runner::Json& req) {
  if (!req.contains("spec")) {
    return error_response("submit needs a 'spec'");
  }
  const FleetSpec spec = spec_from_json(req.at("spec"));
  const std::string diag = validate(spec);
  if (!diag.empty()) return error_response(diag);
  const std::string hash = config_hash(spec);
  const bool wait_done =
      req.contains("wait") && req.at("wait").as_bool();

  const bool cache_hit = std::filesystem::exists(cache_path(hash));
  std::size_t job_index = 0;
  std::string state;
  std::uint64_t seq = 0;
  {
    std::lock_guard<std::mutex> lk(mu_);
    seq = ++manifests_;
    if (cache_hit) {
      state = "cached";
    } else {
      state = job_state_locked(hash);
      bool found = false;
      for (std::size_t i = 0; i < jobs_.size(); ++i) {
        if (jobs_[i].hash == hash && jobs_[i].state != JobState::kFailed) {
          job_index = i;
          found = true;
          break;
        }
      }
      if (!found) {
        if (queue_.size() >= opts_.queue_capacity) {
          return error_response("queue full", /*retryable=*/true);
        }
        Job job;
        job.hash = hash;
        job.spec = spec;
        jobs_.push_back(std::move(job));
        job_index = jobs_.size() - 1;
        queue_.push_back(job_index);
        state = "queued";
        queue_cv_.notify_one();
      }
    }
  }

  // Per-request manifest: the cache-hit flag here is what the identity
  // check and tests/fleet_test.cpp assert on.
  obs::Manifest m;
  m.tool = "fleetd";
  m.git_sha = obs::git_head_sha();
  m.host = obs::hostname();
  m.host_cpus = obs::cpu_count();
  m.started_utc = obs::utc_timestamp();
  m.finished_utc = m.started_utc;
  m.status = "completed";
  m.extra.emplace_back("op", "submit");
  m.extra.emplace_back("config_hash", hash);
  m.extra.emplace_back("cache_hit", cache_hit ? "true" : "false");
  obs::write_manifest(
      opts_.results_dir + "/manifests/req-" + std::to_string(seq) + ".json",
      m);

  if (!cache_hit && wait_done) {
    std::unique_lock<std::mutex> lk(mu_);
    done_cv_.wait(lk, [this, job_index] {
      return stopping_ || jobs_[job_index].state == JobState::kDone ||
             jobs_[job_index].state == JobState::kFailed;
    });
    if (jobs_[job_index].state == JobState::kFailed) {
      return error_response(jobs_[job_index].error);
    }
    state = jobs_[job_index].state == JobState::kDone ? "done" : state;
  }

  runner::Json doc = runner::Json::object();
  doc.set("ok", true);
  doc.set("op", "submit");
  doc.set("hash", hash);
  doc.set("state", state);
  doc.set("cache_hit", cache_hit);
  return doc;
}

void Service::executor_loop() {
  while (true) {
    std::size_t job_index = 0;
    FleetSpec spec;
    {
      std::unique_lock<std::mutex> lk(mu_);
      queue_cv_.wait(lk, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping with nothing pending
      job_index = queue_.front();
      queue_.pop_front();
      jobs_[job_index].state = JobState::kRunning;
      spec = jobs_[job_index].spec;
    }
    test_job_delay();
    std::string error;
    try {
      Coordinator coordinator(spec);
      RunOptions run = opts_.run;
      if (run.mode == RunOptions::Mode::kWorkerProcess &&
          run.work_dir.empty()) {
        run.work_dir = opts_.results_dir + "/work/" + config_hash(spec);
      }
      run.heartbeat = &obs::Heartbeat::global();
      const FleetResult result = coordinator.run(run);
      obs::atomic_write_file(cache_path(config_hash(spec)),
                             result_to_json(result).dump(2) + "\n");
    } catch (const std::exception& e) {
      error = e.what();
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      jobs_[job_index].state =
          error.empty() ? JobState::kDone : JobState::kFailed;
      jobs_[job_index].error = error;
    }
    done_cv_.notify_all();
  }
}

std::string Service::cache_path(const std::string& hash) const {
  return opts_.results_dir + "/cache/" + hash + ".json";
}

std::string Service::job_state_locked(const std::string& hash) const {
  if (std::filesystem::exists(cache_path(hash))) return "cached";
  for (const Job& job : jobs_) {
    if (job.hash != hash) continue;
    switch (job.state) {
      case JobState::kQueued:
        return "queued";
      case JobState::kRunning:
        return "running";
      case JobState::kDone:
        return "cached";  // done implies the cache file exists
      case JobState::kFailed:
        return "failed";
    }
  }
  return "unknown";
}

runner::Json fleet_request(const std::string& socket_path,
                           const runner::Json& request) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof addr.sun_path) {
    throw std::runtime_error("fleet: socket path too long: " + socket_path);
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("fleet: socket() failed");
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    ::close(fd);
    throw std::runtime_error("fleet: cannot connect to " + socket_path);
  }
  std::string response;
  try {
    write_all(fd, request.dump(0) + "\n");
    response = read_line(fd);
  } catch (...) {
    ::close(fd);
    throw;
  }
  ::close(fd);
  return runner::Json::parse(response);
}

runner::Json make_request(const std::string& op) {
  runner::Json doc = runner::Json::object();
  doc.set("schema", "eccsim.fleetreq/1");
  doc.set("op", op);
  return doc;
}

}  // namespace eccsim::fleet
