file(REMOVE_RECURSE
  "CMakeFiles/ecc_sim.dir/system.cpp.o"
  "CMakeFiles/ecc_sim.dir/system.cpp.o.d"
  "libecc_sim.a"
  "libecc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
