#!/bin/sh
# Builds, tests, and regenerates every paper table/figure plus ablations.
# Usage: ./scripts_run_all.sh [--quick]
set -e
[ "$1" = "--quick" ] && export ECCSIM_QUICK=1
cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure
for b in build/bench/*; do
  case "$b" in
    *microbench*) "$b" --benchmark_min_time=0.05 ;;
    *) "$b" ;;
  esac
done
