// End-to-end tests of the ECC Parity mechanism (Sec. III): parity
// maintenance under writes (Eq. 1), reconstruction-based correction,
// page retirement, bank-pair fault marking, correction-bit
// materialization, parity recomputation, and scrubbing.
#include <gtest/gtest.h>

#include <memory>

#include "common/rng.hpp"
#include "ecc/codec.hpp"
#include "eccparity/manager.hpp"

namespace eccsim::eccparity {
namespace {

dram::MemGeometry test_geom(std::uint32_t channels = 8) {
  dram::MemGeometry g;
  g.channels = channels;
  g.ranks_per_channel = 2;
  g.banks_per_rank = 8;
  g.rows_per_bank = 64;
  g.line_bytes = 64;
  return g;
}

std::unique_ptr<EccParityManager> make_manager(std::uint32_t channels = 8,
                                               unsigned threshold = 4) {
  return std::make_unique<EccParityManager>(
      test_geom(channels), ecc::make_codec(ecc::SchemeId::kLotEcc5),
      threshold);
}

std::vector<std::uint8_t> pattern_line(Rng& rng) {
  std::vector<std::uint8_t> v(64);
  for (auto& b : v) b = static_cast<std::uint8_t>(rng.next_below(256));
  return v;
}

TEST(EccParityManager, CleanReadsReturnWrittenData) {
  auto mgr = make_manager();
  Rng rng(30);
  for (std::uint64_t line = 0; line < 200; line += 3) {
    const auto v = pattern_line(rng);
    mgr->write_line(line, v);
    const ReadResult r = mgr->read_line(line);
    EXPECT_FALSE(r.error_detected);
    EXPECT_EQ(r.data, v);
  }
}

TEST(EccParityManager, ParityInvariantHoldsAfterWrites) {
  auto mgr = make_manager();
  Rng rng(31);
  // Mixed first-writes and overwrites across many groups.
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t line = rng.next_below(1000);
    mgr->write_line(line, pattern_line(rng));
  }
  EXPECT_EQ(mgr->verify_parity_invariant(), 0u);
}

TEST(EccParityManager, ChipFaultCorrectedViaParityReconstruction) {
  auto mgr = make_manager();
  Rng rng(32);
  const std::uint64_t line = 77;
  const auto v = pattern_line(rng);
  mgr->write_line(line, v);
  // Populate some group members too (not required, but realistic).
  for (const Member& m : mgr->layout().members(mgr->layout().group_of(line))) {
    if (m.line_index != line) mgr->write_line(m.line_index, pattern_line(rng));
  }
  mgr->corrupt_chip_share(line, 2);
  const ReadResult r = mgr->read_line(line);
  EXPECT_TRUE(r.error_detected);
  ASSERT_TRUE(r.corrected);
  EXPECT_TRUE(r.used_parity_reconstruction);
  EXPECT_FALSE(r.used_materialized_bits);
  EXPECT_EQ(r.data, v);
  // The corrected value was written back: next read is clean.
  const ReadResult again = mgr->read_line(line);
  EXPECT_FALSE(again.error_detected);
  EXPECT_EQ(again.data, v);
}

TEST(EccParityManager, FaultOnUntouchedLineCorrects) {
  auto mgr = make_manager();
  // A never-written line reads as zeros; a fault on it must still be
  // detected and corrected back to zeros via the (implicitly zero) parity.
  const std::uint64_t line = 4242;
  mgr->corrupt_chip_share(line, 1);
  const ReadResult r = mgr->read_line(line);
  EXPECT_TRUE(r.error_detected);
  ASSERT_TRUE(r.corrected);
  EXPECT_EQ(r.data, std::vector<std::uint8_t>(64, 0));
}

TEST(EccParityManager, ErrorsBelowThresholdRetirePages) {
  auto mgr = make_manager(8, 4);
  Rng rng(33);
  const std::uint64_t line = 128;
  mgr->write_line(line, pattern_line(rng));
  mgr->corrupt_chip_share(line, 0);
  const ReadResult r = mgr->read_line(line);
  EXPECT_EQ(r.action, ErrorAction::kRetirePage);
  EXPECT_GT(mgr->retired_page_count(), 0u);
  const std::uint64_t page = line / test_geom().lines_per_row();
  EXPECT_TRUE(mgr->page_retired(page));
  EXPECT_EQ(mgr->health().faulty_pairs(), 0u);
}

TEST(EccParityManager, SaturatingCounterMarksPairFaulty) {
  auto mgr = make_manager(8, 4);
  Rng rng(34);
  // Four errors in lines of the same bank pair: counter saturates.
  // Select lines that decode into the same (channel, rank, bank-pair).
  const auto target = BankHealthTable::pair_of(mgr->map().decode(0));
  std::vector<std::uint64_t> lines;
  for (std::uint64_t l = 0; lines.size() < 4; ++l) {
    if (BankHealthTable::pair_of(mgr->map().decode(l)) == target) {
      lines.push_back(l);
    }
  }
  for (auto l : lines) mgr->write_line(l, pattern_line(rng));
  unsigned marked = 0;
  for (auto l : lines) {
    mgr->corrupt_chip_share(l, 3);
    const ReadResult r = mgr->read_line(l);
    ASSERT_TRUE(r.corrected);
    if (r.action == ErrorAction::kMarkFaulty) ++marked;
  }
  EXPECT_EQ(marked, 1u);
  EXPECT_EQ(mgr->health().faulty_pairs(), 1u);
  EXPECT_GT(mgr->stats().lines_materialized, 0u);
}

TEST(EccParityManager, FaultyBankUsesMaterializedBits) {
  auto mgr = make_manager(8, 1);  // threshold 1: first error marks faulty
  Rng rng(35);
  const std::uint64_t line = 5;
  const auto v = pattern_line(rng);
  mgr->write_line(line, v);
  mgr->corrupt_chip_share(line, 0);
  const ReadResult first = mgr->read_line(line);
  ASSERT_TRUE(first.corrected);
  EXPECT_EQ(first.action, ErrorAction::kMarkFaulty);

  // A second fault in the same (now faulty) bank: correction must come
  // from the materialized ECC line, not parity reconstruction (step B).
  mgr->corrupt_chip_share(line, 1);
  const ReadResult second = mgr->read_line(line);
  ASSERT_TRUE(second.corrected);
  EXPECT_TRUE(second.used_materialized_bits);
  EXPECT_FALSE(second.used_parity_reconstruction);
  EXPECT_EQ(second.data, v);
}

TEST(EccParityManager, WritesToFaultyBankUpdateMaterializedBits) {
  auto mgr = make_manager(8, 1);
  Rng rng(36);
  const std::uint64_t line = 9;
  mgr->write_line(line, pattern_line(rng));
  mgr->corrupt_chip_share(line, 0);
  ASSERT_TRUE(mgr->read_line(line).corrected);  // marks pair faulty

  // Overwrite, corrupt again, and require correction of the NEW value.
  const auto v2 = pattern_line(rng);
  mgr->write_line(line, v2);
  mgr->corrupt_chip_share(line, 2);
  const ReadResult r = mgr->read_line(line);
  ASSERT_TRUE(r.corrected);
  EXPECT_TRUE(r.used_materialized_bits);
  EXPECT_EQ(r.data, v2);
}

TEST(EccParityManager, ParityInvariantHoldsAfterMaterialization) {
  auto mgr = make_manager(8, 1);
  Rng rng(37);
  // Populate a stripe's worth of group members plus neighbors.
  for (std::uint64_t line = 0; line < 600; line += 2) {
    mgr->write_line(line, pattern_line(rng));
  }
  mgr->corrupt_chip_share(0, 0);
  ASSERT_TRUE(mgr->read_line(0).corrected);
  ASSERT_GT(mgr->health().faulty_pairs(), 0u);
  // After recomputation, parity invariant (which skips faulty-bank
  // members) must hold for every group.
  EXPECT_EQ(mgr->verify_parity_invariant(), 0u);
}

TEST(EccParityManager, GroupMembersSurviveSiblingMaterialization) {
  // After a pair is marked faulty and parities are recomputed without it,
  // faults in the *other* channels must still be correctable.
  auto mgr = make_manager(8, 1);
  Rng rng(38);
  const std::uint64_t victim = 0;
  mgr->write_line(victim, pattern_line(rng));
  const auto group = mgr->layout().group_of(victim);
  std::vector<std::uint64_t> siblings;
  for (const Member& m : mgr->layout().members(group)) {
    if (m.line_index != victim) {
      siblings.push_back(m.line_index);
      mgr->write_line(m.line_index, pattern_line(rng));
    }
  }
  mgr->corrupt_chip_share(victim, 0);
  ASSERT_TRUE(mgr->read_line(victim).corrected);  // marks victim's pair

  // Now fault a sibling (different channel, healthy bank).
  ASSERT_FALSE(siblings.empty());
  const std::uint64_t sib = siblings[0];
  const ReadResult clean = mgr->read_line(sib);
  const auto expect = clean.data;
  mgr->corrupt_chip_share(sib, 1);
  const ReadResult r = mgr->read_line(sib);
  ASSERT_TRUE(r.corrected) << "sibling must remain protected";
  EXPECT_TRUE(r.used_parity_reconstruction);
  EXPECT_EQ(r.data, expect);
}

TEST(EccParityManager, SameLocationFaultsInTwoChannelsUncorrectable) {
  // The documented limitation (Sec. III-A): two members of one parity
  // group corrupted at once cannot both be reconstructed.
  auto mgr = make_manager(8, 100);  // high threshold: no materialization
  Rng rng(39);
  const std::uint64_t a = 0;
  mgr->write_line(a, pattern_line(rng));
  const auto group = mgr->layout().group_of(a);
  std::uint64_t b = a;
  for (const Member& m : mgr->layout().members(group)) {
    if (m.line_index != a) {
      b = m.line_index;
      break;
    }
  }
  ASSERT_NE(a, b);
  mgr->write_line(b, pattern_line(rng));
  mgr->corrupt_chip_share(a, 0);
  mgr->corrupt_chip_share(b, 0);
  const ReadResult r = mgr->read_line(a);
  EXPECT_TRUE(r.error_detected);
  EXPECT_TRUE(r.uncorrectable);
}

TEST(EccParityManager, ScrubFindsAndFixesLatentErrors) {
  auto mgr = make_manager(8, 100);
  Rng rng(40);
  for (std::uint64_t line = 0; line < 300; ++line) {
    mgr->write_line(line, pattern_line(rng));
  }
  // Latent faults in three separate lines (distinct groups).
  mgr->corrupt_chip_share(10, 0);
  mgr->corrupt_chip_share(130, 1);
  mgr->corrupt_chip_share(260, 2);
  const std::uint64_t found = mgr->scrub();
  EXPECT_EQ(found, 3u);
  // Second scrub: everything was corrected and written back.
  EXPECT_EQ(mgr->scrub(), 0u);
}

TEST(EccParityManager, MaterializedFractionTracksFaultyBanks) {
  auto mgr = make_manager(8, 1);
  Rng rng(41);
  for (std::uint64_t line = 0; line < 400; ++line) {
    mgr->write_line(line, pattern_line(rng));
  }
  EXPECT_DOUBLE_EQ(mgr->materialized_fraction(), 0.0);
  mgr->corrupt_chip_share(3, 0);
  ASSERT_TRUE(mgr->read_line(3).corrected);
  EXPECT_GT(mgr->materialized_fraction(), 0.0);
  EXPECT_LT(mgr->materialized_fraction(), 1.0);
}

TEST(EccParityManager, WorksAcrossChannelCounts) {
  // The mechanism must be channel-count agnostic (dual- through 10-channel
  // configurations of Table II).
  for (std::uint32_t n : {2u, 4u, 5u, 8u, 10u}) {
    auto mgr = make_manager(n, 4);
    Rng rng(42 + n);
    const auto v = pattern_line(rng);
    mgr->write_line(11, v);
    mgr->corrupt_chip_share(11, 0);
    const ReadResult r = mgr->read_line(11);
    ASSERT_TRUE(r.corrected) << "channels=" << n;
    EXPECT_EQ(r.data, v);
    EXPECT_EQ(mgr->verify_parity_invariant(), 0u) << "channels=" << n;
  }
}

TEST(EccParityManager, RaimParityVariantRoundTrip) {
  // The same manager drives RAIM+ECC Parity (DIMM-kill underneath).
  dram::MemGeometry g = test_geom(10);
  EccParityManager mgr(g, ecc::make_codec(ecc::SchemeId::kRaimParity), 4);
  Rng rng(55);
  std::vector<std::uint8_t> v(64);
  for (auto& b : v) b = static_cast<std::uint8_t>(rng.next_below(256));
  mgr.write_line(21, v);
  // Kill DIMM 1 (half the line).
  mgr.corrupt_chip_share(21, 1);
  const ReadResult r = mgr.read_line(21);
  ASSERT_TRUE(r.corrected);
  EXPECT_TRUE(r.used_parity_reconstruction);
  EXPECT_EQ(r.data, v);
}

TEST(EccParityManager, StatsAreConsistent) {
  auto mgr = make_manager(8, 2);
  Rng rng(56);
  for (std::uint64_t line = 0; line < 50; ++line) {
    mgr->write_line(line, pattern_line(rng));
  }
  // Two errors in the same bank pair saturate the threshold-2 counter.
  const auto target = BankHealthTable::pair_of(mgr->map().decode(7));
  std::uint64_t second = 7;
  for (std::uint64_t l = 8; l < 5000; ++l) {
    if (BankHealthTable::pair_of(mgr->map().decode(l)) == target) {
      second = l;
      break;
    }
  }
  ASSERT_NE(second, 7u);
  mgr->corrupt_chip_share(7, 0);
  mgr->read_line(7);
  mgr->corrupt_chip_share(second, 0);
  mgr->read_line(second);
  const ManagerStats& s = mgr->stats();
  EXPECT_EQ(s.errors_detected, 2u);
  EXPECT_EQ(s.corrected_via_parity, 2u);
  EXPECT_EQ(s.pairs_marked_faulty, 1u);  // threshold 2
  EXPECT_EQ(s.uncorrectable, 0u);
  EXPECT_GE(s.writes, 50u);
}

TEST(EccParityManager, RejectsMismatchedCodec) {
  dram::MemGeometry g = test_geom(8);
  g.line_bytes = 64;
  EXPECT_THROW(
      EccParityManager(g, ecc::make_codec(ecc::SchemeId::kChipkill36), 4),
      std::invalid_argument);  // chipkill36 codec is 128B
}

}  // namespace
}  // namespace eccsim::eccparity
