// Ablation for the Sec. V-D discussion: LOT-ECC5+ECC Parity issues ~13%
// more memory accesses per instruction than 18-device commercial chipkill;
// if memory bandwidth is the bottleneck that could cost performance.  The
// paper's remedy is a slightly faster DRAM speed bin: using [18] it
// estimates a 16% faster bin costs ~5% memory EPI -- tiny against the
// ~49% EPI advantage.  This bench measures exactly that trade with the
// simulator's speed-bin knob.
#include <cstdio>

#include "bench_common.hpp"

using namespace eccsim;

int main(int argc, char** argv) {
  eccsim::bench::init(argc, argv);
  std::printf("Ablation -- DRAM speed bin (Sec. V-D)\n\n");
  sim::SimOptions opts;
  opts.target_instructions = bench::target_instructions();

  Table t({"configuration", "EPI (pJ/instr)", "IPC", "MAPI",
           "EPI vs ck18"});
  const auto ck18 = sim::run_experiment(ecc::SchemeId::kChipkill18,
                                        ecc::SystemScale::kQuadEquivalent,
                                        "lbm", opts);
  t.add_row({"chipkill18 (baseline)", Table::num(ck18.epi_pj, 1),
             Table::num(ck18.ipc, 2), Table::num(ck18.mapi, 4), "--"});

  for (double speed : {1.0, 1.08, 1.16}) {
    ecc::SchemeDesc d = ecc::make_scheme(ecc::SchemeId::kLotEcc5Parity,
                                         ecc::SystemScale::kQuadEquivalent);
    d.speed_factor = speed;
    sim::SystemSim s(d, trace::workload_by_name("lbm"), sim::CpuConfig{},
                     opts);
    const auto r = s.run();
    char label[64];
    std::snprintf(label, sizeof label, "lotecc5+parity @ %.0f%% speed",
                  speed * 100);
    t.add_row({label, Table::num(r.epi_pj, 1), Table::num(r.ipc, 2),
               Table::num(r.mapi, 4),
               Table::num(bench::reduction_pct(ck18.epi_pj, r.epi_pj), 1) +
                   "% lower"});
  }
  bench::emit("ablation_speedbin", t);
  std::printf(
      "Paper check: the 116%% bin costs a few %% EPI relative to the 100%%\n"
      "bin -- small against the ~45-50%% reduction vs chipkill18 -- while\n"
      "recovering latency/bandwidth headroom for the parity updates.\n");
  return 0;
}
