// Scoped wall-clock profiling: STATS_SCOPE("codec.rs_decode") at the top
// of a function (or block) attributes its wall-clock to that name in the
// process-wide profile that lands in results/<bench>.stats.json.
//
// Cost model: when profiling is disabled (the default) a scope is one
// relaxed atomic load and a predictable branch -- cheap enough for
// per-DRAM-cycle call sites.  When enabled it adds two steady_clock reads
// plus an uncontended per-thread lock, so enabling --stats measurably
// slows hot paths; that is expected of a profiling run and is documented
// in docs/OBSERVABILITY.md.  Profiling never touches simulation state.
//
// Threading: each thread accumulates into its own buffer (registered
// globally on first use); Profiler::snapshot() merges all buffers by
// scope name -- the merge-on-finalize discipline shared with the stat
// registry.  Compile with -DECCSIM_DISABLE_PROFILING to remove every
// scope at compile time.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace eccsim::stats {

/// Global profiling switch; namespace-scope so the disabled fast path is
/// a single load with no static-init guard.
inline std::atomic<bool> g_profiling_enabled{false};

struct ScopeTotals {
  std::uint64_t calls = 0;
  double seconds = 0;
};

class Profiler {
 public:
  static void set_enabled(bool on) {
    g_profiling_enabled.store(on, std::memory_order_relaxed);
  }
  static bool enabled() {
    return g_profiling_enabled.load(std::memory_order_relaxed);
  }

  /// Adds one finished scope to the calling thread's buffer.  `name` must
  /// be a string literal (keyed by pointer in the per-thread buffer,
  /// merged by content at snapshot time).
  static void record(const char* name, double seconds);

  /// Totals across every thread that ever recorded, sorted by name.
  static std::vector<std::pair<std::string, ScopeTotals>> snapshot();

  /// Clears all buffers (tests).
  static void reset();
};

/// RAII timer behind STATS_SCOPE.
class ScopeTimer {
 public:
  explicit ScopeTimer(const char* name) {
    if (Profiler::enabled()) {
      name_ = name;
      start_ = std::chrono::steady_clock::now();
    }
  }
  ~ScopeTimer() {
    if (name_ != nullptr) {
      Profiler::record(
          name_, std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - start_)
                     .count());
    }
  }
  ScopeTimer(const ScopeTimer&) = delete;
  ScopeTimer& operator=(const ScopeTimer&) = delete;

 private:
  const char* name_ = nullptr;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace eccsim::stats

#define ECCSIM_STATS_CONCAT2(a, b) a##b
#define ECCSIM_STATS_CONCAT(a, b) ECCSIM_STATS_CONCAT2(a, b)
#ifndef ECCSIM_DISABLE_PROFILING
#define STATS_SCOPE(name) \
  ::eccsim::stats::ScopeTimer ECCSIM_STATS_CONCAT(eccsim_scope_, __LINE__)(name)
#else
#define STATS_SCOPE(name) ((void)0)
#endif
