// Monte Carlo lifetime simulation of multi-channel memory systems under
// field DRAM fault rates, plus the closed-form models it is validated
// against.  Drives Fig. 2 (mean time between faults in different channels),
// Fig. 8 (end-of-life fraction of memory with materialized correction
// bits), Fig. 18 (probability of multi-channel faults inside one scrub
// window), Table III's EOL columns, and the Sec. VI-B HPC stall estimate.
//
// Sampling: each chip's faults of each type arrive as independent Poisson
// processes (the exponential failure distribution the paper assumes).
// Simulations fan out across host threads with deterministic per-system
// RNG substreams, so results are reproducible for any thread count.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "faults/fault_model.hpp"

namespace eccsim::faults {

/// Geometry of one simulated system, in the units that matter for
/// reliability: channels x ranks x chips-per-rank, with 8 banks per chip.
struct SystemShape {
  unsigned channels = 8;
  unsigned ranks_per_channel = 4;
  unsigned chips_per_rank = 9;
  unsigned banks_per_rank = 8;

  unsigned chips_per_channel() const {
    return ranks_per_channel * chips_per_rank;
  }
  unsigned total_chips() const { return channels * chips_per_channel(); }
  /// Logical banks per channel (bank-pair bookkeeping granularity).
  unsigned banks_per_channel() const {
    return ranks_per_channel * banks_per_rank;
  }
  unsigned total_banks() const { return channels * banks_per_channel(); }
};

/// One sampled fault event.
struct FaultEvent {
  double time_hours = 0;
  FaultType type = FaultType::kBit;
  unsigned channel = 0;
  unsigned rank = 0;
  unsigned chip = 0;

  bool operator<(const FaultEvent& o) const { return time_hours < o.time_hours; }
};

/// Samples every fault event of one system over `lifetime_hours`.
std::vector<FaultEvent> sample_lifetime(const SystemShape& shape,
                                        const FitRates& rates,
                                        double lifetime_hours, Rng& rng);

// ---------------------------------------------------------------------------
// Fig. 2: mean time between faults in different channels.

struct MtbfResult {
  double analytic_hours = 0;     ///< 1 / (total fault rate of the system)
  double simulated_hours = 0;    ///< mean observed gap between successive
                                 ///< faults in different channels
  std::uint64_t gaps_observed = 0;
};

/// Analytic mean time between faults anywhere in the system.  Faults in
/// *different* channels differ from this only by the (tiny) probability of
/// two consecutive faults sharing a channel.
double analytic_mtbf_hours(const SystemShape& shape, double total_fit);

MtbfResult mtbf_between_channels(const SystemShape& shape,
                                 const FitRates& rates, unsigned systems,
                                 double lifetime_hours, std::uint64_t seed);

// ---------------------------------------------------------------------------
// Fig. 8 / Table III: end-of-life materialized-correction-bit fraction.

struct EolResult {
  double mean_fraction = 0;    ///< average fraction of memory in faulty pairs
  double p999_fraction = 0;    ///< 99.9th percentile across systems
  double systems_with_any = 0; ///< fraction of systems with >= 1 faulty pair
};

/// Simulates `systems` systems for `lifetime_hours` and reports the
/// fraction of memory whose ECC correction bits end up stored in memory
/// (i.e. the memory of bank pairs marked faulty), Sec. III-E.
EolResult eol_materialized_fraction(const SystemShape& shape,
                                    const FitRates& rates, unsigned systems,
                                    double lifetime_hours,
                                    std::uint64_t seed);

// ---------------------------------------------------------------------------
// Fig. 18 / Sec. VI-C: scrub-interval analysis.

struct ScrubWindowResult {
  double analytic_probability = 0;   ///< P(>=2 channels fault in any window)
  double simulated_probability = 0;
};

/// Analytic probability that faults occur in more than one channel within
/// any single detection window of `window_hours` during `lifetime_hours`.
double analytic_multichannel_window_probability(const SystemShape& shape,
                                                double total_fit,
                                                double window_hours,
                                                double lifetime_hours);

ScrubWindowResult multichannel_window_probability(
    const SystemShape& shape, const FitRates& rates, double window_hours,
    double lifetime_hours, unsigned systems, std::uint64_t seed);

// ---------------------------------------------------------------------------
// Sec. VI-B: HPC stall estimate.

struct HpcStallParams {
  double total_memory_bytes = 2.0 * 1024 * 1024 * 1024 * 1024 * 1024;  // 2 PB
  double node_memory_bytes = 128.0 * 1024 * 1024 * 1024;               // 128 GB
  double nic_bandwidth_bytes_per_s = 1.0 * 1024 * 1024 * 1024;         // 1 GB/s
  double chip_capacity_bytes = 256.0 * 1024 * 1024;                    // 2 Gb
  double lifetime_hours = 7 * 24 * 365.25;
};

/// Fraction of time the whole HPC system is stalled migrating threads off
/// nodes with column-or-larger faults and reconstructing correction bits.
double hpc_stall_fraction(const HpcStallParams& params,
                          const FitRates& rates);

// ---------------------------------------------------------------------------
// Shared helper: deterministic parallel map over system indices.

/// Runs fn(system_index, rng) for each index in [0, systems) across host
/// threads; each index gets Rng(seed).substream(index), so the result set
/// is independent of the thread count.
void parallel_systems(unsigned systems, std::uint64_t seed,
                      const std::function<void(unsigned, Rng&)>& fn);

}  // namespace eccsim::faults
