#include "common/stats.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace eccsim {

double RunningStat::stddev() const { return std::sqrt(variance()); }

void RunningStat::merge(const RunningStat& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double nt = na + nb;
  m2_ += other.m2_ + delta * delta * na * nb / nt;
  mean_ += delta * nb / nt;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double SampleSet::mean() const {
  if (samples_.empty()) return 0.0;
  double s = 0.0;
  for (double x : samples_) s += x;
  return s / static_cast<double>(samples_.size());
}

namespace {

/// Shared nearest-rank lookup: smallest value with at least p% of samples
/// at or below it.  p = 0 maps to the minimum, p = 100 to the maximum.
double nearest_rank(const std::vector<double>& sorted, double p) {
  p = std::clamp(p, 0.0, 100.0);
  const auto n = sorted.size();
  std::size_t rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(n)));
  if (rank == 0) rank = 1;
  return sorted[rank - 1];
}

}  // namespace

double SampleSet::percentile(double p) const {
  if (samples_.empty()) return 0.0;
  if (!sorted_valid_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
  return nearest_rank(sorted_, p);
}

double SampleSet::min() const {
  if (samples_.empty()) return 0.0;
  return *std::min_element(samples_.begin(), samples_.end());
}

double SampleSet::max() const {
  if (samples_.empty()) return 0.0;
  return *std::max_element(samples_.begin(), samples_.end());
}

void SampleSet::merge(const SampleSet& other) {
  samples_.insert(samples_.end(), other.samples_.begin(),
                  other.samples_.end());
  sorted_valid_ = false;
}

QuantileReservoir::QuantileReservoir(std::size_t cap) : cap_(cap) {
  if (cap == 0) {
    throw std::invalid_argument("QuantileReservoir: cap must be > 0");
  }
  heap_.reserve(cap);
}

void QuantileReservoir::add(double value, std::uint64_t key) {
  ++offered_;
  const Item item{key, value};
  if (heap_.size() < cap_) {
    heap_.push_back(item);
    std::push_heap(heap_.begin(), heap_.end());
    sorted_valid_ = false;
    return;
  }
  if (item < heap_.front()) {
    std::pop_heap(heap_.begin(), heap_.end());
    heap_.back() = item;
    std::push_heap(heap_.begin(), heap_.end());
    sorted_valid_ = false;
  }
}

double QuantileReservoir::percentile(double p) const {
  if (heap_.empty()) return 0.0;
  if (!sorted_valid_) {
    sorted_.clear();
    sorted_.reserve(heap_.size());
    for (const Item& it : heap_) sorted_.push_back(it.value);
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
  return nearest_rank(sorted_, p);
}

double relative_ci95(const RunningStat& s) {
  if (s.count() < 2 || s.mean() == 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  const double half_width =
      1.959963985 * s.stddev() / std::sqrt(static_cast<double>(s.count()));
  return half_width / std::fabs(s.mean());
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (bins == 0) throw std::invalid_argument("Histogram: bins must be > 0");
  if (!(hi > lo)) throw std::invalid_argument("Histogram: hi must be > lo");
}

void Histogram::add(double x) {
  const double frac = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<std::ptrdiff_t>(
      frac * static_cast<double>(counts_.size()));
  idx = std::clamp<std::ptrdiff_t>(
      idx, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bin_low(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_high(std::size_t i) const { return bin_low(i + 1); }

std::string Histogram::ascii(std::size_t width) const {
  std::ostringstream os;
  std::size_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar =
        counts_[i] * width / peak;
    os.setf(std::ios::fixed);
    os.precision(3);
    os << "[" << bin_low(i) << ", " << bin_high(i) << ") ";
    for (std::size_t b = 0; b < bar; ++b) os << '#';
    os << ' ' << counts_[i] << '\n';
  }
  return os.str();
}

double geomean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double log_sum = 0.0;
  for (double v : values) {
    if (v <= 0.0) {
      throw std::invalid_argument("geomean: values must be positive");
    }
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

double mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double s = 0.0;
  for (double v : values) s += v;
  return s / static_cast<double>(values.size());
}

}  // namespace eccsim
