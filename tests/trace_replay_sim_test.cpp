// End-to-end record/replay bit-identity: a trace recorded with a
// workload's canonical sweep seed, fed back through SystemSim via
// SimOptions::trace_in, must reproduce every per-cell metric of the live
// synthetic run exactly -- the property the fig10 replay CI job leans on.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "sim/system.hpp"
#include "trace/workload.hpp"
#include "tracefile/replay.hpp"

namespace eccsim::sim {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

SimOptions base_opts(std::uint64_t seed) {
  SimOptions opts;
  opts.target_instructions = 50'000;  // smoke-sized measured phase
  opts.seed = seed;
  return opts;
}

void expect_identical(const RunResult& live, const RunResult& replay) {
  EXPECT_EQ(live.scheme, replay.scheme);
  EXPECT_EQ(live.workload, replay.workload);
  EXPECT_EQ(live.instructions, replay.instructions);
  EXPECT_EQ(live.mem_cycles, replay.mem_cycles);
  EXPECT_EQ(live.ipc, replay.ipc);
  EXPECT_EQ(live.epi_pj, replay.epi_pj);
  EXPECT_EQ(live.dynamic_epi_pj, replay.dynamic_epi_pj);
  EXPECT_EQ(live.background_epi_pj, replay.background_epi_pj);
  EXPECT_EQ(live.mapi, replay.mapi);
  EXPECT_EQ(live.bandwidth_utilization, replay.bandwidth_utilization);
  EXPECT_EQ(live.avg_read_latency, replay.avg_read_latency);
  EXPECT_EQ(live.mem.reads, replay.mem.reads);
  EXPECT_EQ(live.mem.writes, replay.mem.writes);
  EXPECT_EQ(live.mem.ecc_reads, replay.mem.ecc_reads);
  EXPECT_EQ(live.mem.ecc_writes, replay.mem.ecc_writes);
  EXPECT_EQ(live.llc.hits, replay.llc.hits);
  EXPECT_EQ(live.llc.misses, replay.llc.misses);
}

// Three workloads spanning the behavioral range (pointer-chasing Bin2,
// streaming Bin2, cache-resident Bin1) x two schemes (a 128B-line
// commercial baseline and the paper's proposal).  One shared trace per
// workload serves both schemes, exactly as the bench front-end resolves
// them.
TEST(TraceReplaySim, BitIdenticalToLiveGeneration) {
  // Warmup consumes 3 * (8MB/64B/8 cores) = 49152 ops/core before the
  // measured phase; 52k/core covers a 50k-instruction run with headroom.
  const std::uint64_t ops_per_core = 52'000;
  for (const std::string workload : {"mcf", "lbm", "sjeng"}) {
    const std::string path = temp_path("replay_sim_" + workload +
                                       ".ecctrace");
    const std::uint64_t seed = trace::paper_sweep_seed(workload);
    tracefile::record_workload_trace(trace::workload_by_name(workload), 8,
                                     ops_per_core, seed, path);
    for (const auto id :
         {ecc::SchemeId::kChipkill36, ecc::SchemeId::kLotEcc5Parity}) {
      SimOptions live_opts = base_opts(seed);
      const RunResult live = run_experiment(
          id, ecc::SystemScale::kQuadEquivalent, workload, live_opts);

      SimOptions replay_opts = base_opts(seed);
      replay_opts.trace_in = path;
      const RunResult replay = run_experiment(
          id, ecc::SystemScale::kQuadEquivalent, workload, replay_opts);
      expect_identical(live, replay);
    }
    std::remove(path.c_str());
  }
}

TEST(TraceReplaySim, RecordingRunIsUnperturbedAndReplayable) {
  const std::string path = temp_path("rerecord.ecctrace");
  const std::uint64_t seed = trace::paper_sweep_seed("hmmer");

  SimOptions plain = base_opts(seed);
  const RunResult baseline = run_experiment(
      ecc::SchemeId::kRaim, ecc::SystemScale::kDualEquivalent, "hmmer",
      plain);

  SimOptions recording = base_opts(seed);
  recording.trace_out = path;
  const RunResult recorded = run_experiment(
      ecc::SchemeId::kRaim, ecc::SystemScale::kDualEquivalent, "hmmer",
      recording);
  expect_identical(baseline, recorded);  // the tee must not perturb

  SimOptions replaying = base_opts(seed);
  replaying.trace_in = path;
  const RunResult replayed = run_experiment(
      ecc::SchemeId::kRaim, ecc::SystemScale::kDualEquivalent, "hmmer",
      replaying);
  expect_identical(baseline, replayed);
  std::remove(path.c_str());
}

TEST(TraceReplaySim, PostLlcCaptureMatchesMemoryTraffic) {
  const std::string path = temp_path("postcap.ecctrace");
  SimOptions opts = base_opts(7);
  opts.trace_out = path;
  opts.trace_point = tracefile::CapturePoint::kPostLlc;
  const RunResult r = run_experiment(
      ecc::SchemeId::kLotEcc5Parity, ecc::SystemScale::kQuadEquivalent,
      "libquantum", opts);

  // Every DRAM request the run issued must be in the file: reads + writes
  // (data and ECC alike) equals the recorded op count.
  tracefile::TraceReader reader(path);
  EXPECT_EQ(reader.meta().point, tracefile::CapturePoint::kPostLlc);
  EXPECT_EQ(reader.total_ops(), r.mem.reads + r.mem.writes);
  std::uint64_t prev_cycle = 0;
  std::uint64_t data = 0, ecc = 0;
  tracefile::PostOp rec;
  while (reader.next(rec)) {
    EXPECT_GE(rec.cycle, prev_cycle);  // issue order
    prev_cycle = rec.cycle;
    (rec.line_class == dram::LineClass::kData ? data : ecc) += 1;
  }
  EXPECT_GT(data, 0u);
  EXPECT_GT(ecc, 0u);  // the parity scheme must generate maintenance traffic
  std::remove(path.c_str());
}

TEST(TraceReplaySim, MismatchedTraceRejected) {
  const std::string path = temp_path("mismatchwl.ecctrace");
  tracefile::record_workload_trace(trace::workload_by_name("mcf"), 8, 100,
                                   1, path);
  SimOptions opts = base_opts(1);
  opts.trace_in = path;
  // Wrong workload for the trace: refused up front, not silently run.
  EXPECT_THROW(run_experiment(ecc::SchemeId::kChipkill36,
                              ecc::SystemScale::kQuadEquivalent, "lbm",
                              opts),
               tracefile::TraceError);
  // Wrong core count, same workload.
  tracefile::record_workload_trace(trace::workload_by_name("lbm"), 4, 100,
                                   1, path);
  EXPECT_THROW(run_experiment(ecc::SchemeId::kChipkill36,
                              ecc::SystemScale::kQuadEquivalent, "lbm",
                              opts),
               tracefile::TraceError);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace eccsim::sim
