#include "bench_common.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

namespace eccsim::bench {

namespace {

bool quick_mode() {
  const char* q = std::getenv("ECCSIM_QUICK");
  return q != nullptr && std::string(q) != "0";
}

bool cache_enabled() {
  const char* c = std::getenv("ECCSIM_SWEEP_CACHE");
  return c == nullptr || std::string(c) != "0";
}

std::string cache_path(ecc::SystemScale scale) {
  return std::string("bench_results/sweep_") +
         (scale == ecc::SystemScale::kQuadEquivalent ? "quad" : "dual") +
         (quick_mode() ? "_quick" : "") + ".csv";
}

std::string serialize(const sim::RunResult& r) {
  std::ostringstream os;
  os.precision(17);
  os << r.scheme << ',' << r.workload << ',' << r.instructions << ','
     << r.mem_cycles << ',' << r.ipc << ',' << r.epi_pj << ','
     << r.dynamic_epi_pj << ',' << r.background_epi_pj << ',' << r.mapi
     << ',' << r.bandwidth_utilization << ',' << r.avg_read_latency << ','
     << r.mem.reads << ',' << r.mem.writes << ',' << r.mem.ecc_reads << ','
     << r.mem.ecc_writes;
  return os.str();
}

bool deserialize(const std::string& line, sim::RunResult& r) {
  std::istringstream is(line);
  std::string cell;
  auto next = [&](std::string& out) {
    return static_cast<bool>(std::getline(is, out, ','));
  };
  std::string f[15];
  for (auto& s : f) {
    if (!next(s)) return false;
  }
  r.scheme = f[0];
  r.workload = f[1];
  r.instructions = std::stoull(f[2]);
  r.mem_cycles = std::stoull(f[3]);
  r.ipc = std::stod(f[4]);
  r.epi_pj = std::stod(f[5]);
  r.dynamic_epi_pj = std::stod(f[6]);
  r.background_epi_pj = std::stod(f[7]);
  r.mapi = std::stod(f[8]);
  r.bandwidth_utilization = std::stod(f[9]);
  r.avg_read_latency = std::stod(f[10]);
  r.mem.reads = std::stoull(f[11]);
  r.mem.writes = std::stoull(f[12]);
  r.mem.ecc_reads = std::stoull(f[13]);
  r.mem.ecc_writes = std::stoull(f[14]);
  return true;
}

std::vector<sim::RunResult> load_cache(const std::string& path) {
  std::vector<sim::RunResult> rows;
  std::ifstream in(path);
  if (!in) return rows;
  std::string line;
  while (std::getline(in, line)) {
    sim::RunResult r;
    if (deserialize(line, r)) rows.push_back(std::move(r));
  }
  return rows;
}

std::vector<sim::RunResult> run_sweep(ecc::SystemScale scale) {
  std::vector<sim::RunResult> rows;
  sim::SimOptions opts;
  opts.target_instructions = target_instructions();
  opts.seed = 1;
  const auto schemes = ecc::all_schemes();
  const auto& workloads = trace::paper_workloads();
  unsigned done = 0;
  const unsigned total =
      static_cast<unsigned>(schemes.size() * workloads.size());
  for (const auto& wl : workloads) {
    for (const auto id : schemes) {
      rows.push_back(sim::run_experiment(id, scale, wl.name, opts));
      ++done;
      std::fprintf(stderr, "\r[sweep %s] %u/%u (%s / %s)        ",
                   scale == ecc::SystemScale::kQuadEquivalent ? "quad"
                                                              : "dual",
                   done, total, wl.name.c_str(),
                   ecc::to_string(id).c_str());
      std::fflush(stderr);
    }
  }
  std::fprintf(stderr, "\n");
  return rows;
}

}  // namespace

std::uint64_t target_instructions() {
  return quick_mode() ? 200'000 : 1'000'000;
}

const std::vector<sim::RunResult>& sweep(ecc::SystemScale scale) {
  static std::map<int, std::vector<sim::RunResult>> cache;
  const int key = static_cast<int>(scale);
  auto it = cache.find(key);
  if (it != cache.end()) return it->second;

  const std::string path = cache_path(scale);
  if (cache_enabled()) {
    auto rows = load_cache(path);
    // 16 workloads x 8 schemes expected.
    if (rows.size() == trace::paper_workloads().size() *
                           ecc::all_schemes().size()) {
      return cache.emplace(key, std::move(rows)).first->second;
    }
  }
  auto rows = run_sweep(scale);
  if (cache_enabled()) {
    std::ostringstream os;
    for (const auto& r : rows) os << serialize(r) << '\n';
    write_file(path, os.str());
  }
  return cache.emplace(key, std::move(rows)).first->second;
}

const sim::RunResult& find(const std::vector<sim::RunResult>& rows,
                           const std::string& scheme,
                           const std::string& workload) {
  for (const auto& r : rows) {
    if (r.scheme == scheme && r.workload == workload) return r;
  }
  throw std::out_of_range("no result for " + scheme + "/" + workload);
}

int bin_of(const std::string& workload) {
  return trace::workload_by_name(workload).bin;
}

double reduction_pct(double baseline, double ours) {
  return (1.0 - ours / baseline) * 100.0;
}

void emit(const std::string& name, const Table& table) {
  std::printf("%s\n", table.str().c_str());
  write_file("bench_results/" + name + ".csv", table.csv());
}

std::vector<std::string> workload_order() {
  std::vector<std::string> names;
  for (int bin : {1, 2}) {
    for (const auto& w : trace::paper_workloads()) {
      if (w.bin == bin) names.push_back(w.name);
    }
  }
  return names;
}

}  // namespace eccsim::bench
