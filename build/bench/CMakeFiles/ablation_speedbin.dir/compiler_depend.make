# Empty compiler generated dependencies file for ablation_speedbin.
# This may be replaced when dependencies are built.
