#include "ecc/multiecc.hpp"

#include <stdexcept>

#include "gf/gf.hpp"

namespace eccsim::ecc {

MultiEccGroupCodec::MultiEccGroupCodec(unsigned group_lines,
                                       unsigned data_chips)
    : group_lines_(group_lines),
      data_chips_(data_chips),
      share_bytes_(64 / data_chips) {
  if (group_lines == 0 || 64 % data_chips != 0) {
    throw std::invalid_argument("MultiEccGroupCodec: bad geometry");
  }
}

std::vector<std::uint8_t> MultiEccGroupCodec::detection_bits(
    std::span<const std::uint8_t> line) const {
  if (line.size() != 64) {
    throw std::invalid_argument("MultiEccGroupCodec: line must be 64B");
  }
  std::vector<std::uint8_t> det(data_chips_);
  for (unsigned c = 0; c < data_chips_; ++c) {
    std::uint8_t acc = 0;
    for (unsigned b = 0; b < share_bytes_; ++b) {
      acc = gf::GF256::add(gf::GF256::mul(acc, 3),
                           line[c * share_bytes_ + b]);
    }
    det[c] = acc;
  }
  return det;
}

std::vector<unsigned> MultiEccGroupCodec::locate(
    std::span<const std::uint8_t> line,
    std::span<const std::uint8_t> det) const {
  const auto expect = detection_bits(line);
  std::vector<unsigned> bad;
  for (unsigned c = 0; c < data_chips_; ++c) {
    if (expect[c] != det[c]) bad.push_back(c);
  }
  return bad;
}

bool MultiEccGroupCodec::detect(std::span<const std::uint8_t> line,
                                std::span<const std::uint8_t> det) const {
  return !locate(line, det).empty();
}

std::vector<std::uint8_t> MultiEccGroupCodec::correction_line(
    std::span<const std::vector<std::uint8_t>> group) const {
  std::vector<std::uint8_t> corr(64, 0);
  for (const auto& line : group) {
    if (line.size() != 64) {
      throw std::invalid_argument("MultiEccGroupCodec: member must be 64B");
    }
    for (unsigned b = 0; b < 64; ++b) corr[b] ^= line[b];
  }
  return corr;
}

void MultiEccGroupCodec::update_correction_line(
    std::span<std::uint8_t> corr, std::span<const std::uint8_t> old_line,
    std::span<const std::uint8_t> new_line) const {
  if (corr.size() != 64 || old_line.size() != 64 || new_line.size() != 64) {
    throw std::invalid_argument("MultiEccGroupCodec: spans must be 64B");
  }
  for (unsigned b = 0; b < 64; ++b) {
    corr[b] = static_cast<std::uint8_t>(corr[b] ^ old_line[b] ^ new_line[b]);
  }
}

bool MultiEccGroupCodec::correct_member(
    std::span<std::vector<std::uint8_t>> group,
    std::span<const std::vector<std::uint8_t>> dets,
    std::span<const std::uint8_t> corr, unsigned bad_index,
    unsigned bad_chip) const {
  if (bad_index >= group.size()) {
    throw std::out_of_range("MultiEccGroupCodec: bad_index");
  }
  // All other members must currently pass tier 1; otherwise the XOR would
  // fold their corruption into the repair.
  for (unsigned i = 0; i < group.size(); ++i) {
    if (i == bad_index) continue;
    if (detect(group[i], dets[i])) return false;
  }
  std::vector<std::uint8_t> fixed(corr.begin(), corr.end());
  for (unsigned i = 0; i < group.size(); ++i) {
    if (i == bad_index) continue;
    for (unsigned b = 0; b < 64; ++b) fixed[b] ^= group[i][b];
  }
  // Only splice in the failed chip's share; the rest of the line is
  // trusted (tier 1 passed for those chips).
  for (unsigned b = 0; b < share_bytes_; ++b) {
    group[bad_index][bad_chip * share_bytes_ + b] =
        fixed[bad_chip * share_bytes_ + b];
  }
  // Re-verify tier 1 for the repaired chip.
  return locate(group[bad_index], dets[bad_index]).empty();
}

}  // namespace eccsim::ecc
