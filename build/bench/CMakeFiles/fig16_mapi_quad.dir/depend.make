# Empty dependencies file for fig16_mapi_quad.
# This may be replaced when dependencies are built.
