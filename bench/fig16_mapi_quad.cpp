// Fig. 16: memory accesses per instruction (each 64B moved = one access)
// normalized to the baselines, quad-channel-equivalent systems.  Lower is
// better.  Paper: LOT-ECC5+Parity has ~13.3% more accesses than the
// 18-device chipkill (parity-update overhead) but ~20% fewer than the
// 128B-line 36-device chipkill (no wasted sibling fetches).
#include "fig_perf_common.hpp"

int main(int argc, char** argv) {
  eccsim::bench::init(argc, argv);
  eccsim::bench::ratio_figure(
      "fig16_mapi_quad",
      "Fig. 16 -- Memory accesses per instruction normalized to baselines (quad, <1 = fewer)",
      eccsim::ecc::SystemScale::kQuadEquivalent,
      [](const eccsim::sim::RunResult& r) { return r.mapi; });
  return 0;
}
