#include "tracefile/writer.hpp"

#include <filesystem>

#include "tracefile/codec.hpp"
#include "tracefile/crc32.hpp"
#include "tracefile/varint.hpp"

namespace eccsim::tracefile {

namespace {

std::string encode_header(const TraceMeta& meta) {
  std::string bytes(kMagic, sizeof kMagic);
  put_u32(bytes, kFormatVersion);
  put_u32(bytes, static_cast<std::uint32_t>(meta.point));
  put_u32(bytes, meta.cores);
  put_u64(bytes, meta.seed);
  if (meta.workload.size() > kMaxNameBytes) {
    throw TraceError("ecctrace: workload name too long");
  }
  put_u32(bytes, static_cast<std::uint32_t>(meta.workload.size()));
  bytes += meta.workload;
  put_u32(bytes, crc32(bytes.data(), bytes.size()));
  return bytes;
}

}  // namespace

TraceWriter::TraceWriter(const std::string& path, const TraceMeta& meta,
                         std::size_t ops_per_chunk)
    : path_(path), meta_(meta),
      ops_per_chunk_(ops_per_chunk == 0 ? 1 : ops_per_chunk) {
  std::error_code ec;
  const auto parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent, ec);
  out_.open(path, std::ios::binary | std::ios::trunc);
  if (!out_) {
    throw TraceError("ecctrace: cannot create " + path);
  }
  write_bytes(encode_header(meta_));
}

TraceWriter::~TraceWriter() {
  try {
    close();
  } catch (const TraceError&) {
    // Unwinding: the truncated file is detectable by any reader.
  }
}

void TraceWriter::append(const trace::MemOp& op, std::uint32_t core) {
  if (meta_.point != CapturePoint::kPreLlc) {
    throw TraceError("ecctrace: pre-LLC record appended to a " +
                     to_string(meta_.point) + " trace");
  }
  pre_buf_.push_back(PreOp{core, op});
  if (pre_buf_.size() >= ops_per_chunk_) flush_chunk();
}

void TraceWriter::append(const PostOp& op) {
  if (meta_.point != CapturePoint::kPostLlc) {
    throw TraceError("ecctrace: post-LLC record appended to a " +
                     to_string(meta_.point) + " trace");
  }
  post_buf_.push_back(op);
  if (post_buf_.size() >= ops_per_chunk_) flush_chunk();
}

void TraceWriter::flush_chunk() {
  const std::size_t n =
      meta_.point == CapturePoint::kPreLlc ? pre_buf_.size()
                                           : post_buf_.size();
  if (n == 0) return;
  const std::string payload = meta_.point == CapturePoint::kPreLlc
                                  ? encode_pre_chunk(pre_buf_)
                                  : encode_post_chunk(post_buf_);
  std::string frame;
  frame.reserve(payload.size() + 16);
  put_u32(frame, kChunkMarker);
  put_u32(frame, static_cast<std::uint32_t>(payload.size()));
  put_u32(frame, static_cast<std::uint32_t>(n));
  put_u32(frame, crc32(payload.data(), payload.size()));
  frame += payload;
  write_bytes(frame);
  counters_.ops += n;
  counters_.chunks += 1;
  counters_.payload_bytes += payload.size();
  pre_buf_.clear();
  post_buf_.clear();
}

void TraceWriter::close() {
  if (closed_) return;
  flush_chunk();
  std::string footer;
  put_u32(footer, kEndMarker);
  put_u32(footer, static_cast<std::uint32_t>(counters_.chunks));
  put_u64(footer, counters_.ops);
  put_u32(footer, crc32(footer.data(), footer.size()));
  write_bytes(footer);
  out_.flush();
  closed_ = true;
  if (!out_) {
    throw TraceError("ecctrace: I/O error writing " + path_);
  }
  out_.close();
}

void TraceWriter::write_bytes(const std::string& bytes) {
  out_.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out_) {
    throw TraceError("ecctrace: I/O error writing " + path_);
  }
  counters_.file_bytes += bytes.size();
}

std::string to_string(CapturePoint point) {
  return point == CapturePoint::kPreLlc ? "pre-llc" : "post-llc";
}

}  // namespace eccsim::tracefile
