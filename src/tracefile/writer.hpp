// Streaming .ecctrace writer.
//
// Buffers records and flushes them as independently CRC-protected chunks
// (format.hpp), so memory stays bounded at ops_per_chunk regardless of
// trace length.  Output is byte-deterministic: the header carries no
// timestamps and the codec no floats, which is what lets CI pin golden
// traces by SHA-256 (scripts/golden_trace_check.sh).
//
// close() appends the footer; a file missing it is detected as truncated
// by every reader.  The destructor closes implicitly but swallows I/O
// errors, so callers that care (everything except stack unwinding) should
// close() explicitly.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "tracefile/format.hpp"

namespace eccsim::tracefile {

/// Cumulative writer-side tallies, exported as tracefile.* stats by
/// sim::SystemSim when recording under --stats.
struct WriterCounters {
  std::uint64_t ops = 0;
  std::uint64_t chunks = 0;
  std::uint64_t payload_bytes = 0;  ///< encoded payload, pre-framing
  std::uint64_t file_bytes = 0;     ///< total bytes written incl. framing
};

class TraceWriter {
 public:
  /// Creates `path` (parent directories included) and writes the header.
  /// Throws TraceError if the file cannot be created.
  TraceWriter(const std::string& path, const TraceMeta& meta,
              std::size_t ops_per_chunk = kDefaultOpsPerChunk);
  ~TraceWriter();

  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  /// Appends one pre-LLC record; meta().point must be kPreLlc.
  void append(const trace::MemOp& op, std::uint32_t core);
  /// Appends one post-LLC record; meta().point must be kPostLlc.
  void append(const PostOp& op);

  /// Flushes the partial chunk and writes the footer.  Idempotent.
  /// Throws TraceError if the stream reports failure.
  void close();
  bool closed() const { return closed_; }

  const TraceMeta& meta() const { return meta_; }
  const std::string& path() const { return path_; }
  const WriterCounters& counters() const { return counters_; }

 private:
  void flush_chunk();
  void write_bytes(const std::string& bytes);

  std::string path_;
  TraceMeta meta_;
  std::size_t ops_per_chunk_;
  std::ofstream out_;
  std::vector<PreOp> pre_buf_;
  std::vector<PostOp> post_buf_;
  WriterCounters counters_;
  bool closed_ = false;
};

}  // namespace eccsim::tracefile
