// Functional line codecs: real encode / detect / correct for each ECC
// scheme's per-line code.
//
// Each codec splits its redundancy the way the paper does (Sec. II):
//
//   detection bits  -- stored inline in every channel, checked on the fly;
//   correction bits -- the part ECC Parity replaces with a cross-channel
//                      parity for healthy regions.
//
// Construction per scheme:
//   - chipkill36: per 32-byte word, detection = the 2 check symbols of an
//     RS(34,32) code over GF(2^8); correction = the 2 check symbols of an
//     RS(36,34) code over (data || detection).  One byte per chip per word;
//     a chip failure is a single-symbol error (correctable), two-chip
//     errors are detectable by the outer code.
//   - chipkill18: one RS(18,16) code; its 2 check symbols both detect and
//     correct (no separable correction bits -- hence ECC Parity does not
//     apply, Sec. IV-A).
//   - LOT-ECC (5- and 9-chip): detection = per-chip checksums (tier 1);
//     correction = bitwise XOR of the per-chip data shares (tier 2),
//     corrected by erasure once tier 1 localizes the failed chip.
//   - RAIM: detection = per-DIMM RS check symbols (which also localize the
//     failed DIMM); correction = XOR across the data DIMMs (the parity
//     DIMM), corrected by erasure.
//
// Multi-ECC's multi-line shared correction is in multiecc.hpp (its
// correction granularity is a group of lines, which does not fit the
// per-line interface).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "ecc/scheme.hpp"

namespace eccsim::ecc {

/// Outcome of a correction attempt.
struct CodecResult {
  bool ok = false;         ///< data is now error-free
  bool detected = false;   ///< an error was observed before correction
  unsigned corrected_chips = 0;  ///< distinct chips whose data was repaired
};

/// Per-line encode / detect / correct interface.
class LineCodec {
 public:
  virtual ~LineCodec() = default;

  virtual unsigned data_bytes() const = 0;
  virtual unsigned detection_bytes() const = 0;
  virtual unsigned correction_bytes() const = 0;
  /// Number of chips a line is striped across (erasure granularity).
  virtual unsigned chips() const = 0;

  /// Computes the detection bits stored inline with the line.
  virtual std::vector<std::uint8_t> detection_bits(
      std::span<const std::uint8_t> data) const = 0;

  /// Computes the correction bits (what ECC Parity XORs across channels).
  virtual std::vector<std::uint8_t> correction_bits(
      std::span<const std::uint8_t> data) const = 0;

  /// True iff (data, det) is inconsistent, i.e. an error is detected.
  virtual bool detect(std::span<const std::uint8_t> data,
                      std::span<const std::uint8_t> det) const = 0;

  /// Attempts to correct `data` in place using the stored detection bits
  /// and the (reconstructed or materialized) correction bits.  On failure
  /// (`!ok`) `data` is restored to exactly the input -- callers never see
  /// a partially corrected line (mirrors the ReedSolomon::decode
  /// contract).
  /// `known_bad_chips` may carry erasure information (e.g. a chip already
  /// recorded as failed); pass empty when the location is unknown.
  virtual CodecResult correct(
      std::span<std::uint8_t> data, std::span<const std::uint8_t> det,
      std::span<const std::uint8_t> corr,
      std::span<const unsigned> known_bad_chips = {}) const = 0;

  /// Bytes of this line stored on chip `chip` (for fault injection).
  /// Returns the byte offsets within the data line; detection/correction
  /// bytes live on dedicated chips and are modeled separately.
  virtual std::vector<unsigned> chip_data_offsets(unsigned chip) const = 0;
};

/// Builds the per-line codec for a scheme.  kMultiEcc is not constructible
/// here (see multiecc.hpp); the +Parity variants use their base scheme's
/// codec (ECC Parity does not change the underlying code, Sec. III).
std::unique_ptr<LineCodec> make_codec(SchemeId id);

}  // namespace eccsim::ecc
