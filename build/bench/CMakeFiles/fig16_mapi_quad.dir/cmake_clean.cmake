file(REMOVE_RECURSE
  "CMakeFiles/fig16_mapi_quad.dir/fig16_mapi_quad.cpp.o"
  "CMakeFiles/fig16_mapi_quad.dir/fig16_mapi_quad.cpp.o.d"
  "fig16_mapi_quad"
  "fig16_mapi_quad.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_mapi_quad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
