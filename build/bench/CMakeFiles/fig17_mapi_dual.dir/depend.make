# Empty dependencies file for fig17_mapi_dual.
# This may be replaced when dependencies are built.
