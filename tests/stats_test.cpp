// Tests for the observability layer (src/stats): registry path semantics,
// histogram percentiles, epoch-delta sampling, merge determinism, the
// Chrome-trace exporter's output format, and the SystemSim integration --
// including the load-bearing guarantee that enabling stats never changes a
// simulated result.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "runner/json.hpp"
#include "runner/stats_json.hpp"
#include "sim/system.hpp"
#include "stats/scope.hpp"
#include "stats/stats.hpp"
#include "stats/trace.hpp"

namespace eccsim::stats {
namespace {

// ---------------------------------------------------------------------------
// Registry basics

TEST(Registry, CreateOrGetReturnsStablePointer) {
  Registry reg;
  Counter* a = reg.counter("dram.ch0.acts");
  Counter* b = reg.counter("dram.ch0.acts");
  EXPECT_EQ(a, b);
  EXPECT_EQ(reg.size(), 1u);
  a->inc(3);
  EXPECT_EQ(b->value(), 3u);
  EXPECT_DOUBLE_EQ(reg.value("dram.ch0.acts"), 3.0);
}

TEST(Registry, PathUniquenessAcrossKinds) {
  Registry reg;
  reg.counter("x");
  EXPECT_THROW(reg.accum("x"), std::invalid_argument);
  EXPECT_THROW(reg.distribution("x"), std::invalid_argument);
  EXPECT_THROW(reg.histogram("x", 0, 1, 4), std::invalid_argument);
  reg.distribution("d");
  EXPECT_THROW(reg.counter("d"), std::invalid_argument);
  EXPECT_THROW(reg.value("d"), std::invalid_argument);  // not a sampled kind
  EXPECT_THROW(reg.value("missing"), std::out_of_range);
  EXPECT_TRUE(reg.has("x"));
  EXPECT_FALSE(reg.has("missing"));
}

TEST(Registry, PointersSurviveManyRegistrations) {
  // Storage must not invalidate earlier stats when it grows.
  Registry reg;
  Counter* first = reg.counter("c0");
  for (int i = 1; i < 500; ++i) {
    reg.counter("c" + std::to_string(i));
  }
  first->inc();
  EXPECT_EQ(reg.value("c0"), 1.0);
}

TEST(Distribution, TracksMomentsAndExtremes) {
  Distribution d;
  EXPECT_EQ(d.count(), 0u);
  EXPECT_DOUBLE_EQ(d.mean(), 0.0);
  for (double x : {4.0, 1.0, 7.0}) d.add(x);
  EXPECT_EQ(d.count(), 3u);
  EXPECT_DOUBLE_EQ(d.sum(), 12.0);
  EXPECT_DOUBLE_EQ(d.mean(), 4.0);
  EXPECT_DOUBLE_EQ(d.min(), 1.0);
  EXPECT_DOUBLE_EQ(d.max(), 7.0);
}

// ---------------------------------------------------------------------------
// Histogram percentiles

TEST(Histogram, PercentilesInterpolate) {
  Histogram h(0, 100, 100);  // unit-width bins
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  EXPECT_EQ(h.total(), 100u);
  // Uniform mass: percentile p should land near p.
  EXPECT_NEAR(h.percentile(50), 50.0, 1.0);
  EXPECT_NEAR(h.percentile(95), 95.0, 1.0);
  EXPECT_NEAR(h.percentile(99), 99.0, 1.0);
  EXPECT_GE(h.percentile(0), 0.0);
  EXPECT_LE(h.percentile(100), 100.0);
}

TEST(Histogram, OutOfRangeSamplesClampIntoEdgeBins) {
  Histogram h(0, 10, 10);
  h.add(-5);
  h.add(99);
  EXPECT_EQ(h.total(), 2u);
  EXPECT_EQ(h.bins().front(), 1u);
  EXPECT_EQ(h.bins().back(), 1u);
}

TEST(Histogram, EmptyPercentileIsZero) {
  Histogram h(0, 10, 10);
  EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);
}

// ---------------------------------------------------------------------------
// Epoch-delta sampling

TEST(Registry, EpochDeltasMatchManualAccounting) {
  Registry reg;
  reg.set_epoch_cycles(100);
  Counter* c = reg.counter("events");
  Accum* a = reg.accum("energy_pj");
  double gauge_state = 0;
  reg.gauge("polled", [&gauge_state](std::uint64_t) { return gauge_state; });

  c->inc(5);
  a->add(1.5);
  gauge_state = 10;
  reg.sample_epoch(100);

  c->inc(2);
  gauge_state = 25;
  reg.sample_epoch(200);

  a->add(0.25);
  reg.finalize(250);  // final partial epoch

  ASSERT_EQ(reg.epoch_marks().size(), 3u);
  EXPECT_EQ(reg.epoch_marks()[0], 100u);
  EXPECT_EQ(reg.epoch_marks()[2], 250u);

  const std::vector<double>* ce = reg.epoch_series("events");
  ASSERT_NE(ce, nullptr);
  EXPECT_EQ(*ce, (std::vector<double>{5, 2, 0}));
  const std::vector<double>* ae = reg.epoch_series("energy_pj");
  ASSERT_NE(ae, nullptr);
  EXPECT_EQ(*ae, (std::vector<double>{1.5, 0, 0.25}));
  const std::vector<double>* ge = reg.epoch_series("polled");
  ASSERT_NE(ge, nullptr);
  EXPECT_EQ(*ge, (std::vector<double>{10, 15, 0}));

  // finalize() stored the gauge's last value and dropped the closure, so
  // reading it after the referenced state dies is safe.
  EXPECT_TRUE(reg.finalized());
  EXPECT_DOUBLE_EQ(reg.value("polled"), 25.0);
}

TEST(Registry, DerivedSeriesRoundTrip) {
  Registry reg;
  reg.add_series("derived.bw", {0.5, 0.75});
  ASSERT_EQ(reg.series().size(), 1u);
  EXPECT_EQ(reg.series()[0].first, "derived.bw");
  EXPECT_EQ(reg.series()[0].second, (std::vector<double>{0.5, 0.75}));
}

// ---------------------------------------------------------------------------
// Merge determinism

Registry make_shard(std::uint64_t counter_n, double accum_x,
                    std::vector<double> samples) {
  Registry reg;
  reg.counter("c")->inc(counter_n);
  reg.accum("a")->add(accum_x);
  Distribution* d = reg.distribution("lat");
  Histogram* h = reg.histogram("hist", 0, 100, 10);
  for (double s : samples) {
    d->add(s);
    h->add(s);
  }
  return reg;
}

TEST(Registry, MergeIsOrderIndependent) {
  // The sweep merges per-cell registries; a 1-thread and an N-thread
  // reduction visit them in different orders and must agree exactly.
  const std::vector<std::vector<double>> samples = {
      {1, 99}, {50}, {25, 75, 3}, {}};
  auto build = [&](const std::vector<int>& order) {
    Registry merged;
    for (int i : order) {
      merged.merge(make_shard(i + 1, 0.125 * (i + 1), samples[i]));
    }
    return merged;
  };
  Registry fwd = build({0, 1, 2, 3});
  Registry rev = build({3, 2, 1, 0});

  EXPECT_EQ(fwd.value("c"), rev.value("c"));
  EXPECT_EQ(fwd.value("c"), 1.0 + 2 + 3 + 4);
  // Bit-exact double equality is intentional: accums sum exactly here
  // (powers of two) and merge order must not matter for counters at all.
  EXPECT_DOUBLE_EQ(fwd.value("a"), rev.value("a"));
  auto views_equal = [](const Registry& x, const Registry& y,
                        const std::string& path) {
    // Compare via the serializer so dist + hist internals are covered.
    runner::Json jx = runner::to_json(x);
    runner::Json jy = runner::to_json(y);
    return jx.at("stats").at(path).dump() == jy.at("stats").at(path).dump();
  };
  EXPECT_TRUE(views_equal(fwd, rev, "lat"));
  EXPECT_TRUE(views_equal(fwd, rev, "hist"));
}

TEST(Registry, MergeRejectsKindMismatch) {
  Registry a;
  a.counter("x");
  Registry b;
  b.accum("x");
  EXPECT_THROW(a.merge(b), std::invalid_argument);
  Registry c;
  c.histogram("h", 0, 10, 10);
  Registry d;
  d.histogram("h", 0, 20, 10);  // different shape
  EXPECT_THROW(c.merge(d), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Scoped profiler

TEST(Profiler, DisabledScopesCostNothingAndRecordNothing) {
  Profiler::reset();
  Profiler::set_enabled(false);
  { STATS_SCOPE("test.disabled"); }
  for (const auto& [name, totals] : Profiler::snapshot()) {
    EXPECT_NE(name, "test.disabled");
    (void)totals;
  }
}

TEST(Profiler, EnabledScopesAccumulateCalls) {
  Profiler::reset();
  Profiler::set_enabled(true);
  for (int i = 0; i < 10; ++i) {
    STATS_SCOPE("test.enabled");
  }
  Profiler::set_enabled(false);
  bool found = false;
  for (const auto& [name, totals] : Profiler::snapshot()) {
    if (name == "test.enabled") {
      found = true;
      EXPECT_EQ(totals.calls, 10u);
      EXPECT_GE(totals.seconds, 0.0);
    }
  }
  EXPECT_TRUE(found);
  Profiler::reset();
}

// ---------------------------------------------------------------------------
// Trace well-formedness

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(Tracer, WritesPerfettoLoadableJson) {
  const std::string path = ::testing::TempDir() + "/eccsim_trace_test.json";
  Tracer tr(path, 100);
  tr.set_clock_ghz(1.0);  // 1 cycle = 1 ns = 0.001 us
  tr.set_thread_name(0, "dram.ch0");
  tr.duration("dram", "RD", 1000, 1004, 0, {{"bank", 3.0}, {"row", 17.0}});
  tr.instant("eccparity", "fig6_slow_path", 1500, 1, {{"bank", 2.0}});
  ASSERT_TRUE(tr.write());

  const runner::Json doc = runner::Json::parse(slurp(path));
  ASSERT_TRUE(doc.contains("traceEvents"));
  const auto& events = doc.at("traceEvents").items();
  // Two data events plus thread-name metadata.
  ASSERT_GE(events.size(), 3u);
  bool saw_x = false, saw_i = false, saw_meta = false;
  for (const runner::Json& e : events) {
    const std::string& ph = e.at("ph").as_string();
    if (ph == "M") {
      saw_meta = true;
      EXPECT_EQ(e.at("name").as_string(), "thread_name");
      continue;
    }
    // Every data event carries the standard keys with numeric ts.
    EXPECT_TRUE(e.contains("ts"));
    EXPECT_TRUE(e.contains("pid"));
    EXPECT_TRUE(e.contains("tid"));
    if (ph == "X") {
      saw_x = true;
      EXPECT_EQ(e.at("name").as_string(), "RD");
      EXPECT_EQ(e.at("cat").as_string(), "dram");
      EXPECT_DOUBLE_EQ(e.at("ts").as_number(), 1.0);    // 1000 cyc = 1 us
      EXPECT_DOUBLE_EQ(e.at("dur").as_number(), 0.004);
      EXPECT_DOUBLE_EQ(e.at("args").at("bank").as_number(), 3.0);
    } else if (ph == "i") {
      saw_i = true;
      EXPECT_EQ(e.at("cat").as_string(), "eccparity");
    }
  }
  EXPECT_TRUE(saw_x);
  EXPECT_TRUE(saw_i);
  EXPECT_TRUE(saw_meta);
  std::remove(path.c_str());
}

TEST(Tracer, RateLimitDropsButCounts) {
  const std::string path = ::testing::TempDir() + "/eccsim_trace_limit.json";
  Tracer tr(path, 5);
  for (std::uint64_t i = 0; i < 20; ++i) {
    tr.duration("dram", "RD", i * 10, i * 10 + 4, 0);
  }
  EXPECT_EQ(tr.recorded(), 5u);
  EXPECT_EQ(tr.dropped(), 15u);
  ASSERT_TRUE(tr.write());
  const runner::Json doc = runner::Json::parse(slurp(path));
  EXPECT_EQ(doc.at("traceEvents").items().size(), 5u);
  std::remove(path.c_str());
}

// A burst above the cap must drop from the tail only: the retained events
// are exactly the first `limit` issued, in issue order, and the resulting
// file is deterministic across identical runs.
TEST(Tracer, RateLimitKeepsPrefixInIssueOrder) {
  // The tracer retains name pointers until write(), so the burst uses
  // stable storage that outlives each run.
  static std::vector<std::string> names_storage;
  if (names_storage.empty()) {
    for (int i = 0; i < 20; ++i) names_storage.push_back("ev" + std::to_string(i));
  }
  const auto run_burst = [](const std::string& path) {
    Tracer tr(path, 6);
    tr.set_clock_ghz(1.0);
    // Interleave duration and instant events with distinct names so issue
    // order is recoverable from the file.
    for (std::uint64_t i = 0; i < 20; ++i) {
      const char* name = names_storage[i].c_str();
      if (i % 2 == 0) {
        tr.duration("dram", name, i * 100, i * 100 + 10, 0);
      } else {
        tr.instant("eccparity", name, i * 100, 1);
      }
    }
    EXPECT_EQ(tr.recorded(), 6u);
    EXPECT_EQ(tr.dropped(), 14u);
    EXPECT_TRUE(tr.write());
  };

  const std::string path_a = ::testing::TempDir() + "/eccsim_trace_ord_a.json";
  const std::string path_b = ::testing::TempDir() + "/eccsim_trace_ord_b.json";
  run_burst(path_a);

  const runner::Json doc = runner::Json::parse(slurp(path_a));
  std::vector<std::string> names;
  std::vector<double> timestamps;
  for (const runner::Json& e : doc.at("traceEvents").items()) {
    if (e.at("ph").as_string() == "M") continue;
    names.push_back(e.at("name").as_string());
    timestamps.push_back(e.at("ts").as_number());
  }
  // Exactly the first six issued events survive, in issue order.
  const std::vector<std::string> want = {"ev0", "ev1", "ev2",
                                         "ev3", "ev4", "ev5"};
  EXPECT_EQ(names, want);
  for (std::size_t i = 1; i < timestamps.size(); ++i) {
    EXPECT_LE(timestamps[i - 1], timestamps[i]);
  }

  // Deterministic: an identical second run emits byte-identical output.
  run_burst(path_b);
  EXPECT_EQ(slurp(path_a), slurp(path_b));
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

// ---------------------------------------------------------------------------
// Config parsing

TEST(Config, FromEnvReadsKnobs) {
  ::setenv("ECCSIM_STATS", "1", 1);
  ::setenv("STATS_EPOCH", "1234", 1);
  ::setenv("STATS_TRACE", "/tmp/tdir", 1);
  ::setenv("STATS_TRACE_LIMIT", "77", 1);
  Config cfg = Config::from_env(500);
  EXPECT_TRUE(cfg.enabled);
  EXPECT_EQ(cfg.epoch_cycles, 1234u);
  EXPECT_EQ(cfg.trace_dir, "/tmp/tdir");
  EXPECT_EQ(cfg.trace_limit, 77u);
  ::unsetenv("ECCSIM_STATS");
  ::unsetenv("STATS_EPOCH");
  ::unsetenv("STATS_TRACE_LIMIT");
  // STATS_TRACE alone implies enabled (tracing is useless otherwise).
  Config tr_only = Config::from_env(500);
  EXPECT_TRUE(tr_only.enabled);
  ::unsetenv("STATS_TRACE");
  Config off = Config::from_env(500);
  EXPECT_FALSE(off.enabled);
  EXPECT_EQ(off.epoch_cycles, 500u);
}

// ---------------------------------------------------------------------------
// SystemSim integration

sim::SimOptions sim_opts() {
  sim::SimOptions o;
  o.target_instructions = 300'000;
  o.seed = 7;
  return o;
}

TEST(SystemSimStats, CollectsEpochsChannelsAndSlowPathEvents) {
  Config cfg;
  cfg.enabled = true;
  cfg.epoch_cycles = 500;
  Collector col(cfg);
  const std::string trace_path =
      ::testing::TempDir() + "/eccsim_sim_trace.json";
  col.open_trace(trace_path);

  sim::SimOptions opts = sim_opts();
  opts.stats = &col;
  // Faulty banks on channel 0 force Fig. 6 slow-path activity.
  for (std::uint32_t rank = 0; rank < 4; ++rank) {
    for (std::uint32_t bank = 0; bank < 8; ++bank) {
      opts.faulty_banks.push_back((0u << 16) | (rank << 8) | bank);
    }
  }
  const sim::RunResult r = sim::run_experiment(
      ecc::SchemeId::kLotEcc5Parity, ecc::SystemScale::kQuadEquivalent,
      "lbm", opts);
  EXPECT_GT(r.instructions, 0u);

  const Registry& reg = col.registry();
  EXPECT_TRUE(reg.finalized());
  // >= 3 epochs of series data (the acceptance bar for the smoke run).
  EXPECT_GE(reg.epoch_marks().size(), 3u);
  // Per-channel counters exist and saw traffic.
  EXPECT_TRUE(reg.has("dram.ch0.acts"));
  EXPECT_GT(reg.value("dram.ch0.acts"), 0.0);
  EXPECT_GT(reg.value("dram.ch0.reads"), 0.0);
  EXPECT_GT(reg.value("dram.ch0.energy.total_pj"), 0.0);
  EXPECT_TRUE(reg.has("llc.hits"));
  // The degraded run exercised the ECC-parity slow path.
  ASSERT_TRUE(reg.has("eccparity.fig6_slow_path_hits"));
  EXPECT_GT(reg.value("eccparity.fig6_slow_path_hits"), 0.0);

  // The trace mirrors DRAM commands and slow-path instants, and parses.
  Tracer* tr = col.tracer();
  ASSERT_NE(tr, nullptr);
  EXPECT_GT(tr->recorded(), 0u);
  ASSERT_TRUE(tr->write());
  const runner::Json doc = runner::Json::parse(slurp(trace_path));
  bool saw_dram = false, saw_slow_path = false;
  for (const runner::Json& e : doc.at("traceEvents").items()) {
    if (!e.contains("cat")) continue;
    const std::string& cat = e.at("cat").as_string();
    if (cat == "dram") saw_dram = true;
    if (cat.find("eccparity") != std::string::npos &&
        e.at("name").as_string() == "fig6_slow_path") {
      saw_slow_path = true;
    }
  }
  EXPECT_TRUE(saw_dram);
  EXPECT_TRUE(saw_slow_path);
  std::remove(trace_path.c_str());
}

TEST(SystemSimStats, EnablingStatsDoesNotPerturbResults) {
  // The contract everything else rests on: observation only.
  sim::SimOptions plain = sim_opts();
  const sim::RunResult base = sim::run_experiment(
      ecc::SchemeId::kLotEcc5Parity, ecc::SystemScale::kQuadEquivalent,
      "milc", plain);

  Config cfg;
  cfg.enabled = true;
  cfg.epoch_cycles = 250;
  Collector col(cfg);
  sim::SimOptions with_stats = sim_opts();
  with_stats.stats = &col;
  const sim::RunResult observed = sim::run_experiment(
      ecc::SchemeId::kLotEcc5Parity, ecc::SystemScale::kQuadEquivalent,
      "milc", with_stats);

  EXPECT_EQ(base.instructions, observed.instructions);
  EXPECT_EQ(base.mem_cycles, observed.mem_cycles);
  EXPECT_EQ(base.mem.reads, observed.mem.reads);
  EXPECT_EQ(base.mem.writes, observed.mem.writes);
  // Bit-exact doubles, not EXPECT_NEAR: stats must be pure observation.
  EXPECT_EQ(base.ipc, observed.ipc);
  EXPECT_EQ(base.epi_pj, observed.epi_pj);
  EXPECT_EQ(base.dynamic_epi_pj, observed.dynamic_epi_pj);
  EXPECT_EQ(base.background_epi_pj, observed.background_epi_pj);
}

// ---------------------------------------------------------------------------
// Registry -> JSON serialization

TEST(StatsJson, SerializesEveryKind) {
  Registry reg;
  reg.set_epoch_cycles(100);
  reg.counter("c")->inc(4);
  reg.accum("a")->add(2.5);
  reg.distribution("d")->add(3);
  Histogram* h = reg.histogram("h", 0, 10, 5);
  h->add(1);
  h->add(9);
  reg.sample_epoch(100);
  reg.finalize(150);
  reg.add_series("derived.x", {1, 2});

  const runner::Json doc = runner::to_json(reg);
  EXPECT_EQ(doc.at("epoch_cycles").as_number(), 100.0);
  EXPECT_EQ(doc.at("epoch_marks").items().size(), 2u);
  const runner::Json& stats = doc.at("stats");
  EXPECT_EQ(stats.at("c").at("kind").as_string(), "counter");
  EXPECT_EQ(stats.at("c").at("value").as_number(), 4.0);
  EXPECT_EQ(stats.at("c").at("epochs").items().size(), 2u);
  EXPECT_EQ(stats.at("a").at("kind").as_string(), "accum");
  EXPECT_EQ(stats.at("d").at("kind").as_string(), "distribution");
  EXPECT_EQ(stats.at("d").at("count").as_number(), 1.0);
  EXPECT_EQ(stats.at("h").at("kind").as_string(), "histogram");
  EXPECT_EQ(stats.at("h").at("total").as_number(), 2.0);
  EXPECT_TRUE(stats.at("h").contains("p95"));
  EXPECT_TRUE(doc.at("series").contains("derived.x"));
  // The document survives a round trip through its own text form.
  const runner::Json reparsed = runner::Json::parse(doc.dump());
  EXPECT_EQ(reparsed.dump(), doc.dump());
}

}  // namespace
}  // namespace eccsim::stats
