// Scrub-policy advisor: a small operations tool on top of the Sec. VI-C
// analysis.  Given a system shape, a DRAM fault rate, and a reliability
// target (added uncorrectable errors per server lifetime), it recommends
// the longest scrub interval that meets the target and reports the margin
// -- the decision the paper makes once (8 hours) for its evaluation.
//
// Usage:
//   ./build/examples/scrub_advisor                       # paper defaults
//   ./build/examples/scrub_advisor <channels> <FIT> <target_prob>
#include <cstdio>
#include <cstdlib>

#include "common/table.hpp"
#include "common/units.hpp"
#include "faults/montecarlo.hpp"

using namespace eccsim;

int main(int argc, char** argv) {
  faults::SystemShape shape;
  shape.channels = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 8;
  const double fit = argc > 2 ? std::atof(argv[2]) : 44.0;
  // Target: probability of any multi-channel-fault window per 7-year
  // lifetime.  0.007 corresponds to one added uncorrectable error per
  // ~1000 years of operation.
  const double target = argc > 3 ? std::atof(argv[3]) : 0.007;
  const double life = 7 * units::kHoursPerYear;

  std::printf(
      "Scrub advisor: %u channels, %u chips/channel, %.0f FIT/chip,\n"
      "target P(multi-channel window per lifetime) <= %.2e\n\n",
      shape.channels, shape.chips_per_channel(), fit, target);

  Table t({"scrub interval", "P(lifetime)", "added UE rate",
           "meets target"});
  double recommended = 0;
  for (double w : {0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 24.0, 72.0, 168.0,
                   720.0}) {
    const double p = faults::analytic_multichannel_window_probability(
        shape, fit, w, life);
    char interval[32], prob[32], rate[48];
    if (w < 1) std::snprintf(interval, sizeof interval, "%.0f min", w * 60);
    else if (w < 48) std::snprintf(interval, sizeof interval, "%.0f h", w);
    else std::snprintf(interval, sizeof interval, "%.0f d", w / 24);
    std::snprintf(prob, sizeof prob, "%.2e", p);
    std::snprintf(rate, sizeof rate, "1 per %.0f years", 7.0 / p);
    const bool ok = p <= target;
    if (ok) recommended = w;
    t.add_row({interval, prob, rate, ok ? "yes" : "no"});
  }
  std::printf("%s\n", t.str().c_str());

  if (recommended > 0) {
    std::printf(
        "recommendation: scrub every %.0f hours -- the longest interval\n"
        "meeting the target.  (The paper adopts 8 hours at 100 FIT/chip,\n"
        "good for one added uncorrectable error per ~35,000 years.)\n",
        recommended);
  } else {
    std::printf(
        "no listed interval meets the target; scrub faster than 15 min or\n"
        "revisit the target.\n");
  }

  // Cost side: scanning the whole memory once per interval.
  const double capacity_gb = 32.0;
  const double scrub_bw_mbs =
      capacity_gb * 1024 / (recommended > 0 ? recommended * 3600 : 3600);
  std::printf(
      "\ncost check: scrubbing %.0f GiB every %.0f h needs %.2f MB/s of\n"
      "read bandwidth -- noise against tens of GB/s of channel bandwidth\n"
      "(see bench/ablation_scrub for the measured EPI/IPC impact).\n",
      capacity_gb, recommended > 0 ? recommended : 1.0, scrub_bw_mbs);
  return 0;
}
