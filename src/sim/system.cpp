#include "sim/system.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <unordered_set>

namespace eccsim::sim {

namespace {

std::uint32_t faulty_key(const dram::DramAddress& a) {
  return (a.channel << 16) | (a.rank << 8) | a.bank;
}

// Namespace tag for LLC keys (data lines use their raw 64B index; XOR
// cachelines carry ParityLayout's 1<<62 tag).
constexpr std::uint64_t kEccKeyTag = 1ULL << 63;

/// ECCSIM_CHECK set to anything but "0" enables the protocol checker for
/// every run in the process (the CI sweeps use this).
bool protocol_check_env() {
  const char* v = std::getenv("ECCSIM_CHECK");
  return v != nullptr && std::strcmp(v, "0") != 0;
}

}  // namespace

SystemSim::SystemSim(const ecc::SchemeDesc& scheme,
                     const trace::WorkloadDesc& workload,
                     const CpuConfig& cpu, const SimOptions& opts)
    : scheme_(scheme),
      cpu_(cpu),
      opts_(opts),
      mem_([&] {
        const dram::Generation gen = opts.dram_gen
            ? *opts.dram_gen
            : dram::generation_from_env().value_or(dram::Generation::kDdr3);
        dram::MemSystemConfig cfg = scheme.mem_config(gen);
        cfg.powerdown_enabled = opts.powerdown_enabled;
        cfg.row_policy = opts.row_policy;
        return cfg;
      }()),
      llc_(cache::CacheConfig{}),
      lines64_per_memline_(scheme.line_bytes / 64) {
  if (opts.dedicated_ecc_cache_bytes != 0) {
    cache::CacheConfig ecc_cfg;
    ecc_cfg.size_bytes = opts.dedicated_ecc_cache_bytes;
    ecc_cfg.ways = 8;
    dedicated_ecc_cache_ = std::make_unique<cache::Cache>(ecc_cfg);
  }
  if (scheme.line_bytes % 64 != 0) {
    throw std::invalid_argument("SystemSim: line size must be 64B multiple");
  }
  cores_.resize(cpu_.cores);
  build_source(workload);
  if (scheme.uses_ecc_parity) {
    const unsigned corr_bytes = static_cast<unsigned>(
        scheme.correction_ratio * scheme.line_bytes);
    parity_layout_.emplace(mem_.config().geometry(), corr_bytes);
  }
  attach_protocol_checkers();
  attach_stats();
}

void SystemSim::build_source(const trace::WorkloadDesc& workload) {
  if (!opts_.trace_in.empty()) {
    auto replay = std::make_unique<tracefile::ReplaySource>(opts_.trace_in);
    // The trace must have been recorded for this exact configuration: the
    // workload name pins the calibrated descriptor (and thus the run's
    // label) and the core count pins the per-core demultiplexing.
    if (replay->workload().name != workload.name) {
      throw tracefile::TraceError(
          "ecctrace: " + opts_.trace_in + " records workload '" +
          replay->workload().name + "' but the run asked for '" +
          workload.name + "'");
    }
    if (replay->cores() != cpu_.cores) {
      throw tracefile::TraceError(
          "ecctrace: " + opts_.trace_in + " records " +
          std::to_string(replay->cores()) + " cores but the run has " +
          std::to_string(cpu_.cores));
    }
    replay_ = replay.get();
    source_ = std::move(replay);
  } else {
    source_ = std::make_unique<trace::SyntheticSource>(workload, cpu_.cores,
                                                       opts_.seed);
  }
  if (!opts_.trace_out.empty()) {
    if (opts_.trace_point == tracefile::CapturePoint::kPreLlc) {
      auto rec = std::make_unique<tracefile::RecordingSource>(
          std::move(source_), opts_.trace_out, opts_.seed);
      recording_ = rec.get();
      source_ = std::move(rec);
    } else {
      tracefile::TraceMeta meta;
      meta.point = tracefile::CapturePoint::kPostLlc;
      meta.cores = cpu_.cores;
      meta.seed = opts_.seed;
      meta.workload = workload.name;
      post_writer_ =
          std::make_unique<tracefile::TraceWriter>(opts_.trace_out, meta);
    }
  }
}

void SystemSim::close_trace_outputs() {
  if (recording_ != nullptr) recording_->writer().close();
  if (post_writer_) post_writer_->close();
}

void SystemSim::attach_protocol_checkers() {
  if (!opts_.protocol_check && !protocol_check_env()) return;
  const dram::ChannelConfig cc = mem_.channel_config();
  checkers_.reserve(mem_.num_channels());
  for (std::uint32_t c = 0; c < mem_.num_channels(); ++c) {
    checkers_.push_back(std::make_unique<check::ProtocolChecker>(
        cc, scheme_.name + ".ch" + std::to_string(c)));
    mem_.set_command_observer(c, checkers_.back().get());
  }
}

void SystemSim::attach_stats() {
  if (!opts_.stats || !opts_.stats->config().enabled) return;
  stats::Registry& reg = opts_.stats->registry();
  streg_ = &reg;
  tracer_ = opts_.stats->tracer();
  epoch_cycles_ = opts_.stats->config().epoch_cycles;
  next_epoch_ = epoch_cycles_;
  reg.set_epoch_cycles(epoch_cycles_);

  mem_.attach_stats(reg, tracer_);
  llc_.attach_stats(reg, "llc");
  if (dedicated_ecc_cache_) dedicated_ecc_cache_->attach_stats(reg, "ecc_cache");
  reg.gauge("cpu.committed_instructions", [this](std::uint64_t) {
    std::uint64_t total = 0;
    for (const auto& c : cores_) total += c.committed;
    return static_cast<double>(total);
  });
  if (scheme_.uses_ecc_parity) {
    slow_path_hits_ = reg.counter("eccparity.fig6_slow_path_hits");
  }
  if (recording_ != nullptr) {
    reg.gauge("tracefile.record.ops", [this](std::uint64_t) {
      return static_cast<double>(recording_->writer().counters().ops);
    });
    reg.gauge("tracefile.record.file_bytes", [this](std::uint64_t) {
      return static_cast<double>(recording_->writer().counters().file_bytes);
    });
  }
  if (post_writer_) {
    reg.gauge("tracefile.post.ops", [this](std::uint64_t) {
      return static_cast<double>(post_writer_->counters().ops);
    });
    reg.gauge("tracefile.post.file_bytes", [this](std::uint64_t) {
      return static_cast<double>(post_writer_->counters().file_bytes);
    });
  }
  if (replay_ != nullptr) {
    reg.gauge("tracefile.replay.ops", [this](std::uint64_t) {
      return static_cast<double>(replay_->ops_replayed());
    });
    reg.gauge("tracefile.replay.chunks_decoded", [this](std::uint64_t) {
      return static_cast<double>(replay_->reader_counters().chunks_decoded);
    });
  }
  if (tracer_) {
    // Tracks 0..channels-1 are the DRAM channels; the next one carries the
    // manager-level ECC-parity instant events.
    ecc_trace_tid_ = mem_.num_channels();
    tracer_->set_thread_name(ecc_trace_tid_, "eccparity");
  }
}

void SystemSim::finalize_stats() {
  if (!streg_) return;
  stats::Registry& reg = *streg_;
  reg.finalize(mem_.cycle());

  const auto& marks = reg.epoch_marks();
  if (marks.empty()) return;
  std::vector<double> epoch_len(marks.size());
  std::uint64_t prev = 0;
  for (std::size_t i = 0; i < marks.size(); ++i) {
    epoch_len[i] = static_cast<double>(marks[i] - prev);
    prev = marks[i];
  }
  const std::vector<double>* instr =
      reg.epoch_series("cpu.committed_instructions");

  // Derived per-epoch series (Figs. 14/12 over time): per-channel data-bus
  // utilization and memory energy per instruction.
  std::vector<double> total_energy(marks.size(), 0.0);
  for (std::uint32_t c = 0; c < mem_.num_channels(); ++c) {
    const std::string ch = "dram.ch" + std::to_string(c);
    if (const auto* busy = reg.epoch_series(ch + ".busy_data_cycles")) {
      std::vector<double> bw(busy->size(), 0.0);
      for (std::size_t i = 0; i < bw.size(); ++i) {
        bw[i] = epoch_len[i] > 0 ? (*busy)[i] / epoch_len[i] : 0.0;
      }
      reg.add_series("derived." + ch + ".bandwidth_utilization",
                     std::move(bw));
    }
    if (const auto* pj = reg.epoch_series(ch + ".energy.total_pj")) {
      for (std::size_t i = 0; i < pj->size(); ++i) total_energy[i] += (*pj)[i];
      if (instr) {
        std::vector<double> epi(pj->size(), 0.0);
        for (std::size_t i = 0; i < epi.size(); ++i) {
          epi[i] = (*instr)[i] > 0 ? (*pj)[i] / (*instr)[i] : 0.0;
        }
        reg.add_series("derived." + ch + ".epi_pj", std::move(epi));
      }
    }
  }
  if (instr) {
    std::vector<double> epi(total_energy.size(), 0.0);
    for (std::size_t i = 0; i < epi.size(); ++i) {
      epi[i] = (*instr)[i] > 0 ? total_energy[i] / (*instr)[i] : 0.0;
    }
    reg.add_series("derived.epi_pj", std::move(epi));
  }
}

bool SystemSim::bank_is_faulty(const dram::DramAddress& a) const {
  if (opts_.faulty_banks.empty()) return false;
  const std::uint32_t key = faulty_key(a);
  return std::find(opts_.faulty_banks.begin(), opts_.faulty_banks.end(),
                   key) != opts_.faulty_banks.end();
}

std::uint64_t SystemSim::ecc_cacheline_key(std::uint64_t memline) const {
  if (scheme_.uses_ecc_parity) {
    return parity_layout_->xor_cacheline_key(memline);
  }
  return kEccKeyTag | (memline / scheme_.ecc_line_coverage);
}

dram::DramAddress SystemSim::ecc_line_address(std::uint64_t key) const {
  const auto& geom = mem_.config().geometry();
  if (scheme_.uses_ecc_parity) {
    // Invert the XOR key: (plane, stripe, slot-bucket) -> the primary
    // group's parity line.  (Leftover lines share the bucket's parity
    // address in this traffic model; the functional manager keeps them
    // exact.)
    return parity_layout_->parity_line_address(
        parity_layout_->group_for_xor_key(key));
  }
  // Tiered baselines (LOT-ECC, Multi-ECC): the tier-2/correction line lives
  // in the reserved top rows of the same bank as the lines it covers.
  const std::uint64_t first_line = (key & ~kEccKeyTag) *
                                   scheme_.ecc_line_coverage;
  dram::DramAddress a = mem_.map().decode(
      std::min<std::uint64_t>(first_line, geom.total_data_lines() - 1));
  const std::uint64_t reserved = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             static_cast<double>(geom.rows_per_bank) *
             scheme_.correction_ratio));
  a.row = geom.rows_per_bank - 1 - (a.row % reserved);
  return a;
}

void SystemSim::send_or_queue(const PendingReq& req) {
  if (warmup_) return;  // cache state only; no memory traffic
  if (post_writer_) {
    // Post-LLC capture point: every request the memory system will see, in
    // issue order (drain_pending retries bypass this path, so a queued
    // request is recorded exactly once).
    post_writer_->append(tracefile::PostOp{mem_.cycle(), req.addr,
                                           req.is_write, req.line_class});
  }
  if (!mem_.enqueue_addr(req.addr, req.is_write, req.line_class, req.id)) {
    pending_.push_back(req);
  }
}

void SystemSim::drain_pending() {
  const std::size_t n = pending_.size();
  for (std::size_t i = 0; i < n && !pending_.empty(); ++i) {
    PendingReq req = pending_.front();
    pending_.pop_front();
    if (!mem_.enqueue_addr(req.addr, req.is_write, req.line_class, req.id)) {
      pending_.push_back(req);
    }
  }
}

bool SystemSim::request_read(std::uint64_t memline, int core) {
  if (warmup_) return true;
  auto it = mshr_.find(memline);
  if (it != mshr_.end()) {
    if (core >= 0) it->second.push_back(core);
    return true;
  }
  const std::uint64_t id = next_id_++;
  id_to_memline_[id] = memline;
  auto& waiters = mshr_[memline];
  if (core >= 0) waiters.push_back(core);
  const std::uint64_t capped =
      memline % mem_.config().geometry().total_data_lines();
  send_or_queue(PendingReq{mem_.map().decode(capped), false,
                           dram::LineClass::kData, id});
  return true;
}

void SystemSim::process_eviction(std::uint64_t victim_addr,
                                 cache::LineKind kind) {
  // Iterative worklist: ECC cacheline insertions can evict further lines.
  std::deque<std::pair<std::uint64_t, cache::LineKind>> work;
  work.emplace_back(victim_addr, kind);
  while (!work.empty()) {
    const auto [addr, k] = work.front();
    work.pop_front();
    switch (k) {
      case cache::LineKind::kData: {
        const std::uint64_t memline = mem_line_of(addr);
        const std::uint64_t capped =
            memline % mem_.config().geometry().total_data_lines();
        const dram::DramAddress daddr = mem_.map().decode(capped);
        send_or_queue(PendingReq{daddr, true, dram::LineClass::kData,
                                 next_id_++});
        if (scheme_.maint == ecc::MaintTraffic::kNone) break;
        // The write dirties the covering ECC/XOR cacheline (Fig. 7); a
        // faulty bank uses its materialized ECC line (step D) instead of
        // the parity's XOR line.
        cache::LineKind ecc_kind =
            scheme_.maint == ecc::MaintTraffic::kWriteOnEvict
                ? cache::LineKind::kEcc
                : cache::LineKind::kXor;
        if (scheme_.uses_ecc_parity && bank_is_faulty(daddr)) {
          ecc_kind = cache::LineKind::kEcc;
        }
        const std::uint64_t key = ecc_cacheline_key(capped);
        const auto r = ecc_cache().access(key, true, ecc_kind);
        if (r.writeback) work.emplace_back(r.victim_addr, r.victim_kind);
        break;
      }
      case cache::LineKind::kEcc: {
        // Tier-2 / materialized ECC line: one memory write (Sec. IV-C).
        send_or_queue(PendingReq{ecc_line_address(addr), true,
                                 dram::LineClass::kEccOther, next_id_++});
        break;
      }
      case cache::LineKind::kXor: {
        // Parity read-modify-write: read the old parity line, write the
        // updated one (Sec. IV-C).
        const dram::DramAddress paddr = ecc_line_address(addr);
        send_or_queue(PendingReq{paddr, false, dram::LineClass::kEccParity,
                                 next_id_++});
        send_or_queue(PendingReq{paddr, true, dram::LineClass::kEccParity,
                                 next_id_++});
        break;
      }
    }
  }
}

bool SystemSim::execute_op(unsigned c, const trace::MemOp& op) {
  Core& core = cores_[c];
  const std::uint64_t memline = mem_line_of(op.line);
  const std::uint64_t capped =
      memline % mem_.config().geometry().total_data_lines();
  const dram::DramAddress daddr = mem_.map().decode(capped);

  if (!op.is_write) {
    // Read: an LLC miss occupies an MLP slot; refuse (and stall the core)
    // if none is free.
    if (!warmup_ && !llc_.contains(op.line) &&
        core.outstanding_reads >= cpu_.mlp) {
      return false;
    }
    const auto r = llc_.access(op.line, false, cache::LineKind::kData);
    if (r.writeback) process_eviction(r.victim_addr, r.victim_kind);
    if (!r.hit && !warmup_) {
      ++core.outstanding_reads;
      request_read(memline, static_cast<int>(c));
    }
    // Step A1/B: reads to a faulty bank also need the ECC line (cached).
    if (scheme_.uses_ecc_parity && bank_is_faulty(daddr)) {
      const std::uint64_t key = ecc_cacheline_key(capped) | kEccKeyTag;
      const auto er = ecc_cache().access(key, false, cache::LineKind::kEcc);
      if (er.writeback) process_eviction(er.victim_addr, er.victim_kind);
      if (!er.hit) {
        send_or_queue(PendingReq{ecc_line_address(key & ~kEccKeyTag), false,
                                 dram::LineClass::kEccCorrection,
                                 next_id_++});
      }
      if (!warmup_) {
        if (slow_path_hits_) slow_path_hits_->inc();
        if (tracer_) {
          tracer_->instant(
              "eccparity", "fig6_slow_path", mem_.cycle(), ecc_trace_tid_,
              {{"bank", static_cast<double>(faulty_key(daddr))},
               {"ecc_cached", er.hit ? 1.0 : 0.0}});
        }
      }
    }
    return true;
  }

  // Write: write-allocate; the fetch-on-write read is non-blocking.
  const auto r = llc_.access(op.line, true, cache::LineKind::kData);
  if (r.writeback) process_eviction(r.victim_addr, r.victim_kind);
  if (!r.hit) request_read(memline, -1);
  return true;
}

void SystemSim::core_cycle(unsigned c) {
  Core& core = cores_[c];
  unsigned budget = cpu_.width;
  while (budget > 0) {
    if (!core.waiting_op) {
      const trace::MemOp next = source_->next(c);
      core.gap_remaining = next.gap;
      core.waiting_op = next;
    }
    if (core.gap_remaining > 0) {
      const unsigned take = static_cast<unsigned>(std::min<std::uint64_t>(
          budget, core.gap_remaining));
      core.committed += take;
      core.gap_remaining -= take;
      budget -= take;
      continue;
    }
    // The memory op is due.
    if (!execute_op(c, *core.waiting_op)) return;  // stall; retry next cycle
    ++core.committed;  // the memory instruction itself
    --budget;
    core.waiting_op.reset();
  }
}

void SystemSim::cpu_cycle() {
  for (unsigned c = 0; c < cpu_.cores; ++c) core_cycle(c);
}

void SystemSim::handle_completions() {
  auto& done = mem_.completions();
  for (const auto& comp : done) {
    if (comp.is_write) continue;
    const auto it = id_to_memline_.find(comp.id);
    if (it == id_to_memline_.end()) continue;  // ECC read: nothing to fill
    const std::uint64_t memline = it->second;
    id_to_memline_.erase(it);
    // Fill all 64B siblings of the memory line (128B-line prefetch effect).
    for (std::uint32_t i = 0; i < lines64_per_memline_; ++i) {
      const auto r = llc_.fill(memline * lines64_per_memline_ + i);
      if (r.writeback) process_eviction(r.victim_addr, r.victim_kind);
    }
    const auto w = mshr_.find(memline);
    if (w != mshr_.end()) {
      for (int c : w->second) {
        if (c >= 0 && cores_[static_cast<unsigned>(c)].outstanding_reads > 0) {
          --cores_[static_cast<unsigned>(c)].outstanding_reads;
        }
      }
      mshr_.erase(w);
    }
  }
  done.clear();
}

RunResult SystemSim::run() {
  // Warm the LLC to steady state before measuring (the paper warms caches
  // for a billion instructions, Sec. IV-B): stream each core's access
  // pattern through the cache with no timing or memory side effects, so
  // the measured phase starts with a populated cache whose evictions --
  // and therefore ECC-maintenance traffic -- reflect steady state.
  {
    warmup_ = true;
    const std::uint64_t llc_lines =
        cache::CacheConfig{}.size_bytes / cache::CacheConfig{}.line_bytes;
    const std::uint64_t warm_ops_per_core = 3 * llc_lines / cpu_.cores;
    // Interleave cores so shared-footprint (PARSEC-style) workloads warm
    // the cache the way they will run.  The full execute_op path runs --
    // including ECC/XOR cacheline insertion and eviction -- so the LLC
    // reaches its steady-state mix of data and ECC lines; send_or_queue
    // and request_read drop everything while warmup_ is set.
    for (std::uint64_t i = 0; i < warm_ops_per_core; ++i) {
      for (unsigned c = 0; c < cpu_.cores; ++c) {
        (void)execute_op(c, source_->next(c));
      }
    }
    llc_.reset_stats();
    warmup_ = false;
  }

  std::uint64_t committed_total = 0;
  std::uint64_t scrub_cursor = 0;
  while (committed_total < opts_.target_instructions &&
         mem_.cycle() < opts_.max_mem_cycles) {
    mem_.tick();
    handle_completions();
    drain_pending();
    if (opts_.scrub_read_interval != 0 &&
        mem_.cycle() % opts_.scrub_read_interval == 0) {
      // Background scrubber: sweep the data space one line per interval
      // (Sec. VI-C).  Scrub reads are tagged as ECC traffic so their
      // bandwidth cost is visible in the statistics.
      const std::uint64_t total =
          mem_.config().geometry().total_data_lines();
      send_or_queue(PendingReq{mem_.map().decode(scrub_cursor % total),
                               false, dram::LineClass::kEccOther,
                               next_id_++});
      ++scrub_cursor;
    }
    for (unsigned k = 0; k < cpu_.cpu_cycles_per_mem_cycle; ++k) {
      cpu_cycle();
    }
    if (epoch_cycles_ != 0 && mem_.cycle() >= next_epoch_) {
      streg_->sample_epoch(mem_.cycle());
      next_epoch_ += epoch_cycles_;
    }
    if ((mem_.cycle() & 0x3FF) == 0) {
      committed_total = 0;
      for (const auto& c : cores_) committed_total += c.committed;
    }
  }
  const std::uint64_t run_cycles = mem_.cycle();

  // Drain outstanding traffic so energy accounting is complete.
  std::uint64_t guard = 0;
  while ((mem_.outstanding() > 0 || !pending_.empty()) && guard < 200'000) {
    mem_.tick();
    handle_completions();
    drain_pending();
    if (epoch_cycles_ != 0 && mem_.cycle() >= next_epoch_) {
      streg_->sample_epoch(mem_.cycle());
      next_epoch_ += epoch_cycles_;
    }
    ++guard;
  }

  RunResult result;
  result.scheme = scheme_.name;
  result.workload = source_->workload().name;
  for (const auto& c : cores_) result.instructions += c.committed;
  result.mem_cycles = run_cycles;
  result.mem = mem_.finalize();
  // finalize() has emitted the residual refresh commands, so the checkers
  // have now audited the complete command stream.  In kCount mode (Release)
  // violations accumulate silently until this boundary; fail the run here
  // rather than return results from a protocol-violating simulation.
  std::uint64_t protocol_violations = 0;
  std::string protocol_report;
  for (const auto& checker : checkers_) {
    protocol_violations += checker->violation_count();
    if (checker->violation_count() > 0) protocol_report += checker->report();
  }
  if (protocol_violations > 0) {
    throw std::runtime_error("DRAM protocol violations detected:\n" +
                             protocol_report);
  }
  result.llc = llc_.stats();
  const double instr = static_cast<double>(result.instructions);
  const double cpu_cycles =
      static_cast<double>(run_cycles) * cpu_.cpu_cycles_per_mem_cycle;
  result.ipc = instr / cpu_cycles;
  result.epi_pj = result.mem.energy.total_pj() / instr;
  result.dynamic_epi_pj = result.mem.energy.dynamic_pj() / instr;
  result.background_epi_pj =
      (result.mem.energy.background_pj + result.mem.energy.refresh_pj) /
      instr;
  result.mapi =
      static_cast<double>(result.mem.accesses_64b(scheme_.line_bytes)) /
      instr;
  const double burst = mem_.config().device.timing.tBurst;
  // Utilization averages over every independently-scheduled data bus
  // (physical channels times sub-channels; equal for DDR3/DDR4).
  result.bandwidth_utilization =
      static_cast<double>(result.mem.reads + result.mem.writes) * burst /
      (static_cast<double>(mem_.num_channels()) *
       static_cast<double>(run_cycles));
  result.avg_read_latency = result.mem.avg_read_latency;
  // Seal trace outputs before the final stats sample so the tracefile.*
  // gauges capture footer-inclusive sizes (and a failed flush aborts the
  // run instead of leaving a silently truncated file).
  close_trace_outputs();
  finalize_stats();
  return result;
}

RunResult run_experiment(ecc::SchemeId scheme, ecc::SystemScale scale,
                         const std::string& workload_name,
                         const SimOptions& opts) {
  const ecc::SchemeDesc desc = ecc::make_scheme(scheme, scale);
  SystemSim sim(desc, trace::workload_by_name(workload_name), CpuConfig{},
                opts);
  return sim.run();
}

}  // namespace eccsim::sim
