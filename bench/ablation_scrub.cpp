// Ablation: scrub-rate cost (Sec. VI-C).  ECC Parity relies on periodic
// scrubbing to catch a channel fault before a second channel faults at the
// same relative location; Fig. 18 quantifies the reliability side.  This
// bench quantifies the *cost* side: the performance and energy impact of
// issuing scrub reads at different rates, which is why the paper argues an
// 8-hour window (vanishing overhead) is enough.
//
// Scale note: a real 32 GiB system scrubbed every 8 hours needs ~19 reads
// per millisecond -- noise.  To make the trend measurable inside a short
// simulation we sweep far more aggressive rates and report overhead per
// scrub-read-per-kilocycle, which extrapolates down to the real rates.
#include <cstdio>

#include "bench_common.hpp"

using namespace eccsim;

int main(int argc, char** argv) {
  eccsim::bench::init(argc, argv);
  std::printf("Ablation -- scrub traffic cost (Sec. VI-C)\n\n");
  const auto desc = ecc::make_scheme(ecc::SchemeId::kLotEcc5Parity,
                                     ecc::SystemScale::kQuadEquivalent);
  Table t({"scrub interval (cycles)", "scrub reads/KC", "EPI (pJ/instr)",
           "IPC", "EPI overhead"});
  double base_epi = 0;
  for (std::uint64_t interval : {0ULL, 1024ULL, 256ULL, 64ULL, 16ULL}) {
    sim::SimOptions opts;
    opts.target_instructions = bench::target_instructions();
    opts.scrub_read_interval = interval;
    sim::SystemSim s(desc, trace::workload_by_name("milc"),
                     sim::CpuConfig{}, opts);
    const auto r = s.run();
    if (interval == 0) base_epi = r.epi_pj;
    t.add_row({interval == 0 ? "off" : std::to_string(interval),
               interval == 0 ? "0" : Table::num(1000.0 / interval, 1),
               Table::num(r.epi_pj, 1), Table::num(r.ipc, 2),
               interval == 0
                   ? "--"
                   : Table::num((r.epi_pj / base_epi - 1) * 100, 1) + "%"});
  }
  bench::emit("ablation_scrub", t);
  std::printf(
      "An 8-hour full-memory scrub corresponds to ~2e-5 reads per\n"
      "kilocycle -- orders of magnitude below the smallest rate above, so\n"
      "its EPI/IPC cost is unmeasurable (the paper's premise in Sec. VI-C).\n");
  return 0;
}
