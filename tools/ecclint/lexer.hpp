// ecclint's C++ lexer: comments and string literals stripped into typed
// tokens, #include directives and `// ecclint:allow(EL###)` suppressions
// extracted on the side.
//
// This is not a compiler front end.  It understands exactly as much C++
// as the rule passes need to avoid false positives from text inside
// comments and strings:
//   - // and /* */ comments (including line-spliced // comments);
//   - ordinary, prefixed (u8/u/U/L), and raw string literals
//     (R"delim(...)delim"), character literals, digit separators;
//   - backslash-newline splices anywhere (handled before tokenization,
//     as the real phases of translation do);
//   - preprocessor directives: #include targets are captured, `#if 0`
//     regions are skipped entirely (so a disabled #include contributes no
//     edge), and other directives are consumed without emitting tokens.
// Everything else becomes Ident / Number / Punct tokens with 1-based
// line numbers, which is all the rule passes operate on.
#pragma once

#include <string>
#include <vector>

namespace eccsim::ecclint {

enum class Tok : unsigned char {
  kIdent,
  kNumber,
  kString,  ///< text is the literal's *contents* (escapes left verbatim)
  kChar,
  kPunct,
};

struct Token {
  Tok kind;
  std::string text;
  int line = 0;
};

/// One #include directive in an enabled preprocessor region.
struct Include {
  std::string path;  ///< the text between the quotes / angle brackets
  int line = 0;
  bool angled = false;  ///< <...> (system) rather than "..." (project)
};

/// One `// ecclint:allow(EL###) reason` comment.  A suppression silences
/// findings of that rule on its own line and the line below; an empty
/// reason is itself reported (EL000) and silences nothing.
struct Suppression {
  int line = 0;
  std::string rule;    ///< e.g. "EL001"
  std::string reason;  ///< trimmed text after the closing paren
};

struct LexedFile {
  std::string path;  ///< repo-relative, '/'-separated
  std::vector<Token> tokens;
  std::vector<Include> includes;
  std::vector<Suppression> suppressions;
};

LexedFile lex(const std::string& path, const std::string& content);

}  // namespace eccsim::ecclint
