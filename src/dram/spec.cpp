#include "dram/spec.hpp"

#include <cstdlib>
#include <stdexcept>

#include "common/units.hpp"

namespace eccsim::dram {

std::string to_string(DeviceWidth w) {
  switch (w) {
    case DeviceWidth::kX4: return "x4";
    case DeviceWidth::kX8: return "x8";
    case DeviceWidth::kX16: return "x16";
  }
  return "x?";
}

std::string to_string(Generation g) {
  switch (g) {
    case Generation::kDdr3: return "ddr3";
    case Generation::kDdr4: return "ddr4";
    case Generation::kDdr5: return "ddr5";
  }
  return "ddr?";
}

std::optional<Generation> parse_generation(std::string_view name) {
  if (name == "ddr3") return Generation::kDdr3;
  if (name == "ddr4") return Generation::kDdr4;
  if (name == "ddr5") return Generation::kDdr5;
  return std::nullopt;
}

std::optional<Generation> generation_from_env() {
  const char* env = std::getenv("ECCSIM_DRAM");
  if (env == nullptr || *env == '\0') return std::nullopt;
  const auto gen = parse_generation(env);
  if (!gen) {
    throw std::runtime_error(std::string("ECCSIM_DRAM: unknown DRAM "
                                         "generation '") +
                             env + "' (expected ddr3, ddr4, or ddr5)");
  }
  return gen;
}

namespace {

DramEnergy derive_energy(const DramTiming& t, const DramCurrents& c) {
  using units::picojoules;
  DramEnergy e;
  // Micron TN-41-01 activate power: IDD0 minus the standby floor it was
  // measured against (IDD3N during tRAS, IDD2N during tRC - tRAS), spread
  // over one tRC.  Energy = that net current * VDD * tRC.
  const double act_net_ma =
      c.idd0 - (c.idd3n * t.tRAS + c.idd2n * (t.tRC - t.tRAS)) /
                   static_cast<double>(t.tRC);
  e.act_pj = picojoules(act_net_ma, c.vdd, static_cast<double>(t.tRC));
  // Burst energy: current above active standby for the burst duration.
  e.rd_burst_pj =
      picojoules(c.idd4r - c.idd3n, c.vdd, static_cast<double>(t.tBurst));
  e.wr_burst_pj =
      picojoules(c.idd4w - c.idd3n, c.vdd, static_cast<double>(t.tBurst));
  e.refresh_pj =
      picojoules(c.idd5b - c.idd2n, c.vdd, static_cast<double>(t.tRFC));
  e.bg_pd_pj_cyc = picojoules(c.idd2p, c.vdd, 1.0);
  e.bg_pre_pj_cyc = picojoules(c.idd2n, c.vdd, 1.0);
  e.bg_act_pj_cyc = picojoules(c.idd3n, c.vdd, 1.0);
  return e;
}

// Shortens cycle-denominated latencies and raises currents slightly for a
// faster speed bin (Sec. V-D estimates a 16% faster bin costs ~5% EPI).
// Shared by every generation; the arithmetic matches the original DDR3-only
// implementation exactly so the speed-bin ablation stays bit-identical.
void apply_speed_factor(DramSpec& d, double speed_factor) {
  d.speed_factor = speed_factor;
  if (speed_factor == 1.0) return;
  auto scale = [&](unsigned v) {
    return static_cast<unsigned>(static_cast<double>(v) / speed_factor);
  };
  d.timing.tRCD = scale(d.timing.tRCD);
  d.timing.tCL = scale(d.timing.tCL);
  d.timing.tRP = scale(d.timing.tRP);
  const double current_scale = 1.0 + 0.3 * (speed_factor - 1.0);
  d.currents.idd0 *= current_scale;
  d.currents.idd2n *= current_scale;
  d.currents.idd3n *= current_scale;
  d.currents.idd4r *= current_scale;
  d.currents.idd4w *= current_scale;
}

// Rows follow from capacity = banks * rows * columns * width.
std::uint64_t derive_rows(const DramSpec& d) {
  return d.capacity_mbit * 1024 * 1024 /
         (static_cast<std::uint64_t>(d.banks) * d.columns *
          static_cast<unsigned>(d.width));
}

}  // namespace

DramSpec micron_2gb(DeviceWidth width, double speed_factor) {
  DramSpec d;
  d.generation = Generation::kDdr3;
  d.width = width;
  d.capacity_mbit = 2048;
  d.banks = 8;
  d.bank_groups = 1;
  d.sub_channels = 1;
  switch (width) {
    case DeviceWidth::kX4:
      d.columns = 2048;
      d.page_bytes = 1024;  // 2K columns * 4 bits = 1KB row
      d.currents.idd4r = 140;
      d.currents.idd4w = 145;
      break;
    case DeviceWidth::kX8:
      d.columns = 1024;
      d.page_bytes = 1024;  // 1K columns * 8 bits = 1KB row
      d.currents.idd4r = 160;
      d.currents.idd4w = 165;
      break;
    case DeviceWidth::kX16:
      d.columns = 1024;
      d.page_bytes = 2048;  // 1K columns * 16 bits = 2KB row
      d.currents.idd0 = 115;
      d.currents.idd4r = 230;
      d.currents.idd4w = 240;
      d.currents.idd5b = 255;
      d.timing.tFAW = 40;  // wider page -> longer four-activate window
      d.timing.tRRD_S = 8;
      d.timing.tRRD_L = 8;
      break;
  }
  // x4 -> 32K rows, x8 -> 32K rows, x16 -> 16K rows for the 2Gb part.
  d.rows = derive_rows(d);
  apply_speed_factor(d, speed_factor);
  d.energy = derive_energy(d.timing, d.currents);
  return d;
}

DramSpec ddr4_8gb(DeviceWidth width, double speed_factor) {
  DramSpec d;
  d.generation = Generation::kDdr4;
  d.width = width;
  d.capacity_mbit = 8192;
  d.banks = 16;       // 4 bank groups x 4 banks
  d.bank_groups = 4;
  d.sub_channels = 1;
  // Representative 8Gb DDR4-2400 part (Micron 8Gb DDR4 SDRAM datasheet
  // class), expressed in 1 ns controller cycles.  VDD drops to 1.2 V and
  // the per-bank currents shrink relative to DDR3 while burst currents
  // grow with the faster interface.
  d.timing.tRCD = 14;
  d.timing.tCL = 14;
  d.timing.tCWL = 11;
  d.timing.tRP = 14;
  d.timing.tRAS = 32;
  d.timing.tRC = 46;
  d.timing.tRRD_S = 4;
  d.timing.tRRD_L = 6;
  d.timing.tFAW = 21;
  d.timing.tWR = 15;
  d.timing.tWTR = 8;
  d.timing.tRTP = 8;
  d.timing.tCCD_S = 4;   // different bank group: back-to-back bursts
  d.timing.tCCD_L = 6;   // same bank group: 2-cycle bubble between bursts
  d.timing.tBurst = 4;   // BL8 on a 64-bit channel
  d.timing.tRFC = 350;   // tRFC1 for the 8Gb part
  d.timing.tREFI = 7800;
  d.timing.tXP = 6;
  d.timing.tCKE = 5;
  d.timing.tRTW = 8;
  d.currents.idd0 = 58;
  d.currents.idd2p = 25;
  d.currents.idd2n = 38;
  d.currents.idd3p = 42;
  d.currents.idd3n = 50;
  d.currents.idd5b = 195;
  d.currents.vdd = 1.2;
  switch (width) {
    case DeviceWidth::kX4:
      d.columns = 1024;
      d.page_bytes = 512;  // 1K columns * 4 bits
      d.currents.idd4r = 140;
      d.currents.idd4w = 135;
      break;
    case DeviceWidth::kX8:
      d.columns = 1024;
      d.page_bytes = 1024;
      d.currents.idd4r = 150;
      d.currents.idd4w = 145;
      break;
    case DeviceWidth::kX16:
      d.columns = 1024;
      d.page_bytes = 2048;
      d.currents.idd0 = 70;
      d.currents.idd4r = 200;
      d.currents.idd4w = 190;
      d.currents.idd5b = 215;
      d.timing.tRRD_S = 6;
      d.timing.tRRD_L = 8;
      d.timing.tFAW = 30;
      break;
  }
  // x4 -> 128K rows, x8 -> 64K rows, x16 -> 32K rows for the 8Gb part.
  d.rows = derive_rows(d);
  apply_speed_factor(d, speed_factor);
  d.energy = derive_energy(d.timing, d.currents);
  return d;
}

DramSpec ddr5_16gb(DeviceWidth width, double speed_factor) {
  DramSpec d;
  d.generation = Generation::kDdr5;
  d.width = width;
  d.capacity_mbit = 16384;
  d.banks = 32;       // 8 bank groups x 4 banks
  d.bank_groups = 8;
  d.sub_channels = 2;  // two independent 32-bit sub-channels per channel
  // Representative 16Gb DDR5-3200 part in 1 ns controller cycles.  A burst
  // is BL16 on a 32-bit sub-channel: 16 beats at double data rate occupy 8
  // clocks and still move one 64-byte line.  Refresh is same-bank (REFsb):
  // tREFI is the interval between REFsb commands (all-bank tREFI1 of
  // 3.9 us divided by the four bank sets) and tRFC is tRFCsb.
  d.refresh = RefreshPolicy::kSameBank;
  d.on_die_ecc.enabled = true;
  d.on_die_ecc.data_bits = 128;
  d.on_die_ecc.check_bits = 8;
  d.on_die_ecc.bit_fault_coverage = 0.9;
  d.timing.tRCD = 16;
  d.timing.tCL = 16;
  d.timing.tCWL = 14;
  d.timing.tRP = 16;
  d.timing.tRAS = 32;
  d.timing.tRC = 48;
  d.timing.tRRD_S = 4;
  d.timing.tRRD_L = 5;
  d.timing.tFAW = 20;
  d.timing.tWR = 30;
  d.timing.tWTR = 10;
  d.timing.tRTP = 12;
  d.timing.tCCD_S = 4;
  d.timing.tCCD_L = 8;
  d.timing.tBurst = 8;   // BL16 on a 32-bit sub-channel
  d.timing.tRFC = 130;   // tRFCsb for the 16Gb part
  d.timing.tREFI = 975;  // 3.9 us tREFI1 / 4 bank sets, per REFsb
  d.timing.tXP = 7;
  d.timing.tCKE = 5;
  d.timing.tRTW = 10;
  d.currents.idd0 = 65;
  d.currents.idd2p = 30;
  d.currents.idd2n = 45;
  d.currents.idd3p = 50;
  d.currents.idd3n = 55;
  d.currents.idd5b = 160;  // REFsb refreshes one bank set, not the device
  d.currents.vdd = 1.1;
  switch (width) {
    case DeviceWidth::kX4:
      d.columns = 1024;
      d.page_bytes = 512;
      d.currents.idd4r = 170;
      d.currents.idd4w = 160;
      break;
    case DeviceWidth::kX8:
      d.columns = 1024;
      d.page_bytes = 1024;
      d.currents.idd4r = 180;
      d.currents.idd4w = 170;
      break;
    case DeviceWidth::kX16:
      d.columns = 1024;
      d.page_bytes = 2048;
      d.currents.idd0 = 78;
      d.currents.idd4r = 240;
      d.currents.idd4w = 225;
      d.currents.idd5b = 180;
      d.timing.tRRD_S = 6;
      d.timing.tRRD_L = 8;
      d.timing.tFAW = 28;
      break;
  }
  // x4 -> 128K rows, x8 -> 64K rows, x16 -> 32K rows for the 16Gb part.
  d.rows = derive_rows(d);
  apply_speed_factor(d, speed_factor);
  d.energy = derive_energy(d.timing, d.currents);
  return d;
}

DramSpec spec_for(Generation g, DeviceWidth width, double speed_factor) {
  switch (g) {
    case Generation::kDdr3: return micron_2gb(width, speed_factor);
    case Generation::kDdr4: return ddr4_8gb(width, speed_factor);
    case Generation::kDdr5: return ddr5_16gb(width, speed_factor);
  }
  return micron_2gb(width, speed_factor);
}

void rederive_energy(DramSpec& device) {
  device.energy = derive_energy(device.timing, device.currents);
}

}  // namespace eccsim::dram
