file(REMOVE_RECURSE
  "CMakeFiles/ecc_dram.dir/channel.cpp.o"
  "CMakeFiles/ecc_dram.dir/channel.cpp.o.d"
  "CMakeFiles/ecc_dram.dir/ddr3_params.cpp.o"
  "CMakeFiles/ecc_dram.dir/ddr3_params.cpp.o.d"
  "CMakeFiles/ecc_dram.dir/memory_system.cpp.o"
  "CMakeFiles/ecc_dram.dir/memory_system.cpp.o.d"
  "libecc_dram.a"
  "libecc_dram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecc_dram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
