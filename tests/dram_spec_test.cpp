// Tests for the pluggable DRAM spec layer (DDR3/DDR4/DDR5).
//
// The DDR3 section pins every field of micron_2gb() against the literal
// constants of the pre-spec-layer ddr3_params tables, so the refactor that
// introduced DramSpec can never drift from the paper-faithful device (the
// golden traces and scripts/ddr3_identity_check.sh pin the end-to-end
// behavior; this pins the inputs field by field).  The DDR4/DDR5 sections
// unit-test the generation-specific protocol rules -- bank-group CAS/ACT
// spacing, same-bank refresh rotation, per-set refresh blackouts -- against
// the extended protocol checker, plus the spec geometry helpers, the
// on-die-ECC fault filter, and the sub-channel planes of the parity layout.
#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include "check/protocol_checker.hpp"
#include "dram/channel.hpp"
#include "dram/spec.hpp"
#include "ecc/scheme.hpp"
#include "eccparity/layout.hpp"
#include "faults/fault_model.hpp"

namespace eccsim {
namespace {

using dram::DeviceWidth;
using dram::DramSpec;
using dram::Generation;

// ---------------------------------------------------------------------------
// DDR3 bit-identity: micron_2gb() vs the legacy ddr3_params constants.

/// The die-rev-D base timing table as it existed in ddr3_params.cpp; the
/// spec layer splits tRRD/tCCD into _S/_L, which must stay equal for DDR3.
void expect_ddr3_base_timing(const DramSpec& d, unsigned tRRD, unsigned tFAW) {
  const auto& t = d.timing;
  EXPECT_EQ(t.tCK, 1u);
  EXPECT_EQ(t.tRCD, 14u);
  EXPECT_EQ(t.tCL, 14u);
  EXPECT_EQ(t.tCWL, 10u);
  EXPECT_EQ(t.tRP, 14u);
  EXPECT_EQ(t.tRAS, 35u);
  EXPECT_EQ(t.tRC, 49u);
  EXPECT_EQ(t.tRRD_S, tRRD);
  EXPECT_EQ(t.tRRD_L, tRRD);  // no bank groups: _S == _L == legacy tRRD
  EXPECT_EQ(t.tFAW, tFAW);
  EXPECT_EQ(t.tWR, 15u);
  EXPECT_EQ(t.tWTR, 8u);
  EXPECT_EQ(t.tRTP, 8u);
  EXPECT_EQ(t.tCCD_S, 4u);
  EXPECT_EQ(t.tCCD_L, 4u);  // no bank groups: _S == _L == legacy tCCD
  EXPECT_EQ(t.tBurst, 4u);
  EXPECT_EQ(t.tRFC, 160u);
  EXPECT_EQ(t.tREFI, 7800u);
  EXPECT_EQ(t.tXP, 6u);
  EXPECT_EQ(t.tCKE, 6u);
  EXPECT_EQ(t.tRTW, 8u);
}

TEST(DramSpecDdr3, X4MatchesLegacyConstants) {
  const DramSpec d = dram::micron_2gb(DeviceWidth::kX4);
  EXPECT_EQ(d.generation, Generation::kDdr3);
  EXPECT_EQ(d.capacity_mbit, 2048u);
  EXPECT_EQ(d.banks, 8u);
  EXPECT_EQ(d.bank_groups, 1u);
  EXPECT_EQ(d.sub_channels, 1u);
  EXPECT_EQ(d.rows, 32768u);
  EXPECT_EQ(d.columns, 2048u);
  EXPECT_EQ(d.page_bytes, 1024u);
  EXPECT_EQ(d.refresh, dram::RefreshPolicy::kAllBank);
  EXPECT_FALSE(d.on_die_ecc.enabled);
  expect_ddr3_base_timing(d, 6, 30);
  EXPECT_DOUBLE_EQ(d.currents.idd0, 95);
  EXPECT_DOUBLE_EQ(d.currents.idd2p, 12);
  EXPECT_DOUBLE_EQ(d.currents.idd2n, 45);
  EXPECT_DOUBLE_EQ(d.currents.idd3p, 50);
  EXPECT_DOUBLE_EQ(d.currents.idd3n, 62);
  EXPECT_DOUBLE_EQ(d.currents.idd4r, 140);
  EXPECT_DOUBLE_EQ(d.currents.idd4w, 145);
  EXPECT_DOUBLE_EQ(d.currents.idd5b, 235);
  EXPECT_DOUBLE_EQ(d.currents.vdd, 1.5);
}

TEST(DramSpecDdr3, X8MatchesLegacyConstants) {
  const DramSpec d = dram::micron_2gb(DeviceWidth::kX8);
  EXPECT_EQ(d.rows, 32768u);
  EXPECT_EQ(d.columns, 1024u);
  EXPECT_EQ(d.page_bytes, 1024u);
  expect_ddr3_base_timing(d, 6, 30);
  EXPECT_DOUBLE_EQ(d.currents.idd0, 95);
  EXPECT_DOUBLE_EQ(d.currents.idd4r, 160);  // wider bursts than x4
  EXPECT_DOUBLE_EQ(d.currents.idd4w, 165);
  EXPECT_DOUBLE_EQ(d.currents.idd5b, 235);
}

TEST(DramSpecDdr3, X16MatchesLegacyConstants) {
  const DramSpec d = dram::micron_2gb(DeviceWidth::kX16);
  EXPECT_EQ(d.rows, 16384u);
  EXPECT_EQ(d.columns, 1024u);
  EXPECT_EQ(d.page_bytes, 2048u);
  expect_ddr3_base_timing(d, 8, 40);  // x16 has wider ACT windows
  EXPECT_DOUBLE_EQ(d.currents.idd0, 115);
  EXPECT_DOUBLE_EQ(d.currents.idd4r, 230);
  EXPECT_DOUBLE_EQ(d.currents.idd4w, 240);
  EXPECT_DOUBLE_EQ(d.currents.idd5b, 255);
}

TEST(DramSpecDdr3, DerivedEnergyMatchesLegacyValues) {
  // Spot-check the Micron TN-41-01 derivation against the values the DDR3
  // model has always produced (pinned numerically: these feed every EPI
  // figure, and the full-sweep CSVs are byte-compared in CI).
  const DramSpec x8 = dram::micron_2gb(DeviceWidth::kX8);
  EXPECT_DOUBLE_EQ(x8.energy.act_pj, 2782.5);
  EXPECT_DOUBLE_EQ(x8.energy.rd_burst_pj, 588.0);
  EXPECT_DOUBLE_EQ(x8.energy.wr_burst_pj, 618.0);
  EXPECT_DOUBLE_EQ(x8.energy.refresh_pj, 45600.0);
  const DramSpec x16 = dram::micron_2gb(DeviceWidth::kX16);
  EXPECT_DOUBLE_EQ(x16.energy.act_pj, 4252.5);
  EXPECT_DOUBLE_EQ(x16.energy.rd_burst_pj, 1008.0);
}

TEST(DramSpec, SpecForDispatchesToTheFactories) {
  for (DeviceWidth w :
       {DeviceWidth::kX4, DeviceWidth::kX8, DeviceWidth::kX16}) {
    EXPECT_EQ(dram::spec_for(Generation::kDdr3, w).generation,
              Generation::kDdr3);
    EXPECT_EQ(dram::spec_for(Generation::kDdr4, w).generation,
              Generation::kDdr4);
    EXPECT_EQ(dram::spec_for(Generation::kDdr5, w).generation,
              Generation::kDdr5);
    EXPECT_EQ(dram::spec_for(Generation::kDdr3, w).timing.tRCD,
              dram::micron_2gb(w).timing.tRCD);
  }
}

TEST(DramSpec, SchemeMemConfigDefaultsToDdr3) {
  const ecc::SchemeDesc lot = ecc::make_scheme(
      ecc::SchemeId::kLotEcc9, ecc::SystemScale::kQuadEquivalent);
  EXPECT_EQ(lot.mem_config().device.generation, Generation::kDdr3);
  EXPECT_EQ(lot.mem_config(Generation::kDdr5).device.generation,
            Generation::kDdr5);
  // The generation changes the device, never the rank/channel organization.
  EXPECT_EQ(lot.mem_config(Generation::kDdr5).chips_per_rank,
            lot.mem_config().chips_per_rank);
  EXPECT_EQ(lot.mem_config(Generation::kDdr5).channels,
            lot.mem_config().channels);
}

// ---------------------------------------------------------------------------
// Generation parsing and the ECCSIM_DRAM environment contract.

TEST(DramSpec, GenerationNamesRoundTrip) {
  for (Generation g :
       {Generation::kDdr3, Generation::kDdr4, Generation::kDdr5}) {
    const auto parsed = dram::parse_generation(dram::to_string(g));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, g);
  }
  EXPECT_FALSE(dram::parse_generation("ddr6").has_value());
  EXPECT_FALSE(dram::parse_generation("DDR3").has_value());
  EXPECT_FALSE(dram::parse_generation("").has_value());
}

TEST(DramSpec, GenerationFromEnvContract) {
  unsetenv("ECCSIM_DRAM");
  EXPECT_FALSE(dram::generation_from_env().has_value());
  setenv("ECCSIM_DRAM", "ddr4", 1);
  ASSERT_TRUE(dram::generation_from_env().has_value());
  EXPECT_EQ(*dram::generation_from_env(), Generation::kDdr4);
  setenv("ECCSIM_DRAM", "lpddr4", 1);
  EXPECT_THROW(dram::generation_from_env(), std::runtime_error);
  unsetenv("ECCSIM_DRAM");
}

// ---------------------------------------------------------------------------
// Geometry helpers: bank groups and refresh sets.

TEST(DramSpecGeometry, Ddr4BankGroups) {
  const DramSpec d = dram::ddr4_8gb(DeviceWidth::kX8);
  EXPECT_EQ(d.banks, 16u);
  EXPECT_EQ(d.bank_groups, 4u);
  EXPECT_EQ(d.sub_channels, 1u);
  EXPECT_EQ(d.refresh, dram::RefreshPolicy::kAllBank);
  EXPECT_EQ(d.refresh_sets(), 1u);
  // Banks stripe round-robin across groups.
  EXPECT_EQ(d.bank_group_of(0), 0u);
  EXPECT_EQ(d.bank_group_of(1), 1u);
  EXPECT_EQ(d.bank_group_of(4), 0u);
  EXPECT_EQ(d.bank_group_of(15), 3u);
  EXPECT_GT(d.timing.tCCD_L, d.timing.tCCD_S);
  EXPECT_GT(d.timing.tRRD_L, d.timing.tRRD_S);
}

TEST(DramSpecGeometry, Ddr5RefreshSets) {
  const DramSpec d = dram::ddr5_16gb(DeviceWidth::kX8);
  EXPECT_EQ(d.banks, 32u);
  EXPECT_EQ(d.bank_groups, 8u);
  EXPECT_EQ(d.sub_channels, 2u);
  EXPECT_EQ(d.refresh, dram::RefreshPolicy::kSameBank);
  EXPECT_EQ(d.refresh_sets(), 4u);  // banks per group
  // REFsb set = in-group bank index: banks 0..7 are each group's bank 0.
  EXPECT_EQ(d.refresh_set_of_bank(0), 0u);
  EXPECT_EQ(d.refresh_set_of_bank(7), 0u);
  EXPECT_EQ(d.refresh_set_of_bank(8), 1u);
  EXPECT_EQ(d.refresh_set_of_bank(31), 3u);
  // The rotation walks the sets round-robin.
  EXPECT_EQ(d.refresh_set_of_ref(0), 0u);
  EXPECT_EQ(d.refresh_set_of_ref(5), 1u);
  ASSERT_TRUE(d.on_die_ecc.enabled);
  EXPECT_EQ(d.on_die_ecc.data_bits, 128u);
  EXPECT_EQ(d.on_die_ecc.check_bits, 8u);
  EXPECT_DOUBLE_EQ(d.on_die_ecc.bit_fault_coverage, 0.9);
}

// ---------------------------------------------------------------------------
// Generation-specific protocol rules, against the extended checker.

using dram::CmdKind;
using dram::DramCommand;

dram::ChannelConfig config_for(const DramSpec& device) {
  dram::ChannelConfig cc;
  cc.device = device;
  cc.ranks = 2;
  cc.banks = device.banks;
  cc.chips_per_rank = 9;
  cc.row_policy = dram::RowPolicy::kOpenPage;
  return cc;
}

DramCommand act(std::uint64_t cycle, std::uint32_t rank, std::uint32_t bank,
                std::uint64_t row) {
  DramCommand c;
  c.kind = CmdKind::kActivate;
  c.cycle = cycle;
  c.rank = rank;
  c.bank = bank;
  c.row = row;
  return c;
}

DramCommand cas(const dram::ChannelConfig& cc, bool is_write,
                std::uint64_t cycle, std::uint32_t rank, std::uint32_t bank,
                std::uint64_t row) {
  const auto& t = cc.device.timing;
  DramCommand c;
  c.kind = is_write ? CmdKind::kWrite : CmdKind::kRead;
  c.cycle = cycle;
  c.rank = rank;
  c.bank = bank;
  c.row = row;
  c.data_start = cycle + (is_write ? t.tCWL : t.tCL);
  c.data_end = c.data_start + t.tBurst;
  return c;
}

DramCommand refsb(std::uint64_t cycle, std::uint32_t rank,
                  std::uint32_t bank_set) {
  DramCommand c;
  c.kind = CmdKind::kRefresh;
  c.cycle = cycle;
  c.rank = rank;
  c.bank = bank_set;
  return c;
}

check::ProtocolChecker audit(const dram::ChannelConfig& cc,
                             const std::vector<DramCommand>& stream) {
  check::ProtocolChecker checker(cc, "spec-test",
                                 check::ProtocolChecker::Mode::kCount);
  for (const DramCommand& cmd : stream) checker.on_command(cmd);
  return checker;
}

void expect_violation(const dram::ChannelConfig& cc,
                      const std::vector<DramCommand>& stream,
                      const std::string& rule) {
  const check::ProtocolChecker checker = audit(cc, stream);
  ASSERT_GE(checker.violation_count(), 1u)
      << "expected a " << rule << " violation";
  EXPECT_EQ(checker.violations()[0].rule, rule) << checker.report();
}

TEST(Ddr4ProtocolRules, SameGroupActViolatesTrrdL) {
  const auto cc = config_for(dram::ddr4_8gb(DeviceWidth::kX8));
  const auto& t = cc.device.timing;
  // Banks 0 and 4 share bank group 0; a gap of tRRD_S is legal across
  // groups but one cycle short of the same-group constraint.
  ASSERT_LT(t.tRRD_S, t.tRRD_L);
  expect_violation(cc, {act(1000, 0, 0, 1), act(1000 + t.tRRD_L - 1, 0, 4, 1)},
                   "tRRD_L");
}

TEST(Ddr4ProtocolRules, CrossGroupActEscapesTrrdL) {
  const auto cc = config_for(dram::ddr4_8gb(DeviceWidth::kX8));
  const auto& t = cc.device.timing;
  // Banks 0 and 1 are in different groups: tRRD_S is the only gate.
  EXPECT_EQ(audit(cc, {act(1000, 0, 0, 1), act(1000 + t.tRRD_S, 0, 1, 1)})
                .violation_count(),
            0u);
  expect_violation(cc, {act(1000, 0, 0, 1), act(1000 + t.tRRD_S - 1, 0, 1, 1)},
                   "tRRD_S");
}

TEST(Ddr4ProtocolRules, SameGroupCasViolatesTccdL) {
  const auto cc = config_for(dram::ddr4_8gb(DeviceWidth::kX8));
  const auto& t = cc.device.timing;
  // A CAS gap of tCCD_S clears the channel-wide and bus constraints
  // (tCCD_S == tBurst for DDR4) but is inside the same-group tCCD_L.
  ASSERT_LT(t.tCCD_S, t.tCCD_L);
  ASSERT_GE(t.tCCD_S, t.tBurst);
  const std::uint64_t c1 = 1000 + t.tRCD + t.tRRD_L;
  expect_violation(cc,
                   {act(1000, 0, 0, 5), act(1000 + t.tRRD_L, 0, 4, 5),
                    cas(cc, false, c1, 0, 0, 5),
                    cas(cc, false, c1 + t.tCCD_S, 0, 4, 5)},
                   "tCCD_L");
}

TEST(Ddr4ProtocolRules, CrossGroupCasAtTccdSIsLegal) {
  const auto cc = config_for(dram::ddr4_8gb(DeviceWidth::kX8));
  const auto& t = cc.device.timing;
  const std::uint64_t c1 = 1000 + t.tRCD + t.tRRD_S;
  EXPECT_EQ(audit(cc, {act(1000, 0, 0, 5), act(1000 + t.tRRD_S, 0, 1, 5),
                       cas(cc, false, c1, 0, 0, 5),
                       cas(cc, false, c1 + t.tCCD_S, 0, 1, 5)})
                .violation_count(),
            0u);
}

TEST(Ddr4ProtocolRules, ChannelWideCasGateEnforcesTccdS) {
  // With the stock DDR4 part tCCD_S == tBurst, so a violating pair always
  // trips the bus-occupancy rule first; widen tCCD_S to isolate the
  // channel-wide CAS gate and prove it is enforced independently.
  auto cc = config_for(dram::ddr4_8gb(DeviceWidth::kX8));
  auto& t = cc.device.timing;
  t.tCCD_S = t.tBurst + 2;
  const std::uint64_t c1 = 1000 + t.tRCD + t.tRRD_S;
  expect_violation(cc,
                   {act(1000, 0, 0, 5), act(1000 + t.tRRD_S, 0, 1, 5),
                    cas(cc, false, c1, 0, 0, 5),
                    cas(cc, false, c1 + t.tCCD_S - 1, 0, 1, 5)},
                   "tCCD_S");
}

TEST(Ddr5ProtocolRules, RefsbRotationInOrderIsClean) {
  const auto cc = config_for(dram::ddr5_16gb(DeviceWidth::kX8));
  const auto& t = cc.device.timing;
  std::vector<DramCommand> stream;
  for (std::uint64_t i = 0; i < 8; ++i) {
    stream.push_back(refsb((i + 1) * t.tREFI, 0,
                           static_cast<std::uint32_t>(i % 4)));
  }
  EXPECT_EQ(audit(cc, stream).violation_count(), 0u)
      << audit(cc, stream).report();
}

TEST(Ddr5ProtocolRules, RefsbOutOfOrderViolatesRotation) {
  const auto cc = config_for(dram::ddr5_16gb(DeviceWidth::kX8));
  const auto& t = cc.device.timing;
  // Second REFsb must target set 1; set 2 skips a set.
  expect_violation(
      cc, {refsb(t.tREFI, 0, 0), refsb(2 * t.tREFI, 0, 2)}, "REFsb-rotation");
}

TEST(Ddr5ProtocolRules, RefsbSetOutOfRangeRejected) {
  const auto cc = config_for(dram::ddr5_16gb(DeviceWidth::kX8));
  const auto& t = cc.device.timing;
  const unsigned sets = cc.device.refresh_sets();
  expect_violation(cc, {refsb(t.tREFI, 0, sets)}, "address-range");
}

TEST(Ddr5ProtocolRules, RefsbBlackoutIsPerBankSet) {
  const auto cc = config_for(dram::ddr5_16gb(DeviceWidth::kX8));
  const auto& t = cc.device.timing;
  // Banks 0..7 are set 0 (blacked out by the first REFsb); bank 8 is set 1
  // and may activate inside the set-0 blackout.
  expect_violation(
      cc, {refsb(t.tREFI, 0, 0), act(t.tREFI + t.tRFC - 1, 0, 3, 1)}, "tRFC");
  EXPECT_EQ(
      audit(cc, {refsb(t.tREFI, 0, 0), act(t.tREFI + 1, 0, 8, 1)})
          .violation_count(),
      0u);
}

// ---------------------------------------------------------------------------
// On-die SECDED pre-correction filter (DDR5).

TEST(OnDieEccFilter, AttenuatesOnlyTheBitRate) {
  const auto base = faults::ddr3_vendor_average();
  const DramSpec d = dram::ddr5_16gb(DeviceWidth::kX8);
  const auto filtered =
      faults::on_die_ecc_filter(base, d.on_die_ecc.bit_fault_coverage);
  EXPECT_DOUBLE_EQ(filtered[faults::FaultType::kBit],
                   base[faults::FaultType::kBit] * 0.1);
  EXPECT_DOUBLE_EQ(filtered[faults::FaultType::kWord],
                   base[faults::FaultType::kWord]);
  EXPECT_DOUBLE_EQ(filtered[faults::FaultType::kColumn],
                   base[faults::FaultType::kColumn]);
  EXPECT_DOUBLE_EQ(filtered[faults::FaultType::kMultiRank],
                   base[faults::FaultType::kMultiRank]);
  // DDR3/DDR4 have no on-die ECC: coverage 0 is the identity.
  const auto untouched = faults::on_die_ecc_filter(base, 0.0);
  EXPECT_DOUBLE_EQ(untouched.total(), base.total());
}

// ---------------------------------------------------------------------------
// Sub-channel planes in the parity layout (DDR5): groups must never pair
// two sub-channels of the same DIMM.

dram::MemGeometry ddr5_geom() {
  dram::MemGeometry g;
  g.channels = 8;  // 4 physical channels x 2 sub-channels
  g.sub_channels = 2;
  g.ranks_per_channel = 2;
  g.banks_per_rank = 8;
  g.rows_per_bank = 16;
  g.line_bytes = 64;
  return g;
}

TEST(ParityLayoutPlanes, GroupsSpreadOverPhysicalChannels) {
  const auto geom = ddr5_geom();
  eccparity::ParityLayout layout(geom, 16);
  EXPECT_EQ(layout.channels(), 4u);  // N = physical channels, not effective
  EXPECT_EQ(layout.xor_coverage(), 4u * 3u);
  std::set<std::uint64_t> seen;
  for (std::uint64_t line = 0; line < geom.total_data_lines(); line += 11) {
    const eccparity::GroupId g = layout.group_of(line);
    if (!seen.insert(g.key()).second) continue;
    std::set<std::uint32_t> channels;
    for (const eccparity::Member& m : layout.members(g)) {
      EXPECT_LT(m.channel, geom.fd_channels());
      EXPECT_TRUE(channels.insert(m.channel).second)
          << "two members share physical channel " << m.channel;
    }
    const std::uint32_t pc = layout.parity_channel(g);
    EXPECT_LT(pc, geom.fd_channels());
    EXPECT_EQ(channels.count(pc), 0u)
        << "parity shares a physical channel with a member";
  }
}

TEST(ParityLayoutPlanes, ParityAddressStaysInTheGroupsPlane) {
  const auto geom = ddr5_geom();
  eccparity::ParityLayout layout(geom, 16);
  for (std::uint64_t line = 0; line < geom.total_data_lines(); line += 7) {
    const eccparity::GroupId g = layout.group_of(line);
    const dram::DramAddress a = layout.parity_line_address(g);
    // Effective channel = plane * fd + physical: the parity line lives in
    // the same sub-channel plane as every member.
    EXPECT_EQ(a.channel / geom.fd_channels(), g.plane);
    EXPECT_EQ(a.channel % geom.fd_channels(), layout.parity_channel(g));
  }
}

TEST(ParityLayoutPlanes, XorKeyRoundTripsToTheRightPlane) {
  const auto geom = ddr5_geom();
  eccparity::ParityLayout layout(geom, 16);
  for (std::uint64_t line = 0; line < geom.total_data_lines(); line += 13) {
    const eccparity::GroupId g = layout.group_of(line);
    if (g.leftover) continue;  // keys name primary groups
    const std::uint64_t key = layout.xor_cacheline_key(line);
    const eccparity::GroupId back = layout.group_for_xor_key(key);
    EXPECT_FALSE(back.leftover);
    EXPECT_EQ(back.plane, g.plane);
    EXPECT_EQ(back.index, g.index);
    EXPECT_EQ(back.slot / 4, g.slot / 4);  // one XOR line per 4-slot bucket
  }
}

TEST(ParityLayoutPlanes, SinglePlaneIsTheDdr3Construction) {
  // With sub_channels == 1 the plane machinery must be invisible.
  auto geom = ddr5_geom();
  geom.sub_channels = 1;
  geom.channels = 4;
  eccparity::ParityLayout layout(geom, 16);
  EXPECT_EQ(layout.channels(), 4u);
  for (std::uint64_t line = 0; line < geom.total_data_lines(); line += 17) {
    EXPECT_EQ(layout.group_of(line).plane, 0u);
  }
}

}  // namespace
}  // namespace eccsim
