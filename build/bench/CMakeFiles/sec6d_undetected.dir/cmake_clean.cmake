file(REMOVE_RECURSE
  "CMakeFiles/sec6d_undetected.dir/sec6d_undetected.cpp.o"
  "CMakeFiles/sec6d_undetected.dir/sec6d_undetected.cpp.o.d"
  "sec6d_undetected"
  "sec6d_undetected.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec6d_undetected.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
