// Property tests for the DRAM simulator, parameterized over device width,
// rank count, and row policy: service-time lower bounds, bus-occupancy
// sanity, energy accounting closure, determinism, and open-page behavior.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "common/rng.hpp"
#include "dram/channel.hpp"

namespace eccsim::dram {
namespace {

using Params = std::tuple<DeviceWidth, std::uint32_t, RowPolicy>;

class ChannelPropertyTest : public ::testing::TestWithParam<Params> {
 protected:
  ChannelConfig config() const {
    ChannelConfig cc;
    cc.device = micron_2gb(std::get<0>(GetParam()));
    cc.ranks = std::get<1>(GetParam());
    cc.chips_per_rank = 9;
    cc.row_policy = std::get<2>(GetParam());
    return cc;
  }

  /// Random request stream over the channel's ranks/banks/rows.
  std::vector<MemRequest> random_stream(unsigned count, std::uint64_t seed) {
    Rng rng(seed);
    const auto cc = config();
    std::vector<MemRequest> reqs;
    reqs.reserve(count);
    for (unsigned i = 0; i < count; ++i) {
      MemRequest r;
      r.id = i;
      r.addr.rank = static_cast<std::uint32_t>(rng.next_below(cc.ranks));
      r.addr.bank = static_cast<std::uint32_t>(rng.next_below(cc.banks));
      r.addr.row = rng.next_below(64);
      r.addr.col = static_cast<std::uint32_t>(rng.next_below(64));
      r.is_write = rng.bernoulli(0.3);
      reqs.push_back(r);
    }
    return reqs;
  }

  /// Feeds requests (respecting queue backpressure) and drains.
  std::vector<MemCompletion> run(Channel& ch,
                                 const std::vector<MemRequest>& reqs) {
    std::vector<MemCompletion> out;
    std::size_t next = 0;
    std::uint64_t now = 0;
    while ((next < reqs.size() || ch.pending() || ch.in_flight()) &&
           now < 10'000'000) {
      while (next < reqs.size() && ch.enqueue(reqs[next])) ++next;
      ch.tick(++now, out);
    }
    ch.finalize(now);
    return out;
  }
};

TEST_P(ChannelPropertyTest, AllRequestsComplete) {
  Channel ch(config());
  const auto reqs = random_stream(400, 11);
  const auto done = run(ch, reqs);
  EXPECT_EQ(done.size(), reqs.size());
}

TEST_P(ChannelPropertyTest, ServiceRateBoundedByBus) {
  // The data bus serializes bursts: total span >= count * tBurst.
  Channel ch(config());
  const auto reqs = random_stream(400, 12);
  const auto done = run(ch, reqs);
  std::uint64_t last = 0;
  for (const auto& c : done) last = std::max(last, c.finish_cycle);
  EXPECT_GE(last, 400ULL * config().device.timing.tBurst);
}

TEST_P(ChannelPropertyTest, EnergyComponentsNonNegativeAndClosed) {
  Channel ch(config());
  run(ch, random_stream(300, 13));
  const EnergyBreakdown& e = ch.stats().energy;
  EXPECT_GE(e.activate_pj, 0.0);
  EXPECT_GE(e.read_pj, 0.0);
  EXPECT_GE(e.write_pj, 0.0);
  EXPECT_GE(e.refresh_pj, 0.0);
  EXPECT_GE(e.background_pj, 0.0);
  EXPECT_NEAR(e.total_pj(),
              e.activate_pj + e.read_pj + e.write_pj + e.refresh_pj +
                  e.background_pj,
              1e-6);
}

TEST_P(ChannelPropertyTest, DeterministicReplay) {
  Channel a(config()), b(config());
  const auto reqs = random_stream(200, 14);
  const auto da = run(a, reqs);
  const auto db = run(b, reqs);
  ASSERT_EQ(da.size(), db.size());
  for (std::size_t i = 0; i < da.size(); ++i) {
    EXPECT_EQ(da[i].id, db[i].id);
    EXPECT_EQ(da[i].finish_cycle, db[i].finish_cycle);
  }
  EXPECT_DOUBLE_EQ(a.stats().energy.total_pj(), b.stats().energy.total_pj());
}

TEST_P(ChannelPropertyTest, ReadCountsMatchStream) {
  Channel ch(config());
  const auto reqs = random_stream(250, 15);
  unsigned reads = 0;
  for (const auto& r : reqs) reads += !r.is_write;
  run(ch, reqs);
  EXPECT_EQ(ch.stats().reads, reads);
  EXPECT_EQ(ch.stats().writes, reqs.size() - reads);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ChannelPropertyTest,
    ::testing::Combine(
        ::testing::Values(DeviceWidth::kX4, DeviceWidth::kX8,
                          DeviceWidth::kX16),
        ::testing::Values(1u, 2u, 4u),
        ::testing::Values(RowPolicy::kClosePage, RowPolicy::kOpenPage)),
    [](const ::testing::TestParamInfo<Params>& info) {
      return to_string(std::get<0>(info.param)) + "_r" +
             std::to_string(std::get<1>(info.param)) + "_" +
             (std::get<2>(info.param) == RowPolicy::kClosePage ? "close"
                                                               : "open");
    });

// ---------------------------------------------------------------------------
// Open-page specific behavior.

TEST(OpenPage, RowHitsSkipActivation) {
  ChannelConfig cc;
  cc.device = micron_2gb(DeviceWidth::kX8);
  cc.ranks = 1;
  cc.chips_per_rank = 9;
  cc.row_policy = RowPolicy::kOpenPage;
  Channel ch(cc);
  // 16 reads to the same row, different columns.
  for (unsigned i = 0; i < 16; ++i) {
    MemRequest r;
    r.id = i;
    r.addr = DramAddress{0, 0, 0, 5, i};
    ASSERT_TRUE(ch.enqueue(r));
  }
  std::vector<MemCompletion> out;
  std::uint64_t now = 0;
  while ((ch.pending() || ch.in_flight()) && now < 100000) ch.tick(++now, out);
  EXPECT_EQ(out.size(), 16u);
  EXPECT_GE(ch.row_hits(), 15u);  // everything after the first is a hit
  // Activate energy: exactly one ACT's worth.
  const double one_act = cc.device.energy.act_pj * cc.chips_per_rank;
  EXPECT_NEAR(ch.stats().energy.activate_pj, one_act, one_act * 0.01);
}

TEST(OpenPage, RowHitsAreFasterThanClosePage) {
  auto run_policy = [](RowPolicy policy) {
    ChannelConfig cc;
    cc.device = micron_2gb(DeviceWidth::kX8);
    cc.ranks = 1;
    cc.chips_per_rank = 9;
    cc.row_policy = policy;
    Channel ch(cc);
    for (unsigned i = 0; i < 32; ++i) {
      MemRequest r;
      r.id = i;
      r.addr = DramAddress{0, 0, 0, 9, i};
      ch.enqueue(r);
    }
    std::vector<MemCompletion> out;
    std::uint64_t now = 0;
    while ((ch.pending() || ch.in_flight()) && now < 100000) {
      ch.tick(++now, out);
    }
    std::uint64_t last = 0;
    for (const auto& c : out) last = std::max(last, c.finish_cycle);
    return last;
  };
  EXPECT_LT(run_policy(RowPolicy::kOpenPage),
            run_policy(RowPolicy::kClosePage));
}

TEST(OpenPage, ConflictPrechargesAndReopens) {
  ChannelConfig cc;
  cc.device = micron_2gb(DeviceWidth::kX8);
  cc.ranks = 1;
  cc.chips_per_rank = 9;
  cc.row_policy = RowPolicy::kOpenPage;
  Channel ch(cc);
  MemRequest a, b;
  a.id = 1;
  a.addr = DramAddress{0, 0, 0, 1, 0};
  b.id = 2;
  b.addr = DramAddress{0, 0, 0, 2, 0};  // same bank, different row
  ASSERT_TRUE(ch.enqueue(a));
  ASSERT_TRUE(ch.enqueue(b));
  std::vector<MemCompletion> out;
  std::uint64_t now = 0;
  while ((ch.pending() || ch.in_flight()) && now < 100000) ch.tick(++now, out);
  ASSERT_EQ(out.size(), 2u);
  const auto& t = cc.device.timing;
  // The conflicting access pays tRAS + tRP + tRCD on top of the first.
  const std::uint64_t gap = out[1].finish_cycle - out[0].finish_cycle;
  EXPECT_GE(gap, static_cast<std::uint64_t>(t.tRP) + t.tRCD);
  EXPECT_EQ(ch.row_hits(), 0u);
}

TEST(OpenPage, FcfsSchedulerStillCorrect) {
  ChannelConfig cc;
  cc.device = micron_2gb(DeviceWidth::kX8);
  cc.ranks = 2;
  cc.chips_per_rank = 9;
  cc.scheduler = SchedulerPolicy::kFcfs;
  Channel ch(cc);
  for (unsigned i = 0; i < 64; ++i) {
    MemRequest r;
    r.id = i;
    r.addr = DramAddress{0, i % 2, (i / 2) % 8, i, 0};
    ASSERT_TRUE(ch.enqueue(r));
  }
  std::vector<MemCompletion> out;
  std::uint64_t now = 0;
  while ((ch.pending() || ch.in_flight()) && now < 1000000) {
    ch.tick(++now, out);
  }
  EXPECT_EQ(out.size(), 64u);
}

}  // namespace
}  // namespace eccsim::dram
