file(REMOVE_RECURSE
  "libecc_sim.a"
)
