// The observability layer: atomic status-file publishing (a reader must
// never observe a torn document), heartbeat sequencing/throttling, run
// manifest round-trips and the MC engine's resumed flag, the OpenMetrics
// exporter's output format, and perf-history append/compare semantics --
// including the >15% regression gate the CI perf job relies on.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "faults/mc_engine.hpp"
#include "obs/heartbeat.hpp"
#include "obs/manifest.hpp"
#include "obs/openmetrics.hpp"
#include "obs/perf_history.hpp"
#include "obs/run_info.hpp"
#include "runner/json.hpp"
#include "stats/stats.hpp"

namespace eccsim::obs {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// ---------------------------------------------------------------------------
// atomic_write_file

TEST(AtomicWriteFile, WritesContentAndCreatesParents) {
  const std::string dir = ::testing::TempDir() + "/obs_aw_nested/deeper";
  const std::string path = dir + "/file.json";
  ASSERT_TRUE(atomic_write_file(path, "{\"a\": 1}\n"));
  EXPECT_EQ(slurp(path), "{\"a\": 1}\n");
  ASSERT_TRUE(atomic_write_file(path, "{\"b\": 2}\n"));
  EXPECT_EQ(slurp(path), "{\"b\": 2}\n");
  std::remove(path.c_str());
}

TEST(AtomicWriteFile, LeavesNoTemporaryBehind) {
  const std::string path = ::testing::TempDir() + "/obs_aw_clean.json";
  ASSERT_TRUE(atomic_write_file(path, "x\n"));
  const std::string tmp = path + ".tmp." + std::to_string(getpid());
  EXPECT_FALSE(std::ifstream(tmp).good());
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Heartbeat

HeartbeatConfig status_config(const std::string& path,
                              std::uint64_t interval_ms = 0) {
  HeartbeatConfig cfg;
  cfg.status_path = path;
  cfg.min_interval_ms = interval_ms;
  return cfg;
}

TEST(Heartbeat, DisabledByDefaultAndSkipsTicks) {
  Heartbeat hb;
  EXPECT_FALSE(hb.enabled());
  hb.tick({"phase", 1, 10});
  EXPECT_EQ(hb.snapshots_written(), 0u);
}

TEST(Heartbeat, PublishesParsableSnapshotWithSchema) {
  const std::string path = ::testing::TempDir() + "/obs_hb_basic.json";
  Heartbeat hb(status_config(path));
  hb.set_tool("obs_test");
  Heartbeat::Tick t;
  t.phase = "sweep";
  t.done = 3;
  t.total = 10;
  t.counters = {{"cells_done", 3.0}};
  hb.tick(t);
  const runner::Json doc = runner::Json::parse(slurp(path));
  EXPECT_EQ(doc.at("schema").as_string(), "eccsim.heartbeat/1");
  EXPECT_EQ(doc.at("tool").as_string(), "obs_test");
  EXPECT_EQ(doc.at("phase").as_string(), "sweep");
  EXPECT_EQ(doc.at("done").as_number(), 3.0);
  EXPECT_EQ(doc.at("total").as_number(), 10.0);
  EXPECT_EQ(doc.at("counters").at("cells_done").as_number(), 3.0);
  EXPECT_FALSE(doc.at("final").as_bool());
  EXPECT_TRUE(doc.at("rel_ci").is_null());
  std::remove(path.c_str());
}

TEST(Heartbeat, FinalTickMarksFinalAndSeqIncreases) {
  const std::string path = ::testing::TempDir() + "/obs_hb_final.json";
  Heartbeat hb(status_config(path));
  hb.tick({"run", 1, 4});
  hb.tick({"run", 2, 4});
  hb.tick({"run", 4, 4});
  EXPECT_EQ(hb.snapshots_written(), 3u);
  const runner::Json doc = runner::Json::parse(slurp(path));
  EXPECT_TRUE(doc.at("final").as_bool());
  EXPECT_EQ(doc.at("seq").as_number(), 3.0);
  std::remove(path.c_str());
}

TEST(Heartbeat, IntervalThrottleDropsIntermediateTicks) {
  const std::string path = ::testing::TempDir() + "/obs_hb_throttle.json";
  // An hour-long interval: only the first tick and the forced/final ones
  // may publish.
  Heartbeat hb(status_config(path, 3'600'000));
  for (std::uint64_t i = 1; i <= 50; ++i) hb.tick({"run", i, 100});
  EXPECT_EQ(hb.snapshots_written(), 1u);
  Heartbeat::Tick forced;
  forced.phase = "run";
  forced.done = 60;
  forced.total = 100;
  forced.force = true;
  hb.tick(forced);
  hb.tick({"run", 100, 100});  // final: bypasses the throttle too
  EXPECT_EQ(hb.snapshots_written(), 3u);
  std::remove(path.c_str());
}

TEST(Heartbeat, RelCiSeriesResetsOnPhaseChange) {
  const std::string path = ::testing::TempDir() + "/obs_hb_phase.json";
  Heartbeat hb(status_config(path));
  Heartbeat::Tick t;
  t.phase = "mc:a";
  t.total = 10;
  for (std::uint64_t i = 1; i <= 3; ++i) {
    t.done = i;
    t.rel_ci = 1.0 / static_cast<double>(i);
    hb.tick(t);
  }
  runner::Json doc = runner::Json::parse(slurp(path));
  EXPECT_EQ(doc.at("rel_ci_series").items().size(), 3u);
  EXPECT_DOUBLE_EQ(doc.at("rel_ci").as_number(), 1.0 / 3.0);

  t.phase = "mc:b";
  t.done = 1;
  t.rel_ci = 0.5;
  hb.tick(t);
  doc = runner::Json::parse(slurp(path));
  ASSERT_EQ(doc.at("rel_ci_series").items().size(), 1u);
  EXPECT_DOUBLE_EQ(doc.at("rel_ci_series").items()[0].as_number(), 0.5);
  std::remove(path.c_str());
}

// The atomic-rename contract: a concurrent reader either sees the
// previous complete document or the new one -- never a torn mix.  A
// writer thread republishes as fast as it can while readers parse every
// successful read; any torn write would fail Json::parse.
TEST(Heartbeat, ConcurrentReaderNeverSeesTornSnapshot) {
  const std::string path = ::testing::TempDir() + "/obs_hb_torn.json";
  Heartbeat hb(status_config(path));
  hb.tick({"warmup", 1, 1000});  // file exists before readers start

  std::atomic<bool> stop{false};
  std::atomic<int> parsed{0};
  std::atomic<int> failures{0};
  std::thread reader([&] {
    while (!stop.load()) {
      const std::string text = slurp(path);
      if (text.empty()) continue;  // between rename and open: fine
      try {
        const runner::Json doc = runner::Json::parse(text);
        EXPECT_EQ(doc.at("schema").as_string(), "eccsim.heartbeat/1");
        parsed.fetch_add(1);
      } catch (const std::exception&) {
        failures.fetch_add(1);
      }
    }
  });
  // Vary the payload size so a torn write would be detectable (short new
  // content over a longer old file cannot happen with rename, but would
  // with in-place writes).
  for (std::uint64_t i = 1; i <= 400; ++i) {
    Heartbeat::Tick t;
    t.phase = i % 2 == 0 ? "even-phase-with-a-much-longer-name" : "odd";
    t.done = i;
    t.total = 1000;
    for (std::uint64_t c = 0; c < i % 7; ++c) {
      t.counters.emplace_back("counter" + std::to_string(c),
                              static_cast<double>(i));
    }
    hb.tick(t);
  }
  stop.store(true);
  reader.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(parsed.load(), 0);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Manifest

TEST(Manifest, JsonRoundTripPreservesEveryField) {
  Manifest m;
  m.tool = "fig10_epi_quad";
  m.args = {"--smoke", "--status", "s.json"};
  m.git_sha = "0123456789abcdef0123456789abcdef01234567";
  m.dram = "ddr4";
  m.seed_regime = "paper_sweep_seed(root=1)";
  m.threads = 8;
  m.host = "ci-runner-3";
  m.host_cpus = 16;
  m.started_utc = "2026-08-09T00:00:00Z";
  m.finished_utc = "2026-08-09T00:01:40Z";
  m.wall_seconds = 100.5;
  m.peak_rss_bytes = 123456789;
  m.status = "completed";
  m.exit_code = 0;
  m.resumed = true;
  m.extra = {{"fidelity", "smoke"}};

  const runner::Json doc = to_json(m);
  EXPECT_EQ(doc.at("schema").as_string(), "eccsim.manifest/1");
  const Manifest r = manifest_from_json(runner::Json::parse(doc.dump(2)));
  EXPECT_EQ(r.tool, m.tool);
  EXPECT_EQ(r.args, m.args);
  EXPECT_EQ(r.git_sha, m.git_sha);
  EXPECT_EQ(r.dram, m.dram);
  EXPECT_EQ(r.seed_regime, m.seed_regime);
  EXPECT_EQ(r.threads, m.threads);
  EXPECT_EQ(r.host, m.host);
  EXPECT_EQ(r.host_cpus, m.host_cpus);
  EXPECT_EQ(r.started_utc, m.started_utc);
  EXPECT_EQ(r.finished_utc, m.finished_utc);
  EXPECT_DOUBLE_EQ(r.wall_seconds, m.wall_seconds);
  EXPECT_EQ(r.peak_rss_bytes, m.peak_rss_bytes);
  EXPECT_EQ(r.status, m.status);
  EXPECT_EQ(r.exit_code, m.exit_code);
  EXPECT_EQ(r.resumed, m.resumed);
  EXPECT_EQ(r.extra, m.extra);
}

TEST(Manifest, RunningManifestSerializesNullFinishTime) {
  Manifest m;
  m.tool = "t";
  const runner::Json doc = to_json(m);
  EXPECT_TRUE(doc.at("finished_utc").is_null());
  EXPECT_EQ(doc.at("status").as_string(), "running");
  const Manifest r = manifest_from_json(doc);
  EXPECT_TRUE(r.finished_utc.empty());
}

TEST(Manifest, NoteExitCodeMarksFailure) {
  manifest() = Manifest{};
  note_exit_code(3);
  EXPECT_EQ(manifest().status, "failed");
  EXPECT_EQ(manifest().exit_code, 3);
  manifest() = Manifest{};
  note_exit_code(0);  // success does not flip the status
  EXPECT_EQ(manifest().status, "running");
  manifest() = Manifest{};
}

// A killed-and-rerun Monte Carlo must surface `resumed: true` in the
// global manifest: the first run records chunks into a checkpoint, the
// second restores them and calls note_resumed().
TEST(Manifest, McCheckpointResumeSetsResumedFlag) {
  const std::string ckpt = ::testing::TempDir() + "/obs_resume.mcchk";
  std::remove(ckpt.c_str());
  manifest() = Manifest{};

  faults::McOptions opts;
  opts.threads = 1;
  opts.chunk_size = 4;
  opts.checkpoint_path = ckpt;
  const auto fn = [](unsigned index, Rng&, double* fields) {
    fields[0] = static_cast<double>(index);
  };
  double sum1 = 0.0, sum2 = 0.0;

  const auto info1 = faults::mc_run(
      16, 42, 1, "obs_resume", opts, fn,
      [&](unsigned, const double* f) { sum1 += f[0]; });
  EXPECT_EQ(info1.chunks_loaded, 0u);
  EXPECT_FALSE(manifest().resumed) << "fresh run must not mark resumed";

  const auto info2 = faults::mc_run(
      16, 42, 1, "obs_resume", opts, fn,
      [&](unsigned, const double* f) { sum2 += f[0]; });
  EXPECT_EQ(info2.chunks_loaded, info2.chunks_merged);
  EXPECT_DOUBLE_EQ(sum1, sum2);
  EXPECT_TRUE(manifest().resumed);

  manifest() = Manifest{};
  std::remove(ckpt.c_str());
}

// ---------------------------------------------------------------------------
// OpenMetrics exporter

TEST(OpenMetrics, RendersCountersDistributionsAndHistograms) {
  stats::Registry reg;
  reg.counter("dram.ch0.acts")->inc(42);
  reg.accum("energy.total_pj")->add(1.5);
  reg.distribution("mc.chunk_seconds")->add(2.0);
  reg.distribution("mc.chunk_seconds")->add(4.0);
  stats::Histogram* h = reg.histogram("lat.read", 0.0, 100.0, 4);
  h->add(10.0);
  h->add(30.0);
  h->add(999.0);  // clamps into the top bin

  const std::string text = to_openmetrics(reg, {{"bench", "obs_test"}});
  EXPECT_NE(text.find("# TYPE eccsim_dram_ch0_acts counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("eccsim_dram_ch0_acts_total{bench=\"obs_test\"} 42\n"),
            std::string::npos);
  EXPECT_NE(text.find("eccsim_energy_total_pj_total{bench=\"obs_test\"} "
                      "1.5\n"),
            std::string::npos);
  EXPECT_NE(text.find("eccsim_mc_chunk_seconds_count{bench=\"obs_test\"} "
                      "2\n"),
            std::string::npos);
  EXPECT_NE(text.find("eccsim_mc_chunk_seconds_sum{bench=\"obs_test\"} 6\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE eccsim_lat_read histogram\n"),
            std::string::npos);
  EXPECT_NE(
      text.find("eccsim_lat_read_bucket{bench=\"obs_test\",le=\"25\"} 1\n"),
      std::string::npos);
  // The top bin clamps overflow, so its upper bound is +Inf and the
  // cumulative count includes the out-of-range sample.
  EXPECT_NE(
      text.find("eccsim_lat_read_bucket{bench=\"obs_test\",le=\"+Inf\"} 3\n"),
      std::string::npos);
  EXPECT_NE(text.find("eccsim_lat_read_count{bench=\"obs_test\"} 3\n"),
            std::string::npos);
  // Mandatory terminator, exactly at the end.
  ASSERT_GE(text.size(), 6u);
  EXPECT_EQ(text.substr(text.size() - 6), "# EOF\n");
}

TEST(OpenMetrics, EscapesLabelValuesAndWorksWithoutLabels) {
  stats::Registry reg;
  reg.counter("c")->inc();
  const std::string text =
      to_openmetrics(reg, {{"path", "a\"b\\c\nd"}});
  EXPECT_NE(text.find("path=\"a\\\"b\\\\c\\nd\""), std::string::npos);
  const std::string bare = to_openmetrics(reg);
  EXPECT_NE(bare.find("eccsim_c_total 1\n"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Perf history

perf::Record make_record(const std::string& sha, double seconds,
                         const std::string& host = "hostA",
                         bool smoke = true, unsigned threads = 8) {
  perf::Record r;
  r.git_sha = sha;
  r.timestamp_utc = "2026-08-09T00:00:00Z";
  r.host = host;
  r.threads = threads;
  r.smoke = smoke;
  r.metrics = {{"wall_seconds", seconds}};
  return r;
}

TEST(PerfHistory, AppendLoadRoundTripAndTrim) {
  const std::string path = ::testing::TempDir() + "/obs_hist.json";
  std::remove(path.c_str());
  EXPECT_TRUE(perf::load_history(path, "demo").records.empty());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(perf::append_record(
        path, "demo", make_record("sha" + std::to_string(i), 1.0 + i),
        /*max_records=*/3));
  }
  const perf::History h = perf::load_history(path, "demo");
  EXPECT_EQ(h.bench, "demo");
  ASSERT_EQ(h.records.size(), 3u);  // trimmed to the newest 3
  EXPECT_EQ(h.records.front().git_sha, "sha2");
  EXPECT_EQ(h.records.back().git_sha, "sha4");
  EXPECT_DOUBLE_EQ(h.records.back().metrics[0].second, 5.0);
  EXPECT_EQ(h.records.back().threads, 8u);
  EXPECT_TRUE(h.records.back().smoke);
  std::remove(path.c_str());
}

TEST(PerfHistory, CompareFlagsRegressionOverThreshold) {
  perf::History h;
  h.bench = "demo";
  h.records = {make_record("a", 1.00), make_record("b", 1.02),
               make_record("c", 0.98), make_record("d", 1.20)};
  const auto result = perf::compare(h, 0.15, 10);
  ASSERT_TRUE(result.comparable);
  EXPECT_TRUE(result.regressed);
  ASSERT_EQ(result.metrics.size(), 1u);
  EXPECT_DOUBLE_EQ(result.metrics[0].baseline, 1.00);  // median of 3
  EXPECT_DOUBLE_EQ(result.metrics[0].current, 1.20);
  EXPECT_TRUE(result.metrics[0].regressed);
}

TEST(PerfHistory, CompareAcceptsSlowdownUnderThreshold) {
  perf::History h;
  h.bench = "demo";
  h.records = {make_record("a", 1.00), make_record("b", 1.00),
               make_record("c", 1.10)};
  const auto result = perf::compare(h, 0.15, 10);
  ASSERT_TRUE(result.comparable);
  EXPECT_FALSE(result.regressed);
}

TEST(PerfHistory, CompareIgnoresRecordsFromOtherContexts) {
  perf::History h;
  h.bench = "demo";
  // Priors from a different host / thread count / fidelity: none match.
  h.records = {make_record("a", 1.00, "hostB"),
               make_record("b", 1.00, "hostA", false),
               make_record("c", 1.00, "hostA", true, 4),
               make_record("d", 9.99)};
  const auto result = perf::compare(h, 0.15, 10);
  EXPECT_FALSE(result.comparable);
  EXPECT_FALSE(result.regressed);
}

TEST(PerfHistory, CompareNeedsMinSamplesBeforeGating) {
  perf::History h;
  h.bench = "demo";
  h.records = {make_record("a", 1.00), make_record("b", 5.00)};
  // One prior sample: reported, but not gated (noise guard).
  const auto result = perf::compare(h, 0.15, 10, /*min_samples=*/2);
  ASSERT_TRUE(result.comparable);
  EXPECT_FALSE(result.regressed);
  ASSERT_EQ(result.metrics.size(), 1u);
  EXPECT_EQ(result.metrics[0].samples, 1u);
  // With the guard lowered it gates.
  EXPECT_TRUE(perf::compare(h, 0.15, 10, 1).regressed);
}

TEST(PerfHistory, CompareSkipsMetricsAbsentFromBaseline) {
  perf::History h;
  h.bench = "demo";
  auto old1 = make_record("a", 1.0);
  auto old2 = make_record("b", 1.0);
  auto cur = make_record("c", 1.0);
  cur.metrics.emplace_back("new_metric", 99.0);
  h.records = {old1, old2, cur};
  const auto result = perf::compare(h, 0.15, 10);
  ASSERT_TRUE(result.comparable);
  EXPECT_FALSE(result.regressed);
  ASSERT_EQ(result.metrics.size(), 1u);  // new_metric skipped
  EXPECT_EQ(result.metrics[0].name, "wall_seconds");
}

TEST(PerfHistory, CompareWindowLimitsBaseline) {
  perf::History h;
  h.bench = "demo";
  // Ancient fast records would dominate an unwindowed median.
  for (int i = 0; i < 10; ++i) {
    h.records.push_back(make_record("old", 0.1));
  }
  for (int i = 0; i < 4; ++i) {
    h.records.push_back(make_record("recent", 1.0));
  }
  h.records.push_back(make_record("cur", 1.05));
  const auto result = perf::compare(h, 0.15, /*window=*/4);
  ASSERT_TRUE(result.comparable);
  EXPECT_EQ(result.metrics[0].samples, 4u);
  EXPECT_DOUBLE_EQ(result.metrics[0].baseline, 1.0);
  EXPECT_FALSE(result.regressed);
}

// ---------------------------------------------------------------------------
// run_info

TEST(RunInfo, BasicSanity) {
  EXPECT_GE(cpu_count(), 1u);
  EXPECT_FALSE(hostname().empty());
  const std::string ts = utc_timestamp();
  EXPECT_EQ(ts.size(), 20u);  // 2026-08-09T01:02:03Z
  EXPECT_EQ(ts.back(), 'Z');
  const double t0 = monotonic_seconds();
  const double t1 = monotonic_seconds();
  EXPECT_GE(t1, t0);
  // Running from the build tree inside the repo: a real SHA, not
  // "unknown" (40 hex chars).
  const std::string sha = git_head_sha();
  EXPECT_FALSE(sha.empty());
}

}  // namespace
}  // namespace eccsim::obs
