#include "tracefile/codec.hpp"

#include "tracefile/varint.hpp"

namespace eccsim::tracefile {

namespace {

/// Wrapping delta between consecutive u64 values: computed modulo 2^64 so
/// the full address space round-trips through zigzag.
std::int64_t wrapping_delta(std::uint64_t cur, std::uint64_t prev) {
  return static_cast<std::int64_t>(cur - prev);
}

}  // namespace

std::uint64_t pack_address(const dram::DramAddress& addr) {
  if (addr.col >= (1u << 16) || addr.channel >= (1u << 8) ||
      addr.rank >= (1u << 8) || addr.bank >= (1u << 8) ||
      addr.row >= (1ULL << 24)) {
    throw TraceError("ecctrace: DRAM address field exceeds codec width");
  }
  return (addr.row << 40) | (static_cast<std::uint64_t>(addr.bank) << 32) |
         (static_cast<std::uint64_t>(addr.rank) << 24) |
         (static_cast<std::uint64_t>(addr.channel) << 16) | addr.col;
}

dram::DramAddress unpack_address(std::uint64_t packed) {
  dram::DramAddress a;
  a.col = static_cast<std::uint32_t>(packed & 0xFFFFu);
  a.channel = static_cast<std::uint32_t>((packed >> 16) & 0xFFu);
  a.rank = static_cast<std::uint32_t>((packed >> 24) & 0xFFu);
  a.bank = static_cast<std::uint32_t>((packed >> 32) & 0xFFu);
  a.row = packed >> 40;
  return a;
}

std::string encode_pre_chunk(const std::vector<PreOp>& ops) {
  std::string payload;
  payload.reserve(ops.size() * 4);
  std::vector<std::uint64_t> prev_line;
  for (const PreOp& p : ops) {
    if (p.core >= prev_line.size()) prev_line.resize(p.core + 1, 0);
    put_varint(payload, (static_cast<std::uint64_t>(p.core) << 1) |
                            (p.op.is_write ? 1u : 0u));
    put_varint(payload, p.op.gap);
    put_varint(payload, zigzag(wrapping_delta(p.op.line, prev_line[p.core])));
    prev_line[p.core] = p.op.line;
  }
  return payload;
}

std::string encode_post_chunk(const std::vector<PostOp>& ops) {
  std::string payload;
  payload.reserve(ops.size() * 4);
  std::uint64_t prev_cycle = 0;
  std::uint64_t prev_pack = 0;
  for (const PostOp& p : ops) {
    const std::uint64_t pack = pack_address(p.addr);
    put_varint(payload,
               (static_cast<std::uint64_t>(p.line_class) << 1) |
                   (p.is_write ? 1u : 0u));
    put_varint(payload, zigzag(wrapping_delta(p.cycle, prev_cycle)));
    put_varint(payload, zigzag(wrapping_delta(pack, prev_pack)));
    prev_cycle = p.cycle;
    prev_pack = pack;
  }
  return payload;
}

void decode_pre_chunk(const unsigned char* data, std::size_t size,
                      std::uint32_t op_count, std::vector<PreOp>& out) {
  out.clear();
  out.reserve(op_count);
  ByteCursor cur(data, size);
  std::vector<std::uint64_t> prev_line;
  for (std::uint32_t i = 0; i < op_count; ++i) {
    PreOp p;
    const std::uint64_t ctrl = cur.varint();
    if ((ctrl >> 1) > 0xFFFFu) {
      throw TraceError("ecctrace: implausible core index in chunk");
    }
    p.core = static_cast<std::uint32_t>(ctrl >> 1);
    p.op.is_write = (ctrl & 1u) != 0;
    const std::uint64_t gap = cur.varint();
    if (gap > 0xFFFFFFFFu) {
      throw TraceError("ecctrace: instruction gap exceeds 32 bits");
    }
    p.op.gap = static_cast<std::uint32_t>(gap);
    if (p.core >= prev_line.size()) prev_line.resize(p.core + 1, 0);
    p.op.line = prev_line[p.core] +
                static_cast<std::uint64_t>(unzigzag(cur.varint()));
    prev_line[p.core] = p.op.line;
    out.push_back(p);
  }
  if (!cur.done()) {
    throw TraceError("ecctrace: trailing bytes after last record in chunk");
  }
}

void decode_post_chunk(const unsigned char* data, std::size_t size,
                       std::uint32_t op_count, std::vector<PostOp>& out) {
  out.clear();
  out.reserve(op_count);
  ByteCursor cur(data, size);
  std::uint64_t prev_cycle = 0;
  std::uint64_t prev_pack = 0;
  for (std::uint32_t i = 0; i < op_count; ++i) {
    PostOp p;
    const std::uint64_t ctrl = cur.varint();
    if ((ctrl >> 1) > static_cast<std::uint64_t>(dram::LineClass::kEccOther)) {
      throw TraceError("ecctrace: unknown line class in chunk");
    }
    p.line_class = static_cast<dram::LineClass>(ctrl >> 1);
    p.is_write = (ctrl & 1u) != 0;
    p.cycle = prev_cycle + static_cast<std::uint64_t>(unzigzag(cur.varint()));
    const std::uint64_t pack =
        prev_pack + static_cast<std::uint64_t>(unzigzag(cur.varint()));
    p.addr = unpack_address(pack);
    prev_cycle = p.cycle;
    prev_pack = pack;
    out.push_back(p);
  }
  if (!cur.done()) {
    throw TraceError("ecctrace: trailing bytes after last record in chunk");
  }
}

}  // namespace eccsim::tracefile
