// benchtool: perf-trajectory tracking and live run monitoring.
//
//   benchtool record [--smoke] [--bin DIR] [--history DIR]
//                    [--skip-micro] [--skip-sweep]
//       Runs the library microbenchmarks (microbench_codecs,
//       microbench_tracefile via their google-benchmark JSON output) and a
//       pinned smoke-sized fig10 sweep, and appends one timing record per
//       benchmark -- stamped with git SHA, host, and thread count -- to
//       results/history/BENCH_<name>.json.
//   benchtool compare [--history DIR] [--threshold X] [--window N]
//       Compares each history file's newest record against the median of
//       up to N prior records from the same host/smoke/threads context;
//       exits 1 when any metric's wall clock regressed by more than X
//       (default 0.15 = 15%).  With no comparable baseline (first run,
//       new CI host) it passes vacuously and says so.
//   benchtool watch FILE [--interval-ms N] [--once]
//       Tails the heartbeat snapshots a long run publishes via --status
//       FILE (see docs/OBSERVABILITY.md), printing one line per update
//       with progress, throughput, ETA, and Monte Carlo rel-CI; exits
//       when the run's final snapshot arrives.
#include <sys/stat.h>

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/manifest.hpp"
#include "obs/perf_history.hpp"
#include "obs/run_info.hpp"
#include "runner/json.hpp"
#include "runner/thread_pool.hpp"
#include "stats/stats.hpp"

namespace {

using namespace eccsim;

int usage(FILE* out, int code) {
  std::fprintf(out,
               "usage: benchtool <command> [options]\n"
               "  record [--smoke] [--bin DIR] [--history DIR]\n"
               "         [--skip-micro] [--skip-sweep]\n"
               "      run the microbenchmarks and a pinned smoke sweep,\n"
               "      appending one timing record per benchmark to\n"
               "      HISTORY/BENCH_<name>.json (default results/history)\n"
               "      --bin DIR  directory holding the bench binaries\n"
               "                 (default build/bench)\n"
               "  compare [--history DIR] [--threshold X] [--window N]\n"
               "          [--min-samples M]\n"
               "      gate on perf regressions: exit 1 when any metric of\n"
               "      any history file regressed >X (default 0.15) vs the\n"
               "      median of up to N (default 10) comparable records;\n"
               "      metrics gate only once M (default 2) comparable\n"
               "      records exist\n"
               "  watch FILE [--interval-ms N] [--once]\n"
               "      tail the heartbeat snapshots of a run started with\n"
               "      --status FILE; exits when the run finishes\n");
  return code;
}

const char* flag_value(int argc, char** argv, int& i, const char* name) {
  const std::string arg = argv[i];
  const std::string prefix = std::string(name) + "=";
  if (arg.rfind(prefix, 0) == 0) return argv[i] + prefix.size();
  if (arg != name) return nullptr;
  if (i + 1 >= argc) {
    std::fprintf(stderr, "benchtool: %s requires a value\n", name);
    std::exit(2);
  }
  return argv[++i];
}

bool executable_exists(const std::string& path) {
  struct stat st{};
  return stat(path.c_str(), &st) == 0 && (st.st_mode & S_IXUSR) != 0;
}

/// Runs a shell command, returning its exit code and the wall-clock it
/// took; the child's stdout is discarded (stderr stays visible).
int run_command(const std::string& cmd, double* wall_seconds) {
  const double t0 = obs::monotonic_seconds();
  const int rc = std::system((cmd + " > /dev/null").c_str());
  if (wall_seconds != nullptr) {
    *wall_seconds = obs::monotonic_seconds() - t0;
  }
  return rc;
}

double time_unit_seconds(const std::string& unit) {
  if (unit == "ns") return 1e-9;
  if (unit == "us") return 1e-6;
  if (unit == "ms") return 1e-3;
  return 1.0;
}

/// Parses a google-benchmark --benchmark_out JSON file into (name,
/// real_time seconds) metrics.  Aggregate rows (mean/median/stddev from
/// --benchmark_repetitions) are skipped so each benchmark contributes one
/// stable metric name.
std::vector<std::pair<std::string, double>> parse_gbench_json(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot read " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  const runner::Json doc = runner::Json::parse(buf.str());
  std::vector<std::pair<std::string, double>> metrics;
  for (const auto& b : doc.at("benchmarks").items()) {
    if (b.contains("run_type") &&
        b.at("run_type").as_string() != "iteration") {
      continue;
    }
    const std::string unit = b.contains("time_unit")
                                 ? b.at("time_unit").as_string()
                                 : std::string("ns");
    metrics.emplace_back(
        b.at("name").as_string(),
        b.at("real_time").as_number() * time_unit_seconds(unit));
  }
  return metrics;
}

obs::perf::Record base_record(bool smoke) {
  obs::perf::Record rec;
  rec.git_sha = obs::git_head_sha();
  rec.timestamp_utc = obs::utc_timestamp();
  rec.host = obs::hostname();
  rec.threads = runner::ThreadPool::default_thread_count();
  rec.smoke = smoke;
  return rec;
}

int cmd_record(int argc, char** argv) {
  bool smoke = false, skip_micro = false, skip_sweep = false;
  std::string bin_dir = "build/bench";
  std::string history_dir = "results/history";
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* v = nullptr;
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--skip-micro") {
      skip_micro = true;
    } else if (arg == "--skip-sweep") {
      skip_sweep = true;
    } else if ((v = flag_value(argc, argv, i, "--bin")) != nullptr) {
      bin_dir = v;
    } else if ((v = flag_value(argc, argv, i, "--history")) != nullptr) {
      history_dir = v;
    } else {
      std::fprintf(stderr, "benchtool record: unknown flag '%s'\n",
                   arg.c_str());
      return 2;
    }
  }

  obs::Manifest& man = obs::manifest();
  man.tool = "benchtool";
  for (int i = 1; i < argc; ++i) man.args.emplace_back(argv[i]);
  man.git_sha = obs::git_head_sha();
  man.seed_regime = "paper_sweep_seed(root=1)";
  man.threads = runner::ThreadPool::default_thread_count();
  man.host = obs::hostname();
  man.host_cpus = obs::cpu_count();
  man.started_utc = obs::utc_timestamp();
  const std::string manifest_path = "results/benchtool.manifest.json";
  obs::write_manifest(manifest_path, man);
  const double start = obs::monotonic_seconds();
  const auto finish = [&](int rc) {
    obs::note_exit_code(rc);
    man.finished_utc = obs::utc_timestamp();
    man.wall_seconds = obs::monotonic_seconds() - start;
    man.peak_rss_bytes = stats::process_peak_rss_bytes();
    if (man.status == "running") man.status = "completed";
    obs::write_manifest(manifest_path, man);
    return rc;
  };

  std::error_code ec;
  std::filesystem::create_directories(history_dir, ec);

  if (!skip_micro) {
    for (const char* name : {"microbench_codecs", "microbench_tracefile"}) {
      const std::string bin = bin_dir + "/" + name;
      if (!executable_exists(bin)) {
        std::fprintf(stderr, "benchtool record: %s not found (build the "
                     "bench targets first, or pass --bin)\n", bin.c_str());
        return finish(1);
      }
      const std::string tmp =
          history_dir + "/." + std::string(name) + ".gbench.json";
      // --benchmark_out is honored even by the microbenches' custom
      // display reporters; min_time keeps a record run under ~15s.
      const int rc = run_command(bin + " --benchmark_out=" + tmp +
                                     " --benchmark_out_format=json" +
                                     " --benchmark_min_time=0.05",
                                 nullptr);
      if (rc != 0) {
        std::fprintf(stderr, "benchtool record: %s exited with %d\n",
                     bin.c_str(), rc);
        return finish(1);
      }
      obs::perf::Record rec = base_record(smoke);
      try {
        rec.metrics = parse_gbench_json(tmp);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "benchtool record: bad benchmark output: %s\n",
                     e.what());
        return finish(1);
      }
      std::filesystem::remove(tmp, ec);
      if (rec.metrics.empty()) {
        std::fprintf(stderr, "benchtool record: %s produced no benchmark "
                     "results\n", bin.c_str());
        return finish(1);
      }
      const std::string hist =
          history_dir + "/BENCH_" + std::string(name) + ".json";
      obs::perf::append_record(hist, name, rec);
      std::printf("recorded %-22s %zu metrics -> %s\n", name,
                  rec.metrics.size(), hist.c_str());
    }
  }

  if (!skip_sweep) {
    // The end-to-end datapoint: one full smoke-sized fig10 sweep with the
    // cache bypassed so simulation work is actually measured.  Pinned to
    // smoke scale regardless of --smoke: the flag only labels the record's
    // comparability context.
    const std::string bin = bin_dir + "/fig10_epi_quad";
    if (!executable_exists(bin)) {
      std::fprintf(stderr, "benchtool record: %s not found (build the "
                   "bench targets first, or pass --bin)\n", bin.c_str());
      return finish(1);
    }
    double wall = 0.0;
    const int rc = run_command(
        "ECCSIM_SMOKE=1 ECCSIM_SWEEP_CACHE=0 " + bin, &wall);
    if (rc != 0) {
      std::fprintf(stderr, "benchtool record: %s exited with %d\n",
                   bin.c_str(), rc);
      return finish(1);
    }
    obs::perf::Record rec = base_record(smoke);
    rec.metrics.emplace_back("wall_seconds", wall);
    const std::string hist = history_dir + "/BENCH_smoke_sweep.json";
    obs::perf::append_record(hist, "smoke_sweep", rec);
    std::printf("recorded %-22s %.2fs -> %s\n", "smoke_sweep", wall,
                hist.c_str());
  }
  return finish(0);
}

int cmd_compare(int argc, char** argv) {
  std::string history_dir = "results/history";
  double threshold = 0.15;
  std::size_t window = 10;
  std::size_t min_samples = 2;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* v = nullptr;
    if ((v = flag_value(argc, argv, i, "--history")) != nullptr) {
      history_dir = v;
    } else if ((v = flag_value(argc, argv, i, "--threshold")) != nullptr) {
      threshold = std::strtod(v, nullptr);
    } else if ((v = flag_value(argc, argv, i, "--window")) != nullptr) {
      window = std::strtoull(v, nullptr, 10);
    } else if ((v = flag_value(argc, argv, i, "--min-samples")) != nullptr) {
      min_samples = std::strtoull(v, nullptr, 10);
    } else {
      std::fprintf(stderr, "benchtool compare: unknown flag '%s'\n",
                   arg.c_str());
      return 2;
    }
  }

  std::vector<std::string> files;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(history_dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("BENCH_", 0) == 0 && entry.path().extension() == ".json") {
      files.push_back(entry.path().string());
    }
  }
  if (files.empty()) {
    std::printf("benchtool compare: no BENCH_*.json under %s -- nothing to "
                "gate (pass)\n", history_dir.c_str());
    return 0;
  }
  std::sort(files.begin(), files.end());

  bool any_regressed = false;
  for (const std::string& file : files) {
    obs::perf::History hist;
    try {
      hist = obs::perf::load_history(file, "");
    } catch (const std::exception& e) {
      std::fprintf(stderr, "benchtool compare: %s: %s\n", file.c_str(),
                   e.what());
      return 1;
    }
    const auto result =
        obs::perf::compare(hist, threshold, window, min_samples);
    if (!result.comparable) {
      std::printf("%-24s no comparable baseline (first run on this "
                  "host/config) -- pass\n", hist.bench.c_str());
      continue;
    }
    for (const auto& mc : result.metrics) {
      std::printf("%-24s %-40s %8.4fs vs median %8.4fs (%+5.1f%%, n=%zu)%s\n",
                  hist.bench.c_str(), mc.name.c_str(), mc.current,
                  mc.baseline, (mc.ratio - 1.0) * 100.0, mc.samples,
                  mc.regressed ? "  REGRESSED" : "");
    }
    if (result.regressed) any_regressed = true;
  }
  if (any_regressed) {
    std::fprintf(stderr, "benchtool compare: wall-clock regression over "
                 "%.0f%% threshold\n", threshold * 100.0);
    return 1;
  }
  return 0;
}

/// Renders one heartbeat snapshot as a single line.  Tolerates nulls for
/// the derived fields (throughput/ETA before they are measurable).
void print_snapshot(const runner::Json& doc) {
  std::string line = "[" + doc.at("tool").as_string() + "] " +
                     doc.at("phase").as_string();
  char buf[128];
  std::snprintf(buf, sizeof buf, " %" PRIu64 "/%" PRIu64,
                static_cast<std::uint64_t>(doc.at("done").as_number()),
                static_cast<std::uint64_t>(doc.at("total").as_number()));
  line += buf;
  if (!doc.at("throughput_per_s").is_null()) {
    std::snprintf(buf, sizeof buf, " (%.1f/s)",
                  doc.at("throughput_per_s").as_number());
    line += buf;
  }
  if (!doc.at("eta_seconds").is_null()) {
    std::snprintf(buf, sizeof buf, " eta %.0fs",
                  doc.at("eta_seconds").as_number());
    line += buf;
  }
  if (!doc.at("rel_ci").is_null()) {
    std::snprintf(buf, sizeof buf, " rel_ci %.4g",
                  doc.at("rel_ci").as_number());
    line += buf;
  }
  std::snprintf(buf, sizeof buf, " rss %.0fMB elapsed %.0fs",
                doc.at("peak_rss_bytes").as_number() / (1024.0 * 1024.0),
                doc.at("elapsed_seconds").as_number());
  line += buf;
  if (doc.at("final").as_bool()) line += " [final]";
  std::printf("%s\n", line.c_str());
  std::fflush(stdout);
}

int cmd_watch(int argc, char** argv) {
  std::string path;
  std::uint64_t interval_ms = 500;
  bool once = false;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* v = nullptr;
    if ((v = flag_value(argc, argv, i, "--interval-ms")) != nullptr) {
      interval_ms = std::strtoull(v, nullptr, 10);
    } else if (arg == "--once") {
      once = true;
    } else if (path.empty() && arg.rfind("--", 0) != 0) {
      path = arg;
    } else {
      std::fprintf(stderr, "benchtool watch: unknown flag '%s'\n",
                   arg.c_str());
      return 2;
    }
  }
  if (path.empty()) return usage(stderr, 2);

  std::uint64_t last_seq = 0;
  bool seen = false;
  for (;;) {
    std::ifstream in(path, std::ios::binary);
    if (in) {
      std::ostringstream buf;
      buf << in.rdbuf();
      try {
        // The writer replaces the file atomically, so a successful read
        // is always a complete document.
        const runner::Json doc = runner::Json::parse(buf.str());
        const auto seq = static_cast<std::uint64_t>(
            doc.at("seq").as_number());
        if (!seen || seq != last_seq) {
          print_snapshot(doc);
          seen = true;
          last_seq = seq;
        }
        if (doc.at("final").as_bool()) return 0;
      } catch (const std::exception& e) {
        std::fprintf(stderr, "benchtool watch: %s: %s\n", path.c_str(),
                     e.what());
        return 1;
      }
    } else if (once) {
      std::fprintf(stderr, "benchtool watch: %s does not exist (yet)\n",
                   path.c_str());
      return 1;
    }
    if (once) return 0;
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(stderr, 2);
  const std::string cmd = argv[1];
  try {
    if (cmd == "record") return cmd_record(argc, argv);
    if (cmd == "compare") return cmd_compare(argc, argv);
    if (cmd == "watch") return cmd_watch(argc, argv);
    if (cmd == "--help" || cmd == "-h" || cmd == "help") {
      return usage(stdout, 0);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "benchtool %s: %s\n", cmd.c_str(), e.what());
    return 1;
  }
  return usage(stderr, 2);
}
