// Unit tests for the bank-pair health table (Sec. III-B/C/E) and the
// sparse memory image.
#include <gtest/gtest.h>

#include "ecc/memory_image.hpp"
#include "eccparity/health.hpp"

namespace eccsim::eccparity {
namespace {

dram::DramAddress addr(std::uint32_t ch, std::uint32_t rank,
                       std::uint32_t bank) {
  return dram::DramAddress{ch, rank, bank, 0, 0};
}

TEST(BankHealthTable, PairsShareBanksTwoByTwo) {
  const auto p0 = BankHealthTable::pair_of(addr(0, 0, 0));
  const auto p1 = BankHealthTable::pair_of(addr(0, 0, 1));
  const auto p2 = BankHealthTable::pair_of(addr(0, 0, 2));
  EXPECT_EQ(p0, p1);  // banks 0 and 1 form one pair
  EXPECT_NE(p0, p2);
}

TEST(BankHealthTable, PairsDistinctAcrossChannelsAndRanks) {
  const auto a = BankHealthTable::pair_of(addr(0, 0, 0));
  const auto b = BankHealthTable::pair_of(addr(1, 0, 0));
  const auto c = BankHealthTable::pair_of(addr(0, 1, 0));
  EXPECT_NE(a.key(), b.key());
  EXPECT_NE(a.key(), c.key());
  EXPECT_NE(b.key(), c.key());
}

TEST(BankHealthTable, ThresholdSaturation) {
  BankHealthTable t(4);
  const auto a = addr(2, 1, 6);
  EXPECT_FALSE(t.is_faulty(a));
  EXPECT_EQ(t.record_error(a), ErrorAction::kRetirePage);
  EXPECT_EQ(t.record_error(a), ErrorAction::kRetirePage);
  EXPECT_EQ(t.record_error(a), ErrorAction::kRetirePage);
  EXPECT_EQ(t.record_error(a), ErrorAction::kMarkFaulty);
  EXPECT_TRUE(t.is_faulty(a));
  EXPECT_EQ(t.record_error(a), ErrorAction::kAlreadyFaulty);
  EXPECT_EQ(t.faulty_pairs(), 1u);
}

TEST(BankHealthTable, ErrorsInPartnerBankShareCounter) {
  // Errors in banks 4 and 5 (one pair) accumulate together (Sec. III-B:
  // "the combined number of errors encountered in a pair of banks").
  BankHealthTable t(2);
  EXPECT_EQ(t.record_error(addr(0, 0, 4)), ErrorAction::kRetirePage);
  EXPECT_EQ(t.record_error(addr(0, 0, 5)), ErrorAction::kMarkFaulty);
}

TEST(BankHealthTable, IndependentCountersPerPair) {
  BankHealthTable t(2);
  t.record_error(addr(0, 0, 0));
  t.record_error(addr(1, 0, 0));
  EXPECT_EQ(t.faulty_pairs(), 0u);  // one error each: nobody saturated
  EXPECT_EQ(t.error_count(BankHealthTable::pair_of(addr(0, 0, 0))), 1u);
}

TEST(BankHealthTable, DirectMarking) {
  BankHealthTable t(4);
  t.mark_faulty(BankHealthTable::pair_of(addr(3, 2, 7)));
  EXPECT_TRUE(t.is_faulty(addr(3, 2, 6)));  // partner bank of the pair
  EXPECT_TRUE(t.is_faulty(addr(3, 2, 7)));
  EXPECT_FALSE(t.is_faulty(addr(3, 2, 5)));
}

TEST(BankHealthTable, SramBudgetMatchesPaper) {
  // Sec. III-E: 512 B for a 1024-bank (512 GB) system.
  EXPECT_DOUBLE_EQ(BankHealthTable::sram_bytes(1024), 512.0);
}

}  // namespace
}  // namespace eccsim::eccparity

namespace eccsim::ecc {
namespace {

TEST(MemoryImage, UntouchedLinesReadZero) {
  MemoryImage img(64);
  const auto view = img.read(12345);
  ASSERT_EQ(view.size(), 64u);
  for (auto b : view) EXPECT_EQ(b, 0);
  EXPECT_FALSE(img.touched(12345));
  EXPECT_EQ(img.touched_lines(), 0u);
}

TEST(MemoryImage, WriteReadRoundTrip) {
  MemoryImage img(64);
  std::vector<std::uint8_t> v(64);
  for (unsigned i = 0; i < 64; ++i) v[i] = static_cast<std::uint8_t>(i * 3);
  img.write(7, v);
  EXPECT_TRUE(img.touched(7));
  const auto view = img.read(7);
  EXPECT_TRUE(std::equal(view.begin(), view.end(), v.begin()));
}

TEST(MemoryImage, XorIntoComposes) {
  MemoryImage img(8);
  const std::vector<std::uint8_t> a{1, 2, 3, 4, 5, 6, 7, 8};
  const std::vector<std::uint8_t> b{8, 7, 6, 5, 4, 3, 2, 1};
  img.xor_into(0, a);
  img.xor_into(0, b);
  const auto view = img.read(0);
  for (unsigned i = 0; i < 8; ++i) EXPECT_EQ(view[i], a[i] ^ b[i]);
  img.xor_into(0, a);
  img.xor_into(0, b);
  for (auto byte : img.read(0)) EXPECT_EQ(byte, 0);  // self-inverse
}

TEST(MemoryImage, ForEachVisitsAllTouched) {
  MemoryImage img(16);
  img.line(1);
  img.line(5);
  img.line(9);
  unsigned visits = 0;
  std::uint64_t sum = 0;
  img.for_each([&](std::uint64_t idx, const std::vector<std::uint8_t>&) {
    ++visits;
    sum += idx;
  });
  EXPECT_EQ(visits, 3u);
  EXPECT_EQ(sum, 15u);
}

TEST(MemoryImage, ShortWritePadsToLineSize) {
  MemoryImage img(16);
  const std::vector<std::uint8_t> half{1, 2, 3, 4, 5, 6, 7, 8};
  img.write(0, half);
  const auto view = img.read(0);
  ASSERT_EQ(view.size(), 16u);
  EXPECT_EQ(view[7], 8);
  EXPECT_EQ(view[8], 0);
}

}  // namespace
}  // namespace eccsim::ecc
