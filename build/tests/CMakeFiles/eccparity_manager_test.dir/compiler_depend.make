# Empty compiler generated dependencies file for eccparity_manager_test.
# This may be replaced when dependencies are built.
