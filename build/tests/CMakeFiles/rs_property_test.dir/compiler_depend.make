# Empty compiler generated dependencies file for rs_property_test.
# This may be replaced when dependencies are built.
