file(REMOVE_RECURSE
  "CMakeFiles/ablation_scrub.dir/ablation_scrub.cpp.o"
  "CMakeFiles/ablation_scrub.dir/ablation_scrub.cpp.o.d"
  "ablation_scrub"
  "ablation_scrub.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_scrub.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
