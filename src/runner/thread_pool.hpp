// Work-stealing thread pool for the experiment runner.
//
// Sweep cells are coarse (tens of milliseconds to seconds each) and
// independent, so the pool optimizes for simplicity and fairness rather
// than nanosecond-scale dispatch: each worker owns a deque protected by a
// short-lived mutex, pops its own work LIFO (cache-warm), and when idle
// scans the other workers and steals FIFO (oldest task first, the classic
// Blumofe-Leiserson discipline).  An idle worker parks on a condition
// variable; submission wakes one sleeper.
//
// Determinism note: the pool never reorders *results* -- callers index
// their output slots by submission order -- so anything computed from
// per-task state alone is bit-identical whatever the thread count or the
// steal interleaving.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace eccsim::runner {

/// Fixed-size work-stealing pool.  Tasks are `void()` closures; exceptions
/// escaping a task terminate the process (tasks are expected to catch and
/// encode their own failures), matching std::thread semantics.
class ThreadPool {
 public:
  /// Starts `threads` workers (minimum 1).
  explicit ThreadPool(unsigned threads);

  /// Drains nothing: outstanding tasks still run to completion before the
  /// workers join.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues one task.  Thread-safe; may be called from worker threads
  /// (a worker pushes onto its own deque, external callers distribute
  /// round-robin).
  void submit(std::function<void()> task);

  /// Blocks until every task submitted so far has finished executing.
  void wait_idle();

  unsigned thread_count() const {
    return static_cast<unsigned>(workers_.size());
  }

  /// Thread count the runner should use: the `RUNNER_THREADS` environment
  /// variable if set to a positive integer, else the hardware concurrency
  /// (minimum 1).
  static unsigned default_thread_count();

  /// True when the calling thread is a worker of *any* ThreadPool.
  /// Nested fan-outs (e.g. a fault Monte Carlo launched from inside a
  /// sweep cell) use this to run inline on the calling worker instead of
  /// spinning up a second pool and oversubscribing the machine.
  static bool on_worker_thread();

 private:
  struct Worker {
    std::deque<std::function<void()>> deque;
    std::mutex mu;
  };

  /// Worker main loop: run own work, steal, or park.
  void worker_loop(std::size_t self);
  /// Tries to take one task (own deque back, then steal victims' fronts).
  bool try_take(std::size_t self, std::function<void()>& out);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  std::mutex idle_mu_;
  std::condition_variable work_cv_;   ///< workers park here when starved
  std::condition_variable done_cv_;   ///< wait_idle() parks here
  std::size_t unfinished_ = 0;        ///< submitted but not yet completed
  std::size_t queued_ = 0;            ///< submitted but not yet started
  std::size_t next_queue_ = 0;        ///< round-robin cursor for submits
  bool stopping_ = false;
};

}  // namespace eccsim::runner
