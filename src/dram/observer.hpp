// Command-level observation hook for the DRAM channel.
//
// The channel's forward-scheduling model books every DRAM command (ACT,
// RD/WR CAS, PRE, REF) at an exact future cycle when it issues a
// transaction.  A CommandObserver receives each booked command with its
// cycle and full address, letting external tooling -- most importantly the
// independent protocol checker in src/check -- re-validate every timing
// and bank-state constraint without sharing any logic with the scheduler.
//
// Emission order is the channel's issue order, which is monotonic per bank
// and per rank but NOT globally monotonic in `cycle` (a transaction to a
// busy bank can be booked later in time than a subsequently issued
// transaction to an idle bank).  Observers must therefore key their state
// by (rank, bank), not by stream position.  Observation is passive: the
// channel's behavior and statistics are bit-identical with or without an
// observer attached.
#pragma once

#include <cstdint>

#include "dram/request.hpp"

namespace eccsim::dram {

/// DRAM command kinds the channel books.
enum class CmdKind : std::uint8_t {
  kActivate,   ///< ACT: open `row` in (rank, bank)
  kRead,       ///< RD CAS; data occupies [data_start, data_end)
  kWrite,      ///< WR CAS; data occupies [data_start, data_end)
  kPrecharge,  ///< PRE (explicit, or auto-precharge under close-page)
  kRefresh,    ///< REF: blackout is [cycle, cycle + tRFC).  Rank-wide under
               ///< RefreshPolicy::kAllBank (`bank` is 0); under kSameBank
               ///< (DDR5 REFsb) `bank` carries the refreshed bank set and
               ///< only that set's banks are blacked out.
};

const char* to_string(CmdKind kind);

/// One booked command.  `cycle` is the command's issue cycle: the ACT cycle,
/// the CAS cycle (data_start - CAS latency), the precharge start, or the
/// refresh blackout start.  data_start/data_end are meaningful for
/// kRead/kWrite only.
struct DramCommand {
  CmdKind kind = CmdKind::kActivate;
  std::uint64_t cycle = 0;
  std::uint32_t rank = 0;
  std::uint32_t bank = 0;
  std::uint64_t row = 0;
  std::uint32_t col = 0;
  std::uint64_t data_start = 0;
  std::uint64_t data_end = 0;
  /// CAS issued with auto-precharge (the close-page policy's access mode).
  bool auto_precharge = false;
  LineClass line_class = LineClass::kData;
};

/// Passive observer of the channel's command stream.  Must outlive the
/// channel it is attached to; called synchronously from Channel::issue /
/// finalize on whichever thread drives the channel.
class CommandObserver {
 public:
  virtual ~CommandObserver() = default;
  virtual void on_command(const DramCommand& cmd) = 0;
};

}  // namespace eccsim::dram
