file(REMOVE_RECURSE
  "libecc_common.a"
)
