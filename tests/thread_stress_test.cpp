// Concurrency stress tests for the work-stealing ThreadPool and the
// per-worker Collector discipline.  These are the TSan targets: the tsan
// CMake preset builds them with -fsanitize=thread, so any data race in
// submit / steal / wait_idle or in the parallel-sweep pattern (one
// Collector per cell, merge on the main thread) is reported as a failure
// rather than a latent heisenbug.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "runner/thread_pool.hpp"
#include "sim/system.hpp"
#include "stats/stats.hpp"

namespace eccsim::runner {
namespace {

TEST(ThreadPoolStress, NestedSubmitsAcrossManyWaitIdleRounds) {
  ThreadPool pool(4);
  std::atomic<std::uint64_t> count{0};
  std::uint64_t expected = 0;
  for (unsigned round = 0; round < 25; ++round) {
    for (unsigned i = 0; i < 40; ++i) {
      // Each task fans out from inside a worker (own-deque push), the
      // classic nested-parallelism shape that exercises stealing.
      pool.submit([&pool, &count] {
        count.fetch_add(1, std::memory_order_relaxed);
        for (unsigned j = 0; j < 3; ++j) {
          pool.submit(
              [&count] { count.fetch_add(1, std::memory_order_relaxed); });
        }
      });
    }
    expected += 40 * 4;
    pool.wait_idle();
    ASSERT_EQ(count.load(), expected) << "round " << round;
  }
}

TEST(ThreadPoolStress, ConcurrentExternalSubmitters) {
  ThreadPool pool(3);
  std::atomic<std::uint64_t> count{0};
  std::vector<std::thread> submitters;
  for (unsigned s = 0; s < 4; ++s) {
    submitters.emplace_back([&pool, &count] {
      for (unsigned i = 0; i < 250; ++i) {
        pool.submit(
            [&count] { count.fetch_add(1, std::memory_order_relaxed); });
      }
    });
  }
  for (auto& t : submitters) t.join();
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1000u);
}

TEST(ThreadPoolStress, WaitIdleFromSeveralThreads) {
  ThreadPool pool(2);
  std::atomic<std::uint64_t> count{0};
  for (unsigned i = 0; i < 200; ++i) {
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  std::vector<std::thread> waiters;
  for (unsigned w = 0; w < 3; ++w) {
    waiters.emplace_back([&pool] { pool.wait_idle(); });
  }
  for (auto& t : waiters) t.join();
  EXPECT_EQ(count.load(), 200u);
}

TEST(ThreadPoolStress, ParallelMiniSweepIsDeterministic) {
  // The runner's fan-out pattern in miniature: every cell owns its
  // SystemSim and its Collector; the main thread only reads results after
  // wait_idle().  Duplicate cells must produce bit-identical numbers
  // whatever the steal interleaving, and gauge polling during the run must
  // not race the simulating worker.
  struct Cell {
    ecc::SchemeId scheme;
    double epi = 0;
    std::uint64_t mem_cycles = 0;
    double gauge_instructions = 0;
  };
  std::vector<Cell> cells;
  for (unsigned rep = 0; rep < 2; ++rep) {
    cells.push_back(Cell{ecc::SchemeId::kChipkill18});
    cells.push_back(Cell{ecc::SchemeId::kLotEcc5Parity});
    cells.push_back(Cell{ecc::SchemeId::kMultiEcc});
  }

  ThreadPool pool(ThreadPool::default_thread_count());
  for (Cell& cell : cells) {
    pool.submit([&cell] {
      stats::Config scfg;
      scfg.enabled = true;
      scfg.epoch_cycles = 5'000;
      stats::Collector collector(scfg);
      sim::SimOptions opts;
      opts.target_instructions = 30'000;
      opts.seed = 11;
      opts.stats = &collector;
      const sim::RunResult r = sim::run_experiment(
          cell.scheme, ecc::SystemScale::kQuadEquivalent, "lbm", opts);
      cell.epi = r.epi_pj;
      cell.mem_cycles = r.mem_cycles;
      cell.gauge_instructions =
          collector.registry().value("cpu.committed_instructions");
    });
  }
  pool.wait_idle();

  const std::size_t half = cells.size() / 2;
  for (std::size_t i = 0; i < half; ++i) {
    EXPECT_DOUBLE_EQ(cells[i].epi, cells[i + half].epi);
    EXPECT_EQ(cells[i].mem_cycles, cells[i + half].mem_cycles);
    EXPECT_DOUBLE_EQ(cells[i].gauge_instructions,
                     cells[i + half].gauge_instructions);
    EXPECT_GT(cells[i].epi, 0.0);
  }
}

}  // namespace
}  // namespace eccsim::runner
