// Synthetic workload generators.
//
// The paper drives its evaluation with 12 eight-core multiprogrammed SPEC
// CPU2006 workloads and 4 multithreaded PARSEC workloads (Sec. IV-B),
// characterized for the reader only by their memory bandwidth utilization
// (Fig. 9), which splits them into a low-bandwidth bin (Bin1) and a
// high-bandwidth bin (Bin2) for Figs. 10-17.
//
// We cannot ship SPEC/PARSEC binaries, so each named workload is a
// parameterized synthetic generator calibrated to land in the paper's bin
// with a plausible access rate, write share, footprint, and
// streaming-vs-random mix for that benchmark (DESIGN.md records this
// substitution).  What the evaluation actually measures -- per-scheme
// energy per access, ECC-update traffic as a function of write rate and
// locality, background-power sensitivity to idleness -- depends only on
// these stream statistics, which the generators reproduce.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace eccsim::trace {

/// One memory operation emitted by a core's generator, in 64B-line units
/// within the workload's global footprint.
struct MemOp {
  std::uint64_t line = 0;   ///< 64B-line index (global address space)
  bool is_write = false;
  std::uint32_t gap = 0;    ///< non-memory instructions preceding this op
};

/// Static description of one named workload.
struct WorkloadDesc {
  std::string name;
  int bin = 1;  ///< 1 = low bandwidth, 2 = high bandwidth (Fig. 9)
  bool multithreaded = false;  ///< PARSEC: cores share one footprint
  double apki = 10.0;          ///< L2(LLC) accesses per kilo-instruction
  double write_fraction = 0.3;
  std::uint64_t footprint_bytes = 64ULL << 20;
  double stream_fraction = 0.5;  ///< sequential vs uniform-random accesses
  double hot_fraction = 0.1;     ///< hot subset receiving reuse traffic
  double hot_access_prob = 0.6;  ///< probability a random access hits it
  /// Probability that a random access is soon followed by its 128B-pair
  /// sibling: the spatial locality that makes larger memory lines useful
  /// (Fig. 14's streamcluster discussion).
  double sibling_locality = 0.5;
};

/// The paper's 16 workloads (12 SPEC multiprogrammed, 4 PARSEC).
const std::vector<WorkloadDesc>& paper_workloads();

/// Looks a workload up by name; throws std::out_of_range if unknown.
const WorkloadDesc& workload_by_name(const std::string& name);

/// Index of a workload in paper_workloads(); throws std::out_of_range if
/// unknown.
std::size_t workload_index(const std::string& name);

/// The canonical stimulus seed of workload `index` in the paper sweeps:
/// substream `index` of root seed 1, exactly what bench_common's
/// (workload x scheme) fan-out uses (runner::substream_seed agreement is
/// locked by a test).  A trace recorded with this seed -- tracetool's
/// default -- replays bit-identically into the committed sweeps.
std::uint64_t paper_sweep_seed(std::size_t index);
std::uint64_t paper_sweep_seed(const std::string& name);

/// Per-core generator: an infinite deterministic stream of MemOps.
class CoreGenerator {
 public:
  /// `core` selects the private footprint slice for multiprogrammed
  /// workloads (eight instances of the same benchmark, Sec. IV-B) and the
  /// RNG substream either way.
  CoreGenerator(const WorkloadDesc& desc, unsigned core, unsigned cores,
                std::uint64_t seed);

  /// Next memory operation (gap first, then the access).
  MemOp next();

  const WorkloadDesc& desc() const { return desc_; }

 private:
  std::uint64_t random_line();

  WorkloadDesc desc_;
  Rng rng_;
  std::uint64_t region_base_;   ///< first 64B line of this core's region
  std::uint64_t region_lines_;
  std::uint64_t stream_pos_ = 0;
  double gap_mean_;
  std::int64_t pending_sibling_ = -1;  ///< queued 128B-pair follow-up
};

}  // namespace eccsim::trace
