// Fig. 2: mean time between faults in different channels versus DRAM fault
// rate, for an eight-channel system with four ranks per channel and nine
// chips per rank, assuming exponential failures.
//
// The paper's point: the mean time between faults in different channels is
// on the order of hundreds of days (at the 44 FIT/chip DDR3 vendor average
// and above), so storing full correction bits for *every* channel guards
// against a coincidence that essentially never happens.
#include <cstdio>

#include "bench_common.hpp"
#include "common/units.hpp"
#include "dram/spec.hpp"
#include "faults/montecarlo.hpp"

using namespace eccsim;

int main(int argc, char** argv) {
  eccsim::bench::init(argc, argv);
  const auto opts = bench::mc_options();
  const unsigned systems = bench::mc_systems(200);
  // The rank organization (9 x8 chips) is fixed by the figure; the device
  // generation sets banks per rank and, for DDR5, the on-die SECDED filter
  // that attenuates the single-bit FIT rate the rank-level scheme sees.
  const dram::Generation gen = bench::dram_generation();
  const dram::DramSpec device = dram::spec_for(gen, dram::DeviceWidth::kX8);
  faults::SystemShape shape;  // 8 channels x 4 ranks x 9 chips (Fig. 2)
  shape.banks_per_rank = device.banks;
  Table t({"FIT/chip", "analytic MTBF (days)", "simulated (days)",
           "gaps observed"});
  for (double fit : {10.0, 25.0, 44.0, 60.0, 80.0, 100.0}) {
    const auto rates = faults::on_die_ecc_filter(
        faults::ddr3_vendor_average().scaled_to(fit),
        device.on_die_ecc.bit_fault_coverage);
    // Long observation horizon so even low rates yield many fault pairs.
    const auto res = faults::mtbf_between_channels(
        shape, rates, systems, 400 * units::kHoursPerYear, 2014, opts);
    // A run that observed no inter-channel gaps has no data, which is not
    // the same claim as a zero MTBF.
    t.add_row({Table::num(fit, 0), Table::num(res.analytic_hours / 24.0, 0),
               res.has_data() ? Table::num(res.simulated_hours / 24.0, 0)
                              : std::string("n/a"),
               std::to_string(res.gaps_observed)});
  }
  std::printf(
      "Fig. 2 -- Mean time between faults in different channels\n"
      "(8 channels, 4 ranks/channel, 9 chips/rank, %u banks/rank [%s], "
      "%u systems/point)\n\n",
      shape.banks_per_rank, dram::to_string(gen).c_str(), systems);
  bench::emit("fig02_mtbf_channels", t);
  std::printf(
      "Paper check: at the 44 FIT/chip vendor average the MTBF is in the\n"
      "hundreds-to-thousands of days -- independent channel faults are\n"
      "months apart, motivating cross-channel ECC parity.\n");
  return 0;
}
